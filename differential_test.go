package triehash

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"triehash/internal/btree"
	"triehash/internal/workload"
)

// TestDifferentialAcrossEngines drives the same operation stream through
// every trie-hashing configuration and the B⁺-tree and checks that they
// remain observationally identical: same membership, same values, same
// range results, same deletion outcomes. Any divergence pinpoints an
// engine bug immediately.
func TestDifferentialAcrossEngines(t *testing.T) {
	files := map[string]*File{}
	for name, opts := range map[string]Options{
		"thcl":        {BucketCapacity: 8},
		"basic":       {BucketCapacity: 8, Variant: TH},
		"det":         {BucketCapacity: 8, SplitPos: 4, BoundPos: 5},
		"redist":      {BucketCapacity: 8, Redistribution: RedistBoth},
		"rotations":   {BucketCapacity: 8, Variant: TH, RotationMerges: true},
		"mlth-basic":  {BucketCapacity: 8, Variant: TH, PageCapacity: 12},
		"mlth-thcl":   {BucketCapacity: 8, PageCapacity: 12},
		"collapse":    {BucketCapacity: 8, Redistribution: RedistSuccessor, CollapseOnMerge: true},
		"big-buckets": {BucketCapacity: 64},
		"concurrent":  {BucketCapacity: 8, Concurrent: true},
	} {
		f, err := Create(opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		defer f.Close()
		files[name] = f
	}
	bt, err := btree.New(btree.Config{LeafCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(555))
	universe := workload.Uniform(555, 700, 2, 7)
	for step := 0; step < 5000; step++ {
		k := universe[rng.Intn(len(universe))]
		switch op := rng.Intn(10); {
		case op < 5:
			v := []byte(fmt.Sprintf("v%d", step))
			for name, f := range files {
				if err := f.Put(k, v); err != nil {
					t.Fatalf("step %d %s Put(%q): %v", step, name, k, err)
				}
			}
			bt.Put(k, v)
		case op < 7:
			want, wantOK := bt.Get(k)
			for name, f := range files {
				v, err := f.Get(k)
				switch {
				case wantOK && (err != nil || string(v) != string(want)):
					t.Fatalf("step %d %s Get(%q) = %q, %v; btree %q", step, name, k, v, err, want)
				case !wantOK && !errors.Is(err, ErrNotFound):
					t.Fatalf("step %d %s Get(%q): %v; btree absent", step, name, k, err)
				}
			}
		case op < 9:
			wantOK := bt.Delete(k)
			for name, f := range files {
				err := f.Delete(k)
				switch {
				case wantOK && err != nil:
					t.Fatalf("step %d %s Delete(%q): %v", step, name, k, err)
				case !wantOK && !errors.Is(err, ErrNotFound):
					t.Fatalf("step %d %s Delete(%q): %v; btree absent", step, name, k, err)
				}
			}
		default:
			lo := universe[rng.Intn(len(universe))]
			hi := universe[rng.Intn(len(universe))]
			if hi < lo {
				lo, hi = hi, lo
			}
			var want []string
			bt.Range(lo, hi, func(k string, _ []byte) bool {
				want = append(want, k)
				return true
			})
			for name, f := range files {
				var got []string
				if err := f.Range(lo, hi, func(k string, _ []byte) bool {
					got = append(got, k)
					return true
				}); err != nil {
					t.Fatalf("step %d %s Range: %v", step, name, err)
				}
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("step %d %s Range(%q,%q) = %v; btree %v", step, name, lo, hi, got, want)
				}
			}
		}
	}
	for name, f := range files {
		if f.Len() != bt.Len() {
			t.Errorf("%s ends with %d keys, btree %d", name, f.Len(), bt.Len())
		}
		if err := f.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}

	// Two more engines derived from the final state: a bulk-loaded
	// clone and a crash-recovered clone. Both must agree with the
	// B-tree on every key.
	var finalKeys []string
	finalVals := map[string][]byte{}
	bt.Range("", "", func(k string, v []byte) bool {
		finalKeys = append(finalKeys, k)
		finalVals[k] = v
		return true
	})
	i := 0
	bulk, err := BulkLoad("", Options{BucketCapacity: 8}, 0.9, func() (string, []byte, bool) {
		if i >= len(finalKeys) {
			return "", nil, false
		}
		k := finalKeys[i]
		i++
		return k, finalVals[k], true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer bulk.Close()

	dir := filepath.Join(t.TempDir(), "db")
	p, err := CreateAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range finalKeys {
		if err := p.Put(k, finalVals[k]); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()
	if err := os.Remove(filepath.Join(dir, "meta.th")); err != nil {
		t.Fatal(err)
	}
	rec, err := RecoverAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()

	for name, f := range map[string]*File{"bulk-loaded": bulk, "recovered": rec} {
		if f.Len() != bt.Len() {
			t.Errorf("%s has %d keys, btree %d", name, f.Len(), bt.Len())
		}
		for _, k := range finalKeys {
			v, err := f.Get(k)
			if err != nil || string(v) != string(finalVals[k]) {
				t.Fatalf("%s Get(%q) = %q, %v", name, k, v, err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestChurnStability runs sustained insert/delete churn at a fixed
// population and checks the structures do not leak: the trie stays
// proportional to the live buckets and the load stays in a sane band.
func TestChurnStability(t *testing.T) {
	for name, opts := range map[string]Options{
		"thcl-guaranteed": {BucketCapacity: 10, SplitPos: 6, BoundPos: 7},
		"basic-rotations": {BucketCapacity: 10, Variant: TH, RotationMerges: true},
	} {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			f, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			keys := workload.Uniform(666, 4000, 3, 9)
			live := map[string]bool{}
			rng := rand.New(rand.NewSource(666))
			// Warm up to ~2000 live keys, then churn.
			for _, k := range keys[:2000] {
				f.Put(k, nil)
				live[k] = true
			}
			var peakCells int
			for round := 0; round < 8; round++ {
				for i := 0; i < 1000; i++ {
					k := keys[rng.Intn(len(keys))]
					if live[k] {
						if err := f.Delete(k); err != nil {
							t.Fatalf("Delete(%q): %v", k, err)
						}
						delete(live, k)
					} else {
						if err := f.Put(k, nil); err != nil {
							t.Fatalf("Put(%q): %v", k, err)
						}
						live[k] = true
					}
				}
				st := f.Stats()
				if st.TrieCells > peakCells {
					peakCells = st.TrieCells
				}
				if st.Keys != len(live) {
					t.Fatalf("round %d: %d keys, live %d", round, st.Keys, len(live))
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := f.Stats()
			// The trie must not have grown unboundedly past what the
			// population needs: cells stay within a small factor of
			// buckets.
			if st.TrieCells > 6*st.Buckets {
				t.Errorf("trie bloat after churn: %d cells for %d buckets", st.TrieCells, st.Buckets)
			}
			if st.Load < 0.35 {
				t.Errorf("churn drove load to %.3f", st.Load)
			}
			t.Logf("%s after churn: %v (peak cells %d)", name, st, peakCells)
		})
	}
}
