package triehash

import "triehash/internal/trie"

// fTrie exposes a single-level file's trie to benchmarks.
func fTrie(f *File) *trie.Trie { return f.single.Trie() }

// fMeta exposes the engine's serialized metadata to the differential
// tests (byte equality across engines is the strongest identity check).
func fMeta(f *File) []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.eng.SaveMeta()
}
