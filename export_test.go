package triehash

import "triehash/internal/trie"

// fTrie exposes a single-level file's trie to benchmarks.
func fTrie(f *File) *trie.Trie { return f.single.Trie() }
