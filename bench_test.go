package triehash

import (
	"fmt"
	"sort"
	"testing"

	"triehash/internal/bench"
	"triehash/internal/btree"
	"triehash/internal/concurrent"
	"triehash/internal/core"
	"triehash/internal/keys"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// ---------------------------------------------------------------------------
// Paper reproduction benches: one per table/figure of the evaluation.
// Each iteration regenerates the experiment end to end; run with
//
//	go test -bench=Fig -benchmem
//	go test -bench=Sec -benchmem
//
// and see cmd/thbench for the printed tables.
// ---------------------------------------------------------------------------

func benchExperiment(b *testing.B, id string) {
	e, ok := bench.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tab := e.Run()
		if len(tab.Rows) == 0 && len(tab.Notes) == 0 {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkFig01ExampleFile(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig03BucketSplit(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig04TrieSplit(b *testing.B)         { benchExperiment(b, "fig4") }
func BenchmarkFig05AscendingBasic(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig06DescendingBasic(b *testing.B)   { benchExperiment(b, "fig6") }
func BenchmarkFig07NoNilNodes(b *testing.B)        { benchExperiment(b, "fig7") }
func BenchmarkFig08ControlledSplit(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig09Redistribution(b *testing.B)    { benchExperiment(b, "fig9") }
func BenchmarkFig10Ascending(b *testing.B)         { benchExperiment(b, "fig10") }
func BenchmarkFig11Descending(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkSec31RandomLoad(b *testing.B)        { benchExperiment(b, "sec31-load") }
func BenchmarkSec31TrieVsBTreeSize(b *testing.B)   { benchExperiment(b, "sec31-size") }
func BenchmarkSec32UnexpectedOrdered(b *testing.B) { benchExperiment(b, "sec32-ordered") }
func BenchmarkSec32PageLoad(b *testing.B)          { benchExperiment(b, "sec32-pages") }
func BenchmarkSec45ControlledLoad(b *testing.B)    { benchExperiment(b, "sec45-control") }
func BenchmarkSec33Deletions(b *testing.B)         { benchExperiment(b, "sec33-delete") }
func BenchmarkSec5AccessCounts(b *testing.B)       { benchExperiment(b, "sec5-access") }
func BenchmarkSec26Balancing(b *testing.B)         { benchExperiment(b, "sec26-balance") }
func BenchmarkSec6Reconstruction(b *testing.B)     { benchExperiment(b, "sec6-reconstruct") }
func BenchmarkSec31Capacity(b *testing.B)          { benchExperiment(b, "sec31-capacity") }

// ---------------------------------------------------------------------------
// Micro-benchmarks: operation costs of the public API and the B-tree
// baseline on the same workload.
// ---------------------------------------------------------------------------

const microKeys = 100000

func microWorkload() []string { return workload.Uniform(7, microKeys, 4, 12) }

func benchVariants() map[string]Options {
	return map[string]Options{
		"TH":   {BucketCapacity: 50, Variant: TH},
		"THCL": {BucketCapacity: 50},
		"MLTH": {BucketCapacity: 50, Variant: TH, PageCapacity: 256},
	}
}

func BenchmarkPut(b *testing.B) {
	ks := microWorkload()
	for name, opts := range benchVariants() {
		opts := opts
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f, err := Create(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := f.Put(ks[i%len(ks)], nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("BTree", func(b *testing.B) {
		b.ReportAllocs()
		t, err := btree.New(btree.Config{LeafCapacity: 50})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			t.Put(ks[i%len(ks)], nil)
		}
	})
}

func BenchmarkGet(b *testing.B) {
	ks := microWorkload()
	for name, opts := range benchVariants() {
		opts := opts
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f, err := Create(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			for _, k := range ks {
				if err := f.Put(k, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Get(ks[i%len(ks)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("BTree", func(b *testing.B) {
		b.ReportAllocs()
		t, err := btree.New(btree.Config{LeafCapacity: 50})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range ks {
			t.Put(k, nil)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := t.Get(ks[i%len(ks)]); !ok {
				b.Fatal("missing key")
			}
		}
	})
}

func BenchmarkRange100(b *testing.B) {
	ks := microWorkload()
	sorted := workload.Ascending(ks)
	for name, opts := range benchVariants() {
		opts := opts
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			f, err := Create(opts)
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			for _, k := range ks {
				if err := f.Put(k, nil); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				start := sorted[(i*977)%(len(sorted)-200)]
				n := 0
				if err := f.Range(start, "", func(string, []byte) bool {
					n++
					return n < 100
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkBulkLoadCompact(b *testing.B) {
	for _, capacity := range []int{20, 50} {
		capacity := capacity
		b.Run(fmt.Sprintf("b%d", capacity), func(b *testing.B) {
			ks := workload.Ascending(workload.Uniform(8, 20000, 4, 12))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f, err := Create(Options{BucketCapacity: capacity, SplitPos: capacity})
				if err != nil {
					b.Fatal(err)
				}
				for _, k := range ks {
					if err := f.Put(k, nil); err != nil {
						b.Fatal(err)
					}
				}
				if st := f.Stats(); st.Load < 0.99 {
					b.Fatalf("compact load %.3f", st.Load)
				}
				f.Close()
			}
		})
	}
}

// BenchmarkTrieSearch isolates the in-memory trie traversal (no bucket
// access): the digit-at-a-time search of Algorithm A1.
func BenchmarkTrieSearch(b *testing.B) {
	ks := microWorkload()
	f, err := Create(Options{BucketCapacity: 50})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			b.Fatal(err)
		}
	}
	tr := fTrie(f)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := tr.Search(ks[i%len(ks)])
		if res.Leaf.IsNil() {
			b.Fatal("nil leaf")
		}
	}
}

func BenchmarkSec23Positioning(b *testing.B) { benchExperiment(b, "sec23-positioning") }
func BenchmarkAblationSplits(b *testing.B)   { benchExperiment(b, "ablation-splits") }

func BenchmarkExtMultilevelTHCL(b *testing.B) { benchExperiment(b, "ext-mlth-thcl") }

// BenchmarkConcurrentGet measures reader scaling of the /VID87/ scheme:
// lock-free trie traversal plus a shared bucket latch.
func BenchmarkConcurrentGet(b *testing.B) {
	f, err := concurrent.New(keys.ASCII, 50, 0)
	if err != nil {
		b.Fatal(err)
	}
	ks := microWorkload()
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := f.Get(ks[i%len(ks)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkConcurrentMixed: readers with a 10% write mix.
func BenchmarkConcurrentMixed(b *testing.B) {
	f, err := concurrent.New(keys.ASCII, 50, 0)
	if err != nil {
		b.Fatal(err)
	}
	ks := microWorkload()
	for _, k := range ks[:len(ks)/2] {
		if err := f.Put(k, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := ks[i%len(ks)]
			if i%10 == 0 {
				if err := f.Put(k, nil); err != nil {
					b.Fatal(err)
				}
			} else if _, err := f.Get(ks[i%(len(ks)/2)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkRecover measures the TOR83 rebuild over a ~700-bucket store.
func BenchmarkRecover(b *testing.B) {
	st := store.NewMem()
	cfg := core.Config{Capacity: 20}
	f, err := core.New(cfg, st)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range workload.Uniform(9, 10000, 4, 12) {
		if _, err := f.Put(k, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Recover(cfg, st); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtMainMemory(b *testing.B) { benchExperiment(b, "ext-mainmemory") }
func BenchmarkExtDictionary(b *testing.B) { benchExperiment(b, "ext-dictionary") }

// BenchmarkBulkLoadVsIncremental: the one-pass loader against per-key
// compact insertion on the same 20k sorted records.
func BenchmarkBulkLoadVsIncremental(b *testing.B) {
	ks := workload.Ascending(workload.Uniform(8, 20000, 4, 12))
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			j := 0
			f, err := BulkLoad("", Options{BucketCapacity: 50}, 1.0, func() (string, []byte, bool) {
				if j >= len(ks) {
					return "", nil, false
				}
				k := ks[j]
				j++
				return k, nil, true
			})
			if err != nil {
				b.Fatal(err)
			}
			if f.Stats().Load < 0.99 {
				b.Fatal("not compact")
			}
			f.Close()
		}
	})
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f, err := Create(Options{BucketCapacity: 50, SplitPos: 50})
			if err != nil {
				b.Fatal(err)
			}
			for _, k := range ks {
				if err := f.Put(k, nil); err != nil {
					b.Fatal(err)
				}
			}
			f.Close()
		}
	})
}

// ---------------------------------------------------------------------------
// Buffer pool and batch path benchmarks (PR 2): the sharded CLOCK pool
// against the global-mutex LRU, and batch lookups against their
// sequential expansion. EXPERIMENTS.md records the headline numbers.
// ---------------------------------------------------------------------------

// cachePolicies enumerates the pools in a fixed order for sub-benchmarks.
var cachePolicies = []struct {
	name   string
	policy CachePolicy
}{
	{"lru", CacheLRU},
	{"clock", CacheClock},
}

// BenchmarkConcurrentGetParallel: cache-hit Gets through the public File
// at 8-way parallelism per core. Every bucket is resident, so the two
// sub-benchmarks isolate the pools' hit paths: the LRU clones the bucket
// and reorders its list under one mutex; the CLOCK pool serves a shared
// snapshot and sets a reference bit under a shard read lock.
func BenchmarkConcurrentGetParallel(b *testing.B) {
	for _, p := range cachePolicies {
		b.Run(p.name, func(b *testing.B) {
			f, err := Create(Options{BucketCapacity: 50, CacheFrames: 8192, CachePolicy: p.policy})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			ks := microWorkload()
			for _, k := range ks {
				if err := f.Put(k, nil); err != nil {
					b.Fatal(err)
				}
			}
			for _, k := range ks { // warm the pool
				if _, err := f.Get(k); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, err := f.Get(ks[i%len(ks)]); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}

// BenchmarkBatchGet: one 256-key batch per iteration, against the same
// 256 keys as sequential Gets. The batch takes the file lock once and
// reads each distinct bucket once, so its win grows with key clustering:
// the scattered sub-benchmarks draw 256 uniform keys (≈1 key per bucket
// — grouping overhead with nothing to amortize), the clustered ones take
// 256 consecutive keys in key order (≈5 buckets serve the whole batch).
func BenchmarkBatchGet(b *testing.B) {
	f, err := Create(Options{BucketCapacity: 50, CacheFrames: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	ks := microWorkload()
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			b.Fatal(err)
		}
	}
	sorted := append([]string(nil), ks...)
	sort.Strings(sorted)
	for _, shape := range []struct {
		name string
		keys []string
	}{
		{"scattered", ks[:256]},
		{"clustered", sorted[len(sorted)/2 : len(sorted)/2+256]},
	} {
		b.Run(shape.name+"/sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, k := range shape.keys {
					if _, err := f.Get(k); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run(shape.name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, errs := f.GetBatch(shape.keys)
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkShardedCache: raw pool hit throughput at the store layer,
// parallel readers over a resident working set.
func BenchmarkShardedCache(b *testing.B) {
	for _, p := range cachePolicies {
		b.Run(p.name, func(b *testing.B) {
			mem := store.NewMem()
			var st store.Store
			if p.policy == CacheLRU {
				st = store.NewCached(mem, 512)
			} else {
				st = store.NewSharded(mem, 512, 0)
			}
			const buckets = 256
			for i := 0; i < buckets; i++ {
				addr, err := st.Alloc()
				if err != nil {
					b.Fatal(err)
				}
				bk := bucketWith(fmt.Sprintf("k%d", addr))
				if err := st.Write(addr, bk); err != nil {
					b.Fatal(err)
				}
			}
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := int32(0)
				for pb.Next() {
					if _, err := store.View(st, i%buckets); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
		})
	}
}
