package triehash_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"triehash"
)

// The basic lifecycle: create, store, look up, scan in key order.
func Example() {
	f, err := triehash.Create(triehash.Options{BucketCapacity: 20})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	f.Put("litwin", []byte("trie hashing"))
	f.Put("bayer", []byte("B-trees"))
	f.Put("knuth", []byte("TAOCP"))

	v, _ := f.Get("litwin")
	fmt.Println(string(v))

	f.Range("a", "l", func(k string, v []byte) bool {
		fmt.Printf("%s: %s\n", k, v)
		return true
	})
	// Output:
	// trie hashing
	// bayer: B-trees
	// knuth: TAOCP
}

// Compact loading: with the split position at the bucket capacity, a
// sorted stream builds a 100%-loaded file (the paper's back-up/log-file
// scenario).
func ExampleOptions_compactLoad() {
	const b = 10
	f, err := triehash.Create(triehash.Options{BucketCapacity: b, SplitPos: b})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for i := 0; i < 1000; i++ {
		f.Put(fmt.Sprintf("rec-%06d", i), nil)
	}
	st := f.Stats()
	fmt.Printf("%d records in %d buckets: %.0f%% load\n", st.Keys, st.Buckets, st.Load*100)
	// Output:
	// 1000 records in 100 buckets: 100% load
}

// Cursors iterate records in key order with buffered refills.
func ExampleFile_Seek() {
	f, err := triehash.Create(triehash.Options{BucketCapacity: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	for _, k := range []string{"delta", "alpha", "echo", "bravo", "charlie"} {
		f.Put(k, nil)
	}
	cur := f.Seek("b", "d")
	for {
		k, _, ok := cur.Next()
		if !ok {
			break
		}
		fmt.Println(k)
	}
	// Output:
	// bravo
	// charlie
}

// Persistent files survive restarts; lost metadata is rebuilt from the
// bucket headers (the paper's TOR83 recovery).
func ExampleRecoverAt() {
	dir, err := os.MkdirTemp("", "triehash-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	f, err := triehash.CreateAt(dir, triehash.Options{BucketCapacity: 10})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.Put(fmt.Sprintf("key-%04d", i), []byte("value"))
	}
	f.Close()

	// The crash: the metadata file is gone.
	os.Remove(filepath.Join(dir, "meta.th"))

	g, err := triehash.RecoverAt(dir, triehash.Options{BucketCapacity: 10})
	if err != nil {
		log.Fatal(err)
	}
	defer g.Close()
	fmt.Println("records after recovery:", g.Len())
	// Output:
	// records after recovery: 100
}
