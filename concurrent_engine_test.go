package triehash

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"triehash/internal/workload"
)

// dumpFile renders every record in key order — the observational content
// two engines must agree on.
func dumpFile(t *testing.T, f *File) []string {
	t.Helper()
	var out []string
	if err := f.Range("", "", func(k string, v []byte) bool {
		out = append(out, k+"="+string(v))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestConcurrentDifferentialIdentity drives the same single-threaded
// mixed workload through the concurrent engine and the global-lock
// oracle and requires byte-identical outcomes: same records, same
// statistics (bucket count, trie cells, depth — the file's shape), and
// the same serialized metadata. With one thread the concurrent engine's
// re-validation paths never fire, so any divergence is a bug in the
// engine, not a legal interleaving.
func TestConcurrentDifferentialIdentity(t *testing.T) {
	opts := Options{BucketCapacity: 8}
	seq, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	opts.Concurrent = true
	conc, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()

	rng := rand.New(rand.NewSource(87))
	universe := workload.Uniform(87, 900, 2, 8)
	for step := 0; step < 8000; step++ {
		k := universe[rng.Intn(len(universe))]
		if rng.Intn(10) < 7 {
			v := []byte(fmt.Sprintf("v%d", step))
			if err := seq.Put(k, v); err != nil {
				t.Fatalf("step %d: oracle Put: %v", step, err)
			}
			if err := conc.Put(k, v); err != nil {
				t.Fatalf("step %d: concurrent Put: %v", step, err)
			}
		} else {
			e1, e2 := seq.Delete(k), conc.Delete(k)
			if (e1 == nil) != (e2 == nil) {
				t.Fatalf("step %d: Delete(%q) diverged: oracle %v, concurrent %v", step, k, e1, e2)
			}
		}
		if step%997 == 0 {
			s1, s2 := seq.Stats(), conc.Stats()
			if s1.Keys != s2.Keys || s1.Buckets != s2.Buckets || s1.TrieCells != s2.TrieCells || s1.Depth != s2.Depth {
				t.Fatalf("step %d: shape diverged: oracle %+v, concurrent %+v", step, s1, s2)
			}
		}
	}
	if got, want := dumpFile(t, conc), dumpFile(t, seq); len(got) != len(want) {
		t.Fatalf("record counts diverged: concurrent %d, oracle %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d diverged: concurrent %q, oracle %q", i, got[i], want[i])
			}
		}
	}
	if err := conc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fMeta(seq), fMeta(conc)) {
		t.Fatal("serialized metadata diverged between the engines")
	}
}

// TestConcurrentParallelStress hammers one concurrent file from many
// goroutines under -race: each worker owns a disjoint key range it
// inserts, overwrites, reads back and deletes (so values are verifiable),
// while every worker also churns a shared hot range for contention on
// the same buckets, splits and merges. The file must stay invariant-clean
// and serve exactly the surviving records.
func TestConcurrentParallelStress(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 8, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const (
		workers = 8
		perW    = 300
	)
	hot := workload.Uniform(99, 64, 2, 5)
	var wg sync.WaitGroup
	var fail atomic.Value // first error, if any
	report := func(err error) {
		if err != nil {
			fail.CompareAndSwap(nil, err)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			mine := make([]string, perW)
			for i := range mine {
				mine[i] = fmt.Sprintf("w%02d.%06d", w, i)
			}
			// Insert everything, re-reading as we go.
			for i, k := range mine {
				if err := f.Put(k, []byte(fmt.Sprintf("%d", i))); err != nil {
					report(fmt.Errorf("put %q: %w", k, err))
					return
				}
				if v, err := f.Get(k); err != nil || string(v) != fmt.Sprintf("%d", i) {
					report(fmt.Errorf("readback %q = %q, %v", k, v, err))
					return
				}
				h := hot[rng.Intn(len(hot))]
				switch rng.Intn(3) {
				case 0:
					if err := f.Put(h, []byte("hot")); err != nil {
						report(fmt.Errorf("hot put %q: %w", h, err))
						return
					}
				case 1:
					if _, err := f.Get(h); err != nil && !errors.Is(err, ErrNotFound) {
						report(fmt.Errorf("hot get %q: %w", h, err))
						return
					}
				default:
					if err := f.Delete(h); err != nil && !errors.Is(err, ErrNotFound) {
						report(fmt.Errorf("hot delete %q: %w", h, err))
						return
					}
				}
			}
			// Delete the odd half — merge pressure — and verify the split.
			for i, k := range mine {
				if i%2 == 1 {
					if err := f.Delete(k); err != nil {
						report(fmt.Errorf("delete %q: %w", k, err))
						return
					}
				}
			}
			for i, k := range mine {
				v, err := f.Get(k)
				if i%2 == 1 {
					if !errors.Is(err, ErrNotFound) {
						report(fmt.Errorf("deleted %q still = %q, %v", k, v, err))
						return
					}
					continue
				}
				if err != nil || string(v) != fmt.Sprintf("%d", i) {
					report(fmt.Errorf("final %q = %q, %v", k, v, err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, _ := fail.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every surviving per-worker key, and nothing outside the universes.
	want := workers * perW / 2
	got := 0
	if err := f.Range("", "", func(k string, _ []byte) bool {
		if len(k) == 10 && k[0] == 'w' && k[3] == '.' { // w%02d.%06d
			got++
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("surviving worker keys = %d, want %d", got, want)
	}
	if l, s := f.Len(), f.Stats().Keys; l != s {
		t.Fatalf("Len %d disagrees with Stats.Keys %d", l, s)
	}
}

// TestConcurrentBatchSplitDifferential drives prefix-partitioned PutBatch
// rounds — splits in several disjoint subtrees per round, through the
// slow wave's prepareSplit-under-latch / finishSplit-under-flip-lock
// path — interleaved with single puts and deletes, through the
// concurrent engine and the oracle, single-threaded. The comparison is
// content-level (records, key count, invariants, bucket and cell
// counts), not serialized metadata: a batch wave splits its buckets in
// ascending address order while the oracle's loop splits in key-arrival
// order, so new-bucket addresses legitimately differ while everything
// observable agrees.
func TestConcurrentBatchSplitDifferential(t *testing.T) {
	opts := Options{BucketCapacity: 8}
	seq, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	opts.Concurrent = true
	conc, err := Create(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer conc.Close()

	rng := rand.New(rand.NewSource(53))
	universe := workload.Uniform(53, 400, 2, 8)
	for round := 0; round < 12; round++ {
		var bk []string
		var bv [][]byte
		for _, p := range []string{"qa", "qb", "qc", "qd", "qe", "qf"} {
			for j := 0; j < 25; j++ {
				bk = append(bk, fmt.Sprintf("%s.%03d.%02d", p, round, j))
				bv = append(bv, []byte(fmt.Sprintf("b%d.%d", round, j)))
			}
		}
		// No in-batch duplicates here: the oracle loop inserts a
		// duplicate's first occurrence early and replaces it later, while
		// the batch engine skips superseded occurrences up front —
		// shifting which key is the Capacity+1'th at an overflow and
		// with it the split string. Content still agrees (TestConcurrentBatch
		// covers it); the shape comparison below would not.
		for i, err := range seq.PutBatch(bk, bv) {
			if err != nil {
				t.Fatalf("round %d: oracle PutBatch[%q]: %v", round, bk[i], err)
			}
		}
		for i, err := range conc.PutBatch(bk, bv) {
			if err != nil {
				t.Fatalf("round %d: concurrent PutBatch[%q]: %v", round, bk[i], err)
			}
		}
		for step := 0; step < 300; step++ {
			k := universe[rng.Intn(len(universe))]
			if rng.Intn(10) < 6 {
				v := []byte(fmt.Sprintf("v%d.%d", round, step))
				if err := seq.Put(k, v); err != nil {
					t.Fatal(err)
				}
				if err := conc.Put(k, v); err != nil {
					t.Fatal(err)
				}
			} else {
				e1, e2 := seq.Delete(k), conc.Delete(k)
				if (e1 == nil) != (e2 == nil) {
					t.Fatalf("round %d: Delete(%q) diverged: %v vs %v", round, k, e1, e2)
				}
			}
		}
		s1, s2 := seq.Stats(), conc.Stats()
		if s1.Keys != s2.Keys || s1.Buckets != s2.Buckets || s1.TrieCells != s2.TrieCells {
			t.Fatalf("round %d: shape diverged: oracle %+v, concurrent %+v", round, s1, s2)
		}
	}
	if got, want := dumpFile(t, conc), dumpFile(t, seq); len(got) != len(want) {
		t.Fatalf("record counts diverged: concurrent %d, oracle %d", len(got), len(want))
	} else {
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d diverged: concurrent %q, oracle %q", i, got[i], want[i])
			}
		}
	}
	if err := conc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointSubtreeSplits hammers splits in disjoint trie
// subtrees from many goroutines at once — the workload the subtree
// stripes exist for. Each worker owns a distinct three-digit prefix (its
// own stripe key, up to hash collisions), inserts enough fresh keys to
// split its subtree over and over — half through Put, half through
// PutBatch's prepared-split wave — while a scanner goroutine runs Range
// end to end, racing the flip-lock readers against concurrent
// publications: a scan must never observe a half-installed split (a
// missing or duplicated record would surface as a count mismatch or an
// invariant violation).
func TestConcurrentDisjointSubtreeSplits(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 8, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const (
		workers = 8
		perW    = 600
	)
	var wg sync.WaitGroup
	var fail atomic.Value
	report := func(err error) {
		if err != nil {
			fail.CompareAndSwap(nil, err)
		}
	}
	done := make(chan struct{})
	var scanWg sync.WaitGroup
	// The scanner: full-range scans while the splits land. Counts are
	// momentary, but every record visited must be well-formed and no scan
	// may error or see a key twice.
	scanWg.Add(1)
	go func() {
		defer scanWg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			prev := ""
			n := 0
			if err := f.Range("", "", func(k string, _ []byte) bool {
				if prev != "" && k <= prev {
					report(fmt.Errorf("scan out of order: %q after %q", k, prev))
					return false
				}
				prev = k
				n++
				return true
			}); err != nil {
				report(fmt.Errorf("mid-traffic Range: %w", err))
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			prefix := fmt.Sprintf("%c%c%c", 'a'+w, 'a'+w, 'a'+w)
			// Half through single Puts (putSlow's stripe+latch split)...
			for i := 0; i < perW/2; i++ {
				k := fmt.Sprintf("%s.%06d", prefix, i)
				if err := f.Put(k, []byte{byte(w)}); err != nil {
					report(fmt.Errorf("put %q: %w", k, err))
					return
				}
			}
			// ...and half through PutBatch (the prepared-split wave).
			bk := make([]string, perW/2)
			bv := make([][]byte, perW/2)
			for i := range bk {
				bk[i] = fmt.Sprintf("%s.%06d", prefix, perW/2+i)
				bv[i] = []byte{byte(w)}
			}
			for i, err := range f.PutBatch(bk, bv) {
				if err != nil {
					report(fmt.Errorf("putbatch %q: %w", bk[i], err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(done)
	scanWg.Wait()
	if err, _ := fail.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got, want := f.Len(), workers*perW; got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	got := 0
	if err := f.Range("", "", func(k string, _ []byte) bool { got++; return true }); err != nil {
		t.Fatal(err)
	}
	if got != workers*perW {
		t.Fatalf("final scan saw %d records, want %d", got, workers*perW)
	}
}

// TestConcurrentDeleteMergeStress empties a well-split file from many
// goroutines at once: deletions drive guarded merging (the two-latch
// path) concurrently until almost nothing is left.
func TestConcurrentDeleteMergeStress(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 8, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(7, 4000, 3, 9)
	for _, k := range ks {
		if err := f.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	before := f.Stats().Buckets
	var wg sync.WaitGroup
	var firstErr atomic.Value
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ks); i += workers {
				if err := f.Delete(ks[i]); err != nil && !errors.Is(err, ErrNotFound) {
					firstErr.CompareAndSwap(nil, fmt.Errorf("delete %q: %w", ks[i], err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 {
		t.Fatalf("%d records survive a full deletion", f.Len())
	}
	after := f.Stats().Buckets
	if after >= before/2 {
		t.Errorf("merging freed too little: %d buckets before, %d after", before, after)
	}
}

// TestConcurrentBatch checks the engine-level batch paths: PutBatch with
// in-batch duplicates (last wins), GetBatch alignment, and concurrent
// batches from several goroutines racing on overlapping buckets.
func TestConcurrentBatch(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 8, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(21, 2000, 3, 9)
	vs := make([][]byte, len(ks))
	for i := range ks {
		vs[i] = []byte(fmt.Sprintf("v%d", i))
	}
	// A duplicate: the later value must win, exactly as a serial loop.
	keys := append(append([]string{}, ks...), ks[0])
	vals := append(append([][]byte{}, vs...), []byte("winner"))
	for i, err := range f.PutBatch(keys, vals) {
		if err != nil {
			t.Fatalf("PutBatch[%d] (%q): %v", i, keys[i], err)
		}
	}
	if v, err := f.Get(ks[0]); err != nil || string(v) != "winner" {
		t.Fatalf("duplicate key resolved to %q, %v; want the later value", v, err)
	}
	got, errs := f.GetBatch(append([]string{"absent!"}, ks...))
	if !errors.Is(errs[0], ErrNotFound) {
		t.Fatalf("GetBatch miss: %v", errs[0])
	}
	for i := range ks {
		want := string(vs[i])
		if i == 0 {
			want = "winner"
		}
		if errs[i+1] != nil || string(got[i+1]) != want {
			t.Fatalf("GetBatch[%q] = %q, %v; want %q", ks[i], got[i+1], errs[i+1], want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Racing batches over one shared key space.
	var wg sync.WaitGroup
	var firstErr atomic.Value
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			bk := make([]string, 200)
			bv := make([][]byte, 200)
			for i := range bk {
				bk[i] = ks[rng.Intn(len(ks))]
				bv[i] = []byte(fmt.Sprintf("w%d", w))
			}
			if w%2 == 0 {
				for i, err := range f.PutBatch(bk, bv) {
					if err != nil {
						firstErr.CompareAndSwap(nil, fmt.Errorf("PutBatch %q: %w", bk[i], err))
						return
					}
				}
			} else {
				_, gerrs := f.GetBatch(bk)
				for i, err := range gerrs {
					if err != nil && !errors.Is(err, ErrNotFound) {
						firstErr.CompareAndSwap(nil, fmt.Errorf("GetBatch %q: %w", bk[i], err))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		t.Fatal(err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentPersistence round-trips a concurrent file through disk:
// create, load, close, reopen concurrent (OpenAtWith), reopen sequential
// (plain OpenAt), and scrub a healthy file to a clean report.
func TestConcurrentPersistence(t *testing.T) {
	dir := t.TempDir()
	f, err := CreateAt(dir, Options{BucketCapacity: 8, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	ks := workload.Uniform(31, 500, 3, 9)
	for i, k := range ks {
		if err := f.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Quarantined) != 0 {
		t.Fatalf("healthy scrub quarantined %v", rep.Quarantined)
	}
	if err := f.Put("after-scrub", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := OpenAtWith(dir, Options{Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != len(ks)+1 {
		t.Fatalf("reopened concurrent Len = %d, want %d", g.Len(), len(ks)+1)
	}
	for i, k := range ks {
		if v, err := g.Get(k); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	h, err := OpenAt(dir) // the same file serves fine under the global lock
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if h.Len() != len(ks)+1 {
		t.Fatalf("reopened sequential Len = %d", h.Len())
	}
}

// TestConcurrentOptionGates verifies every configuration the concurrent
// engine refuses, and that the refusals are errors, not panics.
func TestConcurrentOptionGates(t *testing.T) {
	for name, opts := range map[string]Options{
		"basic-variant": {Concurrent: true, Variant: TH},
		"redist":        {Concurrent: true, Redistribution: RedistBoth},
		"collapse":      {Concurrent: true, Redistribution: RedistSuccessor, CollapseOnMerge: true},
		"rotations":     {Concurrent: true, Variant: TH, RotationMerges: true},
		"tombstones":    {Concurrent: true, TombstoneMerges: true},
		"multilevel":    {Concurrent: true, PageCapacity: 16},
	} {
		if f, err := Create(opts); err == nil {
			f.Close()
			t.Errorf("%s: accepted", name)
		}
	}
}
