# Standard targets for the trie-hashing reproduction.

GO ?= go

.PHONY: all build lint lint-graph test race short bench bench-baseline bench-compare bench-put-compare bench-wal bench-format repro cover fuzz obs-bench crash clean

all: build lint test race

build:
	$(GO) build ./...

# Static gates: go vet plus thvet, the repo-specific analyzer suite
# (lock graph, publication safety, atomics, determinism, error
# discipline, obs coverage).
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/thvet

# Render the whole-program lock-acquisition graph (markdown to the
# terminal, DOT to lockgraph.dot for Graphviz/CI) and fail if the
# inferred tier hierarchy drifts from internal/analysis/lockhierarchy.txt.
lint-graph:
	$(GO) run ./cmd/thvet -graph dot > lockgraph.dot
	$(GO) run ./cmd/thvet -graph md

# The race pass on the concurrency-bearing packages is part of the default
# test gate: the sharded pool, the batch path, and the concurrent engine's
# public stress tests live or die by it.
test:
	$(GO) test ./...
	$(GO) test -race ./internal/concurrent ./internal/store
	$(GO) test -race -run 'TestConcurrent' .

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# Regenerate every figure/table of the paper (text and CSV forms).
repro:
	$(GO) run ./cmd/thbench | tee thbench_output.txt
	$(GO) run ./cmd/thbench -csv > thbench_output.csv

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

# Throughput benchmarks for the buffer pool / batch / read path work.
THROUGHPUT_BENCH = BenchmarkConcurrentGetParallel|BenchmarkBatchGet|BenchmarkShardedCache|BenchmarkGet|BenchmarkConcurrentGet

# Save the current HEAD's numbers as the comparison baseline.
bench-baseline:
	$(GO) test -run '^$$' -bench '$(THROUGHPUT_BENCH)' -benchmem -count=5 . | tee bench_baseline.txt

# Re-run the same benchmarks and compare against the saved baseline.
# benchstat is used when installed; otherwise both result sets are printed
# side by side for manual inspection (nothing is downloaded).
bench-compare:
	@test -f bench_baseline.txt || { echo "no bench_baseline.txt: run 'make bench-baseline' on the base commit first"; exit 1; }
	$(GO) test -run '^$$' -bench '$(THROUGHPUT_BENCH)' -benchmem -count=5 . | tee bench_head.txt
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench_baseline.txt bench_head.txt; \
	else \
		echo "--- benchstat not installed; baseline vs HEAD ---"; \
		grep '^Benchmark' bench_baseline.txt | sed 's/^/base /'; \
		grep '^Benchmark' bench_head.txt | sed 's/^/head /'; \
	fi

# Gates: instrumented-but-disabled Get must stay within 5% of the
# uninstrumented baseline (and add zero allocations), and span tracing
# must stay within 15% of a histogram-only observer on the warm read path.
obs-bench:
	OBS_BENCH=1 $(GO) test -run 'TestObsOverhead|TestObsSpanOverhead' -v -timeout 600s .

# Write-path scaling gate: global-lock vs concurrent engine, serial and
# parallel Put/PutBatch/mixed, on a fully cached in-memory store. Writes
# BENCH_write.json and fails when parallel speedup or the serial-overhead
# bound regresses.
bench-put-compare:
	WRITE_BENCH=1 $(GO) test -run TestWriteScaling -v -timeout 600s .

# Durable write-path gate: Put with and without the write-ahead log in
# the simulated-device regime. Writes BENCH_durable.json and fails when
# durable Put exceeds 2x non-durable at 8 writers (group commit must
# amortize the fsync).
bench-wal:
	WAL_BENCH=1 $(GO) test -run TestWALDurableBench -v -timeout 900s .

# On-disk format gate: the compact v2 encoding against the fixed-width
# v1 layout over the thload growth workload (small slots, WAL on, byte
# budgets deciding every split). Writes BENCH_format.json and fails when
# v2 shrinks the file by less than 30% or regresses Put/Get by more
# than 5%. FORMAT_BENCH_SIZE_ONLY=1 keeps only the size gate (CI smoke).
bench-format:
	FORMAT_BENCH=1 $(GO) test -run TestFormatBench -v -timeout 600s .

# The exhaustive crash-point harness: power-cut the canonical workload at
# every journal position (clean, torn, bit-flipped, zeroed) and verify the
# durability contract after reopening — the unlogged workload and the
# WAL-driven one (log appends, checkpoints, truncations all under the
# cut generator). Deterministic — no clocks, no entropy — so a failure
# is a bug, not flake.
crash:
	$(GO) test -run 'TestCrashPoints$$|TestWALCrashPoints$$' -v ./internal/core/

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzFileOps -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzSplitString -fuzztime 15s ./internal/keys/
	$(GO) test -fuzz FuzzComparePathBounds -fuzztime 15s ./internal/keys/
	$(GO) test -fuzz FuzzKeyCompare -fuzztime 15s ./internal/keys/
	$(GO) test -fuzz FuzzTrieDecode -fuzztime 15s ./internal/trie/
	$(GO) test -fuzz FuzzBucketDecodeV2 -fuzztime 15s ./internal/bucket/
	$(GO) test -fuzz FuzzTrieDecodeV2 -fuzztime 15s ./internal/trie/

clean:
	rm -f thbench_output.txt thbench_output.csv bench_output.txt test_output.txt bench_baseline.txt bench_head.txt lockgraph.dot
