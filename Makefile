# Standard targets for the trie-hashing reproduction.

GO ?= go

.PHONY: all build test race short bench repro cover fuzz obs-bench clean

all: build test race

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

short:
	$(GO) test -short ./...

# Regenerate every figure/table of the paper (text and CSV forms).
repro:
	$(GO) run ./cmd/thbench | tee thbench_output.txt
	$(GO) run ./cmd/thbench -csv > thbench_output.csv

bench:
	$(GO) test -bench=. -benchmem ./... | tee bench_output.txt

# Gate: instrumented-but-disabled Get must stay within 5% of the
# uninstrumented baseline (and add zero allocations).
obs-bench:
	OBS_BENCH=1 $(GO) test -run TestObsOverhead -v .

cover:
	$(GO) test -cover ./...

fuzz:
	$(GO) test -fuzz FuzzFileOps -fuzztime 30s ./internal/core/
	$(GO) test -fuzz FuzzSplitString -fuzztime 15s ./internal/keys/
	$(GO) test -fuzz FuzzComparePathBounds -fuzztime 15s ./internal/keys/

clean:
	rm -f thbench_output.txt thbench_output.csv bench_output.txt test_output.txt
