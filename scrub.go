package triehash

import (
	"fmt"
	"path/filepath"

	"triehash/internal/core"
	"triehash/internal/store"
)

// ErrCorrupt is the sentinel every detected-corruption error matches with
// errors.Is: a bucket slot whose checksum, length frame or payload
// encoding no longer decodes. Use errors.As with *CorruptError for the
// damaged slot's address. It is distinct from a key simply being absent —
// corruption is evidence of a torn write or media fault, and Scrub (or
// thcheck -repair) is the recovery path.
var ErrCorrupt = store.ErrCorrupt

// CorruptError reports an unreadable bucket slot with its address and the
// reason reads reject it.
type CorruptError = store.CorruptError

// ScrubReport summarizes a Scrub pass: slots scanned, buckets
// quarantined, and exactly which key ranges were lost.
type ScrubReport = core.ScrubReport

// LostRange names the key coverage of one bucket Scrub gave up.
type LostRange = core.LostRange

// QuarantineEntry is one damaged bucket preserved in the quarantine file:
// its slot address, the read failure that condemned it, and its raw bytes
// as they were on the medium.
type QuarantineEntry = store.QuarantineEntry

// Scrub repairs a file whose bucket store is damaged. Every slot of the
// underlying store is scanned (beneath any buffer pool, so a warm frame
// cannot mask on-medium corruption); unreadable buckets are preserved
// verbatim in dir/quarantine.th — no byte is destroyed before the
// quarantine is durable — their slots are released, and the trie is
// rebuilt from the surviving buckets. The report names each quarantined
// slot and the key range it covered, so callers know exactly what was
// lost. A healthy file scrubs to an empty report.
//
// After a successful scrub the file passes CheckInvariants again and, for
// persistent files, fresh metadata is written back. Scrub applies to
// single-level files; a damaged multilevel file is salvaged by OpenAt,
// which already rebuilds it as a single-level trie.
func (f *File) Scrub() (*ScrubReport, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, ErrClosed
	}
	if f.multi != nil {
		return nil, fmt.Errorf("triehash: scrub of multilevel files is not supported (reopen with OpenAt after the metadata is lost; salvage rebuilds a single-level trie)")
	}
	qpath := ""
	if f.dir != "" {
		qpath = filepath.Join(f.dir, "quarantine.th")
	}
	var rep *ScrubReport
	if f.conc != nil {
		// The exclusive lock quiesces the shared-lock writers; the engine
		// rebuild re-mirrors the repaired trie into a fresh arena.
		ne, r, err := f.conc.Scrub(qpath)
		if err != nil {
			return nil, err
		}
		f.conc, f.eng, rep = ne, ne, r
		ne.SetObsHook(f.hook)
	} else {
		nf, r, err := f.single.Scrub(qpath)
		if err != nil {
			return nil, err
		}
		f.single, f.eng, rep = nf, nf, r
		nf.SetObsHook(f.hook)
	}
	if f.dir != "" {
		if err := f.syncLocked(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// ReadQuarantine returns the buckets preserved in dir/quarantine.th by
// earlier scrubs, oldest first — the forensic record of everything repair
// has given up on. Entries whose own checksum fails are skipped and
// reported through the returned error; the surviving entries are still
// returned.
func ReadQuarantine(dir string) ([]QuarantineEntry, error) {
	return store.ReadQuarantine(filepath.Join(dir, "quarantine.th"))
}
