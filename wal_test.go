package triehash

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"triehash/internal/store"
	"triehash/internal/workload"
)

// driveWALStream applies a fixed deterministic mutation stream — puts,
// overwrites, deletes — and returns the model of what must be present.
func driveWALStream(t *testing.T, f *File, n int) map[string]string {
	t.Helper()
	keys := workload.Uniform(977, n, 3, 8)
	model := map[string]string{}
	for i, k := range keys {
		v := fmt.Sprintf("v%d", i)
		if err := f.Put(k, []byte(v)); err != nil {
			t.Fatalf("Put(%q): %v", k, err)
		}
		model[k] = v
		if i%7 == 3 {
			prev := keys[i-1]
			if err := f.Delete(prev); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("Delete(%q): %v", prev, err)
			}
			delete(model, prev)
		}
	}
	return model
}

// verifyWALModel checks every model record is present with its value and
// the file holds nothing else.
func verifyWALModel(t *testing.T, f *File, model map[string]string) {
	t.Helper()
	for k, want := range model {
		v, err := f.Get(k)
		if err != nil || string(v) != want {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, v, err, want)
		}
	}
	if f.Len() != len(model) {
		t.Fatalf("file has %d keys, model %d", f.Len(), len(model))
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWALDifferentialByteIdentical drives the same stream through a
// WAL-enabled and a WAL-free file and demands byte-identical bucket and
// metadata files: logging is purely additive, it must not perturb what
// the engines write.
func TestWALDifferentialByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{BucketCapacity: 8}},
		{"concurrent", Options{BucketCapacity: 8, Concurrent: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dirs := map[bool]string{}
			for _, withWAL := range []bool{false, true} {
				dir := filepath.Join(t.TempDir(), "db")
				opts := tc.opts
				opts.WAL = withWAL
				f, err := CreateAt(dir, opts)
				if err != nil {
					t.Fatal(err)
				}
				model := driveWALStream(t, f, 400)
				verifyWALModel(t, f, model)
				if err := f.Close(); err != nil {
					t.Fatal(err)
				}
				dirs[withWAL] = dir
			}
			for _, name := range []string{"buckets.th", "meta.th"} {
				a, err := os.ReadFile(filepath.Join(dirs[false], name))
				if err != nil {
					t.Fatal(err)
				}
				b, err := os.ReadFile(filepath.Join(dirs[true], name))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(a, b) {
					t.Errorf("%s differs between WAL-off (%d bytes) and WAL-on (%d bytes)", name, len(a), len(b))
				}
			}
		})
	}
}

// TestWALDifferentialInMemory checks the in-memory WAL configuration
// stays observationally identical to the plain in-memory file.
func TestWALDifferentialInMemory(t *testing.T) {
	plain, err := Create(Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	logged, err := Create(Options{BucketCapacity: 8, WAL: true, CheckpointBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer logged.Close()
	model := driveWALStream(t, plain, 500)
	model2 := driveWALStream(t, logged, 500)
	if len(model) != len(model2) {
		t.Fatalf("streams diverged: %d vs %d model keys", len(model), len(model2))
	}
	verifyWALModel(t, plain, model)
	verifyWALModel(t, logged, model)
	st, ok := logged.WALStats()
	if !ok {
		t.Fatal("WALStats reports no log on a WAL-enabled file")
	}
	if st.Checkpoints == 0 {
		t.Errorf("2 KiB CheckpointBytes never triggered a checkpoint over %d committed records", st.Committed)
	}
	if st.Size > 64*1024 {
		t.Errorf("log grew to %d bytes despite a 2 KiB checkpoint trigger", st.Size)
	}
}

// copyWALDir snapshots the file's on-disk state mid-flight — the crash
// image: bucket writes that reached the OS, the stale metadata of the
// last checkpoint, and the fsynced log.
func copyWALDir(t *testing.T, src string) string {
	t.Helper()
	dst := filepath.Join(t.TempDir(), "crashed")
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestWALReplayAfterCrash cuts power (by snapshotting the directory
// mid-flight, live file never closed) after a stream of logged
// operations and verifies replay reinstates every committed record over
// the stale checkpoint metadata — for both engines.
func TestWALReplayAfterCrash(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{BucketCapacity: 8, WAL: true}},
		{"concurrent", Options{BucketCapacity: 8, WAL: true, Concurrent: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			live := filepath.Join(t.TempDir(), "db")
			f, err := CreateAt(live, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			model := driveWALStream(t, f, 300)

			crashed := copyWALDir(t, live)
			g, err := OpenAt(crashed) // no WAL flag: wal.th presence wins
			if err != nil {
				t.Fatal(err)
			}
			if g.walReplayed == 0 {
				t.Error("open of the crash image replayed no records (metadata was stale)")
			}
			verifyWALModel(t, g, model)
			st, ok := g.WALStats()
			if !ok {
				t.Fatal("replayed file did not stay WAL-enabled")
			}
			if st.Size > 64 {
				t.Errorf("log not folded after replay: %d bytes", st.Size)
			}
			if err := g.Close(); err != nil {
				t.Fatal(err)
			}

			// Replay idempotence: a second crash image restored the same
			// way converges to the same state.
			again := copyWALDir(t, live)
			h, err := OpenAt(again)
			if err != nil {
				t.Fatal(err)
			}
			verifyWALModel(t, h, model)
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			// And a clean reopen after the fold has nothing to replay.
			i, err := OpenAt(crashed)
			if err != nil {
				t.Fatal(err)
			}
			if i.walReplayed != 0 {
				t.Errorf("clean reopen replayed %d records", i.walReplayed)
			}
			verifyWALModel(t, i, model)
			if err := i.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestWALTornTailRepair tears the crash image's log mid-frame and checks
// open truncates the damage, replays the survivors and converges.
func TestWALTornTailRepair(t *testing.T) {
	live := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(live, Options{BucketCapacity: 8, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	model := driveWALStream(t, f, 200)
	// A sentinel put whose log frame the tear below destroys: the record
	// reached the buckets (the snapshot copies them), so canonicalization
	// keeps it even though its frame never survived.
	if err := f.Put("~torn", []byte("tail")); err != nil {
		t.Fatal(err)
	}
	model["~torn"] = "tail"

	crashed := copyWALDir(t, live)
	walFile := filepath.Join(crashed, "wal.th")
	info, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, info.Size()-3); err != nil { // torn mid-frame
		t.Fatal(err)
	}
	g, err := OpenAt(crashed)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if g.walTornTail == "" {
		t.Error("torn tail not reported")
	}
	// The torn record had already reached the buckets (the snapshot copied
	// them), so the full model — torn tail included — must be served.
	verifyWALModel(t, g, model)
}

// TestWALCheckpointBatchesDirSyncs verifies satellite 4's fsync-ordering
// fix: with the WAL attached, directory syncs happen once per checkpoint,
// not once per metadata install — a put-heavy run must not scale them.
func TestWALCheckpointBatchesDirSyncs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 8, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	before := store.DirSyncCount()
	keys := workload.Uniform(31, 200, 3, 8)
	for _, k := range keys {
		if err := f.Put(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if d := store.DirSyncCount() - before; d != 0 {
		t.Errorf("%d directory syncs during logged puts; the log should absorb them all", d)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := store.DirSyncCount() - before; d != 1 {
		t.Errorf("%d directory syncs for one checkpoint, want exactly 1", d)
	}
}

// TestWALFreshCreateDiscardsStaleLog checks CreateAt over a directory
// that previously held a WAL file does not replay the old tenant's log.
func TestWALFreshCreateDiscardsStaleLog(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	f, err := CreateAt(dir, Options{BucketCapacity: 8, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("ghost", []byte("old")); err != nil {
		t.Fatal(err)
	}
	// Crash (no Close): wal.th still holds the put.
	fresh, err := CreateAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fresh.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale log leaked into the fresh file: Get(ghost) err = %v", err)
	}
	if err := fresh.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if _, err := g.Get("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("stale log replayed on reopen: Get(ghost) err = %v", err)
	}
	_ = f // the crashed handle is abandoned, as a real crash would leave it
}
