package triehash

import (
	"fmt"
	"time"

	"triehash/internal/obs"
)

// batchGetter is implemented by engines that can serve a whole batch with
// one bucket access per distinct bucket (the single-level core engine).
type batchGetter interface {
	GetBatch(keys []string) ([][]byte, []error)
}

// batchSpanGetter is batchGetter's span-carrying form.
type batchSpanGetter interface {
	GetBatchSpan(keys []string, sp *obs.Span) ([][]byte, []error)
}

// batchSpanPutter is batchPutter's span-carrying form.
type batchSpanPutter interface {
	PutBatchSpan(keys []string, values [][]byte, sp *obs.Span) []error
}

// GetBatch looks up many keys in one call. The file lock is taken once
// for the whole batch, and on single-level files the keys are partitioned
// by trie leaf so each qualifying bucket is accessed exactly once no
// matter how many keys it serves. Results align with keys: errs[i] is nil
// and vals[i] the value on success; errs[i] is ErrNotFound (or a
// validation error) otherwise. The batch is timed as one OpGetBatch
// sample when an observer is attached.
func (f *File) GetBatch(keys []string) (vals [][]byte, errs []error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		errs = make([]error, len(keys))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return make([][]byte, len(keys)), errs
	}
	o := f.hook.Observer()
	if sp := o.StartSpan(obs.OpGetBatch); sp != nil {
		defer o.FinishSpan(sp)
		if bg, ok := f.eng.(batchSpanGetter); ok {
			vals, errs = bg.GetBatchSpan(keys, sp)
			for i, err := range errs {
				errs[i] = mapNotFound(err)
			}
			return vals, errs
		}
		vals = make([][]byte, len(keys))
		errs = make([]error, len(keys))
		for i, k := range keys {
			v, err := f.eng.GetSpan(k, sp)
			vals[i], errs[i] = v, mapNotFound(err)
		}
		return vals, errs
	}
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	if bg, ok := f.eng.(batchGetter); ok {
		vals, errs = bg.GetBatch(keys)
		for i, err := range errs {
			errs[i] = mapNotFound(err)
		}
	} else {
		vals = make([][]byte, len(keys))
		errs = make([]error, len(keys))
		for i, k := range keys {
			v, err := f.eng.Get(k)
			vals[i], errs[i] = v, mapNotFound(err)
		}
	}
	if o != nil {
		o.RecordOp(obs.OpGetBatch, time.Since(start))
	}
	return vals, errs
}

// batchPutter is implemented by engines that apply a whole batch with one
// latch and one store write per distinct bucket (the concurrent engine,
// whose slow wave also prepares splits of distinct buckets in parallel).
type batchPutter interface {
	PutBatch(keys []string, values [][]byte) []error
}

// PutBatch inserts or replaces many records in one call under a single
// acquisition of the file lock, with input order winning ties (when a key
// appears twice the later value is the one stored). errs aligns with keys;
// the batch is timed as one OpPutBatch sample when an observer is
// attached. On a concurrent file the batch partitions by bucket and the
// bucket work — split I/O included — fans out across CPUs. With
// Options.WAL the whole batch rides one group-commit rendezvous: its
// accepted records are durable in the log when the call returns.
func (f *File) PutBatch(keys []string, values [][]byte) (errs []error) {
	errs = f.putBatchOp(keys, values)
	f.maybeCheckpoint()
	return errs
}

func (f *File) putBatchOp(keys []string, values [][]byte) (errs []error) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("triehash: PutBatch with %d keys but %d values", len(keys), len(values)))
	}
	o := f.hook.Observer()
	if sp := o.StartSpan(obs.OpPutBatch); sp != nil {
		defer o.FinishSpan(sp)
		defer f.opLock()()
		sp.Mark(obs.StageFileLock)
		errs = make([]error, len(keys))
		if f.closed {
			for i := range errs {
				errs[i] = ErrClosed
			}
			return errs
		}
		if bp, ok := f.eng.(batchSpanPutter); ok {
			f.putBatchEngine(func(ks []string, vs [][]byte) []error {
				return bp.PutBatchSpan(ks, vs, sp)
			}, keys, values, errs)
			f.walAppendBatch(keys, values, errs, sp)
			return errs
		}
		for i, k := range keys {
			if f.maxRecord > 0 && len(k)+len(values[i]) > f.maxRecord {
				errs[i] = fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
					ErrRecordTooLarge, len(k)+len(values[i]), f.maxRecord)
				continue
			}
			_, errs[i] = f.eng.PutSpan(k, values[i], sp)
		}
		f.walAppendBatch(keys, values, errs, sp)
		return errs
	}
	defer f.opLock()()
	errs = make([]error, len(keys))
	if f.closed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	if bp, ok := f.eng.(batchPutter); ok {
		f.putBatchEngine(bp.PutBatch, keys, values, errs)
	} else {
		for i, k := range keys {
			if f.maxRecord > 0 && len(k)+len(values[i]) > f.maxRecord {
				errs[i] = fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
					ErrRecordTooLarge, len(k)+len(values[i]), f.maxRecord)
				continue
			}
			_, errs[i] = f.eng.Put(k, values[i])
		}
	}
	f.walAppendBatch(keys, values, errs, nil)
	if o != nil {
		o.RecordOp(obs.OpPutBatch, time.Since(start))
	}
	return errs
}

// putBatchEngine hands the batch to an engine-level PutBatch (plain or
// span-carrying, via the apply closure), first carving out records over
// the persistent-file size limit so they fail exactly as single Puts
// would.
func (f *File) putBatchEngine(apply func([]string, [][]byte) []error, keys []string, values [][]byte, errs []error) {
	ks, vs := keys, values
	var idx []int
	if f.maxRecord > 0 {
		ks = make([]string, 0, len(keys))
		vs = make([][]byte, 0, len(keys))
		idx = make([]int, 0, len(keys))
		for i, k := range keys {
			if len(k)+len(values[i]) > f.maxRecord {
				errs[i] = fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
					ErrRecordTooLarge, len(k)+len(values[i]), f.maxRecord)
				continue
			}
			ks = append(ks, k)
			vs = append(vs, values[i])
			idx = append(idx, i)
		}
	}
	for j, err := range apply(ks, vs) {
		i := j
		if idx != nil {
			i = idx[j]
		}
		errs[i] = mapNotFound(err)
	}
}
