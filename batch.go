package triehash

import (
	"fmt"
	"time"

	"triehash/internal/obs"
)

// batchGetter is implemented by engines that can serve a whole batch with
// one bucket access per distinct bucket (the single-level core engine).
type batchGetter interface {
	GetBatch(keys []string) ([][]byte, []error)
}

// GetBatch looks up many keys in one call. The file lock is taken once
// for the whole batch, and on single-level files the keys are partitioned
// by trie leaf so each qualifying bucket is accessed exactly once no
// matter how many keys it serves. Results align with keys: errs[i] is nil
// and vals[i] the value on success; errs[i] is ErrNotFound (or a
// validation error) otherwise. The batch is timed as one OpGetBatch
// sample when an observer is attached.
func (f *File) GetBatch(keys []string) (vals [][]byte, errs []error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		errs = make([]error, len(keys))
		for i := range errs {
			errs[i] = ErrClosed
		}
		return make([][]byte, len(keys)), errs
	}
	o := f.hook.Observer()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	if bg, ok := f.eng.(batchGetter); ok {
		vals, errs = bg.GetBatch(keys)
		for i, err := range errs {
			errs[i] = mapNotFound(err)
		}
	} else {
		vals = make([][]byte, len(keys))
		errs = make([]error, len(keys))
		for i, k := range keys {
			v, err := f.eng.Get(k)
			vals[i], errs[i] = v, mapNotFound(err)
		}
	}
	if o != nil {
		o.RecordOp(obs.OpGetBatch, time.Since(start))
	}
	return vals, errs
}

// PutBatch inserts or replaces many records in one call under a single
// acquisition of the file lock, applied in input order (so when a key
// appears twice the later value wins). errs aligns with keys; the batch
// is timed as one OpPutBatch sample when an observer is attached.
func (f *File) PutBatch(keys []string, values [][]byte) (errs []error) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("triehash: PutBatch with %d keys but %d values", len(keys), len(values)))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	errs = make([]error, len(keys))
	if f.closed {
		for i := range errs {
			errs[i] = ErrClosed
		}
		return errs
	}
	o := f.hook.Observer()
	var start time.Time
	if o != nil {
		start = time.Now()
	}
	for i, k := range keys {
		if f.maxRecord > 0 && len(k)+len(values[i]) > f.maxRecord {
			errs[i] = fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
				ErrRecordTooLarge, len(k)+len(values[i]), f.maxRecord)
			continue
		}
		_, errs[i] = f.eng.Put(k, values[i])
	}
	if o != nil {
		o.RecordOp(obs.OpPutBatch, time.Since(start))
	}
	return errs
}
