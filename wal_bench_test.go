package triehash

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triehash/internal/store"
	"triehash/internal/wal"
)

// TestWALDurableBench is the `make bench-wal` gate for the durable write
// path. It times Put with and without the write-ahead log in the device
// regime — buckets behind a simulated 200µs access latency, the log
// behind a simulated 200µs fsync — because that is the regime the
// durability tax is real in: on a resident store an fsync-per-put would
// dominate by orders of magnitude and no amount of cleverness changes
// that; on a device, group commit amortizes one fsync over every writer
// waiting at the rendezvous, which is the whole design.
//
// Gate: at 8 writers on the concurrent engine, durable Put stays within
// 2x of non-durable Put. The serial engine is measured too (it commits
// under the exclusive lock, so it pays the full fsync per op — the
// recorded numbers document why the concurrent engine is the durable
// deployment choice). Numbers land in BENCH_durable.json. Opt-in:
// WAL_BENCH=1 (the `make bench-wal` target), benchmarks being noisy.
func TestWALDurableBench(t *testing.T) {
	if os.Getenv("WAL_BENCH") == "" {
		t.Skip("set WAL_BENCH=1 to run the durable write-path gate")
	}
	const (
		nkeys   = 1 << 14
		rounds  = 3
		devOps  = 4096
		devLat  = 200 * time.Microsecond
		syncLat = 200 * time.Microsecond
	)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("%08x", uint32(i)*2654435761)
	}
	val := []byte("payload-v2")

	// build preloads a file on a latency-armed store; when durable, the
	// log rides a device whose syncs pay syncLat. Latency is armed only
	// after the preload.
	build := func(concurrent, durable bool) (*File, *slowStore, *slowWALDevice) {
		ss := &slowStore{Store: store.NewMem()}
		f, err := create(Options{BucketCapacity: 20, Concurrent: concurrent}, "", ss)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := f.Put(k, []byte("payload-v1")); err != nil {
				t.Fatal(err)
			}
		}
		var wd *slowWALDevice
		if durable {
			wd = &slowWALDevice{Device: wal.NewMem()}
			if err := f.attachWAL(wd); err != nil {
				t.Fatal(err)
			}
		}
		ss.delay.Store(int64(devLat))
		if wd != nil {
			wd.syncDelay.Store(int64(syncLat))
		}
		return f, ss, wd
	}

	measure := func(f *File, procs, total int) int64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		best := int64(1 << 62)
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			var failed atomic.Bool
			per := total / procs
			start := time.Now()
			for w := 0; w < procs; w++ {
				shard := keys[w*nkeys/procs : (w+1)*nkeys/procs]
				wg.Add(1)
				go func(shard []string) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if err := f.Put(shard[i%len(shard)], val); err != nil {
							failed.Store(true)
							return
						}
					}
				}(shard)
			}
			wg.Wait()
			if failed.Load() {
				t.Fatal("put failed under measurement")
			}
			if el := time.Since(start).Nanoseconds() / int64(total); el < best {
				best = el
			}
		}
		return best
	}

	type cell struct {
		Engine  string `json:"engine"`
		Durable bool   `json:"durable"`
		Procs   int    `json:"procs"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	var cells []cell
	get := func(engine string, durable bool, procs int) int64 {
		for _, c := range cells {
			if c.Engine == engine && c.Durable == durable && c.Procs == procs {
				return c.NsPerOp
			}
		}
		t.Fatalf("missing cell %s/durable=%v/%d", engine, durable, procs)
		return 0
	}

	var amortized float64
	for _, engine := range []string{"serial", "concurrent"} {
		for _, durable := range []bool{false, true} {
			f, ss, wd := build(engine == "concurrent", durable)
			for _, p := range []int{1, 4, 8} {
				ns := measure(f, p, devOps)
				cells = append(cells, cell{engine, durable, p, ns})
				t.Logf("device %-10s durable=%-5v x%d: %7d ns/op", engine, durable, p, ns)
			}
			if durable && engine == "concurrent" {
				if st, ok := f.WALStats(); ok && st.Fsyncs > 0 {
					amortized = float64(st.Committed) / float64(st.Fsyncs)
					t.Logf("group commit amortization: %.1f commits per fsync (%d/%d)",
						amortized, st.Committed, st.Fsyncs)
				}
			}
			ss.delay.Store(0)
			if wd != nil {
				wd.syncDelay.Store(0)
			}
			f.Close()
		}
	}

	overhead1 := float64(get("concurrent", true, 1)) / float64(get("concurrent", false, 1))
	overhead8 := float64(get("concurrent", true, 8)) / float64(get("concurrent", false, 8))
	serial8 := float64(get("serial", true, 8)) / float64(get("serial", false, 8))
	t.Logf("durable overhead, concurrent engine: %.2fx at 1 writer, %.2fx at 8; serial engine %.2fx at 8",
		overhead1, overhead8, serial8)

	out := struct {
		NumCPU int                `json:"num_cpu"`
		Cells  []cell             `json:"cells"`
		Gates  map[string]float64 `json:"gates"`
	}{runtime.NumCPU(), cells, map[string]float64{
		"durable_overhead_x1": overhead1,
		"durable_overhead_x8": overhead8,
		"serial_overhead_x8":  serial8,
		"commits_per_fsync":   amortized,
	}}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_durable.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if overhead8 > 2.0 {
		t.Errorf("durable Put %.2fx non-durable at 8 writers, budget is 2x: group commit is not amortizing", overhead8)
	}
}

// slowWALDevice simulates a log on a storage device: appends are
// sequential and cheap (they land in the device's write cache), syncs pay
// the full barrier latency. That asymmetry is what group commit exploits.
type slowWALDevice struct {
	wal.Device
	syncDelay atomic.Int64 // ns per Sync; 0 = off
}

func (d *slowWALDevice) Sync() error {
	if s := d.syncDelay.Load(); s > 0 {
		time.Sleep(time.Duration(s))
	}
	return d.Device.Sync()
}
