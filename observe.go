package triehash

import "triehash/internal/obs"

// The observability surface re-exports internal/obs: an Observer collects
// per-operation latency histograms, structural event traces and counters;
// attaching one to a File is a single atomic store and detaching (passing
// nil) returns every hot path to its uninstrumented cost — one atomic
// load and a branch, no allocation.
type (
	// Observer collects operation latencies, structural events and
	// counters for one or more files.
	Observer = obs.Observer
	// ObserverConfig sizes the event ring and gates high-frequency IO
	// events (cache hits/misses, page reads) into it.
	ObserverConfig = obs.Config
	// Event is one structural occurrence: a split, redistribution,
	// merge, page split, cache hit, injected fault, recovery...
	Event = obs.Event
	// EventType enumerates the event kinds.
	EventType = obs.EventType
	// Op identifies an instrumented operation for histogram lookups.
	Op = obs.Op
	// Stage identifies one timed phase inside an instrumented operation
	// (span tracing, ObserverConfig.Spans): trie search, latch and
	// structural-lock wait/hold, cache probe, store I/O, split/merge work.
	Stage = obs.Stage
	// SpanRecord is one slow-op flight-recorder entry: the complete
	// per-stage breakdown of an operation that exceeded the threshold.
	SpanRecord = obs.SpanRecord
	// BucketContention is one row of the latch-contention table: a
	// bucket's accumulated latch wait, wall occupancy and acquire count
	// (Addr -1 is the structural lock).
	BucketContention = obs.BucketContention
)

// The operation and event identifiers, re-exported so callers can query
// Observer.Op and Observer.EventCount without reaching into internal/obs.
const (
	OpGet      = obs.OpGet
	OpPut      = obs.OpPut
	OpDelete   = obs.OpDelete
	OpRange    = obs.OpRange
	OpGetBatch = obs.OpGetBatch
	OpPutBatch = obs.OpPutBatch
	OpRead     = obs.OpRead
	OpWrite    = obs.OpWrite
	OpAlloc    = obs.OpAlloc
	OpFree     = obs.OpFree

	EvSplit          = obs.EvSplit
	EvRedistribution = obs.EvRedistribution
	EvMerge          = obs.EvMerge
	EvBorrow         = obs.EvBorrow
	EvNilAlloc       = obs.EvNilAlloc
	EvPageSplit      = obs.EvPageSplit
	EvPageRead       = obs.EvPageRead
	EvCacheHit       = obs.EvCacheHit
	EvCacheMiss      = obs.EvCacheMiss
	EvCacheEvict     = obs.EvCacheEvict
	EvFault          = obs.EvFault
	EvRecovery       = obs.EvRecovery
	EvCorrupt        = obs.EvCorrupt
	EvQuarantine     = obs.EvQuarantine
	EvWALAppend      = obs.EvWALAppend
	EvWALFsync       = obs.EvWALFsync
	EvCheckpoint     = obs.EvCheckpoint
	EvWALReplay      = obs.EvWALReplay

	StageTrieSearch   = obs.StageTrieSearch
	StageFileLock     = obs.StageFileLock
	StageLatchWait    = obs.StageLatchWait
	StageLatchHold    = obs.StageLatchHold
	StageStructWait   = obs.StageStructWait
	StageStructHold   = obs.StageStructHold
	StageCacheProbe   = obs.StageCacheProbe
	StageStoreRead    = obs.StageStoreRead
	StageStoreWrite   = obs.StageStoreWrite
	StageSplit        = obs.StageSplit
	StageMerge        = obs.StageMerge
	StageRedistribute = obs.StageRedistribute
	StageWALAppend    = obs.StageWALAppend
	StageWALFsync     = obs.StageWALFsync
	StageCommitWait   = obs.StageCommitWait
	StageOther        = obs.StageOther
)

// NewObserver returns an Observer ready to attach with File.Observe.
func NewObserver(cfg ObserverConfig) *Observer { return obs.New(cfg) }

// Observe attaches o to the file — every layer (public API timing, trie
// maintenance events, page accesses, the cache, fault injection) starts
// reporting to it. Passing nil detaches. A file recovered by RecoverAt
// replays the recovery as an event, since the observer necessarily
// attaches after the rebuild.
func (f *File) Observe(o *Observer) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if o != nil {
		o.SetStateFunc(f.obsState)
	}
	f.hook.Set(o)
	if o != nil && f.recovered {
		o.Emit(obs.Event{
			Type: obs.EvRecovery, Addr: -1, Addr2: -1,
			Detail: "trie rebuilt from bucket bounds (RecoverAt)",
		})
	}
	if o != nil && (f.walReplayed > 0 || f.walTornTail != "") {
		detail := "wal records replayed at open"
		if f.walTornTail != "" {
			detail = "wal records replayed at open; torn tail dropped: " + f.walTornTail
		}
		o.Emit(obs.Event{
			Type: obs.EvWALReplay, Addr: int32(f.walReplayed), Addr2: -1,
			Detail: detail,
		})
	}
}

// Observer returns the currently attached observer, or nil.
func (f *File) Observer() *Observer { return f.hook.Observer() }

// obsState snapshots the cheap state gauges for the observer's exports.
func (f *File) obsState() obs.State {
	s := f.Stats()
	return obs.State{
		Keys: s.Keys, Buckets: s.Buckets, Load: s.Load,
		TrieCells: s.TrieCells, Depth: s.Depth,
		Levels: s.Levels, Pages: s.Pages,
	}
}
