package triehash

import (
	"triehash/internal/format"
	"triehash/internal/store"
)

// Stats is a snapshot of the file's structure and the disk traffic it has
// generated — the figures the paper's evaluation is stated in.
type Stats struct {
	// Keys and Buckets describe the file; Load is the bucket load
	// factor a = keys / (capacity * buckets).
	Keys    int
	Buckets int
	Load    float64
	// TrieCells is the paper's trie size M; TrieBytes its size at the
	// practical six bytes per cell; NilLeaves counts the basic
	// method's empty-range leaves.
	TrieCells int
	TrieBytes int
	NilLeaves int
	// Depth is the longest in-memory search path through the trie.
	Depth int
	// Splits counts bucket splits; Redistributions the subset resolved
	// by shifting keys into a neighbour instead of a new bucket.
	Splits          int
	Redistributions int
	// Levels and Pages describe the page hierarchy (1 and 1 for
	// single-level files); PageReads counts non-root page accesses.
	Levels    int
	Pages     int
	PageReads int64
	// IO holds the bucket transfers served by the store.
	IO IOCounters
	// CacheHits and CacheMisses count buffer-pool lookups when
	// Options.CacheFrames is set (both zero without a pool). A hit means
	// the read in IO.Reads was served from memory, not the disk.
	CacheHits   int64
	CacheMisses int64
	// FormatVersion is the on-disk encoding new pages are written at
	// (Options.FormatVersion after defaulting). Individual pages of a file
	// caught mid-upgrade may still be at an older version until their next
	// rewrite.
	FormatVersion int
}

// IOCounters mirrors the store's access counters.
type IOCounters struct {
	Reads  int64
	Writes int64
	Allocs int64
	Frees  int64
}

func fromStore(c store.Counters) IOCounters {
	return IOCounters{Reads: c.Reads, Writes: c.Writes, Allocs: c.Allocs, Frees: c.Frees}
}

// Stats returns the current snapshot.
func (f *File) Stats() Stats {
	if f.concurrent {
		// The concurrent engine's writers run under the shared lock;
		// excluding them makes the snapshot consistent, not just a set of
		// instantaneous counter reads.
		f.mu.Lock()
		defer f.mu.Unlock()
	} else {
		f.mu.RLock()
		defer f.mu.RUnlock()
	}
	var out Stats
	if f.conc != nil {
		s := f.conc.Stats()
		out = Stats{
			Keys: s.Keys, Buckets: s.Buckets, Load: s.Load,
			TrieCells: s.TrieCells, TrieBytes: s.TrieBytes, NilLeaves: s.NilLeaves,
			Depth: s.Depth, Splits: s.Splits, Redistributions: s.Redistributions,
			Levels: 1, Pages: 1,
			IO: fromStore(s.IO),
		}
	} else if f.multi != nil {
		m := f.multi.Stats()
		out = Stats{
			Keys: m.Keys, Buckets: m.Buckets, Load: m.Load,
			TrieCells: m.TrieCells, TrieBytes: m.TrieCells * 6, NilLeaves: m.NilLeaves,
			Splits: m.Splits,
			Levels: m.Levels, Pages: m.Pages, PageReads: m.PageReads,
			IO: fromStore(m.IO),
		}
	} else {
		s := f.single.Stats()
		out = Stats{
			Keys: s.Keys, Buckets: s.Buckets, Load: s.Load,
			TrieCells: s.TrieCells, TrieBytes: s.TrieBytes, NilLeaves: s.NilLeaves,
			Depth: s.Depth, Splits: s.Splits, Redistributions: s.Redistributions,
			Levels: 1, Pages: 1,
			IO: fromStore(s.IO),
		}
	}
	if c := store.AsCachePool(f.eng.Store()); c != nil {
		out.CacheHits, out.CacheMisses = c.Hits(), c.Misses()
	}
	// Reopened files may carry an unset pin; every layer then writes at
	// the default, so report that rather than the raw zero.
	if v := f.opts.formatVersion(); v.Valid() {
		out.FormatVersion = int(v)
	} else {
		out.FormatVersion = int(format.Default)
	}
	return out
}

// ResetIOCounters zeroes every cumulative counter family around a
// measured workload phase: the store's transfer counters (IO), the
// buffer pool's hit/miss counters, the page-access counter, and the
// structural event counters (Splits, Redistributions, and the multilevel
// page splits). State gauges — Keys, Buckets, Load, TrieCells, Depth,
// Levels, Pages — describe the file, not the traffic, and are untouched.
// An attached Observer keeps its own counters; reset those with
// Observer.ResetCounters.
func (f *File) ResetIOCounters() {
	f.mu.Lock()
	defer f.mu.Unlock()
	// The engine resets its structural counters and the store chain's
	// counters (the cache zeroes hits/misses as the reset passes through).
	f.eng.ResetCounters()
}

// CheckInvariants verifies the whole file's structural invariants (it
// reads every bucket; intended for tests and tooling). The exclusive lock
// quiesces the concurrent engine's shared-lock writers.
func (f *File) CheckInvariants() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conc != nil {
		return f.conc.CheckInvariants()
	}
	if f.multi != nil {
		return f.multi.CheckInvariants()
	}
	return f.single.CheckInvariants()
}
