// Command thcheck verifies a persistent trie-hashed file: it opens the
// directory, runs the full structural invariant check (trie shape, key
// placement, ordering, capacity, counters) and prints the statistics.
// Exit status 0 means the file is sound.
//
// When the directory holds a write-ahead log (wal.th), thcheck scans it
// first and reports its length, record counts, the last checkpoint LSN,
// and a torn tail if the crash left one. Opening the file then replays
// the pending records and folds the log — that is the open contract, the
// same replay every reader gets — so a dirty log is repaired by the
// check itself; thcheck's job is to say out loud what the replay did.
//
// With -recover it first rebuilds lost metadata from the logical-path
// bounds stored in every bucket's header (the /TOR83/ reconstruction).
// Opening already falls back to the same reconstruction automatically
// when the metadata is missing or corrupt; the flag forces it.
//
// With -repair it scrubs the bucket file: unreadable buckets are
// preserved in <dir>/quarantine.th, their slots released, the trie
// rebuilt from the survivors, and the lost key ranges printed. The check
// then runs on the repaired file.
//
// Usage:
//
//	thcheck /data/mydb
//	thcheck -recover -b 50 /data/mydb
//	thcheck -repair /data/mydb
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"triehash"
	"triehash/internal/wal"
)

// reportWAL scans dir's log, if any, and prints its pre-replay state:
// what open is about to fold. Returns true when a log file exists.
func reportWAL(dir string) bool {
	data, err := os.ReadFile(filepath.Join(dir, "wal.th"))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "thcheck: wal: %v\n", err)
		}
		return false
	}
	recs, tail, ver, err := wal.Scan(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "thcheck: wal: %v\n", err)
		return true
	}
	var lastCkpt uint64
	pending := 0
	for _, r := range recs {
		if r.Op == wal.OpCheckpoint {
			lastCkpt = r.CheckpointLSN
			pending = 0
			continue
		}
		pending++
	}
	fmt.Printf("wal:         %d bytes, v%d framing, %d records (%d pending past checkpoint LSN %d)\n",
		len(data), ver, len(recs), pending, lastCkpt)
	if tail.Damaged {
		fmt.Printf("wal tail:    damaged at byte %d: %s (%d bytes beyond; open truncates them)\n",
			tail.ValidSize, tail.Reason, tail.Remaining)
	}
	if pending > 0 || tail.Damaged {
		fmt.Printf("wal replay:  open will replay the pending records and fold the log\n")
	}
	return true
}

func main() {
	rec := flag.Bool("recover", false, "rebuild lost metadata from the bucket headers (TOR83)")
	repair := flag.Bool("repair", false, "scrub the bucket file: quarantine unreadable buckets and rebuild the trie from the survivors")
	b := flag.Int("b", 0, "bucket capacity for -recover (0 = the file's capacity hint, or the fullest surviving bucket)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: thcheck [-recover [-b N]] [-repair] <dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)
	hasWAL := reportWAL(dir)
	var f *triehash.File
	var err error
	if *rec {
		f, err = triehash.RecoverAt(dir, triehash.Options{BucketCapacity: *b})
	} else {
		f, err = triehash.OpenAt(dir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "thcheck: open: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	if *repair {
		rep, err := f.Scrub()
		if err != nil {
			fmt.Fprintf(os.Stderr, "thcheck: repair: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("scrubbed:    %d slots, %d healthy buckets\n", rep.SlotsScanned, rep.Survivors)
		if rep.PagesV1 > 0 || rep.PagesV2 > 0 {
			fmt.Printf("page format: %d v1, %d v2", rep.PagesV1, rep.PagesV2)
			if rep.PagesV1 > 0 && rep.PagesV2 > 0 {
				fmt.Printf(" (mixed: file caught mid-upgrade; converges at the next full rewrite)")
			}
			fmt.Println()
		}
		for _, l := range rep.Quarantined {
			fmt.Printf("quarantined: %s\n", l)
		}
		for _, l := range rep.Vanished {
			fmt.Printf("vanished:    %s\n", l)
		}
		if rep.Lost() {
			fmt.Printf("records:     %d kept (%d lost with the quarantined buckets)\n",
				rep.KeysAfter, rep.KeysBefore-rep.KeysAfter)
		}
	}

	st := f.Stats()
	fmt.Printf("file:        %s\n", dir)
	fmt.Printf("format:      v%d (new pages; older pages upgrade as they are rewritten)\n", st.FormatVersion)
	fmt.Printf("records:     %d\n", st.Keys)
	fmt.Printf("buckets:     %d (load %.1f%%)\n", st.Buckets, st.Load*100)
	fmt.Printf("trie:        %d cells, %d bytes, depth %d\n", st.TrieCells, st.TrieBytes, st.Depth)
	if st.Levels > 1 {
		fmt.Printf("pages:       %d in %d levels\n", st.Pages, st.Levels)
	}
	if st.NilLeaves > 0 {
		fmt.Printf("nil leaves:  %d\n", st.NilLeaves)
	}
	fmt.Printf("splits:      %d (%d by redistribution)\n", st.Splits, st.Redistributions)
	if hasWAL {
		if ws, ok := f.WALStats(); ok {
			fmt.Printf("wal now:     folded to %d bytes, durable LSN %d\n", ws.Size, ws.DurableLSN)
		}
	}

	if err := f.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "thcheck: INTEGRITY VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("integrity:   ok")
}
