// Command thcheck verifies a persistent trie-hashed file: it opens the
// directory, runs the full structural invariant check (trie shape, key
// placement, ordering, capacity, counters) and prints the statistics.
// Exit status 0 means the file is sound.
//
// With -recover it first rebuilds lost metadata from the logical-path
// bounds stored in every bucket's header (the /TOR83/ reconstruction).
//
// Usage:
//
//	thcheck /data/mydb
//	thcheck -recover -b 50 /data/mydb
package main

import (
	"flag"
	"fmt"
	"os"

	"triehash"
)

func main() {
	rec := flag.Bool("recover", false, "rebuild lost metadata from the bucket headers (TOR83)")
	b := flag.Int("b", 20, "bucket capacity for -recover (must match the original file)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: thcheck [-recover -b N] <dir>")
		os.Exit(2)
	}
	dir := flag.Arg(0)
	var f *triehash.File
	var err error
	if *rec {
		f, err = triehash.RecoverAt(dir, triehash.Options{BucketCapacity: *b})
	} else {
		f, err = triehash.OpenAt(dir)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "thcheck: open: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()

	st := f.Stats()
	fmt.Printf("file:        %s\n", dir)
	fmt.Printf("records:     %d\n", st.Keys)
	fmt.Printf("buckets:     %d (load %.1f%%)\n", st.Buckets, st.Load*100)
	fmt.Printf("trie:        %d cells, %d bytes, depth %d\n", st.TrieCells, st.TrieBytes, st.Depth)
	if st.Levels > 1 {
		fmt.Printf("pages:       %d in %d levels\n", st.Pages, st.Levels)
	}
	if st.NilLeaves > 0 {
		fmt.Printf("nil leaves:  %d\n", st.NilLeaves)
	}
	fmt.Printf("splits:      %d (%d by redistribution)\n", st.Splits, st.Redistributions)

	if err := f.CheckInvariants(); err != nil {
		fmt.Fprintf(os.Stderr, "thcheck: INTEGRITY VIOLATION: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("integrity:   ok")
}
