// Command thdump builds a trie-hashed file from keys read on standard
// input (one per line) and dumps its structure: the buckets with their
// logical paths (the paper's Fig 1.b/1.c), the cell table of the standard
// representation (Fig 1.d/1.e) and the in-order leaf bounds.
//
// Usage:
//
//	printf 'the\nof\nand\n...' | thdump -b 4 -m 3
//	thdump -b 4 -m 3 -variant th < words.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"triehash/internal/core"
	"triehash/internal/store"
	"triehash/internal/trie"
)

func main() {
	b := flag.Int("b", 4, "bucket capacity")
	m := flag.Int("m", 0, "split key position (0 = middle)")
	bound := flag.Int("bound", 0, "THCL bounding key position (0 = last key)")
	variant := flag.String("variant", "th", "method variant: th or thcl")
	flag.Parse()

	mode := trie.ModeBasic
	if *variant == "thcl" {
		mode = trie.ModeTHCL
	} else if *variant != "th" {
		fmt.Fprintln(os.Stderr, "thdump: -variant must be th or thcl")
		os.Exit(2)
	}
	f, err := core.New(core.Config{
		Capacity: *b, Mode: mode, SplitPos: *m, BoundPos: *bound,
	}, store.NewMem())
	if err != nil {
		fmt.Fprintln(os.Stderr, "thdump:", err)
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	line := 0
	for sc.Scan() {
		line++
		k := sc.Text()
		if k == "" {
			continue
		}
		if _, err := f.Put(k, nil); err != nil {
			fmt.Fprintf(os.Stderr, "thdump: line %d: %v\n", line, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "thdump:", err)
		os.Exit(1)
	}

	tr := f.Trie()
	fmt.Println("buckets (in key order):")
	last := int32(-1)
	for _, lp := range tr.InorderLeaves() {
		path := string(lp.Path)
		if path == "" {
			path = "."
		}
		if lp.Leaf.IsNil() {
			fmt.Printf("  %-12s -> nil\n", path)
			continue
		}
		addr := lp.Leaf.Addr()
		if addr == last {
			fmt.Printf("  %-12s -> %d (shared)\n", path, addr)
			continue
		}
		last = addr
		bk, err := f.Store().Read(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "thdump:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-12s -> %-4d %v\n", path, addr, bk.Keys())
	}
	fmt.Println("\ntrie (nested form):")
	fmt.Println("  " + tr.String())
	fmt.Println("\nstandard representation (cell table):")
	fmt.Print(tr.DumpCells())
	fmt.Println("\nstats:", f.Stats())
	if err := f.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "thdump: INVARIANT VIOLATION:", err)
		os.Exit(1)
	}
}
