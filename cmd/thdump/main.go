// Command thdump builds a trie-hashed file from keys read on standard
// input (one per line) and dumps its structure: the buckets with their
// logical paths (the paper's Fig 1.b/1.c), the cell table of the standard
// representation (Fig 1.d/1.e) and the in-order leaf bounds.
//
// Usage:
//
//	printf 'the\nof\nand\n...' | thdump -b 4 -m 3
//	thdump -b 4 -m 3 -variant th < words.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"triehash/internal/core"
	"triehash/internal/format"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// saved formats the relative size change from v1 to v2.
func saved(v1, v2 int) string {
	if v1 == 0 {
		return "empty"
	}
	return fmt.Sprintf("%.1f%% saved", 100*(1-float64(v2)/float64(v1)))
}

func main() {
	b := flag.Int("b", 4, "bucket capacity")
	m := flag.Int("m", 0, "split key position (0 = middle)")
	bound := flag.Int("bound", 0, "THCL bounding key position (0 = last key)")
	variant := flag.String("variant", "th", "method variant: th or thcl")
	flag.Parse()

	mode := trie.ModeBasic
	if *variant == "thcl" {
		mode = trie.ModeTHCL
	} else if *variant != "th" {
		fmt.Fprintln(os.Stderr, "thdump: -variant must be th or thcl")
		os.Exit(2)
	}
	f, err := core.New(core.Config{
		Capacity: *b, Mode: mode, SplitPos: *m, BoundPos: *bound,
	}, store.NewMem())
	if err != nil {
		fmt.Fprintln(os.Stderr, "thdump:", err)
		os.Exit(2)
	}

	sc := bufio.NewScanner(os.Stdin)
	line := 0
	for sc.Scan() {
		line++
		k := sc.Text()
		if k == "" {
			continue
		}
		if _, err := f.Put(k, nil); err != nil {
			fmt.Fprintf(os.Stderr, "thdump: line %d: %v\n", line, err)
			os.Exit(1)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "thdump:", err)
		os.Exit(1)
	}

	tr := f.Trie()
	fmt.Println("buckets (in key order):")
	last := int32(-1)
	for _, lp := range tr.InorderLeaves() {
		path := string(lp.Path)
		if path == "" {
			path = "."
		}
		if lp.Leaf.IsNil() {
			fmt.Printf("  %-12s -> nil\n", path)
			continue
		}
		addr := lp.Leaf.Addr()
		if addr == last {
			fmt.Printf("  %-12s -> %d (shared)\n", path, addr)
			continue
		}
		last = addr
		bk, err := f.Store().Read(addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "thdump:", err)
			os.Exit(1)
		}
		fmt.Printf("  %-12s -> %-4d %v\n", path, addr, bk.Keys())
	}
	fmt.Println("\ntrie (nested form):")
	fmt.Println("  " + tr.String())
	fmt.Println("\nstandard representation (cell table):")
	fmt.Print(tr.DumpCells())

	// On-disk encoding summary: what the same content costs under the
	// fixed-width v1 layout versus the compact varint v2 layout.
	var bv1, bv2 int
	seen := map[int32]bool{}
	for _, lp := range tr.InorderLeaves() {
		if lp.Leaf.IsNil() || seen[lp.Leaf.Addr()] {
			continue
		}
		seen[lp.Leaf.Addr()] = true
		bk, err := f.Store().Read(lp.Leaf.Addr())
		if err != nil {
			fmt.Fprintln(os.Stderr, "thdump:", err)
			os.Exit(1)
		}
		bv1 += bk.EncodedLen(format.V1)
		bv2 += bk.EncodedLen(format.V2)
	}
	tv1 := len(tr.AppendFormat(nil, format.V1))
	tv2 := len(tr.AppendFormat(nil, format.V2))
	fmt.Println("\non-disk encoding (v1 fixed-width vs v2 varint):")
	fmt.Printf("  buckets: %d B v1, %d B v2 (%s)\n", bv1, bv2, saved(bv1, bv2))
	fmt.Printf("  trie:    %d B v1, %d B v2 (%s)\n", tv1, tv2, saved(tv1, tv2))
	fmt.Printf("  total:   %d B v1, %d B v2 (%s)\n", bv1+tv1, bv2+tv2, saved(bv1+tv1, bv2+tv2))

	fmt.Println("\nstats:", f.Stats())
	if err := f.CheckInvariants(); err != nil {
		fmt.Fprintln(os.Stderr, "thdump: INVARIANT VIOLATION:", err)
		os.Exit(1)
	}
}
