// Command thgen creates a small demonstration database — handy for trying
// thcheck and thdump against a persistent file.
//
// Usage:
//
//	thgen -dir /tmp/demo -n 5000 [-b 20] [-variant thcl]
package main

import (
	"flag"
	"fmt"
	"os"

	"triehash"
	"triehash/internal/workload"
)

func main() {
	dir := flag.String("dir", "", "target directory (required)")
	n := flag.Int("n", 5000, "number of records")
	b := flag.Int("b", 20, "bucket capacity")
	variant := flag.String("variant", "thcl", "th or thcl")
	sorted := flag.Bool("sorted", false, "insert in ascending key order with compact splits")
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "thgen: -dir is required")
		os.Exit(2)
	}
	opts := triehash.Options{BucketCapacity: *b}
	if *variant == "th" {
		opts.Variant = triehash.TH
	} else if *variant != "thcl" {
		fmt.Fprintln(os.Stderr, "thgen: -variant must be th or thcl")
		os.Exit(2)
	}
	ks := workload.Uniform(1, *n, 4, 12)
	if *sorted {
		ks = workload.Ascending(ks)
		opts.SplitPos = *b
	}
	f, err := triehash.CreateAt(*dir, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thgen:", err)
		os.Exit(1)
	}
	for _, k := range ks {
		if err := f.Put(k, []byte("value of "+k)); err != nil {
			fmt.Fprintln(os.Stderr, "thgen:", err)
			os.Exit(1)
		}
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "thgen:", err)
		os.Exit(1)
	}
	fmt.Printf("thgen: wrote %d records to %s\n", *n, *dir)
}
