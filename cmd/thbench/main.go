// Command thbench regenerates the tables and figures of the paper's
// evaluation. Every experiment rebuilds its workload and parameter sweep
// from scratch with fixed seeds, so the output is deterministic.
//
// Usage:
//
//	thbench -list             # enumerate experiments
//	thbench -experiment fig10 # run one experiment
//	thbench                   # run all of them
package main

import (
	"flag"
	"fmt"
	"os"

	"triehash/internal/bench"
	"triehash/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	experiment := flag.String("experiment", "", "run a single experiment by id (default: all)")
	csv := flag.Bool("csv", false, "emit comma-separated rows (for plotting) instead of aligned tables")
	cache := flag.String("cache", "clock", "buffer pool policy for experiments that use one: clock (sharded) or lru")
	procs := flag.Int("procs", 8, "worker goroutines for the contention experiment")
	traceThreshold := flag.Duration("trace-threshold", -1,
		"enable span tracing on every experiment and print an end-of-run span/contention summary; the value is the slow-op flight-recorder threshold (0 = adaptive rolling p99, <0 = tracing off)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /obs.json, /debug/vars and /debug/pprof on this address while experiments run")
	flag.Parse()

	if !bench.SetCachePolicy(*cache) {
		fmt.Fprintf(os.Stderr, "thbench: -cache must be clock or lru, got %q\n", *cache)
		os.Exit(2)
	}
	bench.SetContentionProcs(*procs)
	if *traceThreshold >= 0 {
		bench.SetTraceThreshold(*traceThreshold)
	}

	var spanObs *obs.Observer
	if *metricsAddr != "" || *traceThreshold >= 0 {
		cfg := obs.Config{TraceDepth: 8192}
		if *traceThreshold >= 0 {
			cfg.Spans = true
			cfg.SlowOp = *traceThreshold
		}
		o := obs.New(cfg)
		bench.Observe(o)
		if cfg.Spans {
			spanObs = o
		}
		if *metricsAddr != "" {
			bound, err := obs.Serve(*metricsAddr, o)
			if err != nil {
				fmt.Fprintln(os.Stderr, "thbench:", err)
				os.Exit(2)
			}
			fmt.Fprintf(os.Stderr, "thbench: metrics on http://%s\n", bound)
		}
	}
	defer func() {
		if spanObs != nil {
			obs.WriteSpanPanel(os.Stderr, spanObs.SnapshotSince(0))
		}
	}()
	render := func(t *bench.Table) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Println(t)
	}

	if *list {
		for _, e := range bench.Registry() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment != "" {
		e, ok := bench.ByID(*experiment)
		if !ok {
			fmt.Fprintf(os.Stderr, "thbench: unknown experiment %q; use -list\n", *experiment)
			os.Exit(2)
		}
		render(e.Run())
		return
	}
	for _, e := range bench.Registry() {
		render(e.Run())
	}
}
