// Command thload sweeps the load factor of trie-hashed files over the
// split parameters, the way the paper's Figs 10-11 were produced. It
// prints one row per configuration: load factor a%, trie size M, file
// size N and growth rate s.
//
// Usage:
//
//	thload -n 5000 -b 10,20,50 -order asc -variant thcl -sweep d
//	thload -n 5000 -b 20 -order random -variant th
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"triehash/internal/core"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

func main() {
	n := flag.Int("n", 5000, "number of keys")
	seed := flag.Int64("seed", 10, "workload seed")
	bs := flag.String("b", "10,20,50", "comma-separated bucket capacities")
	order := flag.String("order", "asc", "insertion order: asc, desc or random")
	variant := flag.String("variant", "thcl", "method variant: th or thcl")
	sweep := flag.String("sweep", "", "sweep parameter: 'd' (Fig 10/11 style) or empty for the default middle split")
	redist := flag.String("redist", "none", "redistribution: none, succ, pred or both")
	frames := flag.Int("frames", 0, "buffer pool frames in front of the simulated disk (0 = no pool, the paper's model)")
	cache := flag.String("cache", "clock", "buffer pool policy when -frames > 0: clock (sharded) or lru")
	bulk := flag.Float64("bulkload", 0, "bulk-load the file at this fill in (0,1] instead of inserting incrementally (requires -order asc)")
	bulkWorkers := flag.Int("bulk-workers", 1, "goroutines packing and writing buckets during -bulkload (1 = the sequential loader)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /obs.json, /debug/vars and /debug/pprof on this address during the sweep")
	hold := flag.Duration("hold", 0, "keep serving metrics this long after the sweep (so thstat can attach)")
	traceThreshold := flag.Duration("trace-threshold", -1,
		"trace every Put as a staged span and print an end-of-run span/contention summary; the value is the slow-op flight-recorder threshold (0 = adaptive rolling p99, <0 = tracing off)")
	flag.Parse()

	hook := &obs.Hook{}
	var observer *obs.Observer
	if *metricsAddr != "" || *traceThreshold >= 0 {
		cfg := obs.Config{TraceDepth: 8192}
		if *traceThreshold >= 0 {
			cfg.Spans = true
			cfg.SlowOp = *traceThreshold
		}
		observer = obs.New(cfg)
		hook.Set(observer)
		if *metricsAddr != "" {
			bound, err := obs.Serve(*metricsAddr, observer)
			if err != nil {
				fail(err.Error())
			}
			fmt.Fprintf(os.Stderr, "thload: metrics on http://%s\n", bound)
		}
	}

	mode := trie.ModeTHCL
	if *variant == "th" {
		mode = trie.ModeBasic
	} else if *variant != "thcl" {
		fail("-variant must be th or thcl")
	}
	var rd core.Redistribution
	switch *redist {
	case "none":
		rd = core.RedistNone
	case "succ":
		rd = core.RedistSuccessor
	case "pred":
		rd = core.RedistPredecessor
	case "both":
		rd = core.RedistBoth
	default:
		fail("-redist must be none, succ, pred or both")
	}

	base := workload.Uniform(*seed, *n, 3, 10)
	var ks []string
	switch *order {
	case "asc":
		ks = workload.Ascending(base)
	case "desc":
		ks = workload.Descending(base)
	case "random":
		ks = base
	default:
		fail("-order must be asc, desc or random")
	}

	fmt.Printf("%-4s %-4s %-4s %-6s %-8s %-7s %-7s %-6s\n", "b", "m", "m''", "d", "a%", "M", "N", "s")
	for _, bstr := range strings.Split(*bs, ",") {
		b, err := strconv.Atoi(strings.TrimSpace(bstr))
		if err != nil || b < 2 {
			fail("bad bucket capacity " + bstr)
		}
		for _, cfg := range configs(b, mode, rd, *order, *sweep) {
			var pool store.Store = store.NewMem()
			switch {
			case *frames > 0 && *cache == "lru":
				pool = store.NewCached(pool, *frames)
			case *frames > 0 && *cache == "clock":
				pool = store.NewSharded(pool, *frames, 0)
			case *frames > 0:
				fail("-cache must be clock or lru")
			}
			var f *core.File
			var mu sync.Mutex
			if *bulk > 0 {
				if *order != "asc" {
					fail("-bulkload needs keys in ascending order; use -order asc")
				}
				i := 0
				next := func() (string, []byte, bool) {
					if i >= len(ks) {
						return "", nil, false
					}
					k := ks[i]
					i++
					return k, nil, true
				}
				var err error
				if *bulkWorkers > 1 {
					f, err = core.BulkLoadParallel(cfg, store.NewInstrumented(pool, hook), *bulk, next, *bulkWorkers)
				} else {
					f, err = core.BulkLoad(cfg, store.NewInstrumented(pool, hook), *bulk, next)
				}
				if err != nil {
					fail(err.Error())
				}
				f.SetObsHook(hook)
			} else {
				var err error
				f, err = core.New(cfg, store.NewInstrumented(pool, hook))
				if err != nil {
					fail(err.Error())
				}
				f.SetObsHook(hook)
				// core.File is not concurrency-safe, so the metrics server's
				// state snapshots serialize with the load loop.
				if observer != nil {
					observer.SetStateFunc(func() obs.State {
						mu.Lock()
						s := f.Stats()
						mu.Unlock()
						return obs.State{
							Keys: s.Keys, Buckets: s.Buckets, Load: s.Load,
							TrieCells: s.TrieCells, Depth: s.Depth, Levels: 1, Pages: 1,
						}
					})
				}
				for _, k := range ks {
					mu.Lock()
					perr := put(observer, f, k)
					mu.Unlock()
					if perr != nil {
						fail(perr.Error())
					}
				}
			}
			mu.Lock()
			st := f.Stats()
			mu.Unlock()
			d := 0
			if *order == "desc" && cfg.SplitPos == 1 {
				d = cfg.BoundPos - 2
			} else {
				d = b - cfg.SplitPos
			}
			fmt.Printf("%-4d %-4d %-4d %-6d %-8.3f %-7d %-7d %-6.2f\n",
				b, cfg.SplitPos, cfg.BoundPos, d, st.Load*100, st.TrieCells, st.Buckets, st.GrowthRate)
		}
	}
	if *traceThreshold >= 0 {
		obs.WriteSpanPanel(os.Stderr, observer.SnapshotSince(0))
	}
	if *metricsAddr != "" && *hold > 0 {
		fmt.Fprintf(os.Stderr, "thload: holding metrics server for %v\n", *hold)
		time.Sleep(*hold)
	}
}

// put inserts one key, as a staged span when the observer traces spans
// (-trace-threshold) and as a plain insert otherwise. The span is finished
// on every return path (deferred; the obsop analyzer enforces it).
func put(o *obs.Observer, f *core.File, k string) error {
	if !o.SpansEnabled() {
		_, err := f.Put(k, nil)
		return err
	}
	sp := o.StartSpan(obs.OpPut)
	defer o.FinishSpan(sp)
	_, err := f.PutSpan(k, nil, sp)
	return err
}

// configs enumerates the configurations of a sweep.
func configs(b int, mode trie.Mode, rd core.Redistribution, order, sweep string) []core.Config {
	if sweep != "d" {
		return []core.Config{{Capacity: b, Mode: mode, Redistribution: rd}}
	}
	var out []core.Config
	if order == "desc" && mode == trie.ModeTHCL {
		// Fig 11: m = 1, sweep the bounding key position.
		for d := 0; d <= (3*b)/4 && 2+d <= b+1; d++ {
			out = append(out, core.Config{
				Capacity: b, Mode: mode, Redistribution: rd,
				SplitPos: 1, BoundPos: 2 + d,
			})
		}
		return out
	}
	// Fig 10: sweep the split key position downward from b.
	for d := 0; d <= (3*b)/4 && d < b; d++ {
		out = append(out, core.Config{
			Capacity: b, Mode: mode, Redistribution: rd,
			SplitPos: b - d,
		})
	}
	return out
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "thload:", msg)
	os.Exit(2)
}
