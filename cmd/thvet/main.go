// Command thvet runs the repository's own static-analysis suite — the
// invariants go vet cannot see: latch ordering in the concurrent batch
// path, atomic-vs-plain field access, determinism of the experiment
// packages, store error discipline, and the observability routing of the
// public API. It loads every non-test package of the module with the
// standard library's go/parser + go/types (no x/tools dependency) and
// exits non-zero when any analyzer reports a finding.
//
// Usage:
//
//	thvet [-dir .] [-run name,name] [-list] [-v]
//
// Diagnostics print as path:line:col: [analyzer] message, one per line.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"triehash/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to vet")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	verbose := flag.Bool("v", false, "report the packages loaded and analyzers run")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "thvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thvet:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "thvet: %d packages, %d analyzers\n", len(pkgs), len(analyzers))
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "thvet: loaded %s\n", p.Path)
		}
	}

	diags := analysis.Run(analyzers, pkgs)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
