// Command thvet runs the repository's own static-analysis suite — the
// invariants go vet cannot see: the interprocedural lock-acquisition
// graph of the concurrent engine, the flip-protocol publication safety,
// atomic-vs-plain field access, determinism of the experiment packages,
// store error discipline, and the observability routing of the public
// API. It loads every non-test package of the module with the standard
// library's go/parser + go/types (no x/tools dependency) and exits
// non-zero when any analyzer reports a finding.
//
// Usage:
//
//	thvet [-dir .] [-run name,name] [-list] [-json] [-graph md|dot|hierarchy] [-v]
//
// Diagnostics print as path:line:col: [analyzer] message, one per line,
// or as a JSON array with -json. -graph skips the analyzers and emits the
// whole-program lock-acquisition graph: markdown, DOT, or the inferred
// hierarchy table (which must byte-match internal/analysis/lockhierarchy.txt;
// the exit status says whether it does).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"triehash/internal/analysis"
)

func main() {
	dir := flag.String("dir", ".", "directory inside the module to vet")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the available analyzers and exit")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON (file, line, col, analyzer, message)")
	graph := flag.String("graph", "", "emit the lock-acquisition graph instead of diagnostics: md, dot, or hierarchy")
	verbose := flag.Bool("v", false, "report the packages loaded and analyzers run")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := analysis.All()
	if *run != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			a := analysis.ByName(name)
			if a == nil {
				fmt.Fprintf(os.Stderr, "thvet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := analysis.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thvet:", err)
		os.Exit(2)
	}
	pkgs, err := analysis.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "thvet:", err)
		os.Exit(2)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "thvet: %d packages, %d analyzers\n", len(pkgs), len(analyzers))
		for _, p := range pkgs {
			fmt.Fprintf(os.Stderr, "thvet: loaded %s\n", p.Path)
		}
	}

	if *graph != "" {
		res := analysis.BuildLockGraph(pkgs)
		switch *graph {
		case "md":
			fmt.Print(res.Markdown())
		case "dot":
			fmt.Print(res.DOT())
		case "hierarchy":
			fmt.Print(res.HierarchyText())
		default:
			fmt.Fprintf(os.Stderr, "thvet: unknown -graph format %q (md, dot, hierarchy)\n", *graph)
			os.Exit(2)
		}
		if !res.HierarchyMatches() {
			fmt.Fprintln(os.Stderr, "thvet: inferred lock hierarchy differs from internal/analysis/lockhierarchy.txt")
			os.Exit(1)
		}
		return
	}

	diags := analysis.Run(analyzers, pkgs)
	cwd, _ := os.Getwd()
	rel := func(name string) string {
		if cwd == "" {
			return name
		}
		if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
			return r
		}
		return name
	}
	if *jsonOut {
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				File:     rel(d.Pos.Filename),
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "thvet:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			pos := d.Pos
			pos.Filename = rel(pos.Filename)
			fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "thvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
