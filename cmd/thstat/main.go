// Command thstat tails the observability endpoint of a live thload or
// thbench run (-metrics-addr) and renders a periodic dashboard line:
// state gauges, operation latency quantiles, IO rates and structural
// event deltas. With -events it also prints each traced structural event
// as it arrives.
//
// Usage:
//
//	thload -n 200000 -b 50 -metrics-addr :7071 -hold 1m &
//	thstat -addr localhost:7071
//	thstat -addr localhost:7071 -once          # one snapshot, then exit
//	thstat -addr localhost:7071 -events        # include the event stream
//	thstat -addr localhost:7071 -spans         # span/contention/slow-op panel
//	thstat -addr localhost:7071 -once -wait 10s  # CI smoke: retry until the run is up
//
// When the run traces spans (thload/thbench -trace-threshold), -spans (and
// -once) also render the contention/tail panel: per-stage latency shares,
// the most latch-contended buckets, the structural-lock share and the
// slow-op flight recorder.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"triehash/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:7071", "host:port of a -metrics-addr server")
	interval := flag.Duration("interval", time.Second, "polling interval")
	once := flag.Bool("once", false, "print one snapshot and exit")
	events := flag.Bool("events", false, "also print traced structural events as they arrive")
	spans := flag.Bool("spans", false, "render the span stage/contention/slow-op panel with each poll (span-traced runs)")
	wait := flag.Duration("wait", 0, "keep retrying the first fetch this long before giving up")
	flag.Parse()

	client := &http.Client{Timeout: 5 * time.Second}
	deadline := time.Now().Add(*wait)
	var since uint64
	var prev obs.Snapshot
	first := true
	header := 0
	for {
		snap, err := fetch(client, *addr, since)
		if err != nil {
			// The run may not have bound its listener yet; -wait bounds the
			// retries (continuous mode retries the first fetch forever).
			if first && time.Now().Before(deadline) {
				time.Sleep(200 * time.Millisecond)
				continue
			}
			if *once || !first {
				fail(err.Error())
			}
			time.Sleep(*interval)
			continue
		}
		if *events {
			for _, e := range snap.Events {
				fmt.Printf("event %s\n", e)
			}
		}
		if header%20 == 0 {
			fmt.Printf("%-8s %-8s %-7s %-7s %-6s %-10s %-10s %-9s %-9s %-8s %-8s\n",
				"keys", "buckets", "load%", "cells", "depth", "get p50", "get p95", "reads/s", "writes/s", "splits", "events/s")
		}
		header++
		printLine(snap, prev, first, *interval)
		if *spans || *once {
			obs.WriteSpanPanel(os.Stdout, snap)
		}
		first, prev, since = false, snap, snap.NextSeq
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// fetch pulls one snapshot, tailing events newer than since.
func fetch(c *http.Client, addr string, since uint64) (obs.Snapshot, error) {
	var snap obs.Snapshot
	resp, err := c.Get(fmt.Sprintf("http://%s/obs.json?since=%d", addr, since))
	if err != nil {
		return snap, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return snap, fmt.Errorf("%s returned %s", addr, resp.Status)
	}
	return snap, json.NewDecoder(resp.Body).Decode(&snap)
}

// printLine renders one dashboard line; rates are deltas against the
// previous poll, so the first line shows cumulative totals instead.
func printLine(snap, prev obs.Snapshot, first bool, interval time.Duration) {
	get := snap.Ops[obs.OpGet.String()]
	read := snap.Ops[obs.OpRead.String()]
	write := snap.Ops[obs.OpWrite.String()]
	splits := snap.EventCounts[obs.EvSplit.String()] + snap.EventCounts[obs.EvRedistribution.String()]
	rate := func(cur, old uint64) string {
		if first {
			return fmt.Sprint(cur)
		}
		return fmt.Sprintf("%.0f", float64(cur-old)/interval.Seconds())
	}
	var prevEvents, curEvents uint64
	for _, n := range prev.EventCounts {
		prevEvents += n
	}
	for _, n := range snap.EventCounts {
		curEvents += n
	}
	pr := prev.Ops[obs.OpRead.String()]
	pw := prev.Ops[obs.OpWrite.String()]
	fmt.Printf("%-8d %-8d %-7.1f %-7d %-6d %-10s %-10s %-9s %-9s %-8d %-8s\n",
		snap.State.Keys, snap.State.Buckets, snap.State.Load*100,
		snap.State.TrieCells, snap.State.Depth,
		durStr(get.P50), durStr(get.P95),
		rate(read.Count, pr.Count), rate(write.Count, pw.Count),
		splits, rate(curEvents, prevEvents))
}

// durStr renders a duration compactly, "-" when no samples exist yet.
func durStr(d time.Duration) string {
	if d == 0 {
		return "-"
	}
	return d.Round(time.Microsecond / 10).String()
}

func fail(msg string) {
	fmt.Fprintln(os.Stderr, "thstat:", msg)
	os.Exit(1)
}
