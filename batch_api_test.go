package triehash

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"triehash/internal/bucket"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// bucketWith returns a one-record bucket for store-level tests/benches.
func bucketWith(key string) *bucket.Bucket {
	b := bucket.New(4)
	b.Put(key, nil)
	return b
}

// TestGetBatchMatchesGet checks the public batch lookup against its
// sequential expansion on both engines (the single-level engine groups
// keys by bucket; the multilevel engine falls back to a Get loop).
func TestGetBatchMatchesGet(t *testing.T) {
	for name, opts := range map[string]Options{
		"single": {BucketCapacity: 8, CacheFrames: 32},
		"multi":  {BucketCapacity: 8, PageCapacity: 64},
	} {
		t.Run(name, func(t *testing.T) {
			f, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ks := workload.Uniform(11, 3000, 3, 10)
			for i, k := range ks {
				if err := f.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(5))
			queries := make([]string, 0, 1200)
			for i := 0; i < 1000; i++ {
				queries = append(queries, ks[rng.Intn(len(ks))])
			}
			queries = append(queries, workload.Uniform(99, 200, 3, 10)...) // mostly absent
			vals, errs := f.GetBatch(queries)
			for i, k := range queries {
				wantV, wantErr := f.Get(k)
				if !errors.Is(errs[i], wantErr) {
					t.Fatalf("GetBatch[%d](%q) err = %v, Get err = %v", i, k, errs[i], wantErr)
				}
				if string(vals[i]) != string(wantV) {
					t.Fatalf("GetBatch[%d](%q) = %q, Get = %q", i, k, vals[i], wantV)
				}
			}
		})
	}
}

// TestPutBatchMatchesPut loads the same workload (with duplicate keys)
// through PutBatch and through sequential Puts and compares the files.
func TestPutBatchMatchesPut(t *testing.T) {
	ks := workload.Uniform(17, 4000, 3, 8)
	ks = append(ks, ks[:200]...) // duplicates: later values win
	vals := make([][]byte, len(ks))
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("v%d", i))
	}
	batch, err := Create(Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer batch.Close()
	for i, err := range batch.PutBatch(ks, vals) {
		if err != nil {
			t.Fatalf("PutBatch[%d](%q): %v", i, ks[i], err)
		}
	}
	seq, err := Create(Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer seq.Close()
	for i, k := range ks {
		if err := seq.Put(k, vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	if batch.Len() != seq.Len() {
		t.Fatalf("batch file Len = %d, sequential %d", batch.Len(), seq.Len())
	}
	var got, want []string
	batch.Range("", "", func(k string, v []byte) bool { got = append(got, k+"="+string(v)); return true })
	seq.Range("", "", func(k string, v []byte) bool { want = append(want, k+"="+string(v)); return true })
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("batch and sequential files diverge (%d vs %d records)", len(got), len(want))
	}
	if err := batch.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPutBatchLengthMismatchPanics(t *testing.T) {
	f, err := Create(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("PutBatch with mismatched lengths did not panic")
		}
	}()
	f.PutBatch([]string{"a"}, nil)
}

func TestBatchOnClosedFile(t *testing.T) {
	f, err := Create(Options{})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, errs := f.GetBatch([]string{"a"})
	if !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("GetBatch on closed file: %v", errs[0])
	}
	if errs := f.PutBatch([]string{"a"}, [][]byte{nil}); !errors.Is(errs[0], ErrClosed) {
		t.Fatalf("PutBatch on closed file: %v", errs[0])
	}
}

// TestCachePolicies: both pools serve the same contents and report hits
// through Stats; the default is the sharded CLOCK pool.
func TestCachePolicies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy CachePolicy
	}{{"clock-default", CacheClock}, {"lru", CacheLRU}} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Create(Options{BucketCapacity: 10, CacheFrames: 64, CachePolicy: tc.policy})
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			ks := workload.Uniform(31, 1000, 3, 8)
			for _, k := range ks {
				if err := f.Put(k, []byte(k)); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range ks {
				v, err := f.Get(k)
				if err != nil || string(v) != k {
					t.Fatalf("Get(%q) = %q, %v", k, v, err)
				}
			}
			st := f.Stats()
			if st.CacheHits+st.CacheMisses == 0 {
				t.Fatal("pool reported no traffic through Stats")
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// The configured policy is the one installed.
			isClock := store.AsSharded(f.eng.Store()) != nil
			if (tc.policy == CacheClock) != isClock {
				t.Fatalf("policy %v installed sharded=%v", tc.policy, isClock)
			}
		})
	}
}

// TestCachedGetZeroAlloc is the acceptance gate for the cached Get hot
// path: with the (default) CLOCK pool warm, a public Get allocates
// nothing — the trie descent is path-free, the pool hit hands out a
// shared snapshot instead of a clone, and the bucket search is
// closure-free.
func TestCachedGetZeroAlloc(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 20, CacheFrames: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(41, 5000, 3, 10)
	for _, k := range ks {
		if err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range ks { // warm every bucket into the pool
		if _, err := f.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	var sink []byte
	allocs := testing.AllocsPerRun(500, func() {
		v, err := f.Get(ks[4242])
		if err != nil {
			t.Fatal(err)
		}
		sink = v
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("cached Get allocates %v objects/op, want 0", allocs)
	}
}
