package triehash

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"triehash/internal/format"
)

// goldenV1Dir holds a committed version-1 file: meta, buckets and WAL all
// in the fixed-width v1 layout, written by a build pinned to
// FormatVersion 1 and closed cleanly. It is the compatibility contract
// for the v2 rollout — every future build must open it, read every key,
// and upgrade it surface by surface without data loss.
const goldenV1Dir = "internal/core/testdata/golden_v1"

// goldenRecords is the fixture's exact content. goldenDeleted was
// inserted and then deleted before the fixture was closed, so tombstone
// handling is baked into the committed bytes.
func goldenRecords() (keys []string, deleted string) {
	for i := 1; i <= 12; i++ {
		keys = append(keys, fmt.Sprintf("user:%04d", i))
	}
	keys = append(keys, "ash", "birch", "cedar", "elm", "fir", "hazel")
	return keys, "derry"
}

func goldenValue(k string) []byte { return []byte("value-" + k) }

// goldenOptions is the configuration the fixture was generated with:
// small buckets and slots so the committed file holds several pages and
// the byte-budget gate is armed, WAL on so all three surfaces are
// present.
func goldenOptions() Options {
	return Options{BucketCapacity: 4, SlotBytes: 256, WAL: true, FormatVersion: 1}
}

// TestGoldenV1Regenerate rewrites the committed fixture. It never runs in
// a normal test sweep: set GOLDEN_REGEN=1 only when the generation recipe
// itself changes, and review the resulting byte diff — silently
// regenerating would defeat the point of a compatibility fixture.
func TestGoldenV1Regenerate(t *testing.T) {
	if os.Getenv("GOLDEN_REGEN") == "" {
		t.Skip("set GOLDEN_REGEN=1 to regenerate the committed v1 fixture")
	}
	if err := os.RemoveAll(goldenV1Dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(goldenV1Dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := CreateAt(goldenV1Dir, goldenOptions())
	if err != nil {
		t.Fatal(err)
	}
	keys, deleted := goldenRecords()
	for _, k := range keys {
		if err := f.Put(k, goldenValue(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Put(deleted, goldenValue(deleted)); err != nil {
		t.Fatal(err)
	}
	if err := f.Delete(deleted); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// copyGoldenV1 copies the committed fixture into a fresh temp dir so a
// test can open (and mutate) it freely.
func copyGoldenV1(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	ents, err := os.ReadDir(goldenV1Dir)
	if err != nil {
		t.Fatalf("reading the committed fixture (regenerate with GOLDEN_REGEN=1): %v", err)
	}
	for _, e := range ents {
		blob, err := os.ReadFile(filepath.Join(goldenV1Dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// verifyGoldenContent checks every fixture record against f.
func verifyGoldenContent(t *testing.T, f *File) {
	t.Helper()
	keys, deleted := goldenRecords()
	for _, k := range keys {
		v, err := f.Get(k)
		if err != nil {
			t.Fatalf("get %q: %v", k, err)
		}
		if string(v) != string(goldenValue(k)) {
			t.Fatalf("get %q = %q, want %q", k, v, goldenValue(k))
		}
	}
	if _, err := f.Get(deleted); !errors.Is(err, ErrNotFound) {
		t.Fatalf("get deleted %q: %v, want ErrNotFound", deleted, err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestGoldenV1Open is the compatibility gate: the committed v1 file must
// open under the current (v2-default) build with every record intact.
func TestGoldenV1Open(t *testing.T) {
	dir := copyGoldenV1(t)
	f, err := OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	verifyGoldenContent(t, f)
	if got := f.Stats().FormatVersion; got != int(format.Default) {
		t.Fatalf("Stats().FormatVersion = %d, want the default %d", got, format.Default)
	}
	// Nothing was rewritten yet, so every committed bucket page is still v1.
	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesV1 == 0 {
		t.Fatalf("fixture pages report v1=%d v2=%d, want v1 pages present", rep.PagesV1, rep.PagesV2)
	}
}

// TestGoldenV1UpgradeAtCheckpoint reopens the fixture without a version
// pin and drives one write and one checkpoint: the meta and WAL surfaces
// must flip to v2 immediately, bucket pages upgrade only as they are
// rewritten (a mixed-version file is the designed intermediate state),
// and no record is lost along the way.
func TestGoldenV1UpgradeAtCheckpoint(t *testing.T) {
	dir := copyGoldenV1(t)
	f, err := OpenAtWith(dir, Options{WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("ivy", []byte("value-ivy")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	meta, err := os.ReadFile(filepath.Join(dir, "meta.th"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(meta[4:]); v != uint32(format.V2) {
		t.Fatalf("meta version after checkpoint = %d, want %d", v, format.V2)
	}
	wal, err := os.ReadFile(filepath.Join(dir, "wal.th"))
	if err != nil {
		t.Fatal(err)
	}
	if len(wal) < 5 || string(wal[:4]) != "TWAL" || wal[4] != byte(format.V2) {
		t.Fatalf("wal after checkpoint does not open with a v2 header: % x", wal[:min(8, len(wal))])
	}

	f, err = OpenAt(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	verifyGoldenContent(t, f)
	if v, err := f.Get("ivy"); err != nil || string(v) != "value-ivy" {
		t.Fatalf("get ivy = %q, %v", v, err)
	}
	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesV2 == 0 {
		t.Fatalf("pages after one rewrite: v1=%d v2=%d, want at least one v2 page", rep.PagesV1, rep.PagesV2)
	}
}

// TestGoldenV1PinStaysV1 reopens the fixture pinned to FormatVersion 1:
// every surface must keep the v1 layout across writes and checkpoints —
// the downgrade-compatibility escape hatch for a rollback.
func TestGoldenV1PinStaysV1(t *testing.T) {
	dir := copyGoldenV1(t)
	f, err := OpenAtWith(dir, Options{WAL: true, FormatVersion: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("ivy", []byte("value-ivy")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	rep, err := f.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesV2 != 0 {
		t.Fatalf("pinned file wrote %d v2 pages", rep.PagesV2)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	meta, err := os.ReadFile(filepath.Join(dir, "meta.th"))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint32(meta[4:]); v != uint32(format.V1) {
		t.Fatalf("pinned meta version = %d, want %d", v, format.V1)
	}
	if wal, err := os.ReadFile(filepath.Join(dir, "wal.th")); err != nil {
		t.Fatal(err)
	} else if len(wal) >= 4 && string(wal[:4]) == "TWAL" {
		t.Fatalf("pinned wal gained a v2 header")
	}
}

// TestGoldenV1FutureMetaRefused byte-edits the fixture's meta to a
// version this build does not know (re-sealing the checksum, so the edit
// reads as a future build's work, not corruption). OpenAt must refuse
// with the typed error — and specifically must NOT salvage, which would
// rebuild and overwrite a file that is not damaged.
func TestGoldenV1FutureMetaRefused(t *testing.T) {
	dir := copyGoldenV1(t)
	path := filepath.Join(dir, "meta.th")
	meta, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(meta[4:], 9)
	body := meta[:len(meta)-4]
	binary.LittleEndian.PutUint32(meta[len(meta)-4:], crc32.ChecksumIEEE(body))
	if err := os.WriteFile(path, meta, 0o644); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(filepath.Join(dir, "buckets.th"))
	if err != nil {
		t.Fatal(err)
	}

	_, err = OpenAt(dir)
	var unknown *format.UnknownVersionError
	if !errors.As(err, &unknown) {
		t.Fatalf("open future-version meta: %v, want *format.UnknownVersionError", err)
	}
	if unknown.Surface != "meta" || unknown.Version != 9 {
		t.Fatalf("unknown version error = %+v, want meta version 9", unknown)
	}
	// Refusal must be read-only: no salvage, no rewrite of any surface.
	after, err := os.ReadFile(filepath.Join(dir, "buckets.th"))
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("refused open modified buckets.th")
	}
	if again, err := os.ReadFile(path); err != nil || string(again) != string(meta) {
		t.Fatalf("refused open modified meta.th (err %v)", err)
	}
}

// TestFormatDifferential grows one file per format version (and, per
// version, one per engine) through an identical operation stream and
// demands: observationally identical content across all four, buckets.th
// byte-identical between the serial and concurrent engine at the same
// version, and a strictly smaller v2 bucket file — the compact encoding
// must change the bytes, not the semantics.
func TestFormatDifferential(t *testing.T) {
	type build struct {
		version    int
		concurrent bool
	}
	builds := []build{{1, false}, {1, true}, {2, false}, {2, true}}
	keys := make([]string, 0, 400)
	for i := 0; i < 400; i++ {
		keys = append(keys, fmt.Sprintf("user:%04d", i*31%400))
	}
	dirs := map[build]string{}
	for _, b := range builds {
		dir := t.TempDir()
		dirs[b] = dir
		f, err := CreateAt(dir, Options{
			BucketCapacity: 8, SlotBytes: 256,
			FormatVersion: b.version, Concurrent: b.concurrent,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, k := range keys {
			val := make([]byte, i%29)
			for j := range val {
				val[j] = byte('a' + i%26)
			}
			if err := f.Put(k, val); err != nil {
				t.Fatalf("v%d concurrent=%v: put %q: %v", b.version, b.concurrent, k, err)
			}
			if i%5 == 4 {
				if err := f.Delete(keys[i-2]); err != nil {
					t.Fatalf("v%d concurrent=%v: delete %q: %v", b.version, b.concurrent, keys[i-2], err)
				}
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("v%d concurrent=%v: invariants: %v", b.version, b.concurrent, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// All four must serve the same records.
	var want map[string]string
	for _, b := range builds {
		f, err := OpenAt(dirs[b])
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]string{}
		err = f.Range("", "", func(k string, v []byte) bool {
			got[k] = string(v)
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("v%d concurrent=%v holds %d records, want %d", b.version, b.concurrent, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Fatalf("v%d concurrent=%v: %q = %q, want %q", b.version, b.concurrent, k, got[k], v)
			}
		}
	}

	read := func(b build) []byte {
		blob, err := os.ReadFile(filepath.Join(dirs[b], "buckets.th"))
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	for _, v := range []int{1, 2} {
		serial, conc := read(build{v, false}), read(build{v, true})
		if string(serial) != string(conc) {
			t.Fatalf("v%d: serial and concurrent buckets.th differ (%d vs %d bytes)", v, len(serial), len(conc))
		}
	}
	if v1, v2 := len(read(build{1, false})), len(read(build{2, false})); v2 >= v1 {
		t.Fatalf("v2 buckets.th is %d bytes, not smaller than v1's %d", v2, v1)
	}
}
