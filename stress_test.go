package triehash

import (
	"fmt"
	"testing"

	"triehash/internal/workload"
)

// TestRangeAccessEfficiency: a range scan reads exactly the qualifying
// buckets — the ordered-file property that separates trie hashing from
// ordinary hashing.
func TestRangeAccessEfficiency(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 20})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ks := workload.Uniform(41, 5000, 4, 10)
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	sorted := workload.Ascending(ks)

	// Point-sized range: at most the one bucket holding the key plus at
	// most one boundary neighbour.
	f.ResetIOCounters()
	n := 0
	if err := f.Range(sorted[2500], sorted[2500], func(string, []byte) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("point range saw %d records", n)
	}
	if r := f.Stats().IO.Reads; r > 2 {
		t.Errorf("point range read %d buckets, want <= 2", r)
	}

	// A 200-record range reads about 200/(20*load) buckets, not the file.
	f.ResetIOCounters()
	n = 0
	if err := f.Range(sorted[1000], sorted[1199], func(string, []byte) bool {
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Fatalf("range saw %d records, want 200", n)
	}
	reads := f.Stats().IO.Reads
	if reads > 25 {
		t.Errorf("200-record range read %d buckets (file has %d)", reads, f.Stats().Buckets)
	}
	t.Logf("200-record range: %d bucket reads of %d buckets total", reads, f.Stats().Buckets)
}

// TestLargeScale pushes each engine to 150k records and verifies
// invariants, lookups and ordered iteration — a guard against
// superlinear blowups hiding at small test sizes.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test")
	}
	const n = 150000
	ks := workload.Uniform(42, n, 4, 14)
	for name, opts := range map[string]Options{
		"thcl":      {BucketCapacity: 50},
		"mlth-thcl": {BucketCapacity: 50, PageCapacity: 256},
	} {
		name, opts := name, opts
		t.Run(name, func(t *testing.T) {
			f, err := Create(opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			for i, k := range ks {
				if err := f.Put(k, []byte(k[:2])); err != nil {
					t.Fatalf("Put #%d (%q): %v", i, k, err)
				}
			}
			st := f.Stats()
			if st.Keys != n {
				t.Fatalf("keys = %d", st.Keys)
			}
			if st.Load < 0.6 || st.Load > 0.8 {
				t.Errorf("load %.3f out of the random band", st.Load)
			}
			// Spot lookups.
			for i := 0; i < n; i += 997 {
				if v, err := f.Get(ks[i]); err != nil || string(v) != ks[i][:2] {
					t.Fatalf("Get(%q) = %q, %v", ks[i], v, err)
				}
			}
			// Ordered iteration is complete and sorted.
			prev := ""
			count := 0
			if err := f.Range("a", "", func(k string, _ []byte) bool {
				if prev != "" && k <= prev {
					t.Fatalf("order violated: %q after %q", k, prev)
				}
				prev = k
				count++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if count != n {
				t.Fatalf("scan saw %d of %d records", count, n)
			}
			t.Logf("%s at %dk: %d buckets, load %.3f, trie %d cells (%d KB), depth %d, levels %d",
				name, n/1000, st.Buckets, st.Load, st.TrieCells, st.TrieBytes/1024, st.Depth, st.Levels)
		})
	}
}

// TestLargeScaleCompact: a 150k-record compact bulk load stays exactly
// 100% and the trie stays small.
func TestLargeScaleCompact(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test")
	}
	const n = 150000
	ks := make([]string, n)
	for i := range ks {
		ks[i] = fmt.Sprintf("evt-%010d", i*3)
	}
	f, err := Create(Options{BucketCapacity: 50, SplitPos: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, k := range ks {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Load < 0.999 {
		t.Fatalf("compact load %.4f", st.Load)
	}
	if st.Buckets != n/50 {
		t.Fatalf("buckets = %d, want %d", st.Buckets, n/50)
	}
	t.Logf("150k compact: %d buckets, trie %d cells (%d KB)", st.Buckets, st.TrieCells, st.TrieBytes/1024)
}
