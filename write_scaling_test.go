package triehash

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triehash/internal/bucket"
	"triehash/internal/store"
)

// TestWriteScaling is the `make bench-put-compare` gate for the
// store-backed concurrent engine. It times Put, PutBatch and a mixed
// Put/Get workload on both engines at 1, 4 and 8 writer goroutines, in
// two regimes:
//
//   - mem: a fully resident MemStore — the pure-CPU cost of the write
//     path. Gate: the concurrent engine's single-threaded Put stays
//     within 10% of the global-lock engine's (the price of latching must
//     be near zero when nobody contends).
//   - device: the same store behind a simulated 200µs access latency,
//     the regime the paper's cost model describes (everything is counted
//     in disk accesses). Writers sleeping in device time overlap under
//     per-bucket latches but serialize under the global lock, so this is
//     where the engine's parallelism is measurable even on one CPU.
//     Gate: ≥2× Put throughput at 8 writers.
//
// The mem-regime parallel speedup is also recorded, and gated at ≥2×
// when the host actually exposes ≥8 CPUs (wall-clock CPU scaling cannot
// exist on fewer). All numbers land in BENCH_write.json; the previous
// file, when it came from a comparable (≥8-CPU) host, doubles as the
// regression baseline — a run may not lose more than 10% of the
// recorded mem-regime speedup. Benchmarks are noisy, so the test is
// opt-in: WRITE_BENCH=1 (the `make bench-put-compare` target).
func TestWriteScaling(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to run the write-path scaling gate")
	}
	const (
		nkeys  = 1 << 15
		rounds = 3
	)
	keys := make([]string, nkeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("%08x", uint32(i)*2654435761) // bijective scatter
	}
	val := []byte("payload-v2")

	build := func(concurrent bool, st store.Store) *File {
		f, err := create(Options{BucketCapacity: 20, Concurrent: concurrent}, "", st)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range keys {
			if err := f.Put(k, []byte("payload-v1")); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}

	// measure runs total operations split across procs workers over
	// disjoint key shards and returns the best-of-rounds ns/op.
	measure := func(f *File, mode string, procs, total int) int64 {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		best := int64(1 << 62)
		for r := 0; r < rounds; r++ {
			var wg sync.WaitGroup
			var failed atomic.Bool
			per := total / procs
			start := time.Now()
			for w := 0; w < procs; w++ {
				shard := keys[w*nkeys/procs : (w+1)*nkeys/procs]
				wg.Add(1)
				go func(shard []string) {
					defer wg.Done()
					switch mode {
					case "put":
						for i := 0; i < per; i++ {
							if err := f.Put(shard[i%len(shard)], val); err != nil {
								failed.Store(true)
								return
							}
						}
					case "putbatch":
						const bs = 128
						vs := make([][]byte, bs)
						for i := range vs {
							vs[i] = val
						}
						for done := 0; done < per; done += bs {
							lo := done % (len(shard) - bs)
							for _, err := range f.PutBatch(shard[lo:lo+bs], vs) {
								if err != nil {
									failed.Store(true)
									return
								}
							}
						}
					case "mixed":
						for i := 0; i < per; i++ {
							k := shard[i%len(shard)]
							if i%2 == 0 {
								if err := f.Put(k, val); err != nil {
									failed.Store(true)
									return
								}
							} else if _, err := f.Get(k); err != nil {
								failed.Store(true)
								return
							}
						}
					}
				}(shard)
			}
			wg.Wait()
			if failed.Load() {
				t.Fatalf("%s x%d: operation failed", mode, procs)
			}
			if el := time.Since(start).Nanoseconds() / int64(total); el < best {
				best = el
			}
		}
		return best
	}

	type cell struct {
		Regime  string `json:"regime"`
		Engine  string `json:"engine"`
		Mode    string `json:"mode"`
		Procs   int    `json:"procs"`
		NsPerOp int64  `json:"ns_per_op"`
	}
	var cells []cell
	get := func(regime, engine, mode string, procs int) int64 {
		for _, c := range cells {
			if c.Regime == regime && c.Engine == engine && c.Mode == mode && c.Procs == procs {
				return c.NsPerOp
			}
		}
		t.Fatalf("missing cell %s/%s/%s/%d", regime, engine, mode, procs)
		return 0
	}
	procsLevels := []int{1, 4, 8}

	// Regime 1: resident MemStore, all three modes.
	for _, engine := range []string{"global", "concurrent"} {
		f := build(engine == "concurrent", store.NewMem())
		for _, mode := range []string{"put", "putbatch", "mixed"} {
			for _, p := range procsLevels {
				ns := measure(f, mode, p, 1<<17)
				cells = append(cells, cell{"mem", engine, mode, p, ns})
				t.Logf("mem %-10s %-8s x%d: %6d ns/op", engine, mode, p, ns)
			}
		}
		f.Close()
	}

	// Regime 2: 200µs simulated device latency, Put only. The delay is
	// armed after the preload so building the file stays fast.
	const devOps = 4096
	for _, engine := range []string{"global", "concurrent"} {
		ss := &slowStore{Store: store.NewMem()}
		f := build(engine == "concurrent", ss)
		ss.delay.Store(int64(200 * time.Microsecond))
		for _, p := range procsLevels {
			ns := measure(f, "put", p, devOps)
			cells = append(cells, cell{"device", engine, "put", p, ns})
			t.Logf("device %-10s put x%d: %7d ns/op", engine, p, ns)
		}
		ss.delay.Store(0)
		f.Close()
	}

	serialOverhead := float64(get("mem", "concurrent", "put", 1))/float64(get("mem", "global", "put", 1)) - 1
	memSpeedup := float64(get("mem", "global", "put", 8)) / float64(get("mem", "concurrent", "put", 8))
	devSpeedup := float64(get("device", "global", "put", 8)) / float64(get("device", "concurrent", "put", 8))
	t.Logf("serial overhead %.2f%%, parallel Put speedup x8: mem %.2fx, device %.2fx",
		serialOverhead*100, memSpeedup, devSpeedup)

	type results struct {
		NumCPU int `json:"num_cpu"`
		Cells  []cell
		Gates  map[string]float64 `json:"gates"`
	}

	// The previous file is the regression baseline — read it before the
	// overwrite below destroys it.
	var baseline results
	haveBaseline := false
	if blob, err := os.ReadFile("BENCH_write.json"); err == nil {
		haveBaseline = json.Unmarshal(blob, &baseline) == nil
	}

	out := results{runtime.NumCPU(), cells, map[string]float64{
		"serial_overhead_pct":     serialOverhead * 100,
		"parallel_speedup_mem":    memSpeedup,
		"parallel_speedup_device": devSpeedup,
	}}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_write.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if serialOverhead > 0.10 {
		t.Errorf("single-threaded Put overhead %.2f%% exceeds the 10%% budget", serialOverhead*100)
	}
	if devSpeedup < 2.0 {
		t.Errorf("device-regime parallel Put speedup %.2fx at 8 writers, want >= 2x", devSpeedup)
	}
	if runtime.NumCPU() >= 8 {
		if memSpeedup < 2.0 {
			t.Errorf("mem-regime parallel Put speedup %.2fx at 8 writers on %d CPUs, want >= 2x",
				memSpeedup, runtime.NumCPU())
		}
		// The batch path shares the Put machinery plus one partition pass;
		// it must not fall meaningfully behind plain Put at full fan-out
		// (the PR 6 regression was exactly this, from worker
		// oversubscription).
		putNs := get("mem", "concurrent", "put", 8)
		batchNs := get("mem", "concurrent", "putbatch", 8)
		if float64(batchNs) > float64(putNs)*1.15 {
			t.Errorf("mem-regime PutBatch x8 %d ns/op vs Put x8 %d ns/op: batch path more than 15%% behind",
				batchNs, putNs)
		}
		// Cross-run regression gate, armed only between comparable hosts:
		// losing more than 10% of the recorded parallel speedup is a
		// regression, not noise.
		if haveBaseline && baseline.NumCPU >= 8 {
			if prev := baseline.Gates["parallel_speedup_mem"]; prev > 0 && memSpeedup < prev*0.90 {
				t.Errorf("mem-regime parallel speedup regressed: %.2fx vs recorded %.2fx", memSpeedup, prev)
			}
		}
	} else {
		t.Logf("host exposes %d CPU(s): mem-regime speedup and regression gates not armed (CPU scaling needs cores)", runtime.NumCPU())
	}
}

// slowStore simulates a storage device: every Read and Write pays a
// fixed latency. It deliberately hides the inner store's ReadView so
// both engines pay the same per-access price.
type slowStore struct {
	store.Store
	delay atomic.Int64 // ns per access; 0 = off
}

func (s *slowStore) pause() {
	if d := s.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

func (s *slowStore) Read(addr int32) (*bucket.Bucket, error) {
	s.pause()
	return s.Store.Read(addr)
}

func (s *slowStore) Write(addr int32, b *bucket.Bucket) error {
	s.pause()
	return s.Store.Write(addr, b)
}
