package triehash

import (
	"fmt"
	"os"
	"testing"

	"triehash/internal/core"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// TestObsOverhead is the `make obs-bench` gate: with instrumentation
// compiled in but no observer attached, Get must cost at most 5% more
// than the uninstrumented configuration, and must not allocate anything
// the uninstrumented path doesn't. The comparison isolates exactly what
// the observability layer adds — the hook's atomic load and branch on the
// operation path plus the Instrumented store wrapper — by building one
// file with neither and one with both (observer left nil).
//
// Benchmarks are noisy, so the test is opt-in (OBS_BENCH=1) and takes the
// best of several rounds per side; it is not part of the tier-1 suite.
func TestObsOverhead(t *testing.T) {
	if os.Getenv("OBS_BENCH") == "" {
		t.Skip("set OBS_BENCH=1 to run the instrumentation overhead gate")
	}
	const n = 50000
	ks := workload.Uniform(7, n, 3, 16)
	cfg := core.Config{Capacity: 50}

	build := func(st store.Store, hook *obs.Hook) *core.File {
		f, err := core.New(cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if hook != nil {
			f.SetObsHook(hook)
		}
		for _, k := range ks {
			if _, err := f.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}

	base := build(store.NewMem(), nil)
	hook := &obs.Hook{} // observer stays nil: the disabled hot path
	inst := build(store.NewInstrumented(store.NewMem(), hook), hook)

	bench := func(f *core.File) testing.BenchmarkResult {
		best := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Get(ks[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})
		for round := 0; round < 4; round++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := f.Get(ks[i%n]); err != nil {
						b.Fatal(err)
					}
				}
			})
			if r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}

	rb := bench(base)
	ri := bench(inst)
	overhead := float64(ri.NsPerOp())/float64(rb.NsPerOp()) - 1
	fmt.Printf("obs-bench: baseline %d ns/op, instrumented-disabled %d ns/op, overhead %.2f%%\n",
		rb.NsPerOp(), ri.NsPerOp(), overhead*100)
	if overhead > 0.05 {
		t.Errorf("disabled instrumentation costs %.2f%% on Get, budget is 5%%", overhead*100)
	}
	if db, di := rb.AllocsPerOp(), ri.AllocsPerOp(); di > db {
		t.Errorf("disabled instrumentation allocates: %d allocs/op vs baseline %d", di, db)
	}
}

// TestObsSpanOverhead is the enabled-path companion gate (PR 6): with span
// tracing on, warm-path Get — span checkout from the pool, a trie-search
// mark, a store-read mark, FinishSpan's histogram updates — must cost at
// most 15% more than the same file serving Get with a histogram-only
// observer attached. That baseline isolates what *spans* add: the cost of
// attaching any observer at all is the whole-op timing both configurations
// share, and the cost of having the machinery compiled in but detached is
// TestObsOverhead's separate 5% gate. Measured through the public API,
// since that is where span dispatch lives. Opt-in like TestObsOverhead
// (OBS_BENCH=1); the measured chain (no observer → histograms → spans) is
// what E31 reports.
func TestObsSpanOverhead(t *testing.T) {
	if os.Getenv("OBS_BENCH") == "" {
		t.Skip("set OBS_BENCH=1 to run the span overhead gate")
	}
	const n = 50000
	ks := workload.Uniform(7, n, 3, 16)
	f, err := Create(Options{BucketCapacity: 50})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, k := range ks {
		if err := f.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	bench := func() testing.BenchmarkResult {
		run := func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Get(ks[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		}
		best := testing.Benchmark(run)
		for round := 0; round < 4; round++ {
			if r := testing.Benchmark(run); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}

	f.Observe(nil)
	rn := bench()
	f.Observe(NewObserver(ObserverConfig{}))
	rb := bench()
	f.Observe(NewObserver(ObserverConfig{Spans: true}))
	ri := bench()
	f.Observe(nil)
	overhead := float64(ri.NsPerOp())/float64(rb.NsPerOp()) - 1
	fmt.Printf("obs-bench: no-observer %d ns/op, histograms %d ns/op, spans %d ns/op, span overhead %.2f%%\n",
		rn.NsPerOp(), rb.NsPerOp(), ri.NsPerOp(), overhead*100)
	if overhead > 0.15 {
		t.Errorf("enabled span tracing costs %.2f%% on warm Get over a histogram-only observer, budget is 15%%", overhead*100)
	}
}
