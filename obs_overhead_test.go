package triehash

import (
	"fmt"
	"os"
	"testing"

	"triehash/internal/core"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// TestObsOverhead is the `make obs-bench` gate: with instrumentation
// compiled in but no observer attached, Get must cost at most 5% more
// than the uninstrumented configuration, and must not allocate anything
// the uninstrumented path doesn't. The comparison isolates exactly what
// the observability layer adds — the hook's atomic load and branch on the
// operation path plus the Instrumented store wrapper — by building one
// file with neither and one with both (observer left nil).
//
// Benchmarks are noisy, so the test is opt-in (OBS_BENCH=1) and takes the
// best of several rounds per side; it is not part of the tier-1 suite.
func TestObsOverhead(t *testing.T) {
	if os.Getenv("OBS_BENCH") == "" {
		t.Skip("set OBS_BENCH=1 to run the instrumentation overhead gate")
	}
	const n = 50000
	ks := workload.Uniform(7, n, 3, 16)
	cfg := core.Config{Capacity: 50}

	build := func(st store.Store, hook *obs.Hook) *core.File {
		f, err := core.New(cfg, st)
		if err != nil {
			t.Fatal(err)
		}
		if hook != nil {
			f.SetObsHook(hook)
		}
		for _, k := range ks {
			if _, err := f.Put(k, []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		return f
	}

	base := build(store.NewMem(), nil)
	hook := &obs.Hook{} // observer stays nil: the disabled hot path
	inst := build(store.NewInstrumented(store.NewMem(), hook), hook)

	bench := func(f *core.File) testing.BenchmarkResult {
		best := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := f.Get(ks[i%n]); err != nil {
					b.Fatal(err)
				}
			}
		})
		for round := 0; round < 2; round++ {
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := f.Get(ks[i%n]); err != nil {
						b.Fatal(err)
					}
				}
			})
			if r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		return best
	}

	rb := bench(base)
	ri := bench(inst)
	overhead := float64(ri.NsPerOp())/float64(rb.NsPerOp()) - 1
	fmt.Printf("obs-bench: baseline %d ns/op, instrumented-disabled %d ns/op, overhead %.2f%%\n",
		rb.NsPerOp(), ri.NsPerOp(), overhead*100)
	if overhead > 0.05 {
		t.Errorf("disabled instrumentation costs %.2f%% on Get, budget is 5%%", overhead*100)
	}
	if db, di := rb.AllocsPerOp(), ri.AllocsPerOp(); di > db {
		t.Errorf("disabled instrumentation allocates: %d allocs/op vs baseline %d", di, db)
	}
}
