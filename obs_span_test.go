package triehash

import (
	"fmt"
	"testing"
	"time"

	"triehash/internal/obs"
	"triehash/internal/workload"
)

// publicOps are the operations dispatched through the public API as spans.
var publicOps = []Op{OpGet, OpPut, OpDelete, OpRange, OpGetBatch, OpPutBatch}

// TestSpanStagesSumToWholeOp is the span-attribution acceptance check,
// through the public API: with span tracing on, every operation's stage
// charges must sum exactly to its recorded whole-op total — sequential
// marking charges each clock interval to exactly one stage, and the
// residual lands in StageOther, so in aggregate the per-stage histogram
// sums equal the public operations' histogram sums to the nanosecond.
// (OpRead/OpWrite are store-level samples, not span totals, and stay out
// of the comparison.)
func TestSpanStagesSumToWholeOp(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"serial", Options{BucketCapacity: 20}},
		{"concurrent", Options{BucketCapacity: 20, Concurrent: true}},
		{"mlth", Options{BucketCapacity: 20, PageCapacity: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Create(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			o := NewObserver(ObserverConfig{Spans: true})
			f.Observe(o)

			ks := workload.Uniform(11, 4000, 3, 12)
			for _, k := range ks {
				if err := f.Put(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range ks[:1000] {
				if _, err := f.Get(k); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Range("", "", func(string, []byte) bool { return true }); err != nil {
				t.Fatal(err)
			}
			vals := make([][]byte, 500)
			for i := range vals {
				vals[i] = []byte("w")
			}
			for _, e := range f.PutBatch(ks[:500], vals) {
				if e != nil {
					t.Fatal(e)
				}
			}
			if _, errs := f.GetBatch(ks[500:1000]); errs != nil {
				for _, e := range errs {
					if e != nil {
						t.Fatal(e)
					}
				}
			}
			for _, k := range ks[:800] {
				if err := f.Delete(k); err != nil {
					t.Fatal(err)
				}
			}

			var stageSum, opSum time.Duration
			var spans uint64
			for _, s := range obs.Stages() {
				stageSum += o.Stage(s).Sum()
			}
			for _, op := range publicOps {
				opSum += o.Op(op).Sum()
				spans += o.Op(op).Count()
			}
			if spans == 0 {
				t.Fatal("no spans recorded")
			}
			if stageSum != opSum {
				t.Errorf("stage charges sum to %v but whole-op totals sum to %v (diff %v over %d spans)",
					stageSum, opSum, stageSum-opSum, spans)
			}
		})
	}
}

// TestDifferentialStructuralEvents runs the same single-threaded workload
// under the global-lock and the concurrent engine and requires the emitted
// structural-event counts — splits, merges, borrows — to be identical:
// the /VID87/ engine changes how structure changes are protected, never
// which structure changes happen. (Redistribution is excluded because the
// concurrent engine rejects it by construction.)
func TestDifferentialStructuralEvents(t *testing.T) {
	run := func(opts Options) map[EventType]uint64 {
		t.Helper()
		f, err := Create(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		o := NewObserver(ObserverConfig{})
		f.Observe(o)
		ks := workload.Uniform(23, 6000, 3, 12)
		for _, k := range ks {
			if err := f.Put(k, []byte(fmt.Sprintf("v-%s", k))); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range ks[:3000] {
			if err := f.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
		for _, k := range ks[:1500] {
			if err := f.Put(k, []byte("again")); err != nil {
				t.Fatal(err)
			}
		}
		counts := make(map[EventType]uint64)
		for _, et := range []EventType{EvSplit, EvMerge, EvBorrow, EvNilAlloc} {
			counts[et] = o.EventCount(et)
		}
		return counts
	}

	serial := run(Options{BucketCapacity: 20})
	concurrent := run(Options{BucketCapacity: 20, Concurrent: true})
	for _, et := range []EventType{EvSplit, EvMerge, EvBorrow, EvNilAlloc} {
		if serial[et] != concurrent[et] {
			t.Errorf("%v events: serial engine emitted %d, concurrent engine %d",
				et, serial[et], concurrent[et])
		}
	}
	if serial[EvSplit] == 0 {
		t.Error("workload produced no splits; the differential checks nothing")
	}
}
