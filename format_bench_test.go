package triehash

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"testing"
	"time"

	"triehash/internal/workload"
)

// TestFormatBench is the `make bench-format` gate for the compact v2
// on-disk encoding. It runs the thload growth workload — uniform random
// keys inserted into a persistent WAL-enabled file with small slots, so
// the byte-budget gate (not the count limit) decides every split — once
// per format version, and compares:
//
//   - total on-disk bytes after close (bucket slots + trie metadata +
//     folded log): v2's prefix-compressed records pack more keys per
//     slot, so the same data needs fewer slots, a smaller trie, and
//     shorter log frames;
//   - Put and Get latency: the varint work must not tax the hot path.
//
// Gates: v2 shrinks the file by at least 30%, and regresses Put/Get by
// at most 5% against v1. FORMAT_BENCH_SIZE_ONLY=1 keeps only the size
// gate (the CI smoke mode: shared runners are too noisy for a 5% timing
// bound); FORMAT_BENCH_N overrides the key count. Numbers land in
// BENCH_format.json. Opt-in: FORMAT_BENCH=1 (the `make bench-format`
// target).
func TestFormatBench(t *testing.T) {
	if os.Getenv("FORMAT_BENCH") == "" {
		t.Skip("set FORMAT_BENCH=1 to run the on-disk format gate")
	}
	sizeOnly := os.Getenv("FORMAT_BENCH_SIZE_ONLY") != ""
	nkeys := 8192
	if s := os.Getenv("FORMAT_BENCH_N"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 100 {
			t.Fatalf("FORMAT_BENCH_N=%q: need an integer >= 100", s)
		}
		nkeys = v
	}
	rounds := 5
	if sizeOnly {
		rounds = 1
	}

	// The growth mixture: two thirds surrogate keys under a table prefix
	// (the classic monotone load, arriving in random order), one third
	// uniform ad-hoc keys. Surrogate keys are where prefix compression
	// earns its keep; the uniform tail keeps the gate honest on keys that
	// share almost nothing.
	seq := nkeys * 2 / 3
	ks := workload.Shuffled(7, append(
		workload.Sequential("user:", 1, seq),
		workload.Uniform(42, nkeys-seq, 3, 10)...))
	vals := make([][]byte, nkeys)
	for i := range vals {
		vals[i] = []byte(fmt.Sprintf("value-%s-%04d", ks[i], i))
	}

	// build grows a fresh file at version v and returns the total bytes
	// the directory holds after Close and the growth's ns per Put.
	build := func(v int) (size int64, putNs int64) {
		dir := t.TempDir()
		f, err := CreateAt(dir, Options{
			BucketCapacity: 50,
			SlotBytes:      256,
			WAL:            true,
			FormatVersion:  v,
		})
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		for i, k := range ks {
			if err := f.Put(k, vals[i]); err != nil {
				t.Fatalf("v%d: put %q: %v", v, k, err)
			}
		}
		putNs = time.Since(start).Nanoseconds() / int64(nkeys)
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		err = filepath.Walk(dir, func(_ string, info os.FileInfo, err error) error {
			if err == nil && !info.IsDir() {
				size += info.Size()
			}
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return size, putNs
	}

	// readBack regrows one file per version and times full Get sweeps
	// through a small buffer pool — the thload serving configuration. The
	// pool is deliberately undersized for the bucket count, so each sweep
	// mixes warm hits with misses that pay the full read-and-decode path;
	// a version that packs more records per page earns its hit-rate
	// advantage here and pays its decode cost on every miss. Sweeps
	// alternate between the two files, best-of per side, for the same
	// noise-evening reason the builds do.
	readBack := func() (ns1, ns2 int64) {
		files := map[int]*File{}
		for _, v := range []int{1, 2} {
			f, err := CreateAt(t.TempDir(), Options{
				BucketCapacity: 50,
				SlotBytes:      256,
				WAL:            true,
				CacheFrames:    512,
				FormatVersion:  v,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, k := range ks {
				if err := f.Put(k, vals[i]); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			files[v] = f
		}
		best := map[int]int64{1: 1 << 62, 2: 1 << 62}
		// Sweeps are milliseconds each, so buy extra rounds of noise
		// rejection beyond the (expensive, fsync-bound) build rounds.
		for r := 0; r < 3*rounds; r++ {
			for _, v := range []int{1, 2} {
				f := files[v]
				start := time.Now()
				for _, k := range ks {
					if _, err := f.Get(k); err != nil {
						t.Fatalf("v%d: get %q: %v", v, k, err)
					}
				}
				if el := time.Since(start).Nanoseconds() / int64(nkeys); el < best[v] {
					best[v] = el
				}
			}
		}
		for _, f := range files {
			f.Close()
		}
		return best[1], best[2]
	}

	type side struct {
		Version int   `json:"version"`
		Bytes   int64 `json:"bytes"`
		PutNs   int64 `json:"put_ns_per_op"`
		GetNs   int64 `json:"get_ns_per_op"`
	}
	// Rounds are interleaved v1/v2 and each side keeps its best, so a
	// slow patch of the underlying filesystem (the Put path fsyncs the
	// log) penalizes both sides instead of whichever version it landed on.
	v1 := side{Version: 1, PutNs: 1 << 62}
	v2 := side{Version: 2, PutNs: 1 << 62}
	for r := 0; r < rounds; r++ {
		for _, s := range []*side{&v1, &v2} {
			size, putNs := build(s.Version)
			s.Bytes = size
			if putNs < s.PutNs {
				s.PutNs = putNs
			}
		}
	}
	if !sizeOnly {
		v1.GetNs, v2.GetNs = readBack()
	}
	for _, s := range []side{v1, v2} {
		t.Logf("v%d: %d keys -> %d bytes on disk, put %d ns/op, get %d ns/op",
			s.Version, nkeys, s.Bytes, s.PutNs, s.GetNs)
	}

	reduction := 1 - float64(v2.Bytes)/float64(v1.Bytes)
	putReg := float64(v2.PutNs)/float64(v1.PutNs) - 1
	getReg := 0.0
	if !sizeOnly {
		getReg = float64(v2.GetNs)/float64(v1.GetNs) - 1
	}
	t.Logf("v2 vs v1: size %.1f%% smaller, put %+.1f%%, get %+.1f%%",
		reduction*100, putReg*100, getReg*100)

	out := struct {
		NumCPU int                `json:"num_cpu"`
		NKeys  int                `json:"nkeys"`
		V1     side               `json:"v1"`
		V2     side               `json:"v2"`
		Gates  map[string]float64 `json:"gates"`
	}{runtime.NumCPU(), nkeys, v1, v2, map[string]float64{
		"size_reduction": reduction,
		"put_regression": putReg,
		"get_regression": getReg,
	}}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_format.json", append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	if reduction < 0.30 {
		t.Errorf("v2 file only %.1f%% smaller than v1, gate is 30%%", reduction*100)
	}
	if !sizeOnly {
		if putReg > 0.05 {
			t.Errorf("v2 Put %.1f%% slower than v1, budget is 5%%", putReg*100)
		}
		if getReg > 0.05 {
			t.Errorf("v2 Get %.1f%% slower than v1, budget is 5%%", getReg*100)
		}
	}
}
