package triehash

import (
	"os"
	"testing"

	"triehash/internal/obs"
	"triehash/internal/workload"
)

// TestObserverCrossCheck is the acceptance cross-check: a fig10-style
// random-insertion run with an observer attached must emit an event
// stream whose split and redistribution totals exactly equal the final
// Stats() counters. The per-type totals survive ring eviction, so a
// small TraceDepth deliberately forces overflow.
func TestObserverCrossCheck(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"THCL", Options{BucketCapacity: 10}},
		{"THCL-redist", Options{BucketCapacity: 10, Redistribution: RedistBoth}},
		{"TH", Options{BucketCapacity: 10, Variant: TH}},
		{"MLTH", Options{BucketCapacity: 10, PageCapacity: 32}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Create(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			o := NewObserver(ObserverConfig{TraceDepth: 64})
			f.Observe(o)

			ks := workload.Uniform(7, 5000, 3, 12)
			for _, k := range ks {
				if err := f.Put(k, []byte("v")); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range ks[:1000] {
				if _, err := f.Get(k); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range ks[:500] {
				if err := f.Delete(k); err != nil {
					t.Fatal(err)
				}
			}

			s := f.Stats()
			splitEvents := o.EventCount(obs.EvSplit) + o.EventCount(obs.EvRedistribution)
			if got, want := splitEvents, uint64(s.Splits); got != want {
				t.Errorf("split+redistribution events = %d, Stats().Splits = %d", got, want)
			}
			if got, want := o.EventCount(obs.EvRedistribution), uint64(s.Redistributions); got != want {
				t.Errorf("redistribution events = %d, Stats().Redistributions = %d", got, want)
			}
			if s.Splits > 0 && o.Events().Dropped() == 0 {
				t.Logf("ring did not overflow (splits=%d); totals still checked", s.Splits)
			}

			// Latency histograms saw exactly the public operations.
			if got := o.Op(obs.OpPut).Count(); got != uint64(len(ks)) {
				t.Errorf("OpPut samples = %d, want %d", got, len(ks))
			}
			if got := o.Op(obs.OpGet).Count(); got != 1000 {
				t.Errorf("OpGet samples = %d, want 1000", got)
			}
			if got := o.Op(obs.OpDelete).Count(); got != 500 {
				t.Errorf("OpDelete samples = %d, want 500", got)
			}
			// Store-level ops were timed too (the instrumented wrapper).
			if got := o.Op(obs.OpRead).Count(); got == 0 {
				t.Error("no store reads timed")
			}

			// The state function wired by Observe reports live gauges.
			st := o.State()
			if st.Keys != f.Len() || st.Buckets != s.Buckets {
				t.Errorf("observer state = %+v, stats = keys %d buckets %d", st, f.Len(), s.Buckets)
			}
		})
	}
}

// TestStatsCacheCounters verifies the buffer pool's hit/miss counters
// surface in the public Stats.
func TestStatsCacheCounters(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 10, CacheFrames: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, k := range workload.Uniform(3, 500, 3, 10) {
		if err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.CacheHits == 0 || s.CacheMisses == 0 {
		t.Fatalf("cache counters = %d/%d, want both nonzero after 500 inserts over 4 frames", s.CacheHits, s.CacheMisses)
	}

	// Without a pool both stay zero.
	f2, err := Create(Options{BucketCapacity: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	f2.Put("a", nil)
	if s2 := f2.Stats(); s2.CacheHits != 0 || s2.CacheMisses != 0 {
		t.Fatalf("poolless cache counters = %d/%d, want 0/0", s2.CacheHits, s2.CacheMisses)
	}
}

// TestResetIOCountersUniform is the regression test for the reset bug:
// ResetIOCounters must zero every counter family — store transfers,
// cache hits/misses, splits and redistributions (formerly left behind),
// and page reads — while leaving the state gauges alone.
func TestResetIOCountersUniform(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"single", Options{BucketCapacity: 8, Redistribution: RedistBoth, CacheFrames: 4}},
		{"multi", Options{BucketCapacity: 8, PageCapacity: 16}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := Create(tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			for _, k := range workload.Uniform(11, 2000, 3, 10) {
				if err := f.Put(k, nil); err != nil {
					t.Fatal(err)
				}
			}
			before := f.Stats()
			if before.Splits == 0 || before.IO.Reads == 0 {
				t.Fatalf("workload generated no traffic: %+v", before)
			}
			f.ResetIOCounters()
			after := f.Stats()
			if after.Splits != 0 || after.Redistributions != 0 {
				t.Errorf("structural counters survived reset: splits=%d redists=%d", after.Splits, after.Redistributions)
			}
			if after.IO != (IOCounters{}) {
				t.Errorf("IO counters survived reset: %+v", after.IO)
			}
			if after.CacheHits != 0 || after.CacheMisses != 0 {
				t.Errorf("cache counters survived reset: %d/%d", after.CacheHits, after.CacheMisses)
			}
			if after.PageReads != 0 {
				t.Errorf("page reads survived reset: %d", after.PageReads)
			}
			// Gauges describe the file and must not change.
			if after.Keys != before.Keys || after.Buckets != before.Buckets || after.TrieCells != before.TrieCells {
				t.Errorf("gauges changed: before keys=%d buckets=%d M=%d, after keys=%d buckets=%d M=%d",
					before.Keys, before.Buckets, before.TrieCells, after.Keys, after.Buckets, after.TrieCells)
			}
		})
	}
}

// TestObserveDetach verifies a detached observer stops receiving and the
// file keeps working.
func TestObserveDetach(t *testing.T) {
	f, err := Create(Options{BucketCapacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	o := NewObserver(ObserverConfig{})
	f.Observe(o)
	f.Put("a", nil)
	if got := o.Op(obs.OpPut).Count(); got != 1 {
		t.Fatalf("attached observer saw %d puts, want 1", got)
	}
	f.Observe(nil)
	if f.Observer() != nil {
		t.Fatal("Observer() not nil after detach")
	}
	f.Put("b", nil)
	if got := o.Op(obs.OpPut).Count(); got != 1 {
		t.Fatalf("detached observer saw %d puts, want still 1", got)
	}
}

// TestRecoveredFileEmitsRecovery verifies RecoverAt + Observe replays the
// recovery as an event.
func TestRecoveredFileEmitsRecovery(t *testing.T) {
	dir := t.TempDir()
	f, err := CreateAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range workload.Uniform(5, 300, 3, 10) {
		if err := f.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	n := f.Len()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(dir + "/meta.th"); err != nil {
		t.Fatal(err)
	}
	r, err := RecoverAt(dir, Options{BucketCapacity: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Len() != n {
		t.Fatalf("recovered %d keys, want %d", r.Len(), n)
	}
	o := NewObserver(ObserverConfig{})
	r.Observe(o)
	if got := o.EventCount(obs.EvRecovery); got != 1 {
		t.Fatalf("EvRecovery count = %d, want 1", got)
	}
	evs := o.Events().Snapshot()
	if len(evs) != 1 || evs[0].Type != obs.EvRecovery {
		t.Fatalf("traced events = %v, want the recovery", evs)
	}
}
