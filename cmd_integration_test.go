package triehash

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds every binary once and drives the full
// tooling workflow: generate a database, verify it, corrupt it, detect
// the corruption, destroy the metadata, recover, dump a file, sweep
// loads, run an experiment.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bindir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"thgen", "thcheck", "thdump", "thload", "thbench"} {
		out := filepath.Join(bindir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(wantOK bool, stdin string, bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[bin], args...)
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if (err == nil) != wantOK {
			t.Fatalf("%s %v: err=%v\n%s", bin, args, err, out)
		}
		return string(out)
	}

	db := filepath.Join(t.TempDir(), "db")

	// thgen -> thcheck round trip.
	out := run(true, "", "thgen", "-dir", db, "-n", "1500", "-b", "20")
	if !strings.Contains(out, "wrote 1500 records") {
		t.Fatalf("thgen: %s", out)
	}
	out = run(true, "", "thcheck", db)
	if !strings.Contains(out, "integrity:   ok") || !strings.Contains(out, "records:     1500") {
		t.Fatalf("thcheck: %s", out)
	}

	// Corrupt a live payload byte; thcheck must fail.
	bf, err := os.OpenFile(filepath.Join(db, "buckets.th"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.WriteAt([]byte{0xAB}, 60); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	out = run(false, "", "thcheck", db)
	if !strings.Contains(out, "checksum mismatch") {
		t.Fatalf("corruption not reported: %s", out)
	}

	// -repair quarantines the damaged bucket, rebuilds the trie from the
	// survivors and reports the lost key range; the check passes again.
	out = run(true, "", "thcheck", "-repair", db)
	if !strings.Contains(out, "quarantined: slot") || !strings.Contains(out, "integrity:   ok") {
		t.Fatalf("thcheck -repair: %s", out)
	}
	if _, err := os.Stat(filepath.Join(db, "quarantine.th")); err != nil {
		t.Fatalf("repair left no quarantine file: %v", err)
	}
	run(true, "", "thcheck", db)

	// Fresh database; destroy the metadata; opening falls back to salvage
	// automatically (capacity restored from the bucket file's hint).
	db2 := filepath.Join(t.TempDir(), "db2")
	run(true, "", "thgen", "-dir", db2, "-n", "800", "-b", "10", "-sorted")
	if err := os.Remove(filepath.Join(db2, "meta.th")); err != nil {
		t.Fatal(err)
	}
	out = run(true, "", "thcheck", db2)
	if !strings.Contains(out, "integrity:   ok") || !strings.Contains(out, "records:     800") {
		t.Fatalf("thcheck after meta loss (auto-salvage): %s", out)
	}
	// The explicit recovery path still works and agrees.
	out = run(true, "", "thcheck", "-recover", "-b", "10", db2)
	if !strings.Contains(out, "integrity:   ok") || !strings.Contains(out, "records:     800") {
		t.Fatalf("thcheck -recover: %s", out)
	}
	// Metadata rebuilt: a plain check works again.
	run(true, "", "thcheck", db2)

	// A WAL-enabled database crashed mid-flight: thcheck reports the
	// pending log and the torn tail, and its open replays and folds them.
	db3 := filepath.Join(t.TempDir(), "db3")
	wf, err := CreateAt(db3, Options{BucketCapacity: 10, WAL: true})
	if err != nil {
		t.Fatal(err)
	}
	driveWALStream(t, wf, 120)
	crashed := copyWALDir(t, db3) // power cut: the live handle never closes
	walFile := filepath.Join(crashed, "wal.th")
	info, err := os.Stat(walFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(walFile, info.Size()-3); err != nil {
		t.Fatal(err)
	}
	out = run(true, "", "thcheck", crashed)
	for _, needle := range []string{"pending past checkpoint", "wal tail:    damaged", "wal replay:", "wal now:     folded", "integrity:   ok"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("thcheck on a crashed WAL file missing %q:\n%s", needle, out)
		}
	}
	// The replay folded the log: a second check finds nothing pending.
	out = run(true, "", "thcheck", crashed)
	if !strings.Contains(out, "(0 pending past checkpoint") || strings.Contains(out, "wal tail:") {
		t.Fatalf("thcheck after fold still reports pending work:\n%s", out)
	}
	wf.Close()

	// thdump reproduces the Fig 1 structure from stdin.
	words := "the\nof\nand\nto\na\nin\nthat\nis\ni\nit\nfor\nas\nwith\nwas\nhis\nhe\nbe\nnot\nby\nbut\nhave\nyou\nwhich\nare\non\nor\nher\nhad\nat\nfrom\nthis\n"
	out = run(true, words, "thdump", "-b", "4", "-m", "3")
	for _, needle := range []string{"[had have he her]", "(o,0)", "standard representation"} {
		if !strings.Contains(out, needle) {
			t.Fatalf("thdump missing %q:\n%s", needle, out)
		}
	}

	// thload sweeps print the d=0 compact point.
	out = run(true, "", "thload", "-n", "500", "-b", "10", "-order", "asc", "-sweep", "d")
	if !strings.Contains(out, "100.000") {
		t.Fatalf("thload sweep lacks the 100%% point:\n%s", out)
	}

	// thbench runs a single experiment, in both renderings.
	out = run(true, "", "thbench", "-experiment", "fig8")
	if !strings.Contains(out, "1.000") {
		t.Fatalf("thbench fig8:\n%s", out)
	}
	out = run(true, "", "thbench", "-csv", "-experiment", "fig8")
	if !strings.HasPrefix(out, "fig8,") {
		t.Fatalf("thbench -csv:\n%s", out)
	}
	out = run(true, "", "thbench", "-list")
	if !strings.Contains(out, "fig10") || !strings.Contains(out, "sec23-positioning") {
		t.Fatalf("thbench -list:\n%s", out)
	}
	run(false, "", "thbench", "-experiment", "nope")
}

// TestToolsMixedFormat drives thcheck and thdump over a file caught
// mid-upgrade: the committed v1 fixture reopened under the v2-default
// build with one fresh write, so v1 and v2 bucket pages coexist. thcheck
// must report the write format on a healthy file, -repair must survive
// corruption in the mixed state and report the per-version page census,
// and thdump must render the v1-vs-v2 encoding comparison.
func TestToolsMixedFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bindir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"thcheck", "thdump"} {
		out := filepath.Join(bindir, name)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+name)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, b)
		}
		bins[name] = out
	}
	run := func(wantOK bool, stdin string, bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bins[bin], args...)
		if stdin != "" {
			cmd.Stdin = strings.NewReader(stdin)
		}
		out, err := cmd.CombinedOutput()
		if (err == nil) != wantOK {
			t.Fatalf("%s %v: err=%v\n%s", bin, args, err, out)
		}
		return string(out)
	}

	db := copyGoldenV1(t)
	f, err := OpenAt(db)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Put("ivy", []byte("value-ivy")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	out := run(true, "", "thcheck", db)
	if !strings.Contains(out, "integrity:   ok") || !strings.Contains(out, "format:      v2") {
		t.Fatalf("thcheck on mixed file: %s", out)
	}
	out = run(true, "the\nof\nand\nto\na\nin\nthat\nis\n", "thdump", "-b", "4")
	if !strings.Contains(out, "on-disk encoding (v1 fixed-width vs v2 varint):") {
		t.Fatalf("thdump lacks the encoding comparison: %s", out)
	}

	// Corrupt one payload byte of the first slot; repair must quarantine
	// it, report the surviving pages' version census, and leave a healthy
	// (still mixed-version) file behind.
	bf, err := os.OpenFile(filepath.Join(db, "buckets.th"), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bf.WriteAt([]byte{0xAB}, 60); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	run(false, "", "thcheck", db)
	out = run(true, "", "thcheck", "-repair", db)
	if !strings.Contains(out, "quarantined: slot") || !strings.Contains(out, "page format:") {
		t.Fatalf("thcheck -repair on mixed file: %s", out)
	}
	if !strings.Contains(out, "v1,") || !strings.Contains(out, "v2") {
		t.Fatalf("repair census lacks per-version counts: %s", out)
	}
	run(true, "", "thcheck", db)
}
