package triehash

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"triehash/internal/format"
	"triehash/internal/obs"
	"triehash/internal/wal"
)

// This file wires the write-ahead log (internal/wal) into the public
// File: attachment at create/open, replay on open, and the per-operation
// append+commit the mutation paths call. The durability contract has
// three tiers — see DESIGN.md "Durability contract":
//
//	1. WAL replay      — every op committed since the last checkpoint
//	2. checkpoint      — buckets + metadata durably folded, log truncated
//	3. salvage + scrub — trie rebuilt from bucket bounds, damage quarantined
//
// Tier 1 is the hot path; tiers 2 and 3 are the fallbacks replay leans on
// when the metadata is stale (always, between checkpoints) or a bucket
// slot is torn (replay re-puts the logged records after Scrub).

// WALStats reports the write-ahead log's activity. The batching the
// group committer achieved is Committed/Fsyncs — the number of durable
// operations each device sync amortized over.
type WALStats struct {
	// Appends counts records appended (checkpoint markers included).
	Appends uint64
	// Fsyncs counts device syncs issued by the group committer.
	Fsyncs uint64
	// Committed counts records those fsyncs made durable.
	Committed uint64
	// Checkpoints counts log folds (size-triggered, Sync and Close).
	Checkpoints uint64
	// DurableLSN is the highest log sequence number known durable.
	DurableLSN uint64
	// Size is the current log length in bytes.
	Size int64
}

// WALStats returns the log's activity counters; ok is false when the
// file runs without a WAL.
func (f *File) WALStats() (s WALStats, ok bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.log == nil {
		return WALStats{}, false
	}
	ls := f.log.Stats()
	return WALStats{
		Appends: ls.Appends, Fsyncs: ls.Fsyncs, Committed: ls.Committed,
		Checkpoints: ls.Checkpoints, DurableLSN: ls.DurableLSN, Size: ls.Size,
	}, true
}

// walPath returns the log file's location in a persistent file's
// directory.
func walPath(dir string) string { return filepath.Join(dir, "wal.th") }

// walFormat is the framing version the file's write-ahead log should run
// at: the Options pin when one was given, else the default. A log found
// at the other version keeps its on-disk framing until the upgrade
// checkpoint rewrites it.
func (f *File) walFormat() format.Version {
	if v := f.opts.formatVersion(); v.Valid() {
		return v
	}
	return format.Default
}

// errWALNeedsSalvage reports a multilevel file whose log demands replay
// over an inconsistent bucket state — canonicalization needs Scrub, which
// multilevel files do not support, so OpenAt falls back to salvage (the
// same demotion a damaged multilevel metadata file takes).
var errWALNeedsSalvage = errors.New("triehash: wal replay needs salvage")

// attachWAL opens the log on dev, replays any surviving records into the
// engine, folds the replayed state with an immediate checkpoint, and
// leaves the log attached as the file's hot durability path. Call before
// the file is published (no locking).
func (f *File) attachWAL(dev wal.Device) error {
	l, recs, tail, err := wal.Open(dev, f.walFormat(), f.hook)
	if err != nil {
		return err
	}
	// Only operations after the last checkpoint marker are pending: the
	// marker certifies everything before it was folded into the bucket
	// pages before the log was truncated (a clean close leaves exactly
	// one marker and nothing else).
	start := 0
	for i, r := range recs {
		if r.Op == wal.OpCheckpoint {
			start = i + 1
		}
	}
	pending := recs[start:]
	if len(pending) > 0 || tail.Damaged {
		if err := f.replayWAL(pending); err != nil {
			_ = l.Close() // the replay error takes precedence
			if errors.Is(err, errWALNeedsSalvage) {
				return err
			}
			return fmt.Errorf("triehash: wal replay: %w", err)
		}
		// Recorded rather than emitted: the observer attaches after open,
		// so Observe replays the fact (the f.recovered pattern).
		f.walReplayed = len(pending)
		if tail.Damaged {
			f.walTornTail = fmt.Sprintf("%s (%d bytes dropped)", tail.Reason, tail.Remaining)
		}
	}
	f.log = l
	f.opts.WAL = true
	if f.opts.CheckpointBytes <= 0 {
		f.opts = f.opts.normalize()
	}
	if err := f.checkpointLocked(); err != nil {
		f.log = nil
		_ = l.Close() // the checkpoint error takes precedence
		return err
	}
	return nil
}

// maybeAttachWALAt attaches the log of a persistent file: always when
// opts.WAL asks for one, and automatically when dir/wal.th exists — a
// file that chose the WAL contract at creation keeps it (and gets its
// crash replay) even when the reopener forgot the flag.
func (f *File) maybeAttachWALAt(dir string, opts Options) error {
	path := walPath(dir)
	if !opts.WAL {
		if _, err := os.Stat(path); err != nil {
			if errors.Is(err, os.ErrNotExist) {
				return nil
			}
			return err
		}
	}
	dev, err := wal.OpenFileDevice(path)
	if err != nil {
		return err
	}
	return f.attachWAL(dev)
}

// replayWAL restores the committed state: canonicalize the physical
// state, then apply the pending records in log order.
//
// The canonicalization pass is load-bearing. A pending log means the
// crash came after the last checkpoint, so the bucket pages are some
// write-prefix of the dead run — usually ahead of the metadata's trie
// (splits allocated buckets the trie never heard of, slots were
// rewritten in place). Logical redo through that inconsistent pairing
// mis-addresses and mis-counts: the stale trie absorbs "future" records
// from the buckets it still points at, which corrupts the key counter
// and strands the moved-on slots. So when the invariants no longer hold,
// the trie is rebuilt from the bucket bounds first — the deep-repair
// tier (Scrub: salvage reconstruction plus quarantine of torn slots) —
// and only then does the log replay, upserting and deleting against a
// consistent engine. Replay then re-puts exactly the committed records a
// quarantined slot would otherwise have lost; pre-checkpoint records in
// a quarantined slot stay under the scrub lost-range contract, as
// documented.
func (f *File) replayWAL(recs []wal.Record) error {
	if err := f.CheckInvariants(); err != nil {
		if f.multi != nil {
			return fmt.Errorf("%w: %v", errWALNeedsSalvage, err)
		}
		if _, serr := f.Scrub(); serr != nil {
			return errors.Join(err, serr)
		}
	}
	return f.applyWAL(recs)
}

// applyWAL replays records in log order through the engine. Deletes of
// absent keys are no-ops, which is what makes replay idempotent.
func (f *File) applyWAL(recs []wal.Record) error {
	for _, r := range recs {
		switch r.Op {
		case wal.OpPut:
			if _, err := f.eng.Put(r.Key, r.Value); err != nil { //thvet:ok obsop -- replay runs at open, before an observer can attach; Observe reports it as one EvWALReplay event instead of fake op samples
				return err
			}
		case wal.OpDelete:
			if err := f.eng.Delete(r.Key); err != nil && !errors.Is(mapNotFound(err), ErrNotFound) {
				return err
			}
		}
	}
	return nil
}

// walAppend logs one applied mutation and waits for the group committer
// to make it durable. Called with the file lock held (shared under the
// concurrent engine — which is what lets commits from many writers share
// an fsync). sp may be nil; with spans on, the append and the rendezvous
// wait are separate measured stages.
func (f *File) walAppend(op wal.Op, key string, value []byte, sp *obs.Span) error {
	if f.log == nil {
		return nil
	}
	lsn, err := f.log.Append(op, key, value)
	if err != nil {
		return err
	}
	sp.Mark(obs.StageWALAppend)
	err = f.log.Commit(lsn)
	sp.Mark(obs.StageCommitWait)
	return err
}

// walAppendBatch logs every record the engine accepted and waits for one
// commit covering the whole batch — the batch's records ride a single
// rendezvous no matter how many buckets they touched. Failures land in
// errs at the failed record's position.
func (f *File) walAppendBatch(keys []string, values [][]byte, errs []error, sp *obs.Span) {
	if f.log == nil {
		return
	}
	var last uint64
	appended := make([]int, 0, len(keys))
	for i, k := range keys {
		if errs[i] != nil {
			continue
		}
		lsn, err := f.log.Append(wal.OpPut, k, values[i])
		if err != nil {
			errs[i] = err
			continue
		}
		last = lsn
		appended = append(appended, i)
	}
	sp.Mark(obs.StageWALAppend)
	if last == 0 {
		return
	}
	if err := f.log.Commit(last); err != nil {
		for _, i := range appended {
			errs[i] = err
		}
	}
	sp.Mark(obs.StageCommitWait)
}
