module triehash

go 1.22
