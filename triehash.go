// Package triehash is a Go implementation of trie hashing with controlled
// load (Litwin, Roussopoulos, Levy, Wang), an access method for primary-key
// ordered dynamic files.
//
// Records live in fixed-capacity buckets addressed through a compact binary
// trie whose internal nodes compare one key digit at a time. With the trie
// in main memory, any successful key search costs one bucket access; when
// the trie outgrows memory, a multilevel variant (MLTH) pages it and two
// accesses suffice for very large files. The file is key-ordered, so range
// scans are sequential bucket reads.
//
// Two variants are provided. The basic method (Variant TH) is the original
// trie hashing of /LIT81/: one trie leaf per bucket, nil leaves for key
// ranges without buckets, splits that are partly random. The controlled-
// load refinement (Variant THCL) eliminates nil leaves, lets several
// leaves share a bucket, and accepts a bounding-key position making every
// split deterministic — which pins the load factor of ordered insertions
// anywhere up to 100% and guarantees at least 50% under deletions.
//
// # Quick start
//
//	f, err := triehash.Create(triehash.Options{BucketCapacity: 20})
//	if err != nil { ... }
//	defer f.Close()
//	f.Put("litwin", []byte("trie hashing"))
//	v, err := f.Get("litwin")
//	f.Range("a", "m", func(k string, v []byte) bool { ...; return true })
//
// Use CreateAt/OpenAt for files persisted on disk, and
// Options.PageCapacity for the multilevel variant.
package triehash

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"triehash/internal/core"
	"triehash/internal/format"
	"triehash/internal/keys"
	"triehash/internal/mlth"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/wal"
)

// ErrNotFound is returned when a key is absent from the file.
var ErrNotFound = errors.New("triehash: key not found")

// ErrClosed is returned by operations on a closed file.
var ErrClosed = errors.New("triehash: file is closed")

// Variant selects the method.
type Variant int

const (
	// THCL is trie hashing with controlled load (the default): no nil
	// leaves, shared leaves, optional deterministic splits and
	// redistribution, guaranteed-load deletions.
	THCL Variant = iota
	// TH is the basic method of /LIT81/.
	TH
)

// Redistribution mirrors the Section 4.4 policies.
type Redistribution int

const (
	// RedistNone appends a new bucket on every overflow.
	RedistNone Redistribution = iota
	// RedistSuccessor shifts keys into the in-order successor first.
	RedistSuccessor
	// RedistPredecessor shifts keys into the in-order predecessor first.
	RedistPredecessor
	// RedistBoth tries the successor, then the predecessor.
	RedistBoth
)

// Options configures a file.
type Options struct {
	// BucketCapacity is the records-per-bucket limit b (default 20).
	BucketCapacity int
	// Variant selects THCL (default) or the basic TH.
	Variant Variant
	// SplitPos is the split-key position m within the b+1 keys of an
	// overflowing bucket (default: the middle, b/2+1). Set it to
	// BucketCapacity before a bulk ascending load — or to 1 before a
	// descending one — to build a compact, fully loaded file.
	SplitPos int
	// BoundPos is THCL's bounding-key position (default b+1, the basic
	// partly-random split). SplitPos+1 makes splits deterministic, which
	// pins ordered-insertion loads exactly and extends the 50% deletion
	// guarantee file-wide.
	BoundPos int
	// Redistribution enables key shifts into neighbour buckets before
	// new ones are appended (THCL only); raises the steady-state load.
	Redistribution Redistribution
	// CollapseOnMerge removes trie cells made redundant by merges.
	CollapseOnMerge bool
	// RotationMerges extends the basic method's deletions with the
	// Section 3.3 rotation refinement, roughly doubling the bucket
	// couples that can merge (Variant TH only).
	RotationMerges bool
	// TombstoneMerges marks merged-away trie cells dead instead of
	// physically removing them — Section 2.4's concurrency-friendly
	// option. Tombstones never reach the disk format.
	TombstoneMerges bool
	// PageCapacity, when positive, selects the multilevel variant
	// (MLTH): the trie is paged, PageCapacity cells per page. Works with
	// both variants; Redistribution and RotationMerges remain
	// single-level features.
	PageCapacity int
	// Binary admits arbitrary binary keys (not ending in 0x00) instead
	// of the default printable-ASCII alphabet.
	Binary bool
	// SlotBytes is the on-disk bucket slot size for persistent files
	// (default 4096).
	SlotBytes int
	// CacheFrames, when positive, places a write-through buffer pool of
	// that many bucket frames in front of the store. The paper's
	// access-cost model assumes no pool (Stats().IO then counts true
	// transfers); a pool trades memory for fewer of them.
	CacheFrames int
	// CachePolicy selects the pool's replacement policy when CacheFrames
	// is set: the sharded CLOCK pool (default) or the single-mutex LRU
	// the paper experiments were first measured with.
	CachePolicy CachePolicy
	// Concurrent selects the store-backed /VID87/ engine: trie searches
	// run lock-free over an atomic cell arena, point operations latch only
	// their bucket, and the file's global lock is reserved for maintenance
	// (Sync, Close, Scrub, invariant checks) — so reads and writes from
	// many goroutines proceed in parallel instead of serializing. The
	// scheme needs an append-only trie, so it requires the THCL variant on
	// a single-level file with default (guaranteed) merging and no
	// Redistribution, CollapseOnMerge, RotationMerges or TombstoneMerges.
	// A single-threaded workload produces a file byte-identical to the
	// default engine's.
	Concurrent bool
	// BulkWorkers bounds the goroutines BulkLoad packs and writes buckets
	// with (0 or 1 = the sequential loader). The loaded file is identical
	// either way.
	BulkWorkers int
	// WAL turns on the write-ahead log, the hot durability path: every
	// Put/Delete is framed into dir/wal.th and is durable when the call
	// returns, with concurrent writers sharing fsyncs through group commit
	// (under Options.Concurrent the file lock is shared, so commits
	// batch; the serial engines pay one fsync per op). The log is folded
	// into the bucket pages and truncated at every checkpoint — Sync,
	// Close, or CheckpointBytes of log growth — and replayed on open, so
	// a crash loses nothing that was logged. A file that has a wal.th is
	// replayed (and stays WAL-enabled) on OpenAt even when this flag is
	// unset. In-memory files accept WAL too (the log lives in memory):
	// useful for tests and for bounding differential comparisons.
	WAL bool
	// CheckpointBytes is the log size that triggers a background
	// checkpoint (default 1 MiB; only meaningful with WAL).
	CheckpointBytes int64
	// FormatVersion pins the on-disk encoding: 1 is the fixed-width v1
	// layout, 2 the compact varint v2 layout (the default). It covers all
	// three persistent surfaces — bucket pages, trie metadata and the WAL.
	// Files of either version always open; a v1 file reopened without a
	// pin upgrades to the default at its next checkpoint.
	FormatVersion int
}

// CachePolicy selects the buffer pool implementation.
type CachePolicy int

const (
	// CacheClock (the default) is the sharded CLOCK pool: frames are
	// spread over power-of-two shards picked by bucket address, each an
	// independent second-chance ring, so hits touch one shard and set one
	// reference bit instead of reordering a global LRU list. It also
	// serves clone-free read views, making cached lookups allocation-free.
	CacheClock CachePolicy = iota
	// CacheLRU is the global-mutex LRU pool, kept for the paper
	// experiments and as the baseline the CLOCK pool is measured against.
	CacheLRU
)

func (o Options) normalize() Options {
	if o.BucketCapacity == 0 {
		o.BucketCapacity = 20
	}
	if o.SlotBytes == 0 {
		o.SlotBytes = 4096
	}
	if o.CheckpointBytes == 0 {
		o.CheckpointBytes = 1 << 20
	}
	if o.FormatVersion == 0 {
		o.FormatVersion = int(format.Default)
	}
	return o
}

// formatVersion is the typed form of the (normalized) FormatVersion pin.
func (o Options) formatVersion() format.Version { return format.Version(o.FormatVersion) }

func (o Options) alphabet() keys.Alphabet {
	if o.Binary {
		return keys.Binary
	}
	return keys.ASCII
}

func (o Options) coreConfig() core.Config {
	mode := trie.ModeTHCL
	if o.Variant == TH {
		mode = trie.ModeBasic
	}
	merge := core.MergeDefault
	if o.RotationMerges {
		merge = core.MergeRotations
	}
	return core.Config{
		Alphabet:        o.alphabet(),
		Capacity:        o.BucketCapacity,
		Mode:            mode,
		SplitPos:        o.SplitPos,
		BoundPos:        o.BoundPos,
		Redistribution:  core.Redistribution(o.Redistribution),
		Merge:           merge,
		CollapseOnMerge: o.CollapseOnMerge,
		TombstoneMerges: o.TombstoneMerges,
		Format:          o.formatVersion(),
	}
}

func (o Options) mlthConfig() mlth.Config {
	mode := trie.ModeTHCL
	if o.Variant == TH {
		mode = trie.ModeBasic
	}
	return mlth.Config{
		Alphabet:     o.alphabet(),
		Capacity:     o.BucketCapacity,
		PageCapacity: o.PageCapacity,
		Mode:         mode,
		SplitPos:     o.SplitPos,
		BoundPos:     o.BoundPos,
	}
}

// engine is the operation set both variants implement. The *Span forms
// are the same operations carrying a stage-tracing span (obs.Config.Spans)
// — the public layer dispatches to them when the attached observer has
// spans on, so the plain forms stay the measured zero-overhead path.
type engine interface {
	Put(key string, value []byte) (bool, error)
	Get(key string) ([]byte, error)
	Delete(key string) error
	Range(from, to string, fn func(key string, value []byte) bool) error
	PutSpan(key string, value []byte, sp *obs.Span) (bool, error)
	GetSpan(key string, sp *obs.Span) ([]byte, error)
	DeleteSpan(key string, sp *obs.Span) error
	RangeSpan(from, to string, fn func(key string, value []byte) bool, sp *obs.Span) error
	Len() int
	Store() store.Store
	SaveMeta() []byte
	SetObsHook(*obs.Hook)
	ResetCounters()
}

// File is a trie-hashed file. All methods are safe for concurrent use: by
// default readers proceed under a shared lock while writers serialize; with
// Options.Concurrent the /VID87/ engine lets writers share the lock too,
// isolating them from each other with per-bucket latches over the trie's
// append-only cell table.
type File struct {
	mu    sync.RWMutex
	opts  Options
	alpha keys.Alphabet
	eng   engine
	// concurrent notes the engine does its own fine-grained locking, so
	// mutating operations take mu shared and only maintenance takes it
	// exclusive. Immutable after construction (conc itself is swapped by
	// Scrub under the exclusive lock).
	concurrent bool
	single     *core.File           // nil for multilevel and concurrent files
	multi      *mlth.File           // nil for single-level files
	conc       *core.ConcurrentFile // nil unless Options.Concurrent
	dir        string               // "" for in-memory files
	closed     bool
	// maxRecord bounds key+value bytes for persistent files so a bucket
	// of capacity b records always fits its slot; 0 = unbounded.
	maxRecord int
	// hook is the observability attachment point every layer shares; an
	// observer set through Observe becomes visible to all of them with
	// one atomic store. Nil observer = everything disabled.
	hook *obs.Hook
	// recovered notes the file was rebuilt by RecoverAt, so Observe can
	// replay the fact as an event (the observer attaches after recovery).
	recovered bool
	// walReplayed / walTornTail record what WAL replay did at open, for
	// the same Observe-time replay (and for thcheck's report).
	walReplayed int
	walTornTail string
	// log is the write-ahead log (Options.WAL), nil when durability runs
	// on the fsync-rename-salvage path alone. Written only before the file
	// is published — never cleared, not even by Close, because operation
	// tails read it without the lock (maybeCheckpoint); Close closes the
	// log and the closed flag fences further use.
	log *wal.Log
	// ckptBusy serializes the size-triggered background checkpoint so at
	// most one operation tail promotes itself to the exclusive lock.
	ckptBusy atomic.Bool
}

// instrument builds the file's observability hook and threads it through
// the store stack: every layer that can report (cache, fault injector)
// gets the hook, and an Instrumented wrapper goes outermost so cache hits
// and injected faults are timed like true transfers.
func instrument(st store.Store) (store.Store, *obs.Hook) {
	h := &obs.Hook{}
	for s := st; s != nil; {
		if hs, ok := s.(interface{ SetObsHook(*obs.Hook) }); ok {
			hs.SetObsHook(h)
		}
		u, ok := s.(store.Unwrapper)
		if !ok {
			break
		}
		s = u.Unwrap()
	}
	return store.NewInstrumented(st, h), h
}

// Create returns an in-memory file (a simulated disk with exact access
// counting, the configuration the paper's experiments use).
func Create(opts Options) (*File, error) {
	f, err := create(opts, "", wrapCache(opts, store.NewMem()))
	if err != nil {
		return nil, err
	}
	if f.opts.WAL {
		// An in-memory WAL buys nothing across a process crash, but it
		// exercises the exact logging path, so tests and differential
		// comparisons run it against the real durability code.
		if err := f.attachWAL(wal.NewMem()); err != nil {
			_ = f.eng.Store().Close()
			return nil, err
		}
	}
	return f, nil
}

// wrapCache applies the optional buffer pool.
func wrapCache(opts Options, st store.Store) store.Store {
	if opts.CacheFrames <= 0 {
		return st
	}
	if opts.CachePolicy == CacheLRU {
		return store.NewCached(st, opts.CacheFrames)
	}
	return store.NewSharded(st, opts.CacheFrames, 0)
}

// CreateAt creates a persistent file in directory dir (created if needed):
// bucket slots in dir/buckets.th, trie and metadata in dir/meta.th on
// Sync or Close.
func CreateAt(dir string, opts Options) (*File, error) {
	opts = opts.normalize()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	fs, err := store.CreateFile(filepath.Join(dir, "buckets.th"), opts.SlotBytes)
	if err != nil {
		return nil, err
	}
	if err := fs.SetCapacityHint(opts.BucketCapacity); err != nil {
		_ = fs.Close()
		return nil, err
	}
	f, err := create(opts, dir, wrapCache(opts, fs))
	if err != nil {
		_ = fs.Close() // the create error takes precedence
		return nil, err
	}
	f.armPersistent(fs)
	f.setRecordLimit()
	// A fresh file must not inherit a previous tenant's log: a stale
	// wal.th would otherwise be replayed into it on the next OpenAt.
	if err := os.Remove(walPath(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
		_ = fs.Close()
		return nil, err
	}
	if opts.WAL {
		dev, err := wal.OpenFileDevice(walPath(dir))
		if err != nil {
			_ = fs.Close()
			return nil, err
		}
		if err := f.attachWAL(dev); err != nil {
			_ = fs.Close()
			return nil, err
		}
	}
	return f, nil
}

// setRecordLimit derives the per-record byte budget from the slot size.
// Multilevel files keep the conservative rule: a full bucket of
// BucketCapacity+1 records (the transient overflow state is never
// written, but splits write full buckets) must serialize within the slot
// payload. The single-level engines gate every write on the exact encoded
// page size and split early when a slot would overflow, so their static
// limit only has to keep any one record from dominating a slot — a page
// must always be able to hold at least two records plus its bound.
func (f *File) setRecordLimit() {
	const slotOverhead = 9 + 8 // slot header + bucket bound header
	payload := f.opts.SlotBytes - slotOverhead
	per := payload/f.opts.BucketCapacity - 8 // per-record length prefixes
	if f.multi == nil {
		if q := payload/4 - 8; q > per {
			per = q
		}
	}
	if per < 1 {
		per = 1
	}
	f.maxRecord = per
}

// armPersistent points the persistent store at the file's write format
// and, for the single-level engines (whose writes are byte-gated), arms
// the page budget with the store's slot payload. An unset or invalid pin
// leaves every layer at its default (the compact v2 format).
func (f *File) armPersistent(fs *store.FileStore) {
	v := f.opts.formatVersion()
	fs.SetFormat(v)
	budget := fs.PayloadSize()
	switch {
	case f.single != nil:
		f.single.SetFormat(v)
		f.single.SetPageBudget(budget)
	case f.conc != nil:
		f.conc.SetFormat(v)
		f.conc.SetPageBudget(budget)
	case f.multi != nil:
		f.multi.SetFormat(v)
	}
}

func create(opts Options, dir string, st store.Store) (*File, error) {
	opts = opts.normalize()
	if !opts.formatVersion().Valid() {
		return nil, fmt.Errorf("triehash: unknown FormatVersion %d", opts.FormatVersion)
	}
	f := &File{opts: opts, alpha: opts.alphabet(), dir: dir}
	st, f.hook = instrument(st)
	if opts.PageCapacity > 0 {
		if opts.Redistribution != RedistNone || opts.RotationMerges {
			return nil, fmt.Errorf("triehash: redistribution and rotation merges are single-level features")
		}
		if opts.Concurrent {
			return nil, fmt.Errorf("triehash: the concurrent engine is a single-level feature; omit PageCapacity")
		}
		m, err := mlth.New(opts.mlthConfig(), st)
		if err != nil {
			return nil, err
		}
		m.SetObsHook(f.hook)
		m.SetFormat(opts.formatVersion())
		f.multi, f.eng = m, m
		return f, nil
	}
	c, err := core.New(opts.coreConfig(), st)
	if err != nil {
		return nil, err
	}
	c.SetObsHook(f.hook)
	if opts.Concurrent {
		return f.adoptConcurrent(c)
	}
	f.single, f.eng = c, c
	return f, nil
}

// adoptConcurrent wraps a freshly built (or reopened) core engine in the
// concurrent one and installs it as the file's engine.
func (f *File) adoptConcurrent(c *core.File) (*File, error) {
	ce, err := core.NewConcurrent(c)
	if err != nil {
		return nil, err
	}
	f.concurrent = true
	f.conc, f.eng = ce, ce
	return f, nil
}

// opLock locks the file for one point operation: exclusive under the
// global-lock engines, shared under the concurrent engine (whose bucket
// latches isolate writers from each other, leaving the exclusive side to
// maintenance — Sync, Close, Scrub, CheckInvariants). It returns the
// matching unlock.
func (f *File) opLock() func() {
	if f.concurrent {
		f.mu.RLock()
		return f.mu.RUnlock
	}
	f.mu.Lock()
	return f.mu.Unlock
}

// BulkLoad builds a file in one pass from records supplied in strictly
// ascending key order — the natural way to create the paper's compact
// files. Records are packed fill·BucketCapacity per bucket (fill in
// (0, 1]; 1 = the 100% compact file) and the trie is reconstructed from
// the bucket boundaries, arriving balanced. dir = "" builds in memory.
// next returns one record at a time and ok=false at the end.
func BulkLoad(dir string, opts Options, fill float64, next func() (key string, value []byte, ok bool)) (*File, error) {
	opts = opts.normalize()
	if opts.PageCapacity > 0 {
		return nil, fmt.Errorf("triehash: bulk loading builds a single-level trie; omit PageCapacity")
	}
	var fs *store.FileStore
	var st store.Store = store.NewMem()
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		var err error
		fs, err = store.CreateFile(filepath.Join(dir, "buckets.th"), opts.SlotBytes)
		if err != nil {
			return nil, err
		}
		if err := fs.SetCapacityHint(opts.BucketCapacity); err != nil {
			_ = fs.Close()
			return nil, err
		}
		fs.SetFormat(opts.formatVersion())
		st = fs
	}
	st = wrapCache(opts, st)
	st, hook := instrument(st)
	load := core.BulkLoad
	if opts.BulkWorkers > 1 {
		load = func(cfg core.Config, st store.Store, fill float64, next func() (string, []byte, bool)) (*core.File, error) {
			return core.BulkLoadParallel(cfg, st, fill, next, opts.BulkWorkers)
		}
	}
	cfg := opts.coreConfig()
	if fs != nil {
		// Persistent loads pack against the slot payload as well as the
		// record count, so a run of large records cannot overflow a slot.
		cfg.PageBudget = fs.PayloadSize()
	}
	c, err := load(cfg, st, fill, next)
	if err != nil {
		_ = st.Close() // the load error takes precedence
		return nil, err
	}
	c.SetObsHook(hook)
	f := &File{opts: opts, alpha: opts.alphabet(), dir: dir, hook: hook}
	if opts.Concurrent {
		if _, err := f.adoptConcurrent(c); err != nil {
			_ = st.Close()
			return nil, err
		}
	} else {
		f.single, f.eng = c, c
	}
	if dir != "" {
		f.armPersistent(fs)
		f.setRecordLimit()
		if err := f.syncLocked(); err != nil {
			_ = f.eng.Store().Close() // the sync error takes precedence
			return nil, err
		}
		// Same fresh-file rule as CreateAt: discard any stale log.
		if err := os.Remove(walPath(dir)); err != nil && !errors.Is(err, os.ErrNotExist) {
			_ = f.eng.Store().Close()
			return nil, err
		}
	}
	if opts.WAL {
		var dev wal.Device = wal.NewMem()
		if dir != "" {
			fd, err := wal.OpenFileDevice(walPath(dir))
			if err != nil {
				_ = f.eng.Store().Close()
				return nil, err
			}
			dev = fd
		}
		if err := f.attachWAL(dev); err != nil {
			_ = f.eng.Store().Close()
			return nil, err
		}
	}
	return f, nil
}

// RecoverAt rebuilds a persistent file whose metadata (dir/meta.th) was
// lost or corrupted, using only the bucket file: every bucket's header
// carries its logical-path bound, from which an equivalent — usually
// better balanced — trie is reconstructed (the /TOR83/ recovery the
// paper's conclusion describes). The original bucket capacity is taken
// from opts.BucketCapacity when supplied, else from the bucket file's
// capacity hint, else inferred from the fullest surviving bucket (a
// lower bound — a never-filled file recovers with earlier splits, which
// is safe). The recovered file continues under the THCL variant, and the
// rebuilt metadata is written back before returning.
//
// Buckets whose slots no longer read back (torn writes, bit rot) are
// skipped: the rebuilt trie serves every surviving record, but the file
// fails Check until Scrub quarantines the damaged slots.
func RecoverAt(dir string, opts Options) (*File, error) {
	if opts.PageCapacity > 0 {
		return nil, fmt.Errorf("triehash: recovery of multilevel files is not supported (rebuild yields a single-level trie; open it without PageCapacity)")
	}
	fs, err := store.OpenFile(filepath.Join(dir, "buckets.th"))
	if err != nil {
		return nil, err
	}
	if opts.BucketCapacity == 0 {
		if h := fs.CapacityHint(); h > 0 {
			opts.BucketCapacity = h
		} else if b := fullestBucket(fs); b > 0 {
			opts.BucketCapacity = b
		}
	}
	opts = opts.normalize()
	opts.SlotBytes = fs.SlotSize()
	st, hook := instrument(fs)
	c, err := core.Recover(opts.coreConfig(), st)
	if err != nil {
		_ = fs.Close() // the recovery error takes precedence
		return nil, err
	}
	c.SetObsHook(hook)
	if fs.CapacityHint() == 0 {
		// Repair the missing redundancy while we are here (pre-hint file).
		_ = fs.SetCapacityHint(c.Config().Capacity)
	}
	f := &File{opts: opts, alpha: opts.alphabet(), dir: dir, hook: hook, recovered: true}
	if opts.Concurrent {
		if _, err := f.adoptConcurrent(c); err != nil {
			_ = fs.Close()
			return nil, err
		}
	} else {
		f.single, f.eng = c, c
	}
	f.armPersistent(fs)
	f.setRecordLimit()
	if err := f.syncLocked(); err != nil {
		_ = f.eng.Store().Close() // the sync error takes precedence
		return nil, err
	}
	// The rebuild served tier 3 (bucket bounds); the log, when present,
	// now restores tier 1 on top of it — the operations committed after
	// the buckets last hit the medium.
	if err := f.maybeAttachWALAt(dir, opts); err != nil {
		_ = f.eng.Store().Close()
		return nil, err
	}
	return f, nil
}

// fullestBucket scans the store for the largest surviving record count —
// the lower bound on the lost file's bucket capacity RecoverAt falls back
// to when the header hint is absent.
func fullestBucket(st store.Store) int {
	max := 0
	for addr := int32(0); addr < st.MaxAddr(); addr++ {
		b, err := st.Read(addr)
		if err != nil {
			continue
		}
		if b.Len() > max {
			max = b.Len()
		}
	}
	return max
}

// OpenAt reopens a file previously created with CreateAt and synced.
//
// When dir/meta.th is missing, truncated or fails its checksum, OpenAt
// falls back to salvage: the trie is reconstructed from the bucket file
// alone (RecoverAt) and fresh metadata is written back. The salvaged file
// serves every record whose bucket survives — buckets the medium damaged
// are skipped and left for Scrub (or thcheck -repair) to quarantine. Only
// when the bucket file itself is unusable does OpenAt fail.
func OpenAt(dir string) (*File, error) {
	return OpenAtWith(dir, Options{})
}

// OpenAtWith reopens a file with runtime options applied. The file's
// structural configuration (capacity, variant, split positions) comes from
// its metadata; opts contributes only the per-open choices — CacheFrames
// and CachePolicy for a buffer pool, Concurrent for the /VID87/ engine,
// BulkWorkers — and the rest of opts is ignored.
func OpenAtWith(dir string, opts Options) (*File, error) {
	meta, err := os.ReadFile(filepath.Join(dir, "meta.th"))
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		return salvageAt(dir, opts, err)
	}
	fs, err := store.OpenFile(filepath.Join(dir, "buckets.th"))
	if err != nil {
		return nil, err
	}
	st, hook := instrument(wrapCache(opts, fs))
	f := &File{dir: dir, hook: hook}
	c, cerr := core.Open(meta, st)
	if cerr == nil {
		c.SetObsHook(hook)
		f.alpha = c.Config().Alphabet
		f.opts = Options{
			BucketCapacity: c.Config().Capacity, SlotBytes: fs.SlotSize(),
			CacheFrames: opts.CacheFrames, CachePolicy: opts.CachePolicy,
			Concurrent: opts.Concurrent, BulkWorkers: opts.BulkWorkers,
			WAL: opts.WAL, CheckpointBytes: opts.CheckpointBytes,
			FormatVersion: opts.FormatVersion,
		}
		if opts.Concurrent {
			if _, err := f.adoptConcurrent(c); err != nil {
				_ = fs.Close()
				return nil, err
			}
		} else {
			f.single, f.eng = c, c
		}
		f.armPersistent(fs)
		f.setRecordLimit()
		if err := f.maybeAttachWALAt(dir, opts); err != nil {
			_ = fs.Close()
			return nil, err
		}
		return f, nil
	}
	// A metadata version newer than this build is NOT damage: the bytes
	// are intact and a future build owns them. Refuse to open rather than
	// fall through to salvage, which would rebuild (and overwrite) a file
	// this build cannot faithfully read.
	var unknown *format.UnknownVersionError
	if errors.As(cerr, &unknown) {
		_ = fs.Close()
		return nil, fmt.Errorf("triehash: open %s: %w", dir, cerr)
	}
	m, merr := mlth.Open(meta, st)
	if merr != nil {
		_ = fs.Close() // salvage reopens the bucket file itself
		if errors.As(merr, &unknown) {
			return nil, fmt.Errorf("triehash: open %s: %w", dir, merr)
		}
		return salvageAt(dir, opts, fmt.Errorf("%s holds neither a single-level nor a multilevel file: %w", dir, merr))
	}
	if opts.Concurrent {
		_ = fs.Close()
		return nil, fmt.Errorf("triehash: %s is a multilevel file; the concurrent engine is a single-level feature", dir)
	}
	m.SetObsHook(hook)
	f.multi, f.eng = m, m
	f.alpha = m.Alphabet()
	f.opts = Options{
		BucketCapacity: m.Capacity(), SlotBytes: fs.SlotSize(),
		WAL: opts.WAL, CheckpointBytes: opts.CheckpointBytes,
		FormatVersion: opts.FormatVersion,
	}
	f.armPersistent(fs)
	f.setRecordLimit()
	if err := f.maybeAttachWALAt(dir, opts); err != nil {
		_ = fs.Close()
		if errors.Is(err, errWALNeedsSalvage) {
			// The log demands replay over buckets the paged trie no longer
			// matches; multilevel files cannot Scrub in place, so take the
			// same path a damaged multilevel metadata file takes.
			return salvageAt(dir, opts, err)
		}
		return nil, err
	}
	return f, nil
}

// salvageAt is OpenAt's fallback when the metadata is lost: reconstruct
// from the buckets, reporting both failures if even that is impossible.
func salvageAt(dir string, opts Options, cause error) (*File, error) {
	f, err := RecoverAt(dir, Options{
		Concurrent: opts.Concurrent,
		WAL:        opts.WAL, CheckpointBytes: opts.CheckpointBytes,
		FormatVersion: opts.FormatVersion,
	})
	if err != nil {
		return nil, fmt.Errorf("triehash: %s: metadata unusable (%v) and salvage failed: %w", dir, cause, err)
	}
	return f, nil
}

// ErrRecordTooLarge is returned by Put on a persistent file when
// len(key)+len(value) cannot be guaranteed to fit the bucket slot.
var ErrRecordTooLarge = errors.New("triehash: record too large for the configured SlotBytes")

// Put inserts or replaces the record for key. With Options.WAL the call
// returns only after the record is durable in the log (group-committed
// alongside concurrent writers).
func (f *File) Put(key string, value []byte) error {
	err := f.putOp(key, value)
	f.maybeCheckpoint()
	return err
}

func (f *File) putOp(key string, value []byte) error {
	// One atomic load decides instrumentation; the disabled path costs a
	// nil check and allocates nothing. With spans on, the span starts
	// before the file lock so the lock wait is a measured stage, and
	// FinishSpan records the whole-op latency.
	o := f.hook.Observer()
	if sp := o.StartSpan(obs.OpPut); sp != nil {
		defer o.FinishSpan(sp)
		defer f.opLock()()
		sp.Mark(obs.StageFileLock)
		if f.closed {
			return ErrClosed
		}
		if f.maxRecord > 0 && len(key)+len(value) > f.maxRecord {
			return fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
				ErrRecordTooLarge, len(key)+len(value), f.maxRecord)
		}
		_, err := f.eng.PutSpan(key, value, sp)
		if err == nil {
			err = f.walAppend(wal.OpPut, key, value, sp)
		}
		return err
	}
	defer f.opLock()()
	if f.closed {
		return ErrClosed
	}
	if f.maxRecord > 0 && len(key)+len(value) > f.maxRecord {
		return fmt.Errorf("%w: %d bytes, limit %d (raise SlotBytes or lower BucketCapacity)",
			ErrRecordTooLarge, len(key)+len(value), f.maxRecord)
	}
	if o == nil {
		_, err := f.eng.Put(key, value)
		if err == nil {
			err = f.walAppend(wal.OpPut, key, value, nil)
		}
		return err
	}
	start := time.Now()
	_, err := f.eng.Put(key, value)
	if err == nil {
		err = f.walAppend(wal.OpPut, key, value, nil)
	}
	o.RecordOp(obs.OpPut, time.Since(start))
	return err
}

// Get returns the value stored under key, or ErrNotFound.
func (f *File) Get(key string) ([]byte, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return nil, ErrClosed
	}
	o := f.hook.Observer()
	if o == nil {
		v, err := f.eng.Get(key)
		return v, mapNotFound(err)
	}
	if sp := o.StartSpan(obs.OpGet); sp != nil {
		defer o.FinishSpan(sp)
		v, err := f.eng.GetSpan(key, sp)
		return v, mapNotFound(err)
	}
	start := time.Now()
	v, err := f.eng.Get(key)
	o.RecordOp(obs.OpGet, time.Since(start))
	return v, mapNotFound(err)
}

// Has reports whether key is present.
func (f *File) Has(key string) (bool, error) {
	_, err := f.Get(key)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNotFound):
		return false, nil
	default:
		return false, err
	}
}

// Delete removes the record for key, or returns ErrNotFound. With
// Options.WAL a successful delete is durable in the log when the call
// returns.
func (f *File) Delete(key string) error {
	err := f.deleteOp(key)
	f.maybeCheckpoint()
	return err
}

func (f *File) deleteOp(key string) error {
	o := f.hook.Observer()
	if sp := o.StartSpan(obs.OpDelete); sp != nil {
		defer o.FinishSpan(sp)
		defer f.opLock()()
		sp.Mark(obs.StageFileLock)
		if f.closed {
			return ErrClosed
		}
		err := f.eng.DeleteSpan(key, sp)
		if err == nil {
			err = f.walAppend(wal.OpDelete, key, nil, sp)
		}
		return mapNotFound(err)
	}
	defer f.opLock()()
	if f.closed {
		return ErrClosed
	}
	if o == nil {
		err := f.eng.Delete(key)
		if err == nil {
			err = f.walAppend(wal.OpDelete, key, nil, nil)
		}
		return mapNotFound(err)
	}
	start := time.Now()
	err := f.eng.Delete(key)
	if err == nil {
		err = f.walAppend(wal.OpDelete, key, nil, nil)
	}
	o.RecordOp(obs.OpDelete, time.Since(start))
	return mapNotFound(err)
}

// Range calls fn for every record with from <= key <= to in ascending key
// order until fn returns false. An empty to scans to the end of the file.
func (f *File) Range(from, to string, fn func(key string, value []byte) bool) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if f.closed {
		return ErrClosed
	}
	o := f.hook.Observer()
	if o == nil {
		return f.eng.Range(from, to, fn)
	}
	if sp := o.StartSpan(obs.OpRange); sp != nil {
		defer o.FinishSpan(sp)
		return f.eng.RangeSpan(from, to, fn, sp)
	}
	start := time.Now()
	err := f.eng.Range(from, to, fn)
	o.RecordOp(obs.OpRange, time.Since(start))
	return err
}

// Len returns the number of records.
func (f *File) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.eng.Len()
}

// Sync writes the trie and metadata (and flushes bucket slots) for
// persistent files; it is a no-op for in-memory files.
func (f *File) Sync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncLocked()
}

func (f *File) syncLocked() error {
	if f.closed {
		return ErrClosed
	}
	if f.log != nil {
		// With the WAL attached, Sync is a checkpoint: fold the log into
		// the bucket pages and truncate it, with one batched directory
		// sync instead of one per metadata install.
		return f.checkpointLocked()
	}
	if f.dir == "" {
		return nil
	}
	return f.installMeta(true)
}

// installMeta flushes the bucket slots and durably installs the trie
// metadata. dirSync selects whether the rename's directory fsync happens
// here (the standalone path) or is deferred to the caller — the WAL
// checkpoint batches it with the rest of the fold, fixing the
// fsync-ordering cliff of a directory sync per install.
func (f *File) installMeta(dirSync bool) error {
	if fs := store.AsFileStore(f.eng.Store()); fs != nil {
		if err := fs.Sync(); err != nil {
			return err
		}
	}
	// The classic atomic-replace dance, with both fsyncs that make it
	// durable: the tmp file is synced before the rename (otherwise the
	// rename can land while the contents are still in the page cache, and
	// a crash leaves a valid-looking empty meta file), and the directory
	// is synced after it (otherwise the rename itself may not survive).
	tmp := filepath.Join(f.dir, "meta.th.tmp")
	if err := store.WriteFileDurable(tmp, f.eng.SaveMeta()); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(f.dir, "meta.th")); err != nil {
		return err
	}
	if !dirSync {
		return nil
	}
	return store.SyncDir(f.dir)
}

// checkpointLocked folds the write-ahead log into the bucket pages and
// truncates it. The order is load-bearing: buckets and metadata must be
// durable — directory sync included — before the log shrinks, because
// truncation destroys the only other copy of the logged operations. A
// crash at any interior point leaves either the old meta + the full log
// (replay covers everything) or the new meta + a longer-than-needed log
// (replay is idempotent), both of which converge on open.
func (f *File) checkpointLocked() error {
	if f.closed {
		return ErrClosed
	}
	if f.dir != "" {
		if err := f.installMeta(false); err != nil {
			return err
		}
		if err := store.SyncDir(f.dir); err != nil {
			return err
		}
	}
	return f.log.Checkpoint()
}

// maybeCheckpoint runs a checkpoint when the log has outgrown
// Options.CheckpointBytes. Called on operation tails after the file lock
// is released; the CAS gate picks one caller, everyone else returns
// immediately. A checkpoint failure is not the operation's failure — the
// operation is already durable in the log — so it is not propagated; the
// log keeps growing and the next trigger (or Sync/Close, whose errors do
// propagate) retries the fold.
func (f *File) maybeCheckpoint() {
	if f.log == nil || f.log.Size() < f.opts.CheckpointBytes {
		return
	}
	if !f.ckptBusy.CompareAndSwap(false, true) {
		return
	}
	defer f.ckptBusy.Store(false)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed || f.log.Size() < f.opts.CheckpointBytes {
		return
	}
	_ = f.checkpointLocked()
}

// Close syncs (for persistent files) and releases the file. With the WAL
// attached the final sync is a checkpoint, so the log is empty (one
// checkpoint marker) after a clean close and replay on the next open has
// nothing to do.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil
	}
	err := f.syncLocked()
	f.closed = true
	if f.log != nil {
		if cerr := f.log.Close(); err == nil {
			err = cerr
		}
	}
	if cerr := f.eng.Store().Close(); err == nil {
		err = cerr
	}
	return err
}

func mapNotFound(err error) error {
	if errors.Is(err, core.ErrNotFound) || errors.Is(err, mlth.ErrNotFound) {
		return ErrNotFound
	}
	return err
}
