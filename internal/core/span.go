package core

import (
	"triehash/internal/bucket"
	"triehash/internal/obs"
	"triehash/internal/trie"
)

// This file holds the span-carrying variants of the File operations:
// identical semantics to Get/Put/Delete/Range/GetBatch, plus stage marks
// charging the op's time to the span's trie-search, store-I/O and
// split/merge stages. They are separate methods — not a parameter on the
// plain ops — so the uninstrumented hot path keeps its exact shape (the
// ≤5% disabled-overhead gate times File.Get directly). A nil span is
// legal everywhere and degrades each variant to its plain twin.
//
// core is a deterministic package (the determinism analyzer forbids
// reading the clock here), so every timestamp is taken inside the obs
// package, behind Span's methods.

// viewSpan is view with span attribution: the store's span-aware viewer
// splits the access into cache-probe vs store-read when it can; stores
// without one charge the whole access to store-read.
func (f *File) viewSpan(addr int32, sp *obs.Span) (*bucket.Bucket, error) {
	if f.spanViewer != nil {
		return f.spanViewer.ReadViewSpan(addr, sp)
	}
	b, err := f.view(addr)
	sp.Mark(obs.StageStoreRead)
	return b, err
}

// GetSpan is Get with stage attribution.
func (f *File) GetSpan(key string, sp *obs.Span) ([]byte, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	leaf := f.trie.SearchAddr(key)
	sp.Mark(obs.StageTrieSearch)
	if leaf.IsNil() {
		return nil, ErrNotFound
	}
	b, err := f.viewSpan(leaf.Addr(), sp)
	if err != nil {
		return nil, err
	}
	v, ok := b.Get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// PutSpan is Put with stage attribution. Split work is charged to the
// split stage, or to the redistribute stage when the overflow resolved by
// shifting keys into an existing neighbour.
func (f *File) PutSpan(key string, value []byte, sp *obs.Span) (bool, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	res := f.trie.Search(key)
	sp.Mark(obs.StageTrieSearch)
	if res.Leaf.IsNil() {
		addr, err := f.st.Alloc()
		if err != nil {
			return false, err
		}
		b := bucket.New(f.cfg.Capacity)
		b.SetBound(res.Path)
		b.Put(key, value)
		if err := f.st.Write(addr, b); err != nil {
			f.freeBestEffort(addr)
			return false, err
		}
		sp.Mark(obs.StageStoreWrite)
		f.trie.AllocNil(res.Pos, addr)
		f.nkeys++
		f.emit(obs.EvNilAlloc, addr, -1, "")
		return false, nil
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return false, err
	}
	replaced := b.Put(key, value)
	if replaced {
		err := f.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		return true, err
	}
	if b.Len() <= f.cfg.Capacity {
		err := f.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		if err != nil {
			return false, err
		}
		f.nkeys++
		return false, nil
	}
	rd := f.redistributions
	if err := f.split(addr, b); err != nil {
		return false, err
	}
	if f.redistributions > rd {
		sp.Mark(obs.StageRedistribute)
	} else {
		sp.Mark(obs.StageSplit)
	}
	f.nkeys++
	return false, nil
}

// DeleteSpan is Delete with stage attribution; merge maintenance (probe
// and action) is charged to the merge stage.
func (f *File) DeleteSpan(key string, sp *obs.Span) error {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	res := f.trie.Search(key)
	sp.Mark(obs.StageTrieSearch)
	if res.Leaf.IsNil() {
		return ErrNotFound
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return err
	}
	if !b.Delete(key) {
		return ErrNotFound
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	sp.Mark(obs.StageStoreWrite)
	f.nkeys--
	err = f.maintainAfterDelete(res, addr, b)
	sp.Mark(obs.StageMerge)
	return err
}

// RangeSpan is Range with stage attribution: walk time between bucket
// accesses is charged to trie-search, the accesses themselves to
// cache-probe/store-read.
func (f *File) RangeSpan(from, to string, fn func(key string, value []byte) bool, sp *obs.Span) error {
	if to != "" && to < from {
		return nil
	}
	alpha := f.cfg.Alphabet
	lastRead := int32(-1)
	var walkErr error
	f.trie.WalkLeavesFrom(from, func(lp trie.LeafPos) bool {
		if len(lp.Path) > 0 && !alpha.KeyLEBound(from, lp.Path) {
			return true
		}
		if lp.Leaf.IsNil() {
			return true
		}
		addr := lp.Leaf.Addr()
		if addr != lastRead {
			lastRead = addr
			sp.Mark(obs.StageTrieSearch)
			b, err := f.viewSpan(addr, sp)
			if err != nil {
				walkErr = err
				return false
			}
			if !b.Ascend(from, to, func(r bucket.Record) bool { return fn(r.Key, r.Value) }) {
				return false
			}
		}
		if to != "" && len(lp.Path) > 0 && alpha.KeyLEBound(to, lp.Path) {
			return false
		}
		return true
	})
	sp.Mark(obs.StageTrieSearch)
	return walkErr
}

// GetBatchSpan is GetBatch with stage attribution: the whole partition
// pass is charged to trie-search, each bucket access to its own stage.
func (f *File) GetBatchSpan(keys []string, sp *obs.Span) (vals [][]byte, errs []error) {
	vals = make([][]byte, len(keys))
	errs = make([]error, len(keys))
	groups := make(map[int32][]int, len(keys))
	for i, k := range keys {
		if err := f.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		leaf := f.trie.SearchAddr(k)
		if leaf.IsNil() {
			errs[i] = ErrNotFound
			continue
		}
		groups[leaf.Addr()] = append(groups[leaf.Addr()], i)
	}
	sp.Mark(obs.StageTrieSearch)
	for addr, idxs := range groups {
		b, err := f.viewSpan(addr, sp)
		if err != nil {
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		for _, i := range idxs {
			if v, ok := b.Get(keys[i]); ok {
				vals[i] = v
			} else {
				errs[i] = ErrNotFound
			}
		}
	}
	return vals, errs
}
