package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// opTape is a randomly generated operation sequence plus a file
// configuration; testing/quick generates values of it.
type opTape struct {
	Capacity uint8
	THCL     bool
	SplitPos uint8
	Det      bool
	Redist   uint8
	Ops      []tapeOp
}

type tapeOp struct {
	Kind uint8
	Key  uint16
}

// Generate implements quick.Generator with sane ranges.
func (opTape) Generate(r *rand.Rand, size int) reflect.Value {
	t := opTape{
		Capacity: uint8(2 + r.Intn(12)),
		THCL:     r.Intn(2) == 0,
		Det:      r.Intn(3) == 0,
		Redist:   uint8(r.Intn(4)),
	}
	t.SplitPos = uint8(1 + r.Intn(int(t.Capacity)))
	n := 50 + r.Intn(400)
	t.Ops = make([]tapeOp, n)
	for i := range t.Ops {
		t.Ops[i] = tapeOp{Kind: uint8(r.Intn(4)), Key: uint16(r.Intn(900))}
	}
	return reflect.ValueOf(t)
}

func (t opTape) config() Config {
	cfg := Config{Capacity: int(t.Capacity), SplitPos: int(t.SplitPos)}
	if t.THCL {
		cfg.Mode = trie.ModeTHCL
		if t.Det && int(t.SplitPos) < cfg.Capacity {
			cfg.BoundPos = int(t.SplitPos) + 1
		}
		cfg.Redistribution = Redistribution(t.Redist)
	}
	return cfg
}

// TestQuickFileInvariants: for arbitrary generated configurations and
// operation tapes, the file agrees with a map model and every structural
// invariant holds at the end.
func TestQuickFileInvariants(t *testing.T) {
	f := func(tape opTape) bool {
		cfg := tape.config()
		file, err := New(cfg, store.NewMem())
		if err != nil {
			return true // rejected configuration: nothing to check
		}
		model := map[string]bool{}
		for _, op := range tape.Ops {
			key := "k" + string([]byte{
				'a' + byte(op.Key%26),
				'a' + byte((op.Key/26)%26),
				'a' + byte((op.Key/676)%26),
			})
			switch op.Kind % 4 {
			case 0, 1:
				if _, err := file.Put(key, []byte{1}); err != nil {
					t.Logf("Put(%q): %v", key, err)
					return false
				}
				model[key] = true
			case 2:
				err := file.Delete(key)
				if model[key] != (err == nil) {
					t.Logf("Delete(%q) = %v, model %v", key, err, model[key])
					return false
				}
				delete(model, key)
			default:
				_, err := file.Get(key)
				if model[key] != (err == nil) {
					t.Logf("Get(%q) = %v, model %v", key, err, model[key])
					return false
				}
			}
		}
		if file.Len() != len(model) {
			t.Logf("Len %d, model %d (cfg %+v)", file.Len(), len(model), cfg)
			return false
		}
		if err := file.CheckInvariants(); err != nil {
			t.Logf("invariants (cfg %+v): %v", cfg, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickRecoverEquivalence: recovery of any generated file preserves
// the exact key set.
func TestQuickRecoverEquivalence(t *testing.T) {
	f := func(tape opTape) bool {
		cfg := tape.config()
		st := store.NewMem()
		file, err := New(cfg, st)
		if err != nil {
			return true
		}
		model := map[string]bool{}
		for _, op := range tape.Ops {
			key := "q" + string([]byte{'a' + byte(op.Key%26), 'a' + byte((op.Key/26)%26)})
			if op.Kind%3 == 0 && model[key] {
				file.Delete(key)
				delete(model, key)
			} else {
				file.Put(key, nil)
				model[key] = true
			}
		}
		rec, err := Recover(cfg, st)
		if err != nil {
			t.Logf("recover (cfg %+v): %v", cfg, err)
			return false
		}
		if rec.Len() != len(model) {
			t.Logf("recovered %d, model %d", rec.Len(), len(model))
			return false
		}
		for k := range model {
			if _, err := rec.Get(k); err != nil {
				t.Logf("recovered Get(%q): %v", k, err)
				return false
			}
		}
		return rec.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
