package core

import (
	"errors"
	"fmt"

	"triehash/internal/format"
	"triehash/internal/obs"
	"triehash/internal/store"
)

// LostRange describes the key coverage of a bucket Scrub had to give up:
// the records that lived in (Low, High] are gone (High empty = up to the
// end of the key space). RangeKnown is false when the trie no longer
// referenced the slot — a file already rebuilt by Recover has merged the
// lost range into its neighbours, so only the slot address survives.
type LostRange struct {
	// Addr is the slot the bucket occupied.
	Addr int32
	// Reason is the read failure that condemned it.
	Reason string
	// Low and High are the range's logical-path bounds, valid when
	// RangeKnown.
	Low, High []byte
	// RangeKnown reports whether the trie still mapped the slot.
	RangeKnown bool
}

func (l LostRange) String() string {
	s := fmt.Sprintf("slot %d (%s)", l.Addr, l.Reason)
	if !l.RangeKnown {
		return s + ", key range unknown"
	}
	hi := "∞"
	if len(l.High) != 0 {
		hi = fmt.Sprintf("%q", l.High)
	}
	return fmt.Sprintf("%s, keys in (%q, %s]", s, l.Low, hi)
}

// ScrubReport summarizes a Scrub pass: what was scanned, what was
// quarantined, and exactly which key ranges the file lost.
type ScrubReport struct {
	// SlotsScanned is the number of slots examined on the base store.
	SlotsScanned int
	// Survivors is the number of readable live buckets kept.
	Survivors int
	// Quarantined lists the unreadable slots whose bytes were preserved
	// in the quarantine file and whose slots were then released.
	Quarantined []LostRange
	// Vanished lists trie-referenced slots that read back as freed (a
	// zeroed slot header): there were no bytes left to preserve.
	Vanished []LostRange
	// KeysBefore and KeysAfter are the file's record counts around the
	// rebuild; the difference is the (known) record loss.
	KeysBefore, KeysAfter int
	// PagesV1 and PagesV2 count the surviving buckets by on-disk encoding
	// version — a file caught mid-upgrade legitimately holds both, and the
	// next full rewrite converges it. A page at a version this build does
	// not know aborts the scrub instead of being counted (or quarantined):
	// it is a future build's intact data.
	PagesV1, PagesV2 int
}

// Lost reports whether the scrub gave any data up.
func (r *ScrubReport) Lost() bool {
	return len(r.Quarantined) > 0 || len(r.Vanished) > 0
}

// Scrub repairs a file whose bucket store is damaged: it scans every slot
// of the base store (beneath any buffer pool, so a warm frame cannot mask
// on-medium corruption), preserves each unreadable slot's raw bytes in
// the quarantine file at quarantinePath (empty = keep nothing, for
// in-memory stores), releases the damaged slots, and rebuilds the trie
// from the surviving buckets. It returns the repaired file — the receiver
// must not be used afterwards — and a report naming the key ranges that
// could not be saved.
//
// No byte of a damaged bucket is destroyed before the quarantine file
// holding it is durable, so a later forensic pass can still try to
// extract its records.
func (f *File) Scrub(quarantinePath string) (*File, *ScrubReport, error) {
	base := store.Base(f.st)
	clearer, _ := base.(store.SlotClearer)
	if clearer == nil {
		return nil, nil, fmt.Errorf("core: scrub: store %T cannot clear slots", base)
	}
	raw, _ := base.(store.RawReader)

	// Map every trie-referenced slot to the key range it covers, so the
	// report can say what a condemned bucket held.
	type coverage struct {
		low, high []byte
		ok        bool
	}
	ranges := make(map[int32]coverage)
	var prev []byte
	for _, lp := range f.trie.InorderLeaves() {
		if !lp.Leaf.IsNil() {
			addr := lp.Leaf.Addr()
			if c, seen := ranges[addr]; seen {
				c.high = lp.Path // shared leaves: extend to the last path
				ranges[addr] = c
			} else {
				ranges[addr] = coverage{low: prev, high: lp.Path, ok: true}
			}
		}
		prev = lp.Path
	}

	report := &ScrubReport{KeysBefore: f.nkeys}
	lost := func(addr int32, err error) LostRange {
		l := LostRange{Addr: addr, Reason: err.Error()}
		var ce *store.CorruptError
		if errors.As(err, &ce) {
			l.Reason = ce.Reason
		}
		if c, seen := ranges[addr]; seen {
			l.Low, l.High, l.RangeKnown = c.low, c.high, c.ok
		}
		return l
	}

	// Pass 1: scan and classify. Corrupt slots are quarantined; slots the
	// trie references but that read back as freed have already lost their
	// bytes and are only reported.
	var entries []store.QuarantineEntry
	var condemned []LostRange
	for addr := int32(0); addr < base.MaxAddr(); addr++ {
		report.SlotsScanned++
		b, err := base.Read(addr)
		switch {
		case err == nil:
			report.Survivors++
			switch b.DecodedFormat() {
			case format.V1:
				report.PagesV1++
			case format.V2:
				report.PagesV2++
			}
		case errors.Is(err, store.ErrCorrupt):
			l := lost(addr, err)
			e := store.QuarantineEntry{Addr: addr, Reason: l.Reason}
			if raw != nil {
				if b, rerr := raw.ReadRaw(addr); rerr == nil {
					e.Raw = b
				}
			}
			entries = append(entries, e)
			condemned = append(condemned, l)
		case errors.Is(err, store.ErrNotAllocated):
			if _, referenced := ranges[addr]; referenced {
				report.Vanished = append(report.Vanished, lost(addr, err))
			}
		default:
			return nil, nil, fmt.Errorf("core: scrub: slot %d: %w", addr, err)
		}
	}
	if report.Survivors == 0 {
		return nil, nil, fmt.Errorf("core: scrub: no readable bucket survives; nothing to rebuild from")
	}

	// Pass 2: make the evidence durable, then release the slots. The
	// order is the point — a crash between the two leaves the damaged
	// slots in place for the next scrub, never a quarantine gap.
	if len(entries) > 0 && quarantinePath != "" {
		if err := store.AppendQuarantine(quarantinePath, entries); err != nil {
			return nil, nil, fmt.Errorf("core: scrub: writing quarantine: %w", err)
		}
	}
	for _, l := range condemned {
		if err := clearer.ClearSlot(l.Addr); err != nil {
			return nil, nil, fmt.Errorf("core: scrub: releasing slot %d: %w", l.Addr, err)
		}
		store.InvalidateAddr(f.st, l.Addr)
		f.emit(obs.EvQuarantine, l.Addr, -1, l.Reason)
		report.Quarantined = append(report.Quarantined, l)
	}
	for _, l := range report.Vanished {
		if err := clearer.ClearSlot(l.Addr); err != nil {
			return nil, nil, fmt.Errorf("core: scrub: releasing slot %d: %w", l.Addr, err)
		}
		store.InvalidateAddr(f.st, l.Addr)
	}

	// Pass 3: rebuild the trie from the survivors (TOR83), carrying the
	// observer over. The rebuilt file's counters restart like any
	// recovery's.
	nf, err := Recover(f.cfg, f.st)
	if err != nil {
		return nil, nil, fmt.Errorf("core: scrub: rebuilding: %w", err)
	}
	nf.hook = f.hook
	report.KeysAfter = nf.nkeys
	return nf, report, nil
}
