package core

import (
	"triehash/internal/bucket"
)

// This file is the byte-budget gate. With Config.PageBudget set (persistent
// files set it to the store's slot payload), the engines gate every bucket
// write on its exact encoded size, not just its record count: a bucket
// whose encoding would overflow its slot splits early, and merges,
// redistributions and borrows refuse moves that would overflow the
// receiver. Count-triggered behaviour is untouched when the budget is off
// (PageBudget == 0, every in-memory file) or roomy enough, so the paper's
// load-factor results — and the sequential/concurrent byte-identity — are
// preserved; the gate only matters when record sizes stress the slot,
// which is exactly when the compact v2 encoding pays off by packing more
// records per slot.

// pageFits reports whether b's encoding fits the byte budget (always true
// with the gate off).
func (f *File) pageFits(b *bucket.Bucket) bool {
	return f.cfg.PageBudget <= 0 || b.EncodedLen(f.cfg.Format) <= f.cfg.PageBudget
}

// fitsPage is the write-back test: a bucket goes back to its slot without
// splitting only within both gates, record count and encoded bytes.
func (f *File) fitsPage(b *bucket.Bucket) bool {
	return b.Len() <= f.cfg.Capacity && f.pageFits(b)
}

// mergeFits reports whether dst can absorb every record of src — count
// gate and, when armed, byte gate over the would-be merged image. bound,
// when non-nil, is the bound the survivor takes (a predecessor absorbing
// its successor extends up to the absorbed bound).
func (f *File) mergeFits(dst, src *bucket.Bucket, bound []byte) bool {
	if dst.Len()+src.Len() > f.cfg.Capacity {
		return false
	}
	if f.cfg.PageBudget <= 0 {
		return true
	}
	m := dst.Clone()
	for i := 0; i < src.Len(); i++ {
		r := src.At(i)
		m.Put(r.Key, r.Value)
	}
	if bound != nil {
		m.SetBound(bound)
	}
	return f.pageFits(m)
}

// splitIndices picks the cut for splitting b's ordered keys: the
// configured (SplitPos, BoundPos) whenever the split is the classic
// count-triggered one and its halves fit the byte budget, else a
// byte-balanced cut with the bounding key immediately above it. The
// deterministic bound matters: a partly-random bound (boundPos = b+1)
// separates the split key from the LAST key, so the realized partition
// can land far above the chosen cut and leave one half over the budget.
// Positions are 1-based within b.Keys().
func (f *File) splitIndices(b *bucket.Bucket) (splitPos, boundPos int) {
	if f.cfg.PageBudget <= 0 {
		return f.cfg.SplitPos, f.cfg.BoundPos
	}
	if b.Len() == f.cfg.Capacity+1 && f.cfgCutFits(b) {
		return f.cfg.SplitPos, f.cfg.BoundPos
	}
	splitPos = f.byteBalancedCut(b) + 1
	return splitPos, splitPos + 1
}

// cfgCutFits simulates the configured cut on clones and reports whether
// both halves' encodings fit the byte budget.
func (f *File) cfgCutFits(b *bucket.Bucket) bool {
	B := b.Keys()
	s := f.cfg.Alphabet.SplitString(B[f.cfg.SplitPos-1], B[f.cfg.BoundPos-1])
	return f.halvesFit(b, s)
}

// halvesFit simulates splitting b at split string s and reports whether
// both resulting pages fit the byte budget.
func (f *File) halvesFit(b *bucket.Bucket, s []byte) bool {
	old := b.Clone()
	moved := old.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
	old.SetBound(s)
	nb := bucket.New(f.cfg.Capacity)
	nb.SetBound(newBucketBound(f.cfg.Mode, s, b.Bound()))
	nb.Absorb(moved)
	return f.pageFits(old) && f.pageFits(nb)
}

// byteBalancedCut returns the 0-based index of the last staying key of a
// byte-triggered split: the earliest cut where the staying records carry
// at least half the record bytes, clamped so at least one key stays and at
// least one moves. Weights are the records' standalone sizes — the exact
// v2 sizes depend on prefix compression against cut-dependent neighbours,
// and a fixed weight keeps the cut deterministic across formats.
func (f *File) byteBalancedCut(b *bucket.Bucket) int {
	L := b.Len()
	total := 0
	w := make([]int, L)
	for i := 0; i < L; i++ {
		r := b.At(i)
		w[i] = 8 + len(r.Key) + len(r.Value)
		total += w[i]
	}
	m := L - 2
	cum := 0
	for i := 0; i < L; i++ {
		cum += w[i]
		if 2*cum >= total {
			m = i
			break
		}
	}
	if m > L-2 {
		m = L - 2
	}
	if m < 0 {
		m = 0
	}
	return m
}
