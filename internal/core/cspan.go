package core

import (
	"triehash/internal/obs"
)

// Span-carrying variants of the ConcurrentFile operations. The fast paths
// are duplicated (not parameterized) for the same reason as the serial
// File's: the plain methods are the measured zero-overhead hot path. The
// slow paths (putSlow, maintain, putBatchSlow) are shared, taking the
// span as a parameter with nil from the plain methods.
//
// Lock attribution: BeginHold is called right after an acquire returns —
// charging the acquire wait to the wait stage — and EndHold right after
// the release (via LIFO defers where the scope allows), charging the
// residual hold to the hold stage and the full wall occupancy to the
// per-bucket contention table.

// GetSpan is Get with stage attribution.
func (e *ConcurrentFile) GetSpan(key string, sp *obs.Span) ([]byte, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	for {
		leaf := e.arena.Search(key)
		sp.Mark(obs.StageTrieSearch)
		if leaf.IsNil() {
			return nil, ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.RLock()
		sp.BeginHold(addr, obs.StageLatchWait)
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.RUnlock()
			sp.EndHold(obs.StageLatchHold)
			continue
		}
		b, err := e.inner.viewSpan(addr, sp)
		if err != nil {
			mu.RUnlock()
			sp.EndHold(obs.StageLatchHold)
			return nil, err
		}
		v, ok := b.Get(key)
		mu.RUnlock()
		sp.EndHold(obs.StageLatchHold)
		if !ok {
			return nil, ErrNotFound
		}
		return v, nil
	}
}

// PutSpan is Put with stage attribution; overflows fall through to the
// shared putSlow, which charges the subtree-stripe and flip-lock stages.
func (e *ConcurrentFile) PutSpan(key string, value []byte, sp *obs.Span) (bool, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	for {
		leaf := e.arena.Search(key)
		sp.Mark(obs.StageTrieSearch)
		if leaf.IsNil() {
			break // no bucket to latch; resolve on the slow path
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		sp.BeginHold(addr, obs.StageLatchWait)
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			continue
		}
		b, err := e.inner.st.Read(addr)
		sp.Mark(obs.StageStoreRead)
		if err != nil {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			return false, err
		}
		replaced := b.Put(key, value)
		if replaced {
			err := e.inner.st.Write(addr, b)
			sp.Mark(obs.StageStoreWrite)
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			return true, err
		}
		if b.Len() <= e.inner.cfg.Capacity {
			err := e.inner.st.Write(addr, b)
			sp.Mark(obs.StageStoreWrite)
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			if err != nil {
				return false, err
			}
			e.nkeys.Add(1)
			return false, nil
		}
		// Overflow: the split needs the subtree stripe, which orders
		// before bucket latches; release and redo on the slow path.
		mu.Unlock()
		sp.EndHold(obs.StageLatchHold)
		break
	}
	return e.putSlow(key, value, sp)
}

// DeleteSpan is Delete with stage attribution; underflow maintenance goes
// through the shared maintain, which charges the merge stage.
func (e *ConcurrentFile) DeleteSpan(key string, sp *obs.Span) error {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	for {
		leaf := e.arena.Search(key)
		sp.Mark(obs.StageTrieSearch)
		if leaf.IsNil() {
			return ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		sp.BeginHold(addr, obs.StageLatchWait)
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			continue
		}
		b, err := e.inner.st.Read(addr)
		sp.Mark(obs.StageStoreRead)
		if err != nil {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			return err
		}
		if !b.Delete(key) {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			return ErrNotFound
		}
		err = e.inner.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		if err != nil {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			return err
		}
		underflow := 2*b.Len() < e.inner.cfg.Capacity
		mu.Unlock()
		sp.EndHold(obs.StageLatchHold)
		e.nkeys.Add(-1)
		if underflow {
			return e.maintain(key, sp)
		}
		return nil
	}
}

// RangeSpan is Range with stage attribution: the flip lock's (shared)
// wait and hold are charged to the struct stages (the scan's own store
// reads to theirs, via the inner RangeSpan). The world lock, uncontended
// outside whole-file operations, is not attributed separately.
func (e *ConcurrentFile) RangeSpan(from, to string, fn func(key string, value []byte) bool, sp *obs.Span) error {
	e.world.RLock()
	defer e.world.RUnlock()
	e.trieMu.RLock()
	sp.BeginHold(obs.StructLockAddr, obs.StageStructWait)
	defer e.trieMu.RUnlock()
	defer sp.EndHold(obs.StageStructHold)
	return e.inner.RangeSpan(from, to, fn, sp)
}

// GetBatchSpan is GetBatch with stage attribution (coarse wave marks; the
// parallel workers feed the contention table through LatchTimers).
func (e *ConcurrentFile) GetBatchSpan(keys []string, sp *obs.Span) (vals [][]byte, errs []error) {
	return e.getBatch(keys, sp)
}

// PutBatchSpan is PutBatch with stage attribution (coarse wave marks; the
// parallel workers feed the contention table through LatchTimers).
func (e *ConcurrentFile) PutBatchSpan(keys []string, values [][]byte, sp *obs.Span) (errs []error) {
	return e.putBatch(keys, values, sp)
}
