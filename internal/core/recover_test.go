package core

import (
	"sort"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// TestRecoverRoundTrip destroys the trie of files built under every
// configuration and rebuilds them from bucket headers alone.
func TestRecoverRoundTrip(t *testing.T) {
	for name, cfg := range configsUnderTest() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			st := store.NewMem()
			f, err := New(cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			keys := randomKeys(71, 1200)
			for _, k := range keys {
				if _, err := f.Put(k, []byte("v:"+k)); err != nil {
					t.Fatal(err)
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("pre-crash: %v", err)
			}
			before := f.Stats()

			// "Crash": the trie and all in-memory state are gone; only
			// the store survives.
			g, err := Recover(cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			if g.Len() != len(keys) {
				t.Fatalf("recovered %d keys, want %d", g.Len(), len(keys))
			}
			for _, k := range keys {
				v, err := g.Get(k)
				if err != nil || string(v) != "v:"+k {
					t.Fatalf("recovered Get(%q) = %q, %v", k, v, err)
				}
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("post-recovery: %v", err)
			}
			after := g.Stats()
			if after.Buckets > before.Buckets {
				t.Errorf("recovery grew the file: %d -> %d buckets", before.Buckets, after.Buckets)
			}
			// The recovered file keeps working: insert, delete, range.
			if _, err := g.Put("zzzzzzzzzzzz", nil); err != nil { // sorts above every workload key
				t.Fatal(err)
			}
			if err := g.Delete(keys[0]); err != nil {
				t.Fatal(err)
			}
			sorted := append([]string(nil), keys[1:]...)
			sort.Strings(sorted)
			n := 0
			if err := g.Range(sorted[0], sorted[len(sorted)-1], func(string, []byte) bool {
				n++
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if n != len(sorted) {
				t.Fatalf("recovered range saw %d keys, want %d", n, len(sorted))
			}
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("after post-recovery writes: %v", err)
			}
			t.Logf("%s: trie %d cells (depth %d) -> recovered %d cells (depth %d)",
				name, before.TrieCells, before.Depth, after.TrieCells, after.Depth)
		})
	}
}

// TestRecoverBetterBalanced: recovering an ascending-loaded file (a
// degenerate right-deep trie) yields a much shallower equivalent — the
// TOR83 conjecture.
func TestRecoverBetterBalanced(t *testing.T) {
	st := store.NewMem()
	f, err := New(Config{Capacity: 10, Mode: trie.ModeTHCL, SplitPos: 10}, st)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(72, 2000)
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	before := f.Stats()
	g, err := Recover(f.Config(), st)
	if err != nil {
		t.Fatal(err)
	}
	after := g.Stats()
	if after.Depth >= before.Depth {
		t.Errorf("recovered depth %d not below original %d", after.Depth, before.Depth)
	}
	if after.Load < before.Load-0.001 {
		t.Errorf("recovery lost load: %.3f -> %.3f", before.Load, after.Load)
	}
	t.Logf("compact file recovery: depth %d -> %d, cells %d -> %d",
		before.Depth, after.Depth, before.TrieCells, after.TrieCells)
}

// TestRecoverFreesEmptyBuckets: empty buckets cannot anchor a boundary;
// recovery merges their ranges into the successor and frees them.
func TestRecoverFreesEmptyBuckets(t *testing.T) {
	st := store.NewMem()
	f, err := New(Config{Capacity: 4, Merge: MergeNone}, st)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(73, 200)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Empty some buckets without merging (MergeNone keeps them).
	for _, k := range keys[:150] {
		if err := f.Delete(k); err != nil {
			t.Fatal(err)
		}
	}
	before := st.Buckets()
	g, err := Recover(Config{Capacity: 4}, st)
	if err != nil {
		t.Fatal(err)
	}
	if st.Buckets() >= before {
		t.Errorf("recovery kept all %d buckets (%d empty ones expected to go)", before, before-st.Buckets())
	}
	for _, k := range keys[150:] {
		if _, err := g.Get(k); err != nil {
			t.Fatalf("survivor %q lost: %v", k, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRecoverErrors(t *testing.T) {
	// Empty store.
	if _, err := Recover(Config{Capacity: 4}, store.NewMem()); err == nil {
		t.Error("recovery from an empty store accepted")
	}
	// A store with two buckets claiming the same bound is inconsistent.
	st := store.NewMem()
	f, _ := New(Config{Capacity: 4}, st)
	for _, k := range randomKeys(75, 40) {
		f.Put(k, nil)
	}
	leaves := f.Trie().InorderLeaves()
	if len(leaves) < 4 {
		t.Fatal("setup: need several buckets")
	}
	first := leaves[0].Leaf.Addr()
	second := leaves[1].Leaf.Addr()
	b, _ := st.Read(second)
	fb, _ := st.Read(first)
	b.SetBound(fb.Bound())
	st.Write(second, b)
	if _, err := Recover(Config{Capacity: 4}, st); err == nil {
		t.Error("duplicate bounds accepted")
	}
}

// TestRecoverAfterCrashMidStream simulates the real scenario end to end
// through a persistent store: build, lose the metadata, recover, verify.
func TestRecoverPersistent(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.CreateFile(dir+"/buckets.th", 4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Capacity: 8, Mode: trie.ModeTHCL}
	f, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(74, 800)
	for _, k := range keys {
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no SaveMeta. Close and reopen just the bucket file.
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	fs2, err := store.OpenFile(dir + "/buckets.th")
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	g, err := Recover(cfg, fs2)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, err := g.Get(k); err != nil || string(v) != k {
			t.Fatalf("recovered Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverHalfFinishedSplit simulates the one crash window splits
// leave open: the new bucket was written but the old one was not yet
// shrunk (the write ordering guarantees this is the only window).
// Recovery detects the duplicate bound and drops the subset twin.
func TestRecoverHalfFinishedSplit(t *testing.T) {
	st := store.NewMem()
	cfg := Config{Capacity: 4, Mode: trie.ModeTHCL}
	f, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(76, 100)
	for _, k := range keys {
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	// Fabricate the crash state: pick a full bucket, write a "new twin"
	// holding its top records under the same bound, as a dying split
	// would have left behind.
	leaves := f.Trie().InorderLeaves()
	var victim int32 = -1
	for _, lp := range leaves {
		if lp.Leaf.IsNil() {
			continue
		}
		if b, _ := st.Read(lp.Leaf.Addr()); b.Len() >= 3 {
			victim = lp.Leaf.Addr()
			break
		}
	}
	if victim < 0 {
		t.Fatal("setup: no full bucket")
	}
	vb, _ := st.Read(victim)
	twinAddr, err := st.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	twin, _ := st.Read(twinAddr)
	twin.SetBound(vb.Bound())
	twin.Put(vb.At(vb.Len()-1).Key, vb.At(vb.Len()-1).Value)
	twin.Put(vb.At(vb.Len()-2).Key, vb.At(vb.Len()-2).Value)
	if err := st.Write(twinAddr, twin); err != nil {
		t.Fatal(err)
	}

	g, err := Recover(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != len(keys) {
		t.Fatalf("recovered %d keys, want %d (no loss, no duplication)", g.Len(), len(keys))
	}
	for _, k := range keys {
		if v, err := g.Get(k); err != nil || string(v) != k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The twin was freed.
	if _, err := st.Read(twinAddr); err == nil {
		t.Error("the subset twin survived recovery")
	}
}

// TestRecoverRejectsRealConflict: overlapping buckets that are not in a
// subset relation are a genuine inconsistency, not a crash artifact.
func TestRecoverRejectsRealConflict(t *testing.T) {
	st := store.NewMem()
	f, _ := New(Config{Capacity: 4}, st)
	for _, k := range randomKeys(77, 60) {
		f.Put(k, nil)
	}
	leaves := f.Trie().InorderLeaves()
	a := leaves[0].Leaf.Addr()
	ba, _ := st.Read(a)
	twinAddr, _ := st.Alloc()
	twin, _ := st.Read(twinAddr)
	twin.SetBound(ba.Bound())
	twin.Put("aaaa-not-in-a", nil) // disjoint record: no subset relation
	st.Write(twinAddr, twin)
	if _, err := Recover(Config{Capacity: 4}, st); err == nil {
		t.Error("non-subset duplicate accepted")
	}
}

// TestRecoverSweepsAbandonedSlots: when a split fails at the old-bucket
// write AND the compensating free also fails, the new bucket is left
// abandoned with duplicates of reachable records. Recover's duplicate-
// bound repair sweeps it.
func TestRecoverSweepsAbandonedSlots(t *testing.T) {
	fs := store.NewFault(store.NewMem())
	cfg := Config{Capacity: 4, Mode: trie.ModeTHCL}
	f, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(78, 300)
	for _, k := range keys[:200] {
		mustPut(t, f, k)
	}
	// Provoke a split whose new-bucket write succeeds but whose old
	// write and compensating free both fail.
	sawAbandon := false
	for _, k := range keys[200:] {
		fs.Arm(1, false, true) // 1 successful write (the new bucket), then fail
		_, err := f.Put(k, nil)
		fs.Disarm()
		if err != nil && len(f.abandoned) > 0 {
			sawAbandon = true
			break
		}
	}
	if !sawAbandon {
		t.Skip("no split hit the double-failure window with these keys")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("live file after double failure: %v", err)
	}
	rec, err := Recover(cfg, fs)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if err := rec.CheckInvariants(); err != nil {
		t.Fatalf("recovered: %v", err)
	}
	if rec.Len() != f.Len() {
		t.Fatalf("recovered %d keys, live file had %d", rec.Len(), f.Len())
	}
}
