package core

import (
	"fmt"

	"triehash/internal/bucket"
	"triehash/internal/keys"
	"triehash/internal/obs"
	"triehash/internal/trie"
)

// split resolves the overflow of bucket addr, whose in-memory image b holds
// Capacity+1 records (the paper's sequence B). Redistribution, when
// configured, runs first; otherwise a new bucket is appended (Algorithm A2
// step 2 and the trie expansion of step 3 / Section 4.1).
func (f *File) split(addr int32, b *bucket.Bucket) error {
	if f.cfg.Redistribution == RedistSuccessor || f.cfg.Redistribution == RedistBoth {
		ok, err := f.redistributeToSuccessor(addr, b)
		if err != nil || ok {
			return err
		}
	}
	if f.cfg.Redistribution == RedistPredecessor || f.cfg.Redistribution == RedistBoth {
		ok, err := f.redistributeToPredecessor(addr, b)
		if err != nil || ok {
			return err
		}
	}
	return f.appendSplit(addr, b)
}

// appendSplit is the normal split: a new bucket N receives every key above
// the split string.
func (f *File) appendSplit(addr int32, b *bucket.Bucket) error {
	p, err := f.prepareSplit(addr, b)
	if err != nil {
		return err
	}
	return f.finishSplit(p)
}

// preparedSplit is the store phase of a split done off to the side — the
// new bucket allocated, filled and written, the old bucket's shrunk image
// held in memory but not yet on disk — awaiting finishSplit. The
// concurrent engine prepares splits under a subtree stripe plus the bucket
// latch (distinct buckets in parallel on the batch path) and runs
// finishSplit under the trie flip lock, so whole-trie readers that exclude
// only the flips can never observe the shrunk old bucket before the new
// one is reachable.
type preparedSplit struct {
	addr     int32
	newAddr  int32
	splitKey string
	s        []byte
	b        *bucket.Bucket // the old bucket's shrunk image, not yet written
}

// prepareSplit performs the off-to-the-side phase of splitting bucket
// addr, whose in-memory image b holds Capacity+1 records: allocate the new
// bucket, move every key above the split string into it, and write the new
// bucket — unreachable until the flip, so nothing observable changes. The
// old bucket's store image and the trie are untouched; the caller runs
// finishSplit to publish.
func (f *File) prepareSplit(addr int32, b *bucket.Bucket) (*preparedSplit, error) {
	B := b.Keys() // the b+1 ordered keys to split (fewer on a byte-triggered split)
	splitPos, boundPos := f.splitIndices(b)
	splitKey := B[splitPos-1]
	boundKey := B[boundPos-1]
	s := f.cfg.Alphabet.SplitString(splitKey, boundKey)

	newAddr, err := f.st.Alloc()
	if err != nil {
		return nil, err
	}
	moved := b.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
	if len(moved) == 0 || b.Len() == 0 {
		panic(fmt.Sprintf("core: split of bucket %d by %q moved %d of %d keys", addr, s, len(moved), len(B)))
	}
	nb := bucket.New(f.cfg.Capacity)
	nb.SetBound(newBucketBound(f.cfg.Mode, s, b.Bound()))
	nb.Absorb(moved)
	b.SetBound(s) // the old bucket's range now tops out at the split string
	// Durability and failure ordering: both buckets are written (here and
	// in finishSplit) before the in-memory trie changes, so a failed
	// write aborts the split with the live file fully consistent (the
	// store still holds the pre-split old bucket). Within the writes, the
	// new bucket goes first: a crash between them leaves the moved
	// records present twice, which Recover detects by the duplicate bound
	// and repairs by dropping the subset twin; the opposite order could
	// lose them.
	if err := f.st.Write(newAddr, nb); err != nil {
		f.freeBestEffort(newAddr)
		return nil, err
	}
	return &preparedSplit{addr: addr, newAddr: newAddr, splitKey: splitKey, s: s, b: b}, nil
}

// finishSplit publishes a prepared split: the old bucket's shrunk image is
// written and the trie expansion makes the new bucket reachable. The store
// mutation order across prepareSplit+finishSplit — alloc, write new, write
// old, flip — is exactly the pre-sharding sequence, so the crash-recovery
// reasoning carries over unchanged.
func (f *File) finishSplit(p *preparedSplit) error {
	if err := f.st.Write(p.addr, p.b); err != nil {
		f.freeBestEffort(p.newAddr)
		return err
	}
	f.commitSplit(p)
	return nil
}

// commitSplit is the trie half of finishSplit: the expansion that makes
// the new bucket reachable.
func (f *File) commitSplit(p *preparedSplit) {
	f.trie.SetBoundary(p.splitKey, p.s, p.addr, p.addr, p.newAddr, f.cfg.Mode)
	f.splits++
	f.emit(obs.EvSplit, p.addr, p.newAddr, fmt.Sprintf("split string %q", p.s))
}

// freeBestEffort releases a bucket allocated by an operation that failed
// midway; if even the free fails, the slot is remembered as abandoned —
// it holds at most duplicates of reachable records and the next Recover
// sweeps it.
func (f *File) freeBestEffort(addr int32) {
	if f.st.Free(addr) != nil {
		f.abandonedMu.Lock()
		if f.abandoned == nil {
			f.abandoned = map[int32]bool{}
		}
		f.abandoned[addr] = true
		f.abandonedMu.Unlock()
	}
}

// redistributeToSuccessor shifts the top keys of the overflowing bucket
// into its in-order successor when that bucket has room (Section 4.4),
// aiming at an even load across the two buckets. Reports whether the
// overflow was resolved.
func (f *File) redistributeToSuccessor(addr int32, b *bucket.Bucket) (bool, error) {
	_, succ := f.trie.NeighborBuckets(addr)
	if succ < 0 {
		return false, nil
	}
	sb, err := f.st.Read(succ)
	if err != nil {
		return false, err
	}
	free := f.cfg.Capacity - sb.Len()
	if free < 1 {
		return false, nil
	}
	B := b.Keys()
	undo := sb.Clone() // compensation image if the giver's write fails
	bundo := b.Clone() // restore image if the byte gate refuses the shift
	total := len(B) + sb.Len()
	targetStay := (total + 1) / 2
	q := len(B) - targetStay // keys to move
	if q < 1 {
		q = 1
	}
	if q > free {
		q = free
	}
	// Deterministic boundary right under the q moving keys.
	m := len(B) - q // 0-based index of the split key; bound is the next key
	s := f.cfg.Alphabet.SplitString(B[m-1], B[m])
	moved := b.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
	sb.Absorb(moved)
	b.SetBound(s)
	if sb.Len() > f.cfg.Capacity || b.Len() > f.cfg.Capacity {
		panic(fmt.Sprintf("core: successor redistribution overflowed: %d/%d keys", b.Len(), sb.Len()))
	}
	if !f.pageFits(sb) || !f.pageFits(b) {
		// Byte gate: the shifted images would not encode into their slots;
		// restore the giver (the receiver's image is a discarded read copy)
		// and fall through to the append split.
		*b = *bundo
		return false, nil
	}
	// Receiver first, giver second, trie last: a failure at any point
	// leaves the live file consistent (duplicated records in the
	// receiver are unreachable until the trie flips). If the giver's
	// write fails after the receiver's succeeded, restore the receiver
	// (best effort) so the store holds exactly the pre-operation state.
	if err := f.st.Write(succ, sb); err != nil {
		return false, err
	}
	if err := f.st.Write(addr, b); err != nil {
		_ = f.st.Write(succ, undo)
		return false, err
	}
	f.trie.SetBoundary(B[m-1], s, addr, addr, succ, trie.ModeTHCL)
	if f.cfg.CollapseOnMerge {
		f.trie.Collapse()
	}
	f.splits++
	f.redistributions++
	f.emit(obs.EvRedistribution, addr, succ, "to successor")
	return true, nil
}

// redistributeToPredecessor shifts the bottom keys of the overflowing
// bucket into its in-order predecessor when that bucket has room.
func (f *File) redistributeToPredecessor(addr int32, b *bucket.Bucket) (bool, error) {
	pred, _ := f.trie.NeighborBuckets(addr)
	if pred < 0 {
		return false, nil
	}
	pb, err := f.st.Read(pred)
	if err != nil {
		return false, err
	}
	free := f.cfg.Capacity - pb.Len()
	if free < 1 {
		return false, nil
	}
	B := b.Keys()
	undo := pb.Clone() // compensation image if the giver's write fails
	bundo := b.Clone() // restore image if the byte gate refuses the shift
	total := len(B) + pb.Len()
	q := total/2 - pb.Len() // keys to move down for an even load
	if q < 1 {
		q = 1
	}
	if q > free {
		q = free
	}
	if q >= len(B) {
		q = len(B) - 1
	}
	// The split key is the last moving key (the paper's m' = 1 case
	// generalized); the bounding key is the first staying one.
	s := f.cfg.Alphabet.SplitString(B[q-1], B[q])
	stay := b.SplitOff(func(k string) bool { return !f.cfg.Alphabet.KeyLEBound(k, s) })
	// SplitOff kept the high keys in b and returned the low ones.
	pb.Absorb(stay)
	pb.SetBound(s) // the predecessor's range now reaches the split string
	if pb.Len() > f.cfg.Capacity || b.Len() > f.cfg.Capacity {
		panic(fmt.Sprintf("core: predecessor redistribution overflowed: %d/%d keys", pb.Len(), b.Len()))
	}
	if !f.pageFits(pb) || !f.pageFits(b) {
		// Byte gate: restore the giver and fall through to the append split
		// (see redistributeToSuccessor).
		*b = *bundo
		return false, nil
	}
	// Receiver first, giver second, trie last (see redistributeToSuccessor).
	if err := f.st.Write(pred, pb); err != nil {
		return false, err
	}
	if err := f.st.Write(addr, b); err != nil {
		_ = f.st.Write(pred, undo)
		return false, err
	}
	f.trie.SetBoundary(B[q-1], s, addr, pred, addr, trie.ModeTHCL)
	if f.cfg.CollapseOnMerge {
		f.trie.Collapse()
	}
	f.splits++
	f.redistributions++
	f.emit(obs.EvRedistribution, addr, pred, "to predecessor")
	return true, nil
}

// newBucketBound computes the logical-path bound of the bucket a split
// appends. Under THCL the new bucket's run reaches the old upper bound
// (shared leaves cover everything above the split string). Under the
// basic method a multi-digit expansion interposes nil leaves, so the new
// bucket's single leaf bound is the split string less its last digit;
// the single-digit case keeps the old bound.
func newBucketBound(mode trie.Mode, s, oldBound []byte) []byte {
	if mode == trie.ModeTHCL {
		return oldBound
	}
	cp := keys.CommonPrefixLen(s, oldBound)
	if len(s)-cp > 1 {
		return s[:len(s)-1]
	}
	return oldBound
}
