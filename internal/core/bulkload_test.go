package core

import (
	"errors"
	"sort"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

func sliceFeeder(keys []string) func() (string, []byte, bool) {
	i := 0
	return func() (string, []byte, bool) {
		if i >= len(keys) {
			return "", nil, false
		}
		k := keys[i]
		i++
		return k, []byte("v:" + k), true
	}
}

func TestBulkLoadCompact(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(81, 5000, 3, 10))
	cfg := Config{Capacity: 20, Mode: trie.ModeTHCL}
	f, err := BulkLoad(cfg, store.NewMem(), 1.0, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Keys != len(keys) {
		t.Fatalf("keys = %d", st.Keys)
	}
	if st.Load < 0.999 {
		t.Fatalf("bulk compact load %.4f", st.Load)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, err := f.Get(k); err != nil || string(v) != "v:"+k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	// The reconstructed trie arrives balanced: depth is logarithmic-ish,
	// far under the right-deep chain an incremental compact load grows.
	inc := loadFile(t, Config{Capacity: 20, Mode: trie.ModeTHCL, SplitPos: 20}, keys)
	ist := inc.Stats()
	if st.Depth >= ist.Depth {
		t.Errorf("bulk depth %d not below incremental %d", st.Depth, ist.Depth)
	}
	if st.Buckets != ist.Buckets {
		t.Errorf("bulk %d buckets, incremental %d", st.Buckets, ist.Buckets)
	}
	t.Logf("5000 keys compact: bulk depth %d / M %d vs incremental depth %d / M %d",
		st.Depth, st.TrieCells, ist.Depth, ist.TrieCells)
}

func TestBulkLoadFill(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(82, 2000, 3, 10))
	f, err := BulkLoad(Config{Capacity: 20, Mode: trie.ModeTHCL}, store.NewMem(), 0.7, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Load < 0.66 || st.Load > 0.72 {
		t.Fatalf("fill 0.7 gave load %.3f", st.Load)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The slack absorbs random insertions without immediate splits.
	before := st.Buckets
	extra := workload.Uniform(83, 300, 3, 10)
	for _, k := range extra {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if growth := f.Stats().Buckets - before; growth > 60 {
		t.Errorf("%d splits for 300 inserts into 30%% slack", growth)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	ks := []string{"b", "a"}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder(ks)); err == nil {
		t.Error("descending input accepted")
	}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 0, sliceFeeder(nil)); err == nil {
		t.Error("zero fill accepted")
	}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder([]string{"bad "})); err == nil {
		t.Error("invalid key accepted")
	}
	st := store.NewMem()
	st.Alloc()
	if _, err := BulkLoad(Config{Capacity: 4}, st, 1.0, sliceFeeder(nil)); err == nil {
		t.Error("non-empty store accepted")
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	f, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.Stats().Buckets != 1 {
		t.Fatalf("empty bulk load: %v", f.Stats())
	}
	mustPut(t, f, "works")
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	g, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder([]string{"only"}))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g.Get("only"); err != nil || string(v) != "v:only" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadEquivalence: a bulk-loaded file and an incrementally loaded
// one are observationally identical, then evolve identically under
// further traffic.
func TestBulkLoadEquivalence(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(84, 1500, 3, 9))
	cfg := Config{Capacity: 10, Mode: trie.ModeTHCL, SplitPos: 10}
	bulk, err := BulkLoad(cfg, store.NewMem(), 1.0, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	inc := newFile(t, cfg)
	for _, k := range keys {
		if _, err := inc.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	extra := workload.Uniform(85, 800, 3, 9)
	for _, k := range extra {
		if _, err := bulk.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("len %d vs %d", bulk.Len(), inc.Len())
	}
	// Identical range results.
	sorted := append(append([]string(nil), keys...), extra...)
	sort.Strings(sorted)
	var a, b []string
	bulk.Range(sorted[0], "", func(k string, _ []byte) bool { a = append(a, k); return true })
	inc.Range(sorted[0], "", func(k string, _ []byte) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("scans differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deletion machinery works on the bulk-loaded file too.
	for _, k := range keys[:500] {
		if err := bulk.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
