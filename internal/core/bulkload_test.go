package core

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

func sliceFeeder(keys []string) func() (string, []byte, bool) {
	i := 0
	return func() (string, []byte, bool) {
		if i >= len(keys) {
			return "", nil, false
		}
		k := keys[i]
		i++
		return k, []byte("v:" + k), true
	}
}

func TestBulkLoadCompact(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(81, 5000, 3, 10))
	cfg := Config{Capacity: 20, Mode: trie.ModeTHCL}
	f, err := BulkLoad(cfg, store.NewMem(), 1.0, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Keys != len(keys) {
		t.Fatalf("keys = %d", st.Keys)
	}
	if st.Load < 0.999 {
		t.Fatalf("bulk compact load %.4f", st.Load)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, err := f.Get(k); err != nil || string(v) != "v:"+k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	// The reconstructed trie arrives balanced: depth is logarithmic-ish,
	// far under the right-deep chain an incremental compact load grows.
	inc := loadFile(t, Config{Capacity: 20, Mode: trie.ModeTHCL, SplitPos: 20}, keys)
	ist := inc.Stats()
	if st.Depth >= ist.Depth {
		t.Errorf("bulk depth %d not below incremental %d", st.Depth, ist.Depth)
	}
	if st.Buckets != ist.Buckets {
		t.Errorf("bulk %d buckets, incremental %d", st.Buckets, ist.Buckets)
	}
	t.Logf("5000 keys compact: bulk depth %d / M %d vs incremental depth %d / M %d",
		st.Depth, st.TrieCells, ist.Depth, ist.TrieCells)
}

func TestBulkLoadFill(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(82, 2000, 3, 10))
	f, err := BulkLoad(Config{Capacity: 20, Mode: trie.ModeTHCL}, store.NewMem(), 0.7, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Load < 0.66 || st.Load > 0.72 {
		t.Fatalf("fill 0.7 gave load %.3f", st.Load)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The slack absorbs random insertions without immediate splits.
	before := st.Buckets
	extra := workload.Uniform(83, 300, 3, 10)
	for _, k := range extra {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if growth := f.Stats().Buckets - before; growth > 60 {
		t.Errorf("%d splits for 300 inserts into 30%% slack", growth)
	}
}

func TestBulkLoadErrors(t *testing.T) {
	ks := []string{"b", "a"}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder(ks)); err == nil {
		t.Error("descending input accepted")
	}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 0, sliceFeeder(nil)); err == nil {
		t.Error("zero fill accepted")
	}
	if _, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder([]string{"bad "})); err == nil {
		t.Error("invalid key accepted")
	}
	st := store.NewMem()
	st.Alloc()
	if _, err := BulkLoad(Config{Capacity: 4}, st, 1.0, sliceFeeder(nil)); err == nil {
		t.Error("non-empty store accepted")
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	f, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder(nil))
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 0 || f.Stats().Buckets != 1 {
		t.Fatalf("empty bulk load: %v", f.Stats())
	}
	mustPut(t, f, "works")
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	g, err := BulkLoad(Config{Capacity: 4}, store.NewMem(), 1.0, sliceFeeder([]string{"only"}))
	if err != nil {
		t.Fatal(err)
	}
	if v, err := g.Get("only"); err != nil || string(v) != "v:only" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkLoadEquivalence: a bulk-loaded file and an incrementally loaded
// one are observationally identical, then evolve identically under
// further traffic.
func TestBulkLoadEquivalence(t *testing.T) {
	keys := workload.Ascending(workload.Uniform(84, 1500, 3, 9))
	cfg := Config{Capacity: 10, Mode: trie.ModeTHCL, SplitPos: 10}
	bulk, err := BulkLoad(cfg, store.NewMem(), 1.0, sliceFeeder(keys))
	if err != nil {
		t.Fatal(err)
	}
	inc := newFile(t, cfg)
	for _, k := range keys {
		if _, err := inc.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	extra := workload.Uniform(85, 800, 3, 9)
	for _, k := range extra {
		if _, err := bulk.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
		if _, err := inc.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if bulk.Len() != inc.Len() {
		t.Fatalf("len %d vs %d", bulk.Len(), inc.Len())
	}
	// Identical range results.
	sorted := append(append([]string(nil), keys...), extra...)
	sort.Strings(sorted)
	var a, b []string
	bulk.Range(sorted[0], "", func(k string, _ []byte) bool { a = append(a, k); return true })
	inc.Range(sorted[0], "", func(k string, _ []byte) bool { b = append(b, k); return true })
	if len(a) != len(b) {
		t.Fatalf("scans differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("scan diverges at %d: %q vs %q", i, a[i], b[i])
		}
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Deletion machinery works on the bulk-loaded file too.
	for _, k := range keys[:500] {
		if err := bulk.Delete(k); err != nil && !errors.Is(err, ErrNotFound) {
			t.Fatal(err)
		}
	}
	if err := bulk.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestBulkPerBucket pins the fill arithmetic: round-to-nearest (the old
// truncation turned fill 0.999 of capacity 100 into 99 records per
// bucket, quietly missing the requested load), and rejection — not
// clamping — of fills below one record per bucket.
func TestBulkPerBucket(t *testing.T) {
	cases := []struct {
		cap  int
		fill float64
		want int
	}{
		{100, 0.999, 100}, // truncation regression: 99.9 rounds up
		{100, 0.994, 99},
		{20, 0.7, 14},
		{20, 1.0, 20},
		{4, 0.13, 1}, // 0.52 records rounds up to the minimum
	}
	for _, c := range cases {
		got, err := bulkPerBucket(Config{Capacity: c.cap}, c.fill)
		if err != nil || got != c.want {
			t.Errorf("bulkPerBucket(cap %d, fill %v) = %d, %v; want %d", c.cap, c.fill, got, err, c.want)
		}
	}
	if _, err := bulkPerBucket(Config{Capacity: 20}, 0.01); err == nil || !strings.Contains(err.Error(), "below one") {
		t.Errorf("sub-record fill: err = %v, want guidance mentioning 'below one'", err)
	}
	for _, fill := range []float64{0, -0.5, 1.01} {
		if _, err := bulkPerBucket(Config{Capacity: 20}, fill); err == nil {
			t.Errorf("fill %v accepted", fill)
		}
	}
	// The whole loader refuses too, on both paths.
	if _, err := BulkLoad(Config{Capacity: 50}, store.NewMem(), 0.005, sliceFeeder([]string{"a"})); err == nil {
		t.Error("BulkLoad accepted a sub-record fill")
	}
	if _, err := BulkLoadParallel(Config{Capacity: 50}, store.NewMem(), 0.005, sliceFeeder([]string{"a"}), 4); err == nil {
		t.Error("BulkLoadParallel accepted a sub-record fill")
	}
}

// TestBulkLoadParallelIdentity: for any worker count, the parallel loader
// produces a file indistinguishable from the streaming loader's — same
// stats, same serialized metadata, same record dump — across sizes that
// exercise the boundary cuts (empty, one key, an exact multiple of the
// per-bucket target, a short tail).
func TestBulkLoadParallelIdentity(t *testing.T) {
	cfg := Config{Capacity: 10, Mode: trie.ModeTHCL}
	dump := func(f *File) []string {
		var out []string
		f.Range("", "", func(k string, v []byte) bool {
			out = append(out, k+"="+string(v))
			return true
		})
		return out
	}
	for _, n := range []int{0, 1, 7, 70, 703, 2000} { // 70 = exact multiple at fill 1.0
		for _, fill := range []float64{1.0, 0.7} {
			keys := workload.Ascending(workload.Uniform(int64(90+n), n, 3, 10))
			want, err := BulkLoad(cfg, store.NewMem(), fill, sliceFeeder(keys))
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 8} {
				got, err := BulkLoadParallel(cfg, store.NewMem(), fill, sliceFeeder(keys), workers)
				if err != nil {
					t.Fatalf("n %d fill %v workers %d: %v", n, fill, workers, err)
				}
				ws, gs := want.Stats(), got.Stats()
				// IO counters are cumulative per store and advance as this
				// test itself reads the files back; identity is about
				// structure, not the harness's own access history.
				ws.IO, gs.IO = store.Counters{}, store.Counters{}
				if ws != gs {
					t.Fatalf("n %d fill %v workers %d: stats %+v vs %+v", n, fill, workers, gs, ws)
				}
				if !bytes.Equal(want.SaveMeta(), got.SaveMeta()) {
					t.Fatalf("n %d fill %v workers %d: metadata diverges", n, fill, workers)
				}
				if w, g := dump(want), dump(got); !slicesEqual(w, g) {
					t.Fatalf("n %d fill %v workers %d: dumps differ (%d vs %d records)", n, fill, workers, len(w), len(g))
				}
				if err := got.CheckInvariants(); err != nil {
					t.Fatalf("n %d fill %v workers %d: %v", n, fill, workers, err)
				}
			}
		}
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
