package core

// GetBatch looks up many keys in one pass. Keys are partitioned by the
// trie leaf they map to, so every qualifying bucket is read (or viewed,
// when the store supports snapshots) exactly once no matter how many of
// the batch's keys it serves — the batch analogue of the paper's
// observation that an ordered file serves a range scan with one access
// per bucket. Results align with keys: errs[i] is nil and vals[i] the
// value on success; errs[i] is ErrNotFound or a validation/storage error
// otherwise.
func (f *File) GetBatch(keys []string) (vals [][]byte, errs []error) {
	vals = make([][]byte, len(keys))
	errs = make([]error, len(keys))
	groups := make(map[int32][]int, len(keys))
	for i, k := range keys {
		if err := f.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		leaf := f.trie.SearchAddr(k)
		if leaf.IsNil() {
			errs[i] = ErrNotFound
			continue
		}
		groups[leaf.Addr()] = append(groups[leaf.Addr()], i)
	}
	for addr, idxs := range groups {
		b, err := f.view(addr)
		if err != nil {
			for _, i := range idxs {
				errs[i] = err
			}
			continue
		}
		for _, i := range idxs {
			if v, ok := b.Get(keys[i]); ok {
				vals[i] = v
			} else {
				errs[i] = ErrNotFound
			}
		}
	}
	return vals, errs
}
