package core

import (
	"errors"
	"fmt"
	"sort"

	"triehash/internal/bucket"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// Recover rebuilds a file whose trie (held in main memory or in a lost
// metadata file) was destroyed, from nothing but the bucket store — the
// /TOR83/ reconstruction the paper's conclusion describes: every bucket's
// header carries its logical-path bound, and the ordered sequence of
// bounds determines an equivalent trie.
//
// The rebuilt trie is usually better balanced than the lost one (the
// property /TOR83/ conjectures optimal) and never retains nil leaves or
// redundant shared-leaf chains beyond what the bounds require, so it can
// even be smaller. Counters that cannot be derived from the buckets
// (splits, redistributions) restart at zero.
func Recover(cfg Config, st store.Store) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	type entry struct {
		addr  int32
		bound []byte
		keys  int
	}
	var entries []entry
	var corrupt []int32
	total := 0
	for addr := int32(0); addr < st.MaxAddr(); addr++ {
		b, err := st.Read(addr)
		if err != nil {
			// Freed slots are skipped; unreadable ones are recorded so the
			// caller (Scrub, thcheck -repair) knows which buckets need
			// quarantining — recovery itself proceeds on the survivors.
			if errors.Is(err, store.ErrCorrupt) {
				corrupt = append(corrupt, addr)
			}
			continue
		}
		entries = append(entries, entry{addr: addr, bound: b.Bound(), keys: b.Len()})
		total += b.Len()
	}
	if len(entries) == 0 {
		if len(corrupt) > 0 {
			return nil, fmt.Errorf("core: recover: all %d readable slots are corrupt", len(corrupt))
		}
		return nil, fmt.Errorf("core: recover: the store holds no buckets")
	}
	// Sort by bound; the infinite bound (empty) is the largest.
	sort.Slice(entries, func(i, j int) bool {
		bi, bj := entries[i].bound, entries[j].bound
		switch {
		case len(bi) == 0:
			return false
		case len(bj) == 0:
			return true
		}
		return cfg.Alphabet.ComparePathBounds(bi, bj) < 0
	})
	// Sweep empty orphans with the infinite bound first: they are the
	// slots failed frees leaked (an allocated bucket starts with the
	// infinite bound). Keep at most one infinite-bound entry, preferring
	// a non-empty one.
	for len(entries) >= 2 {
		last, prev := entries[len(entries)-1], entries[len(entries)-2]
		if len(prev.bound) != 0 {
			break
		}
		drop := last
		if last.keys > 0 && prev.keys == 0 {
			drop = prev
			entries[len(entries)-2] = last
		} else if last.keys > 0 && prev.keys > 0 {
			// A split of the top bucket leaves both twins claiming the
			// infinite bound until the old one's shrink write lands; the
			// same twin resolution as for finite duplicate bounds applies.
			d, err := resolveDuplicate(st, prev.addr, last.addr)
			if err != nil {
				return nil, fmt.Errorf("core: recover: two non-empty buckets (%d, %d) both claim the infinite bound: %w", prev.addr, last.addr, err)
			}
			if d == prev.addr {
				drop = prev
				entries[len(entries)-2] = last
			}
		}
		if err := st.Free(drop.addr); err != nil {
			return nil, err
		}
		total -= drop.keys
		entries = entries[:len(entries)-1]
	}
	// Under the basic method the region above the highest bound may have
	// belonged to nil leaves; the top bucket then carries a finite bound.
	// Recovery extends its range to the infinite bound — no keys lived in
	// the nil region, so nothing changes semantically.
	if top := &entries[len(entries)-1]; len(top.bound) != 0 {
		top.bound = nil
	}
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1].bound, entries[i].bound
		if len(b) != 0 && cfg.Alphabet.ComparePathBounds(a, b) >= 0 {
			// Duplicate bounds arise from exactly one legal crash
			// state: a split wrote the new bucket but died before
			// shrinking the old one, so one bucket's records are a
			// subset of the other's. Repair by dropping the subset.
			drop, err := resolveDuplicate(st, entries[i-1].addr, entries[i].addr)
			if err != nil {
				return nil, fmt.Errorf("core: recover: duplicate bound %q on buckets %d and %d: %w",
					b, entries[i-1].addr, entries[i].addr, err)
			}
			keep := entries[i-1]
			if drop == entries[i-1].addr {
				keep = entries[i]
			}
			dropKeys := entries[i-1].keys + entries[i].keys - keepKeys(st, keep.addr)
			total -= dropKeys
			if err := st.Free(drop); err != nil {
				return nil, err
			}
			entries = append(entries[:i-1], entries[i:]...)
			entries[i-1] = keep
			i--
		}
	}

	// Rebuild the partition in one Reconstruct pass over the bound
	// sequence (chains for deep bounds are synthesized as shared
	// leaves). Empty buckets below the top cannot anchor a boundary (no
	// key witnesses their range); their range merges into the successor
	// and the bucket is freed — no record is lost.
	f := (&File{cfg: cfg, st: st, nkeys: total, corruptSlots: corrupt}).resolveStore()
	if err := f.fixBound(entries[len(entries)-1].addr, nil); err != nil {
		return nil, err
	}
	bounds := make([][]byte, 0, len(entries))
	ptrs := make([]trie.Ptr, 0, len(entries))
	for i, e := range entries {
		b, err := st.Read(e.addr)
		if err != nil {
			return nil, err
		}
		if b.Len() == 0 && i != len(entries)-1 {
			if err := st.Free(e.addr); err != nil {
				return nil, err
			}
			continue
		}
		if b.Len() > 0 {
			// The bucket's largest key witnesses its region: it must
			// sit at or below the stored bound.
			if w := b.MaxKey(); !cfg.Alphabet.KeyLEBound(w, e.bound) {
				return nil, fmt.Errorf("core: recover: bucket %d holds %q above its bound %q", e.addr, w, e.bound)
			}
		}
		bounds = append(bounds, e.bound)
		ptrs = append(ptrs, trie.Leaf(e.addr))
	}
	tr, err := trie.Reconstruct(cfg.Alphabet, bounds, ptrs)
	if err != nil {
		return nil, fmt.Errorf("core: recover: %w", err)
	}
	tr.SetTombstoning(cfg.TombstoneMerges)
	f.trie = tr
	if cfg.Mode == trie.ModeBasic {
		// The rebuilt trie uses shared leaves where multi-digit bounds
		// need chains, so the recovered file continues under THCL (the
		// refinement subsumes the basic method's semantics).
		f.cfg.Mode = trie.ModeTHCL
		f.cfg.Merge = MergeDefault
		f.cfg, err = f.cfg.withDefaults()
		if err != nil {
			return nil, err
		}
	}
	if err := f.reconcileStrays(); err != nil {
		return nil, fmt.Errorf("core: recover: %w", err)
	}
	return f, nil
}

// reconcileStrays drops records that do not route to the bucket holding
// them. Redistributions and merges write the receiver before the giver,
// so a crash between the two leaves the moved records in both buckets;
// under the rebuilt trie the copies in the receiver sit outside its
// range and route back to the giver, which still holds them. The one
// record a stray may exist without a routed twin for is the in-flight,
// never-synced insert that triggered the operation — dropping it is
// within the durability contract either way.
func (f *File) reconcileStrays() error {
	seen := make(map[int32]bool)
	total := 0
	for _, lp := range f.trie.InorderLeaves() {
		if lp.Leaf.IsNil() {
			continue
		}
		addr := lp.Leaf.Addr()
		if seen[addr] {
			continue
		}
		seen[addr] = true
		b, err := f.st.Read(addr)
		if err != nil {
			return err
		}
		var strays []string
		for i := 0; i < b.Len(); i++ {
			k := b.At(i).Key
			if p := f.trie.SearchAddr(k); p.IsNil() || p.Addr() != addr {
				strays = append(strays, k)
			}
		}
		if len(strays) > 0 {
			for _, k := range strays {
				b.Delete(k)
			}
			if err := f.st.Write(addr, b); err != nil {
				return err
			}
		}
		total += b.Len()
	}
	f.nkeys = total
	return nil
}

// fixBound rewrites a recovered bucket's header when its stored bound
// drifted (it should not, but recovery is exactly the place to restore
// invariants).
func (f *File) fixBound(addr int32, bound []byte) error {
	b, err := f.st.Read(addr)
	if err != nil {
		return err
	}
	if string(b.Bound()) == string(bound) {
		return nil
	}
	b.SetBound(bound)
	return f.st.Write(addr, b)
}

// resolveDuplicate decides which of two same-bound buckets to drop. Two
// crash states produce twins. A split that wrote the new bucket but died
// before shrinking the old one leaves the new twin's records a subset of
// the old's — drop the subset. When the insert that triggered the split
// was new and landed in the upper half, the new twin additionally holds
// that one record the old twin lacks; the old twin is then the one whose
// unshared records sort below the other's smallest key (it kept the lower
// half), and the new twin is dropped — losing exactly the in-flight,
// never-synced insert. Any other overlap pattern is a real inconsistency.
func resolveDuplicate(st store.Store, a, b int32) (drop int32, err error) {
	ba, err := st.Read(a)
	if err != nil {
		return 0, err
	}
	bb, err := st.Read(b)
	if err != nil {
		return 0, err
	}
	contains := func(large, small *bucket.Bucket) bool {
		for i := 0; i < small.Len(); i++ {
			if _, ok := large.Get(small.At(i).Key); !ok {
				return false
			}
		}
		return true
	}
	switch {
	case contains(bb, ba):
		return a, nil
	case contains(ba, bb):
		return b, nil
	}
	// Neither is a subset: the half-finished split carrying its in-flight
	// insert. Both twins are non-empty here (an empty one is a subset).
	old, neu, drop := ba, bb, b
	if bb.At(0).Key < ba.At(0).Key {
		old, neu, drop = bb, ba, a
	}
	extra := 0
	for i := 0; i < neu.Len(); i++ {
		if _, ok := old.Get(neu.At(i).Key); !ok {
			extra++
		}
	}
	if extra > 1 {
		return 0, fmt.Errorf("%d records present only in the newer twin", extra)
	}
	if extra == neu.Len() {
		// Twins of a split always share the old upper half; disjoint
		// buckets with equal bounds are corruption, not a crash state.
		return 0, fmt.Errorf("the twins share no record")
	}
	min := neu.At(0).Key
	for i := 0; i < old.Len(); i++ {
		if k := old.At(i).Key; k >= min {
			if _, ok := neu.Get(k); !ok {
				return 0, fmt.Errorf("record %q present in only one of the twins", k)
			}
		}
	}
	return drop, nil
}

// keepKeys returns the record count of the surviving twin.
func keepKeys(st store.Store, addr int32) int {
	b, err := st.Read(addr)
	if err != nil {
		return 0
	}
	return b.Len()
}
