package core

import (
	"errors"
	"fmt"
	"sync"

	"triehash/internal/bucket"
	"triehash/internal/format"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// ErrNotFound is returned when a key is absent from the file.
var ErrNotFound = errors.New("core: key not found")

// File is a trie-hashed file: records stored in capacity-b buckets behind a
// TH-trie access function. The trie lives in main memory (its size is a
// small fraction of the file, Section 3.1); buckets move through the Store.
//
// File is not safe for concurrent use; the public triehash package adds
// locking.
type File struct {
	cfg  Config
	trie *trie.Trie
	st   store.Store
	// viewer is st's ReadView capability, resolved once at construction
	// (see resolveStore): Get is the zero-allocation hot path, and a
	// per-call interface assertion costs measurably there.
	viewer store.Viewer
	// spanViewer is st's span-aware ReadView (the Instrumented wrapper),
	// resolved alongside viewer; nil when the store cannot tag span reads.
	spanViewer store.SpanViewer
	nkeys      int
	splits     int
	// redistributions counts splits resolved by shifting keys into an
	// existing bucket instead of appending one.
	redistributions int
	// abandoned records bucket slots a failed operation could neither
	// use nor free (a second storage failure during compensation). They
	// hold no live data — at most duplicates of reachable records — and
	// Recover sweeps them. abandonedMu guards the map: the concurrent
	// engine's batch path prepares splits of distinct buckets in
	// parallel, and two failing compensations must not race.
	abandonedMu sync.Mutex
	abandoned   map[int32]bool
	// corruptSlots lists the slot addresses Recover found unreadable
	// (CorruptError): the trie was rebuilt without them, and Scrub is the
	// pass that quarantines them and releases their slots.
	corruptSlots []int32
	// hook carries structural events to an attached observer (nil = off).
	hook *obs.Hook
}

// SetObsHook attaches the observability hook structural events go to.
func (f *File) SetObsHook(h *obs.Hook) { f.hook = h }

// CorruptSlots returns the slot addresses the last Recover found
// unreadable (nil when the store was healthy). A file carrying corrupt
// slots serves every surviving record but fails CheckInvariants until
// Scrub quarantines the damage.
func (f *File) CorruptSlots() []int32 { return append([]int32(nil), f.corruptSlots...) }

// resolveStore caches the store capabilities consulted on hot paths.
// Every constructor (New, Open, Recover, BulkLoad) finishes through it;
// f.st must not change afterwards — readers may run concurrently under
// the public layer's RLock and rely on viewer being immutable.
func (f *File) resolveStore() *File {
	f.viewer, _ = f.st.(store.Viewer)
	f.spanViewer, _ = f.st.(store.SpanViewer)
	return f
}

// view reads bucket addr read-only through the cheapest path the store
// offers: ReadView (no clone) when the store has one, Read otherwise.
func (f *File) view(addr int32) (*bucket.Bucket, error) {
	if f.viewer != nil {
		return f.viewer.ReadView(addr)
	}
	return f.st.Read(addr)
}

// emit sends a structural event, stamping it with the cheap O(1) state
// figures; a no-op (one atomic load) with no observer attached.
func (f *File) emit(t obs.EventType, addr, addr2 int32, detail string) {
	o := f.hook.Observer()
	if o == nil {
		return
	}
	o.Emit(obs.Event{
		Type: t, Addr: addr, Addr2: addr2, Detail: detail,
		Keys: f.nkeys, Buckets: f.st.Buckets(), TrieCells: f.trie.Cells(),
	})
}

// New creates a fresh file over st, which must be empty. The initial state
// matches the paper: bucket 0 allocated, trie equal to leaf 0.
func New(cfg Config, st store.Store) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if st.Buckets() != 0 {
		return nil, fmt.Errorf("core: store already holds %d buckets", st.Buckets())
	}
	addr, err := st.Alloc()
	if err != nil {
		return nil, err
	}
	if addr != 0 {
		return nil, fmt.Errorf("core: store allocated first bucket at %d, want 0", addr)
	}
	tr := trie.New(cfg.Alphabet, 0)
	tr.SetTombstoning(cfg.TombstoneMerges)
	return (&File{cfg: cfg, trie: tr, st: st}).resolveStore(), nil
}

// Config returns the file's effective configuration (defaults resolved).
func (f *File) Config() Config { return f.cfg }

// SetFormat selects the on-disk encoding version the file's metadata (and
// byte-budget arithmetic) uses. The caller keeps it in lockstep with the
// store's write format. Invalid versions are ignored.
func (f *File) SetFormat(v format.Version) {
	if v.Valid() {
		f.cfg.Format = v
	}
}

// SetPageBudget arms (or with 0 disarms) the byte-budget gate: the
// maximum encoded page size a bucket may reach before it must split.
// Persistent callers pass the store's slot payload.
func (f *File) SetPageBudget(n int) {
	if n >= 0 {
		f.cfg.PageBudget = n
	}
}

// Store exposes the underlying bucket store (for access accounting).
func (f *File) Store() store.Store { return f.st }

// Trie exposes the access structure (read-only use: statistics, dumps).
func (f *File) Trie() *trie.Trie { return f.trie }

// Len returns the number of records in the file.
func (f *File) Len() int { return f.nkeys }

// Splits returns the number of bucket splits performed (redistributions
// included).
func (f *File) Splits() int { return f.splits }

// Redistributions returns how many overflows were absorbed by key shifts
// into existing buckets.
func (f *File) Redistributions() int { return f.redistributions }

// Get returns the value stored under key. A search through an in-core trie
// costs at most one bucket read — zero when the key falls on a nil leaf.
// Read-only lookups go through the store's ReadView when it has one, so a
// store exposing immutable snapshots (the buffer pools) serves the hit
// without copying the bucket.
func (f *File) Get(key string) ([]byte, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	leaf := f.trie.SearchAddr(key)
	if leaf.IsNil() {
		return nil, ErrNotFound
	}
	b, err := f.view(leaf.Addr())
	if err != nil {
		return nil, err
	}
	v, ok := b.Get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// Has reports whether key is present.
func (f *File) Has(key string) (bool, error) {
	_, err := f.Get(key)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNotFound):
		return false, nil
	default:
		return false, err
	}
}

// Put inserts or replaces the record for key, splitting the target bucket
// on overflow, and reports whether an existing record was replaced.
func (f *File) Put(key string, value []byte) (bool, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	res := f.trie.Search(key)
	if res.Leaf.IsNil() {
		// Basic method: first insertion choosing a nil leaf allocates
		// its bucket (Section 2.3). The bucket is written before the
		// trie claims the leaf, so a failed write changes nothing.
		addr, err := f.st.Alloc()
		if err != nil {
			return false, err
		}
		b := bucket.New(f.cfg.Capacity)
		b.SetBound(res.Path) // the nil leaf's logical path (TOR83 header)
		b.Put(key, value)
		if err := f.st.Write(addr, b); err != nil {
			f.freeBestEffort(addr)
			return false, err
		}
		f.trie.AllocNil(res.Pos, addr)
		f.nkeys++
		f.emit(obs.EvNilAlloc, addr, -1, "")
		return false, nil
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	if err != nil {
		return false, err
	}
	replaced := b.Put(key, value)
	if f.fitsPage(b) {
		if err := f.st.Write(addr, b); err != nil {
			return replaced, err
		}
		if !replaced {
			f.nkeys++
		}
		return replaced, nil
	}
	// Overflow: over the record count, or — with the byte budget armed — a
	// replacement whose grown value no longer encodes into the slot.
	if err := f.split(addr, b); err != nil {
		return replaced, err
	}
	if !replaced {
		f.nkeys++
	}
	return replaced, nil
}

// Delete removes the record for key and runs the configured merge
// maintenance. It returns ErrNotFound when the key is absent.
func (f *File) Delete(key string) error {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	res := f.trie.Search(key)
	if res.Leaf.IsNil() {
		return ErrNotFound
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	if err != nil {
		return err
	}
	if !b.Delete(key) {
		return ErrNotFound
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	f.nkeys--
	return f.maintainAfterDelete(res, addr, b)
}

// Range calls fn for every record with from <= key <= to in ascending key
// order until fn returns false. An empty to means "to the end of the
// file". Because the file is key-ordered, the scan reads each qualifying
// bucket exactly once — consecutive shared leaves of a THCL file cost
// nothing extra.
func (f *File) Range(from, to string, fn func(key string, value []byte) bool) error {
	if to != "" && to < from {
		return nil
	}
	alpha := f.cfg.Alphabet
	lastRead := int32(-1)
	stop := false
	var walkErr error
	f.trie.WalkLeavesFrom(from, func(lp trie.LeafPos) bool {
		// Leaf covers (previous bound, lp.Path]; skip while the upper
		// bound is still below from (the walk already pruned whole
		// subtrees; this guards the boundary leaf).
		if len(lp.Path) > 0 && !alpha.KeyLEBound(from, lp.Path) {
			return true
		}
		if lp.Leaf.IsNil() {
			return true
		}
		addr := lp.Leaf.Addr()
		if addr != lastRead {
			lastRead = addr
			b, err := f.view(addr)
			if err != nil {
				walkErr = err
				return false
			}
			if !b.Ascend(from, to, func(r bucket.Record) bool { return fn(r.Key, r.Value) }) {
				stop = true
				return false
			}
		}
		// Stop once this leaf's bound reaches past to.
		if to != "" && len(lp.Path) > 0 && alpha.KeyLEBound(to, lp.Path) {
			return false
		}
		return true
	})
	if walkErr != nil {
		return walkErr
	}
	_ = stop
	return nil
}

// Min returns the smallest key in the file.
func (f *File) Min() (string, error) {
	k := ""
	err := f.Range("", "", func(key string, _ []byte) bool { k = key; return false })
	if err != nil {
		return "", err
	}
	if k == "" {
		return "", ErrNotFound
	}
	return k, nil
}

// Max returns the largest key in the file by scanning the tail leaves.
func (f *File) Max() (string, error) {
	leaves := f.trie.InorderLeaves()
	last := int32(-1)
	for i := len(leaves) - 1; i >= 0; i-- {
		if leaves[i].Leaf.IsNil() {
			continue
		}
		addr := leaves[i].Leaf.Addr()
		if addr == last {
			continue
		}
		last = addr
		b, err := f.view(addr)
		if err != nil {
			return "", err
		}
		if b.Len() > 0 {
			return b.MaxKey(), nil
		}
	}
	return "", ErrNotFound
}
