package core

import (
	"fmt"

	"triehash/internal/bucket"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// BulkLoad builds a file from records supplied in strictly ascending key
// order, in one pass: keys are sliced into buckets of Fill·Capacity
// records, the boundary between adjacent buckets is the split string of
// the keys astride it, and the trie is reconstructed from the boundary
// sequence — arriving balanced, unlike the right-deep trie an incremental
// compact load grows. next returns one record at a time and ok=false at
// the end.
//
// fill is the target bucket load in (0, 1]; 1 gives the paper's compact
// file, lower values leave per-bucket slack for later random insertions
// (the B-tree bulk-loading practice). The resulting file is identical in
// content to an incremental load and obeys every invariant.
func BulkLoad(cfg Config, st store.Store, fill float64, next func() (key string, value []byte, ok bool)) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if fill <= 0 || fill > 1 {
		return nil, fmt.Errorf("core: bulk load fill %v outside (0, 1]", fill)
	}
	if st.Buckets() != 0 {
		return nil, fmt.Errorf("core: store already holds %d buckets", st.Buckets())
	}
	perBucket := int(fill * float64(cfg.Capacity))
	if perBucket < 1 {
		perBucket = 1
	}

	var (
		bounds  [][]byte
		ptrs    []trie.Ptr
		cur     = bucket.New(cfg.Capacity)
		prevKey string
		total   int
	)
	flush := func(boundary []byte) error {
		addr, err := st.Alloc()
		if err != nil {
			return err
		}
		cur.SetBound(boundary)
		if err := st.Write(addr, cur); err != nil {
			return err
		}
		bounds = append(bounds, boundary)
		ptrs = append(ptrs, trie.Leaf(addr))
		cur = bucket.New(cfg.Capacity)
		return nil
	}
	for {
		key, value, ok := next()
		if !ok {
			break
		}
		if err := cfg.Alphabet.Validate(key); err != nil {
			return nil, err
		}
		if total > 0 && key <= prevKey {
			return nil, fmt.Errorf("core: bulk load keys not strictly ascending: %q after %q", key, prevKey)
		}
		if cur.Len() == perBucket {
			// The boundary separates the bucket's last key from the
			// incoming one, exactly as a split would place it.
			if err := flush(cfg.Alphabet.SplitString(prevKey, key)); err != nil {
				return nil, err
			}
		}
		cur.Put(key, value)
		prevKey = key
		total++
	}
	// The final bucket carries the infinite bound (and exists even for
	// an empty load, matching New's initial state).
	if err := flush(nil); err != nil {
		return nil, err
	}

	tr, err := trie.Reconstruct(cfg.Alphabet, bounds, ptrs)
	if err != nil {
		return nil, fmt.Errorf("core: bulk load: %w", err)
	}
	tr.SetTombstoning(cfg.TombstoneMerges)
	return (&File{cfg: cfg, trie: tr, st: st, nkeys: total}).resolveStore(), nil
}
