package core

import (
	"fmt"
	"math"
	"sync"

	"triehash/internal/bucket"
	"triehash/internal/concurrent"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// bulkPerBucket resolves the records-per-bucket target of a bulk load:
// fill·Capacity rounded to the nearest integer (truncation used to turn
// fill 0.999 of capacity 100 into 99 records silently). A fill packing
// less than one record per bucket is rejected rather than clamped — the
// caller asked for a load the geometry cannot express.
func bulkPerBucket(cfg Config, fill float64) (int, error) {
	if fill <= 0 || fill > 1 {
		return 0, fmt.Errorf("core: bulk load fill %v outside (0, 1]", fill)
	}
	perBucket := int(math.Round(fill * float64(cfg.Capacity)))
	if perBucket < 1 {
		return 0, fmt.Errorf("core: bulk load fill %v of bucket capacity %d packs %.2f records per bucket — below one; raise fill to at least %.3f",
			fill, cfg.Capacity, fill*float64(cfg.Capacity), 0.5/float64(cfg.Capacity))
	}
	return perBucket, nil
}

// BulkLoad builds a file from records supplied in strictly ascending key
// order, in one pass: keys are sliced into buckets of Fill·Capacity
// records, the boundary between adjacent buckets is the split string of
// the keys astride it, and the trie is reconstructed from the boundary
// sequence — arriving balanced, unlike the right-deep trie an incremental
// compact load grows. next returns one record at a time and ok=false at
// the end.
//
// fill is the target bucket load in (0, 1]; 1 gives the paper's compact
// file, lower values leave per-bucket slack for later random insertions
// (the B-tree bulk-loading practice). The resulting file is identical in
// content to an incremental load and obeys every invariant.
func BulkLoad(cfg Config, st store.Store, fill float64, next func() (key string, value []byte, ok bool)) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	perBucket, err := bulkPerBucket(cfg, fill)
	if err != nil {
		return nil, err
	}
	if st.Buckets() != 0 {
		return nil, fmt.Errorf("core: store already holds %d buckets", st.Buckets())
	}

	var (
		bounds  [][]byte
		ptrs    []trie.Ptr
		cur     = bucket.New(cfg.Capacity)
		prevKey string
		total   int
	)
	flush := func(boundary []byte) error {
		addr, err := st.Alloc()
		if err != nil {
			return err
		}
		cur.SetBound(boundary)
		if err := st.Write(addr, cur); err != nil {
			return err
		}
		bounds = append(bounds, boundary)
		ptrs = append(ptrs, trie.Leaf(addr))
		cur = bucket.New(cfg.Capacity)
		return nil
	}
	for {
		key, value, ok := next()
		if !ok {
			break
		}
		if err := cfg.Alphabet.Validate(key); err != nil {
			return nil, err
		}
		if total > 0 && key <= prevKey {
			return nil, fmt.Errorf("core: bulk load keys not strictly ascending: %q after %q", key, prevKey)
		}
		if cur.Len() > 0 {
			// The boundary separates the bucket's last key from the
			// incoming one, exactly as a split would place it. Cut at the
			// count target, or earlier when the byte budget is armed and the
			// grown bucket could no longer encode into its slot.
			cut := cur.Len() >= perBucket
			var s []byte
			if cut || cfg.PageBudget > 0 {
				s = cfg.Alphabet.SplitString(prevKey, key)
			}
			if !cut && cfg.PageBudget > 0 {
				probe := cur.Clone()
				probe.Put(key, value)
				probe.SetBound(s)
				cut = probe.EncodedLen(cfg.Format) > cfg.PageBudget
			}
			if cut {
				if err := flush(s); err != nil {
					return nil, err
				}
			}
		}
		cur.Put(key, value)
		prevKey = key
		total++
	}
	// The final bucket carries the infinite bound (and exists even for
	// an empty load, matching New's initial state).
	if err := flush(nil); err != nil {
		return nil, err
	}

	tr, err := trie.Reconstruct(cfg.Alphabet, bounds, ptrs)
	if err != nil {
		return nil, fmt.Errorf("core: bulk load: %w", err)
	}
	tr.SetTombstoning(cfg.TombstoneMerges)
	return (&File{cfg: cfg, trie: tr, st: st, nkeys: total}).resolveStore(), nil
}

// BulkLoadParallel is BulkLoad with the bucket packing and slot writes
// fanned out over at most workers goroutines. The input scan stays serial
// (it validates key order and fixes every bucket boundary), and so does
// slot allocation, so the loaded file — addresses, bounds, trie shape —
// is exactly BulkLoad's; only the store writes race, and they all target
// distinct slots. The records are buffered for the fan-out, so peak
// memory is the input size rather than one bucket.
func BulkLoadParallel(cfg Config, st store.Store, fill float64, next func() (key string, value []byte, ok bool), workers int) (*File, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	perBucket, err := bulkPerBucket(cfg, fill)
	if err != nil {
		return nil, err
	}
	if st.Buckets() != 0 {
		return nil, fmt.Errorf("core: store already holds %d buckets", st.Buckets())
	}

	// Serial scan: validate, buffer, and cut the boundary wherever the
	// streaming loader would have flushed — the same count target and (when
	// the byte budget is armed) the same encoded-size probe, so the two
	// loaders build byte-identical files.
	var (
		ks      []string
		vs      [][]byte
		bounds  [][]byte
		starts  = []int{0} // ks index of each bucket's first record
		prevKey string
		cur     *bucket.Bucket // packing probe, maintained only under a byte budget
	)
	if cfg.PageBudget > 0 {
		cur = bucket.New(cfg.Capacity)
	}
	for {
		key, value, ok := next()
		if !ok {
			break
		}
		if err := cfg.Alphabet.Validate(key); err != nil {
			return nil, err
		}
		if len(ks) > 0 && key <= prevKey {
			return nil, fmt.Errorf("core: bulk load keys not strictly ascending: %q after %q", key, prevKey)
		}
		if n := len(ks) - starts[len(starts)-1]; n > 0 {
			cut := n >= perBucket
			var s []byte
			if cut || cur != nil {
				s = cfg.Alphabet.SplitString(prevKey, key)
			}
			if !cut && cur != nil {
				probe := cur.Clone()
				probe.Put(key, value)
				probe.SetBound(s)
				cut = probe.EncodedLen(cfg.Format) > cfg.PageBudget
			}
			if cut {
				bounds = append(bounds, s)
				starts = append(starts, len(ks))
				if cur != nil {
					cur = bucket.New(cfg.Capacity)
				}
			}
		}
		if cur != nil {
			cur.Put(key, value)
		}
		ks = append(ks, key)
		vs = append(vs, value)
		prevKey = key
	}
	bounds = append(bounds, nil) // the final bucket's infinite bound
	starts = append(starts, len(ks))

	// Serial allocation in bucket order keeps the address sequence (and so
	// the trie's leaves) identical to the streaming loader's.
	addrs := make([]int32, len(bounds))
	for i := range addrs {
		if addrs[i], err = st.Alloc(); err != nil {
			return nil, err
		}
	}

	var (
		errMu    sync.Mutex
		writeErr error
	)
	concurrent.FanOut(len(bounds), workers, func(i int) {
		b := bucket.New(cfg.Capacity)
		lo, hi := starts[i], starts[i+1]
		for j := lo; j < hi; j++ {
			b.Put(ks[j], vs[j])
		}
		b.SetBound(bounds[i])
		if err := st.Write(addrs[i], b); err != nil {
			errMu.Lock()
			if writeErr == nil {
				writeErr = err
			}
			errMu.Unlock()
		}
	})
	if writeErr != nil {
		return nil, writeErr
	}

	ptrs := make([]trie.Ptr, len(addrs))
	for i, a := range addrs {
		ptrs[i] = trie.Leaf(a)
	}
	tr, err := trie.Reconstruct(cfg.Alphabet, bounds, ptrs)
	if err != nil {
		return nil, fmt.Errorf("core: bulk load: %w", err)
	}
	tr.SetTombstoning(cfg.TombstoneMerges)
	return (&File{cfg: cfg, trie: tr, st: st, nkeys: len(ks)}).resolveStore(), nil
}
