package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/concurrent"
	"triehash/internal/format"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// ConcurrentFile is the store-backed /VID87/ engine: a File whose readers
// never take a global lock. The paper's conclusion observes that the
// append-only cell table makes trie search safe against a concurrent
// split, and that a writer needs "only the leaf A and the variable N";
// this type carries that scheme into the real engine, over any
// store.Store (file store, buffer pools, fault and crash wrappers).
//
// The pieces:
//
//   - an atomic cell arena (concurrent.Arena) mirrors the authoritative
//     trie; point operations search it lock-free. The mirror is kept in
//     sync by the trie's Tracer hooks, so a chain of split cells is fully
//     wired before the single pointer flip that publishes it.
//   - one RW latch per bucket (concurrent.Latches). An operation latches
//     exactly one bucket and re-runs the search under the latch: if the
//     key still maps there, the latch orders it against any split or
//     merge of that bucket (those hold the write latch); if not, it
//     retries. Guarded merging is the sole two-latch site and locks in
//     ascending address order.
//   - a subtree stripe table (concurrent.Stripes) shards the structural
//     work: a split or merge locks the stripe of the nearest enclosing
//     trie subtree (hashed from the leaf's logical path; a root fallback
//     stripe covers leaves without one), so structural operations in
//     disjoint subtrees run their store phase — the expensive part — in
//     parallel. Merges spanning the in-order neighbours lock the
//     deduplicated stripe set in ascending index order.
//   - the trie flip lock (trieMu) is the one remaining global
//     serialization point: every access to the authoritative trie — and
//     the arena replay it drives — runs under it. Writers hold it only
//     for the publication flip (the old bucket's shrunk write plus the
//     in-memory trie expansion) or a merge's repoint, never for the
//     split's allocation and new-bucket write, so its critical sections
//     are microseconds where the old global structural lock's were the
//     whole split.
//
// Correctness never rests on the stripes: the bucket latch pins the
// key→bucket mapping (any operation that moves keys off a bucket holds
// its write latch), a merge's both latches pin the pair's adjacency, and
// every decision made outside the latches is re-verified under them. The
// stripes bound how many structural operations contend per subtree and
// carry the per-stripe observability; a hash collision costs waiting,
// not correctness.
//
// Publication is fill-then-flip all the way down: prepareSplit writes the
// new bucket while it is unreachable, and the single SetBoundary under
// trieMu — whose arena replay ends in one atomic pointer store — makes it
// reachable, so lock-free readers never observe a half-installed split.
// The store mutation order of every structural operation is exactly the
// sequential engine's (prepareSplit/finishSplit, mergeInto, borrow are
// shared code), so the crash-recovery reasoning — and the recovery chain
// itself — carries over unchanged.
//
// ConcurrentFile supports the configuration the scheme is proved for:
// THCL with guaranteed merging, no redistribution, no collapse-on-merge,
// no tombstones (the trie stays append-only; NewConcurrent enforces
// this). The sequential File remains the differential oracle: a
// single-threaded workload drives both to byte-identical files.
type ConcurrentFile struct {
	inner   *File
	arena   *concurrent.Arena
	latches *concurrent.Latches
	mirror  *concurrent.Mirror
	stripes *concurrent.Stripes

	// world gates whole-file operations against structural ones: every
	// split/merge/borrow path holds it shared, SaveMeta/Stats/Scrub and
	// friends hold it exclusively. It is uncontended in steady state —
	// the sharding lives in the stripes below it.
	world sync.RWMutex

	// trieMu is the trie flip lock, the innermost lock of the hierarchy
	//
	//	public file lock > world > subtree stripe > bucket latch > trieMu
	//
	// (store shard latches sit below engine code entirely). All
	// authoritative-trie access runs under it: exclusively for the
	// publication flips and merge repoints, shared for whole-trie reads
	// (Range, batch partitioning). Holders do no blocking work beyond
	// the flip's single old-bucket write, which is what shrank the
	// structural wait:hold ratio; they acquire no further locks (the
	// lockorder analyzer enforces it).
	trieMu sync.RWMutex

	// nkeys is the live record count, maintained atomically by the
	// latch-only fast paths; inner.nkeys is synced from it (by delta)
	// whenever inner code that reads or writes it runs under trieMu or
	// the exclusive world lock.
	nkeys atomic.Int64
}

// NewConcurrent wraps f — fresh or reopened, empty or populated — in the
// concurrent engine. The configuration must be THCL with guaranteed
// merging and no redistribution, collapse or tombstoning: those options
// shrink or reorder the cell table, which would invalidate concurrent
// readers' positions (the paper's Section 2.4 reasoning).
func NewConcurrent(f *File) (*ConcurrentFile, error) {
	cfg := f.cfg
	switch {
	case cfg.Mode != trie.ModeTHCL:
		return nil, fmt.Errorf("core: concurrent engine requires THCL (basic-method nil leaves need trie writes on the read path)")
	case cfg.Redistribution != RedistNone:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with redistribution on split")
	case cfg.Merge != MergeGuaranteed:
		return nil, fmt.Errorf("core: concurrent engine requires the guaranteed-load merge policy, have %v", cfg.Merge)
	case cfg.CollapseOnMerge:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with CollapseOnMerge (cell removal invalidates concurrent readers)")
	case cfg.TombstoneMerges:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with TombstoneMerges (Vacuum compacts the cell table)")
	}
	n := f.st.MaxAddr()
	if n < 1 {
		n = 1
	}
	e := &ConcurrentFile{
		inner:   f,
		arena:   concurrent.NewArena(f.trie),
		latches: concurrent.NewLatches(n),
		stripes: concurrent.NewStripes(),
	}
	e.mirror = &concurrent.Mirror{Arena: e.arena, Latches: e.latches}
	f.trie.SetTracer(e.mirror)
	e.nkeys.Store(int64(f.nkeys))
	return e, nil
}

// Inner returns the wrapped sequential File. The caller must hold no
// latch and guarantee quiescence (no concurrent operations) while using
// it directly.
func (e *ConcurrentFile) Inner() *File { return e.inner }

// Config returns the file's configuration.
func (e *ConcurrentFile) Config() Config { return e.inner.cfg }

// Store returns the bucket store.
func (e *ConcurrentFile) Store() store.Store { return e.inner.st }

// Len returns the number of records.
func (e *ConcurrentFile) Len() int { return int(e.nkeys.Load()) }

// SetObsHook attaches the observability hook structural events go to.
func (e *ConcurrentFile) SetObsHook(h *obs.Hook) { e.inner.SetObsHook(h) }

// SetFormat selects the on-disk encoding version (see File.SetFormat).
// Call before serving operations — the field is not latched.
func (e *ConcurrentFile) SetFormat(v format.Version) { e.inner.SetFormat(v) }

// SetPageBudget arms the byte-budget gate (see File.SetPageBudget). Call
// before serving operations — the field is not latched.
func (e *ConcurrentFile) SetPageBudget(n int) { e.inner.SetPageBudget(n) }

// syncDown pushes the atomic record count into inner.nkeys. Callers hold
// the flip lock (or the exclusive world lock) and call syncUp with the
// returned base after running inner code, so fast-path increments that
// landed in between are not clobbered.
func (e *ConcurrentFile) syncDown() int64 {
	before := e.nkeys.Load()
	e.inner.nkeys = int(before)
	return before
}

// syncUp folds inner.nkeys mutations (relative to the syncDown base)
// back into the atomic count.
func (e *ConcurrentFile) syncUp(base int64) {
	e.nkeys.Add(int64(e.inner.nkeys) - base)
}

// lockSubtrees acquires the subtree stripes named by ks — deduplicated,
// ascending index order — charging each acquisition to the span's subtree
// stages and, via the hold frames, to the per-stripe contention table.
// The returned unlock releases in reverse, keeping the span's hold frames
// LIFO.
func (e *ConcurrentFile) lockSubtrees(sp *obs.Span, ks ...int) func() {
	ord := concurrent.SortKeys(ks)
	for _, k := range ord {
		e.stripes.Lock(k)
		sp.BeginHold(obs.StripeAddr(k), obs.StageSubtreeWait)
	}
	return func() {
		for i := len(ord) - 1; i >= 0; i-- {
			e.stripes.Unlock(ord[i])
			sp.EndHold(obs.StageSubtreeHold)
		}
	}
}

// Get returns the value stored under key. The trie search is lock-free
// over the arena; the bucket read happens under the bucket's read latch,
// with the search re-run there to confirm the key still maps to the
// latched bucket (a split or merge may have moved it in between).
func (e *ConcurrentFile) Get(key string) ([]byte, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			return nil, ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.RLock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.RUnlock()
			continue
		}
		b, err := e.inner.view(addr)
		if err != nil {
			mu.RUnlock()
			return nil, err
		}
		v, ok := b.Get(key)
		mu.RUnlock()
		if !ok {
			return nil, ErrNotFound
		}
		return v, nil
	}
}

// Put inserts or replaces the record for key. Replacements and inserts
// that fit the bucket touch only that bucket's write latch — the paper's
// "only the leaf A" writer. An overflow releases the latch and resolves
// the split on the slow path, under the leaf's subtree stripe.
func (e *ConcurrentFile) Put(key string, value []byte) (bool, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			break // no bucket to latch; resolve on the slow path
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			continue
		}
		b, err := e.inner.st.Read(addr)
		if err != nil {
			mu.Unlock()
			return false, err
		}
		replaced := b.Put(key, value)
		if e.inner.fitsPage(b) {
			err := e.inner.st.Write(addr, b)
			mu.Unlock()
			if err != nil {
				return replaced, err
			}
			if !replaced {
				e.nkeys.Add(1)
			}
			return replaced, nil
		}
		// Overflow — over the record count, or an over-budget replacement:
		// the split needs the subtree stripe, which orders before bucket
		// latches; release and redo on the slow path.
		mu.Unlock()
		break
	}
	return e.putSlow(key, value, nil)
}

// putSlow runs a Put that may split. It locks the leaf's subtree stripe,
// then the bucket's write latch, re-verifies the mapping (retrying with
// fresh locks if a concurrent structural change moved the key), and runs
// the insert; an overflow prepares the split under those locks — the
// store-expensive part, parallel across subtrees — and publishes it under
// the flip lock. sp (nil from the plain path) charges the subtree stripe,
// latch and flip-lock waits and holds to their span stages.
func (e *ConcurrentFile) putSlow(key string, value []byte, sp *obs.Span) (bool, error) {
	e.world.RLock()
	defer e.world.RUnlock()
	for {
		leaf, path := e.arena.SearchPath(key)
		sp.Mark(obs.StageTrieSearch)
		if leaf.IsNil() {
			return false, fmt.Errorf("core: concurrent engine: key %q maps to a nil leaf (THCL files have none)", key)
		}
		addr := leaf.Addr()
		unlock := e.lockSubtrees(sp, e.stripes.KeyOf(path))
		mu := e.latches.Latch(addr)
		mu.Lock()
		sp.BeginHold(addr, obs.StageLatchWait)
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			sp.EndHold(obs.StageLatchHold)
			unlock()
			continue
		}
		replaced, err := e.putLatched(addr, key, value, sp)
		mu.Unlock()
		sp.EndHold(obs.StageLatchHold)
		unlock()
		return replaced, err
	}
}

// putLatched applies one insert-or-replace to bucket addr under its write
// latch (and the enclosing subtree stripe, both held by the caller). The
// store operation sequence — read, put, write, or on overflow read,
// alloc, write new, write old, flip — is exactly the sequential engine's,
// which is what keeps the single-threaded differential byte-identical.
func (e *ConcurrentFile) putLatched(addr int32, key string, value []byte, sp *obs.Span) (bool, error) {
	b, err := e.inner.st.Read(addr)
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return false, err
	}
	replaced := b.Put(key, value)
	if e.inner.fitsPage(b) {
		err := e.inner.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		if err != nil {
			return replaced, err
		}
		if !replaced {
			e.nkeys.Add(1)
		}
		return replaced, nil
	}
	// Overflow (count or byte gate): prepare the split off to the side —
	// the new bucket is allocated and written while unreachable, so only
	// this subtree's stripe and this bucket's latch are held — then publish
	// under the flip lock.
	rec, err := e.inner.prepareSplit(addr, b)
	sp.Mark(obs.StageSplit)
	if err != nil {
		return replaced, err
	}
	if err := e.publishSplit(rec, sp); err != nil {
		return replaced, err
	}
	if !replaced {
		e.nkeys.Add(1)
	}
	return replaced, nil
}

// publishSplit installs a prepared split under the flip lock: the old
// bucket's shrunk image is written and the trie expansion (whose arena
// replay ends in one atomic pointer store) makes the new bucket
// reachable. The caller holds the old bucket's write latch, so no reader
// of that bucket can observe the shrunk image before the flip; readers of
// other buckets are never blocked.
func (e *ConcurrentFile) publishSplit(rec *preparedSplit, sp *obs.Span) error {
	e.trieMu.Lock()
	sp.BeginHold(obs.StructLockAddr, obs.StageStructWait)
	base := e.syncDown()
	err := e.inner.finishSplit(rec)
	e.syncUp(base)
	e.trieMu.Unlock()
	sp.EndHold(obs.StageStructHold)
	return err
}

// Delete removes the record for key. The removal itself needs only the
// bucket's write latch; when it leaves the bucket under half full, the
// guarded maintenance pass (merge or borrow) runs afterwards under the
// affected subtrees' stripes.
func (e *ConcurrentFile) Delete(key string) error {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			return ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			continue
		}
		b, err := e.inner.st.Read(addr)
		if err != nil {
			mu.Unlock()
			return err
		}
		if !b.Delete(key) {
			mu.Unlock()
			return ErrNotFound
		}
		if err := e.inner.st.Write(addr, b); err != nil {
			mu.Unlock()
			return err
		}
		underflow := 2*b.Len() < e.inner.cfg.Capacity
		mu.Unlock()
		e.nkeys.Add(-1)
		if underflow {
			return e.maintain(key, nil)
		}
		return nil
	}
}

// maintain is the deletion maintenance the paper leaves open for
// /VID87/: guarded merging. It locates the key's bucket, probes its
// in-order neighbours under the flip lock, locks the affected subtrees'
// stripes (ascending, deduplicated — a merge can span up to three), and
// re-verifies everything under them; if a concurrent structural change
// moved the key or the neighbours in between, it retries with fresh
// stripes a bounded number of times and otherwise bails out (the next
// deletion that underflows will try again — single-threaded the retries
// never fire, so the oracle differential is unaffected). sp (nil from the
// plain path) charges the stripe waits and, via the per-pass mark, the
// decision work to the merge stage.
func (e *ConcurrentFile) maintain(key string, sp *obs.Span) error {
	e.world.RLock()
	defer e.world.RUnlock()
	for attempt := 0; attempt < 3; attempt++ {
		again, err := e.maintainOnce(key, sp)
		if err != nil || !again {
			return err
		}
	}
	return nil
}

// neighborPaths resolves the in-order neighbour buckets of addr and their
// subtree paths under the flip lock.
func (e *ConcurrentFile) neighborPaths(addr int32) (pred, succ int32, predPath, succPath []byte) {
	e.trieMu.RLock()
	defer e.trieMu.RUnlock()
	pred, succ = e.inner.trie.NeighborBuckets(addr)
	if pred >= 0 {
		predPath, _ = e.inner.trie.LeafPath(pred)
	}
	if succ >= 0 {
		succPath, _ = e.inner.trie.LeafPath(succ)
	}
	return pred, succ, predPath, succPath
}

// maintainOnce is one guarded-maintenance attempt; retry reports that the
// world changed under it and the caller should re-derive the stripe set.
func (e *ConcurrentFile) maintainOnce(key string, sp *obs.Span) (retry bool, err error) {
	leaf, path := e.arena.SearchPath(key)
	if leaf.IsNil() {
		return false, nil
	}
	addr := leaf.Addr()
	pred, succ, predPath, succPath := e.neighborPaths(addr)
	if pred < 0 && succ < 0 {
		return false, nil // the file's only bucket: no guarantee possible nor needed
	}
	ks := make([]int, 0, 3)
	ks = append(ks, e.stripes.KeyOf(path))
	if pred >= 0 {
		ks = append(ks, e.stripes.KeyOf(predPath))
	}
	if succ >= 0 {
		ks = append(ks, e.stripes.KeyOf(succPath))
	}
	unlock := e.lockSubtrees(sp, ks...)
	defer unlock()
	defer sp.Mark(obs.StageMerge)
	// Re-verify under the stripes: the mapping or the adjacency may have
	// moved while unlocked (the stripe set would then be stale, so the
	// caller retries rather than proceeding with the wrong locks).
	if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
		return true, nil
	}
	if p2, s2, _, _ := e.neighborPaths(addr); p2 != pred || s2 != succ {
		return true, nil
	}
	b, err := e.readLatched(addr)
	if err != nil {
		return false, err
	}
	if 2*b.Len() >= e.inner.cfg.Capacity {
		return false, nil // a concurrent insert resolved the underflow
	}
	var (
		nbAddr  int32 = -1
		nbLen   int
		nbIsSuc bool
	)
	if succ >= 0 {
		sb, err := e.readLatched(succ)
		if err != nil {
			return false, err
		}
		if e.inner.mergeFits(sb, b, nil) {
			return false, e.mergeLatched(addr, succ, true)
		}
		nbAddr, nbLen, nbIsSuc = succ, sb.Len(), true
	}
	if pred >= 0 {
		pb, err := e.readLatched(pred)
		if err != nil {
			return false, err
		}
		if e.inner.mergeFits(pb, b, b.Bound()) {
			return false, e.mergeLatched(addr, pred, false)
		}
		if nbAddr < 0 || pb.Len() > nbLen {
			nbAddr, nbLen, nbIsSuc = pred, pb.Len(), false
		}
	}
	if nbAddr < 0 {
		return false, nil
	}
	return false, e.borrowLatched(addr, nbAddr, nbIsSuc)
}

// readLatched reads bucket addr under its read latch — the probe used by
// maintenance decisions.
func (e *ConcurrentFile) readLatched(addr int32) (*bucket.Bucket, error) {
	mu := e.latches.Latch(addr)
	mu.RLock()
	b, err := e.inner.st.Read(addr)
	mu.RUnlock()
	return b, err
}

// adjacent re-verifies, under the flip lock, that nbAddr is still addr's
// in-order neighbour on the expected side. Both write latches are held by
// the caller, which pins the adjacency from here on: any operation that
// would change it (a split of either bucket, a merge involving either)
// must hold one of those latches.
func (e *ConcurrentFile) adjacent(addr, nbAddr int32, nbIsSucc bool) bool {
	e.trieMu.RLock()
	defer e.trieMu.RUnlock()
	pred, succ := e.inner.trie.NeighborBuckets(addr)
	if nbIsSucc {
		return succ == nbAddr
	}
	return pred == nbAddr
}

// mergeLatched performs a guaranteed-load merge of bucket addr into its
// neighbour under both write latches (ascending address order). The
// adjacency and the fit are re-verified under the latches; the merge
// itself — store writes and the trie repoint — runs under the flip lock,
// with the same publication order as the sequential engine's mergeInto:
// the grown neighbour is written before the trie repoints addr's leaves,
// and the freed slot is released last.
func (e *ConcurrentFile) mergeLatched(addr, nbAddr int32, nbIsSucc bool) error {
	unlock := e.latches.LockPair(addr, nbAddr)
	defer unlock()
	if !e.adjacent(addr, nbAddr, nbIsSucc) {
		return nil
	}
	b, err := e.inner.st.Read(addr)
	if err != nil {
		return err
	}
	nb, err := e.inner.st.Read(nbAddr)
	if err != nil {
		return err
	}
	// Re-verify under the latches: a fast-path insert may have refilled
	// either bucket since the unlatched probe. Single-threaded these
	// conditions never fire, so bailing cannot diverge from the oracle.
	var bound []byte
	if !nbIsSucc {
		bound = b.Bound()
	}
	if 2*b.Len() >= e.inner.cfg.Capacity || !e.inner.mergeFits(nb, b, bound) {
		return nil
	}
	e.trieMu.Lock()
	defer e.trieMu.Unlock()
	base := e.syncDown()
	err = e.inner.mergeInto(addr, b, nbAddr, nb, nbIsSucc)
	e.syncUp(base)
	return err
}

// borrowLatched rebalances an underflowing bucket by pulling keys from
// its neighbour, under both write latches in ascending address order,
// with the same re-verify discipline as mergeLatched and the boundary
// flip under the flip lock.
func (e *ConcurrentFile) borrowLatched(addr, nbAddr int32, nbIsSucc bool) error {
	unlock := e.latches.LockPair(addr, nbAddr)
	defer unlock()
	if !e.adjacent(addr, nbAddr, nbIsSucc) {
		return nil
	}
	b, err := e.inner.st.Read(addr)
	if err != nil {
		return err
	}
	nb, err := e.inner.st.Read(nbAddr)
	if err != nil {
		return err
	}
	var bound []byte
	if !nbIsSucc {
		bound = b.Bound()
	}
	if 2*b.Len() >= e.inner.cfg.Capacity || e.inner.mergeFits(nb, b, bound) {
		return nil // resolved, or a merge now fits: bail (next underflow retries)
	}
	e.trieMu.Lock()
	defer e.trieMu.Unlock()
	base := e.syncDown()
	err = e.inner.borrow(addr, b, nbAddr, nb, nbIsSucc)
	e.syncUp(base)
	return err
}

// Range scans [from, to] in key order. It holds the world lock shared
// (excluding only whole-file operations) and the flip lock shared — so
// trie flips wait, but the store phase of concurrent splits, and every
// fast-path read and write, proceed unhindered; bucket reads go through
// the store's view path, whose snapshots are immutable. Excluding the
// flips is what makes the scan sound: the shrunk image of a splitting
// bucket reaches the store only under the exclusive flip lock, together
// with the expansion that makes the new bucket reachable, so the walk
// sees every record exactly once.
func (e *ConcurrentFile) Range(from, to string, fn func(key string, value []byte) bool) error {
	e.world.RLock()
	defer e.world.RUnlock()
	e.trieMu.RLock()
	defer e.trieMu.RUnlock()
	return e.inner.Range(from, to, fn)
}

// cgroup is one batch work unit: a bucket and the batch indices mapping
// to it.
type cgroup struct {
	addr int32
	idxs []int
}

// partitionBatch groups pending batch indices by the bucket the arena
// currently maps their key to, ascending by address. Indices whose key
// maps to a nil leaf land in nilIdx.
func (e *ConcurrentFile) partitionBatch(keys []string, pending []int) (groups []cgroup, nilIdx []int) {
	byAddr := make(map[int32][]int, len(pending))
	for _, i := range pending {
		p := e.arena.Search(keys[i])
		if p.IsNil() {
			nilIdx = append(nilIdx, i)
			continue
		}
		byAddr[p.Addr()] = append(byAddr[p.Addr()], i)
	}
	groups = make([]cgroup, 0, len(byAddr))
	for addr, idxs := range byAddr {
		groups = append(groups, cgroup{addr: addr, idxs: idxs})
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].addr < groups[b].addr })
	return groups, nilIdx
}

// GetBatch looks up many keys in one pass: keys partition by bucket, each
// bucket latch is taken once per round, and groups fan out over a worker
// pool. Keys that move between partitioning and latching retry next
// round — the batch form of the single-key re-validation.
func (e *ConcurrentFile) GetBatch(keys []string) (vals [][]byte, errs []error) {
	return e.getBatch(keys, nil)
}

// getBatch is the GetBatch body, span-parameterized. The fan-out workers
// run in parallel and cannot share the span's sequential mark chain, so
// they record their latch acquisitions through LatchTimers (contention
// table only); the span gets coarse wave marks — partitioning to
// trie-search, each latched wave's wall time to latch-hold.
func (e *ConcurrentFile) getBatch(keys []string, sp *obs.Span) (vals [][]byte, errs []error) {
	o := sp.Observer()
	vals = make([][]byte, len(keys))
	errs = make([]error, len(keys))
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := e.inner.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	for len(pending) > 0 {
		groups, nilIdx := e.partitionBatch(keys, pending)
		sp.Mark(obs.StageTrieSearch)
		for _, i := range nilIdx {
			errs[i] = ErrNotFound
		}
		var retryMu sync.Mutex
		var retry []int
		concurrent.FanOut(len(groups), workers, func(gi int) {
			g := groups[gi]
			lt := o.StartLatch(g.addr)
			mu := e.latches.Latch(g.addr)
			mu.RLock()
			lt.Acquired()
			var missed []int
			var b *bucket.Bucket
			var rerr error
			loaded := false
			for _, i := range g.idxs {
				if p := e.arena.Search(keys[i]); p.IsNil() || p.Addr() != g.addr {
					missed = append(missed, i)
					continue
				}
				if !loaded {
					b, rerr = e.inner.view(g.addr)
					loaded = true
				}
				if rerr != nil {
					errs[i] = rerr
					continue
				}
				if v, ok := b.Get(keys[i]); ok {
					vals[i] = v
				} else {
					errs[i] = ErrNotFound
				}
			}
			mu.RUnlock()
			lt.Release()
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
		})
		sp.Mark(obs.StageLatchHold)
		pending = retry
	}
	return vals, errs
}

// PutBatch inserts or replaces many records in one pass. When one batch
// names a key several times only the last occurrence is applied, so the
// final state matches the sequential loop. The fast wave applies every
// replacement and fitting insert with one latch and one store write per
// bucket; overflowing inserts collect into a slow wave that locks the
// round's subtree stripes, prepares splits of distinct buckets in
// parallel (each under its bucket latch, through the shared prepareSplit)
// and then publishes the trie flips sequentially under the flip lock —
// batch splits scale across buckets instead of serializing as plain Puts.
func (e *ConcurrentFile) PutBatch(keys []string, values [][]byte) (errs []error) {
	return e.putBatch(keys, values, nil)
}

// putBatch is the PutBatch body, span-parameterized with the same coarse
// attribution as getBatch; the slow wave's rounds are charged to the
// split stage.
func (e *ConcurrentFile) putBatch(keys []string, values [][]byte, sp *obs.Span) (errs []error) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("core: PutBatch with %d keys but %d values", len(keys), len(values)))
	}
	o := sp.Observer()
	errs = make([]error, len(keys))
	last := make(map[string]int, len(keys))
	for i, k := range keys {
		last[k] = i
	}
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := e.inner.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		if last[k] != i {
			continue // superseded within the batch
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	var slow []int
	for len(pending) > 0 {
		groups, nilIdx := e.partitionBatch(keys, pending)
		sp.Mark(obs.StageTrieSearch)
		slow = append(slow, nilIdx...)
		var retryMu sync.Mutex
		var retry []int
		var slowMu sync.Mutex
		concurrent.FanOut(len(groups), workers, func(gi int) {
			g := groups[gi]
			lt := o.StartLatch(g.addr)
			mu := e.latches.Latch(g.addr)
			mu.Lock()
			lt.Acquired()
			var missed, over, applied []int
			var added int64
			var b *bucket.Bucket
			var rerr error
			loaded := false
			for _, i := range g.idxs {
				if p := e.arena.Search(keys[i]); p.IsNil() || p.Addr() != g.addr {
					missed = append(missed, i)
					continue
				}
				if !loaded {
					b, rerr = e.inner.st.Read(g.addr)
					loaded = true
				}
				if rerr != nil {
					errs[i] = rerr
					continue
				}
				old, exists := b.Get(keys[i])
				b.Put(keys[i], values[i])
				if e.inner.fitsPage(b) {
					if !exists {
						added++
					}
					applied = append(applied, i)
					continue
				}
				// Over the count or byte gate: the fast wave cannot split,
				// so revert the optimistic put exactly (Put stores value
				// slices by reference, so the old slice is intact) and send
				// the record to the slow wave.
				if exists {
					b.Put(keys[i], old)
				} else {
					b.Delete(keys[i])
				}
				over = append(over, i)
			}
			if len(applied) > 0 {
				if err := e.inner.st.Write(g.addr, b); err != nil {
					for _, i := range applied {
						errs[i] = err
					}
					added = 0
				}
			}
			mu.Unlock()
			lt.Release()
			if added > 0 {
				e.nkeys.Add(added)
			}
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
			if len(over) > 0 {
				slowMu.Lock()
				slow = append(slow, over...)
				slowMu.Unlock()
			}
		})
		sp.Mark(obs.StageLatchHold)
		pending = retry
	}
	if len(slow) > 0 {
		e.putBatchSlow(keys, values, slow, errs, workers, sp)
	}
	return errs
}

// putBatchSlow resolves the batch's overflowing inserts: each round
// partitions the remaining keys by the authoritative trie (under the flip
// lock, collecting each bucket's subtree path), locks the round's stripe
// set in one ascending acquisition, fans the groups out to workers that
// fill their bucket and prepare at most one split each (store work only,
// bucket latch held, mapping re-validated under it), then — after the
// barrier — publishes the trie flips sequentially under the flip lock and
// releases the held latches and stripes. Keys left over by a split, or
// moved by a concurrent structural change, re-partition in the next
// round. sp (nil from the plain path) charges the whole slow wave to the
// split stage; workers record their latches, and the round its stripes,
// through LatchTimers.
func (e *ConcurrentFile) putBatchSlow(keys []string, values [][]byte, slow []int, errs []error, workers int, sp *obs.Span) {
	o := sp.Observer()
	e.world.RLock()
	defer e.world.RUnlock()
	defer sp.Mark(obs.StageSplit)
	pending := slow
	for len(pending) > 0 {
		byAddr := make(map[int32][]int, len(pending))
		stripeOf := make(map[int32]int, len(pending))
		var addrs []int32
		e.trieMu.RLock()
		for _, i := range pending {
			res := e.inner.trie.Search(keys[i])
			if res.Leaf.IsNil() {
				errs[i] = fmt.Errorf("core: concurrent engine: key %q maps to a nil leaf (THCL files have none)", keys[i])
				continue
			}
			a := res.Leaf.Addr()
			if _, ok := byAddr[a]; !ok {
				addrs = append(addrs, a)
				stripeOf[a] = e.stripes.KeyOf(res.Path)
			}
			byAddr[a] = append(byAddr[a], i)
		}
		e.trieMu.RUnlock()
		sort.Slice(addrs, func(x, y int) bool { return addrs[x] < addrs[y] })
		ks := make([]int, 0, len(addrs))
		for _, a := range addrs {
			ks = append(ks, stripeOf[a])
		}
		unlockStripes := e.acquireSubtreesTimed(o, ks)
		recs := make([]*preparedSplit, len(addrs))
		appliedBy := make([][]int, len(addrs))
		addedBy := make([]int64, len(addrs))
		unlocks := make([]func(), len(addrs))
		leftovers := make([][]int, len(addrs))
		movedBy := make([][]int, len(addrs))
		concurrent.FanOut(len(addrs), workers, func(gi int) {
			addr := addrs[gi]
			lt := o.StartLatch(addr)
			mu := e.latches.Latch(addr)
			mu.Lock()
			lt.Acquired()
			// Re-validate under the latch: the partition ran before the
			// stripes were held, so a concurrent split may have moved
			// keys off this bucket in between; they retry next round.
			idxs := make([]int, 0, len(byAddr[addr]))
			var moved []int
			for _, i := range byAddr[addr] {
				if p := e.arena.Search(keys[i]); p.IsNil() || p.Addr() != addr {
					moved = append(moved, i)
					continue
				}
				idxs = append(idxs, i)
			}
			movedBy[gi] = moved
			if len(idxs) == 0 {
				mu.Unlock()
				lt.Release()
				return
			}
			rec, applied, leftover, n := e.applySlowGroup(addr, keys, values, idxs, errs)
			recs[gi], appliedBy[gi], leftovers[gi], addedBy[gi] = rec, applied, leftover, n
			if rec != nil {
				// Keep the latch until the trie flip publishes the split:
				// every key this bucket covers still routes here, and a
				// reader must not see the shrunk image before the flip.
				unlocks[gi] = func() { mu.Unlock(); lt.Release() }
				return
			}
			mu.Unlock()
			lt.Release()
		})
		var added int64
		for gi := range addrs {
			rec := recs[gi]
			if rec == nil {
				added += addedBy[gi]
				continue
			}
			if err := e.publishSplit(rec, sp); err != nil {
				for _, i := range appliedBy[gi] {
					errs[i] = err
				}
			} else {
				added += addedBy[gi]
			}
			unlocks[gi]()
		}
		unlockStripes()
		e.nkeys.Add(added)
		pending = pending[:0]
		for _, mv := range movedBy {
			pending = append(pending, mv...)
		}
		for _, lo := range leftovers {
			pending = append(pending, lo...)
		}
	}
}

// acquireSubtreesTimed locks the given stripe set (deduplicated,
// ascending) recording each stripe's wait and hold in the contention
// table through LatchTimers — the batch paths' parallel-safe counterpart
// of lockSubtrees.
func (e *ConcurrentFile) acquireSubtreesTimed(o *obs.Observer, ks []int) func() {
	ord := concurrent.SortKeys(ks)
	lts := make([]obs.LatchTimer, len(ord))
	for i, k := range ord {
		lts[i] = o.StartLatch(obs.StripeAddr(k))
		e.stripes.Lock(k)
		lts[i].Acquired()
	}
	return func() {
		for i := len(ord) - 1; i >= 0; i-- {
			e.stripes.Unlock(ord[i])
			lts[i].Release()
		}
	}
}

// applySlowGroup fills bucket addr with its group's records under the
// bucket latch (held by the caller): replacements and fitting inserts
// first; the insert that overflows goes in as the Capacity+1'th record
// and the split's store phase runs immediately. Indices not reached
// before the split are returned as leftover for the next round. The
// returned preparedSplit is non-nil when a flip is owed; applied names
// the indices whose records ride on it (for error attribution if the
// publish fails).
func (e *ConcurrentFile) applySlowGroup(addr int32, keys []string, values [][]byte, idxs []int, errs []error) (rec *preparedSplit, applied []int, leftover []int, added int64) {
	b, err := e.inner.st.Read(addr)
	if err != nil {
		for _, i := range idxs {
			errs[i] = err
		}
		return nil, nil, nil, 0
	}
	overflowed := false
	for n, i := range idxs {
		_, exists := b.Get(keys[i])
		b.Put(keys[i], values[i])
		if !exists {
			added++
		}
		applied = append(applied, i)
		if e.inner.fitsPage(b) {
			continue
		}
		// The overflowing record (over the count or the byte gate) stays in
		// as the record that triggers the split; the rest retry next round.
		leftover = append(leftover, idxs[n+1:]...)
		overflowed = true
		break
	}
	if overflowed {
		rec, err = e.inner.prepareSplit(addr, b)
		if err != nil {
			for _, i := range applied {
				errs[i] = err
			}
			return nil, nil, leftover, 0
		}
		return rec, applied, leftover, added
	}
	if len(applied) > 0 {
		if err := e.inner.st.Write(addr, b); err != nil {
			for _, i := range applied {
				errs[i] = err
			}
			return nil, nil, leftover, 0
		}
	}
	return nil, applied, leftover, added
}

// SaveMeta serializes the file's metadata. The caller must quiesce
// writers (the public layer holds its exclusive lock).
func (e *ConcurrentFile) SaveMeta() []byte {
	e.world.Lock()
	defer e.world.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.SaveMeta()
}

// Stats returns the file's statistics. Counts read mid-traffic are
// instantaneous, not a consistent snapshot.
func (e *ConcurrentFile) Stats() Stats {
	e.world.Lock()
	defer e.world.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.Stats()
}

// ResetCounters zeroes the split/redistribution and store counters.
func (e *ConcurrentFile) ResetCounters() {
	e.world.Lock()
	defer e.world.Unlock()
	e.inner.ResetCounters()
}

// CheckInvariants verifies the file's structural invariants. The caller
// must quiesce concurrent operations (the public layer holds its
// exclusive lock); the world lock alone does not stop fast-path bucket
// writes.
func (e *ConcurrentFile) CheckInvariants() error {
	e.world.Lock()
	defer e.world.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.CheckInvariants()
}

// Scrub quarantines unreadable buckets and rebuilds the trie, returning
// a fresh concurrent engine over the repaired file. The caller must
// quiesce concurrent operations.
func (e *ConcurrentFile) Scrub(quarantinePath string) (*ConcurrentFile, *ScrubReport, error) {
	e.world.Lock()
	defer e.world.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	e.inner.trie.SetTracer(nil)
	nf, rep, err := e.inner.Scrub(quarantinePath)
	if err != nil {
		e.inner.trie.SetTracer(e.mirror) // the old file stays live
		return nil, nil, err
	}
	ne, err := NewConcurrent(nf)
	if err != nil {
		return nil, nil, err
	}
	return ne, rep, nil
}
