package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"triehash/internal/bucket"
	"triehash/internal/concurrent"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// ConcurrentFile is the store-backed /VID87/ engine: a File whose readers
// never take a global lock. The paper's conclusion observes that the
// append-only cell table makes trie search safe against a concurrent
// split, and that a writer needs "only the leaf A and the variable N";
// this type carries that scheme into the real engine, over any
// store.Store (file store, buffer pools, fault and crash wrappers).
//
// The pieces:
//
//   - an atomic cell arena (concurrent.Arena) mirrors the authoritative
//     trie; point operations search it lock-free. The mirror is kept in
//     sync by the trie's Tracer hooks, so a chain of split cells is fully
//     wired before the single pointer flip that publishes it.
//   - one RW latch per bucket (concurrent.Latches). An operation latches
//     exactly one bucket and re-runs the search under the latch: if the
//     key still maps there, the latch orders it against any split or
//     merge of that bucket (those hold the write latch); if not, it
//     retries. Guarded merging is the sole two-latch site and locks in
//     ascending address order.
//   - a structural lock serializes every trie mutation: splits, merges,
//     borrows. Fill-flip-shrink order is preserved — the new bucket is
//     written to the store, then the trie flips, then (already done
//     before the flip in the store image) the old bucket's shrink is
//     visible — and the old bucket's write latch is held across all of
//     it, so no reader observes the intermediate state.
//
// The store mutation order of every structural operation is exactly the
// sequential engine's (prepareSplit/commitSplit, mergeInto, borrow are
// shared code), so the crash-recovery reasoning — and the recovery chain
// itself — carries over unchanged.
//
// ConcurrentFile supports the configuration the scheme is proved for:
// THCL with guaranteed merging, no redistribution, no collapse-on-merge,
// no tombstones (the trie stays append-only; NewConcurrent enforces
// this). The sequential File remains the differential oracle: a
// single-threaded workload drives both to byte-identical files.
type ConcurrentFile struct {
	inner   *File
	arena   *concurrent.Arena
	latches *concurrent.Latches
	mirror  *concurrent.Mirror

	// structural serializes trie mutations (write side) against
	// whole-trie readers (Range, batch partitioning under latches is
	// lock-free instead). Lock order: public file lock > structural >
	// bucket latch > store shard latch; the lockorder analyzer enforces
	// that structural is never taken while a bucket latch is held.
	structural sync.RWMutex

	// nkeys is the live record count, maintained atomically by the
	// latch-only fast paths; inner.nkeys is synced from it (by delta)
	// whenever inner code that reads or writes it runs under structural.
	nkeys atomic.Int64
}

// NewConcurrent wraps f — fresh or reopened, empty or populated — in the
// concurrent engine. The configuration must be THCL with guaranteed
// merging and no redistribution, collapse or tombstoning: those options
// shrink or reorder the cell table, which would invalidate concurrent
// readers' positions (the paper's Section 2.4 reasoning).
func NewConcurrent(f *File) (*ConcurrentFile, error) {
	cfg := f.cfg
	switch {
	case cfg.Mode != trie.ModeTHCL:
		return nil, fmt.Errorf("core: concurrent engine requires THCL (basic-method nil leaves need trie writes on the read path)")
	case cfg.Redistribution != RedistNone:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with redistribution on split")
	case cfg.Merge != MergeGuaranteed:
		return nil, fmt.Errorf("core: concurrent engine requires the guaranteed-load merge policy, have %v", cfg.Merge)
	case cfg.CollapseOnMerge:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with CollapseOnMerge (cell removal invalidates concurrent readers)")
	case cfg.TombstoneMerges:
		return nil, fmt.Errorf("core: concurrent engine is incompatible with TombstoneMerges (Vacuum compacts the cell table)")
	}
	n := f.st.MaxAddr()
	if n < 1 {
		n = 1
	}
	e := &ConcurrentFile{
		inner:   f,
		arena:   concurrent.NewArena(f.trie),
		latches: concurrent.NewLatches(n),
	}
	e.mirror = &concurrent.Mirror{Arena: e.arena, Latches: e.latches}
	f.trie.SetTracer(e.mirror)
	e.nkeys.Store(int64(f.nkeys))
	return e, nil
}

// Inner returns the wrapped sequential File. The caller must hold no
// latch and guarantee quiescence (no concurrent operations) while using
// it directly.
func (e *ConcurrentFile) Inner() *File { return e.inner }

// Config returns the file's configuration.
func (e *ConcurrentFile) Config() Config { return e.inner.cfg }

// Store returns the bucket store.
func (e *ConcurrentFile) Store() store.Store { return e.inner.st }

// Len returns the number of records.
func (e *ConcurrentFile) Len() int { return int(e.nkeys.Load()) }

// SetObsHook attaches the observability hook structural events go to.
func (e *ConcurrentFile) SetObsHook(h *obs.Hook) { e.inner.SetObsHook(h) }

// syncDown pushes the atomic record count into inner.nkeys. Callers hold
// the structural lock and call syncUp with the returned base after
// running inner code, so fast-path increments that landed in between are
// not clobbered.
func (e *ConcurrentFile) syncDown() int64 {
	before := e.nkeys.Load()
	e.inner.nkeys = int(before)
	return before
}

// syncUp folds inner.nkeys mutations (relative to the syncDown base)
// back into the atomic count.
func (e *ConcurrentFile) syncUp(base int64) {
	e.nkeys.Add(int64(e.inner.nkeys) - base)
}

// Get returns the value stored under key. The trie search is lock-free
// over the arena; the bucket read happens under the bucket's read latch,
// with the search re-run there to confirm the key still maps to the
// latched bucket (a split or merge may have moved it in between).
func (e *ConcurrentFile) Get(key string) ([]byte, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			return nil, ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.RLock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.RUnlock()
			continue
		}
		b, err := e.inner.view(addr)
		if err != nil {
			mu.RUnlock()
			return nil, err
		}
		v, ok := b.Get(key)
		mu.RUnlock()
		if !ok {
			return nil, ErrNotFound
		}
		return v, nil
	}
}

// Put inserts or replaces the record for key. Replacements and inserts
// that fit the bucket touch only that bucket's write latch — the paper's
// "only the leaf A" writer. An overflow releases the latch and resolves
// the split under the structural lock.
func (e *ConcurrentFile) Put(key string, value []byte) (bool, error) {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			break // no bucket to latch; resolve under structural
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			continue
		}
		b, err := e.inner.st.Read(addr)
		if err != nil {
			mu.Unlock()
			return false, err
		}
		replaced := b.Put(key, value)
		if replaced {
			err := e.inner.st.Write(addr, b)
			mu.Unlock()
			return true, err
		}
		if b.Len() <= e.inner.cfg.Capacity {
			err := e.inner.st.Write(addr, b)
			mu.Unlock()
			if err != nil {
				return false, err
			}
			e.nkeys.Add(1)
			return false, nil
		}
		// Overflow: the split needs the structural lock, which orders
		// before bucket latches; release and redo under structural.
		mu.Unlock()
		break
	}
	return e.putSlow(key, value, nil)
}

// putSlow runs a Put under the structural lock: the sequential engine's
// Put, with the target bucket's write latch held across the whole
// fill-flip-shrink sequence so concurrent readers of that bucket wait
// out the split instead of observing its intermediate state. sp (nil
// from the plain path) charges the lock waits and holds to the span's
// structural and latch stages.
func (e *ConcurrentFile) putSlow(key string, value []byte, sp *obs.Span) (bool, error) {
	e.structural.Lock()
	sp.BeginHold(obs.StructLockAddr, obs.StageStructWait)
	defer e.structural.Unlock()
	defer sp.EndHold(obs.StageStructHold)
	leaf := e.inner.trie.SearchAddr(key)
	if leaf.IsNil() {
		return false, fmt.Errorf("core: concurrent engine: key %q maps to a nil leaf (THCL files have none)", key)
	}
	mu := e.latches.Latch(leaf.Addr())
	mu.Lock()
	sp.BeginHold(leaf.Addr(), obs.StageLatchWait)
	defer mu.Unlock()
	defer sp.EndHold(obs.StageLatchHold)
	base := e.syncDown()
	replaced, err := e.inner.PutSpan(key, value, sp)
	e.syncUp(base)
	return replaced, err
}

// Delete removes the record for key. The removal itself needs only the
// bucket's write latch; when it leaves the bucket under half full, the
// guarded maintenance pass (merge or borrow) runs afterwards under the
// structural lock.
func (e *ConcurrentFile) Delete(key string) error {
	if err := e.inner.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	for {
		leaf := e.arena.Search(key)
		if leaf.IsNil() {
			return ErrNotFound
		}
		addr := leaf.Addr()
		mu := e.latches.Latch(addr)
		mu.Lock()
		if cur := e.arena.Search(key); cur.IsNil() || cur.Addr() != addr {
			mu.Unlock()
			continue
		}
		b, err := e.inner.st.Read(addr)
		if err != nil {
			mu.Unlock()
			return err
		}
		if !b.Delete(key) {
			mu.Unlock()
			return ErrNotFound
		}
		if err := e.inner.st.Write(addr, b); err != nil {
			mu.Unlock()
			return err
		}
		underflow := 2*b.Len() < e.inner.cfg.Capacity
		mu.Unlock()
		e.nkeys.Add(-1)
		if underflow {
			return e.maintain(key, nil)
		}
		return nil
	}
}

// maintain is the deletion maintenance the paper leaves open for
// /VID87/: guarded merging. Under the structural lock (so the trie is
// stable) it re-locates the key's bucket, re-checks the underflow, probes
// the in-order neighbours, and applies the same decision procedure as the
// sequential guaranteedPolicy — full merge into whichever neighbour fits
// (successor preferred), else borrow from the fuller neighbour. The
// action itself holds both bucket latches, taken in ascending address
// order, and re-reads both buckets under them; if a concurrent fast-path
// write invalidated the decision in between, the pass bails out (the next
// deletion that underflows will try again). sp (nil from the plain path)
// charges the structural wait and, via the last-registered defer (which
// runs first), the whole maintenance pass to the merge stage.
func (e *ConcurrentFile) maintain(key string, sp *obs.Span) error {
	e.structural.Lock()
	sp.BeginHold(obs.StructLockAddr, obs.StageStructWait)
	defer e.structural.Unlock()
	defer sp.EndHold(obs.StageStructHold)
	defer sp.Mark(obs.StageMerge)
	e.inner.nkeys = int(e.nkeys.Load())
	leaf := e.inner.trie.SearchAddr(key)
	if leaf.IsNil() {
		return nil
	}
	addr := leaf.Addr()
	b, err := e.readLatched(addr)
	if err != nil {
		return err
	}
	if 2*b.Len() >= e.inner.cfg.Capacity {
		return nil // a concurrent insert resolved the underflow
	}
	pred, succ := e.inner.trie.NeighborBuckets(addr)
	if pred < 0 && succ < 0 {
		return nil // the file's only bucket: no guarantee possible nor needed
	}
	var (
		nbAddr  int32 = -1
		nbLen   int
		nbIsSuc bool
	)
	if succ >= 0 {
		sb, err := e.readLatched(succ)
		if err != nil {
			return err
		}
		if b.Len()+sb.Len() <= e.inner.cfg.Capacity {
			return e.mergeLatched(addr, succ, true)
		}
		nbAddr, nbLen, nbIsSuc = succ, sb.Len(), true
	}
	if pred >= 0 {
		pb, err := e.readLatched(pred)
		if err != nil {
			return err
		}
		if b.Len()+pb.Len() <= e.inner.cfg.Capacity {
			return e.mergeLatched(addr, pred, false)
		}
		if nbAddr < 0 || pb.Len() > nbLen {
			nbAddr, nbLen, nbIsSuc = pred, pb.Len(), false
		}
	}
	if nbAddr < 0 {
		return nil
	}
	return e.borrowLatched(addr, nbAddr, nbIsSuc)
}

// readLatched reads bucket addr under its read latch — the probe used by
// maintenance decisions.
func (e *ConcurrentFile) readLatched(addr int32) (*bucket.Bucket, error) {
	mu := e.latches.Latch(addr)
	mu.RLock()
	b, err := e.inner.st.Read(addr)
	mu.RUnlock()
	return b, err
}

// mergeLatched performs a guaranteed-load merge of bucket addr into its
// neighbour under both write latches (ascending address order). Both
// buckets are re-read under the latches and the fit re-verified; the
// merge publication order is the sequential engine's mergeInto: the
// grown neighbour is written to the store before the trie repoints
// addr's leaves, and the freed slot is released last.
func (e *ConcurrentFile) mergeLatched(addr, nbAddr int32, nbIsSucc bool) error {
	unlock := e.latches.LockPair(addr, nbAddr)
	defer unlock()
	b, err := e.inner.st.Read(addr)
	if err != nil {
		return err
	}
	nb, err := e.inner.st.Read(nbAddr)
	if err != nil {
		return err
	}
	// Re-verify under the latches: a fast-path insert may have refilled
	// either bucket since the unlatched probe. Single-threaded these
	// conditions never fire, so bailing cannot diverge from the oracle.
	if 2*b.Len() >= e.inner.cfg.Capacity || b.Len()+nb.Len() > e.inner.cfg.Capacity {
		return nil
	}
	return e.inner.mergeInto(addr, b, nbAddr, nb, nbIsSucc)
}

// borrowLatched rebalances an underflowing bucket by pulling keys from
// its neighbour, under both write latches in ascending address order,
// with the same re-read and re-verify discipline as mergeLatched.
func (e *ConcurrentFile) borrowLatched(addr, nbAddr int32, nbIsSucc bool) error {
	unlock := e.latches.LockPair(addr, nbAddr)
	defer unlock()
	b, err := e.inner.st.Read(addr)
	if err != nil {
		return err
	}
	nb, err := e.inner.st.Read(nbAddr)
	if err != nil {
		return err
	}
	if 2*b.Len() >= e.inner.cfg.Capacity || b.Len()+nb.Len() <= e.inner.cfg.Capacity {
		return nil // resolved, or a merge now fits: bail (next underflow retries)
	}
	return e.inner.borrow(addr, b, nbAddr, nb, nbIsSucc)
}

// Range scans [from, to] in key order. It holds the structural read lock
// (a stable trie) and visits each qualifying bucket once; bucket reads go
// through the store's view path, whose snapshots are immutable, so
// concurrent fast-path writes on other buckets proceed unhindered.
func (e *ConcurrentFile) Range(from, to string, fn func(key string, value []byte) bool) error {
	e.structural.RLock()
	defer e.structural.RUnlock()
	return e.inner.Range(from, to, fn)
}

// cgroup is one batch work unit: a bucket and the batch indices mapping
// to it.
type cgroup struct {
	addr int32
	idxs []int
}

// partitionBatch groups pending batch indices by the bucket the arena
// currently maps their key to, ascending by address. Indices whose key
// maps to a nil leaf land in nilIdx.
func (e *ConcurrentFile) partitionBatch(keys []string, pending []int) (groups []cgroup, nilIdx []int) {
	byAddr := make(map[int32][]int, len(pending))
	for _, i := range pending {
		p := e.arena.Search(keys[i])
		if p.IsNil() {
			nilIdx = append(nilIdx, i)
			continue
		}
		byAddr[p.Addr()] = append(byAddr[p.Addr()], i)
	}
	groups = make([]cgroup, 0, len(byAddr))
	for addr, idxs := range byAddr {
		groups = append(groups, cgroup{addr: addr, idxs: idxs})
	}
	sort.Slice(groups, func(a, b int) bool { return groups[a].addr < groups[b].addr })
	return groups, nilIdx
}

// GetBatch looks up many keys in one pass: keys partition by bucket, each
// bucket latch is taken once per round, and groups fan out over a worker
// pool. Keys that move between partitioning and latching retry next
// round — the batch form of the single-key re-validation.
func (e *ConcurrentFile) GetBatch(keys []string) (vals [][]byte, errs []error) {
	return e.getBatch(keys, nil)
}

// getBatch is the GetBatch body, span-parameterized. The fan-out workers
// run in parallel and cannot share the span's sequential mark chain, so
// they record their latch acquisitions through LatchTimers (contention
// table only); the span gets coarse wave marks — partitioning to
// trie-search, each latched wave's wall time to latch-hold.
func (e *ConcurrentFile) getBatch(keys []string, sp *obs.Span) (vals [][]byte, errs []error) {
	o := sp.Observer()
	vals = make([][]byte, len(keys))
	errs = make([]error, len(keys))
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := e.inner.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	for len(pending) > 0 {
		groups, nilIdx := e.partitionBatch(keys, pending)
		sp.Mark(obs.StageTrieSearch)
		for _, i := range nilIdx {
			errs[i] = ErrNotFound
		}
		var retryMu sync.Mutex
		var retry []int
		concurrent.FanOut(len(groups), workers, func(gi int) {
			g := groups[gi]
			lt := o.StartLatch(g.addr)
			mu := e.latches.Latch(g.addr)
			mu.RLock()
			lt.Acquired()
			var missed []int
			var b *bucket.Bucket
			var rerr error
			loaded := false
			for _, i := range g.idxs {
				if p := e.arena.Search(keys[i]); p.IsNil() || p.Addr() != g.addr {
					missed = append(missed, i)
					continue
				}
				if !loaded {
					b, rerr = e.inner.view(g.addr)
					loaded = true
				}
				if rerr != nil {
					errs[i] = rerr
					continue
				}
				if v, ok := b.Get(keys[i]); ok {
					vals[i] = v
				} else {
					errs[i] = ErrNotFound
				}
			}
			mu.RUnlock()
			lt.Release()
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
		})
		sp.Mark(obs.StageLatchHold)
		pending = retry
	}
	return vals, errs
}

// PutBatch inserts or replaces many records in one pass. When one batch
// names a key several times only the last occurrence is applied, so the
// final state matches the sequential loop. The fast wave applies every
// replacement and fitting insert with one latch and one store write per
// bucket; overflowing inserts collect into a slow wave that, under one
// acquisition of the structural lock, prepares splits of distinct
// buckets in parallel (each under its bucket latch, through the shared
// prepareSplit) and then commits the trie flips sequentially — batch
// splits scale across buckets instead of serializing as plain Puts.
func (e *ConcurrentFile) PutBatch(keys []string, values [][]byte) (errs []error) {
	return e.putBatch(keys, values, nil)
}

// putBatch is the PutBatch body, span-parameterized with the same coarse
// attribution as getBatch; the slow wave's rounds are charged to the
// split stage.
func (e *ConcurrentFile) putBatch(keys []string, values [][]byte, sp *obs.Span) (errs []error) {
	if len(keys) != len(values) {
		panic(fmt.Sprintf("core: PutBatch with %d keys but %d values", len(keys), len(values)))
	}
	o := sp.Observer()
	errs = make([]error, len(keys))
	last := make(map[string]int, len(keys))
	for i, k := range keys {
		last[k] = i
	}
	pending := make([]int, 0, len(keys))
	for i, k := range keys {
		if err := e.inner.cfg.Alphabet.Validate(k); err != nil {
			errs[i] = err
			continue
		}
		if last[k] != i {
			continue // superseded within the batch
		}
		pending = append(pending, i)
	}
	workers := runtime.GOMAXPROCS(0)
	var slow []int
	for len(pending) > 0 {
		groups, nilIdx := e.partitionBatch(keys, pending)
		sp.Mark(obs.StageTrieSearch)
		slow = append(slow, nilIdx...)
		var retryMu sync.Mutex
		var retry []int
		var slowMu sync.Mutex
		concurrent.FanOut(len(groups), workers, func(gi int) {
			g := groups[gi]
			lt := o.StartLatch(g.addr)
			mu := e.latches.Latch(g.addr)
			mu.Lock()
			lt.Acquired()
			var missed, over, applied []int
			var added int64
			var b *bucket.Bucket
			var rerr error
			loaded := false
			for _, i := range g.idxs {
				if p := e.arena.Search(keys[i]); p.IsNil() || p.Addr() != g.addr {
					missed = append(missed, i)
					continue
				}
				if !loaded {
					b, rerr = e.inner.st.Read(g.addr)
					loaded = true
				}
				if rerr != nil {
					errs[i] = rerr
					continue
				}
				if _, exists := b.Get(keys[i]); exists {
					b.Put(keys[i], values[i])
					applied = append(applied, i)
					continue
				}
				if b.Len() < e.inner.cfg.Capacity {
					b.Put(keys[i], values[i])
					added++
					applied = append(applied, i)
					continue
				}
				over = append(over, i)
			}
			if len(applied) > 0 {
				if err := e.inner.st.Write(g.addr, b); err != nil {
					for _, i := range applied {
						errs[i] = err
					}
					added = 0
				}
			}
			mu.Unlock()
			lt.Release()
			if added > 0 {
				e.nkeys.Add(added)
			}
			if len(missed) > 0 {
				retryMu.Lock()
				retry = append(retry, missed...)
				retryMu.Unlock()
			}
			if len(over) > 0 {
				slowMu.Lock()
				slow = append(slow, over...)
				slowMu.Unlock()
			}
		})
		sp.Mark(obs.StageLatchHold)
		pending = retry
	}
	if len(slow) > 0 {
		e.putBatchSlow(keys, values, slow, errs, workers, sp)
	}
	return errs
}

// putBatchSlow resolves the batch's overflowing inserts under one
// structural lock: each round partitions the remaining keys by the
// authoritative trie, fans the groups out to workers that fill their
// bucket and prepare at most one split each (store work only, bucket
// latch held), then — after the barrier — commits the trie flips
// sequentially and releases the held latches. Keys left over by a split
// re-partition in the next round. sp (nil from the plain path) charges
// the structural wait and, via the last-registered defer, the whole
// split wave to the split stage; workers record their latches through
// LatchTimers.
func (e *ConcurrentFile) putBatchSlow(keys []string, values [][]byte, slow []int, errs []error, workers int, sp *obs.Span) {
	o := sp.Observer()
	e.structural.Lock()
	sp.BeginHold(obs.StructLockAddr, obs.StageStructWait)
	defer e.structural.Unlock()
	defer sp.EndHold(obs.StageStructHold)
	defer sp.Mark(obs.StageSplit)
	e.inner.nkeys = int(e.nkeys.Load())
	pending := slow
	for len(pending) > 0 {
		byAddr := make(map[int32][]int, len(pending))
		var addrs []int32
		for _, i := range pending {
			p := e.inner.trie.SearchAddr(keys[i])
			if p.IsNil() {
				errs[i] = fmt.Errorf("core: concurrent engine: key %q maps to a nil leaf (THCL files have none)", keys[i])
				continue
			}
			a := p.Addr()
			if _, ok := byAddr[a]; !ok {
				addrs = append(addrs, a)
			}
			byAddr[a] = append(byAddr[a], i)
		}
		sort.Slice(addrs, func(x, y int) bool { return addrs[x] < addrs[y] })
		recs := make([]*preparedSplit, len(addrs))
		unlocks := make([]func(), len(addrs))
		leftovers := make([][]int, len(addrs))
		var added atomic.Int64
		concurrent.FanOut(len(addrs), workers, func(gi int) {
			addr := addrs[gi]
			lt := o.StartLatch(addr)
			mu := e.latches.Latch(addr)
			mu.Lock()
			lt.Acquired()
			rec, leftover, n := e.applySlowGroup(addr, keys, values, byAddr[addr], errs)
			added.Add(n)
			recs[gi], leftovers[gi] = rec, leftover
			if rec != nil {
				// Keep the latch until the trie flip publishes the split:
				// every key this bucket covers still routes here, and a
				// reader must not see the shrunk image before the flip.
				unlocks[gi] = func() { mu.Unlock(); lt.Release() }
				return
			}
			mu.Unlock()
			lt.Release()
		})
		for gi, rec := range recs {
			if rec == nil {
				continue
			}
			e.inner.commitSplit(rec)
			unlocks[gi]()
		}
		e.nkeys.Add(added.Load())
		e.inner.nkeys = int(e.nkeys.Load())
		pending = pending[:0]
		for _, lo := range leftovers {
			pending = append(pending, lo...)
		}
	}
}

// applySlowGroup fills bucket addr with its group's records under the
// bucket latch (held by the caller): replacements and fitting inserts
// first; the insert that overflows goes in as the Capacity+1'th record
// and the split's store phase runs immediately. Indices not reached
// before the split are returned as leftover for the next round. The
// returned preparedSplit is non-nil when a flip is owed.
func (e *ConcurrentFile) applySlowGroup(addr int32, keys []string, values [][]byte, idxs []int, errs []error) (rec *preparedSplit, leftover []int, added int64) {
	b, err := e.inner.st.Read(addr)
	if err != nil {
		for _, i := range idxs {
			errs[i] = err
		}
		return nil, nil, 0
	}
	var applied []int
	overflowed := false
	for n, i := range idxs {
		if _, exists := b.Get(keys[i]); exists {
			b.Put(keys[i], values[i])
			applied = append(applied, i)
			continue
		}
		if b.Len() < e.inner.cfg.Capacity {
			b.Put(keys[i], values[i])
			added++
			applied = append(applied, i)
			continue
		}
		b.Put(keys[i], values[i]) // the Capacity+1'th record triggers the split
		added++
		applied = append(applied, i)
		leftover = append(leftover, idxs[n+1:]...)
		overflowed = true
		break
	}
	if overflowed {
		rec, err = e.inner.prepareSplit(addr, b)
		if err != nil {
			for _, i := range applied {
				errs[i] = err
			}
			return nil, leftover, 0
		}
		return rec, leftover, added
	}
	if len(applied) > 0 {
		if err := e.inner.st.Write(addr, b); err != nil {
			for _, i := range applied {
				errs[i] = err
			}
			return nil, leftover, 0
		}
	}
	return nil, leftover, added
}

// SaveMeta serializes the file's metadata. The caller must quiesce
// writers (the public layer holds its exclusive lock).
func (e *ConcurrentFile) SaveMeta() []byte {
	e.structural.Lock()
	defer e.structural.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.SaveMeta()
}

// Stats returns the file's statistics. Counts read mid-traffic are
// instantaneous, not a consistent snapshot.
func (e *ConcurrentFile) Stats() Stats {
	e.structural.Lock()
	defer e.structural.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.Stats()
}

// ResetCounters zeroes the split/redistribution and store counters.
func (e *ConcurrentFile) ResetCounters() {
	e.structural.Lock()
	defer e.structural.Unlock()
	e.inner.ResetCounters()
}

// CheckInvariants verifies the file's structural invariants. The caller
// must quiesce concurrent operations (the public layer holds its
// exclusive lock); the structural lock alone does not stop fast-path
// bucket writes.
func (e *ConcurrentFile) CheckInvariants() error {
	e.structural.Lock()
	defer e.structural.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	return e.inner.CheckInvariants()
}

// Scrub quarantines unreadable buckets and rebuilds the trie, returning
// a fresh concurrent engine over the repaired file. The caller must
// quiesce concurrent operations.
func (e *ConcurrentFile) Scrub(quarantinePath string) (*ConcurrentFile, *ScrubReport, error) {
	e.structural.Lock()
	defer e.structural.Unlock()
	e.inner.nkeys = int(e.nkeys.Load())
	e.inner.trie.SetTracer(nil)
	nf, rep, err := e.inner.Scrub(quarantinePath)
	if err != nil {
		e.inner.trie.SetTracer(e.mirror) // the old file stays live
		return nil, nil, err
	}
	ne, err := NewConcurrent(nf)
	if err != nil {
		return nil, nil, err
	}
	return ne, rep, nil
}
