package core

import (
	"fmt"

	"triehash/internal/bucket"
	"triehash/internal/obs"
	"triehash/internal/trie"
)

// maintainAfterDelete applies the configured merge policy after a record
// was removed from bucket addr (in-memory image b, already written back).
func (f *File) maintainAfterDelete(res trie.SearchResult, addr int32, b *bucket.Bucket) error {
	switch f.cfg.Merge {
	case MergeNone:
		return nil
	case MergeSiblings:
		return f.mergeSiblingsPolicy(res, addr, b)
	case MergeRotations:
		if err := f.mergeSiblingsPolicy(res, addr, b); err != nil {
			return err
		}
		return f.rotationPolicy(addr)
	case MergeGuaranteed:
		return f.guaranteedPolicy(addr, b)
	default:
		return fmt.Errorf("core: unknown merge policy %d", f.cfg.Merge)
	}
}

// mergeSiblingsPolicy is the basic method's deletion rule (Section 2.4):
// siblings (leaves sharing a cell) merge when their records fit in one
// bucket; an emptied bucket with no sibling leaf frees into a nil leaf.
func (f *File) mergeSiblingsPolicy(res trie.SearchResult, addr int32, b *bucket.Bucket) error {
	// Only probe the sibling once the bucket dips under half load; the
	// paper leaves the trigger open and this keeps deletions at one
	// extra access at most.
	if 2*b.Len() >= f.cfg.Capacity {
		return nil
	}
	sib, _, ok := f.trie.SiblingOf(res.Pos)
	if !ok {
		// No sibling leaf: only an emptied bucket can free its leaf.
		// Store first, trie second (the failure-atomicity ordering).
		if b.Len() == 0 && res.Pos != trie.RootPos {
			if err := f.st.Free(addr); err != nil {
				return err
			}
			f.trie.FreeToNil(res.Pos)
			return nil
		}
		return nil
	}
	if sib.IsNil() {
		if b.Len() == 0 {
			// Leaf next to a nil leaf: the cell collapses to nil.
			if err := f.st.Free(addr); err != nil {
				return err
			}
			f.trie.MergeSiblings(res.Pos.Cell, trie.Nil)
			return nil
		}
		return nil
	}
	other := sib.Addr()
	ob, err := f.st.Read(other)
	if err != nil {
		return err
	}
	// Merge inverse to splitting: the left bucket survives. The merged
	// bucket is written before the trie shrinks, so a failed write
	// aborts with the live file untouched.
	left, right := addr, other
	lb, rb := b, ob
	if res.Pos.Side == trie.SideRight {
		left, right = other, addr
		lb, rb = ob, b
	}
	if !f.mergeFits(lb, rb, rb.Bound()) {
		return nil
	}
	for i := 0; i < rb.Len(); i++ {
		r := rb.At(i)
		lb.Put(r.Key, r.Value)
	}
	lb.SetBound(rb.Bound()) // the survivor covers the absorbed range
	if err := f.st.Write(left, lb); err != nil {
		return err
	}
	f.trie.MergeSiblings(res.Pos.Cell, trie.Leaf(left))
	if err := f.st.Free(right); err != nil {
		return err
	}
	f.emit(obs.EvMerge, right, left, "sibling merge")
	return nil
}

// guaranteedPolicy is THCL's deletion rule (Section 4.3): when a bucket
// falls under 50% load it merges with a neighbour if the union fits, or
// borrows keys from a neighbour otherwise — the same guarantee a B-tree
// gives. Shared leaves make any two successive buckets mergeable.
func (f *File) guaranteedPolicy(addr int32, b *bucket.Bucket) error {
	if 2*b.Len() >= f.cfg.Capacity {
		return nil
	}
	pred, succ := f.trie.NeighborBuckets(addr)
	if pred < 0 && succ < 0 {
		// Last bucket of the file: no guarantee possible (nor needed).
		if b.Len() == 0 && f.nkeys == 0 {
			return nil
		}
		return nil
	}
	// Prefer whichever neighbour allows a full merge; otherwise borrow
	// from the fuller one.
	var (
		nbAddr  int32 = -1
		nb      *bucket.Bucket
		nbIsSuc bool
	)
	if succ >= 0 {
		sb, err := f.st.Read(succ)
		if err != nil {
			return err
		}
		if f.mergeFits(sb, b, nil) {
			return f.mergeInto(addr, b, succ, sb, true)
		}
		nbAddr, nb, nbIsSuc = succ, sb, true
	}
	if pred >= 0 {
		pb, err := f.st.Read(pred)
		if err != nil {
			return err
		}
		if f.mergeFits(pb, b, b.Bound()) {
			return f.mergeInto(addr, b, pred, pb, false)
		}
		if nb == nil || pb.Len() > nb.Len() {
			nbAddr, nb, nbIsSuc = pred, pb, false
		}
	}
	if nb == nil {
		return nil
	}
	return f.borrow(addr, b, nbAddr, nb, nbIsSuc)
}

// mergeInto moves every record of bucket addr into neighbour nbAddr,
// repoints addr's leaves and frees the bucket. With CollapseOnMerge the
// now-redundant cells are removed, otherwise they stay (the paper's
// preferred trade-off for concurrency).
func (f *File) mergeInto(addr int32, b *bucket.Bucket, nbAddr int32, nb *bucket.Bucket, nbIsSucc bool) error {
	for i := 0; i < b.Len(); i++ {
		r := b.At(i)
		nb.Put(r.Key, r.Value)
	}
	if !nbIsSucc {
		// A predecessor absorbing addr extends upward to addr's bound.
		nb.SetBound(b.Bound())
	}
	if err := f.st.Write(nbAddr, nb); err != nil {
		return err
	}
	f.trie.RepointLeaves(addr, nbAddr)
	if f.cfg.CollapseOnMerge {
		f.trie.Collapse()
	}
	if err := f.st.Free(addr); err != nil {
		return err
	}
	f.emit(obs.EvMerge, addr, nbAddr, "guaranteed-load merge")
	return nil
}

// borrow moves keys from neighbour nbAddr into the underflowing bucket
// addr until both hold at least half the total, shifting the partition
// boundary with the same SetBoundary machinery splits use.
func (f *File) borrow(addr int32, b *bucket.Bucket, nbAddr int32, nb *bucket.Bucket, nbIsSucc bool) error {
	total := b.Len() + nb.Len()
	target := total / 2
	q := target - b.Len() // keys to pull from the neighbour
	if q < 1 {
		return nil
	}
	if q >= nb.Len() {
		q = nb.Len() - 1
	}
	K := nb.Keys()
	undo := b.Clone()    // compensation image if the giver's write fails
	nbundo := nb.Clone() // restore image if the byte gate refuses the shift
	var s []byte
	var splitKey string
	var low, high int32
	if nbIsSucc {
		// Pull the successor's lowest q keys down: the boundary
		// between addr and succ moves up to just under key q.
		s = f.cfg.Alphabet.SplitString(K[q-1], K[q])
		splitKey, low, high = K[q-1], addr, nbAddr
		moved := nb.SplitOff(func(k string) bool { return !f.cfg.Alphabet.KeyLEBound(k, s) })
		b.Absorb(moved)
		b.SetBound(s)
	} else {
		// Pull the predecessor's highest q keys up: the boundary
		// between pred and addr moves down.
		m := nb.Len() - q
		s = f.cfg.Alphabet.SplitString(K[m-1], K[m])
		splitKey, low, high = K[m-1], nbAddr, addr
		moved := nb.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
		b.Absorb(moved)
		nb.SetBound(s)
	}
	if !f.pageFits(b) || !f.pageFits(nb) {
		// Byte gate: the rebalanced images would not encode into their
		// slots. Restore both in-memory images and leave the underflow for
		// the next deletion to retry (the load guarantee yields to the slot
		// size, exactly as an over-budget merge does).
		*b = *undo
		*nb = *nbundo
		return nil
	}
	// Receiver first, giver second, trie last (the split ordering); on a
	// giver failure the receiver is restored best-effort.
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	if err := f.st.Write(nbAddr, nb); err != nil {
		_ = f.st.Write(addr, undo)
		return err
	}
	f.trie.SetBoundary(splitKey, s, nbAddr, low, high, trie.ModeTHCL)
	if f.cfg.CollapseOnMerge {
		f.trie.Collapse()
	}
	f.emit(obs.EvBorrow, addr, nbAddr, "")
	return nil
}

// rotationPolicy is the Section 3.3 refinement for the basic method: when
// the underflowing bucket still exists and its couple with a neighbour
// fits in one bucket, valid rotations make the two leaves siblings and
// the ordinary merge applies.
func (f *File) rotationPolicy(addr int32) error {
	if f.trie.LeafCount(addr) == 0 {
		return nil // the sibling policy already merged or freed it
	}
	b, err := f.st.Read(addr)
	if err != nil {
		return err
	}
	if 2*b.Len() >= f.cfg.Capacity {
		return nil
	}
	for _, c := range f.trie.Couples() {
		if !c.Rotatable || c.Siblings || c.Left.IsNil() || c.Right.IsNil() {
			continue
		}
		if c.Left.Addr() != addr && c.Right.Addr() != addr {
			continue
		}
		other := c.Left.Addr()
		if other == addr {
			other = c.Right.Addr()
		}
		ob, err := f.st.Read(other)
		if err != nil {
			return err
		}
		// Merge into the left bucket, inverse to splitting; write the
		// survivor before any trie change (rotations are semantically
		// neutral, so they may follow the write).
		left, lb := c.Left.Addr(), b
		right, rb := c.Right.Addr(), ob
		if left == other {
			lb, rb = ob, b
		}
		if !f.mergeFits(lb, rb, rb.Bound()) {
			continue
		}
		for i := 0; i < rb.Len(); i++ {
			r := rb.At(i)
			lb.Put(r.Key, r.Value)
		}
		lb.SetBound(rb.Bound())
		if err := f.st.Write(left, lb); err != nil {
			return err
		}
		if err := f.trie.RotateToSiblings(c.Separator); err != nil {
			return err // Rotatable promised success; a failure is a bug
		}
		f.trie.MergeSiblings(c.Separator, trie.Leaf(left))
		if err := f.st.Free(right); err != nil {
			return err
		}
		f.emit(obs.EvMerge, right, left, "rotation merge")
		return nil
	}
	return nil
}
