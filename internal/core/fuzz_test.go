package core

import (
	"bytes"
	"errors"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// FuzzFileOps interprets the fuzz input as an operation tape against a
// small file and a map model: 4 configuration bytes, then records of
// (op, keyLen, key...). Any divergence from the model or invariant
// violation fails.
func FuzzFileOps(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 0, 2, 'a', 'b', 0, 2, 'a', 'c', 1, 2, 'a', 'b'})
	f.Add([]byte{2, 1, 1, 2, 0, 1, 'z', 0, 1, 'y', 0, 1, 'x', 2, 1, 'z'})
	f.Add(bytes.Repeat([]byte{8, 0, 3, 0, 0, 3, 'q', 'q', 'q'}, 6))
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 4 {
			return
		}
		capacity := 2 + int(tape[0]%8)
		mode := trie.ModeBasic
		if tape[1]%2 == 1 {
			mode = trie.ModeTHCL
		}
		splitPos := int(tape[2]) % (capacity + 1) // 0 = default
		boundPos := 0
		redist := RedistNone
		if mode == trie.ModeTHCL {
			if splitPos > 0 && splitPos < capacity {
				boundPos = splitPos + 1 + int(tape[3]%2)*(capacity-splitPos)
			}
			redist = Redistribution(tape[3] % 4)
		}
		cfg := Config{
			Capacity: capacity, Mode: mode,
			SplitPos: splitPos, BoundPos: boundPos,
			Redistribution: redist,
		}
		file, err := New(cfg, store.NewMem())
		if err != nil {
			return // invalid configuration combinations are fine
		}
		model := map[string]bool{}
		tape = tape[4:]
		ops := 0
		for len(tape) >= 2 && ops < 300 {
			op := tape[0] % 3
			kl := 1 + int(tape[1]%6)
			if len(tape) < 2+kl {
				break
			}
			raw := tape[2 : 2+kl]
			tape = tape[2+kl:]
			ops++
			// Map raw bytes into the ASCII alphabet, no trailing space.
			kb := make([]byte, kl)
			for i, c := range raw {
				kb[i] = 'a' + c%26
			}
			key := string(kb)
			switch op {
			case 0:
				if _, err := file.Put(key, []byte{1}); err != nil {
					t.Fatalf("Put(%q): %v", key, err)
				}
				model[key] = true
			case 1:
				err := file.Delete(key)
				switch {
				case model[key] && err != nil:
					t.Fatalf("Delete(%q): %v", key, err)
				case !model[key] && !errors.Is(err, ErrNotFound):
					t.Fatalf("Delete(%q): %v, want ErrNotFound", key, err)
				}
				delete(model, key)
			default:
				_, err := file.Get(key)
				switch {
				case model[key] && err != nil:
					t.Fatalf("Get(%q): %v", key, err)
				case !model[key] && !errors.Is(err, ErrNotFound):
					t.Fatalf("Get(%q): %v, want ErrNotFound", key, err)
				}
			}
		}
		if file.Len() != len(model) {
			t.Fatalf("file has %d keys, model %d", file.Len(), len(model))
		}
		if err := file.CheckInvariants(); err != nil {
			t.Fatalf("invariants after %d ops (cfg %+v): %v", ops, cfg, err)
		}
	})
}
