package core

import (
	"errors"
	"fmt"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// The exhaustive crash-point harness: a canonical workload runs over a
// journaling CrashStore; then, for every journal position k, the store
// image a power cut at k leaves behind is materialized and reopened —
// clean, and with the in-flight write torn, bit-flipped or zeroed — and
// the result is verified against the durability contract:
//
//  1. every key covered by the last successful Sync is present with a
//     value some applied operation wrote (verified differentially
//     against an in-memory model), except keys in the damaged slot's
//     pre/post-image, which may be lost only when Scrub quarantines the
//     slot (tear/flip) or the damage zeroed it beyond detection;
//  2. the reopened file passes CheckInvariants after the documented
//     recovery chain (Open with the synced metadata → Recover → Scrub);
//  3. nothing panics, and every surviving record belongs to the
//     workload's key universe.

// crashOp is one workload operation.
type crashOp struct {
	del   bool
	key   string
	value string
}

// crashRun is everything the workload run recorded: the journaled store,
// the per-op journal boundaries, and the snapshots at each Sync.
type crashRun struct {
	cs      *store.CrashStore
	ops     []crashOp
	opStart []int // journal length when op i began
	marks   []int // journal positions of the Sync barriers
	metas   [][]byte
	snaps   []map[string]string
	// values collects every value ever written per key, with the op
	// index that wrote it, for the allowed-value check.
	values map[string][]struct {
		op    int
		value string
	}
	// deletes collects the journal start position of every delete issued
	// per key: a synced key may be absent after a crash when a delete on
	// it started between the sync and the cut.
	deletes map[string][]int
}

// crashDriver is the operation surface the crash workload drives — the
// sequential engine or the concurrent one, whose store mutation order is
// the same by construction (shared split/merge code), so the durability
// contract and recovery chain are engine-independent.
type crashDriver interface {
	Put(key string, value []byte) (bool, error)
	Delete(key string) error
	SaveMeta() []byte
}

// buildCrashRun executes the canonical workload: deterministic keys,
// inserts with periodic overwrites and deletes, a Sync every syncEvery
// operations. concurrent drives the operations through the concurrent
// engine instead of the sequential one; batchSize > 0 additionally
// issues the puts through PutBatch in groups of that size (deletes and
// syncs flush the group first), so cut positions land inside the batch
// wave's publish window — several buckets with the new twin written but
// the shrunk old image and trie flip still pending.
func buildCrashRun(t *testing.T, cfg Config, seed int64, nops, syncEvery, batchSize int, concurrent bool) *crashRun {
	t.Helper()
	cs := store.NewCrash()
	inner, err := New(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	var f crashDriver = inner
	if concurrent {
		ce, err := NewConcurrent(inner)
		if err != nil {
			t.Fatal(err)
		}
		f = ce
	}
	bp, _ := f.(interface {
		PutBatch(keys []string, values [][]byte) []error
	})
	if batchSize > 0 && bp == nil {
		t.Fatal("batchSize set but the driver has no PutBatch")
	}
	keys := workload.Uniform(seed, nops, 3, 8)
	r := &crashRun{
		cs: cs,
		values: make(map[string][]struct {
			op    int
			value string
		}),
		deletes: make(map[string][]int),
	}
	model := map[string]string{}
	sync := func() {
		if err := cs.Sync(); err != nil {
			t.Fatal(err)
		}
		r.marks = append(r.marks, cs.Journal())
		r.metas = append(r.metas, f.SaveMeta())
		snap := make(map[string]string, len(model))
		for k, v := range model {
			snap[k] = v
		}
		r.snaps = append(r.snaps, snap)
	}
	// flush issues the buffered puts as one PutBatch. Every op in the
	// batch shares the flush-time journal position as its start: any of
	// them may or may not have applied by a later cut, which is exactly
	// what the allowed-value check models.
	var buf []crashOp
	flush := func() {
		if len(buf) == 0 {
			return
		}
		start := cs.Journal()
		bk := make([]string, len(buf))
		bv := make([][]byte, len(buf))
		for j, op := range buf {
			bk[j], bv[j] = op.key, []byte(op.value)
			r.ops = append(r.ops, op)
			r.opStart = append(r.opStart, start)
			model[op.key] = op.value
			r.values[op.key] = append(r.values[op.key], struct {
				op    int
				value string
			}{len(r.ops) - 1, op.value})
		}
		for j, err := range bp.PutBatch(bk, bv) {
			if err != nil {
				t.Fatalf("batch put %q: %v", bk[j], err)
			}
		}
		buf = buf[:0]
	}
	for i := 0; i < nops; i++ {
		op := crashOp{key: keys[i], value: fmt.Sprintf("%s#%d", keys[i], i)}
		switch {
		case i%7 == 3 && i > 0:
			op = crashOp{del: true, key: keys[i-1]} // often present, sometimes not
		case i%5 == 2 && i > 10:
			op.key = keys[i-10] // overwrite
			op.value = fmt.Sprintf("%s#%d", op.key, i)
		}
		switch {
		case op.del:
			flush() // a buffered put on this key must land first
			r.ops = append(r.ops, op)
			r.opStart = append(r.opStart, cs.Journal())
			r.deletes[op.key] = append(r.deletes[op.key], cs.Journal())
			if err := f.Delete(op.key); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d: delete %q: %v", i, op.key, err)
			}
			delete(model, op.key)
		case batchSize > 0:
			buf = append(buf, op)
			if len(buf) >= batchSize {
				flush()
			}
		default:
			r.ops = append(r.ops, op)
			r.opStart = append(r.opStart, cs.Journal())
			if _, err := f.Put(op.key, []byte(op.value)); err != nil {
				t.Fatalf("op %d: put %q: %v", i, op.key, err)
			}
			model[op.key] = op.value
			r.values[op.key] = append(r.values[op.key], struct {
				op    int
				value string
			}{i, op.value})
		}
		if (i+1)%syncEvery == 0 {
			flush()
			sync()
		}
	}
	flush()
	sync()
	return r
}

// syncBefore returns the snapshot, metadata and journal position of the
// last Sync at or before journal position k (nil metadata when nothing
// was synced yet).
func (r *crashRun) syncBefore(k int) (map[string]string, []byte, int) {
	snap, meta, mark := map[string]string{}, []byte(nil), 0
	for i, m := range r.marks {
		if m > k {
			break
		}
		snap, meta, mark = r.snaps[i], r.metas[i], m
	}
	return snap, meta, mark
}

// deletedBetween reports whether a delete on key started in journal
// range [mark, k]: its effect may legitimately be durable while the
// sync'd snapshot still lists the key.
func (r *crashRun) deletedBetween(key string, mark, k int) bool {
	for _, pos := range r.deletes[key] {
		if pos >= mark && pos <= k {
			return true
		}
	}
	return false
}

// allowedValues returns the set of values Get(key) may legitimately
// return at cut position k: anything an operation that had started by
// then wrote.
func (r *crashRun) allowedValues(key string, k int) map[string]bool {
	out := map[string]bool{}
	for _, w := range r.values[key] {
		if r.opStart[w.op] <= k {
			out[w.value] = true
		}
	}
	return out
}

// reopenChain is the documented recovery procedure a crashed deployment
// follows: reopen with the synced metadata; if the structure does not
// verify, rebuild the trie from the bucket bounds (Recover); if damaged
// slots remain, quarantine them (Scrub).
func reopenChain(cfg Config, img store.Store, meta []byte) (*File, *ScrubReport, error) {
	if meta != nil {
		if f, err := Open(meta, img); err == nil {
			if f.CheckInvariants() == nil {
				return f, nil, nil
			}
		}
	}
	f, err := Recover(cfg, img)
	if err != nil {
		return nil, nil, err
	}
	if len(f.CorruptSlots()) == 0 && f.CheckInvariants() == nil {
		return f, nil, nil
	}
	return f.Scrub("")
}

// slotKeys returns the keys bucket addr holds in image img, or nil when
// the slot does not read back.
func slotKeys(img store.Store, addr int32) []string {
	if addr < 0 {
		return nil
	}
	b, err := img.Read(addr)
	if err != nil {
		return nil
	}
	var out []string
	for i := 0; i < b.Len(); i++ {
		out = append(out, b.At(i).Key)
	}
	return out
}

// verifyCut reopens one power-cut image and checks the durability
// contract. kind < 0 means a clean cut (no damaged entry).
func (r *crashRun) verifyCut(t *testing.T, cfg Config, k int, kind store.CorruptKind, seed int64) {
	t.Helper()
	var img *store.CrashStore
	damaged := int32(-1)
	if kind < 0 {
		img = r.cs.PowerCut(k)
	} else {
		img, damaged = r.cs.PowerCutDamaged(k, kind, seed)
	}
	snap, meta, mark := r.syncBefore(k)

	// Keys the damage may legitimately have destroyed: the damaged
	// slot's content just before and just after the in-flight write.
	excused := map[string]bool{}
	if damaged >= 0 {
		for _, key := range slotKeys(r.cs.PowerCut(k), damaged) {
			excused[key] = true
		}
		for _, key := range slotKeys(r.cs.PowerCut(k+1), damaged) {
			excused[key] = true
		}
	}

	f, rep, err := reopenChain(cfg, img, meta)
	if err != nil {
		// Nothing to rebuild from is acceptable only while the contract
		// demands nothing that was not excused.
		for key := range snap {
			if !excused[key] {
				t.Fatalf("cut %d kind %v: reopen failed (%v) with synced key %q at stake", k, kind, err, key)
			}
		}
		return
	}
	quarantined := map[int32]bool{}
	if rep != nil {
		for _, l := range rep.Quarantined {
			quarantined[l.Addr] = true
		}
		for _, l := range rep.Vanished {
			quarantined[l.Addr] = true
		}
	}
	for key, want := range snap {
		v, err := f.Get(key)
		if err != nil {
			if r.deletedBetween(key, mark, k) {
				continue // an applied post-sync delete removed it
			}
			if excused[key] && (kind == store.CorruptZero || quarantined[damaged]) {
				continue // reported loss from the damaged slot
			}
			t.Fatalf("cut %d kind %v: synced key %q lost: %v (damaged slot %d, report %+v)",
				k, kind, key, err, damaged, rep)
		}
		if allowed := r.allowedValues(key, k); !allowed[string(v)] {
			t.Fatalf("cut %d kind %v: key %q = %q, want %q or a later applied write",
				k, kind, key, v, want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("cut %d kind %v: recovered file fails invariants: %v", k, kind, err)
	}
	universe := map[string]bool{}
	for _, op := range r.ops {
		universe[op.key] = true
	}
	if err := f.Range("", "", func(key string, _ []byte) bool {
		if !universe[key] {
			t.Fatalf("cut %d kind %v: recovered file invented key %q", k, kind, key)
		}
		return true
	}); err != nil {
		t.Fatalf("cut %d kind %v: range over recovered file: %v", k, kind, err)
	}
}

// TestCrashPoints is the exhaustive harness: every journal position, every
// damage kind, two configurations. Short mode strides the cut positions;
// the full run visits all of them.
func TestCrashPoints(t *testing.T) {
	configs := []struct {
		name       string
		cfg        Config
		concurrent bool
		batchSize  int
	}{
		{"thcl", Config{Capacity: 4, Mode: trie.ModeTHCL}, false, 0},
		{"thcl-redist", Config{Capacity: 4, Mode: trie.ModeTHCL, Redistribution: RedistBoth, BoundPos: 4}, false, 0},
		// The concurrent engine over the same journaling store: identical
		// store mutation order means the same cuts, the same damage, the
		// same recovery chain.
		{"thcl-concurrent", Config{Capacity: 4, Mode: trie.ModeTHCL}, true, 0},
		// The batch wave prepares several splits (new twins written,
		// unreachable) before the sequential publish loop flips any of
		// them, so cuts land inside the publish window with multiple
		// pending twins at once — Recover must quarantine every one.
		{"thcl-concurrent-batch", Config{Capacity: 4, Mode: trie.ModeTHCL}, true, 8},
	}
	kinds := []store.CorruptKind{-1, store.CorruptTear, store.CorruptFlip, store.CorruptZero}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := tc.cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			r := buildCrashRun(t, cfg, 411, 160, 13, tc.batchSize, tc.concurrent)
			stride := 1
			if testing.Short() {
				stride = 7
			}
			n := r.cs.Journal()
			t.Logf("journal: %d mutations, %d syncs", n, len(r.marks))
			for k := 0; k <= n; k += stride {
				for _, kind := range kinds {
					r.verifyCut(t, cfg, k, kind, int64(k)*1000003+int64(kind))
				}
			}
			// The boundary positions always run, stride or not.
			for _, k := range []int{0, 1, n - 1, n} {
				for _, kind := range kinds {
					r.verifyCut(t, cfg, k, kind, int64(k)*999983+int64(kind))
				}
			}
		})
	}
}
