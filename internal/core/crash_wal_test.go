package core

import (
	"errors"
	"fmt"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/wal"
	"triehash/internal/workload"
)

// The WAL crash harness extends the power-cut enumeration to the logged
// durability contract. The workload drives the engine exactly like the
// public layer does with Options.WAL on — apply to the engine, append to
// the log, commit (fsync) — over the CrashStore, whose journal now
// carries log appends and truncations in the same mutation timeline as
// the slot writes. Every journal position is therefore a cut inside a
// bucket write, between an engine apply and its log append, inside the
// append itself (torn, bit-flipped or zeroed mid-frame), or inside a
// checkpoint's truncate-then-mark sequence — and at every one of them
// the recovery that the public layer performs (canonicalize the bucket
// state, then replay the log's post-checkpoint suffix) must restore
// every COMMITTED operation, not merely every checkpointed one.

// walCrashRun records the logged workload: the shared crashRun bookkeeping
// plus the commit horizon (which ops' fsyncs had completed by each journal
// position) and the checkpoint metadata installs.
type walCrashRun struct {
	crashRun
	// commitPos[i] is the journal length when op i's Commit returned — the
	// op is durable at every cut at or beyond it. -1 for ops that never
	// reached the log (deletes of absent keys).
	commitPos []int
	// commitSnap[i] is the model after op i: the state every cut past
	// commitPos[i] must be able to restore.
	commitSnap []map[string]string
	// ckptMarks / ckptMetas are the checkpoint barriers: metadata is
	// durably installed ONLY here (between checkpoints it goes stale and
	// the log carries the difference).
	ckptMarks []int
	ckptMetas [][]byte
}

// buildWALCrashRun executes the canonical logged workload against cfg.
func buildWALCrashRun(t *testing.T, cfg Config, seed int64, nops, ckptEvery int, concurrent bool) *walCrashRun {
	t.Helper()
	cs := store.NewCrash()
	inner, err := New(cfg, cs)
	if err != nil {
		t.Fatal(err)
	}
	var f crashDriver = inner
	if concurrent {
		ce, err := NewConcurrent(inner)
		if err != nil {
			t.Fatal(err)
		}
		f = ce
	}
	l, recs, tail, err := wal.Open(cs.LogDevice(), inner.Config().Format, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 || tail.Damaged {
		t.Fatalf("fresh crash log opened with %d records, tail %+v", len(recs), tail)
	}
	defer l.Close()

	keys := workload.Uniform(seed, nops, 3, 8)
	r := &walCrashRun{crashRun: crashRun{
		cs: cs,
		values: make(map[string][]struct {
			op    int
			value string
		}),
		deletes: make(map[string][]int),
	}}
	model := map[string]string{}
	record := func(op crashOp, start, commit int) {
		r.ops = append(r.ops, op)
		r.opStart = append(r.opStart, start)
		r.commitPos = append(r.commitPos, commit)
		snap := make(map[string]string, len(model))
		for k, v := range model {
			snap[k] = v
		}
		r.commitSnap = append(r.commitSnap, snap)
	}
	commit := func(op wal.Op, key, value string) int {
		lsn, err := l.Append(op, key, []byte(value))
		if err != nil {
			t.Fatalf("append %v %q: %v", op, key, err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatalf("commit %v %q: %v", op, key, err)
		}
		return cs.Journal()
	}
	checkpoint := func() {
		// The public layer's checkpointLocked order: buckets durable,
		// metadata installed, then — and only then — the log folds.
		if err := cs.Sync(); err != nil {
			t.Fatal(err)
		}
		r.ckptMarks = append(r.ckptMarks, cs.Journal())
		r.ckptMetas = append(r.ckptMetas, f.SaveMeta())
		if err := l.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nops; i++ {
		op := crashOp{key: keys[i], value: fmt.Sprintf("%s#%d", keys[i], i)}
		switch {
		case i%7 == 3 && i > 0:
			op = crashOp{del: true, key: keys[i-1]}
		case i%5 == 2 && i > 10:
			op.key = keys[i-10]
			op.value = fmt.Sprintf("%s#%d", op.key, i)
		}
		start := cs.Journal()
		if op.del {
			r.deletes[op.key] = append(r.deletes[op.key], start)
			err := f.Delete(op.key)
			switch {
			case errors.Is(err, ErrNotFound):
				record(op, start, -1) // nothing applied, nothing logged
				continue
			case err != nil:
				t.Fatalf("op %d: delete %q: %v", i, op.key, err)
			}
			delete(model, op.key)
			record(op, start, commit(wal.OpDelete, op.key, ""))
		} else {
			if _, err := f.Put(op.key, []byte(op.value)); err != nil {
				t.Fatalf("op %d: put %q: %v", i, op.key, err)
			}
			model[op.key] = op.value
			r.values[op.key] = append(r.values[op.key], struct {
				op    int
				value string
			}{len(r.ops), op.value})
			record(op, start, commit(wal.OpPut, op.key, op.value))
		}
		if (i+1)%ckptEvery == 0 {
			checkpoint()
		}
	}
	checkpoint()
	return r
}

// committedBefore returns the model and journal position of the last
// committed operation at or before cut k.
func (r *walCrashRun) committedBefore(k int) (map[string]string, int) {
	snap, mark := map[string]string{}, 0
	for i, p := range r.commitPos {
		if p < 0 || p > k {
			continue
		}
		if p >= mark {
			snap, mark = r.commitSnap[i], p
		}
	}
	return snap, mark
}

// ckptBefore returns the metadata of the last checkpoint at or before k
// (nil when the crash predates the first checkpoint).
func (r *walCrashRun) ckptBefore(k int) []byte {
	var meta []byte
	for i, m := range r.ckptMarks {
		if m > k {
			break
		}
		meta = r.ckptMetas[i]
	}
	return meta
}

// replayImageLog performs the public layer's replay step on a reopened
// image: scan the (possibly torn) log the cut left behind, take the
// suffix after the last checkpoint marker, and apply it. Returns the keys
// whose last pending record is a put — records recovery must serve no
// matter what the damage did to their bucket.
func replayImageLog(t *testing.T, f *File, img *store.CrashStore, k int, kind store.CorruptKind) map[string]bool {
	t.Helper()
	recs, _, _, err := wal.Scan(img.LogBytes())
	if err != nil {
		t.Fatalf("cut %d kind %v: scanning log: %v", k, kind, err)
	}
	start := 0
	for i, rec := range recs {
		if rec.Op == wal.OpCheckpoint {
			start = i + 1
		}
	}
	replayedPut := map[string]bool{}
	for _, rec := range recs[start:] {
		switch rec.Op {
		case wal.OpPut:
			if _, err := f.Put(rec.Key, rec.Value); err != nil {
				t.Fatalf("cut %d kind %v: replaying put %q: %v", k, kind, rec.Key, err)
			}
			replayedPut[rec.Key] = true
		case wal.OpDelete:
			if err := f.Delete(rec.Key); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("cut %d kind %v: replaying delete %q: %v", k, kind, rec.Key, err)
			}
			delete(replayedPut, rec.Key)
		}
	}
	return replayedPut
}

// verifyWALCut materializes one power-cut image, recovers it the way the
// public layer does (canonicalize, then replay the log suffix), and
// checks the logged durability contract: every committed operation's
// effect is restored.
func (r *walCrashRun) verifyWALCut(t *testing.T, cfg Config, k int, kind store.CorruptKind, seed int64) {
	t.Helper()
	var img *store.CrashStore
	damaged := int32(-1)
	if kind < 0 {
		img = r.cs.PowerCut(k)
	} else {
		img, damaged = r.cs.PowerCutDamaged(k, kind, seed)
	}
	snap, commitMark := r.committedBefore(k)
	meta := r.ckptBefore(k)

	excused := map[string]bool{}
	if damaged >= 0 {
		for _, key := range slotKeys(r.cs.PowerCut(k), damaged) {
			excused[key] = true
		}
		for _, key := range slotKeys(r.cs.PowerCut(k+1), damaged) {
			excused[key] = true
		}
	}

	f, rep, err := reopenChain(cfg, img, meta)
	if err != nil {
		for key := range snap {
			if !excused[key] {
				t.Fatalf("cut %d kind %v: reopen failed (%v) with committed key %q at stake", k, kind, err, key)
			}
		}
		return
	}
	replayedPut := replayImageLog(t, f, img, k, kind)
	quarantined := map[int32]bool{}
	if rep != nil {
		for _, l := range rep.Quarantined {
			quarantined[l.Addr] = true
		}
		for _, l := range rep.Vanished {
			quarantined[l.Addr] = true
		}
	}
	for key, want := range snap {
		v, err := f.Get(key)
		if err != nil {
			if r.deletedBetween(key, commitMark, k) {
				continue // an applied post-commit delete removed it
			}
			// A pre-checkpoint record in a damaged slot is the scrub
			// lost-range contract — but only when the log cannot re-put
			// it; a replayed put must always be served.
			if excused[key] && !replayedPut[key] && (kind == store.CorruptZero || quarantined[damaged]) {
				continue
			}
			t.Fatalf("cut %d kind %v: committed key %q lost: %v (damaged slot %d, report %+v)",
				k, kind, key, err, damaged, rep)
		}
		if allowed := r.allowedValues(key, k); !allowed[string(v)] {
			t.Fatalf("cut %d kind %v: key %q = %q, want %q or a later applied write",
				k, kind, key, v, want)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("cut %d kind %v: recovered file fails invariants: %v", k, kind, err)
	}
	universe := map[string]bool{}
	for _, op := range r.ops {
		universe[op.key] = true
	}
	if err := f.Range("", "", func(key string, _ []byte) bool {
		if !universe[key] {
			t.Fatalf("cut %d kind %v: recovered file invented key %q", k, kind, key)
		}
		return true
	}); err != nil {
		t.Fatalf("cut %d kind %v: range over recovered file: %v", k, kind, err)
	}
}

// TestWALCrashPoints enumerates every journal position of the logged
// workload — bucket writes, log appends (torn, flipped, zeroed),
// checkpoint truncations — for both engines, and demands convergent
// recovery of every committed operation.
func TestWALCrashPoints(t *testing.T) {
	configs := []struct {
		name       string
		concurrent bool
	}{
		{"thcl-wal", false},
		{"thcl-wal-concurrent", true},
	}
	kinds := []store.CorruptKind{-1, store.CorruptTear, store.CorruptFlip, store.CorruptZero}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			cfg, err := (Config{Capacity: 4, Mode: trie.ModeTHCL}).withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			r := buildWALCrashRun(t, cfg, 1009, 120, 17, tc.concurrent)
			stride := 1
			if testing.Short() {
				stride = 7
			}
			n := r.cs.Journal()
			t.Logf("journal: %d mutations, %d commits, %d checkpoints", n, len(r.commitPos), len(r.ckptMarks))
			for k := 0; k <= n; k += stride {
				for _, kind := range kinds {
					r.verifyWALCut(t, cfg, k, kind, int64(k)*1000003+int64(kind))
				}
			}
			for _, k := range []int{0, 1, n - 1, n} {
				for _, kind := range kinds {
					r.verifyWALCut(t, cfg, k, kind, int64(k)*999983+int64(kind))
				}
			}
		})
	}
}
