// Package core implements the paper's contribution: trie-hashed files with
// controlled load. A File combines a TH-trie (the access function, held in
// main memory) with a bucket store (the disk). It supports the basic
// method of /LIT81/ (Section 2 of the paper) and the THCL refinement
// (Section 4): nil-node elimination, split control through bounding keys,
// guaranteed-load deletions and redistribution between existing buckets.
package core

import (
	"fmt"

	"triehash/internal/format"
	"triehash/internal/keys"
	"triehash/internal/trie"
)

// Redistribution selects whether splits first try to shift keys into an
// existing neighbour bucket instead of appending a new one (Section 4.4).
type Redistribution int

const (
	// RedistNone always appends a new bucket on overflow.
	RedistNone Redistribution = iota
	// RedistSuccessor shifts the top keys into the in-order successor
	// when it has room.
	RedistSuccessor
	// RedistPredecessor shifts the bottom keys into the in-order
	// predecessor when it has room.
	RedistPredecessor
	// RedistBoth tries the successor first, then the predecessor.
	RedistBoth
)

func (r Redistribution) String() string {
	switch r {
	case RedistNone:
		return "none"
	case RedistSuccessor:
		return "successor"
	case RedistPredecessor:
		return "predecessor"
	case RedistBoth:
		return "both"
	}
	return fmt.Sprintf("Redistribution(%d)", int(r))
}

// MergePolicy selects the deletion behaviour.
type MergePolicy int

const (
	// MergeDefault resolves to MergeSiblings for the basic method and
	// MergeGuaranteed for THCL.
	MergeDefault MergePolicy = iota
	// MergeNone never merges: buckets only empty out (and, in the basic
	// method, an emptied bucket's leaf becomes nil).
	MergeNone
	// MergeSiblings is the basic method's rule (Section 2.4): only
	// buckets whose leaves share a cell may merge.
	MergeSiblings
	// MergeGuaranteed is THCL's rule (Section 4.3): any two successive
	// buckets may merge via shared leaves, and underflowing buckets
	// borrow keys from a neighbour, guaranteeing 50% minimum load.
	MergeGuaranteed
	// MergeRotations extends MergeSiblings with the Section 3.3
	// refinement: an underflowing bucket whose couple is not a sibling
	// pair rotates the trie (where logical ancestorship allows) to make
	// it one, roughly doubling the mergeable couples of the basic
	// method.
	MergeRotations
)

// Config parameterizes a trie-hashed file.
type Config struct {
	// Alphabet is the digit alphabet keys are drawn from. The zero
	// value selects keys.ASCII.
	Alphabet keys.Alphabet
	// Capacity is the bucket capacity b >= 2.
	Capacity int
	// Mode selects basic trie hashing or THCL.
	Mode trie.Mode
	// SplitPos is the split-key position m, 1-based within the ordered
	// sequence B of b+1 keys to split. 0 selects the paper's middle
	// position INT(b/2 + 1). m = b leaves the overflowing bucket full
	// (for expected ascending insertions); m = 1 leaves one key (for
	// descending ones).
	SplitPos int
	// BoundPos is the 1-based position of the bounding key c‴ within B
	// (THCL split control, Section 4.2). 0 selects b+1, the last key —
	// the basic method's partly random split. SplitPos+1 makes every
	// split deterministic. Must exceed SplitPos. Ignored in basic mode,
	// which always bounds with the last key.
	BoundPos int
	// Redistribution enables key shifts into neighbour buckets before
	// appending a new one (THCL only).
	Redistribution Redistribution
	// Merge selects the deletion behaviour.
	Merge MergePolicy
	// CollapseOnMerge removes trie nodes made redundant by THCL merges
	// (both pointers on one bucket). The paper notes leaving them in
	// place is often preferable; off by default.
	CollapseOnMerge bool
	// TombstoneMerges marks merged-away trie cells dead instead of
	// physically removing them — Section 2.4's concurrency-friendly
	// option ("only mark deleted leaves through a special value").
	// Vacuum during Save reclaims them.
	TombstoneMerges bool
	// Format is the on-disk encoding version this file writes (pages it
	// reads may be either version). 0 selects format.Default.
	Format format.Version
	// PageBudget caps the encoded byte size of a bucket page; a bucket
	// whose encoding would exceed it splits even below Capacity records,
	// and merges/redistributions refuse receivers they would overflow.
	// 0 disables byte gating (pure in-memory stores have no slot limit).
	// Persistent files set it to the store's slot payload, which is what
	// lets a compact encoding pack more records per fixed-size slot.
	PageBudget int
}

// withDefaults validates cfg and fills the defaulted fields in.
func (cfg Config) withDefaults() (Config, error) {
	if cfg.Alphabet == (keys.Alphabet{}) {
		cfg.Alphabet = keys.ASCII
	}
	if cfg.Alphabet.Min >= cfg.Alphabet.Max {
		return cfg, fmt.Errorf("core: alphabet [%q, %q] is empty", cfg.Alphabet.Min, cfg.Alphabet.Max)
	}
	if cfg.Capacity < 2 {
		return cfg, fmt.Errorf("core: bucket capacity %d; need at least 2", cfg.Capacity)
	}
	if cfg.Format == 0 {
		cfg.Format = format.Default
	}
	if !cfg.Format.Valid() {
		return cfg, fmt.Errorf("core: unsupported on-disk format %d", cfg.Format)
	}
	if cfg.PageBudget < 0 {
		return cfg, fmt.Errorf("core: negative page budget %d", cfg.PageBudget)
	}
	if cfg.SplitPos == 0 {
		cfg.SplitPos = cfg.Capacity/2 + 1
	}
	if cfg.SplitPos < 1 || cfg.SplitPos > cfg.Capacity {
		return cfg, fmt.Errorf("core: split position %d outside [1, %d]", cfg.SplitPos, cfg.Capacity)
	}
	if cfg.BoundPos == 0 {
		cfg.BoundPos = cfg.Capacity + 1
	}
	if cfg.Mode == trie.ModeBasic {
		cfg.BoundPos = cfg.Capacity + 1 // the basic split always bounds with the last key
	}
	if cfg.BoundPos <= cfg.SplitPos || cfg.BoundPos > cfg.Capacity+1 {
		return cfg, fmt.Errorf("core: bounding position %d outside (%d, %d]", cfg.BoundPos, cfg.SplitPos, cfg.Capacity+1)
	}
	if cfg.Mode == trie.ModeBasic && cfg.Redistribution != RedistNone {
		return cfg, fmt.Errorf("core: redistribution requires THCL mode (shared leaves)")
	}
	if cfg.Merge == MergeDefault {
		if cfg.Mode == trie.ModeBasic {
			cfg.Merge = MergeSiblings
		} else {
			cfg.Merge = MergeGuaranteed
		}
	}
	if cfg.Mode == trie.ModeBasic && cfg.Merge == MergeGuaranteed {
		return cfg, fmt.Errorf("core: guaranteed-load merging requires THCL mode")
	}
	if cfg.Mode == trie.ModeTHCL && cfg.Merge == MergeRotations {
		return cfg, fmt.Errorf("core: rotation merging belongs to the basic method; THCL uses MergeGuaranteed")
	}
	return cfg, nil
}
