package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"triehash/internal/format"
	"triehash/internal/store"
	"triehash/internal/trie"
)

const metaMagic = 0x5448434C // "THCL"

// SaveMeta serializes everything the file needs besides its bucket store:
// the configuration, the record/split counters and the trie. Together with
// a persistent Store (store.FileStore) this makes the file durable. The
// header's version field mirrors cfg.Format — it announces both the
// header layout (unchanged across v1/v2) and the trie page encoding that
// follows it, so a v1 file upgrades wholesale at its next SaveMeta.
func (f *File) SaveMeta() []byte {
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(f.cfg.Format))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.cfg.Capacity))
	hdr[12] = byte(f.cfg.Mode)
	hdr[13] = byte(f.cfg.Redistribution)
	hdr[14] = byte(f.cfg.Merge)
	if f.cfg.CollapseOnMerge {
		hdr[15] |= 1
	}
	if f.cfg.TombstoneMerges {
		hdr[15] |= 2
	}
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.cfg.SplitPos))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(f.cfg.BoundPos))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(f.nkeys))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(f.splits))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(f.redistributions))
	buf := f.trie.AppendFormat(hdr[:], f.cfg.Format)
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf))
	return append(buf, sum[:]...)
}

// Open reattaches a file previously serialized with SaveMeta to its bucket
// store.
func Open(meta []byte, st store.Store) (*File, error) {
	if len(meta) < 44 {
		return nil, fmt.Errorf("core: open: truncated metadata (%d bytes)", len(meta))
	}
	body, sum := meta[:len(meta)-4], binary.LittleEndian.Uint32(meta[len(meta)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("core: open: metadata checksum mismatch")
	}
	meta = body
	if binary.LittleEndian.Uint32(meta[0:]) != metaMagic {
		return nil, fmt.Errorf("core: open: bad magic")
	}
	if v := binary.LittleEndian.Uint32(meta[4:]); v != uint32(format.V1) && v != uint32(format.V2) {
		return nil, &format.UnknownVersionError{Surface: "meta", Version: v}
	}
	tr, _, err := trie.DecodeBinary(meta[40:])
	if err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	cfg := Config{
		Alphabet:        tr.Alphabet(),
		Capacity:        int(binary.LittleEndian.Uint32(meta[8:])),
		Mode:            trie.Mode(meta[12]),
		Redistribution:  Redistribution(meta[13]),
		Merge:           MergePolicy(meta[14]),
		CollapseOnMerge: meta[15]&1 != 0,
		TombstoneMerges: meta[15]&2 != 0,
		SplitPos:        int(binary.LittleEndian.Uint32(meta[16:])),
		BoundPos:        int(binary.LittleEndian.Uint32(meta[20:])),
	}
	cfg, err = cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	tr.SetTombstoning(cfg.TombstoneMerges)
	f := &File{
		cfg:             cfg,
		trie:            tr,
		st:              st,
		nkeys:           int(binary.LittleEndian.Uint64(meta[24:])),
		splits:          int(binary.LittleEndian.Uint32(meta[32:])),
		redistributions: int(binary.LittleEndian.Uint32(meta[36:])),
	}
	return f.resolveStore(), nil
}
