package core

import (
	"fmt"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// Stats is the snapshot of the figures the paper's evaluation reports.
type Stats struct {
	Keys    int // x: records in the file
	Buckets int // N+1 in the paper's terms: allocated buckets
	// Load is the bucket load factor a = x / (b * buckets).
	Load float64
	// TrieCells is the paper's trie size M (internal nodes).
	TrieCells int
	// TrieBytes is M at the paper's practical 6 bytes per cell.
	TrieBytes int
	// NilLeaves counts nil leaves (basic method only).
	NilLeaves int
	// NilLeafShare is NilLeaves over all leaves.
	NilLeafShare float64
	// Depth is the longest root-to-leaf path of the trie.
	Depth int
	// AvgLeafDepth is the mean number of node visits per key search.
	AvgLeafDepth float64
	// Splits counts bucket splits (redistributions included);
	// Redistributions counts the subset resolved without a new bucket.
	Splits          int
	Redistributions int
	// GrowthRate is the paper's s = M / splits: cells added per split.
	GrowthRate float64
	// DeadCells counts tombstoned cells awaiting Vacuum (with
	// Config.TombstoneMerges).
	DeadCells int
	// IO holds the bucket transfer counters accumulated by the store.
	IO store.Counters
}

// Stats returns the current statistics snapshot.
func (f *File) Stats() Stats {
	st := Stats{
		Keys:            f.nkeys,
		Buckets:         f.st.Buckets(),
		TrieCells:       f.trie.Cells(),
		TrieBytes:       f.trie.PaperBytes(),
		NilLeaves:       f.trie.NilLeaves(),
		Depth:           f.trie.Depth(),
		Splits:          f.splits,
		Redistributions: f.redistributions,
		DeadCells:       f.trie.DeadCells(),
		IO:              f.st.Counters(),
	}
	if st.Buckets > 0 {
		st.Load = float64(st.Keys) / float64(f.cfg.Capacity*st.Buckets)
	}
	if leaves := f.trie.Leaves(); leaves > 0 {
		st.NilLeafShare = float64(st.NilLeaves) / float64(leaves)
		st.AvgLeafDepth = float64(f.trie.TotalLeafDepth()) / float64(leaves)
	}
	if f.splits > 0 {
		st.GrowthRate = float64(st.TrieCells) / float64(f.splits)
	}
	return st
}

// ResetCounters zeroes the file's cumulative event counters — splits and
// redistributions — and the store's access counters, so a measured phase
// starts from zero across every counter family. State figures (Keys,
// Buckets, TrieCells, Depth, Load) are gauges and are not touched.
func (f *File) ResetCounters() {
	f.splits, f.redistributions = 0, 0
	f.st.ResetCounters()
}

func (s Stats) String() string {
	return fmt.Sprintf("keys=%d buckets=%d load=%.3f M=%d (%d B) nil=%d depth=%d splits=%d s=%.2f",
		s.Keys, s.Buckets, s.Load, s.TrieCells, s.TrieBytes, s.NilLeaves, s.Depth, s.Splits, s.GrowthRate)
}

// CheckInvariants verifies the whole file: trie structure, key placement
// (every record's key routes back to the bucket holding it), ordering
// across buckets, capacity bounds, and the record count. Intended for
// tests and the paper-reproduction harness; it reads every bucket.
func (f *File) CheckInvariants() error {
	if err := f.trie.Check(0); err != nil {
		return err
	}
	if f.cfg.Mode == trie.ModeBasic {
		// Basic method invariant: exactly one leaf per bucket.
		for _, lp := range f.trie.InorderLeaves() {
			if !lp.Leaf.IsNil() && f.trie.LeafCount(lp.Leaf.Addr()) != 1 {
				return fmt.Errorf("core: basic mode bucket %d has %d leaves", lp.Leaf.Addr(), f.trie.LeafCount(lp.Leaf.Addr()))
			}
		}
	}
	// Collect each bucket's run-top leaf path to verify the stored
	// bounds (the TOR83 recovery headers).
	topBound := map[int32][]byte{}
	for _, lp := range f.trie.InorderLeaves() {
		if !lp.Leaf.IsNil() {
			topBound[lp.Leaf.Addr()] = lp.Path // later leaves overwrite: the last is the top
		}
	}
	total := 0
	prevKey := ""
	seen := map[int32]bool{}
	lastAddr := int32(-1)
	for _, lp := range f.trie.InorderLeaves() {
		if lp.Leaf.IsNil() {
			lastAddr = -1
			continue
		}
		addr := lp.Leaf.Addr()
		if addr == lastAddr {
			continue // later leaf of the same bucket's run
		}
		lastAddr = addr
		if seen[addr] {
			return fmt.Errorf("core: bucket %d appears in two separate runs", addr)
		}
		seen[addr] = true
		b, err := f.st.Read(addr)
		if err != nil {
			return fmt.Errorf("core: bucket %d: %w", addr, err)
		}
		if want := topBound[addr]; string(b.Bound()) != string(want) {
			return fmt.Errorf("core: bucket %d stores bound %q, trie run tops at %q", addr, b.Bound(), want)
		}
		if b.Len() > f.cfg.Capacity {
			return fmt.Errorf("core: bucket %d holds %d > b=%d records", addr, b.Len(), f.cfg.Capacity)
		}
		total += b.Len()
		for i := 0; i < b.Len(); i++ {
			k := b.At(i).Key
			if prevKey != "" && k <= prevKey {
				return fmt.Errorf("core: key order violated: %q (bucket %d) after %q", k, addr, prevKey)
			}
			prevKey = k
			res := f.trie.Search(k)
			if res.Leaf.IsNil() || res.Leaf.Addr() != addr {
				return fmt.Errorf("core: key %q stored in bucket %d but routes to %s", k, addr, res.Leaf)
			}
		}
	}
	if total != f.nkeys {
		return fmt.Errorf("core: %d records stored, counter says %d", total, f.nkeys)
	}
	// Every allocated bucket must either be reachable from the trie or
	// be an empty orphan (the harmless leak a failed Free leaves behind;
	// Recover sweeps those). An unreachable bucket with records is lost
	// data.
	reachable := len(seen)
	for addr := int32(0); addr < f.st.MaxAddr(); addr++ {
		if seen[addr] {
			continue
		}
		b, err := f.st.Read(addr)
		if err != nil {
			continue // freed slot
		}
		if b.Len() > 0 && !f.abandoned[addr] {
			return fmt.Errorf("core: bucket %d holds %d records but is unreachable from the trie", addr, b.Len())
		}
		reachable++ // tolerated orphan (empty, or abandoned by a failed op)
	}
	if reachable != f.st.Buckets() {
		return fmt.Errorf("core: %d buckets accounted for, store has %d", reachable, f.st.Buckets())
	}
	return nil
}
