package core

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// knuthWords are the 31 most used English words of /KNU73/, the data of
// the paper's Fig 1, in frequency order (the paper's insertion order).
var knuthWords = []string{
	"the", "of", "and", "to", "a", "in", "that", "is", "i", "it",
	"for", "as", "with", "was", "his", "he", "be", "not", "by", "but",
	"have", "you", "which", "are", "on", "or", "her", "had", "at", "from",
	"this",
}

func newFile(t *testing.T, cfg Config) *File {
	t.Helper()
	f, err := New(cfg, store.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustPut(t *testing.T, f *File, key string) {
	t.Helper()
	if _, err := f.Put(key, []byte(key)); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg, err := Config{Capacity: 4}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SplitPos != 3 { // INT(b/2 + 1), the paper's Fig 1 value
		t.Errorf("default SplitPos = %d, want 3", cfg.SplitPos)
	}
	if cfg.BoundPos != 5 {
		t.Errorf("default BoundPos = %d, want b+1 = 5", cfg.BoundPos)
	}
	if cfg.Merge != MergeSiblings {
		t.Errorf("default merge for basic mode = %v", cfg.Merge)
	}
	cfg, err = Config{Capacity: 10, Mode: trie.ModeTHCL}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.SplitPos != 6 || cfg.Merge != MergeGuaranteed {
		t.Errorf("THCL defaults: %+v", cfg)
	}
}

func TestConfigErrors(t *testing.T) {
	bad := []Config{
		{Capacity: 1},
		{Capacity: 4, SplitPos: 5},
		{Capacity: 4, SplitPos: -1},
		{Capacity: 4, Mode: trie.ModeTHCL, SplitPos: 3, BoundPos: 3},
		{Capacity: 4, Mode: trie.ModeTHCL, BoundPos: 99},
		{Capacity: 4, Redistribution: RedistBoth}, // basic mode
		{Capacity: 4, Merge: MergeGuaranteed},     // basic mode
	}
	for i, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestEmptyFile(t *testing.T) {
	f := newFile(t, Config{Capacity: 4})
	if _, err := f.Get("absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get on empty file: %v", err)
	}
	if err := f.Delete("absent"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete on empty file: %v", err)
	}
	if _, err := f.Min(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Min on empty file: %v", err)
	}
	if _, err := f.Max(); !errors.Is(err, ErrNotFound) {
		t.Errorf("Max on empty file: %v", err)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKeyValidation(t *testing.T) {
	f := newFile(t, Config{Capacity: 4})
	for _, bad := range []string{"", "trailing ", "\x01ctl"} {
		if _, err := f.Put(bad, nil); err == nil {
			t.Errorf("Put(%q) accepted", bad)
		}
		if _, err := f.Get(bad); err == nil {
			t.Errorf("Get(%q) accepted", bad)
		}
		if err := f.Delete(bad); err == nil {
			t.Errorf("Delete(%q) accepted", bad)
		}
	}
}

// TestFig1ExampleFile loads the paper's Fig 1 file: the 31 Knuth words,
// b = 4, m = 3, basic method.
func TestFig1ExampleFile(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, SplitPos: 3})
	for _, w := range knuthWords {
		mustPut(t, f, w)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.Keys != 31 {
		t.Fatalf("keys = %d", st.Keys)
	}
	// The paper's file has buckets 0..10 (11 buckets; ten
	// successor-predecessor couples). The exact count depends on the
	// insertion order of Fig 1a, which the paper only shows partially;
	// with frequency order we must land close.
	if st.Buckets < 9 || st.Buckets > 13 {
		t.Errorf("buckets = %d, expected around 11\n%s", st.Buckets, f.trie.String())
	}
	// Every word is found, no other word is.
	for _, w := range knuthWords {
		if v, err := f.Get(w); err != nil || string(v) != w {
			t.Errorf("Get(%q) = %q, %v", w, v, err)
		}
	}
	for _, w := range []string{"hat", "zebra", "an", "b"} {
		if _, err := f.Get(w); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get(%q) = %v, want ErrNotFound", w, err)
		}
	}
	// The trie has exactly cells = leaves - 1 and load in the basic
	// random band.
	if st.Load < 0.5 || st.Load > 0.9 {
		t.Errorf("load = %.3f", st.Load)
	}
	t.Logf("Fig 1 file: %v\ntrie: %s", st, f.trie.String())
}

// TestFig1RangeScan reproduces the ordered-file property on the word file.
func TestFig1RangeScan(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, SplitPos: 3})
	for _, w := range knuthWords {
		mustPut(t, f, w)
	}
	var got []string
	if err := f.Range("h", "j", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"had", "have", "he", "her", "his", "i", "in", "is", "it"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("range [h,j] = %v, want %v", got, want)
	}
	// Full scan is the sorted key set.
	got = nil
	f.Range("a", "", func(k string, _ []byte) bool { got = append(got, k); return true })
	sorted := append([]string(nil), knuthWords...)
	sort.Strings(sorted)
	if fmt.Sprint(got) != fmt.Sprint(sorted) {
		t.Errorf("full scan = %v", got)
	}
}

func configsUnderTest() map[string]Config {
	return map[string]Config{
		"basic-b4":        {Capacity: 4},
		"basic-b8-m8":     {Capacity: 8, SplitPos: 8},
		"thcl-b4":         {Capacity: 4, Mode: trie.ModeTHCL},
		"thcl-b8-det":     {Capacity: 8, Mode: trie.ModeTHCL, SplitPos: 4, BoundPos: 5},
		"thcl-b6-redist":  {Capacity: 6, Mode: trie.ModeTHCL, Redistribution: RedistBoth},
		"thcl-collapse":   {Capacity: 5, Mode: trie.ModeTHCL, Redistribution: RedistSuccessor, CollapseOnMerge: true},
		"thcl-b4-ascend":  {Capacity: 4, Mode: trie.ModeTHCL, SplitPos: 4},
		"basic-b5-m1":     {Capacity: 5, SplitPos: 1},
		"thcl-b5-descend": {Capacity: 5, Mode: trie.ModeTHCL, SplitPos: 1, BoundPos: 2},
	}
}

func modelKey(rng *rand.Rand) string {
	n := 1 + rng.Intn(7)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(5))
	}
	return string(b)
}

// TestFileAgainstModel shadows random Put/Get/Delete/Range traffic with a
// map + sorted-slice model across every configuration.
func TestFileAgainstModel(t *testing.T) {
	for name, cfg := range configsUnderTest() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			f := newFile(t, cfg)
			model := map[string]string{}
			for step := 0; step < 4000; step++ {
				k := modelKey(rng)
				switch op := rng.Intn(10); {
				case op < 5: // put
					v := fmt.Sprintf("v%d", step)
					replaced, err := f.Put(k, []byte(v))
					if err != nil {
						t.Fatalf("step %d Put(%q): %v", step, k, err)
					}
					if _, had := model[k]; had != replaced {
						t.Fatalf("step %d Put(%q): replaced=%v, model %v", step, k, replaced, had)
					}
					model[k] = v
				case op < 8: // get
					v, err := f.Get(k)
					want, ok := model[k]
					switch {
					case ok && (err != nil || string(v) != want):
						t.Fatalf("step %d Get(%q) = %q, %v; want %q", step, k, v, err, want)
					case !ok && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Get(%q): %v, want ErrNotFound", step, k, err)
					}
				case op < 9: // delete
					err := f.Delete(k)
					_, ok := model[k]
					switch {
					case ok && err != nil:
						t.Fatalf("step %d Delete(%q): %v", step, k, err)
					case !ok && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Delete(%q): %v, want ErrNotFound", step, k, err)
					}
					delete(model, k)
				default: // range
					lo, hi := modelKey(rng), modelKey(rng)
					if hi < lo {
						lo, hi = hi, lo
					}
					var got []string
					if err := f.Range(lo, hi, func(k string, _ []byte) bool {
						got = append(got, k)
						return true
					}); err != nil {
						t.Fatal(err)
					}
					var want []string
					for mk := range model {
						if mk >= lo && mk <= hi {
							want = append(want, mk)
						}
					}
					sort.Strings(want)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("step %d Range(%q,%q) = %v, want %v", step, lo, hi, got, want)
					}
				}
				if step%500 == 499 {
					if err := f.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if f.Len() != len(model) {
				t.Fatalf("file has %d keys, model %d", f.Len(), len(model))
			}
		})
	}
}

// randomKeys returns n distinct pseudo-random keys.
func randomKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		l := 3 + rng.Intn(8)
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		k := string(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func loadFile(t *testing.T, cfg Config, keys []string) *File {
	t.Helper()
	f := newFile(t, cfg)
	for _, k := range keys {
		mustPut(t, f, k)
	}
	return f
}

// TestRandomInsertLoad reproduces Section 3.1: ~70% bucket load under
// random insertions with the middle split position, both methods.
func TestRandomInsertLoad(t *testing.T) {
	keys := randomKeys(1, 4000)
	for _, cfg := range []Config{
		{Capacity: 10},
		{Capacity: 20},
		{Capacity: 10, Mode: trie.ModeTHCL},
		{Capacity: 20, Mode: trie.ModeTHCL},
	} {
		f := loadFile(t, cfg, keys)
		st := f.Stats()
		if st.Load < 0.62 || st.Load > 0.78 {
			t.Errorf("%v b=%d: random load %.3f outside [0.62, 0.78]", cfg.Mode, cfg.Capacity, st.Load)
		}
		if cfg.Mode == trie.ModeBasic && st.NilLeafShare > 0.01 {
			t.Errorf("b=%d: nil-leaf share %.4f > 1%% under random insertions", cfg.Capacity, st.NilLeafShare)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestAscendingCompactTHCL reproduces the paper's headline: d = 0 (m = b,
// deterministic bound) yields a 100%-loaded file under ascending
// insertions with THCL (Fig 10), which the basic method cannot do (Fig 5).
func TestAscendingCompactTHCL(t *testing.T) {
	keys := randomKeys(2, 1500)
	sort.Strings(keys)
	b := 10
	f := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: b}, keys)
	st := f.Stats()
	// All buckets except the currently filling one hold exactly b keys.
	full := float64(st.Keys) / float64(b*(st.Buckets-1))
	if full < 0.999 {
		t.Errorf("compact ascending: closed-bucket load %.4f, want 1.0 (stats %v)", full, st)
	}
	if st.Load < 0.99 {
		t.Errorf("compact ascending: load %.4f, want ~1.0", st.Load)
	}
	if st.NilLeaves != 0 {
		t.Errorf("THCL created %d nil leaves", st.NilLeaves)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Basic method, same parameters (Fig 5): load stays clearly below.
	fb := loadFile(t, Config{Capacity: b, SplitPos: b}, keys)
	stb := fb.Stats()
	if stb.Load > 0.85 {
		t.Errorf("basic ascending m=b: load %.3f, paper expects 60-80%%", stb.Load)
	}
	if stb.NilLeaves == 0 {
		t.Error("basic ascending m=b should create nil leaves (Fig 5)")
	}
	t.Logf("ascending b=%d: THCL load=%.3f M=%d; basic load=%.3f M=%d nil=%d",
		b, st.Load, st.TrieCells, stb.Load, stb.TrieCells, stb.NilLeaves)
}

// TestDescendingCompactTHCL reproduces Fig 8 / Fig 11: descending
// insertions with m = 1 and the bounding key at m+1 give a 100% load;
// bounding at m+1 with the middle m gives exactly 50%.
func TestDescendingCompactTHCL(t *testing.T) {
	keys := randomKeys(3, 1500)
	sort.Sort(sort.Reverse(sort.StringSlice(keys)))
	b := 10

	f := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: 1, BoundPos: 2}, keys)
	st := f.Stats()
	full := float64(st.Keys) / float64(b*st.Buckets)
	if full < 0.95 {
		t.Errorf("compact descending: load %.4f, want ~1.0 (%v)", full, st)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Fig 8 variant: the usual middle split key m = INT(b/2+1) with the
	// bounding key right above it: every split moves exactly
	// b+1-m = b/2 keys into the new bucket, pinning the load at 50%.
	m := b/2 + 1
	f2 := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1}, keys)
	st2 := f2.Stats()
	if st2.Load < 0.45 || st2.Load > 0.56 {
		t.Errorf("controlled descending: load %.3f, want ~0.50 (%v)", st2.Load, st2)
	}

	// Basic method with m=1 (Fig 6): split randomness keeps load under
	// 100%, typically 60-80%.
	f3 := loadFile(t, Config{Capacity: b, SplitPos: 1}, keys)
	st3 := f3.Stats()
	if st3.Load > 0.9 {
		t.Errorf("basic descending m=1: load %.3f, paper expects 60-80%%", st3.Load)
	}
	t.Logf("descending b=%d: THCL(1,2) load=%.3f; THCL(%d,%d) load=%.3f; basic(m=1) load=%.3f",
		b, st.Load, m, m+1, st2.Load, st3.Load)
}

// TestGuaranteed50Unexpected reproduces Section 4.5: deterministic middle
// splits guarantee 50% under ordered insertions of either direction, for
// any b.
func TestGuaranteed50Unexpected(t *testing.T) {
	keys := randomKeys(4, 1200)
	sort.Strings(keys)
	desc := append([]string(nil), keys...)
	sort.Sort(sort.Reverse(sort.StringSlice(desc)))
	for _, b := range []int{6, 10, 20} {
		// Deterministic middle splits: closed buckets keep m keys under
		// ascending insertions and receive b+1-m under descending ones,
		// so both directions are guaranteed at least ~50% and approach
		// 50% as b grows.
		m := b / 2
		cfg := Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1}
		hi := 0.5 + 2.0/float64(b) + 0.03
		fa := loadFile(t, cfg, keys)
		fd := loadFile(t, cfg, desc)
		la, ld := fa.Stats().Load, fd.Stats().Load
		if la < 0.47 || la > hi {
			t.Errorf("b=%d ascending deterministic: load %.3f outside [0.47, %.3f]", b, la, hi)
		}
		if ld < 0.47 || ld > hi {
			t.Errorf("b=%d descending deterministic: load %.3f outside [0.47, %.3f]", b, ld, hi)
		}
		t.Logf("b=%d deterministic middle: a_a=%.3f a_d=%.3f", b, la, ld)
	}
}

// TestUnexpectedOrderedBands reproduces Section 3.2: with the middle split
// position, ascending load lands in 60-73% (beating a B-tree's 50%) and
// descending in 40-55%.
func TestUnexpectedOrderedBands(t *testing.T) {
	keys := randomKeys(5, 2500)
	sort.Strings(keys)
	desc := append([]string(nil), keys...)
	sort.Sort(sort.Reverse(sort.StringSlice(desc)))
	for _, b := range []int{10, 20, 50} {
		fa := loadFile(t, Config{Capacity: b}, keys)
		la := fa.Stats().Load
		if la < 0.55 || la > 0.78 {
			t.Errorf("b=%d unexpected ascending: load %.3f, paper band 60-73%%", b, la)
		}
		fd := loadFile(t, Config{Capacity: b}, desc)
		ld := fd.Stats().Load
		if ld < 0.36 || ld > 0.60 {
			t.Errorf("b=%d unexpected descending: load %.3f, paper band 40-55%%", b, ld)
		}
		t.Logf("b=%d: a_a=%.3f a_d=%.3f", b, la, ld)
	}
}

// TestRedistributionRaisesLoad reproduces Section 4.4/4.5: redistribution
// lifts the random-insertion load above the plain ~70%.
func TestRedistributionRaisesLoad(t *testing.T) {
	keys := randomKeys(6, 3000)
	b := 10
	plain := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL}, keys)
	redist := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, Redistribution: RedistBoth}, keys)
	lp, lr := plain.Stats().Load, redist.Stats().Load
	if lr <= lp {
		t.Errorf("redistribution load %.3f not above plain %.3f", lr, lp)
	}
	if lr < 0.70 {
		t.Errorf("redistribution load %.3f below 0.70", lr)
	}
	if redist.Redistributions() == 0 {
		t.Error("no redistributions happened")
	}
	if err := redist.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("random b=%d: plain=%.3f redist=%.3f (redistributions=%d of %d splits)",
		b, lp, lr, redist.Redistributions(), redist.Splits())
}

// TestRedistributionSorted reproduces the claim that redistribution raises
// unexpected-ordered loads toward B-tree-with-redistribution levels.
func TestRedistributionSorted(t *testing.T) {
	keys := randomKeys(7, 2000)
	sort.Strings(keys)
	b := 10
	plain := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL}, keys)
	redist := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, Redistribution: RedistPredecessor}, keys)
	lp, lr := plain.Stats().Load, redist.Stats().Load
	if lr <= lp {
		t.Errorf("sorted redistribution load %.3f not above plain %.3f", lr, lp)
	}
	if err := redist.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ascending b=%d: plain=%.3f redist-pred=%.3f", b, lp, lr)
}

// TestDeletionGuarantee reproduces Section 4.3: THCL guarantees at least
// 50% bucket load under deletions (every bucket but at most the single
// survivor).
func TestDeletionGuarantee(t *testing.T) {
	keys := randomKeys(8, 2000)
	b := 8
	// Deterministic splits (bounding key next to the split key) are what
	// make the 50% bound hold file-wide: partly random splits may create
	// buckets under b/2 regardless of deletions (Section 4.2).
	f := loadFile(t, Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: 5, BoundPos: 6}, keys)
	rng := rand.New(rand.NewSource(8))
	perm := rng.Perm(len(keys))
	for i, pi := range perm {
		if i == len(keys)-10 {
			break // keep a few keys
		}
		if err := f.Delete(keys[pi]); err != nil {
			t.Fatalf("Delete(%q): %v", keys[pi], err)
		}
		if i%250 == 0 {
			if err := f.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", i, err)
			}
			if err := checkMinLoad(f, b); err != nil {
				t.Fatalf("after %d deletes: %v", i, err)
			}
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := checkMinLoad(f, b); err != nil {
		t.Error(err)
	}
}

// checkMinLoad verifies every bucket holds at least b/2 records, except
// when the file has a single bucket.
func checkMinLoad(f *File, b int) error {
	if f.Stats().Buckets <= 1 {
		return nil
	}
	seen := map[int32]bool{}
	for _, lp := range f.trie.InorderLeaves() {
		if lp.Leaf.IsNil() || seen[lp.Leaf.Addr()] {
			continue
		}
		seen[lp.Leaf.Addr()] = true
		bk, err := f.st.Read(lp.Leaf.Addr())
		if err != nil {
			return err
		}
		if 2*bk.Len() < b {
			return fmt.Errorf("bucket %d holds %d < b/2 = %d records", lp.Leaf.Addr(), bk.Len(), b/2)
		}
	}
	return nil
}

// TestDeletionBasic drives the basic method's sibling merges.
func TestDeletionBasic(t *testing.T) {
	keys := randomKeys(9, 800)
	f := loadFile(t, Config{Capacity: 6}, keys)
	before := f.Stats().Buckets
	rng := rand.New(rand.NewSource(9))
	perm := rng.Perm(len(keys))
	for _, pi := range perm[:700] {
		if err := f.Delete(keys[pi]); err != nil {
			t.Fatalf("Delete(%q): %v", keys[pi], err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	after := f.Stats().Buckets
	if after >= before {
		t.Errorf("file did not shrink: %d -> %d buckets", before, after)
	}
	// The 100 survivors are all still reachable.
	for _, pi := range perm[700:] {
		if _, err := f.Get(keys[pi]); err != nil {
			t.Errorf("survivor %q lost: %v", keys[pi], err)
		}
	}
}

// TestDeleteToEmpty empties a file completely and rebuilds it.
func TestDeleteToEmpty(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 4},
		{Capacity: 4, Mode: trie.ModeTHCL},
	} {
		f := newFile(t, cfg)
		for _, w := range knuthWords {
			mustPut(t, f, w)
		}
		for _, w := range knuthWords {
			if err := f.Delete(w); err != nil {
				t.Fatalf("%v Delete(%q): %v", cfg.Mode, w, err)
			}
		}
		if f.Len() != 0 {
			t.Fatalf("%v: %d keys remain", cfg.Mode, f.Len())
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", cfg.Mode, err)
		}
		// Rebuild on the emptied file.
		for _, w := range knuthWords {
			mustPut(t, f, w)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("%v rebuild: %v", cfg.Mode, err)
		}
	}
}

// TestAccessCounts verifies the paper's access-cost model: one bucket read
// per successful search (trie in core), zero for a search ending on a nil
// leaf, 1R+1W for a non-splitting insertion.
func TestAccessCounts(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, SplitPos: 4})
	// Force nil leaves via an ascending multi-digit split.
	for _, k := range []string{"oshd", "osmb", "oszb", "oszh", "oszr"} {
		mustPut(t, f, k)
	}
	if f.Stats().NilLeaves == 0 {
		t.Fatal("setup: expected nil leaves")
	}
	st := f.Store()
	st.ResetCounters()
	if _, err := f.Get("oszb"); err != nil {
		t.Fatal(err)
	}
	if c := st.Counters(); c.Reads != 1 || c.Writes != 0 {
		t.Errorf("successful search cost %v, want 1 read", c)
	}
	st.ResetCounters()
	// "ota" falls on a nil leaf (Fig 5): unsuccessful search, no access.
	if _, err := f.Get("ota"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(ota): %v", err)
	}
	if c := st.Counters(); c.Accesses() != 0 {
		t.Errorf("nil-leaf search cost %v, want none", c)
	}
	st.ResetCounters()
	mustPut(t, f, "oszj") // lands in the one-record bucket: no split
	if c := st.Counters(); c.Reads != 1 || c.Writes != 1 {
		t.Errorf("plain insertion cost %v, want 1R+1W", c)
	}
}

// TestPersistenceRoundTrip saves a file (FileStore + SaveMeta) and reopens
// it.
func TestPersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fs, err := store.CreateFile(filepath.Join(dir, "buckets.th"), 4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Capacity: 8, Mode: trie.ModeTHCL, SplitPos: 4, BoundPos: 5}
	f, err := New(cfg, fs)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(11, 500)
	for _, k := range keys {
		if _, err := f.Put(k, []byte("v:"+k)); err != nil {
			t.Fatal(err)
		}
	}
	meta := f.SaveMeta()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := store.OpenFile(filepath.Join(dir, "buckets.th"))
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	f2, err := Open(meta, fs2)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Len() != len(keys) || f2.Splits() != f.Splits() {
		t.Fatalf("reopened: %d keys %d splits; want %d/%d", f2.Len(), f2.Splits(), len(keys), f.Splits())
	}
	if f2.Config().SplitPos != 4 || f2.Config().BoundPos != 5 {
		t.Fatalf("config lost: %+v", f2.Config())
	}
	for _, k := range keys {
		v, err := f2.Get(k)
		if err != nil || string(v) != "v:"+k {
			t.Fatalf("reopened Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := f2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The reopened file keeps working.
	if _, err := f2.Put("zzz-new", nil); err != nil {
		t.Fatal(err)
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(nil, store.NewMem()); err == nil {
		t.Error("nil meta accepted")
	}
	if _, err := Open(make([]byte, 40), store.NewMem()); err == nil {
		t.Error("zero meta accepted")
	}
	f := newFile(t, Config{Capacity: 4})
	meta := f.SaveMeta()
	meta[0] ^= 0xFF
	if _, err := Open(meta, store.NewMem()); err == nil {
		t.Error("corrupt magic accepted")
	}
}

func TestNewOnNonEmptyStore(t *testing.T) {
	st := store.NewMem()
	if _, err := st.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Capacity: 4}, st); err == nil {
		t.Error("New on a non-empty store accepted")
	}
}

func TestMinMax(t *testing.T) {
	f := newFile(t, Config{Capacity: 4})
	for _, w := range knuthWords {
		mustPut(t, f, w)
	}
	min, err := f.Min()
	if err != nil || min != "a" {
		t.Errorf("Min = %q, %v", min, err)
	}
	max, err := f.Max()
	if err != nil || max != "you" {
		t.Errorf("Max = %q, %v", max, err)
	}
}

// TestTrieGrowthRate reproduces the Section 4.5 figures: the growth rate
// s = M/splits stays near 1 cell per split for random insertions and
// within the paper's 1.6-2.13 band for fully compact ascending loads.
func TestTrieGrowthRate(t *testing.T) {
	keys := randomKeys(12, 3000)
	f := loadFile(t, Config{Capacity: 10}, keys)
	st := f.Stats()
	if st.GrowthRate < 0.99 || st.GrowthRate > 1.15 {
		t.Errorf("random growth rate %.3f, want ~1", st.GrowthRate)
	}
	sort.Strings(keys)
	fc := loadFile(t, Config{Capacity: 10, Mode: trie.ModeTHCL, SplitPos: 10}, keys)
	sc := fc.Stats()
	if sc.GrowthRate < 1.2 || sc.GrowthRate > 2.6 {
		t.Errorf("compact ascending growth rate %.3f, paper band ~1.6-2.13", sc.GrowthRate)
	}
	t.Logf("growth rates: random=%.3f compact-ascending=%.3f", st.GrowthRate, sc.GrowthRate)
}

func TestValuesRoundTrip(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, Mode: trie.ModeTHCL})
	keys := randomKeys(13, 300)
	for i, k := range keys {
		if _, err := f.Put(k, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, err := f.Get(k)
		if err != nil || string(v) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	// Overwrites keep the count stable.
	n := f.Len()
	if _, err := f.Put(keys[0], []byte("new")); err != nil {
		t.Fatal(err)
	}
	if f.Len() != n {
		t.Errorf("overwrite changed Len: %d -> %d", n, f.Len())
	}
	if v, _ := f.Get(keys[0]); string(v) != "new" {
		t.Errorf("overwrite lost: %q", v)
	}
}

// TestFig1Couples pins the paper's Section 3.3 merge arithmetic on the
// real example file: ten successive couples, four of them siblings,
// rotations lift the mergeable count to eight, and the couples (9,4) and
// (3,2) stay blocked by logical ancestorship.
func TestFig1Couples(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, SplitPos: 3})
	for _, w := range knuthWords {
		mustPut(t, f, w)
	}
	couples := f.Trie().Couples()
	if len(couples) != 10 {
		t.Fatalf("%d couples, want 10", len(couples))
	}
	siblings, rotatable := 0, 0
	blocked := map[[2]int32]bool{}
	for _, c := range couples {
		if c.Siblings {
			siblings++
		}
		if c.Rotatable {
			rotatable++
		} else {
			blocked[[2]int32{c.Left.Addr(), c.Right.Addr()}] = true
		}
	}
	t.Logf("siblings=%d rotatable=%d blocked=%v", siblings, rotatable, blocked)
	if siblings != 4 {
		t.Errorf("siblings = %d, paper says 4", siblings)
	}
	// The paper reports 8 rotatable couples; with our frequency-order
	// insertions (Fig 1a is only partially shown) a third couple (8,6)
	// is blocked too: its spine node (e,1) sits above bucket 8 and
	// lifting it over (h,0) would change its boundary from "he" to
	// "i"-prefixed — the rotation-validity property tests prove such a
	// lift breaks routing, so 7 is the correct count for this file.
	if rotatable < 7 || rotatable > 8 {
		t.Errorf("rotatable = %d, paper says 8 (7 expected for this insertion order)", rotatable)
	}
	if !blocked[[2]int32{9, 4}] || !blocked[[2]int32{3, 2}] {
		t.Errorf("blocked couples %v, paper says (9,4) and (2,3)", blocked)
	}
}

// TestMergeRotationsPolicy: the Section 3.3 refinement lets the basic
// method shrink further than sibling-only merging on the same deletion
// stream, with all invariants intact.
func TestMergeRotationsPolicy(t *testing.T) {
	keys := randomKeys(37, 1500)
	rng := rand.New(rand.NewSource(37))
	perm := rng.Perm(len(keys))

	run := func(policy MergePolicy) *File {
		f := newFile(t, Config{Capacity: 8, Merge: policy})
		for _, k := range keys {
			mustPut(t, f, k)
		}
		for _, pi := range perm[:1350] {
			if err := f.Delete(keys[pi]); err != nil {
				t.Fatalf("Delete(%q): %v", keys[pi], err)
			}
		}
		if err := f.CheckInvariants(); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		for _, pi := range perm[1350:] {
			if _, err := f.Get(keys[pi]); err != nil {
				t.Fatalf("policy %v: survivor %q lost: %v", policy, keys[pi], err)
			}
		}
		return f
	}
	plain := run(MergeSiblings)
	rot := run(MergeRotations)
	bp, br := plain.Stats().Buckets, rot.Stats().Buckets
	if br > bp {
		t.Errorf("rotations left more buckets (%d) than sibling-only (%d)", br, bp)
	}
	t.Logf("after 90%% deletions: sibling-only %d buckets (load %.3f), rotations %d buckets (load %.3f)",
		bp, plain.Stats().Load, br, rot.Stats().Load)
}

// TestMergeRotationsConfigGuard: the policy is basic-TH only.
func TestMergeRotationsConfigGuard(t *testing.T) {
	if _, err := (Config{Capacity: 4, Mode: trie.ModeTHCL, Merge: MergeRotations}).withDefaults(); err == nil {
		t.Error("rotation merging accepted under THCL")
	}
}

// TestTombstoneMerges: the Section 2.4 concurrency-friendly deletion mode
// behaves identically to physical removal at the API level, accumulates
// dead cells instead of moving live ones, and survives persistence (which
// vacuums).
func TestTombstoneMerges(t *testing.T) {
	keys := randomKeys(91, 800)
	f := newFile(t, Config{Capacity: 6, TombstoneMerges: true})
	for _, k := range keys {
		mustPut(t, f, k)
	}
	rng := rand.New(rand.NewSource(91))
	perm := rng.Perm(len(keys))
	for _, pi := range perm[:700] {
		if err := f.Delete(keys[pi]); err != nil {
			t.Fatalf("Delete(%q): %v", keys[pi], err)
		}
	}
	st := f.Stats()
	if st.DeadCells == 0 {
		t.Fatal("no tombstones accumulated")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, pi := range perm[700:] {
		if _, err := f.Get(keys[pi]); err != nil {
			t.Fatalf("survivor %q lost: %v", keys[pi], err)
		}
	}
	// Persistence round-trips through a vacuumed serialization.
	g, err := Open(f.SaveMeta(), f.Store())
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats().DeadCells != 0 {
		t.Errorf("reopened file kept %d tombstones", g.Stats().DeadCells)
	}
	if g.Stats().TrieCells != st.TrieCells {
		t.Errorf("live cells changed across reopen: %d -> %d", st.TrieCells, g.Stats().TrieCells)
	}
	for _, pi := range perm[700:] {
		if _, err := g.Get(keys[pi]); err != nil {
			t.Fatalf("reopened survivor %q lost: %v", keys[pi], err)
		}
	}
}

// TestWorstCaseLinearTrie exercises the Section 5 worst case: adversarial
// keys sharing ever-deeper prefixes drive the trie toward a linear shape
// with O(M) in-memory search — which the paper notes is not catastrophic
// (search stays correct; the time is a fraction of a disk access) and
// which balancing repairs.
func TestWorstCaseLinearTrie(t *testing.T) {
	f := newFile(t, Config{Capacity: 2, Mode: trie.ModeTHCL})
	// Keys "z", "zz", "zzz", ...: every split string extends the shared
	// prefix by one digit.
	prefix := ""
	var all []string
	for i := 0; i < 120; i++ {
		prefix += "z"
		all = append(all, prefix)
		mustPut(t, f, prefix)
	}
	st := f.Stats()
	if st.Depth < st.TrieCells/2 {
		t.Fatalf("expected a near-linear trie; depth %d of %d cells", st.Depth, st.TrieCells)
	}
	// Searches stay correct despite the degenerate shape.
	for _, k := range all {
		if _, err := f.Get(k); err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Balancing repairs what it can without changing semantics. A pure
	// logical-child chain is rotation-rigid, so depth may not improve on
	// this adversarial input — the equivalence is what matters.
	bal := f.Trie().Balanced()
	if err := bal.Check(0); err != nil {
		t.Fatal(err)
	}
	for _, k := range all {
		if bal.Search(k).Leaf != f.Trie().Search(k).Leaf {
			t.Fatalf("balanced trie routes %q differently", k)
		}
	}
	t.Logf("adversarial chain: %d cells, depth %d (balanced: %d)", st.TrieCells, st.Depth, bal.Depth())
}

// TestStorageFaultsSurface injects storage failures at every depth of an
// insert workload and checks the file returns the error (wrapped) rather
// than panicking, and that reads of unaffected keys still work after the
// store recovers.
func TestStorageFaultsSurface(t *testing.T) {
	for name, cfg := range configsUnderTest() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			keys := randomKeys(55, 400)
			for _, budget := range []int64{0, 1, 3, 10, 50} {
				fs := store.NewFault(store.NewMem())
				f, err := New(cfg, fs)
				if err != nil {
					t.Fatal(err)
				}
				for _, k := range keys[:200] {
					mustPut(t, f, k)
				}
				fs.Arm(budget, true, true)
				sawErr := false
				for _, k := range keys[200:] {
					if _, err := f.Put(k, nil); err != nil {
						if !errors.Is(err, store.ErrInjected) {
							t.Fatalf("unexpected error type: %v", err)
						}
						sawErr = true
						break
					}
				}
				if !sawErr {
					// Deletions then: merge maintenance also hits the store.
					for _, k := range keys[:200] {
						if err := f.Delete(k); err != nil {
							if !errors.Is(err, store.ErrInjected) {
								t.Fatalf("unexpected error type: %v", err)
							}
							sawErr = true
							break
						}
					}
				}
				if !sawErr {
					t.Fatalf("budget %d: no failure surfaced", budget)
				}
				fs.Disarm()
				// The failed operation aborted atomically: the whole
				// file (store included) is consistent.
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("budget %d: invariants after fault: %v", budget, err)
				}
				// And the file keeps working.
				mustPut(t, f, "zzzz-after-fault")
			}
		})
	}
}

// TestStorageFaultDuringDelete: deletion-path failures surface too.
func TestStorageFaultDuringDelete(t *testing.T) {
	keys := randomKeys(56, 300)
	fs := store.NewFault(store.NewMem())
	f, err := New(Config{Capacity: 4, Mode: trie.ModeTHCL}, fs)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		mustPut(t, f, k)
	}
	fs.Arm(2, true, true)
	sawErr := false
	for _, k := range keys {
		if err := f.Delete(k); err != nil {
			if errors.Is(err, store.ErrInjected) {
				sawErr = true
				break
			}
			t.Fatalf("unexpected: %v", err)
		}
	}
	if !sawErr {
		t.Fatal("no deletion failure surfaced")
	}
}
