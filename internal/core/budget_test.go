package core

import (
	"fmt"
	"testing"

	"triehash/internal/format"
	"triehash/internal/store"
	"triehash/internal/trie"
)

// budgetLeaves walks the trie and returns each real leaf's decoded bucket.
func budgetLeaves(t *testing.T, f *File) []struct {
	addr int32
	enc  int
} {
	t.Helper()
	var out []struct {
		addr int32
		enc  int
	}
	for _, lp := range f.trie.InorderLeaves() {
		if lp.Leaf.IsNil() {
			continue
		}
		b, err := f.st.Read(lp.Leaf.Addr())
		if err != nil {
			t.Fatalf("read leaf %d: %v", lp.Leaf.Addr(), err)
		}
		out = append(out, struct {
			addr int32
			enc  int
		}{lp.Leaf.Addr(), b.EncodedLen(f.cfg.Format)})
	}
	return out
}

// TestByteBudgetGate grows and shrinks a file with the byte gate armed at
// both encoding versions and asserts the invariant the gate exists for:
// no page's exact encoded size ever exceeds the budget, through
// count-triggered splits, byte-triggered splits (values large enough that
// fewer than Capacity records fill a page) and the merges on the way back
// down. The v2 run packs more records per page but must obey the same
// ceiling.
func TestByteBudgetGate(t *testing.T) {
	for _, v := range []format.Version{format.V1, format.V2} {
		t.Run(v.String(), func(t *testing.T) {
			const budget = 240
			f, err := New(Config{
				Capacity:   8,
				Mode:       trie.ModeTHCL,
				Format:     v,
				PageBudget: budget,
			}, store.NewMem())
			if err != nil {
				t.Fatal(err)
			}
			check := func(stage string) {
				t.Helper()
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("%s: invariants: %v", stage, err)
				}
				for _, l := range budgetLeaves(t, f) {
					if l.enc > budget {
						t.Fatalf("%s: leaf %d encodes to %d bytes, budget %d",
							stage, l.addr, l.enc, budget)
					}
				}
			}
			keys := make([]string, 0, 160)
			for i := 0; i < 160; i++ {
				k := fmt.Sprintf("user:%04d", i*7%160)
				keys = append(keys, k)
				// Value sizes cycle 0..47 bytes so some pages fill by count
				// and others by bytes; a few land near the per-record cap.
				val := make([]byte, i%48)
				for j := range val {
					val[j] = byte('a' + i%26)
				}
				if _, err := f.Put(k, val); err != nil {
					t.Fatalf("put %q: %v", k, err)
				}
				if i%20 == 19 {
					check(fmt.Sprintf("after %d puts", i+1))
				}
			}
			check("grown")
			for i, k := range keys {
				if err := f.Delete(k); err != nil {
					t.Fatalf("delete %q: %v", k, err)
				}
				if i%25 == 24 {
					check(fmt.Sprintf("after %d deletes", i+1))
				}
			}
			check("drained")
			if f.Len() != 0 {
				t.Fatalf("drained file still holds %d keys", f.Len())
			}
		})
	}
}

// TestByteBudgetSplitBalance drives the byte-triggered split path with
// heavily skewed record sizes (one giant record among small ones) and
// asserts both halves of every split actually fit — the regression shape
// for the partly-random-bound bug where the realized partition could
// land far from the chosen cut and leave one half over budget.
func TestByteBudgetSplitBalance(t *testing.T) {
	const budget = 240
	f, err := New(Config{
		Capacity:   16,
		Mode:       trie.ModeTHCL,
		Format:     format.V2,
		PageBudget: budget,
	}, store.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, budget/4-12)
	for i := range big {
		big[i] = 'x'
	}
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("%c%c", 'a'+i%26, 'a'+(i*11)%26)
		val := []byte("v")
		if i%5 == 0 {
			val = big
		}
		if _, err := f.Put(k, val); err != nil {
			t.Fatalf("put %q: %v", k, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, l := range budgetLeaves(t, f) {
		if l.enc > budget {
			t.Fatalf("leaf %d encodes to %d bytes, budget %d", l.addr, l.enc, budget)
		}
	}
}
