// Package keys implements the digit-string semantics that trie hashing is
// built on: keys are strings over a finite ordered alphabet of digits, the
// smallest digit ("space") pads short keys during prefix comparison, and
// bucket splits are driven by the shortest distinguishing prefix of the
// split key (the "split string", Algorithm A2 step 1 of the paper).
//
// Throughout this module a digit is one byte and digit order is byte order.
// The minimum digit is configurable per Alphabet; the paper writes it as
// ' ' and denotes the (virtual) maximal digit by '.'.
package keys

import (
	"errors"
	"fmt"
)

// Alphabet describes the ordered digit set keys are drawn from. Only the
// boundaries matter to the algorithms: Min is the paper's "space" digit that
// implicitly pads every key on the right, and Max is the largest digit,
// used as the implicit value of unknown logical-path positions.
type Alphabet struct {
	// Min is the smallest digit. Keys may not end with it (a trailing
	// minimum digit is indistinguishable from the implicit padding).
	Min byte
	// Max is the largest digit.
	Max byte
}

// ASCII is the default alphabet used by the paper's examples: printable
// ASCII with ' ' as the smallest digit and '~' as the largest.
var ASCII = Alphabet{Min: ' ', Max: '~'}

// Binary is the full byte alphabet, suitable for arbitrary binary keys that
// do not end in a zero byte.
var Binary = Alphabet{Min: 0x00, Max: 0xFF}

// ErrEmptyKey is returned by Validate for the empty key.
var ErrEmptyKey = errors.New("keys: empty key")

// Validate reports whether k is a legal key under a: non-empty, every digit
// within [Min, Max], and not ending in the minimum digit.
func (a Alphabet) Validate(k string) error {
	if len(k) == 0 {
		return ErrEmptyKey
	}
	for i := 0; i < len(k); i++ {
		if k[i] < a.Min || k[i] > a.Max {
			return fmt.Errorf("keys: digit %d of %q is outside alphabet [%q, %q]", i, k, a.Min, a.Max)
		}
	}
	if k[len(k)-1] == a.Min {
		return fmt.Errorf("keys: key %q ends with the minimum digit %q", k, a.Min)
	}
	return nil
}

// Digit returns digit j of key k, padding with the minimum digit beyond the
// key's length, as the paper's prefix semantics require.
func (a Alphabet) Digit(k string, j int) byte {
	if j < len(k) {
		return k[j]
	}
	return a.Min
}

// ComparePrefix compares the (i+1)-digit prefixes (x)_i and (y)_i under the
// padded-digit semantics and returns -1, 0 or +1. i must be >= 0.
func (a Alphabet) ComparePrefix(x, y string, i int) int {
	for j := 0; j <= i; j++ {
		dx, dy := a.Digit(x, j), a.Digit(y, j)
		switch {
		case dx < dy:
			return -1
		case dx > dy:
			return 1
		}
	}
	return 0
}

// SplitString implements step 1 of Algorithm A2: it returns the shortest
// prefix (c')_i of the split key c' that is smaller than the equal-length
// prefix of the bounding key bound (the last key c” of the sequence to
// split in basic TH; any chosen key above the split key under THCL split
// control). The returned slice holds the i+1 digits of the split string,
// materializing padding digits if the split key is shorter.
//
// SplitString requires splitKey < bound (as full keys); it panics otherwise,
// since a split where the bounding key does not exceed the split key is a
// caller bug that would corrupt the trie.
func (a Alphabet) SplitString(splitKey, bound string) []byte {
	for i := 0; ; i++ {
		if i >= len(splitKey) && i >= len(bound) {
			panic(fmt.Sprintf("keys: split key %q is not smaller than bounding key %q", splitKey, bound))
		}
		dx, dy := a.Digit(splitKey, i), a.Digit(bound, i)
		if dx < dy {
			s := make([]byte, i+1)
			for j := 0; j <= i; j++ {
				s[j] = a.Digit(splitKey, j)
			}
			return s
		}
		if dx > dy {
			panic(fmt.Sprintf("keys: split key %q is greater than bounding key %q", splitKey, bound))
		}
	}
}

// CommonPrefixLen returns the number of leading digits shared by s and the
// known digits of path. Digits of path beyond its stored length are unknown
// (they stand for the maximal digit) and never match.
func CommonPrefixLen(s, path []byte) int {
	n := len(s)
	if len(path) < n {
		n = len(path)
	}
	for i := 0; i < n; i++ {
		if s[i] != path[i] {
			return i
		}
	}
	return n
}

// ComparePathBounds compares two logical-path bounds. A bound is the known
// digits of a logical path; every digit at or beyond its stored length is
// implicitly the maximal digit. Hence when one bound is a proper prefix of
// the other, the shorter bound is the larger one unless the longer bound
// continues with maximal digits only. It returns -1, 0 or +1. The alphabet
// receiver supplies the maximal digit.
func (a Alphabet) ComparePathBounds(x, y []byte) int {
	n := len(x)
	if len(y) < n {
		n = len(y)
	}
	for i := 0; i < n; i++ {
		switch {
		case x[i] < y[i]:
			return -1
		case x[i] > y[i]:
			return 1
		}
	}
	// Common prefix equal; the one with remaining non-maximal digits is
	// smaller than the other's implicit run of maximal digits.
	for i := n; i < len(x); i++ {
		if x[i] != a.Max {
			return -1
		}
	}
	for i := n; i < len(y); i++ {
		if y[i] != a.Max {
			return 1
		}
	}
	return 0
}

// KeyLEBound reports whether key k falls at or below the logical-path bound
// (k's digits beyond its length pad with the minimum digit; bound digits
// beyond its length are maximal).
func (a Alphabet) KeyLEBound(k string, bound []byte) bool {
	if len(bound) == 0 {
		return true
	}
	return a.PrefixLEPath(k, len(bound)-1, bound)
}

// PrefixLEPath reports whether the (i+1)-digit prefix of key k is <= the
// logical path, where path holds the known digits and any position at or
// beyond len(path) is the maximal digit (hence every digit compares <=).
func (a Alphabet) PrefixLEPath(k string, i int, path []byte) bool {
	for j := 0; j <= i; j++ {
		if j >= len(path) {
			return true // unknown path digit = maximal digit
		}
		d := a.Digit(k, j)
		switch {
		case d < path[j]:
			return true
		case d > path[j]:
			return false
		}
	}
	return true
}
