package keys

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		key string
		ok  bool
	}{
		{"the", true},
		{"a", true},
		{"", false},
		{"ab ", false},    // trailing minimum digit
		{" ab", true},     // leading space is fine
		{"a b", true},     // interior space is fine
		{"ab\x7f", false}, // outside ASCII alphabet
	}
	for _, c := range cases {
		err := ASCII.Validate(c.key)
		if (err == nil) != c.ok {
			t.Errorf("Validate(%q) = %v, want ok=%v", c.key, err, c.ok)
		}
	}
}

func TestValidateBinary(t *testing.T) {
	if err := Binary.Validate("\x00\x01"); err != nil {
		t.Errorf("Binary.Validate(leading zero) = %v, want nil", err)
	}
	if err := Binary.Validate("\x01\x00"); err == nil {
		t.Error("Binary.Validate(trailing zero) = nil, want error")
	}
	if err := Binary.Validate(""); err != ErrEmptyKey {
		t.Errorf("Binary.Validate(empty) = %v, want ErrEmptyKey", err)
	}
}

func TestDigit(t *testing.T) {
	if d := ASCII.Digit("abc", 1); d != 'b' {
		t.Errorf("Digit(abc,1) = %q", d)
	}
	if d := ASCII.Digit("abc", 3); d != ' ' {
		t.Errorf("Digit(abc,3) = %q, want padding space", d)
	}
	if d := Binary.Digit("a", 5); d != 0 {
		t.Errorf("Binary Digit beyond length = %d, want 0", d)
	}
}

func TestComparePrefix(t *testing.T) {
	cases := []struct {
		x, y string
		i    int
		want int
	}{
		{"he", "have", 0, 0}, // h == h
		{"he", "have", 1, 1}, // he > ha
		{"ab", "abc", 1, 0},  // ab == ab
		{"ab", "abc", 2, -1}, // "ab " < "abc"
		{"abc", "ab", 2, 1},  // "abc" > "ab "
		{"x", "x", 10, 0},    // both padded
		{"in", "is", 1, -1},  // n < s
		{"of", "on", 0, 0},   // o == o
	}
	for _, c := range cases {
		if got := ASCII.ComparePrefix(c.x, c.y, c.i); got != c.want {
			t.Errorf("ComparePrefix(%q,%q,%d) = %d, want %d", c.x, c.y, c.i, got, c.want)
		}
	}
}

func TestComparePrefixConsistentWithStrings(t *testing.T) {
	// For i >= max length, ComparePrefix must agree with full string
	// comparison when neither key has trailing spaces.
	f := func(x, y string) bool {
		x = sanitize(x)
		y = sanitize(y)
		i := len(x) + len(y) + 1
		got := ASCII.ComparePrefix(x, y, i)
		want := strings.Compare(x, y)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sanitize maps an arbitrary string into a valid ASCII-alphabet key with no
// trailing spaces (or "k" if it collapses to nothing).
func sanitize(s string) string {
	b := []byte(s)
	for i := range b {
		b[i] = ' ' + b[i]%('~'-' '+1)
	}
	out := strings.TrimRight(string(b), " ")
	if out == "" {
		return "k"
	}
	return out
}

func TestSplitString(t *testing.T) {
	cases := []struct {
		split, bound string
		want         string
	}{
		// Fig 3 of the paper: split key "have", last key "his" -> "ha".
		{"have", "his", "ha"},
		// Differ at first digit.
		{"in", "of", "i"},
		// Split key is a proper prefix of the bound: padded space digit.
		{"ab", "abc", "ab "},
		// Long shared prefix.
		{"oszh", "oszr", "oszh"},
		{"that", "this", "tha"},
	}
	for _, c := range cases {
		got := string(ASCII.SplitString(c.split, c.bound))
		if got != c.want {
			t.Errorf("SplitString(%q,%q) = %q, want %q", c.split, c.bound, got, c.want)
		}
	}
}

func TestSplitStringProperties(t *testing.T) {
	// For any two distinct sanitized keys x < y, the split string s of
	// (x, y) satisfies: (x)_i == s, s < (y)_i (prefix order), and every
	// shorter prefix of x equals the same-length prefix of y.
	f := func(a, b string) bool {
		x, y := sanitize(a), sanitize(b)
		if x == y {
			y = x + "z"
		}
		if x > y {
			x, y = y, x
		}
		s := ASCII.SplitString(x, y)
		i := len(s) - 1
		// s is exactly the padded prefix of x.
		for j := 0; j <= i; j++ {
			if s[j] != ASCII.Digit(x, j) {
				return false
			}
		}
		// Strictly smaller than the bound's prefix at length i+1 ...
		if ASCII.ComparePrefix(x, y, i) != -1 {
			return false
		}
		// ... and not at any shorter length (shortest prefix property).
		if i > 0 && ASCII.ComparePrefix(x, y, i-1) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitStringPanics(t *testing.T) {
	for _, pair := range [][2]string{{"b", "a"}, {"same", "same"}, {"abc", "ab"}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SplitString(%q,%q) did not panic", pair[0], pair[1])
				}
			}()
			ASCII.SplitString(pair[0], pair[1])
		}()
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		s, path string
		want    int
	}{
		{"ha", "he", 1}, // Fig 3: 'h' already in logical path
		{"ha", "ha", 2},
		{"ha", "", 0},    // root path: no known digits
		{"abc", "ab", 2}, // path shorter than split string
		{"xyz", "abc", 0},
	}
	for _, c := range cases {
		if got := CommonPrefixLen([]byte(c.s), []byte(c.path)); got != c.want {
			t.Errorf("CommonPrefixLen(%q,%q) = %d, want %d", c.s, c.path, got, c.want)
		}
	}
}

func TestPrefixLEPath(t *testing.T) {
	cases := []struct {
		k    string
		i    int
		path string
		want bool
	}{
		{"he", 0, "o", true},   // h <= o
		{"to", 0, "o", false},  // t > o
		{"of", 0, "o", true},   // o == o at the only known digit
		{"he", 1, "o", true},   // digit 1 of path unknown = max
		{"it", 1, "i ", false}, // 't' > ' ' at position 1
		{"i", 1, "i ", true},   // padded 'i ' == 'i '
		{"anything", 5, "", true},
	}
	for _, c := range cases {
		if got := ASCII.PrefixLEPath(c.k, c.i, []byte(c.path)); got != c.want {
			t.Errorf("PrefixLEPath(%q,%d,%q) = %v, want %v", c.k, c.i, c.path, got, c.want)
		}
	}
}
