package keys

import (
	"strings"
	"testing"
)

// FuzzSplitString checks the Algorithm A2 step-1 contract on arbitrary
// key pairs: the split string is the shortest prefix of the smaller key
// that is strictly below the same-length prefix of the larger one, and it
// cleanly partitions the two keys.
func FuzzSplitString(f *testing.F) {
	f.Add("have", "he")
	f.Add("ab", "abc")
	f.Add("oszh", "oszr")
	f.Add("a", "b")
	f.Fuzz(func(t *testing.T, a, b string) {
		x := fuzzSanitize(a)
		y := fuzzSanitize(b)
		if x == y {
			return
		}
		if x > y {
			x, y = y, x
		}
		s := ASCII.SplitString(x, y)
		i := len(s) - 1
		// The split key stays at or below the boundary; the bound moves.
		if !ASCII.KeyLEBound(x, s) {
			t.Fatalf("split key %q above its own boundary %q", x, s)
		}
		if ASCII.KeyLEBound(y, s) {
			t.Fatalf("bounding key %q not above boundary %q", y, s)
		}
		// Shortest: one digit less no longer separates.
		if i > 0 && ASCII.ComparePrefix(x, y, i-1) != 0 {
			t.Fatalf("split string %q not shortest for (%q, %q)", s, x, y)
		}
	})
}

// FuzzComparePathBounds cross-checks the padded-bound comparison against
// an explicit materialization of both bounds.
func FuzzComparePathBounds(f *testing.F) {
	f.Add("ha", "he", uint8(8))
	f.Add("", "x", uint8(4))
	f.Add("ab", "a", uint8(6))
	f.Fuzz(func(t *testing.T, a, b string, width uint8) {
		x := []byte(fuzzSanitize(a))
		y := []byte(fuzzSanitize(b))
		n := int(width%16) + len(x) + len(y) + 1
		got := ASCII.ComparePathBounds(x, y)
		want := strings.Compare(materialize(x, n), materialize(y, n))
		if got != want {
			t.Fatalf("ComparePathBounds(%q, %q) = %d, explicit compare = %d", x, y, got, want)
		}
	})
}

// FuzzKeyCompare checks that ComparePathBounds is a total order over
// arbitrary bound triples: reflexive, antisymmetric, transitive, and
// that equality really means the materialized bounds coincide. Every
// trie-node ordering and every binary search over leaf bounds leans on
// these properties; a violation would silently misroute keys.
func FuzzKeyCompare(f *testing.F) {
	f.Add("g", "he", "hz")
	f.Add("", "a", "a")
	f.Add("abc", "ab", "abd")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		x := []byte(fuzzSanitize(a))
		y := []byte(fuzzSanitize(b))
		z := []byte(fuzzSanitize(c))
		if ASCII.ComparePathBounds(x, x) != 0 {
			t.Fatalf("not reflexive: ComparePathBounds(%q, %q) != 0", x, x)
		}
		xy := ASCII.ComparePathBounds(x, y)
		if yx := ASCII.ComparePathBounds(y, x); yx != -xy {
			t.Fatalf("not antisymmetric: cmp(%q,%q)=%d but cmp(%q,%q)=%d", x, y, xy, y, x, yx)
		}
		yz := ASCII.ComparePathBounds(y, z)
		xz := ASCII.ComparePathBounds(x, z)
		if xy <= 0 && yz <= 0 && xz > 0 {
			t.Fatalf("not transitive: %q <= %q <= %q but cmp(%q,%q)=%d", x, y, z, x, z, xz)
		}
		if xy == 0 {
			n := len(x) + len(y) + 1
			if materialize(x, n) != materialize(y, n) {
				t.Fatalf("cmp(%q,%q)=0 but materialized bounds differ", x, y)
			}
		}
	})
}

// materialize pads a bound with explicit maximal digits to length n.
func materialize(b []byte, n int) string {
	out := append([]byte(nil), b...)
	for len(out) < n {
		out = append(out, ASCII.Max)
	}
	return string(out)
}

func fuzzSanitize(s string) string {
	b := []byte(s)
	for i := range b {
		b[i] = ' ' + b[i]%('~'-' '+1)
	}
	out := strings.TrimRight(string(b), " ")
	if out == "" {
		return "k"
	}
	return out
}
