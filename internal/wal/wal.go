package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"triehash/internal/format"
	"triehash/internal/obs"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Log is a running write-ahead log: Append frames records onto the
// device, Commit blocks until a record is durable, and a dedicated
// committer goroutine turns the waiting set into group commits — one
// fsync covers every record appended before it started, so N concurrent
// writers share one device sync instead of paying one each.
//
// Locking: mu serializes appends (LSN assignment and the device write);
// cmu guards the commit rendezvous state (appended/pending/durable and
// the two condition variables). mu nests outside cmu and neither is ever
// acquired with engine locks *below* them — the public File calls in with
// its own lock held, so in the whole-program hierarchy both sit beneath
// the file tier and above nothing.
type Log struct {
	dev  Device
	hook *obs.Hook

	mu      sync.Mutex
	nextLSN uint64
	scratch []byte
	failed  error // sticky append failure: the tail may be torn
	// cur is the frame format of the log's current on-disk image:
	// appends MUST match it (mixed-version frames would misparse on
	// rescan). want is the format the owner asked for; Checkpoint — which
	// rewrites the log from byte zero — upgrades cur to want.
	cur  format.Version
	want format.Version

	cmu      sync.Mutex
	newWork  *sync.Cond // signaled when pending advances past durable
	synced   *sync.Cond // broadcast when durable advances (or the log dies)
	appended uint64     // highest LSN the device has (buffered)
	pending  uint64     // highest LSN a Commit is waiting on
	durable  uint64     // highest LSN known fsynced
	syncErr  error      // sticky fsync failure
	closed   bool

	wg sync.WaitGroup

	appends     atomic.Uint64
	fsyncs      atomic.Uint64
	committed   atomic.Uint64
	checkpoints atomic.Uint64
}

// Stats is a point-in-time snapshot of the log's activity counters.
type Stats struct {
	// Appends counts records appended (checkpoint markers included).
	Appends uint64 `json:"appends"`
	// Fsyncs counts device syncs issued by the group committer.
	Fsyncs uint64 `json:"fsyncs"`
	// Committed counts records made durable by those fsyncs; Committed /
	// Fsyncs is the achieved group-commit batching factor.
	Committed uint64 `json:"committed"`
	// Checkpoints counts log truncations.
	Checkpoints uint64 `json:"checkpoints"`
	// DurableLSN is the highest LSN known fsynced.
	DurableLSN uint64 `json:"durable_lsn"`
	// Size is the current log length in bytes.
	Size int64 `json:"size"`
}

// Open scans the device's existing image, truncates a damaged tail back
// to the last whole frame (the signature of a crash mid-append), and
// returns the running log plus the scanned records for the caller to
// replay. The returned Tail reports whether a repair happened. want is
// the frame format new log generations are written with; an existing
// image keeps its own format until the next Checkpoint rewrites it. A
// log written by a future build (*format.UnknownVersionError) refuses to
// open — its intact records must not be "repaired" away.
func Open(dev Device, want format.Version, hook *obs.Hook) (*Log, []Record, Tail, error) {
	if !want.Valid() {
		want = format.Default
	}
	data, err := dev.Contents()
	if err != nil {
		return nil, nil, Tail{}, err
	}
	recs, tail, cur, err := Scan(data)
	if err != nil {
		return nil, nil, tail, err
	}
	if tail.Damaged {
		if err := dev.TruncateTo(tail.ValidSize); err != nil {
			return nil, nil, tail, err
		}
		// Make the repair itself durable: an unsynced truncation could let
		// a second crash resurrect the torn bytes (harmlessly, since they
		// rescan as damage — but the repaired log must not regress).
		if err := dev.Sync(); err != nil {
			return nil, nil, tail, err
		}
		if tail.ValidSize == 0 {
			cur = 0 // the image is empty now; the next write picks the format
		}
	}
	l := &Log{dev: dev, hook: hook, nextLSN: 1, cur: cur, want: want}
	if l.cur == 0 {
		// Empty image: start the log in the wanted format, header first
		// for v2 so a rescan parses the frames correctly.
		l.cur = want
		if want >= format.V2 {
			if err := dev.Append(appendLogHeader(nil, want)); err != nil {
				return nil, nil, tail, err
			}
		}
	}
	if n := len(recs); n > 0 {
		l.nextLSN = recs[n-1].LSN + 1
		l.appended = recs[n-1].LSN
		l.pending = l.appended
		l.durable = l.appended // everything scanned survived: it is on the medium
	}
	l.newWork = sync.NewCond(&l.cmu)
	l.synced = sync.NewCond(&l.cmu)
	l.wg.Add(1)
	go l.committer()
	return l, recs, tail, nil
}

// Append assigns the next LSN, frames the record and writes it to the
// device (buffered — call Commit to wait for durability). A device
// failure is sticky: once an append may have left a torn tail, every
// later append refuses, because records behind a tear would be
// unrecoverable.
func (l *Log) Append(op Op, key string, value []byte) (uint64, error) {
	l.mu.Lock()
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.nextLSN
	l.scratch = appendFrame(l.scratch[:0], Record{LSN: lsn, Op: op, Key: key, Value: value}, l.cur)
	err := l.dev.Append(l.scratch)
	if err != nil {
		l.failed = err
		l.mu.Unlock()
		return 0, err
	}
	l.nextLSN++
	l.cmu.Lock() // inside mu, so appended advances in LSN order
	l.appended = lsn
	l.cmu.Unlock()
	l.mu.Unlock()
	l.appends.Add(1)
	l.hook.Observer().Emit(obs.Event{Type: obs.EvWALAppend, Addr: int32(lsn)})
	return lsn, nil
}

// Commit blocks until the record at lsn is durable: it registers the LSN
// with the committer and waits on the rendezvous. Every waiter whose
// record predates the next fsync is released together — that sharing is
// the group commit.
func (l *Log) Commit(lsn uint64) error {
	l.cmu.Lock()
	defer l.cmu.Unlock()
	if lsn > l.pending {
		l.pending = lsn
		l.newWork.Signal()
	}
	for l.durable < lsn && l.syncErr == nil && !l.closed {
		l.synced.Wait()
	}
	if l.durable >= lsn {
		return nil
	}
	if l.syncErr != nil {
		return l.syncErr
	}
	return ErrClosed
}

// committer is the group-commit loop: wait for work, snapshot the highest
// appended LSN, fsync with no locks held (appends keep landing during the
// sync — that is where the batching comes from), then publish the new
// durable horizon and wake every satisfied waiter. Each iteration is
// lock-balanced: cmu is never held across the device sync.
func (l *Log) committer() {
	defer l.wg.Done()
	for {
		l.cmu.Lock()
		for !l.closed && (l.pending <= l.durable || l.syncErr != nil) {
			l.newWork.Wait()
		}
		if l.closed {
			l.cmu.Unlock()
			return
		}
		target := l.appended
		l.cmu.Unlock()

		start := time.Now()
		err := l.dev.Sync()
		if o := l.hook.Observer(); o != nil {
			o.Stage(obs.StageWALFsync).Record(time.Since(start))
		}

		l.cmu.Lock()
		if err != nil {
			l.syncErr = err
		} else if target > l.durable {
			l.fsyncs.Add(1)
			group := target - l.durable
			l.committed.Add(group)
			l.durable = target
			l.hook.Observer().Emit(obs.Event{Type: obs.EvWALFsync, Addr: int32(group)})
		}
		l.synced.Broadcast()
		l.cmu.Unlock()
	}
}

// Checkpoint truncates the log after its contents have been folded into
// the bucket pages: the caller must have durably installed every effect
// up to the current append horizon before calling (the public File holds
// its lock across flush, metadata install and this call). The truncated
// log restarts with a single fsynced checkpoint record that carries the
// LSN sequence and the fold point forward.
func (l *Log) Checkpoint() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.failed != nil {
		return l.failed
	}
	l.cmu.Lock()
	folded := l.appended
	l.cmu.Unlock()
	if err := l.dev.TruncateTo(0); err != nil {
		return err
	}
	// The log restarts from byte zero, so this is the moment the format
	// upgrades: header (v2+) and checkpoint marker go down in ONE append,
	// tearing together under a power cut like any single frame.
	l.cur = l.want
	lsn := l.nextLSN
	l.scratch = l.scratch[:0]
	if l.cur >= format.V2 {
		l.scratch = appendLogHeader(l.scratch, l.cur)
	}
	l.scratch = appendFrame(l.scratch, Record{LSN: lsn, Op: OpCheckpoint, CheckpointLSN: folded}, l.cur)
	if err := l.dev.Append(l.scratch); err != nil {
		l.failed = err
		return err
	}
	l.nextLSN++
	if err := l.dev.Sync(); err != nil {
		l.failed = err
		return err
	}
	l.cmu.Lock()
	l.appended = lsn
	if lsn > l.pending {
		l.pending = lsn
	}
	if lsn > l.durable { // synced inline above; guard keeps durable monotonic
		l.durable = lsn
	}
	l.synced.Broadcast()
	l.cmu.Unlock()
	l.appends.Add(1)
	l.checkpoints.Add(1)
	l.hook.Observer().Emit(obs.Event{Type: obs.EvCheckpoint, Addr: int32(folded)})
	return nil
}

// Size returns the current log length in bytes.
func (l *Log) Size() int64 { return l.dev.Size() }

// Format returns the frame format of the log's current on-disk image.
func (l *Log) Format() format.Version {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.cur
}

// Stats returns the activity counters.
func (l *Log) Stats() Stats {
	l.cmu.Lock()
	durable := l.durable
	l.cmu.Unlock()
	return Stats{
		Appends:     l.appends.Load(),
		Fsyncs:      l.fsyncs.Load(),
		Committed:   l.committed.Load(),
		Checkpoints: l.checkpoints.Load(),
		DurableLSN:  durable,
		Size:        l.dev.Size(),
	}
}

// Close stops the committer, makes any buffered appends durable with a
// final sync, and closes the device.
func (l *Log) Close() error {
	l.cmu.Lock()
	if l.closed {
		l.cmu.Unlock()
		return nil
	}
	l.closed = true
	l.newWork.Broadcast()
	l.synced.Broadcast()
	l.cmu.Unlock()
	l.wg.Wait()
	err := l.dev.Sync()
	if cerr := l.dev.Close(); err == nil {
		err = cerr
	}
	return err
}
