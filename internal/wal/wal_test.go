package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"triehash/internal/format"
)

// bothVersions runs f once per log framing version.
func bothVersions(t *testing.T, f func(t *testing.T, v format.Version)) {
	for _, v := range []format.Version{format.V1, format.V2} {
		t.Run(fmt.Sprintf("v%d", v), func(t *testing.T) { f(t, v) })
	}
}

// logPrefix returns the bytes a version's log image starts with (v1 logs
// are headerless).
func logPrefix(v format.Version) []byte {
	if v >= format.V2 {
		return appendLogHeader(nil, v)
	}
	return nil
}

// TestScanRoundTrip frames a mixed record sequence and scans it back, in
// both framing versions.
func TestScanRoundTrip(t *testing.T) {
	bothVersions(t, func(t *testing.T, v format.Version) {
		want := []Record{
			{LSN: 1, Op: OpPut, Key: "alpha", Value: []byte("v1")},
			{LSN: 2, Op: OpDelete, Key: "alpha"},
			{LSN: 3, Op: OpCheckpoint, CheckpointLSN: 2},
			{LSN: 4, Op: OpPut, Key: "", Value: nil}, // empty key and value are legal
		}
		buf := logPrefix(v)
		for _, r := range want {
			buf = appendFrame(buf, r, v)
		}
		got, tail, ver, err := Scan(buf)
		if err != nil {
			t.Fatal(err)
		}
		if ver != v {
			t.Fatalf("scanned version %d, want %d", ver, v)
		}
		if tail.Damaged {
			t.Fatalf("clean log scanned as damaged: %s", tail.Reason)
		}
		if tail.ValidSize != int64(len(buf)) {
			t.Fatalf("ValidSize %d, want %d", tail.ValidSize, len(buf))
		}
		if len(got) != len(want) {
			t.Fatalf("scanned %d records, want %d", len(got), len(want))
		}
		for i, r := range got {
			w := want[i]
			if r.LSN != w.LSN || r.Op != w.Op || r.Key != w.Key || !bytes.Equal(r.Value, w.Value) || r.CheckpointLSN != w.CheckpointLSN {
				t.Errorf("record %d: got %+v, want %+v", i, r, w)
			}
		}
	})
}

// TestScanTornTail verifies that every proper prefix cut of a frame is
// detected as tail damage with the preceding records intact, and that a
// flipped byte anywhere in the last frame fails its checksum — in both
// framing versions.
func TestScanTornTail(t *testing.T) {
	bothVersions(t, func(t *testing.T, v format.Version) {
		buf := logPrefix(v)
		buf = appendFrame(buf, Record{LSN: 1, Op: OpPut, Key: "k1", Value: []byte("value-1")}, v)
		whole := int64(len(buf))
		buf = appendFrame(buf, Record{LSN: 2, Op: OpPut, Key: "k2", Value: []byte("value-2")}, v)

		for cut := whole + 1; cut < int64(len(buf)); cut++ {
			recs, tail, _, err := Scan(buf[:cut])
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || recs[0].LSN != 1 {
				t.Fatalf("cut %d: got %d records, want the 1 whole one", cut, len(recs))
			}
			if !tail.Damaged || tail.ValidSize != whole {
				t.Fatalf("cut %d: tail %+v, want damaged with ValidSize %d", cut, tail, whole)
			}
		}
		for i := whole; i < int64(len(buf)); i++ {
			flipped := append([]byte(nil), buf...)
			flipped[i] ^= 0x40
			recs, tail, _, err := Scan(flipped)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 1 || !tail.Damaged || tail.ValidSize != whole {
				t.Fatalf("flip at %d: %d records, tail %+v", i, len(recs), tail)
			}
		}
		// A zeroed tail chunk reads as a zero-length frame: damaged, not EOF.
		zeroed := append(append([]byte(nil), buf[:whole]...), make([]byte, 32)...)
		if recs, tail, _, err := Scan(zeroed); err != nil || len(recs) != 1 || !tail.Damaged {
			t.Fatalf("zeroed tail: %d records, tail %+v, err %v", len(recs), tail, err)
		}
	})
}

// TestScanUnknownVersion verifies a future header version refuses to scan
// with a typed error instead of reading as repairable damage.
func TestScanUnknownVersion(t *testing.T) {
	img := appendLogHeader(nil, format.V2)
	img[4] = 9 // a version this build does not know
	img = append(img, appendFrame(nil, Record{LSN: 1, Op: OpPut, Key: "k"}, format.V2)...)
	_, _, _, err := Scan(img)
	var uve *format.UnknownVersionError
	if !errors.As(err, &uve) {
		t.Fatalf("Scan error %v, want *format.UnknownVersionError", err)
	}
	if uve.Surface != "wal" || uve.Version != 9 {
		t.Fatalf("error detail %+v", uve)
	}
	// A truncated header (crash while writing the very first bytes of a v2
	// log) is ordinary tail damage: nothing durable is lost.
	short := appendLogHeader(nil, format.V2)[:5]
	if _, tail, _, err := Scan(short); err != nil || !tail.Damaged {
		t.Fatalf("truncated header: tail %+v, err %v", tail, err)
	}
}

// TestCheckpointUpgradesFormat opens a v1 image with a v2 want and checks
// the log keeps v1 framing until the checkpoint rewrites it from byte
// zero in v2.
func TestCheckpointUpgradesFormat(t *testing.T) {
	dev := NewMem()
	img := appendFrame(nil, Record{LSN: 1, Op: OpPut, Key: "a", Value: []byte("x")}, format.V1)
	if err := dev.Append(img); err != nil {
		t.Fatal(err)
	}
	l, recs, _, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || l.Format() != format.V1 {
		t.Fatalf("opened %d records at v%d, want 1 at v1", len(recs), l.Format())
	}
	// Appends before the upgrade must stay v1: mixed frames would misparse.
	lsn, err := l.Append(OpPut, "b", []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); err != nil {
		t.Fatal(err)
	}
	if recs, _, ver, err := Scan(mustContents(t, dev)); err != nil || ver != format.V1 || len(recs) != 2 {
		t.Fatalf("pre-upgrade image: %d records v%d (err %v), want 2 at v1", len(recs), ver, err)
	}
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if l.Format() != format.V2 {
		t.Fatalf("post-checkpoint format v%d, want v2", l.Format())
	}
	recs2, tail, ver, err := Scan(mustContents(t, dev))
	if err != nil || tail.Damaged {
		t.Fatalf("post-upgrade scan: tail %+v, err %v", tail, err)
	}
	if ver != format.V2 || len(recs2) != 1 || recs2[0].Op != OpCheckpoint || recs2[0].LSN != 3 {
		t.Fatalf("post-upgrade image: %d records v%d, first %+v", len(recs2), ver, recs2[0])
	}
}

// TestOpenRepairsTornTail checks Open truncates a damaged tail and that
// LSNs continue from the surviving records.
func TestOpenRepairsTornTail(t *testing.T) {
	dev := NewMem()
	var img []byte
	img = appendFrame(img, Record{LSN: 7, Op: OpPut, Key: "a", Value: []byte("x")}, format.V1)
	valid := int64(len(img))
	img = appendFrame(img, Record{LSN: 8, Op: OpPut, Key: "b", Value: []byte("y")}, format.V1)
	if err := dev.Append(img[:valid+5]); err != nil { // torn mid-frame
		t.Fatal(err)
	}
	l, recs, tail, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("recovered %d records, want the 1 whole one", len(recs))
	}
	if !tail.Damaged {
		t.Fatal("torn tail not reported")
	}
	if dev.Size() != valid {
		t.Fatalf("device not truncated: %d bytes, want %d", dev.Size(), valid)
	}
	lsn, err := l.Append(OpPut, "c", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("next LSN %d, want 8 (continue after survivor)", lsn)
	}
}

// slowSyncDev delays Sync so a commit group can accumulate, and counts
// syncs.
type slowSyncDev struct {
	MemDevice
	syncs   atomic.Int64
	delay   time.Duration
	syncErr atomic.Value // error to fail Sync with
}

func (d *slowSyncDev) Sync() error {
	d.syncs.Add(1)
	if v := d.syncErr.Load(); v != nil {
		return v.(error)
	}
	time.Sleep(d.delay)
	return nil
}

// TestGroupCommitBatches runs many concurrent Append+Commit against a
// slow-sync device and verifies they shared fsyncs.
func TestGroupCommitBatches(t *testing.T) {
	dev := &slowSyncDev{delay: 2 * time.Millisecond}
	l, _, _, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(OpPut, fmt.Sprintf("w%d-%d", w, i), []byte("v"))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Committed != writers*per {
		t.Fatalf("committed %d records, want %d", st.Committed, writers*per)
	}
	if st.DurableLSN != writers*per {
		t.Fatalf("durable LSN %d, want %d", st.DurableLSN, writers*per)
	}
	// With 8 writers against a 2ms fsync, batching must beat one fsync per
	// record by a wide margin; 2x is a very conservative floor.
	if st.Fsyncs*2 > st.Committed {
		t.Errorf("group commit not batching: %d fsyncs for %d commits", st.Fsyncs, st.Committed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, tail, _, err := Scan(mustContents(t, dev))
	if err != nil {
		t.Fatal(err)
	}
	if tail.Damaged || len(recs) != writers*per {
		t.Fatalf("log has %d records (tail %+v), want %d clean", len(recs), tail, writers*per)
	}
}

// TestCheckpointTruncatesAndChainsLSN folds the log and verifies the
// restart record carries the sequence across the truncation and a reopen.
func TestCheckpointTruncatesAndChainsLSN(t *testing.T) {
	dev := NewMem()
	l, _, _, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(OpPut, fmt.Sprintf("k%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Size()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if dev.Size() >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before, dev.Size())
	}
	recs, tail, _, err := Scan(mustContents(t, dev))
	if err != nil {
		t.Fatal(err)
	}
	if tail.Damaged || len(recs) != 1 || recs[0].Op != OpCheckpoint {
		t.Fatalf("post-checkpoint log: %d records, tail %+v", len(recs), tail)
	}
	if recs[0].LSN != 11 || recs[0].CheckpointLSN != 10 {
		t.Fatalf("checkpoint record LSN %d / fold %d, want 11 / 10", recs[0].LSN, recs[0].CheckpointLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs2, _, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs2) != 1 {
		t.Fatalf("reopen scanned %d records, want 1", len(recs2))
	}
	if lsn, err := l2.Append(OpPut, "next", nil); err != nil || lsn != 12 {
		t.Fatalf("post-reopen LSN %d (err %v), want 12", lsn, err)
	}
}

// TestSyncErrorIsSticky verifies a failed fsync poisons every waiter, and
// later commits fail fast instead of hanging.
func TestSyncErrorIsSticky(t *testing.T) {
	dev := &slowSyncDev{}
	boom := errors.New("medium gone")
	l, _, _, err := Open(dev, format.V2, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev.syncErr.Store(boom)
	lsn, err := l.Append(OpPut, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); !errors.Is(err, boom) {
		t.Fatalf("Commit error %v, want %v", err, boom)
	}
	done := make(chan error, 1)
	go func() { done <- l.Commit(lsn) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("second Commit error %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit hung on a dead log")
	}
}

// TestFileDevice exercises the production device end to end, including
// persistence across reopen and truncation.
func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := mustContents(t, d); string(got) != "hello world" {
		t.Fatalf("contents %q", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 11 {
		t.Fatalf("reopened size %d, want 11", d2.Size())
	}
	if err := d2.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if err := d2.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if got := mustContents(t, d2); string(got) != "hello!" {
		t.Fatalf("after truncate+append: %q", got)
	}
}

func mustContents(t *testing.T, d Device) []byte {
	t.Helper()
	data, err := d.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
