package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestScanRoundTrip frames a mixed record sequence and scans it back.
func TestScanRoundTrip(t *testing.T) {
	want := []Record{
		{LSN: 1, Op: OpPut, Key: "alpha", Value: []byte("v1")},
		{LSN: 2, Op: OpDelete, Key: "alpha"},
		{LSN: 3, Op: OpCheckpoint, CheckpointLSN: 2},
		{LSN: 4, Op: OpPut, Key: "", Value: nil}, // empty key and value are legal
	}
	var buf []byte
	for _, r := range want {
		buf = appendFrame(buf, r)
	}
	got, tail := Scan(buf)
	if tail.Damaged {
		t.Fatalf("clean log scanned as damaged: %s", tail.Reason)
	}
	if tail.ValidSize != int64(len(buf)) {
		t.Fatalf("ValidSize %d, want %d", tail.ValidSize, len(buf))
	}
	if len(got) != len(want) {
		t.Fatalf("scanned %d records, want %d", len(got), len(want))
	}
	for i, r := range got {
		w := want[i]
		if r.LSN != w.LSN || r.Op != w.Op || r.Key != w.Key || !bytes.Equal(r.Value, w.Value) || r.CheckpointLSN != w.CheckpointLSN {
			t.Errorf("record %d: got %+v, want %+v", i, r, w)
		}
	}
}

// TestScanTornTail verifies that every proper prefix cut of a frame is
// detected as tail damage with the preceding records intact, and that a
// flipped byte anywhere in the last frame fails its checksum.
func TestScanTornTail(t *testing.T) {
	var buf []byte
	buf = appendFrame(buf, Record{LSN: 1, Op: OpPut, Key: "k1", Value: []byte("value-1")})
	whole := int64(len(buf))
	buf = appendFrame(buf, Record{LSN: 2, Op: OpPut, Key: "k2", Value: []byte("value-2")})

	for cut := whole + 1; cut < int64(len(buf)); cut++ {
		recs, tail := Scan(buf[:cut])
		if len(recs) != 1 || recs[0].LSN != 1 {
			t.Fatalf("cut %d: got %d records, want the 1 whole one", cut, len(recs))
		}
		if !tail.Damaged || tail.ValidSize != whole {
			t.Fatalf("cut %d: tail %+v, want damaged with ValidSize %d", cut, tail, whole)
		}
	}
	for i := whole; i < int64(len(buf)); i++ {
		flipped := append([]byte(nil), buf...)
		flipped[i] ^= 0x40
		recs, tail := Scan(flipped)
		if len(recs) != 1 || !tail.Damaged || tail.ValidSize != whole {
			t.Fatalf("flip at %d: %d records, tail %+v", i, len(recs), tail)
		}
	}
	// A zeroed tail chunk reads as a zero-length frame: damaged, not EOF.
	zeroed := append(append([]byte(nil), buf[:whole]...), make([]byte, 32)...)
	if recs, tail := Scan(zeroed); len(recs) != 1 || !tail.Damaged {
		t.Fatalf("zeroed tail: %d records, tail %+v", len(recs), tail)
	}
}

// TestOpenRepairsTornTail checks Open truncates a damaged tail and that
// LSNs continue from the surviving records.
func TestOpenRepairsTornTail(t *testing.T) {
	dev := NewMem()
	var img []byte
	img = appendFrame(img, Record{LSN: 7, Op: OpPut, Key: "a", Value: []byte("x")})
	valid := int64(len(img))
	img = appendFrame(img, Record{LSN: 8, Op: OpPut, Key: "b", Value: []byte("y")})
	if err := dev.Append(img[:valid+5]); err != nil { // torn mid-frame
		t.Fatal(err)
	}
	l, recs, tail, err := Open(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 1 || recs[0].LSN != 7 {
		t.Fatalf("recovered %d records, want the 1 whole one", len(recs))
	}
	if !tail.Damaged {
		t.Fatal("torn tail not reported")
	}
	if dev.Size() != valid {
		t.Fatalf("device not truncated: %d bytes, want %d", dev.Size(), valid)
	}
	lsn, err := l.Append(OpPut, "c", []byte("z"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 8 {
		t.Fatalf("next LSN %d, want 8 (continue after survivor)", lsn)
	}
}

// slowSyncDev delays Sync so a commit group can accumulate, and counts
// syncs.
type slowSyncDev struct {
	MemDevice
	syncs   atomic.Int64
	delay   time.Duration
	syncErr atomic.Value // error to fail Sync with
}

func (d *slowSyncDev) Sync() error {
	d.syncs.Add(1)
	if v := d.syncErr.Load(); v != nil {
		return v.(error)
	}
	time.Sleep(d.delay)
	return nil
}

// TestGroupCommitBatches runs many concurrent Append+Commit against a
// slow-sync device and verifies they shared fsyncs.
func TestGroupCommitBatches(t *testing.T) {
	dev := &slowSyncDev{delay: 2 * time.Millisecond}
	l, _, _, err := Open(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := l.Append(OpPut, fmt.Sprintf("w%d-%d", w, i), []byte("v"))
				if err != nil {
					t.Error(err)
					return
				}
				if err := l.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Committed != writers*per {
		t.Fatalf("committed %d records, want %d", st.Committed, writers*per)
	}
	if st.DurableLSN != writers*per {
		t.Fatalf("durable LSN %d, want %d", st.DurableLSN, writers*per)
	}
	// With 8 writers against a 2ms fsync, batching must beat one fsync per
	// record by a wide margin; 2x is a very conservative floor.
	if st.Fsyncs*2 > st.Committed {
		t.Errorf("group commit not batching: %d fsyncs for %d commits", st.Fsyncs, st.Committed)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	recs, tail := Scan(mustContents(t, dev))
	if tail.Damaged || len(recs) != writers*per {
		t.Fatalf("log has %d records (tail %+v), want %d clean", len(recs), tail, writers*per)
	}
}

// TestCheckpointTruncatesAndChainsLSN folds the log and verifies the
// restart record carries the sequence across the truncation and a reopen.
func TestCheckpointTruncatesAndChainsLSN(t *testing.T) {
	dev := NewMem()
	l, _, _, err := Open(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		lsn, err := l.Append(OpPut, fmt.Sprintf("k%d", i), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Commit(lsn); err != nil {
			t.Fatal(err)
		}
	}
	before := dev.Size()
	if err := l.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if dev.Size() >= before {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before, dev.Size())
	}
	recs, tail := Scan(mustContents(t, dev))
	if tail.Damaged || len(recs) != 1 || recs[0].Op != OpCheckpoint {
		t.Fatalf("post-checkpoint log: %d records, tail %+v", len(recs), tail)
	}
	if recs[0].LSN != 11 || recs[0].CheckpointLSN != 10 {
		t.Fatalf("checkpoint record LSN %d / fold %d, want 11 / 10", recs[0].LSN, recs[0].CheckpointLSN)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, recs2, _, err := Open(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(recs2) != 1 {
		t.Fatalf("reopen scanned %d records, want 1", len(recs2))
	}
	if lsn, err := l2.Append(OpPut, "next", nil); err != nil || lsn != 12 {
		t.Fatalf("post-reopen LSN %d (err %v), want 12", lsn, err)
	}
}

// TestSyncErrorIsSticky verifies a failed fsync poisons every waiter, and
// later commits fail fast instead of hanging.
func TestSyncErrorIsSticky(t *testing.T) {
	dev := &slowSyncDev{}
	boom := errors.New("medium gone")
	l, _, _, err := Open(dev, nil)
	if err != nil {
		t.Fatal(err)
	}
	dev.syncErr.Store(boom)
	lsn, err := l.Append(OpPut, "k", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Commit(lsn); !errors.Is(err, boom) {
		t.Fatalf("Commit error %v, want %v", err, boom)
	}
	done := make(chan error, 1)
	go func() { done <- l.Commit(lsn) }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("second Commit error %v, want %v", err, boom)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Commit hung on a dead log")
	}
}

// TestFileDevice exercises the production device end to end, including
// persistence across reopen and truncation.
func TestFileDevice(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	d, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := d.Append([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := mustContents(t, d); string(got) != "hello world" {
		t.Fatalf("contents %q", got)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenFileDevice(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if d2.Size() != 11 {
		t.Fatalf("reopened size %d, want 11", d2.Size())
	}
	if err := d2.TruncateTo(5); err != nil {
		t.Fatal(err)
	}
	if err := d2.Append([]byte("!")); err != nil {
		t.Fatal(err)
	}
	if got := mustContents(t, d2); string(got) != "hello!" {
		t.Fatalf("after truncate+append: %q", got)
	}
}

func mustContents(t *testing.T, d Device) []byte {
	t.Helper()
	data, err := d.Contents()
	if err != nil {
		t.Fatal(err)
	}
	return data
}
