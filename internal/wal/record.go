// Package wal is the write-ahead log: the hot durability path of a
// persistent trie-hashed file. Mutations are framed as CRC-checked
// logical records (put/delete with full key and value) appended to a
// single log device; a Put is durable once its record is fsynced, which a
// group committer batches across concurrent writers so N in-flight
// operations share one fsync. Periodic checkpoints fold the log into the
// bucket pages (flush + metadata install) and truncate it, so replay on
// open is bounded by the checkpoint interval. Replay is idempotent by
// construction — records are logical upserts and deletes — and a torn
// tail (the crash signature of an in-flight append) is detected by the
// frame CRC and truncated; only damage *before* the valid tail demotes
// recovery to the salvage scan.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Op is the logical operation a record replays.
type Op byte

const (
	// OpPut inserts or replaces Key with Value.
	OpPut Op = 1
	// OpDelete removes Key.
	OpDelete Op = 2
	// OpCheckpoint marks a fold point: the record's CheckpointLSN is the
	// last LSN whose effects the bucket pages durably contain. A truncated
	// log starts with exactly one checkpoint record, which carries the LSN
	// sequence across truncations.
	OpCheckpoint Op = 3
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Record is one logical log entry.
type Record struct {
	// LSN is the record's log sequence number: strictly increasing,
	// monotonic across checkpoints and reopens.
	LSN uint64
	// Op selects put, delete or checkpoint.
	Op Op
	// Key and Value are the record's payload (Value empty for deletes;
	// both empty for checkpoints).
	Key   string
	Value []byte
	// CheckpointLSN is the fold point an OpCheckpoint record carries.
	CheckpointLSN uint64
}

// Frame layout:
//
//	u32 payload length | u32 crc32(payload) | payload
//	payload: u64 lsn | u8 op | u32 keylen | key | value   (put/delete)
//	         u64 lsn | u8 op | u64 checkpointLSN          (checkpoint)
//
// The length/CRC header makes a torn append self-announcing: a partial
// frame either has too few bytes for its declared length or fails its
// checksum, and scanning stops there.
const frameHeader = 8

// appendFrame serializes r onto buf and returns the extended slice.
func appendFrame(buf []byte, r Record) []byte {
	var payload []byte
	if r.Op == OpCheckpoint {
		payload = make([]byte, 8+1+8)
		binary.LittleEndian.PutUint64(payload, r.LSN)
		payload[8] = byte(r.Op)
		binary.LittleEndian.PutUint64(payload[9:], r.CheckpointLSN)
	} else {
		payload = make([]byte, 8+1+4+len(r.Key)+len(r.Value))
		binary.LittleEndian.PutUint64(payload, r.LSN)
		payload[8] = byte(r.Op)
		binary.LittleEndian.PutUint32(payload[9:], uint32(len(r.Key)))
		copy(payload[13:], r.Key)
		copy(payload[13+len(r.Key):], r.Value)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodePayload parses a verified frame payload.
func decodePayload(p []byte) (Record, error) {
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: payload truncated to %d bytes", len(p))
	}
	r := Record{LSN: binary.LittleEndian.Uint64(p), Op: Op(p[8])}
	switch r.Op {
	case OpCheckpoint:
		if len(p) != 17 {
			return Record{}, fmt.Errorf("wal: checkpoint payload is %d bytes, want 17", len(p))
		}
		r.CheckpointLSN = binary.LittleEndian.Uint64(p[9:])
	case OpPut, OpDelete:
		if len(p) < 13 {
			return Record{}, fmt.Errorf("wal: record payload truncated to %d bytes", len(p))
		}
		klen := int(binary.LittleEndian.Uint32(p[9:]))
		if klen < 0 || 13+klen > len(p) {
			return Record{}, fmt.Errorf("wal: record key length %d exceeds payload", klen)
		}
		r.Key = string(p[13 : 13+klen])
		if v := p[13+klen:]; len(v) > 0 {
			r.Value = append([]byte(nil), v...)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	return r, nil
}

// Tail describes where a scan stopped and why.
type Tail struct {
	// ValidSize is the byte offset of the end of the last whole, verified
	// frame — the size a tail repair truncates the log to.
	ValidSize int64
	// Damaged reports bytes after ValidSize that do not parse: a torn or
	// damaged in-flight append (the normal crash signature), or — when
	// records were lost mid-log — media damage.
	Damaged bool
	// Remaining counts the unparseable bytes.
	Remaining int64
	// Reason describes the first failure ("frame truncated", "checksum
	// mismatch", a payload decode error).
	Reason string
}

// Scan parses the log image in data: every whole frame whose checksum and
// payload verify, in order, plus the tail state. Scanning stops at the
// first damaged frame — the bytes beyond it are unrecoverable from the
// log alone (frame boundaries are lost), which is what demotes recovery
// to the salvage scan when anything but a clean tail is cut off.
func Scan(data []byte) ([]Record, Tail) {
	var recs []Record
	off := int64(0)
	fail := func(reason string) ([]Record, Tail) {
		return recs, Tail{ValidSize: off, Damaged: true, Remaining: int64(len(data)) - off, Reason: reason}
	}
	for int(off) < len(data) {
		rest := data[off:]
		if len(rest) < frameHeader {
			return fail(fmt.Sprintf("frame header truncated to %d bytes", len(rest)))
		}
		n := int64(binary.LittleEndian.Uint32(rest))
		if n == 0 {
			return fail("zero-length frame")
		}
		if frameHeader+n > int64(len(rest)) {
			return fail(fmt.Sprintf("frame truncated: %d payload bytes declared, %d present", n, int64(len(rest))-frameHeader))
		}
		payload := rest[frameHeader : frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:]) {
			return fail("checksum mismatch")
		}
		rec, err := decodePayload(payload)
		if err != nil {
			return fail(err.Error())
		}
		recs = append(recs, rec)
		off += frameHeader + n
	}
	return recs, Tail{ValidSize: off}
}
