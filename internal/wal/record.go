// Package wal is the write-ahead log: the hot durability path of a
// persistent trie-hashed file. Mutations are framed as CRC-checked
// logical records (put/delete with full key and value) appended to a
// single log device; a Put is durable once its record is fsynced, which a
// group committer batches across concurrent writers so N in-flight
// operations share one fsync. Periodic checkpoints fold the log into the
// bucket pages (flush + metadata install) and truncate it, so replay on
// open is bounded by the checkpoint interval. Replay is idempotent by
// construction — records are logical upserts and deletes — and a torn
// tail (the crash signature of an in-flight append) is detected by the
// frame CRC and truncated; only damage *before* the valid tail demotes
// recovery to the salvage scan.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"triehash/internal/format"
)

// Op is the logical operation a record replays.
type Op byte

const (
	// OpPut inserts or replaces Key with Value.
	OpPut Op = 1
	// OpDelete removes Key.
	OpDelete Op = 2
	// OpCheckpoint marks a fold point: the record's CheckpointLSN is the
	// last LSN whose effects the bucket pages durably contain. A truncated
	// log starts with exactly one checkpoint record, which carries the LSN
	// sequence across truncations.
	OpCheckpoint Op = 3
)

func (o Op) String() string {
	switch o {
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpCheckpoint:
		return "checkpoint"
	}
	return fmt.Sprintf("Op(%d)", byte(o))
}

// Record is one logical log entry.
type Record struct {
	// LSN is the record's log sequence number: strictly increasing,
	// monotonic across checkpoints and reopens.
	LSN uint64
	// Op selects put, delete or checkpoint.
	Op Op
	// Key and Value are the record's payload (Value empty for deletes;
	// both empty for checkpoints).
	Key   string
	Value []byte
	// CheckpointLSN is the fold point an OpCheckpoint record carries.
	CheckpointLSN uint64
}

// Version-1 frame layout (a v1 log is headerless — frames start at
// byte 0):
//
//	u32 payload length | u32 crc32(payload) | payload
//	payload: u64 lsn | u8 op | u32 keylen | key | value   (put/delete)
//	         u64 lsn | u8 op | u64 checkpointLSN          (checkpoint)
//
// A version-2 log opens with an 8-byte header (u32 magic "TWAL" | u8
// version | 3 zero bytes) followed by uvarint frames:
//
//	uvarint payload length | u32 crc32(payload) | payload
//	payload: uvarint lsn | u8 op | uvarint keylen | key | value
//	         uvarint lsn | u8 op | uvarint checkpointLSN
//
// The magic cannot open a v1 log: a v1 log starts with a frame's payload
// length, and no real payload is 1.2 GB. In either version the
// length/CRC header makes a torn append self-announcing: a partial frame
// either has too few bytes for its declared length or fails its
// checksum, and scanning stops there.
const (
	frameHeader = 8
	logMagic    = 0x4C415754 // "TWAL" on disk (little-endian)
	// logHeaderSize is the version-2 log header length.
	logHeaderSize = 8
)

// appendLogHeader writes the v2 log header onto buf.
func appendLogHeader(buf []byte, v format.Version) []byte {
	var hdr [logHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:], logMagic)
	hdr[4] = byte(v)
	return append(buf, hdr[:]...)
}

// appendFrame serializes r onto buf in the given log version and returns
// the extended slice.
func appendFrame(buf []byte, r Record, v format.Version) []byte {
	var payload []byte
	switch {
	case v == format.V2 && r.Op == OpCheckpoint:
		payload = binary.AppendUvarint(nil, r.LSN)
		payload = append(payload, byte(r.Op))
		payload = binary.AppendUvarint(payload, r.CheckpointLSN)
	case v == format.V2:
		payload = binary.AppendUvarint(nil, r.LSN)
		payload = append(payload, byte(r.Op))
		payload = binary.AppendUvarint(payload, uint64(len(r.Key)))
		payload = append(payload, r.Key...)
		payload = append(payload, r.Value...)
	case r.Op == OpCheckpoint:
		payload = make([]byte, 8+1+8)
		binary.LittleEndian.PutUint64(payload, r.LSN)
		payload[8] = byte(r.Op)
		binary.LittleEndian.PutUint64(payload[9:], r.CheckpointLSN)
	default:
		payload = make([]byte, 8+1+4+len(r.Key)+len(r.Value))
		binary.LittleEndian.PutUint64(payload, r.LSN)
		payload[8] = byte(r.Op)
		binary.LittleEndian.PutUint32(payload[9:], uint32(len(r.Key)))
		copy(payload[13:], r.Key)
		copy(payload[13+len(r.Key):], r.Value)
	}
	if v == format.V2 {
		buf = binary.AppendUvarint(buf, uint64(len(payload)))
		var crc [4]byte
		binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
		buf = append(buf, crc[:]...)
		return append(buf, payload...)
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// decodePayload parses a verified frame payload in the given log version.
func decodePayload(p []byte, v format.Version) (Record, error) {
	if v == format.V2 {
		return decodePayloadV2(p)
	}
	if len(p) < 9 {
		return Record{}, fmt.Errorf("wal: payload truncated to %d bytes", len(p))
	}
	r := Record{LSN: binary.LittleEndian.Uint64(p), Op: Op(p[8])}
	switch r.Op {
	case OpCheckpoint:
		if len(p) != 17 {
			return Record{}, fmt.Errorf("wal: checkpoint payload is %d bytes, want 17", len(p))
		}
		r.CheckpointLSN = binary.LittleEndian.Uint64(p[9:])
	case OpPut, OpDelete:
		if len(p) < 13 {
			return Record{}, fmt.Errorf("wal: record payload truncated to %d bytes", len(p))
		}
		klen := int(binary.LittleEndian.Uint32(p[9:]))
		if klen < 0 || 13+klen > len(p) {
			return Record{}, fmt.Errorf("wal: record key length %d exceeds payload", klen)
		}
		r.Key = string(p[13 : 13+klen])
		if v := p[13+klen:]; len(v) > 0 {
			r.Value = append([]byte(nil), v...)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	return r, nil
}

// decodePayloadV2 parses a version-2 frame payload.
func decodePayloadV2(p []byte) (Record, error) {
	lsn, n := format.Uvarint(p)
	if n == 0 || len(p) < n+1 {
		return Record{}, fmt.Errorf("wal: payload truncated to %d bytes", len(p))
	}
	r := Record{LSN: lsn, Op: Op(p[n])}
	p = p[n+1:]
	switch r.Op {
	case OpCheckpoint:
		ck, n := format.Uvarint(p)
		if n == 0 || n != len(p) {
			return Record{}, fmt.Errorf("wal: malformed checkpoint payload")
		}
		r.CheckpointLSN = ck
	case OpPut, OpDelete:
		kl, n := format.Uvarint(p)
		if n == 0 || uint64(len(p)-n) < kl {
			return Record{}, fmt.Errorf("wal: record key length %d exceeds payload", kl)
		}
		r.Key = string(p[n : n+int(kl)])
		if v := p[n+int(kl):]; len(v) > 0 {
			r.Value = append([]byte(nil), v...)
		}
	default:
		return Record{}, fmt.Errorf("wal: unknown op %d", byte(r.Op))
	}
	return r, nil
}

// Tail describes where a scan stopped and why.
type Tail struct {
	// ValidSize is the byte offset of the end of the last whole, verified
	// frame — the size a tail repair truncates the log to.
	ValidSize int64
	// Damaged reports bytes after ValidSize that do not parse: a torn or
	// damaged in-flight append (the normal crash signature), or — when
	// records were lost mid-log — media damage.
	Damaged bool
	// Remaining counts the unparseable bytes.
	Remaining int64
	// Reason describes the first failure ("frame truncated", "checksum
	// mismatch", a payload decode error).
	Reason string
}

// Scan parses the log image in data: every whole frame whose checksum
// and payload verify, in order, plus the tail state and the log's
// on-disk version (0 for an empty or headerless-and-frameless image).
// Scanning stops at the first damaged frame — the bytes beyond it are
// unrecoverable from the log alone (frame boundaries are lost), which is
// what demotes recovery to the salvage scan when anything but a clean
// tail is cut off.
//
// A log whose header carries a version this build does not know returns
// *format.UnknownVersionError. That is NOT tail damage: the bytes are a
// future build's intact log, and truncating them would destroy committed
// records — the caller must refuse to open, never repair.
func Scan(data []byte) ([]Record, Tail, format.Version, error) {
	var recs []Record
	off := int64(0)
	ver := format.Version(0)
	fail := func(reason string) ([]Record, Tail, format.Version, error) {
		return recs, Tail{ValidSize: off, Damaged: true, Remaining: int64(len(data)) - off, Reason: reason}, ver, nil
	}
	if len(data) >= 4 && binary.LittleEndian.Uint32(data) == logMagic {
		if len(data) < logHeaderSize {
			return fail(fmt.Sprintf("log header truncated to %d bytes", len(data)))
		}
		if v := data[4]; v != byte(format.V2) {
			return nil, Tail{}, 0, &format.UnknownVersionError{Surface: "wal", Version: uint32(v)}
		}
		ver = format.V2
		off = logHeaderSize
	} else if len(data) > 0 {
		ver = format.V1
	}
	for int(off) < len(data) {
		rest := data[off:]
		var n, hdr int64
		if ver == format.V2 {
			pl, un := format.Uvarint(rest)
			if un == 0 {
				return fail(fmt.Sprintf("frame header truncated to %d bytes", len(rest)))
			}
			n, hdr = int64(pl), int64(un)+4
			if len(rest) < int(hdr) {
				return fail(fmt.Sprintf("frame header truncated to %d bytes", len(rest)))
			}
		} else {
			if len(rest) < frameHeader {
				return fail(fmt.Sprintf("frame header truncated to %d bytes", len(rest)))
			}
			n, hdr = int64(binary.LittleEndian.Uint32(rest)), frameHeader
		}
		if n == 0 {
			return fail("zero-length frame")
		}
		if hdr+n > int64(len(rest)) {
			return fail(fmt.Sprintf("frame truncated: %d payload bytes declared, %d present", n, int64(len(rest))-hdr))
		}
		payload := rest[hdr : hdr+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[hdr-4:]) {
			return fail("checksum mismatch")
		}
		rec, err := decodePayload(payload, ver)
		if err != nil {
			return fail(err.Error())
		}
		recs = append(recs, rec)
		off += hdr + n
	}
	return recs, Tail{ValidSize: off}, ver, nil
}
