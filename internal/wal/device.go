package wal

import (
	"fmt"
	"os"
	"sync"
)

// Device is the byte medium a Log writes to: append-only except for
// checkpoint truncation. It is deliberately tiny and defined here, not in
// the store package, so any store can expose a log facet structurally
// (CrashStore does, to put every WAL byte position under the power-cut
// generator) without importing wal.
type Device interface {
	// Append writes p at the current end of the log. The bytes are
	// buffered: they survive a crash only after Sync.
	Append(p []byte) error
	// Sync makes every appended byte durable (the fsync).
	Sync() error
	// Contents returns the full log image, for replay.
	Contents() ([]byte, error)
	// TruncateTo discards every byte at or after offset n (tail repair
	// truncates to the last whole frame; a checkpoint truncates to 0).
	TruncateTo(n int64) error
	// Size returns the current log length in bytes.
	Size() int64
	// Close releases the device.
	Close() error
}

// FileDevice is the production Device: one append-only file.
type FileDevice struct {
	mu   sync.Mutex
	f    *os.File
	size int64
}

// OpenFileDevice opens (creating if absent) the log file at path.
func OpenFileDevice(path string) (*FileDevice, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &FileDevice{f: f, size: st.Size()}, nil
}

// Append implements Device.
func (d *FileDevice) Append(p []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.f.WriteAt(p, d.size)
	d.size += int64(n)
	return err
}

// Sync implements Device.
func (d *FileDevice) Sync() error { return d.f.Sync() }

// Contents implements Device.
func (d *FileDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	buf := make([]byte, d.size)
	n, err := d.f.ReadAt(buf, 0)
	if int64(n) != d.size {
		return nil, fmt.Errorf("wal: short log read: %d of %d bytes: %v", n, d.size, err)
	}
	return buf, nil
}

// TruncateTo implements Device.
func (d *FileDevice) TruncateTo(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.f.Truncate(n); err != nil {
		return err
	}
	d.size = n
	return nil
}

// Size implements Device.
func (d *FileDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.size
}

// Close implements Device.
func (d *FileDevice) Close() error { return d.f.Close() }

// MemDevice is an in-memory Device for tests and memory-backed files.
type MemDevice struct {
	mu  sync.Mutex
	buf []byte
}

// NewMem returns an empty in-memory log device.
func NewMem() *MemDevice { return &MemDevice{} }

// Append implements Device.
func (d *MemDevice) Append(p []byte) error {
	d.mu.Lock()
	d.buf = append(d.buf, p...)
	d.mu.Unlock()
	return nil
}

// Sync implements Device.
func (d *MemDevice) Sync() error { return nil }

// Contents implements Device.
func (d *MemDevice) Contents() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]byte(nil), d.buf...), nil
}

// TruncateTo implements Device.
func (d *MemDevice) TruncateTo(n int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n < 0 || n > int64(len(d.buf)) {
		return fmt.Errorf("wal: truncate to %d outside log of %d bytes", n, len(d.buf))
	}
	d.buf = d.buf[:n]
	return nil
}

// Size implements Device.
func (d *MemDevice) Size() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.buf))
}

// Close implements Device.
func (d *MemDevice) Close() error { return nil }
