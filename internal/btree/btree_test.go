package btree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func newTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randomKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		l := 3 + rng.Intn(8)
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		k := string(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestConfigErrors(t *testing.T) {
	for i, cfg := range []Config{
		{LeafCapacity: 1},
		{LeafCapacity: 4, BranchFanout: 2},
		{LeafCapacity: 4, SplitPos: 5},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestBasicOps(t *testing.T) {
	tr := newTree(t, Config{LeafCapacity: 4})
	if _, ok := tr.Get("x"); ok {
		t.Fatal("empty tree claims a key")
	}
	if tr.Put("m", []byte("1")) {
		t.Fatal("first Put replaced")
	}
	if !tr.Put("m", []byte("2")) {
		t.Fatal("second Put did not replace")
	}
	if v, ok := tr.Get("m"); !ok || string(v) != "2" {
		t.Fatalf("Get = %q %v", v, ok)
	}
	if !tr.Delete("m") || tr.Delete("m") {
		t.Fatal("Delete misbehaved")
	}
	if tr.Len() != 0 {
		t.Fatalf("len %d", tr.Len())
	}
}

func TestAgainstModel(t *testing.T) {
	for _, cfg := range []Config{
		{LeafCapacity: 4},
		{LeafCapacity: 4, BranchFanout: 3},
		{LeafCapacity: 8, Redistribute: true},
		{LeafCapacity: 6, SplitPos: 6},
		{LeafCapacity: 6, SplitPos: 1},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("b%d-m%d-r%v", cfg.LeafCapacity, cfg.SplitPos, cfg.Redistribute), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			tr := newTree(t, cfg)
			model := map[string]string{}
			for step := 0; step < 6000; step++ {
				k := fmt.Sprintf("k%03d", rng.Intn(800))
				switch op := rng.Intn(10); {
				case op < 5:
					v := fmt.Sprintf("v%d", step)
					replaced := tr.Put(k, []byte(v))
					if _, had := model[k]; had != replaced {
						t.Fatalf("step %d Put(%q): replaced=%v", step, k, replaced)
					}
					model[k] = v
				case op < 8:
					v, ok := tr.Get(k)
					want, had := model[k]
					if ok != had || (ok && string(v) != want) {
						t.Fatalf("step %d Get(%q) = %q,%v want %q,%v", step, k, v, ok, want, had)
					}
				case op < 9:
					ok := tr.Delete(k)
					if _, had := model[k]; had != ok {
						t.Fatalf("step %d Delete(%q) = %v", step, k, ok)
					}
					delete(model, k)
				default:
					lo := fmt.Sprintf("k%03d", rng.Intn(800))
					hi := fmt.Sprintf("k%03d", rng.Intn(800))
					if hi < lo {
						lo, hi = hi, lo
					}
					var got []string
					tr.Range(lo, hi, func(k string, _ []byte) bool { got = append(got, k); return true })
					var want []string
					for mk := range model {
						if mk >= lo && mk <= hi {
							want = append(want, mk)
						}
					}
					sort.Strings(want)
					if fmt.Sprint(got) != fmt.Sprint(want) {
						t.Fatalf("step %d Range(%q,%q) = %v want %v", step, lo, hi, got, want)
					}
				}
				if step%1000 == 999 {
					if err := tr.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if tr.Len() != len(model) {
				t.Fatalf("tree %d keys, model %d", tr.Len(), len(model))
			}
		})
	}
}

// TestSortedLoad50 reproduces the classic result the paper cites: middle
// splits load a B-tree to 50% under sorted insertions, either direction.
func TestSortedLoad50(t *testing.T) {
	keys := randomKeys(1, 2000)
	sort.Strings(keys)
	for _, desc := range []bool{false, true} {
		ks := append([]string(nil), keys...)
		if desc {
			sort.Sort(sort.Reverse(sort.StringSlice(ks)))
		}
		tr := newTree(t, Config{LeafCapacity: 10})
		for _, k := range ks {
			tr.Put(k, nil)
		}
		load := tr.Stats().LeafLoad
		// Splitting b+1 = 11 records 5/6 means one direction's closed
		// leaves hold the extra record: the classic 50% is approached
		// from above as b grows.
		if load < 0.48 || load > 0.62 {
			t.Errorf("desc=%v: sorted load %.3f, want ~0.5", desc, load)
		}
		t.Logf("desc=%v: sorted load %.3f", desc, load)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCompactLoad reproduces /ROS81/: the split key at the top (ascending)
// or bottom (descending) yields a compact, 100%-loaded B-tree.
func TestCompactLoad(t *testing.T) {
	keys := randomKeys(2, 2000)
	sort.Strings(keys)
	b := 10
	tr := newTree(t, Config{LeafCapacity: b, SplitPos: b})
	for _, k := range keys {
		tr.Put(k, nil)
	}
	st := tr.Stats()
	closed := float64(st.Keys) / float64(b*(st.Leaves-1))
	if closed < 0.999 {
		t.Errorf("ascending compact: closed-leaf load %.4f", closed)
	}
	// Descending with SplitPos 1.
	sort.Sort(sort.Reverse(sort.StringSlice(keys)))
	td := newTree(t, Config{LeafCapacity: b, SplitPos: 1})
	for _, k := range keys {
		td.Put(k, nil)
	}
	std := td.Stats()
	closedD := float64(std.Keys) / float64(b*(std.Leaves-1))
	if closedD < 0.999 {
		t.Errorf("descending compact: closed-leaf load %.4f", closedD)
	}
	for _, x := range []*Tree{tr, td} {
		if err := x.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRandomLoad reproduces the ~ln2 = 69% random-insertion load, and the
// lift toward ~87% with redistribution (/KNU73/, cited in Section 4.5).
func TestRandomLoad(t *testing.T) {
	keys := randomKeys(3, 4000)
	plain := newTree(t, Config{LeafCapacity: 10})
	shift := newTree(t, Config{LeafCapacity: 10, Redistribute: true})
	for _, k := range keys {
		plain.Put(k, nil)
		shift.Put(k, nil)
	}
	lp := plain.Stats().LeafLoad
	ls := shift.Stats().LeafLoad
	if lp < 0.62 || lp > 0.76 {
		t.Errorf("plain random load %.3f, want ~0.69", lp)
	}
	if ls <= lp || ls < 0.75 {
		t.Errorf("redistributed load %.3f (plain %.3f), want ~0.85", ls, lp)
	}
	t.Logf("random load: plain=%.3f redistribute=%.3f", lp, ls)
}

// TestDeletionMinimumLoad verifies the 50% minimum under deletions.
func TestDeletionMinimumLoad(t *testing.T) {
	keys := randomKeys(4, 3000)
	tr := newTree(t, Config{LeafCapacity: 8})
	for _, k := range keys {
		tr.Put(k, nil)
	}
	rng := rand.New(rand.NewSource(4))
	perm := rng.Perm(len(keys))
	for _, pi := range perm[:2900] {
		if !tr.Delete(keys[pi]) {
			t.Fatalf("Delete(%q) missed", keys[pi])
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every leaf except a lone root holds >= ceil(b/2).
	if tr.Leaves() > 1 {
		st := tr.Stats()
		if st.LeafLoad < 0.5 {
			t.Errorf("post-deletion load %.3f < 0.5", st.LeafLoad)
		}
	}
	for _, pi := range perm[2900:] {
		if _, ok := tr.Get(keys[pi]); !ok {
			t.Errorf("survivor %q lost", keys[pi])
		}
	}
}

// TestHeightAndAccesses: a search visits height nodes, the paper's B-tree
// access cost.
func TestHeightAndAccesses(t *testing.T) {
	tr := newTree(t, Config{LeafCapacity: 4, BranchFanout: 4})
	keys := randomKeys(5, 1000)
	for _, k := range keys {
		tr.Put(k, nil)
	}
	if tr.Height() < 4 {
		t.Fatalf("height %d unexpectedly small", tr.Height())
	}
	tr.ResetAccesses()
	tr.Get(keys[0])
	if got := tr.Accesses(); got != int64(tr.Height()) {
		t.Errorf("search visited %d nodes, height is %d", got, tr.Height())
	}
}

// TestBranchBytes: branch space grows with separator keys and pointers.
func TestBranchBytes(t *testing.T) {
	tr := newTree(t, Config{LeafCapacity: 4, PtrBytes: 4})
	keys := randomKeys(6, 500)
	for _, k := range keys {
		tr.Put(k, nil)
	}
	st := tr.Stats()
	if st.BranchBytes <= st.BranchKeys*4 {
		t.Errorf("branch bytes %d do not include key bytes (%d separators)", st.BranchBytes, st.BranchKeys)
	}
	if st.BranchNodes == 0 || st.BranchKeys == 0 {
		t.Error("no branch structure accounted")
	}
}

func TestRangeEdgeCases(t *testing.T) {
	tr := newTree(t, Config{LeafCapacity: 4})
	for i := 0; i < 50; i++ {
		tr.Put(fmt.Sprintf("k%02d", i), nil)
	}
	var got []string
	tr.Range("k10", "k13", func(k string, _ []byte) bool { got = append(got, k); return true })
	if fmt.Sprint(got) != fmt.Sprint([]string{"k10", "k11", "k12", "k13"}) {
		t.Errorf("range: %v", got)
	}
	// Early stop.
	count := 0
	tr.Range("k00", "", func(string, []byte) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early stop after %d", count)
	}
	// Empty range.
	got = nil
	tr.Range("zzz", "", func(k string, _ []byte) bool { got = append(got, k); return true })
	if len(got) != 0 {
		t.Errorf("range beyond end: %v", got)
	}
}

func TestDeleteToEmptyAndRebuild(t *testing.T) {
	tr := newTree(t, Config{LeafCapacity: 4})
	keys := randomKeys(7, 300)
	for _, k := range keys {
		tr.Put(k, nil)
	}
	for _, k := range keys {
		if !tr.Delete(k) {
			t.Fatalf("Delete(%q) missed", k)
		}
	}
	if tr.Len() != 0 || tr.Height() != 1 || tr.Leaves() != 1 {
		t.Fatalf("emptied tree: len=%d height=%d leaves=%d", tr.Len(), tr.Height(), tr.Leaves())
	}
	for _, k := range keys {
		tr.Put(k, []byte(k))
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if v, ok := tr.Get(k); !ok || string(v) != k {
			t.Fatalf("rebuilt Get(%q) = %q %v", k, v, ok)
		}
	}
}

// TestPrefixSeparators verifies the simple prefix B-tree (/BAY77/):
// separators are the shortest distinguishing prefixes, the branch space
// shrinks, and the tree stays model-correct.
func TestPrefixSeparators(t *testing.T) {
	if got := shortestSeparator("packer", "packing"); got != "packi" {
		t.Errorf("shortestSeparator(packer, packing) = %q", got)
	}
	if got := shortestSeparator("ab", "b"); got != "b" {
		t.Errorf("shortestSeparator(ab, b) = %q", got)
	}
	if got := shortestSeparator("a", "ab"); got != "ab" {
		t.Errorf("shortestSeparator(a, ab) = %q", got)
	}

	keys := randomKeys(11, 3000)
	plain := newTree(t, Config{LeafCapacity: 10})
	prefix := newTree(t, Config{LeafCapacity: 10, PrefixSeparators: true})
	for _, k := range keys {
		plain.Put(k, []byte(k))
		prefix.Put(k, []byte(k))
	}
	if err := prefix.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	sp, sx := plain.Stats(), prefix.Stats()
	if sx.BranchBytes >= sp.BranchBytes {
		t.Errorf("prefix separators did not shrink branches: %d vs %d", sx.BranchBytes, sp.BranchBytes)
	}
	for _, k := range keys {
		if v, ok := prefix.Get(k); !ok || string(v) != k {
			t.Fatalf("prefix tree lost %q", k)
		}
	}
	// Ranged reads agree between the two trees.
	var a, b []string
	plain.Range(keys[10], keys[10][:2]+"zzzz", func(k string, _ []byte) bool { a = append(a, k); return true })
	prefix.Range(keys[10], keys[10][:2]+"zzzz", func(k string, _ []byte) bool { b = append(b, k); return true })
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("range disagreement: %d vs %d keys", len(a), len(b))
	}
	t.Logf("branch bytes: plain=%d prefix=%d (%.0f%% saved)", sp.BranchBytes, sx.BranchBytes,
		100*(1-float64(sx.BranchBytes)/float64(sp.BranchBytes)))
}

// TestPrefixSeparatorsModel shadows random traffic on a prefix tree.
func TestPrefixSeparatorsModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	tr := newTree(t, Config{LeafCapacity: 4, PrefixSeparators: true})
	model := map[string]bool{}
	for step := 0; step < 6000; step++ {
		k := fmt.Sprintf("k%03d", rng.Intn(600))
		if rng.Intn(3) == 0 {
			ok := tr.Delete(k)
			if model[k] != ok {
				t.Fatalf("step %d Delete(%q) = %v", step, k, ok)
			}
			delete(model, k)
		} else {
			replaced := tr.Put(k, nil)
			if model[k] != replaced {
				t.Fatalf("step %d Put(%q) replaced=%v", step, k, replaced)
			}
			model[k] = true
		}
		if step%1500 == 1499 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("len %d, model %d", tr.Len(), len(model))
	}
}
