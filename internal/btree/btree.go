// Package btree implements the B⁺-tree baseline the paper compares trie
// hashing against (Sections 3 and 5): leaves hold the records, internal
// nodes hold separator keys, and the leaf split position is configurable so
// the compact loading of /ROS81/ (100% for sorted insertions with the split
// key at the top) and the classic 50% middle split can both be measured.
// Optional redistribution shifts keys into siblings before splitting,
// reproducing the ~87% random-insertion load of /KNU73/.
//
// The tree counts node visits, which is the B-tree's disk-access currency
// in the paper's comparison (every node is a page).
package btree

import (
	"fmt"
	"sort"
)

// Config parameterizes the tree.
type Config struct {
	// LeafCapacity is the number of records a leaf holds (the paper's
	// bucket capacity b). Minimum 2.
	LeafCapacity int
	// BranchFanout is the maximum number of children of an internal
	// node. Minimum 3.
	BranchFanout int
	// SplitPos is the number of records kept in the left leaf when a
	// leaf of b+1 records splits; 0 selects the middle (b+1)/2.
	// LeafCapacity gives the compact B-tree of /ROS81/ for ascending
	// insertions; 1 for descending ones.
	SplitPos int
	// Redistribute makes overflowing leaves shift records into a
	// sibling with room before splitting.
	Redistribute bool
	// PtrBytes is the pointer size used for branch-space accounting
	// (the paper assumes 2-4 bytes; default 4).
	PtrBytes int
	// PrefixSeparators promotes the shortest separating prefix instead
	// of a full key on leaf splits — the simple prefix B-tree of
	// /BAY77/ that Section 5 of the paper names as the B-tree's
	// space-optimized variant.
	PrefixSeparators bool
}

// shortestSeparator returns the shortest prefix of hi that is strictly
// greater than lo; keys below it route left, keys at or above it right.
func shortestSeparator(lo, hi string) string {
	for l := 1; l <= len(hi); l++ {
		if hi[:l] > lo {
			return hi[:l]
		}
	}
	return hi
}

func (cfg Config) withDefaults() (Config, error) {
	if cfg.LeafCapacity < 2 {
		return cfg, fmt.Errorf("btree: leaf capacity %d; need at least 2", cfg.LeafCapacity)
	}
	if cfg.BranchFanout == 0 {
		cfg.BranchFanout = cfg.LeafCapacity + 1
	}
	if cfg.BranchFanout < 3 {
		return cfg, fmt.Errorf("btree: branch fanout %d; need at least 3", cfg.BranchFanout)
	}
	if cfg.SplitPos == 0 {
		cfg.SplitPos = (cfg.LeafCapacity + 1) / 2
	}
	if cfg.SplitPos < 1 || cfg.SplitPos > cfg.LeafCapacity {
		return cfg, fmt.Errorf("btree: split position %d outside [1, %d]", cfg.SplitPos, cfg.LeafCapacity)
	}
	if cfg.PtrBytes == 0 {
		cfg.PtrBytes = 4
	}
	return cfg, nil
}

type node struct {
	leaf bool
	// keys: record keys (leaf) or separators (branch); child i holds
	// keys <= keys[i] ... actually keys < keys[i] go to child i, keys
	// >= keys[i] to child i+1 (separator = smallest key of the right
	// subtree).
	keys []string
	vals [][]byte // leaf only
	kids []*node  // branch only; len(kids) == len(keys)+1
	next *node    // leaf chain
}

// Tree is a B⁺-tree.
type Tree struct {
	cfg    Config
	root   *node
	height int // nodes on a root-to-leaf path
	nkeys  int
	leaves int
	// splits and redistributions mirror the trie-hash file counters.
	splits          int
	redistributions int
	// accesses counts node visits (reads and writes both land on
	// visited nodes; one visit = one page transfer in the paper's
	// model).
	accesses int64
}

// New returns an empty tree.
func New(cfg Config) (*Tree, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Tree{
		cfg:    cfg,
		root:   &node{leaf: true},
		height: 1,
		leaves: 1,
	}, nil
}

// Len returns the number of records.
func (t *Tree) Len() int { return t.nkeys }

// Height returns the number of node levels.
func (t *Tree) Height() int { return t.height }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// Splits returns the number of leaf splits (redistributions included).
func (t *Tree) Splits() int { return t.splits }

// Redistributions returns the number of overflows resolved by shifting.
func (t *Tree) Redistributions() int { return t.redistributions }

// Accesses returns the accumulated node-visit count.
func (t *Tree) Accesses() int64 { return t.accesses }

// ResetAccesses zeroes the node-visit counter.
func (t *Tree) ResetAccesses() { t.accesses = 0 }

// leafFor descends to the leaf owning key, recording the path when path is
// non-nil (entries are (node, child index) pairs ending at the leaf).
func (t *Tree) leafFor(key string, path *[]pathEntry) *node {
	n := t.root
	for !n.leaf {
		t.accesses++
		i := sort.Search(len(n.keys), func(i int) bool { return key < n.keys[i] })
		if path != nil {
			*path = append(*path, pathEntry{n, i})
		}
		n = n.kids[i]
	}
	t.accesses++
	return n
}

type pathEntry struct {
	n   *node
	idx int
}

// Get returns the value stored under key.
func (t *Tree) Get(key string) ([]byte, bool) {
	n := t.leafFor(key, nil)
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		return n.vals[i], true
	}
	return nil, false
}

// Put inserts or replaces the record for key and reports whether an
// existing record was replaced.
func (t *Tree) Put(key string, value []byte) bool {
	var path []pathEntry
	n := t.leafFor(key, &path)
	i := sort.SearchStrings(n.keys, key)
	if i < len(n.keys) && n.keys[i] == key {
		n.vals[i] = value
		return true
	}
	n.keys = append(n.keys, "")
	n.vals = append(n.vals, nil)
	copy(n.keys[i+1:], n.keys[i:])
	copy(n.vals[i+1:], n.vals[i:])
	n.keys[i] = key
	n.vals[i] = value
	t.nkeys++
	if len(n.keys) > t.cfg.LeafCapacity {
		t.overflow(n, path)
	}
	return false
}

// overflow resolves a leaf holding LeafCapacity+1 records.
func (t *Tree) overflow(n *node, path []pathEntry) {
	if t.cfg.Redistribute && t.shiftToSibling(n, path) {
		t.splits++
		t.redistributions++
		return
	}
	t.splitLeaf(n, path)
	t.splits++
}

// shiftToSibling moves records into the left or right sibling leaf when
// one has room, updating the separator. Reports success.
func (t *Tree) shiftToSibling(n *node, path []pathEntry) bool {
	if len(path) == 0 {
		return false
	}
	parent := path[len(path)-1]
	p, idx := parent.n, parent.idx
	// Right sibling first: shift the top records over.
	if idx+1 < len(p.kids) {
		r := p.kids[idx+1]
		if free := t.cfg.LeafCapacity - len(r.keys); free >= 1 {
			total := len(n.keys) + len(r.keys)
			move := len(n.keys) - (total+1)/2
			if move < 1 {
				move = 1
			}
			if move > free {
				move = free
			}
			cut := len(n.keys) - move
			r.keys = append(append([]string(nil), n.keys[cut:]...), r.keys...)
			r.vals = append(append([][]byte(nil), n.vals[cut:]...), r.vals...)
			n.keys = n.keys[:cut]
			n.vals = n.vals[:cut]
			p.keys[idx] = r.keys[0]
			t.accesses += 3 // sibling read + two writes
			return true
		}
	}
	if idx > 0 {
		l := p.kids[idx-1]
		if free := t.cfg.LeafCapacity - len(l.keys); free >= 1 {
			total := len(n.keys) + len(l.keys)
			move := len(n.keys) - (total+1)/2
			if move < 1 {
				move = 1
			}
			if move > free {
				move = free
			}
			l.keys = append(l.keys, n.keys[:move]...)
			l.vals = append(l.vals, n.vals[:move]...)
			n.keys = append([]string(nil), n.keys[move:]...)
			n.vals = append([][]byte(nil), n.vals[move:]...)
			p.keys[idx-1] = n.keys[0]
			t.accesses += 3
			return true
		}
	}
	return false
}

// splitLeaf splits n at the configured position and inserts the separator
// into the parent chain.
func (t *Tree) splitLeaf(n *node, path []pathEntry) {
	keep := t.cfg.SplitPos
	if keep >= len(n.keys) {
		keep = len(n.keys) - 1
	}
	r := &node{
		leaf: true,
		keys: append([]string(nil), n.keys[keep:]...),
		vals: append([][]byte(nil), n.vals[keep:]...),
		next: n.next,
	}
	n.keys = n.keys[:keep]
	n.vals = n.vals[:keep]
	n.next = r
	t.leaves++
	t.accesses += 2 // both halves written
	sep := r.keys[0]
	if t.cfg.PrefixSeparators {
		sep = shortestSeparator(n.keys[len(n.keys)-1], r.keys[0])
	}
	t.insertIntoParent(n, sep, r, path)
}

// insertIntoParent links the new right node under n's parent, splitting
// branches upward as needed.
func (t *Tree) insertIntoParent(left *node, sep string, right *node, path []pathEntry) {
	if len(path) == 0 {
		t.root = &node{keys: []string{sep}, kids: []*node{left, right}}
		t.height++
		t.accesses++
		return
	}
	parent := path[len(path)-1]
	p, idx := parent.n, parent.idx
	p.keys = append(p.keys, "")
	p.kids = append(p.kids, nil)
	copy(p.keys[idx+1:], p.keys[idx:])
	copy(p.kids[idx+2:], p.kids[idx+1:])
	p.keys[idx] = sep
	p.kids[idx+1] = right
	t.accesses++
	if len(p.kids) <= t.cfg.BranchFanout {
		return
	}
	// Branch split: middle key moves up.
	mid := len(p.keys) / 2
	upKey := p.keys[mid]
	r := &node{
		keys: append([]string(nil), p.keys[mid+1:]...),
		kids: append([]*node(nil), p.kids[mid+1:]...),
	}
	p.keys = p.keys[:mid]
	p.kids = p.kids[:mid+1]
	t.accesses += 2
	t.insertIntoParent(p, upKey, r, path[:len(path)-1])
}

// Delete removes the record for key and rebalances, reporting whether the
// key existed.
func (t *Tree) Delete(key string) bool {
	var path []pathEntry
	n := t.leafFor(key, &path)
	i := sort.SearchStrings(n.keys, key)
	if i >= len(n.keys) || n.keys[i] != key {
		return false
	}
	copy(n.keys[i:], n.keys[i+1:])
	copy(n.vals[i:], n.vals[i+1:])
	n.keys = n.keys[:len(n.keys)-1]
	n.vals = n.vals[:len(n.vals)-1]
	t.nkeys--
	t.accesses++
	t.rebalanceLeaf(n, path)
	return true
}

func (t *Tree) minLeafKeys() int { return (t.cfg.LeafCapacity + 1) / 2 }

func (t *Tree) rebalanceLeaf(n *node, path []pathEntry) {
	if len(n.keys) >= t.minLeafKeys() || len(path) == 0 {
		return
	}
	parent := path[len(path)-1]
	p, idx := parent.n, parent.idx
	// Borrow from a sibling with spare records.
	if idx+1 < len(p.kids) {
		r := p.kids[idx+1]
		if len(r.keys) > t.minLeafKeys() {
			move := (len(r.keys) - len(n.keys)) / 2
			if move < 1 {
				move = 1
			}
			n.keys = append(n.keys, r.keys[:move]...)
			n.vals = append(n.vals, r.vals[:move]...)
			r.keys = append([]string(nil), r.keys[move:]...)
			r.vals = append([][]byte(nil), r.vals[move:]...)
			p.keys[idx] = r.keys[0]
			t.accesses += 3
			return
		}
	}
	if idx > 0 {
		l := p.kids[idx-1]
		if len(l.keys) > t.minLeafKeys() {
			move := (len(l.keys) - len(n.keys)) / 2
			if move < 1 {
				move = 1
			}
			cut := len(l.keys) - move
			n.keys = append(append([]string(nil), l.keys[cut:]...), n.keys...)
			n.vals = append(append([][]byte(nil), l.vals[cut:]...), n.vals...)
			l.keys = l.keys[:cut]
			l.vals = l.vals[:cut]
			p.keys[idx-1] = n.keys[0]
			t.accesses += 3
			return
		}
	}
	// Merge with a sibling.
	if idx+1 < len(p.kids) {
		t.mergeLeaves(p, idx, path)
	} else if idx > 0 {
		t.mergeLeaves(p, idx-1, path)
	}
}

// mergeLeaves merges p.kids[i+1] into p.kids[i] and removes separator i.
func (t *Tree) mergeLeaves(p *node, i int, path []pathEntry) {
	l, r := p.kids[i], p.kids[i+1]
	l.keys = append(l.keys, r.keys...)
	l.vals = append(l.vals, r.vals...)
	l.next = r.next
	copy(p.keys[i:], p.keys[i+1:])
	copy(p.kids[i+1:], p.kids[i+2:])
	p.keys = p.keys[:len(p.keys)-1]
	p.kids = p.kids[:len(p.kids)-1]
	t.leaves--
	t.accesses += 2
	t.rebalanceBranch(p, path[:len(path)-1])
}

func (t *Tree) minKids() int { return (t.cfg.BranchFanout + 1) / 2 }

func (t *Tree) rebalanceBranch(n *node, path []pathEntry) {
	if n == t.root {
		if len(n.kids) == 1 {
			t.root = n.kids[0]
			t.height--
		}
		return
	}
	if len(n.kids) >= t.minKids() {
		return
	}
	parent := path[len(path)-1]
	p, idx := parent.n, parent.idx
	if idx+1 < len(p.kids) {
		r := p.kids[idx+1]
		if len(r.kids) > t.minKids() {
			// Rotate leftward through the parent separator.
			n.keys = append(n.keys, p.keys[idx])
			n.kids = append(n.kids, r.kids[0])
			p.keys[idx] = r.keys[0]
			r.keys = append([]string(nil), r.keys[1:]...)
			r.kids = append([]*node(nil), r.kids[1:]...)
			t.accesses += 3
			return
		}
	}
	if idx > 0 {
		l := p.kids[idx-1]
		if len(l.kids) > t.minKids() {
			n.keys = append([]string{p.keys[idx-1]}, n.keys...)
			n.kids = append([]*node{l.kids[len(l.kids)-1]}, n.kids...)
			p.keys[idx-1] = l.keys[len(l.keys)-1]
			l.keys = l.keys[:len(l.keys)-1]
			l.kids = l.kids[:len(l.kids)-1]
			t.accesses += 3
			return
		}
	}
	// Merge branches around a separator.
	i := idx
	if i+1 >= len(p.kids) {
		i = idx - 1
	}
	l, r := p.kids[i], p.kids[i+1]
	l.keys = append(append(l.keys, p.keys[i]), r.keys...)
	l.kids = append(l.kids, r.kids...)
	copy(p.keys[i:], p.keys[i+1:])
	copy(p.kids[i+1:], p.kids[i+2:])
	p.keys = p.keys[:len(p.keys)-1]
	p.kids = p.kids[:len(p.kids)-1]
	t.accesses += 2
	t.rebalanceBranch(p, path[:len(path)-1])
}

// Range calls fn for records with from <= key <= to (empty to = no upper
// bound) in ascending order until fn returns false.
func (t *Tree) Range(from, to string, fn func(key string, value []byte) bool) {
	n := t.leafFor(from, nil)
	for n != nil {
		for i, k := range n.keys {
			if k < from {
				continue
			}
			if to != "" && k > to {
				return
			}
			if !fn(k, n.vals[i]) {
				return
			}
		}
		n = n.next
		if n != nil {
			t.accesses++
		}
	}
}
