package btree

import "fmt"

// Stats is the measurement snapshot used by the paper-reproduction
// benches: leaf load factor and the space the branching structure needs,
// for direct comparison with the trie's 6-byte cells.
type Stats struct {
	Keys   int
	Leaves int
	// LeafLoad is keys / (leaves * leaf capacity) — the B-tree analogue
	// of the paper's bucket load factor a.
	LeafLoad float64
	// BranchNodes counts internal nodes; BranchKeys the separators.
	BranchNodes int
	BranchKeys  int
	// BranchBytes is the space of the branching structure: separator
	// key bytes plus one pointer per child (PtrBytes each). This is
	// the number the paper compares the trie's M*6 bytes against.
	BranchBytes int
	Height      int
	Splits      int
}

// Stats computes the snapshot by walking the tree.
func (t *Tree) Stats() Stats {
	st := Stats{
		Keys:   t.nkeys,
		Leaves: t.leaves,
		Height: t.height,
		Splits: t.splits,
	}
	if t.leaves > 0 {
		st.LeafLoad = float64(t.nkeys) / float64(t.leaves*t.cfg.LeafCapacity)
	}
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			return
		}
		st.BranchNodes++
		st.BranchKeys += len(n.keys)
		for _, k := range n.keys {
			st.BranchBytes += len(k)
		}
		st.BranchBytes += len(n.kids) * t.cfg.PtrBytes
		for _, kid := range n.kids {
			walk(kid)
		}
	}
	walk(t.root)
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("keys=%d leaves=%d load=%.3f branch=%d nodes (%d B) height=%d",
		s.Keys, s.Leaves, s.LeafLoad, s.BranchNodes, s.BranchBytes, s.Height)
}

// CheckInvariants verifies the structural invariants: uniform depth,
// sorted keys, separator correctness, capacity and (except the root and
// the rightmost spine during compact loading) minimum-fill bounds, the
// leaf chain, and the record count.
func (t *Tree) CheckInvariants() error {
	leafDepth := -1
	total := 0
	prev := ""
	first := true
	var firstLeaf, lastLeaf *node
	var walk func(n *node, depth int, lo, hi string) error
	walk = func(n *node, depth int, lo, hi string) error {
		if n.leaf {
			if leafDepth < 0 {
				leafDepth = depth
				firstLeaf = n
			}
			if depth != leafDepth {
				return fmt.Errorf("btree: leaf at depth %d, expected %d", depth, leafDepth)
			}
			if len(n.keys) != len(n.vals) {
				return fmt.Errorf("btree: leaf keys/vals length mismatch")
			}
			if len(n.keys) > t.cfg.LeafCapacity {
				return fmt.Errorf("btree: leaf holds %d > %d records", len(n.keys), t.cfg.LeafCapacity)
			}
			for _, k := range n.keys {
				if !first && k <= prev {
					return fmt.Errorf("btree: key order violated: %q after %q", k, prev)
				}
				if lo != "" && k < lo {
					return fmt.Errorf("btree: key %q below separator %q", k, lo)
				}
				if hi != "" && k >= hi {
					return fmt.Errorf("btree: key %q at or above separator %q", k, hi)
				}
				prev, first = k, false
				total++
			}
			lastLeaf = n
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("btree: branch with %d keys and %d kids", len(n.keys), len(n.kids))
		}
		if len(n.kids) > t.cfg.BranchFanout {
			return fmt.Errorf("btree: branch fanout %d > %d", len(n.kids), t.cfg.BranchFanout)
		}
		for i := range n.keys {
			if i > 0 && n.keys[i] <= n.keys[i-1] {
				return fmt.Errorf("btree: separators out of order")
			}
		}
		for i, kid := range n.kids {
			klo, khi := lo, hi
			if i > 0 {
				klo = n.keys[i-1]
			}
			if i < len(n.keys) {
				khi = n.keys[i]
			}
			if err := walk(kid, depth+1, klo, khi); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 1, "", ""); err != nil {
		return err
	}
	if leafDepth != t.height {
		return fmt.Errorf("btree: height %d, leaves at depth %d", t.height, leafDepth)
	}
	if total != t.nkeys {
		return fmt.Errorf("btree: %d records counted, %d recorded", total, t.nkeys)
	}
	// Leaf chain covers exactly the leaves, in order.
	chain := 0
	for n := firstLeaf; n != nil; n = n.next {
		chain++
	}
	if chain != t.leaves {
		return fmt.Errorf("btree: leaf chain has %d leaves, tree has %d", chain, t.leaves)
	}
	if lastLeaf != nil && lastLeaf.next != nil {
		return fmt.Errorf("btree: rightmost leaf has a successor")
	}
	return nil
}
