package trie

import (
	"bytes"
	"encoding/binary"
	"testing"

	"triehash/internal/format"
)

// FuzzTrieDecode drives the persisted-trie decoder with arbitrary bytes —
// the one input surface thvet's static invariants cannot cover, since a
// corrupted meta.th reaches DecodeBinary before any other validation. The
// decoder must never panic, must reject inputs whose cell graph is not a
// tree, and on success must round-trip: re-encoding the decoded trie and
// decoding again yields a byte-identical encoding (the canonical-form
// property Sync/Open relies on).
func FuzzTrieDecode(f *testing.F) {
	// Seed with real encodings: a one-leaf trie and the paper's Fig 3
	// shape, plus a truncation and a corruption of the latter.
	f.Add(New(ascii, 0).AppendBinary(nil))
	fig3 := New(ascii, 0)
	fig3.SetBoundary("g", []byte("g"), 0, 0, 7, ModeBasic)
	fig3.SetBoundary("he", []byte("he"), 7, 7, 9, ModeBasic)
	enc := fig3.AppendBinary(nil)
	f.Add(enc)
	f.Add(enc[:len(enc)-5])
	corrupt := append([]byte(nil), enc...)
	corrupt[20] ^= 0xFF
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) >= 4 && binary.LittleEndian.Uint32(data) == encodeMagicV2 {
			// The v1 identity below (re-encoding consumes exactly n bytes)
			// does not hold for the varint layout; FuzzTrieDecodeV2 owns
			// that surface.
			return
		}
		tr, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n < 16 || n > len(data) {
			t.Fatalf("DecodeBinary consumed %d of %d bytes", n, len(data))
		}
		enc := tr.AppendBinary(nil)
		if len(enc) != n {
			t.Fatalf("re-encoding yields %d bytes, decode consumed %d", len(enc), n)
		}
		back, n2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if back.Cells() != tr.Cells() || back.Root() != tr.Root() {
			t.Fatalf("round-trip changed shape: %d/%v cells/root, want %d/%v",
				back.Cells(), back.Root(), tr.Cells(), tr.Root())
		}
		if enc2 := back.AppendBinary(nil); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical: enc(dec(enc)) differs from enc")
		}
	})
}

// FuzzTrieDecodeV2 covers the version-2 trie page: the uvarint delta
// stream over a pre-order walk. The decoder must never panic, must
// reject impossible cell counts before allocating, and on success must
// round-trip canonically — decoding re-numbers cells in pre-order, so
// enc(dec(x)) is the canonical form and must be a fixed point of
// decode+encode. Input bytes need not re-encode identically (the decoder
// accepts non-minimal uvarints), so the property is canonical-form, not
// identity with the input.
func FuzzTrieDecodeV2(f *testing.F) {
	f.Add(New(ascii, 0).AppendFormat(nil, format.V2))
	fig3 := New(ascii, 0)
	fig3.SetBoundary("g", []byte("g"), 0, 0, 7, ModeBasic)
	fig3.SetBoundary("he", []byte("he"), 7, 7, 9, ModeBasic)
	enc := fig3.AppendFormat(nil, format.V2)
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)

	future := append([]byte(nil), enc...)
	future[4] = 9 // unknown future version: typed error, no panic
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || binary.LittleEndian.Uint32(data) != encodeMagicV2 {
			return // FuzzTrieDecode owns the v1 surface
		}
		tr, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeBinary consumed %d of %d bytes", n, len(data))
		}
		enc := tr.AppendFormat(nil, format.V2)
		back, n2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if back.Cells() != tr.Cells() || back.Root() != tr.Root() {
			t.Fatalf("round-trip changed shape: %d/%v cells/root, want %d/%v",
				back.Cells(), back.Root(), tr.Cells(), tr.Root())
		}
		if enc2 := back.AppendFormat(nil, format.V2); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical: enc(dec(enc)) differs from enc")
		}
	})
}
