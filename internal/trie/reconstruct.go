package trie

import (
	"fmt"

	"triehash/internal/keys"
)

// Reconstruct rebuilds a trie from its in-order leaf sequence — the
// algorithm of /TOR83/ the paper's conclusion describes for recovering an
// accidentally destroyed trie from logical paths stored in bucket headers.
// leaves carry the strictly increasing bounds (known digits; the last
// entry must hold the infinite bound, an empty path) and the leaf pointers.
//
// The reconstruction picks, at every level, the most balanced boundary
// whose digits are all justified by the context path, so the result is
// usually better balanced than the original — the property /TOR83/
// conjectures optimal. The reconstructed trie is search-equivalent to the
// original: it induces the same key-range partition.
func Reconstruct(alpha keys.Alphabet, bounds [][]byte, ptrs []Ptr) (*Trie, error) {
	if len(bounds) != len(ptrs) {
		return nil, fmt.Errorf("trie: reconstruct: %d bounds for %d leaves", len(bounds), len(ptrs))
	}
	if len(ptrs) == 0 {
		return nil, fmt.Errorf("trie: reconstruct: no leaves")
	}
	if len(bounds[len(bounds)-1]) != 0 {
		return nil, fmt.Errorf("trie: reconstruct: last bound %q is not the infinite path", bounds[len(bounds)-1])
	}
	for i := 1; i < len(bounds); i++ {
		if alpha.ComparePathBounds(bounds[i-1], bounds[i]) >= 0 {
			return nil, fmt.Errorf("trie: reconstruct: bounds not increasing at %d (%q, %q)", i, bounds[i-1], bounds[i])
		}
	}
	t := &Trie{alpha: alpha}
	root, err := t.reconstruct(bounds, ptrs, nil)
	if err != nil {
		return nil, err
	}
	t.root = root
	return t, nil
}

// reconstruct builds the subtrie over leaves [0..n) whose internal
// boundaries are bounds[0..n-1); ctx holds the digits set by ancestors.
func (t *Trie) reconstruct(bounds [][]byte, ptrs []Ptr, ctx []byte) (Ptr, error) {
	if len(ptrs) == 1 {
		t.bumpLeaf(ptrs[0], +1)
		return ptrs[0], nil
	}
	// Candidate boundaries: every digit of the bound except the last is
	// already in the context. Pick the candidate closest to the middle.
	best := -1
	mid := (len(ptrs) - 2) / 2
	for i := 0; i < len(ptrs)-1; i++ {
		b := bounds[i]
		if len(b) == 0 {
			return Nil, fmt.Errorf("trie: reconstruct: interior bound %d is infinite", i)
		}
		if keys.CommonPrefixLen(b[:len(b)-1], ctx) != len(b)-1 {
			continue
		}
		if best < 0 || abs(i-mid) < abs(best-mid) {
			best = i
		}
	}
	if best < 0 {
		// No boundary is directly expressible: every interior bound
		// needs digits the context lacks. Synthesize the shared-leaf
		// chain a THCL split would have built — insert the prefix
		// bounds of the shortest interior bound as virtual boundaries
		// owned by the bucket of the region they fall in, then recurse
		// (the shortest prefix is then expressible).
		return t.reconstructChain(bounds, ptrs, ctx)
	}
	b := bounds[best]
	ci := t.appendCell(b[len(b)-1], int32(len(b)-1))
	t.nilLeaves -= 2 // both sides are wired immediately below
	lp, err := t.reconstruct(bounds[:best+1], ptrs[:best+1], b)
	if err != nil {
		return Nil, err
	}
	rp, err := t.reconstruct(bounds[best+1:], ptrs[best+1:], ctx)
	if err != nil {
		return Nil, err
	}
	t.cells[ci].LP = lp
	t.cells[ci].RP = rp
	return Edge(ci), nil
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// reconstructChain handles the segment whose interior bounds all exceed
// the context by more than one digit: the prefix bounds of the shortest
// interior bound are merged in as virtual boundaries (each owned by the
// bucket whose region contains it — the shared-leaf pattern), after which
// the ordinary reconstruction proceeds.
func (t *Trie) reconstructChain(bounds [][]byte, ptrs []Ptr, ctx []byte) (Ptr, error) {
	short := 0
	for i := 1; i < len(ptrs)-1; i++ {
		if len(bounds[i]) < len(bounds[short]) {
			short = i
		}
	}
	b := bounds[short]
	cp := keys.CommonPrefixLen(b[:len(b)-1], ctx)
	if cp >= len(b)-1 {
		return Nil, fmt.Errorf("trie: reconstruct: bound %q should have been expressible under %q", b, ctx)
	}
	// Virtual bounds b[:j] for j = len(b)-1 .. cp+1, ascending as bounds
	// (longer prefix = smaller bound), merged into sorted position.
	virt := make([][]byte, 0, len(b)-1-cp)
	for j := len(b) - 1; j > cp; j-- {
		virt = append(virt, b[:j])
	}
	augB := make([][]byte, 0, len(bounds)+len(virt))
	augP := make([]Ptr, 0, len(ptrs)+len(virt))
	vi := 0
	for i := range bounds {
		for vi < len(virt) {
			cmp := 1
			if len(bounds[i]) != 0 {
				cmp = t.alpha.ComparePathBounds(virt[vi], bounds[i])
			} else {
				cmp = -1
			}
			if cmp >= 0 {
				break
			}
			// The virtual bound falls inside region i: both halves
			// stay with region i's bucket.
			augB = append(augB, virt[vi])
			augP = append(augP, ptrs[i])
			vi++
		}
		augB = append(augB, bounds[i])
		augP = append(augP, ptrs[i])
	}
	if vi != len(virt) {
		return Nil, fmt.Errorf("trie: reconstruct: virtual bound %q fell past the segment", virt[vi])
	}
	return t.reconstruct(augB, augP, ctx)
}
