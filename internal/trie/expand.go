package trie

import (
	"fmt"

	"triehash/internal/keys"
)

// Mode selects between the basic method of /LIT81/ and the THCL refinement.
type Mode int

const (
	// ModeBasic is basic trie hashing: every bucket has exactly one leaf
	// and multi-digit split strings create nil leaves (Algorithm A2).
	ModeBasic Mode = iota
	// ModeTHCL is trie hashing with controlled load: no nil leaves are
	// ever created; the right children of a multi-digit expansion all
	// carry the new bucket's address, and several leaves may point to
	// the same bucket (Section 4.1 of the paper).
	ModeTHCL
)

func (m Mode) String() string {
	if m == ModeBasic {
		return "TH"
	}
	return "THCL"
}

// ExpandStats reports what a SetBoundary call did to the trie.
type ExpandStats struct {
	NewCells     int // internal nodes appended
	NewNilLeaves int // nil leaves created (basic mode only)
	Repointed    int // existing leaves whose address changed
}

// SetBoundary installs the split string s as a new partition boundary
// inside the key range currently owned by bucket old: after the call, keys
// of that range at or below bound s map to bucket low and keys above s map
// to bucket high. splitKey is the split key c' the boundary was derived
// from (s must be a padded prefix of it); it locates the affected leaves.
//
// The one operation subsumes every trie expansion in the paper:
//
//   - basic TH split (Algorithm A2 step 3): low = old, high = new bucket N,
//     mode ModeBasic — nil right children on multi-digit expansions;
//   - THCL split (Section 4.1 steps 3.0–3.5): low = old, high = N, mode
//     ModeTHCL — shared leaves, successor leaves of old repointed to N;
//   - redistribution to the inorder successor S (Section 4.4): low = old,
//     high = S;
//   - redistribution to the inorder predecessor P: low = P, high = old.
//
// The caller must have arranged the bucket contents so that at least one
// key above s existed in old (otherwise the boundary is vacuous and the
// call panics: it would be a splitter bug).
func (t *Trie) SetBoundary(splitKey string, s []byte, old, low, high int32, mode Mode) ExpandStats {
	res := t.Search(splitKey)
	if res.Leaf.IsNil() || res.Leaf.Addr() != old {
		panic(fmt.Sprintf("trie: SetBoundary: split key %q maps to %s, not to bucket %d", splitKey, res.Leaf, old))
	}
	if mode == ModeBasic && (low != old || t.LeafCount(old) != 1) {
		panic("trie: SetBoundary: basic mode requires a single leaf per bucket and low == old")
	}

	// Fast path: bucket old has a single leaf and keeps the low side.
	// The boundary must then fall strictly inside that leaf's range.
	if t.LeafCount(old) == 1 && low == old {
		if t.alpha.ComparePathBounds(s, res.Path) >= 0 {
			panic(fmt.Sprintf("trie: SetBoundary: boundary %q does not fall below bucket %d's upper range %q", s, old, res.Path))
		}
		return t.insertChain(res.Pos, res.Path, s, low, high, mode)
	}

	// General path: locate the contiguous in-order run of leaves
	// carrying old and place the boundary within it.
	leaves := t.InorderLeaves()
	lo, hi := -1, -1
	for q, lp := range leaves {
		if !lp.Leaf.IsNil() && lp.Leaf.IsLeaf() && lp.Leaf.Addr() == old {
			if lo < 0 {
				lo = q
			}
			hi = q
		}
	}
	if lo < 0 {
		panic(fmt.Sprintf("trie: SetBoundary: no leaf carries bucket %d", old))
	}

	var st ExpandStats
	straddle := -1 // first run index whose bound exceeds s
	exact := false // boundary coincides with a leaf bound
	for q := lo; q <= hi; q++ {
		cmp := t.alpha.ComparePathBounds(leaves[q].Path, s)
		if cmp <= 0 {
			if low != old {
				t.setPtr(leaves[q].Pos, Leaf(low))
				st.Repointed++
			}
			if cmp == 0 {
				exact = true
			}
			continue
		}
		straddle = q
		break
	}
	if straddle < 0 {
		panic(fmt.Sprintf("trie: SetBoundary: boundary %q does not fall below bucket %d's upper range", s, old))
	}
	if !exact {
		// The boundary cuts strictly into this leaf's range: expand
		// the trie there. Later leaves of the run then switch to high.
		cs := t.insertChain(leaves[straddle].Pos, leaves[straddle].Path, s, low, high, mode)
		st.NewCells += cs.NewCells
		st.NewNilLeaves += cs.NewNilLeaves
		straddle++
	}
	for q := straddle; q <= hi; q++ {
		t.setPtr(leaves[q].Pos, Leaf(high))
		st.Repointed++
	}
	return st
}

// insertChain replaces the leaf at pos (logical path C) with the internal
// nodes for the digits of split string s that are not already on the path
// (Algorithm A2 steps 3.1–3.3 and their THCL counterparts). The bottom
// cell's children are leaves low and high; in basic mode the right children
// of upper chain cells are nil leaves, in THCL mode they carry high.
func (t *Trie) insertChain(pos Pos, C []byte, s []byte, low, high int32, mode Mode) ExpandStats {
	cp := keys.CommonPrefixLen(s, C)
	k := len(s) - cp
	if k < 1 {
		panic(fmt.Sprintf("trie: insertChain: split string %q already contained in path %q", s, C))
	}
	var st ExpandStats
	first := int32(-1)
	var prev int32 = -1
	for j := cp; j < len(s); j++ {
		ci := t.appendCell(s[j], int32(j))
		st.NewCells++
		if first < 0 {
			first = ci
		}
		if prev >= 0 {
			t.setPtr(Pos{Cell: prev, Side: SideLeft}, Edge(ci))
			if mode == ModeBasic {
				// Right child stays the nil leaf it was created
				// with; it now counts as a live nil leaf.
				st.NewNilLeaves++
			} else {
				t.setPtr(Pos{Cell: prev, Side: SideRight}, Leaf(high))
			}
		}
		prev = ci
	}
	t.setPtr(Pos{Cell: prev, Side: SideLeft}, Leaf(low))
	t.setPtr(Pos{Cell: prev, Side: SideRight}, Leaf(high))
	t.setPtr(pos, Edge(first))
	return st
}

// ExpandAt installs split string s at the single leaf at pos, whose full
// logical path (inherited upper-page digits included) is path. It is the
// entry point multilevel trie hashing uses: the caller located the leaf
// through a multi-page search, so no in-trie search is repeated here. The
// leaf keeps low on the left of the new boundary; high goes right. Only
// meaningful when the bucket at pos has a single leaf (the basic method).
func (t *Trie) ExpandAt(pos Pos, path []byte, s []byte, low, high int32, mode Mode) ExpandStats {
	if p := t.at(pos); !p.IsLeaf() || p.IsNil() {
		panic(fmt.Sprintf("trie: ExpandAt: position %+v holds %s", pos, p))
	}
	if t.alpha.ComparePathBounds(s, path) >= 0 {
		panic(fmt.Sprintf("trie: ExpandAt: boundary %q does not fall below the leaf bound %q", s, path))
	}
	return t.insertChain(pos, path, s, low, high, mode)
}

// FindLeafAddr returns the position of the first in-order leaf carrying
// address addr.
func (t *Trie) FindLeafAddr(addr int32) (Pos, bool) {
	var found Pos
	ok := false
	var walk func(n Ptr, pos Pos) bool
	walk = func(n Ptr, pos Pos) bool {
		if n.IsLeaf() {
			if !n.IsNil() && n.Addr() == addr {
				found, ok = pos, true
				return true
			}
			return false
		}
		ci := n.Cell()
		return walk(t.cells[ci].LP, Pos{Cell: ci, Side: SideLeft}) ||
			walk(t.cells[ci].RP, Pos{Cell: ci, Side: SideRight})
	}
	walk(t.root, RootPos)
	return found, ok
}

// ReplaceLeafWithCell substitutes the leaf at pos with a new internal node
// holding c's value, whose children are lp and rp. The multilevel scheme
// uses it to reinstall a split node one page level up: the page pointer
// leaf becomes a router cell over the two half-pages.
func (t *Trie) ReplaceLeafWithCell(pos Pos, c Cell, lp, rp Ptr) {
	if p := t.at(pos); !p.IsLeaf() {
		panic(fmt.Sprintf("trie: ReplaceLeafWithCell: position %+v holds %s", pos, p))
	}
	ci := t.appendCell(c.DV, c.DN)
	t.setPtr(Pos{Cell: ci, Side: SideLeft}, lp)
	t.setPtr(Pos{Cell: ci, Side: SideRight}, rp)
	t.setPtr(pos, Edge(ci))
}

// SetLeaf repoints the leaf at pos to bucket address addr. The multilevel
// THCL scheme uses it for the cross-page successor repointing of steps
// 3.4/3.5, where the run of leaves sharing a bucket spans several pages.
func (t *Trie) SetLeaf(pos Pos, addr int32) {
	if p := t.at(pos); !p.IsLeaf() {
		panic(fmt.Sprintf("trie: SetLeaf: position %+v holds %s", pos, p))
	}
	t.setPtr(pos, Leaf(addr))
}

// AllocNil assigns bucket address addr to the nil leaf at pos. This is the
// basic method's lazy bucket allocation: the first insertion that reaches a
// nil leaf appends a bucket and claims the leaf.
func (t *Trie) AllocNil(pos Pos, addr int32) {
	p := t.at(pos)
	if !p.IsNil() {
		panic(fmt.Sprintf("trie: AllocNil: position %+v holds %s, not nil", pos, p))
	}
	t.setPtr(pos, Leaf(addr))
}
