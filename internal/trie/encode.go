package trie

import (
	"encoding/binary"
	"fmt"

	"triehash/internal/keys"
)

// PaperCellBytes is the practical cell size the paper reports: one byte
// each for DV and DN, two bytes each for LP and RP.
const PaperCellBytes = 6

// PaperBytes returns the trie's size under the paper's 6-byte-cell
// accounting; this is the number compared against B-tree branching-node
// space in Sections 3.1 and 4.5.
func (t *Trie) PaperBytes() int { return len(t.cells) * PaperCellBytes }

// encodeMagic guards serialized tries.
const encodeMagic = 0x54485452 // "THTR"

// AppendBinary serializes the trie (alphabet, root pointer, cell table)
// into buf and returns the extended slice. The format is fixed-width
// little-endian: portable, self-describing, and cheap to decode.
func (t *Trie) AppendBinary(buf []byte) []byte {
	if t.dead > 0 {
		// Serialize a compacted view: tombstones are a purely in-memory
		// concurrency aid and never hit the disk format.
		v := t.Clone()
		v.Vacuum()
		t = v
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], encodeMagic)
	hdr[4] = t.alpha.Min
	hdr[5] = t.alpha.Max
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.root))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(t.cells)))
	buf = append(buf, hdr[:]...)
	var rec [13]byte
	for _, c := range t.cells {
		rec[0] = c.DV
		binary.LittleEndian.PutUint32(rec[1:], uint32(c.DN))
		binary.LittleEndian.PutUint32(rec[5:], uint32(c.LP))
		binary.LittleEndian.PutUint32(rec[9:], uint32(c.RP))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// DecodeBinary reconstructs a trie serialized by AppendBinary, returning
// the trie and the number of bytes consumed.
func DecodeBinary(buf []byte) (*Trie, int, error) {
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("trie: decode: truncated header (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != encodeMagic {
		return nil, 0, fmt.Errorf("trie: decode: bad magic %#x", binary.LittleEndian.Uint32(buf[0:]))
	}
	t := &Trie{alpha: keys.Alphabet{Min: buf[4], Max: buf[5]}}
	root := Ptr(binary.LittleEndian.Uint32(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	need := 16 + 13*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("trie: decode: want %d bytes for %d cells, have %d", need, n, len(buf))
	}
	t.cells = make([]Cell, n)
	for i := 0; i < n; i++ {
		rec := buf[16+13*i:]
		t.cells[i] = Cell{
			DV: rec[0],
			DN: int32(binary.LittleEndian.Uint32(rec[1:])),
			LP: Ptr(binary.LittleEndian.Uint32(rec[5:])),
			RP: Ptr(binary.LittleEndian.Uint32(rec[9:])),
		}
	}
	t.root = root
	// Rebuild the leaf-count caches from the decoded structure.
	var walk func(p Ptr) error
	seen := make([]bool, n)
	walk = func(p Ptr) error {
		if p.IsLeaf() {
			t.bumpLeaf(p, +1)
			return nil
		}
		ci := p.Cell()
		if ci < 0 || int(ci) >= n || seen[ci] {
			return fmt.Errorf("trie: decode: invalid or repeated edge to cell %d", ci)
		}
		seen[ci] = true
		if err := walk(t.cells[ci].LP); err != nil {
			return err
		}
		return walk(t.cells[ci].RP)
	}
	if err := walk(root); err != nil {
		return nil, 0, err
	}
	for ci, s := range seen {
		if !s {
			return nil, 0, fmt.Errorf("trie: decode: orphaned cell %d", ci)
		}
	}
	return t, need, nil
}
