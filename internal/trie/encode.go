package trie

import (
	"encoding/binary"
	"fmt"
	"math"

	"triehash/internal/format"
	"triehash/internal/keys"
)

// PaperCellBytes is the practical cell size the paper reports: one byte
// each for DV and DN, two bytes each for LP and RP.
const PaperCellBytes = 6

// PaperBytes returns the trie's size under the paper's 6-byte-cell
// accounting; this is the number compared against B-tree branching-node
// space in Sections 3.1 and 4.5.
func (t *Trie) PaperBytes() int { return len(t.cells) * PaperCellBytes }

// encodeMagic guards serialized tries.
const encodeMagic = 0x54485452 // "THTR"

// encodeMagicV2 opens a version-2 trie page; the byte after it carries
// the version so later formats can share the magic.
const encodeMagicV2 = 0x32564854 // "THV2" on disk (little-endian)

// AppendBinary serializes the trie (alphabet, root pointer, cell table)
// into buf and returns the extended slice. The format is fixed-width
// little-endian: portable, self-describing, and cheap to decode.
func (t *Trie) AppendBinary(buf []byte) []byte {
	if t.dead > 0 {
		// Serialize a compacted view: tombstones are a purely in-memory
		// concurrency aid and never hit the disk format.
		v := t.Clone()
		v.Vacuum()
		t = v
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], encodeMagic)
	hdr[4] = t.alpha.Min
	hdr[5] = t.alpha.Max
	binary.LittleEndian.PutUint32(hdr[8:], uint32(t.root))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(t.cells)))
	buf = append(buf, hdr[:]...)
	var rec [13]byte
	for _, c := range t.cells {
		rec[0] = c.DV
		binary.LittleEndian.PutUint32(rec[1:], uint32(c.DN))
		binary.LittleEndian.PutUint32(rec[5:], uint32(c.LP))
		binary.LittleEndian.PutUint32(rec[9:], uint32(c.RP))
		buf = append(buf, rec[:]...)
	}
	return buf
}

// AppendFormat serializes the trie at on-disk version v: the fixed-width
// v1 layout, or the v2 pre-order delta stream.
func (t *Trie) AppendFormat(buf []byte, v format.Version) []byte {
	if v != format.V2 {
		return t.AppendBinary(buf)
	}
	return t.appendV2(buf)
}

// ptrCode maps a pointer onto the v2 leaf/edge coding: 0 is the nil
// leaf, 1 is an edge (the child cell follows in the pre-order stream, so
// no index is stored), and n >= 2 is the leaf for bucket address n-2.
func ptrCode(p Ptr) uint64 {
	switch {
	case p.IsNil():
		return 0
	case p.IsEdge():
		return 1
	default:
		return uint64(p.Addr()) + 2
	}
}

// appendV2 writes the version-2 layout:
//
//	u32 magic | u8 version | alpha.Min | alpha.Max | uvarint rootCode |
//	[rootCode == 1: uvarint ncells | pre-order cell stream]
//	cell: u8 DV | uvarint zigzag(DN - parentDN) | uvarint LP | uvarint RP
//
// The walk follows edges only, so tombstoned (unreachable) cells vanish
// without the Vacuum clone v1 needs, and decoding re-numbers cells in
// pre-order — a canonical form the encoder also produces, making the
// round-trip byte-stable.
func (t *Trie) appendV2(buf []byte) []byte {
	var hdr [7]byte
	binary.LittleEndian.PutUint32(hdr[0:], encodeMagicV2)
	hdr[4] = byte(format.V2)
	hdr[5] = t.alpha.Min
	hdr[6] = t.alpha.Max
	buf = append(buf, hdr[:]...)
	buf = binary.AppendUvarint(buf, ptrCode(t.root))
	if !t.root.IsEdge() {
		return buf
	}
	buf = binary.AppendUvarint(buf, uint64(t.Cells()))
	var walk func(ci int32, parentDN int32, buf []byte) []byte
	walk = func(ci int32, parentDN int32, buf []byte) []byte {
		c := t.cells[ci]
		buf = append(buf, c.DV)
		buf = binary.AppendUvarint(buf, format.Zigzag(int64(c.DN)-int64(parentDN)))
		buf = binary.AppendUvarint(buf, ptrCode(c.LP))
		buf = binary.AppendUvarint(buf, ptrCode(c.RP))
		if c.LP.IsEdge() {
			buf = walk(c.LP.Cell(), c.DN, buf)
		}
		if c.RP.IsEdge() {
			buf = walk(c.RP.Cell(), c.DN, buf)
		}
		return buf
	}
	return walk(t.root.Cell(), 0, buf)
}

// DecodeBinary reconstructs a trie serialized by AppendFormat (either
// version, dispatched on the magic), returning the trie and the number
// of bytes consumed. A version this build does not know surfaces as
// *format.UnknownVersionError.
func DecodeBinary(buf []byte) (*Trie, int, error) {
	if len(buf) >= 4 && binary.LittleEndian.Uint32(buf[0:]) == encodeMagicV2 {
		return decodeV2(buf)
	}
	if len(buf) < 16 {
		return nil, 0, fmt.Errorf("trie: decode: truncated header (%d bytes)", len(buf))
	}
	if binary.LittleEndian.Uint32(buf[0:]) != encodeMagic {
		return nil, 0, fmt.Errorf("trie: decode: bad magic %#x", binary.LittleEndian.Uint32(buf[0:]))
	}
	t := &Trie{alpha: keys.Alphabet{Min: buf[4], Max: buf[5]}}
	root := Ptr(binary.LittleEndian.Uint32(buf[8:]))
	n := int(binary.LittleEndian.Uint32(buf[12:]))
	need := 16 + 13*n
	if len(buf) < need {
		return nil, 0, fmt.Errorf("trie: decode: want %d bytes for %d cells, have %d", need, n, len(buf))
	}
	t.cells = make([]Cell, n)
	for i := 0; i < n; i++ {
		rec := buf[16+13*i:]
		t.cells[i] = Cell{
			DV: rec[0],
			DN: int32(binary.LittleEndian.Uint32(rec[1:])),
			LP: Ptr(binary.LittleEndian.Uint32(rec[5:])),
			RP: Ptr(binary.LittleEndian.Uint32(rec[9:])),
		}
	}
	t.root = root
	// Rebuild the leaf-count caches from the decoded structure.
	var walk func(p Ptr) error
	seen := make([]bool, n)
	walk = func(p Ptr) error {
		if p.IsLeaf() {
			t.bumpLeaf(p, +1)
			return nil
		}
		ci := p.Cell()
		if ci < 0 || int(ci) >= n || seen[ci] {
			return fmt.Errorf("trie: decode: invalid or repeated edge to cell %d", ci)
		}
		seen[ci] = true
		if err := walk(t.cells[ci].LP); err != nil {
			return err
		}
		return walk(t.cells[ci].RP)
	}
	if err := walk(root); err != nil {
		return nil, 0, err
	}
	for ci, s := range seen {
		if !s {
			return nil, 0, fmt.Errorf("trie: decode: orphaned cell %d", ci)
		}
	}
	return t, need, nil
}

// decodeV2 reconstructs a version-2 trie page. Cells are rebuilt in
// pre-order, which re-numbers them canonically; orphans and repeated
// edges are impossible by construction (the stream has no indices).
func decodeV2(buf []byte) (*Trie, int, error) {
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("trie: decode: truncated v2 header (%d bytes)", len(buf))
	}
	if v := buf[4]; v != byte(format.V2) {
		return nil, 0, &format.UnknownVersionError{Surface: "trie page", Version: uint32(v)}
	}
	t := &Trie{alpha: keys.Alphabet{Min: buf[5], Max: buf[6]}}
	off := 7
	decodePtr := func(what string) (Ptr, error) {
		c, n := format.Uvarint(buf[off:])
		if n == 0 {
			return Nil, fmt.Errorf("trie: decode: truncated %s pointer", what)
		}
		off += n
		switch {
		case c == 0:
			return Nil, nil
		case c == 1:
			return Edge(0), nil // placeholder: the child follows in the stream
		case c-2 > math.MaxInt32:
			return Nil, fmt.Errorf("trie: decode: %s leaf address %d out of range", what, c-2)
		default:
			return Leaf(int32(c - 2)), nil
		}
	}
	root, err := decodePtr("root")
	if err != nil {
		return nil, 0, err
	}
	if !root.IsEdge() {
		t.root = root
		t.bumpLeaf(root, +1)
		return t, off, nil
	}
	nc64, n := format.Uvarint(buf[off:])
	if n == 0 {
		return nil, 0, fmt.Errorf("trie: decode: truncated cell count")
	}
	off += n
	// Each cell costs at least 4 stream bytes; reject counts the buffer
	// cannot hold before allocating.
	if nc64 > uint64(len(buf)-off)/4+1 {
		return nil, 0, fmt.Errorf("trie: decode: cell count %d exceeds page", nc64)
	}
	ncells := int(nc64)
	t.cells = make([]Cell, 0, ncells)
	var readCell func(parentDN int32) (int32, error)
	readCell = func(parentDN int32) (int32, error) {
		if len(t.cells) >= ncells {
			return 0, fmt.Errorf("trie: decode: more cells than the declared %d", ncells)
		}
		if off >= len(buf) {
			return 0, fmt.Errorf("trie: decode: truncated cell %d", len(t.cells))
		}
		ci := int32(len(t.cells))
		dv := buf[off]
		off++
		d64, n := format.Uvarint(buf[off:])
		if n == 0 {
			return 0, fmt.Errorf("trie: decode: truncated digit number of cell %d", ci)
		}
		off += n
		dn := int64(parentDN) + format.Unzigzag(d64)
		if dn < 0 || dn > math.MaxInt32 {
			return 0, fmt.Errorf("trie: decode: digit number %d of cell %d out of range", dn, ci)
		}
		t.cells = append(t.cells, Cell{DV: dv, DN: int32(dn)})
		lp, err := decodePtr("left")
		if err != nil {
			return 0, err
		}
		rp, err := decodePtr("right")
		if err != nil {
			return 0, err
		}
		if lp.IsEdge() {
			child, err := readCell(int32(dn))
			if err != nil {
				return 0, err
			}
			lp = Edge(child)
		} else {
			t.bumpLeaf(lp, +1)
		}
		if rp.IsEdge() {
			child, err := readCell(int32(dn))
			if err != nil {
				return 0, err
			}
			rp = Edge(child)
		} else {
			t.bumpLeaf(rp, +1)
		}
		t.cells[ci].LP = lp
		t.cells[ci].RP = rp
		return ci, nil
	}
	rc, err := readCell(0)
	if err != nil {
		return nil, 0, err
	}
	if len(t.cells) != ncells {
		return nil, 0, fmt.Errorf("trie: decode: %d cells declared, %d present", ncells, len(t.cells))
	}
	t.root = Edge(rc)
	return t, off, nil
}
