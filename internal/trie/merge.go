package trie

import "fmt"

// FreeToNil turns the leaf at pos into the nil leaf. The basic method uses
// it when deletions empty a bucket that has no sibling leaf (Section 2.4).
func (t *Trie) FreeToNil(pos Pos) {
	p := t.at(pos)
	if !p.IsLeaf() || p.IsNil() {
		panic(fmt.Sprintf("trie: FreeToNil: position %+v holds %s", pos, p))
	}
	t.setPtr(pos, Nil)
}

// SiblingOf returns, for a leaf at pos, the other pointer of the same cell
// if that pointer is also a leaf, together with its position. ok is false
// when pos is the root slot or when the other side is an edge. Siblings are
// the only pairs the basic method may merge (Section 2.4).
func (t *Trie) SiblingOf(pos Pos) (sib Ptr, sibPos Pos, ok bool) {
	if pos.Side == SideRoot {
		return 0, Pos{}, false
	}
	c := t.cells[pos.Cell]
	var other Ptr
	var side Side
	if pos.Side == SideLeft {
		other, side = c.RP, SideRight
	} else {
		other, side = c.LP, SideLeft
	}
	if !other.IsLeaf() {
		return 0, Pos{}, false
	}
	return other, Pos{Cell: pos.Cell, Side: side}, true
}

// MergeSiblings removes cell ci, whose two pointers must both be leaves,
// replacing it in its parent slot by a single leaf carrying keep. This is
// the trie shrink that accompanies a bucket merge: the right bucket's keys
// move into the left one and keep is normally the left leaf's address (or
// the surviving non-nil address when one side is nil).
//
// With tombstoning enabled the cell is only marked dead instead of being
// physically removed — the approach Section 2.4 prefers for concurrency
// control, since removal moves the table's last cell into the hole, which
// would invalidate a concurrent reader's position. Vacuum reclaims dead
// cells later.
func (t *Trie) MergeSiblings(ci int32, keep Ptr) {
	c := t.cells[ci]
	if !c.LP.IsLeaf() || !c.RP.IsLeaf() {
		panic(fmt.Sprintf("trie: MergeSiblings: cell %d has non-leaf children (%s, %s)", ci, c.LP, c.RP))
	}
	parent := t.findReferrer(ci)
	// Clear both leaf slots for accounting, then collapse.
	t.setPtr(Pos{Cell: ci, Side: SideLeft}, Nil)
	t.setPtr(Pos{Cell: ci, Side: SideRight}, Nil)
	t.nilLeaves -= 2 // the two placeholders vanish with the cell
	t.setPtr(parent, keep)
	if t.tombstoning {
		t.markDead(ci)
		return
	}
	t.removeCell(ci)
}

// SetTombstoning switches between physical cell removal (the default; the
// paper's "physical shrinking of the table of cells") and marking deleted
// cells dead. Dead cells are excluded from Cells() and reclaimed by
// Vacuum.
func (t *Trie) SetTombstoning(on bool) { t.tombstoning = on }

// DeadCells returns the number of tombstoned cells awaiting Vacuum.
func (t *Trie) DeadCells() int { return int(t.dead) }

// markDead tombstones cell ci: the cell stays in the table (so concurrent
// cursors over cell indexes stay valid) but is unreachable and uncounted.
func (t *Trie) markDead(ci int32) {
	if t.tracer != nil {
		panic("trie: markDead on a traced trie (the arena mirror requires an append-only cell table)")
	}
	c := &t.cells[ci]
	c.LP, c.RP = Nil, Nil // already nil-accounted by the caller
	c.DV = 0
	c.DN = deadDN
	t.dead++
}

// deadDN marks a tombstoned cell; no live cell can carry it.
const deadDN int32 = -1

// Vacuum physically removes every tombstoned cell, compacting the table
// in one pass with edge remapping (to be run when no concurrent readers
// hold positions, e.g. at load or checkpoint time). It returns the number
// of cells reclaimed.
func (t *Trie) Vacuum() int {
	if t.tracer != nil {
		panic("trie: Vacuum on a traced trie (the arena mirror requires an append-only cell table)")
	}
	if t.dead == 0 {
		return 0
	}
	remap := make([]int32, len(t.cells))
	live := make([]Cell, 0, len(t.cells)-int(t.dead))
	for i, c := range t.cells {
		if c.DN == deadDN {
			remap[i] = -1
			continue
		}
		remap[i] = int32(len(live))
		live = append(live, c)
	}
	fix := func(p Ptr) Ptr {
		if p.IsEdge() {
			return Edge(remap[p.Cell()])
		}
		return p
	}
	for i := range live {
		live[i].LP = fix(live[i].LP)
		live[i].RP = fix(live[i].RP)
	}
	t.root = fix(t.root)
	reclaimed := len(t.cells) - len(live)
	t.cells = live
	t.dead = 0
	return reclaimed
}

// RepointLeaves makes every leaf currently carrying bucket address from
// carry to instead, returning how many were repointed. THCL bucket merging
// (Section 4.3) uses it: the freed bucket's leaves simply join the
// survivor, with node removal decoupled and optional.
func (t *Trie) RepointLeaves(from, to int32) int {
	if t.LeafCount(from) == 0 {
		return 0
	}
	n := 0
	for _, lp := range t.InorderLeaves() {
		if !lp.Leaf.IsNil() && lp.Leaf.Addr() == from {
			t.setPtr(lp.Pos, Leaf(to))
			n++
		}
	}
	return n
}

// Collapse removes every cell both of whose pointers are leaves carrying
// the same address (or one of which is nil next to a leaf), repeating until
// no such cell remains, and returns the number of cells removed. THCL node
// merging (Sections 4.3–4.4) is this operation; the paper notes it may be
// skipped entirely, trading trie size for simpler concurrency.
func (t *Trie) Collapse() int {
	removed := 0
	for {
		found := int32(-1)
		var keep Ptr
		for i := range t.cells {
			c := t.cells[i]
			if !c.LP.IsLeaf() || !c.RP.IsLeaf() {
				continue
			}
			switch {
			case c.LP.IsNil() && c.RP.IsNil():
				found, keep = int32(i), Nil
			case !c.LP.IsNil() && !c.RP.IsNil() && c.LP.Addr() == c.RP.Addr():
				found, keep = int32(i), c.LP
			}
			if found >= 0 {
				break
			}
		}
		if found < 0 {
			return removed
		}
		t.MergeSiblings(found, keep)
		removed++
	}
}

// NeighborBuckets returns the bucket addresses whose leaves immediately
// precede and follow addr's in-order leaf run. A result of -1 means there
// is no such neighbour (ends of the file, or a nil leaf next door).
func (t *Trie) NeighborBuckets(addr int32) (pred, succ int32) {
	pred, succ = -1, -1
	prev := Nil
	prevSeen := false
	inRun := false
	t.WalkLeaves(func(lp LeafPos) bool {
		isAddr := !lp.Leaf.IsNil() && lp.Leaf.Addr() == addr
		if isAddr && !inRun {
			inRun = true
			if prevSeen && !prev.IsNil() {
				pred = prev.Addr()
			}
		} else if !isAddr && inRun {
			if !lp.Leaf.IsNil() {
				succ = lp.Leaf.Addr()
			}
			return false
		}
		prev, prevSeen = lp.Leaf, true
		return true
	})
	return pred, succ
}

// findReferrer locates the pointer slot holding an edge to cell ci.
func (t *Trie) findReferrer(ci int32) Pos {
	if t.root.IsEdge() && t.root.Cell() == ci {
		return RootPos
	}
	for i := range t.cells {
		if int32(i) == ci {
			continue
		}
		if t.cells[i].LP.IsEdge() && t.cells[i].LP.Cell() == ci {
			return Pos{Cell: int32(i), Side: SideLeft}
		}
		if t.cells[i].RP.IsEdge() && t.cells[i].RP.Cell() == ci {
			return Pos{Cell: int32(i), Side: SideRight}
		}
	}
	panic(fmt.Sprintf("trie: cell %d has no referrer", ci))
}

// removeCell deletes cell ci from the table by moving the last cell into
// its slot (the paper's physical shrinking of the table of cells) and
// fixing the edge that referred to the moved cell.
func (t *Trie) removeCell(ci int32) {
	if t.tracer != nil {
		panic("trie: removeCell on a traced trie (the arena mirror requires an append-only cell table)")
	}
	last := int32(len(t.cells) - 1)
	if ci != last {
		t.cells[ci] = t.cells[last]
		if t.cells[last].DN != deadDN {
			// A dead cell has no referrer; live ones have exactly one.
			ref := t.findReferrer(last)
			switch ref.Side {
			case SideRoot:
				t.root = Edge(ci)
			case SideLeft:
				t.cells[ref.Cell].LP = Edge(ci)
			case SideRight:
				t.cells[ref.Cell].RP = Edge(ci)
			}
		}
	}
	t.cells = t.cells[:last]
}
