package trie

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"triehash/internal/keys"
)

var ascii = keys.ASCII

func TestPtrTagging(t *testing.T) {
	cases := []struct {
		p      Ptr
		leaf   bool
		nilLf  bool
		edge   bool
		render string
	}{
		{Leaf(0), true, false, false, "0"},
		{Leaf(42), true, false, false, "42"},
		{Edge(0), false, false, true, "->0"},
		{Edge(7), false, false, true, "->7"},
		{Nil, true, true, false, "nil"},
	}
	for _, c := range cases {
		if c.p.IsLeaf() != c.leaf || c.p.IsNil() != c.nilLf || c.p.IsEdge() != c.edge {
			t.Errorf("%v: tags (%v,%v,%v)", c.p, c.p.IsLeaf(), c.p.IsNil(), c.p.IsEdge())
		}
		if c.p.String() != c.render {
			t.Errorf("%v renders %q, want %q", int32(c.p), c.p.String(), c.render)
		}
	}
}

func TestPtrRoundTrip(t *testing.T) {
	f := func(v int32) bool {
		if v == math.MinInt32 {
			return true
		}
		if v < 0 {
			v = -v
		}
		return Leaf(v).Addr() == v && Edge(v).Cell() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewTrie(t *testing.T) {
	tr := New(ascii, 0)
	if tr.Cells() != 0 || tr.Leaves() != 1 || tr.LeafCount(0) != 1 {
		t.Fatalf("fresh trie: cells=%d leaves=%d count0=%d", tr.Cells(), tr.Leaves(), tr.LeafCount(0))
	}
	res := tr.Search("anything")
	if res.Leaf != Leaf(0) || len(res.Path) != 0 || res.Pos != RootPos {
		t.Fatalf("search on fresh trie: %+v", res)
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestNewEmptyTrie(t *testing.T) {
	tr := NewEmpty(ascii)
	res := tr.Search("x")
	if !res.Leaf.IsNil() {
		t.Fatalf("search on empty trie gave %v", res.Leaf)
	}
	tr.AllocNil(res.Pos, 0)
	if tr.Search("x").Leaf != Leaf(0) {
		t.Fatal("AllocNil did not install the bucket")
	}
	if tr.NilLeaves() != 0 {
		t.Fatalf("nil leaves = %d after alloc", tr.NilLeaves())
	}
}

func TestSetBoundarySingleDigit(t *testing.T) {
	tr := New(ascii, 0)
	st := tr.SetBoundary("i", []byte("i"), 0, 0, 1, ModeBasic)
	if st.NewCells != 1 || st.NewNilLeaves != 0 {
		t.Fatalf("stats %+v", st)
	}
	if got := tr.Search("in").Leaf; got != Leaf(0) {
		t.Errorf(`"in" -> %v, want 0`, got)
	}
	if got := tr.Search("is").Leaf; got != Leaf(0) {
		t.Errorf(`"is" -> %v, want 0 (prefix "i" vs bound "i")`, got)
	}
	if got := tr.Search("of").Leaf; got != Leaf(1) {
		t.Errorf(`"of" -> %v, want 1`, got)
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	if tr.String() != "(0 (i,0) 1)" {
		t.Errorf("trie = %s", tr.String())
	}
}

func TestSetBoundaryFig3(t *testing.T) {
	// Build a file region with bucket 7 under path "he": boundaries
	// "g" (buckets below) and "he"; then the Fig 3 split of bucket 7.
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 7, ModeBasic)   // ( ,"g"]->0, >g -> 7
	tr.SetBoundary("he", []byte("he"), 7, 7, 9, ModeBasic) // ("g","he"]->7, rest->9
	// Inserting "hat" overflows bucket 7 = {had, have, he, her}; the
	// split key is "have" (m=3), the bounding key "he" is the last of
	// the five, and the split string is "ha".
	s := ascii.SplitString("have", "he")
	if string(s) != "ha" {
		t.Fatalf("split string %q, want \"ha\"", s)
	}
	st := tr.SetBoundary("have", s, 7, 7, 11, ModeBasic)
	if st.NewCells != 1 {
		t.Fatalf("Fig 3 split should add exactly one cell (a,1); stats %+v", st)
	}
	for k, want := range map[string]int32{
		"had": 7, "hat": 7, "have": 7, // (c)_1 <= "ha"
		"he": 11, "her": 11, // "ha" < (c)_1 <= "he"
		"his": 9, "go": 0, "g": 0, // bound "g" covers every key with (c)_0 <= 'g'
		"h": 7,
	} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d", k, got, want)
		}
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetBoundaryMultiDigitBasic(t *testing.T) {
	// Fig 5 of the paper: ascending insertions with m=b make the whole
	// split key the split string, creating nil nodes in basic mode.
	tr := New(ascii, 0)
	st := tr.SetBoundary("oszh", []byte("oszh"), 0, 0, 1, ModeBasic)
	if st.NewCells != 4 {
		t.Fatalf("want 4 new cells for split string oszh, got %+v", st)
	}
	if st.NewNilLeaves != 3 || tr.NilLeaves() != 3 {
		t.Fatalf("want 3 nil leaves, got %+v (trie has %d)", st, tr.NilLeaves())
	}
	if got := tr.Search("osz").Leaf; got != Leaf(0) {
		t.Errorf("osz -> %v", got)
	}
	// Bucket 1's range is ("oszh", "osz"+max]; above it lie nil leaves.
	if got := tr.Search("oszi").Leaf; got != Leaf(1) {
		t.Errorf("oszi -> %v, want 1", got)
	}
	if got := tr.Search("ota").Leaf; !got.IsNil() {
		t.Errorf("ota -> %v, want nil leaf (the paper's Fig 5 allocation point)", got)
	}
	if got := tr.Search("pa").Leaf; !got.IsNil() {
		t.Errorf("pa -> %v, want nil leaf", got)
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetBoundaryMultiDigitTHCL(t *testing.T) {
	// Fig 7: same split without nil nodes — every right leaf carries the
	// new bucket's address, so ascending keys keep filling bucket 1.
	tr := New(ascii, 0)
	st := tr.SetBoundary("oszh", []byte("oszh"), 0, 0, 1, ModeTHCL)
	if st.NewCells != 4 || st.NewNilLeaves != 0 || tr.NilLeaves() != 0 {
		t.Fatalf("stats %+v, nil leaves %d", st, tr.NilLeaves())
	}
	if tr.LeafCount(1) != 4 {
		t.Fatalf("bucket 1 should be carried by 4 leaves, got %d", tr.LeafCount(1))
	}
	for _, k := range []string{"ota", "oszi", "ovm", "pa", "zz"} {
		if got := tr.Search(k).Leaf; got != Leaf(1) {
			t.Errorf("%q -> %v, want 1", k, got)
		}
	}
	if got := tr.Search("oszh").Leaf; got != Leaf(0) {
		t.Errorf("oszh -> %v, want 0", got)
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetBoundarySharedLeafSplit(t *testing.T) {
	// After a THCL multi-digit split, split the shared bucket again:
	// exercises the general path with a straddle in a later leaf of the
	// run plus trailing repoints (steps 3.4/3.5).
	tr := New(ascii, 0)
	tr.SetBoundary("oszh", []byte("oszh"), 0, 0, 1, ModeTHCL)
	st := tr.SetBoundary("ota", []byte("ot"), 1, 1, 2, ModeTHCL)
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]int32{
		"oszi": 1, "ota": 1, "ot": 1,
		"ou": 2, "ovm": 2, "pa": 2, "zz": 2,
		"oszh": 0,
	} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d (stats %+v)", k, got, want, st)
		}
	}
	if tr.LeafCount(1) != 3 || tr.LeafCount(2) != 2 {
		t.Fatalf("leaf counts 1:%d 2:%d", tr.LeafCount(1), tr.LeafCount(2))
	}
}

func TestSetBoundaryPredecessorRedistribution(t *testing.T) {
	// Redistribution to the predecessor (Section 4.4): low receives the
	// keys under the boundary, old keeps the rest.
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeTHCL) // <= g -> 0, else 1
	// Bucket 1 = {h, ka, z} overflows: move "h" down into bucket 0.
	tr.SetBoundary("h", []byte("h"), 1, 0, 1, ModeTHCL)
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	for k, want := range map[string]int32{
		"f": 0, "g": 0, "h": 0, "ha": 0,
		"i": 1, "ka": 1, "z": 1,
	} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d", k, got, want)
		}
	}
	if tr.LeafCount(0) != 2 {
		t.Errorf("bucket 0 leaf count %d, want 2", tr.LeafCount(0))
	}
}

func TestSetBoundaryExactAlignment(t *testing.T) {
	// When the boundary coincides with an existing internal bound of the
	// bucket's run, no cell is added: pure repointing (step 3.4).
	tr := New(ascii, 0)
	tr.SetBoundary("kaaa", []byte("kaaa"), 0, 0, 1, ModeTHCL) // chain k,a,a,a
	if tr.LeafCount(1) != 4 {
		t.Fatalf("leaf count 1 = %d", tr.LeafCount(1))
	}
	before := tr.Cells()
	// Bound "ka" is an internal bound of bucket 1's run (the right leaf
	// of the (a,2) cell). Splitting bucket 1 there adds no cell.
	st := tr.SetBoundary("kab", []byte("ka"), 1, 1, 2, ModeTHCL)
	if st.NewCells != 0 {
		t.Errorf("exact alignment added %d cells", st.NewCells)
	}
	if tr.Cells() != before {
		t.Errorf("cells %d -> %d", before, tr.Cells())
	}
	for k, want := range map[string]int32{
		"kaaa": 0, "ka": 0, // <= bound "kaaa"
		"kaab": 1, "kab": 1, // ("kaaa", "ka"+max] -> wait: ("kaaa","kaa"+max] then ("kaa"+max,"ka"+max]
		"kb": 2, "z": 2,
	} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d", k, got, want)
		}
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

// region is one key interval of the reference model: (previous bound,
// Bound] is owned by Addr (-1 = nil leaf region of the basic method).
type region struct {
	bound string // "" = infinite bound; always last
	addr  int32
}

// boundaryModel is the reference model the trie is checked against: a flat
// ordered list of key intervals.
type boundaryModel struct {
	regions []region
}

func newModel() *boundaryModel {
	return &boundaryModel{regions: []region{{bound: "", addr: 0}}}
}

func (m *boundaryModel) cmpBounds(x, y string) int {
	switch {
	case x == "" && y == "":
		return 0
	case x == "":
		return 1
	case y == "":
		return -1
	}
	return ascii.ComparePathBounds([]byte(x), []byte(y))
}

func (m *boundaryModel) lookup(k string) int32 {
	for _, r := range m.regions {
		if r.bound == "" || ascii.KeyLEBound(k, []byte(r.bound)) {
			return r.addr
		}
	}
	panic("unreachable: last bound is infinite")
}

// span returns the index range [lo, hi] of regions owned by addr.
func (m *boundaryModel) span(addr int32) (lo, hi int) {
	lo, hi = -1, -1
	for i, r := range m.regions {
		if r.addr == addr {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return lo, hi
}

// setBoundary mirrors Trie.SetBoundary in THCL mode.
func (m *boundaryModel) setBoundary(s string, old, low, high int32) {
	var out []region
	inserted := false
	for _, r := range m.regions {
		if r.addr != old {
			out = append(out, r)
			continue
		}
		switch c := m.cmpBounds(r.bound, s); {
		case c < 0:
			out = append(out, region{r.bound, low})
		case c == 0:
			out = append(out, region{r.bound, low})
			inserted = true
		default:
			if !inserted {
				out = append(out, region{s, low})
				inserted = true
			}
			out = append(out, region{r.bound, high})
		}
	}
	m.regions = out
}

// basicSplit mirrors Trie.SetBoundary in basic mode: the bucket has one
// region (prev, C]; it becomes s->old, s[:len-1]->high, then nil regions
// for the remaining chain digits, keeping C as the (nil) top.
func (m *boundaryModel) basicSplit(s string, old, high int32) {
	lo, hi := m.span(old)
	if lo != hi || lo < 0 {
		panic("basic mode: bucket must own exactly one region")
	}
	C := m.regions[lo].bound
	cp := keys.CommonPrefixLen([]byte(s), []byte(C))
	var mid []region
	mid = append(mid, region{s, old})
	for j := len(s) - 1; j > cp; j-- {
		addr := int32(-1)
		if j == len(s)-1 {
			addr = high
		}
		mid = append(mid, region{s[:j], addr})
	}
	topAddr := int32(-1)
	if len(s)-1 == cp { // single-cell chain: C itself becomes the high leaf
		topAddr = high
	}
	mid = append(mid, region{C, topAddr})
	out := append(append([]region(nil), m.regions[:lo]...), mid...)
	out = append(out, m.regions[hi+1:]...)
	m.regions = out
}

func randKey(rng *rand.Rand) string {
	n := 1 + rng.Intn(6)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(4)) // tiny alphabet: deep shared prefixes
	}
	return string(b)
}

// TestSetBoundaryAgainstModel drives random boundary insertions through
// both the trie and the reference model and checks that every key routes
// identically, after every step, in both modes (including the basic
// method's nil regions).
func TestSetBoundaryAgainstModel(t *testing.T) {
	for _, mode := range []Mode{ModeBasic, ModeTHCL} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			for trial := 0; trial < 40; trial++ {
				tr := New(ascii, 0)
				m := newModel()
				next := int32(1)
				for step := 0; step < 50; step++ {
					k := randKey(rng)
					res := tr.Search(k)
					if res.Leaf.IsNil() {
						if want := m.lookup(k); want != -1 {
							t.Fatalf("trial %d: %q is nil in trie, model says %d", trial, k, want)
						}
						continue
					}
					old := res.Leaf.Addr()
					// Skip vacuous boundaries: k's bound must fall
					// strictly below the top of old's range.
					_, hi := m.span(old)
					if top := m.regions[hi].bound; m.cmpBounds(top, k) <= 0 {
						continue
					}
					low, high := old, next
					if mode == ModeTHCL && rng.Intn(4) == 0 {
						// Occasionally redistribute downward: low
						// takes the predecessor's address.
						if lo, _ := m.span(old); lo > 0 && m.regions[lo-1].addr != -1 {
							low, high = m.regions[lo-1].addr, old
						}
					}
					if low == old && high == next {
						next++
					}
					tr.SetBoundary(k, []byte(k), old, low, high, mode)
					if mode == ModeBasic {
						m.basicSplit(k, old, high)
					} else {
						m.setBoundary(k, old, low, high)
					}
					if err := tr.Check(0); err != nil {
						t.Fatalf("trial %d step %d (key %q): %v\n%s", trial, step, k, err, tr.String())
					}
				}
				// Exhaustive routing comparison on fresh random keys,
				// nil regions included.
				for probe := 0; probe < 300; probe++ {
					k := randKey(rng)
					got := tr.Search(k).Leaf
					want := m.lookup(k)
					switch {
					case got.IsNil() && want == -1:
					case got.IsNil() || want == -1 || got != Leaf(want):
						t.Fatalf("trial %d: key %q -> %v, model %d\ntrie: %s\nregions: %+v",
							trial, k, got, want, tr.String(), m.regions)
					}
				}
			}
		})
	}
}

func TestInorderLeavesIncreasing(t *testing.T) {
	tr := buildRandomTrie(7, 30)
	leaves := tr.InorderLeaves()
	if len(leaves) != tr.Cells()+1 {
		t.Fatalf("leaves %d, cells %d", len(leaves), tr.Cells())
	}
	for i := 1; i < len(leaves); i++ {
		if ascii.ComparePathBounds(leaves[i-1].Path, leaves[i].Path) >= 0 {
			t.Fatalf("bounds not increasing at %d: %q >= %q", i, leaves[i-1].Path, leaves[i].Path)
		}
	}
	if len(leaves[len(leaves)-1].Path) != 0 {
		t.Error("last leaf must carry the infinite bound")
	}
}

func TestMergeSiblings(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("m", []byte("m"), 0, 0, 1, ModeBasic)
	res := tr.Search("a")
	sib, _, ok := tr.SiblingOf(res.Pos)
	if !ok || sib != Leaf(1) {
		t.Fatalf("sibling of leaf 0: %v %v", sib, ok)
	}
	tr.MergeSiblings(res.Pos.Cell, Leaf(0))
	if tr.Cells() != 0 || tr.Search("z").Leaf != Leaf(0) {
		t.Fatalf("after merge: cells=%d", tr.Cells())
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSiblingsDeep(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	tr.SetBoundary("c", []byte("c"), 0, 0, 2, ModeBasic)
	tr.SetBoundary("s", []byte("s"), 1, 1, 3, ModeBasic)
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	var target int32 = -1
	for i := int32(0); i < int32(tr.Cells()); i++ {
		c := tr.CellAt(i)
		if c.LP == Leaf(0) && c.RP == Leaf(2) {
			target = i
		}
	}
	if target < 0 {
		t.Fatalf("no (0,2) sibling cell in %s", tr.String())
	}
	tr.MergeSiblings(target, Leaf(0))
	if err := tr.Check(0); err != nil {
		t.Fatalf("%v in %s", err, tr.String())
	}
	for k, want := range map[string]int32{"a": 0, "e": 0, "m": 1, "x": 3} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d", k, got, want)
		}
	}
}

func TestRepointAndCollapse(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeTHCL)
	tr.SetBoundary("s", []byte("s"), 1, 1, 2, ModeTHCL)
	// THCL merge of buckets 1 and 2: repoint 2's leaves to 1.
	n := tr.RepointLeaves(2, 1)
	if n != 1 {
		t.Fatalf("repointed %d", n)
	}
	if tr.LeafCount(1) != 2 || tr.LeafCount(2) != 0 {
		t.Fatalf("counts 1:%d 2:%d", tr.LeafCount(1), tr.LeafCount(2))
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	removed := tr.Collapse()
	if removed != 1 {
		t.Fatalf("collapsed %d cells, want 1", removed)
	}
	for k, want := range map[string]int32{"a": 0, "m": 1, "z": 1} {
		if got := tr.Search(k).Leaf; got != Leaf(want) {
			t.Errorf("%q -> %v, want %d", k, got, want)
		}
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

func TestFreeToNil(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	res := tr.Search("z")
	tr.FreeToNil(res.Pos)
	if tr.NilLeaves() != 1 {
		t.Fatalf("nil leaves %d", tr.NilLeaves())
	}
	if !tr.Search("z").Leaf.IsNil() {
		t.Error("freed leaf should be nil")
	}
	tr.AllocNil(tr.Search("z").Pos, 5)
	if tr.Search("z").Leaf != Leaf(5) {
		t.Error("realloc failed")
	}
}

// buildRandomTrie creates a THCL trie with roughly n buckets for
// restructuring tests.
func buildRandomTrie(seed int64, n int) *Trie {
	rng := rand.New(rand.NewSource(seed))
	tr := New(ascii, 0)
	next := int32(1)
	for step := 0; step < n*4 && int(next) < n; step++ {
		k := randKey(rng)
		res := tr.Search(k)
		if res.Leaf.IsNil() || (len(res.Path) != 0 && ascii.ComparePathBounds([]byte(k), res.Path) >= 0) {
			continue
		}
		tr.SetBoundary(k, []byte(k), res.Leaf.Addr(), res.Leaf.Addr(), next, ModeTHCL)
		next++
	}
	return tr
}

func sameRouting(t *testing.T, a, b *Trie, seed int64, probes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < probes; i++ {
		k := randKey(rng)
		ga, gb := a.Search(k).Leaf, b.Search(k).Leaf
		if ga != gb {
			t.Fatalf("routing differs for %q: %v vs %v\nA: %s\nB: %s", k, ga, gb, a.String(), b.String())
		}
	}
}

func TestSplitAtPreservesInorder(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := buildRandomTrie(seed, 20)
		if tr.Cells() < 3 {
			continue
		}
		r := tr.ChooseSplitNode()
		left, right, cell := tr.SplitAt(r)
		if left.Cells()+right.Cells() != tr.Cells()-1 {
			t.Fatalf("cells %d+%d != %d-1", left.Cells(), right.Cells(), tr.Cells())
		}
		got := append(left.InorderLeafPtrs(), right.InorderLeafPtrs()...)
		want := tr.InorderLeaves()
		if len(got) != len(want) {
			t.Fatalf("leaf count %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i].Leaf {
				t.Fatalf("leaf %d: %v, want %v", i, got[i], want[i].Leaf)
			}
		}
		// Grafting back is search-equivalent to the original.
		back := Graft(cell, left, right)
		if err := back.Check(0); err != nil {
			t.Fatalf("seed %d: graft: %v", seed, err)
		}
		sameRouting(t, tr, back, seed+100, 300)
	}
}

func TestChooseSplitNodeConditions(t *testing.T) {
	// The paper's Fig 4 discussion: (e,1) may balance as well as (h,0)
	// but fails condition (ii) because its logical parent (h,0) is in
	// the trie.
	tr := New(ascii, 0)
	tr.SetBoundary("h", []byte("h"), 0, 0, 1, ModeBasic)
	tr.SetBoundary("he", []byte("he"), 0, 0, 2, ModeBasic)
	cands := tr.splitCandidates()
	if len(cands) != 2 {
		t.Fatalf("candidates: %+v", cands)
	}
	for _, c := range cands {
		cell := tr.CellAt(c.Cell)
		switch cell.DV {
		case 'e':
			if c.Qualifies {
				t.Error("(e,1) has logical parent (h,0) in trie; must not qualify")
			}
		case 'h':
			if !c.Qualifies {
				t.Error("(h,0) must qualify")
			}
		}
	}
	r := tr.ChooseSplitNode()
	if tr.CellAt(r).DV != 'h' {
		t.Errorf("chose (%c,%d)", tr.CellAt(r).DV, tr.CellAt(r).DN)
	}
}

func TestBalancedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := buildRandomTrie(seed, 30)
		bal := tr.Balanced()
		if bal.Cells() != tr.Cells() {
			t.Fatalf("balanced trie has %d cells, want %d", bal.Cells(), tr.Cells())
		}
		if err := bal.Check(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sameRouting(t, tr, bal, seed+1000, 400)
	}
}

func TestBalancedImprovesSkew(t *testing.T) {
	// A maximally right-skewed trie (ascending single-digit boundaries)
	// must get much shallower.
	tr := New(ascii, 0)
	next := int32(1)
	for d := byte('b'); d <= 'y'; d++ {
		res := tr.Search(string(d))
		tr.SetBoundary(string(d), []byte{d}, res.Leaf.Addr(), res.Leaf.Addr(), next, ModeTHCL)
		next++
	}
	bal := tr.Balanced()
	if bal.Depth() >= tr.Depth() {
		t.Errorf("balanced depth %d, original %d", bal.Depth(), tr.Depth())
	}
	sameRouting(t, tr, bal, 1, 500)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := buildRandomTrie(seed, 25)
		buf := tr.AppendBinary(nil)
		back, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d bytes", n, len(buf))
		}
		if back.Cells() != tr.Cells() || back.NilLeaves() != tr.NilLeaves() {
			t.Fatalf("cells %d/%d nils %d/%d", back.Cells(), tr.Cells(), back.NilLeaves(), tr.NilLeaves())
		}
		if err := back.Check(0); err != nil {
			t.Fatal(err)
		}
		sameRouting(t, tr, back, seed, 200)
	}
}

func TestDecodeBinaryErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("nil buffer must fail")
	}
	if _, _, err := DecodeBinary(make([]byte, 16)); err == nil {
		t.Error("bad magic must fail")
	}
	tr := buildRandomTrie(1, 10)
	buf := tr.AppendBinary(nil)
	if _, _, err := DecodeBinary(buf[:len(buf)-1]); err == nil {
		t.Error("truncated buffer must fail")
	}
}

func TestPaperBytes(t *testing.T) {
	tr := buildRandomTrie(3, 15)
	if tr.PaperBytes() != tr.Cells()*6 {
		t.Errorf("PaperBytes %d, cells %d", tr.PaperBytes(), tr.Cells())
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	tr.SetBoundary("s", []byte("s"), 1, 1, 2, ModeBasic)
	tr.cells[0].RP = Edge(0) // cycle
	if err := tr.Check(0); err == nil {
		t.Error("cycle not detected")
	}
}

func TestCheckDetectsBadCounts(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	tr.leafCount[1] = 9
	if err := tr.Check(0); err == nil {
		t.Error("count mismatch not detected")
	}
}

func TestDumpFormats(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("i", []byte("i"), 0, 0, 1, ModeBasic)
	if s := tr.DumpCells(); !strings.Contains(s, "i") {
		t.Errorf("DumpCells: %s", s)
	}
	if s := tr.DumpLeaves(); !strings.Contains(s, "i->0") || !strings.Contains(s, ".->1") {
		t.Errorf("DumpLeaves: %s", s)
	}
}

func TestCloneIndependence(t *testing.T) {
	tr := buildRandomTrie(5, 10)
	cl := tr.Clone()
	before := tr.String()
	res := cl.Search("zz")
	if !res.Leaf.IsNil() && len(res.Path) == 0 {
		cl.SetBoundary("zz", []byte("zz"), res.Leaf.Addr(), res.Leaf.Addr(), 99, ModeTHCL)
	}
	if tr.String() != before {
		t.Error("mutating clone changed original")
	}
}

// TestReconstruct rebuilds tries from their in-order leaf sequences (the
// TOR83 recovery the paper's conclusion describes) and checks equivalence.
func TestReconstruct(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := buildRandomTrie(seed, 25)
		leaves := tr.InorderLeaves()
		bounds := make([][]byte, len(leaves))
		ptrs := make([]Ptr, len(leaves))
		for i, lp := range leaves {
			bounds[i] = lp.Path
			ptrs[i] = lp.Leaf
		}
		back, err := Reconstruct(ascii, bounds, ptrs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.Cells() != tr.Cells() {
			t.Fatalf("seed %d: reconstructed %d cells, want %d", seed, back.Cells(), tr.Cells())
		}
		if err := back.Check(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sameRouting(t, tr, back, seed+50, 400)
		if back.Depth() > tr.Depth() {
			t.Logf("seed %d: reconstructed depth %d > original %d", seed, back.Depth(), tr.Depth())
		}
	}
}

// TestReconstructBalancesChains: a linear trie (worst case) reconstructs
// into the same structure (chains admit a single valid boundary per
// level), while mixed shapes rebalance.
func TestReconstructChain(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("dddd", []byte("dddd"), 0, 0, 1, ModeTHCL)
	leaves := tr.InorderLeaves()
	bounds := make([][]byte, len(leaves))
	ptrs := make([]Ptr, len(leaves))
	for i, lp := range leaves {
		bounds[i] = lp.Path
		ptrs[i] = lp.Leaf
	}
	back, err := Reconstruct(ascii, bounds, ptrs)
	if err != nil {
		t.Fatal(err)
	}
	sameRouting(t, tr, back, 1, 300)
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(ascii, nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Reconstruct(ascii, [][]byte{[]byte("a")}, []Ptr{Leaf(0)}); err == nil {
		t.Error("non-infinite final bound accepted")
	}
	if _, err := Reconstruct(ascii,
		[][]byte{[]byte("b"), []byte("a"), nil},
		[]Ptr{Leaf(0), Leaf(1), Leaf(2)}); err == nil {
		t.Error("decreasing bounds accepted")
	}
	if _, err := Reconstruct(ascii, [][]byte{[]byte("a")}, []Ptr{Leaf(0), Leaf(1)}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestDepthAndTotalLeafDepth(t *testing.T) {
	tr := New(ascii, 0)
	if tr.Depth() != 0 || tr.TotalLeafDepth() != 0 {
		t.Fatal("fresh trie depth not 0")
	}
	tr.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	if tr.Depth() != 1 || tr.TotalLeafDepth() != 2 {
		t.Fatalf("depth %d total %d", tr.Depth(), tr.TotalLeafDepth())
	}
}

// TestRotateToSiblingsProperties: for every rotatable couple of random
// tries, performing the rotations yields a valid, search-equivalent trie
// with the couple's leaves sharing one cell; blocked couples error out
// without mutating anything.
func TestRotateToSiblingsProperties(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		tr := buildRandomTrie(seed, 20)
		for idx, c := range tr.Couples() {
			cl := tr.Clone()
			err := cl.RotateToSiblings(c.Separator)
			if c.Rotatable != (err == nil) {
				t.Fatalf("seed %d couple %d: Rotatable=%v but RotateToSiblings err=%v", seed, idx, c.Rotatable, err)
			}
			if err != nil {
				continue
			}
			cell := cl.CellAt(c.Separator)
			if cell.LP != c.Left || cell.RP != c.Right {
				t.Fatalf("seed %d couple %d: cell holds (%v,%v), want (%v,%v)",
					seed, idx, cell.LP, cell.RP, c.Left, c.Right)
			}
			if err := cl.Check(0); err != nil {
				t.Fatalf("seed %d couple %d: %v", seed, idx, err)
			}
			if cl.Cells() != tr.Cells() {
				t.Fatalf("rotation changed the cell count")
			}
			sameRouting(t, tr, cl, seed*31+int64(idx), 250)
			// The couple can now merge like ordinary siblings.
			if !c.Left.IsNil() && !c.Right.IsNil() {
				cl.MergeSiblings(c.Separator, c.Left)
				if err := cl.Check(0); err != nil {
					t.Fatalf("seed %d couple %d post-merge: %v", seed, idx, err)
				}
			}
		}
	}
}

// TestCouplesCounts: couples = leaves-1; siblings are a subset of the
// rotatable set.
func TestCouplesCounts(t *testing.T) {
	tr := buildRandomTrie(3, 25)
	couples := tr.Couples()
	if len(couples) != tr.Leaves()-1 {
		t.Fatalf("%d couples for %d leaves", len(couples), tr.Leaves())
	}
	for i, c := range couples {
		if c.Siblings && !c.Rotatable {
			t.Fatalf("couple %d: siblings but not rotatable", i)
		}
	}
}

// TestBalancedCanonicalEquivalence: the canonical-form balancing (first
// technique of Section 2.6) is equivalent and comparably shallow to the
// recursive-splitting one.
func TestBalancedCanonicalEquivalence(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := buildRandomTrie(seed, 30)
		canon, err := tr.BalancedCanonical()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if canon.Cells() != tr.Cells() {
			t.Fatalf("seed %d: %d cells, want %d", seed, canon.Cells(), tr.Cells())
		}
		if err := canon.Check(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		sameRouting(t, tr, canon, seed+2000, 400)
		rec := tr.Balanced()
		if canon.Depth() > rec.Depth()+3 {
			t.Errorf("seed %d: canonical depth %d far above recursive %d", seed, canon.Depth(), rec.Depth())
		}
	}
}

// TestTombstoning: marked-dead merges (Section 2.4's concurrency-friendly
// option) keep searches correct, exclude dead cells from M, and Vacuum
// compacts back to the physical minimum.
func TestTombstoning(t *testing.T) {
	tr := buildRandomTrie(9, 25)
	tr.SetTombstoning(true)
	live := tr.Cells()
	merged := 0
	// Merge every sibling pair we can find.
	for i := 0; i < 6; i++ {
		var target int32 = -1
		var keep Ptr
		for ci := int32(0); ci < int32(tr.TableCells()); ci++ {
			c := tr.CellAt(ci)
			if c.DN != -1 && c.LP.IsLeaf() && c.RP.IsLeaf() && !c.LP.IsNil() && !c.RP.IsNil() {
				target, keep = ci, c.LP
				break
			}
		}
		if target < 0 {
			break
		}
		tr.MergeSiblings(target, keep)
		merged++
		if err := tr.Check(0); err != nil {
			t.Fatalf("after tombstone merge %d: %v", merged, err)
		}
	}
	if merged == 0 {
		t.Skip("no sibling pairs in this trie")
	}
	if tr.DeadCells() != merged {
		t.Fatalf("dead cells %d, merged %d", tr.DeadCells(), merged)
	}
	if tr.Cells() != live-merged {
		t.Fatalf("live cells %d, want %d", tr.Cells(), live-merged)
	}
	if tr.TableCells() != live {
		t.Fatalf("table cells %d, want %d (no physical removal)", tr.TableCells(), live)
	}
	// Serialization hides the tombstones.
	back, _, err := DecodeBinary(tr.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if back.Cells() != tr.Cells() || back.TableCells() != tr.Cells() {
		t.Fatalf("serialized view: %d/%d cells", back.Cells(), back.TableCells())
	}
	sameRouting(t, tr, back, 9, 300)
	// Vacuum compacts in place and preserves routing.
	pre := tr.Clone()
	if got := tr.Vacuum(); got != merged {
		t.Fatalf("vacuum reclaimed %d, want %d", got, merged)
	}
	if tr.TableCells() != tr.Cells() {
		t.Fatalf("table %d != live %d after vacuum", tr.TableCells(), tr.Cells())
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
	sameRouting(t, pre, tr, 10, 300)
}

// TestSearchAddrAgreesWithSearch: the allocation-free lookup returns the
// same leaf as the full search on random tries and keys.
func TestSearchAddrAgreesWithSearch(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		tr := buildRandomTrie(seed, 25)
		rng := rand.New(rand.NewSource(seed + 300))
		for i := 0; i < 500; i++ {
			k := randKey(rng)
			if got, want := tr.SearchAddr(k), tr.Search(k).Leaf; got != want {
				t.Fatalf("seed %d: SearchAddr(%q) = %v, Search = %v", seed, k, got, want)
			}
		}
	}
}

// TestWalkLeavesFromPrunes: the pruned walk visits the same suffix of
// leaves as the full walk, starting at from's leaf.
func TestWalkLeavesFromPrunes(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		tr := buildRandomTrie(seed, 25)
		rng := rand.New(rand.NewSource(seed + 77))
		for i := 0; i < 50; i++ {
			from := randKey(rng)
			var want []Ptr
			started := false
			for _, lp := range tr.InorderLeaves() {
				if !started && (len(lp.Path) == 0 || ascii.KeyLEBound(from, lp.Path)) {
					started = true
				}
				if started {
					want = append(want, lp.Leaf)
				}
			}
			var got []Ptr
			tr.WalkLeavesFrom(from, func(lp LeafPos) bool {
				if len(lp.Path) > 0 && !ascii.KeyLEBound(from, lp.Path) {
					return true // boundary guard, as Range applies
				}
				got = append(got, lp.Leaf)
				return true
			})
			if len(got) != len(want) {
				t.Fatalf("seed %d from %q: %d leaves, want %d", seed, from, len(got), len(want))
			}
			for q := range want {
				if got[q] != want[q] {
					t.Fatalf("seed %d from %q: leaf %d is %v, want %v", seed, from, q, got[q], want[q])
				}
			}
		}
	}
}
