package trie

import "fmt"

// This file implements the merge-with-rotations refinement of Section 3.3:
// two successive buckets whose leaves are not siblings can often be made
// siblings by classical tree rotations, provided no rotation makes a
// logical parent the physical descendant of its logical child — which
// would leave a structure that is no longer a TH-trie.
//
// Concretely, let n be the internal node separating the couple in
// in-order. Rotations that lift nodes of n's *right* spine above n are
// always valid: such nodes hang off right edges and depend on no digit n
// sets. Lifting a node a of the *left* spine is valid only when a.DN <=
// n.DN; otherwise a's left descent consumes the digit that only n's left
// edge provides (a is, transitively, a logical child of n), and the
// rotation is forbidden. This is exactly why, in the paper's example, the
// couples (9,4) and (2,3) remain unmergeable while rotations double the
// mergeable couples from four to eight.

// Couple describes one pair of in-order successive leaves.
type Couple struct {
	Left, Right Ptr
	// Separator is the internal node between the two leaves.
	Separator int32
	// Siblings reports that the two leaves already share the cell.
	Siblings bool
	// Rotatable reports that valid rotations can make them siblings
	// (true whenever Siblings is).
	Rotatable bool
}

// Couples returns every pair of in-order successive leaves together with
// its mergeability classification.
func (t *Trie) Couples() []Couple {
	// In-order sequence interleaves leaves and internal nodes: leaf,
	// node, leaf, node, ..., leaf. Successive couple k is separated by
	// the k-th internal node.
	type item struct {
		leaf Ptr
		cell int32
	}
	var seq []item
	var walk func(n Ptr)
	walk = func(n Ptr) {
		if n.IsLeaf() {
			seq = append(seq, item{leaf: n, cell: -1})
			return
		}
		ci := n.Cell()
		walk(t.cells[ci].LP)
		seq = append(seq, item{cell: ci})
		walk(t.cells[ci].RP)
	}
	walk(t.root)

	var out []Couple
	for i := 1; i+1 < len(seq); i += 2 {
		n := seq[i].cell
		c := Couple{
			Left:      seq[i-1].leaf,
			Right:     seq[i+1].leaf,
			Separator: n,
		}
		cell := t.cells[n]
		c.Siblings = cell.LP.IsLeaf() && cell.RP.IsLeaf()
		c.Rotatable = c.Siblings || t.canRotateToSiblings(n)
		out = append(out, c)
	}
	return out
}

// canRotateToSiblings reports whether the left spine of n's left subtree
// clears the logical-ancestorship constraint (the right spine always
// does).
func (t *Trie) canRotateToSiblings(n int32) bool {
	dn := t.cells[n].DN
	p := t.cells[n].LP
	for p.IsEdge() {
		c := t.cells[p.Cell()]
		if c.DN > dn {
			return false
		}
		p = c.RP
	}
	return true
}

// RotateToSiblings applies the rotations that make the two leaves around
// separator cell n direct children of n, returning an error when the
// logical-ancestorship constraint blocks the left side. On success the
// couple may be merged with MergeSiblings(n, keep).
func (t *Trie) RotateToSiblings(n int32) error {
	if !t.canRotateToSiblings(n) {
		return fmt.Errorf("trie: couple at cell %d cannot merge: a left-spine node is a logical descendant of the separator", n)
	}
	// Lift the left spine: right rotations at (n, a) until n.LP is the
	// left leaf of the couple.
	for t.cells[n].LP.IsEdge() {
		a := t.cells[n].LP.Cell()
		ref := t.findReferrer(n)
		t.cells[n].LP = t.cells[a].RP
		t.cells[a].RP = Edge(n)
		t.setRaw(ref, Edge(a))
	}
	// Lift the right spine: left rotations at (n, c) until n.RP is the
	// right leaf.
	for t.cells[n].RP.IsEdge() {
		c := t.cells[n].RP.Cell()
		ref := t.findReferrer(n)
		t.cells[n].RP = t.cells[c].LP
		t.cells[c].LP = Edge(n)
		t.setRaw(ref, Edge(c))
	}
	return nil
}
