package trie

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"triehash/internal/keys"
)

// mustPanic asserts fn panics — the documented contract for programmer
// errors at the trie layer.
func mustPanic(t *testing.T, what string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	fn()
}

func TestContractPanics(t *testing.T) {
	mustPanic(t, "Leaf(-1)", func() { Leaf(-1) })
	mustPanic(t, "Edge(-1)", func() { Edge(-1) })
	mustPanic(t, "Nil.Addr", func() { Nil.Addr() })
	mustPanic(t, "Leaf(0).Cell", func() { Leaf(0).Cell() })
	mustPanic(t, "Edge(0).Addr", func() { Edge(0).Addr() })

	tr := New(ascii, 0)
	mustPanic(t, "AllocNil on a live leaf", func() { tr.AllocNil(RootPos, 1) })
	mustPanic(t, "ChooseSplitNode on cell-less trie", func() { tr.ChooseSplitNode() })
	mustPanic(t, "SetBoundary with wrong owner", func() {
		tr.SetBoundary("k", []byte("k"), 7, 7, 8, ModeBasic)
	})
	mustPanic(t, "vacuous boundary", func() {
		tr.SetBoundary("k", []byte("k"), 0, 0, 1, ModeBasic)
		// Second boundary at the same position: nothing above it in 0.
		tr.SetBoundary("k", []byte("k"), 0, 0, 2, ModeBasic)
	})

	tr2 := New(ascii, 0)
	tr2.SetBoundary("g", []byte("g"), 0, 0, 1, ModeBasic)
	mustPanic(t, "MergeSiblings on non-leaf children", func() {
		tr2.SetBoundary("c", []byte("c"), 0, 0, 2, ModeBasic)
		// Root cell now has an edge child.
		root := tr2.Root().Cell()
		tr2.MergeSiblings(root, Leaf(0))
	})
	mustPanic(t, "FreeToNil on an edge", func() {
		tr2.FreeToNil(RootPos)
	})
	mustPanic(t, "SetLeaf on an edge", func() {
		tr2.SetLeaf(RootPos, 3)
	})
	mustPanic(t, "SplitAt unreachable cell", func() {
		tr2.SplitAt(99)
	})
	mustPanic(t, "ExpandAt above the bound", func() {
		res := tr2.Search("a")
		tr2.ExpandAt(res.Pos, res.Path, []byte("z"), 0, 9, ModeBasic)
	})
}

// TestCheckBasePageStyle: Check(base) accepts page-level subtries whose
// cells refine inherited digits.
func TestCheckBasePageStyle(t *testing.T) {
	tr := buildRandomTrie(4, 20)
	if tr.Cells() < 3 {
		t.Skip("trie too small")
	}
	r := tr.ChooseSplitNode()
	left, right, _ := tr.SplitAt(r)
	for _, part := range []*Trie{left, right} {
		// A generous base covers any inherited depth.
		if err := part.Check(16); err != nil {
			t.Fatalf("page-style check: %v", err)
		}
	}
	// Base 0 must reject a subtrie that needs inherited digits, if any
	// of its left descents do (not guaranteed for every seed, so only
	// assert it does not false-negative the full trie).
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

// TestComparePathBoundsLaws: ordering laws via testing/quick.
func TestComparePathBoundsLaws(t *testing.T) {
	gen := func(s string) []byte {
		s = strings.TrimRight(s, "~")
		b := []byte(s)
		for i := range b {
			b[i] = ' ' + b[i]%('~'-' '+1)
		}
		return b
	}
	// Antisymmetry.
	if err := quick.Check(func(a, b string) bool {
		x, y := gen(a), gen(b)
		return keys.ASCII.ComparePathBounds(x, y) == -keys.ASCII.ComparePathBounds(y, x)
	}, nil); err != nil {
		t.Error(err)
	}
	// Reflexivity.
	if err := quick.Check(func(a string) bool {
		x := gen(a)
		return keys.ASCII.ComparePathBounds(x, x) == 0
	}, nil); err != nil {
		t.Error(err)
	}
	// Transitivity on triples.
	if err := quick.Check(func(a, b, c string) bool {
		x, y, z := gen(a), gen(b), gen(c)
		if keys.ASCII.ComparePathBounds(x, y) <= 0 && keys.ASCII.ComparePathBounds(y, z) <= 0 {
			return keys.ASCII.ComparePathBounds(x, z) <= 0
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestKeyRoutingTotal: every key belongs to exactly one leaf region —
// KeyLEBound against the in-order bounds is a total, monotone classifier.
func TestKeyRoutingTotal(t *testing.T) {
	tr := buildRandomTrie(11, 30)
	leaves := tr.InorderLeaves()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		k := randKey(rng)
		first := -1
		for q, lp := range leaves {
			if ascii.KeyLEBound(k, lp.Path) || len(lp.Path) == 0 {
				first = q
				break
			}
		}
		if first < 0 {
			t.Fatalf("key %q beyond every bound", k)
		}
		if got := tr.Search(k).Leaf; got != leaves[first].Leaf {
			t.Fatalf("A1 and bound classification disagree for %q: %v vs %v", k, got, leaves[first].Leaf)
		}
	}
}

// TestCollapseNilPairs: sibling nil leaves collapse to a single nil.
func TestCollapseNilPairs(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("mm", []byte("mm"), 0, 0, 1, ModeBasic) // chain with one nil
	res := tr.Search("z")
	if !res.Leaf.IsNil() {
		t.Fatalf("expected a nil region, got %v", res.Leaf)
	}
	// A leaf next to a nil leaf must NOT collapse (their union is not a
	// single region semantically).
	if tr.Collapse() != 0 {
		t.Fatal("leaf+nil pair collapsed")
	}
	// Free both buckets: genuine nil pairs collapse all the way up.
	r1 := tr.Search("mn")
	if r1.Leaf != Leaf(1) {
		t.Fatalf("mn -> %v", r1.Leaf)
	}
	tr.FreeToNil(r1.Pos)
	r0 := tr.Search("ma")
	if r0.Leaf != Leaf(0) {
		t.Fatalf("ma -> %v", r0.Leaf)
	}
	tr.FreeToNil(r0.Pos)
	removed := tr.Collapse()
	if removed != 2 {
		t.Fatalf("collapsed %d cells, want 2", removed)
	}
	if tr.Cells() != 0 || !tr.Root().IsNil() {
		t.Fatalf("fully nil trie expected: %s", tr.String())
	}
	if err := tr.Check(0); err != nil {
		t.Fatal(err)
	}
}

// TestDumpLeavesShared marks shared leaves distinctly enough to see runs.
func TestDumpLeavesShared(t *testing.T) {
	tr := New(ascii, 0)
	tr.SetBoundary("abc", []byte("abc"), 0, 0, 1, ModeTHCL)
	dump := tr.DumpLeaves()
	if strings.Count(dump, "->1") != 3 {
		t.Errorf("expected three leaves of bucket 1 in %q", dump)
	}
}

// TestGraftAlphabetPropagation: Graft keeps the alphabet of its parts.
func TestGraftAlphabetPropagation(t *testing.T) {
	tr := buildRandomTrie(2, 12)
	if tr.Cells() < 3 {
		t.Skip("trie too small")
	}
	l, r, c := tr.SplitAt(tr.ChooseSplitNode())
	g := Graft(c, l, r)
	if g.Alphabet() != tr.Alphabet() {
		t.Error("alphabet lost through Graft")
	}
}
