package trie

import (
	"fmt"
)

// Check verifies the structural invariants of the trie and returns the
// first violation found, or nil. base is the number of logical-path digits
// inherited from upper-level pages (0 for a top-level trie): every left
// descent at a node with digit number i requires i known path digits, a
// defining property of TH-tries (/TOR83/).
//
// Checked invariants:
//
//   - every cell of the table is reachable exactly once (tree shape, no
//     cycles, no orphans), hence leaves = cells + 1;
//   - left descents never need unknown path digits (beyond base);
//   - in-order leaf bounds are strictly increasing;
//   - every bucket address labels one contiguous in-order run of leaves;
//   - the cached leaf counts and nil-leaf count match a recount.
func (t *Trie) Check(base int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("trie: check: %v", r)
		}
	}()

	visited := make([]bool, len(t.cells))
	var leaves []LeafPos
	var walk func(n Ptr, pos Pos, path []byte) error
	walk = func(n Ptr, pos Pos, path []byte) error {
		if n.IsLeaf() {
			leaves = append(leaves, LeafPos{Pos: pos, Leaf: n, Path: append([]byte(nil), path...)})
			return nil
		}
		ci := n.Cell()
		if ci < 0 || int(ci) >= len(t.cells) {
			return fmt.Errorf("edge to out-of-range cell %d", ci)
		}
		if visited[ci] {
			return fmt.Errorf("cell %d reachable more than once", ci)
		}
		visited[ci] = true
		c := t.cells[ci]
		i := int(c.DN)
		if len(path)+base < i {
			return fmt.Errorf("cell %d has digit number %d but only %d path digits are known", ci, i, len(path)+base)
		}
		cut := i - base
		if cut < 0 {
			// The cell refines a digit position inside the inherited
			// prefix; within this page nothing of the local path
			// survives.
			cut = 0
		}
		left := append(append([]byte(nil), path[:cut]...), c.DV)
		if err := walk(c.LP, Pos{Cell: ci, Side: SideLeft}, left); err != nil {
			return err
		}
		return walk(c.RP, Pos{Cell: ci, Side: SideRight}, path)
	}
	if err := walk(t.root, RootPos, nil); err != nil {
		return err
	}
	deadSeen := 0
	for ci, v := range visited {
		if !v {
			if t.cells[ci].DN == deadDN {
				deadSeen++
				continue
			}
			return fmt.Errorf("cell %d is orphaned", ci)
		}
	}
	if deadSeen != int(t.dead) {
		return fmt.Errorf("%d dead cells in the table, cached %d", deadSeen, t.dead)
	}
	if len(leaves) != t.Cells()+1 {
		return fmt.Errorf("found %d leaves for %d live cells, want cells+1", len(leaves), t.Cells())
	}

	// Strictly increasing bounds, contiguous address runs, count match.
	counts := map[int32]int{}
	nils := 0
	lastAddr := int32(-1)
	closed := map[int32]bool{}
	for q, lp := range leaves {
		if q > 0 && base == 0 {
			if t.alpha.ComparePathBounds(leaves[q-1].Path, lp.Path) >= 0 {
				return fmt.Errorf("leaf bounds not increasing: %q then %q", leaves[q-1].Path, lp.Path)
			}
		}
		if lp.Leaf.IsNil() {
			nils++
			if lastAddr >= 0 {
				closed[lastAddr] = true
			}
			lastAddr = -1
			continue
		}
		a := lp.Leaf.Addr()
		counts[a]++
		if a != lastAddr {
			if closed[a] {
				return fmt.Errorf("bucket %d labels non-contiguous leaf runs", a)
			}
			if lastAddr >= 0 {
				closed[lastAddr] = true
			}
			lastAddr = a
		}
	}
	if nils != int(t.nilLeaves) {
		return fmt.Errorf("nil leaf count %d, cached %d", nils, t.nilLeaves)
	}
	for a, n := range counts {
		if t.LeafCount(a) != n {
			return fmt.Errorf("bucket %d leaf count %d, cached %d", a, n, t.LeafCount(a))
		}
	}
	for a, n := range t.leafCount {
		if n != 0 && counts[int32(a)] != int(n) {
			return fmt.Errorf("cached leaf count %d for bucket %d, recount %d", n, a, counts[int32(a)])
		}
	}
	return nil
}
