package trie

import "fmt"

// setRaw stores v at position p without leaf accounting. It is only used
// by restructuring code that rebuilds whole tries and recomputes counts.
func (t *Trie) setRaw(p Pos, v Ptr) {
	switch p.Side {
	case SideRoot:
		t.root = v
	case SideLeft:
		t.cells[p.Cell].LP = v
	default:
		t.cells[p.Cell].RP = v
	}
}

// pathTo returns the sequence of sides (SideLeft/SideRight) leading from
// the root to cell r, or ok=false if r is unreachable.
func (t *Trie) pathTo(r int32) (sides []Side, ok bool) {
	var walk func(n Ptr) bool
	walk = func(n Ptr) bool {
		if !n.IsEdge() {
			return false
		}
		ci := n.Cell()
		if ci == r {
			return true
		}
		c := t.cells[ci]
		sides = append(sides, SideLeft)
		if walk(c.LP) {
			return true
		}
		sides[len(sides)-1] = SideRight
		if walk(c.RP) {
			return true
		}
		sides = sides[:len(sides)-1]
		return false
	}
	return sides, walk(t.root)
}

// SplitNodeInfo describes one candidate returned by splitCandidates.
type SplitNodeInfo struct {
	Cell      int32
	Before    int  // internal nodes preceding it in inorder
	After     int  // internal nodes following it in inorder
	Qualifies bool // has no logical parent within this trie (condition ii)
}

// splitCandidates computes, for every internal node, its inorder position
// and whether it has a logical parent inside this trie. The logical parent
// of node (d, i) is the node that set digit i-1 of the logical path; a
// digit position never set within this trie (it was inherited from an
// upper-level page) yields no logical parent here.
func (t *Trie) splitCandidates() []SplitNodeInfo {
	total := len(t.cells)
	out := make([]SplitNodeInfo, 0, total)
	// setter[p] >= 0 when digit p of the current logical path was set by
	// a cell of this trie.
	setter := make([]int32, 0, 16)
	seen := 0
	var walk func(n Ptr)
	walk = func(n Ptr) {
		if n.IsLeaf() {
			return
		}
		ci := n.Cell()
		c := t.cells[ci]
		i := int(c.DN)
		hasLP := i > 0 && i-1 < len(setter) && setter[i-1] >= 0
		// Descend left with digit i set by this cell.
		saved := append([]int32(nil), setter...)
		for len(setter) < i {
			setter = append(setter, -1)
		}
		setter = append(setter[:i], ci)
		walk(c.LP)
		setter = append(setter[:0], saved...)
		out = append(out, SplitNodeInfo{Cell: ci, Before: seen, After: total - seen - 1, Qualifies: !hasLP})
		seen++
		walk(c.RP)
	}
	walk(t.root)
	return out
}

// ChooseSplitNode returns the internal node r' that the paper's page-split
// phase selects (Section 2.5): among nodes with no logical parent within
// this trie, the one whose counts of preceding and following internal
// nodes are closest. The root always qualifies, so the call succeeds on
// any trie with at least one cell.
func (t *Trie) ChooseSplitNode() int32 {
	if len(t.cells) == 0 {
		panic("trie: ChooseSplitNode on a trie without internal nodes")
	}
	best, bestScore := int32(-1), int(^uint(0)>>1)
	for _, cand := range t.splitCandidates() {
		if !cand.Qualifies {
			continue
		}
		score := cand.Before - cand.After
		if score < 0 {
			score = -score
		}
		if score < bestScore {
			best, bestScore = cand.Cell, score
		}
	}
	if best < 0 {
		panic("trie: no qualifying split node (the root must always qualify)")
	}
	return best
}

// ChooseSplitNodeShifted is ChooseSplitNode with the target inorder
// position shifted for expected ordered insertions (Section 3.2): frac is
// the desired fraction of internal nodes preceding r' (0.5 reproduces
// ChooseSplitNode; larger values suit ascending insertions, smaller ones
// descending).
func (t *Trie) ChooseSplitNodeShifted(frac float64) int32 {
	if len(t.cells) == 0 {
		panic("trie: ChooseSplitNodeShifted on a trie without internal nodes")
	}
	target := frac * float64(len(t.cells)-1)
	best, bestScore := int32(-1), 0.0
	for _, cand := range t.splitCandidates() {
		if !cand.Qualifies {
			// Condition (ii): a split node with a logical parent in
			// this trie would strand the digits its left descents
			// need once it moves a level up.
			continue
		}
		score := float64(cand.Before) - target
		if score < 0 {
			score = -score
		}
		if best < 0 || score < bestScore {
			best, bestScore = cand.Cell, score
		}
	}
	if best < 0 {
		panic("trie: no qualifying split node (the root must always qualify)")
	}
	return best
}

// SplitAt removes cell r from the trie and partitions the remaining nodes
// into two tries: left receives every internal node preceding r in
// inorder (with the leaves among them), right every node following it.
// The removed cell's value is returned so the caller (the multilevel
// scheme's page split, or Balanced) can reinstall it one level up.
//
// The split preserves inorder, hence key order across the two parts.
func (t *Trie) SplitAt(r int32) (left, right *Trie, removed Cell) {
	sides, ok := t.pathTo(r)
	if !ok {
		panic(fmt.Sprintf("trie: SplitAt: cell %d not reachable", r))
	}
	u := t.Clone()
	removed = u.cells[r]

	haveL, haveR := false, false
	var leftRoot, rightRoot Ptr
	var leftHole, rightHole Pos
	n := u.root
	for _, side := range sides {
		ci := n.Cell()
		c := u.cells[ci]
		if side == SideLeft {
			// r is below the left pointer: this cell and its right
			// subtree belong to the right part.
			if !haveR {
				rightRoot, haveR = n, true
			} else {
				u.setRaw(rightHole, n)
			}
			rightHole = Pos{Cell: ci, Side: SideLeft}
			n = c.LP
		} else {
			if !haveL {
				leftRoot, haveL = n, true
			} else {
				u.setRaw(leftHole, n)
			}
			leftHole = Pos{Cell: ci, Side: SideRight}
			n = c.RP
		}
	}
	rc := u.cells[r]
	if !haveL {
		leftRoot = rc.LP
	} else {
		u.setRaw(leftHole, rc.LP)
	}
	if !haveR {
		rightRoot = rc.RP
	} else {
		u.setRaw(rightHole, rc.RP)
	}
	return u.copySubtrie(leftRoot), u.copySubtrie(rightRoot), removed
}

// copySubtrie extracts the subtrie reachable from pointer n into a fresh
// Trie with a compact, renumbered cell table and recomputed leaf counts.
func (t *Trie) copySubtrie(n Ptr) *Trie {
	out := &Trie{alpha: t.alpha}
	var copyFrom func(n Ptr) Ptr
	copyFrom = func(n Ptr) Ptr {
		if n.IsLeaf() {
			out.bumpLeaf(n, +1)
			return n
		}
		c := t.cells[n.Cell()]
		ci := int32(len(out.cells))
		out.cells = append(out.cells, Cell{DV: c.DV, DN: c.DN})
		lp := copyFrom(c.LP)
		rp := copyFrom(c.RP)
		out.cells[ci].LP = lp
		out.cells[ci].RP = rp
		return Edge(ci)
	}
	out.root = copyFrom(n)
	return out
}

// Graft returns a new trie whose root is the internal node root and whose
// left and right subtries are copies of l and r. It is the inverse of
// SplitAt and the assembly step of Balanced.
func Graft(root Cell, l, r *Trie) *Trie {
	out := &Trie{alpha: l.alpha}
	ri := out.appendCell(root.DV, root.DN)
	out.nilLeaves -= 2 // both sides are wired immediately below
	var graft func(src *Trie, n Ptr) Ptr
	graft = func(src *Trie, n Ptr) Ptr {
		if n.IsLeaf() {
			out.bumpLeaf(n, +1)
			return n
		}
		c := src.cells[n.Cell()]
		ci := int32(len(out.cells))
		out.cells = append(out.cells, Cell{DV: c.DV, DN: c.DN})
		lp := graft(src, c.LP)
		rp := graft(src, c.RP)
		out.cells[ci].LP = lp
		out.cells[ci].RP = rp
		return Edge(ci)
	}
	out.cells[ri].LP = graft(l, l.root)
	out.cells[ri].RP = graft(r, r.root)
	out.root = Edge(ri)
	return out
}

// Balanced returns an equivalent trie balanced by the recursive
// application of trie splitting (Section 2.6, second technique): the best
// qualifying split node becomes the root, and both parts are balanced
// recursively. Search results are unchanged for every key; only in-memory
// search length improves.
func (t *Trie) Balanced() *Trie {
	if len(t.cells) <= 1 {
		return t.Clone()
	}
	r := t.ChooseSplitNode()
	left, right, cell := t.SplitAt(r)
	return Graft(cell, left.Balanced(), right.Balanced())
}

// BalancedCanonical returns an equivalent trie balanced through the
// canonical form (Section 2.6, first technique, /TOR83/): the trie's
// canonical representation is its in-order sequence of logical paths, and
// rebuilding from it — picking the most balanced admissible boundary at
// every level — yields the balanced equivalent /TOR83/ conjectures
// optimal. Only valid for top-level tries (full logical paths).
func (t *Trie) BalancedCanonical() (*Trie, error) {
	leaves := t.InorderLeaves()
	bounds := make([][]byte, len(leaves))
	ptrs := make([]Ptr, len(leaves))
	for i, lp := range leaves {
		bounds[i] = lp.Path
		ptrs[i] = lp.Leaf
	}
	return Reconstruct(t.alpha, bounds, ptrs)
}
