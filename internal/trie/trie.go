// Package trie implements the TH-trie of Litwin's trie hashing: a binary
// trie whose internal nodes hold (digit value, digit number) pairs and whose
// leaves are bucket addresses. The trie is stored in the paper's "standard
// representation": a flat table of cells, each holding the node value (DV,
// DN) and two tagged pointers (LP, RP) that are either leaves or edges to
// other cells. New cells are always appended, which is the property the
// paper's concurrency argument rests on.
//
// The package implements key search (Algorithm A1), trie expansion on bucket
// splits for both the basic method (Algorithm A2, with nil nodes) and the
// THCL refinement (shared leaves, no nil nodes, controlled boundaries), leaf
// merging for deletions, in-order traversal, structural validation, trie
// balancing and inorder splitting (used by multilevel trie hashing).
package trie

import (
	"fmt"
	"math"

	"triehash/internal/keys"
)

// Ptr is a tagged pointer stored in a cell: a leaf carrying a bucket
// address, an edge to another cell, or the nil leaf of the basic method.
type Ptr int32

// Nil is the nil leaf: it indicates that no bucket corresponds to the leaf.
const Nil Ptr = math.MinInt32

// Leaf returns a leaf pointer carrying bucket address a (a >= 0).
func Leaf(a int32) Ptr {
	if a < 0 {
		panic(fmt.Sprintf("trie: negative bucket address %d", a))
	}
	return Ptr(a)
}

// Edge returns an edge pointer to cell index c.
func Edge(c int32) Ptr {
	if c < 0 {
		panic(fmt.Sprintf("trie: negative cell index %d", c))
	}
	return Ptr(-c - 1)
}

// IsLeaf reports whether p is a leaf (including the nil leaf).
func (p Ptr) IsLeaf() bool { return p >= 0 || p == Nil }

// IsNil reports whether p is the nil leaf.
func (p Ptr) IsNil() bool { return p == Nil }

// IsEdge reports whether p is an edge to a cell.
func (p Ptr) IsEdge() bool { return p < 0 && p != Nil }

// Addr returns the bucket address of a (non-nil) leaf pointer.
func (p Ptr) Addr() int32 {
	if !p.IsLeaf() || p.IsNil() {
		panic(fmt.Sprintf("trie: Addr of non-leaf pointer %d", p))
	}
	return int32(p)
}

// Cell returns the cell index an edge pointer refers to.
func (p Ptr) Cell() int32 {
	if !p.IsEdge() {
		panic(fmt.Sprintf("trie: Cell of non-edge pointer %d", p))
	}
	return -int32(p) - 1
}

// String renders the pointer the way the paper's figures do.
func (p Ptr) String() string {
	switch {
	case p.IsNil():
		return "nil"
	case p.IsLeaf():
		return fmt.Sprintf("%d", p.Addr())
	default:
		return fmt.Sprintf("->%d", p.Cell())
	}
}

// Cell is one element of the standard representation: an internal trie node
// (DV, DN) together with its left and right pointers. The paper's practical
// cell size is six bytes (1+1+2+2); we use wider fields in memory and
// account for the paper's sizes in statistics.
type Cell struct {
	DV byte  // digit value
	DN int32 // digit number: position of the digit within the key
	LP Ptr   // left pointer: leaf or edge
	RP Ptr   // right pointer: leaf or edge
}

// Side identifies which pointer of a cell a position refers to.
type Side int8

const (
	// SideRoot marks the trie root position (no containing cell).
	SideRoot Side = iota
	// SideLeft is the LP of a cell.
	SideLeft
	// SideRight is the RP of a cell.
	SideRight
)

func (s Side) String() string {
	switch s {
	case SideRoot:
		return "root"
	case SideLeft:
		return "left"
	case SideRight:
		return "right"
	}
	return fmt.Sprintf("Side(%d)", int8(s))
}

// Pos addresses one pointer slot in the trie: the root slot, or one side of
// a cell.
type Pos struct {
	Cell int32 // cell index; -1 when Side == SideRoot
	Side Side
}

// RootPos is the position of the trie root slot.
var RootPos = Pos{Cell: -1, Side: SideRoot}

// Trie is a TH-trie over a digit alphabet. The zero value is not usable;
// call New.
type Trie struct {
	alpha keys.Alphabet
	cells []Cell
	root  Ptr

	// leafCount tracks, per bucket address, how many (non-nil) leaves
	// carry that address. Basic TH keeps every count at one; THCL lets
	// counts exceed one. Addresses index the slice directly.
	leafCount []int32
	nilLeaves int32

	// tombstoning switches merges from physical cell removal to marking
	// cells dead (Section 2.4's concurrency-friendly option); dead
	// counts the tombstones awaiting Vacuum.
	tombstoning bool
	dead        int32

	// tracer, when set, observes every structural mutation (cell appends
	// and pointer stores) so an external mirror — the concurrent engine's
	// atomic cell arena — can replay them in publication order. A traced
	// trie must stay append-only: operations that move or reclaim cells
	// (removeCell, Vacuum, markDead) panic while a tracer is attached.
	tracer Tracer
}

// Tracer receives the trie's structural mutations as they happen. The
// calls arrive in program order; TraceSetPtr for an edge to a fresh chain
// of cells is always preceded by the TraceAppendCell calls that built the
// chain, which is exactly the paper's fill-then-flip publication order.
type Tracer interface {
	// TraceAppendCell reports that cell ci was appended with node (dv, dn)
	// and both pointers nil.
	TraceAppendCell(ci int32, dv byte, dn int32)
	// TraceSetPtr reports that pointer slot pos now holds v.
	TraceSetPtr(pos Pos, v Ptr)
}

// SetTracer attaches (or, with nil, detaches) a structural-mutation
// tracer. While a tracer is attached the trie refuses cell removal and
// compaction, keeping the cell table strictly append-only. Clone does not
// carry the tracer over.
func (t *Trie) SetTracer(tr Tracer) { t.tracer = tr }

// New returns a trie over alphabet a whose single leaf is bucket address
// root (pass 0 for a fresh file, matching the paper's initial state of
// bucket 0 and leaf 0).
func New(a keys.Alphabet, root int32) *Trie {
	t := &Trie{alpha: a, root: Leaf(root)}
	t.bumpLeaf(Leaf(root), +1)
	return t
}

// NewEmpty returns a trie whose root is the nil leaf (an empty file with no
// bucket allocated yet).
func NewEmpty(a keys.Alphabet) *Trie {
	t := &Trie{alpha: a, root: Nil}
	t.nilLeaves = 1
	return t
}

// Alphabet returns the digit alphabet the trie was created with.
func (t *Trie) Alphabet() keys.Alphabet { return t.alpha }

// Cells returns the number of live internal nodes (cells) in the trie —
// the paper's trie size M. Tombstoned cells do not count.
func (t *Trie) Cells() int { return len(t.cells) - int(t.dead) }

// TableCells returns the physical size of the cell table, tombstones
// included.
func (t *Trie) TableCells() int { return len(t.cells) }

// CellAt returns a copy of cell i.
func (t *Trie) CellAt(i int32) Cell { return t.cells[i] }

// Root returns the root pointer.
func (t *Trie) Root() Ptr { return t.root }

// NilLeaves returns the current number of nil leaves.
func (t *Trie) NilLeaves() int { return int(t.nilLeaves) }

// LeafCount returns how many leaves currently carry bucket address a.
func (t *Trie) LeafCount(a int32) int {
	if int(a) >= len(t.leafCount) {
		return 0
	}
	return int(t.leafCount[a])
}

// Leaves returns the total number of leaves (nil leaves included). In any
// TH-trie this is the number of live cells plus one.
func (t *Trie) Leaves() int { return t.Cells() + 1 }

func (t *Trie) bumpLeaf(p Ptr, delta int32) {
	if p.IsNil() {
		t.nilLeaves += delta
		return
	}
	a := p.Addr()
	for int(a) >= len(t.leafCount) {
		t.leafCount = append(t.leafCount, 0)
	}
	t.leafCount[a] += delta
	if t.leafCount[a] < 0 {
		panic(fmt.Sprintf("trie: leaf count for bucket %d went negative", a))
	}
}

// at returns the pointer stored at position p.
func (t *Trie) at(p Pos) Ptr {
	switch p.Side {
	case SideRoot:
		return t.root
	case SideLeft:
		return t.cells[p.Cell].LP
	default:
		return t.cells[p.Cell].RP
	}
}

// setPtr stores pointer v at position p, keeping leaf counts in sync.
func (t *Trie) setPtr(p Pos, v Ptr) {
	old := t.at(p)
	if old.IsLeaf() {
		t.bumpLeaf(old, -1)
	}
	if v.IsLeaf() {
		t.bumpLeaf(v, +1)
	}
	switch p.Side {
	case SideRoot:
		t.root = v
	case SideLeft:
		t.cells[p.Cell].LP = v
	default:
		t.cells[p.Cell].RP = v
	}
	if t.tracer != nil {
		t.tracer.TraceSetPtr(p, v)
	}
}

// appendCell appends a new cell and returns its index. Pointers of the new
// cell must be wired by the caller through setPtr-equivalent accounting, so
// the cell is created with both sides nil and the two nil leaves are
// counted; callers overwrite them immediately.
func (t *Trie) appendCell(dv byte, dn int32) int32 {
	t.cells = append(t.cells, Cell{DV: dv, DN: dn, LP: Nil, RP: Nil})
	t.nilLeaves += 2
	ci := int32(len(t.cells) - 1)
	if t.tracer != nil {
		t.tracer.TraceAppendCell(ci, dv, dn)
	}
	return ci
}

// SearchResult describes where Algorithm A1 ended: the leaf pointer, the
// position holding it, the logical path of known digits to the leaf, and
// the digit index j the scan stopped at (used when search continues in a
// lower-level page under MLTH).
type SearchResult struct {
	Leaf Ptr
	Pos  Pos
	Path []byte
	J    int
}

// Bound returns the leaf's logical-path bound: the known digits, with every
// later digit implicitly maximal. Two bounds compare with keys.ComparePathBounds.
func (r SearchResult) Bound() []byte { return r.Path }

// Search runs Algorithm A1 for key c from the trie root and returns the
// leaf reached together with its logical path.
func (t *Trie) Search(c string) SearchResult {
	return t.SearchFrom(c, 0, nil)
}

// SearchFrom runs Algorithm A1 starting with digit index j and logical path
// prefix path (both inherited from upper-level pages under MLTH; pass 0 and
// nil at the top level). The path slice is copied, never aliased.
func (t *Trie) SearchFrom(c string, j int, path []byte) SearchResult {
	C := append([]byte(nil), path...)
	n := t.root
	pos := RootPos
	for n.IsEdge() {
		ci := n.Cell()
		cell := &t.cells[ci]
		i := int(cell.DN)
		goLeft := false
		if j == i {
			cj := t.alpha.Digit(c, j)
			if cj <= cell.DV {
				goLeft = true
				if cj == cell.DV {
					j++
				}
			}
		} else if j < i {
			// The key already branched strictly below an earlier
			// digit of the path; every deeper comparison resolves
			// left (see Section 2.2 of the paper).
			goLeft = true
		}
		if goLeft {
			if len(C) < i {
				panic(fmt.Sprintf("trie: malformed trie: left descent at cell %d needs %d known path digits, have %d", ci, i, len(C)))
			}
			C = append(C[:i], cell.DV)
			pos = Pos{Cell: ci, Side: SideLeft}
			n = cell.LP
		} else {
			pos = Pos{Cell: ci, Side: SideRight}
			n = cell.RP
		}
	}
	return SearchResult{Leaf: n, Pos: pos, Path: C, J: j}
}

// SearchAddr runs Algorithm A1 without materializing the logical path —
// the allocation-free lookup used by point reads, which only need the
// leaf pointer.
func (t *Trie) SearchAddr(c string) Ptr {
	n := t.root
	j := 0
	for n.IsEdge() {
		cell := &t.cells[n.Cell()]
		i := int(cell.DN)
		if j == i {
			cj := t.alpha.Digit(c, j)
			if cj <= cell.DV {
				if cj == cell.DV {
					j++
				}
				n = cell.LP
				continue
			}
			n = cell.RP
		} else if j < i {
			n = cell.LP
		} else {
			n = cell.RP
		}
	}
	return n
}

// Clone returns a deep copy of the trie.
func (t *Trie) Clone() *Trie {
	c := &Trie{
		alpha:       t.alpha,
		cells:       append([]Cell(nil), t.cells...),
		root:        t.root,
		leafCount:   append([]int32(nil), t.leafCount...),
		nilLeaves:   t.nilLeaves,
		tombstoning: t.tombstoning,
		dead:        t.dead,
	}
	return c
}
