package trie

import (
	"fmt"
	"strings"
)

// LeafPos describes one leaf encountered during an in-order traversal: its
// slot position, its pointer value, and its logical path (the known digits;
// later digits are implicitly maximal). Leaves appear in ascending key-range
// order, so Path bounds are strictly increasing across a traversal and the
// last leaf's bound is the maximal path (empty Path).
type LeafPos struct {
	Pos  Pos
	Leaf Ptr
	Path []byte
}

// InorderLeaves returns every leaf of the trie in in-order (ascending key
// range). The logical path of each leaf is materialized.
func (t *Trie) InorderLeaves() []LeafPos {
	out := make([]LeafPos, 0, len(t.cells)+1)
	t.walkLeaves(t.root, RootPos, nil, func(lp LeafPos) bool {
		out = append(out, lp)
		return true
	})
	return out
}

// WalkLeaves calls fn for each leaf in in-order until fn returns false.
func (t *Trie) WalkLeaves(fn func(LeafPos) bool) {
	t.walkLeaves(t.root, RootPos, nil, fn)
}

// WalkLeavesFrom is WalkLeaves starting at the leaf whose range contains
// from: subtrees whose entire key range lies below from are pruned without
// visiting them, so a range scan costs O(depth + leaves visited) instead
// of a full traversal.
func (t *Trie) WalkLeavesFrom(from string, fn func(LeafPos) bool) {
	var walk func(n Ptr, pos Pos, path []byte) bool
	walk = func(n Ptr, pos Pos, path []byte) bool {
		if n.IsLeaf() {
			return fn(LeafPos{Pos: pos, Leaf: n, Path: append([]byte(nil), path...)})
		}
		ci := n.Cell()
		cell := t.cells[ci]
		i := int(cell.DN)
		if len(path) < i {
			panic(fmt.Sprintf("trie: malformed trie: cell %d at digit number %d reached with %d known path digits", ci, i, len(path)))
		}
		left := append(append([]byte(nil), path[:i]...), cell.DV)
		// The left subtree's entire range tops out at its bound; skip it
		// when from lies above.
		if t.alpha.KeyLEBound(from, left) {
			if !walk(cell.LP, Pos{Cell: ci, Side: SideLeft}, left) {
				return false
			}
		}
		return walk(cell.RP, Pos{Cell: ci, Side: SideRight}, path)
	}
	walk(t.root, RootPos, nil)
}

// WalkLeavesPrefix is WalkLeaves for a page-level subtrie whose logical
// path starts with the digits inherited from upper pages: prefix seeds the
// path, so every reported LeafPos carries the full logical path. The
// multilevel THCL machinery uses it to compute cross-page leaf bounds.
func (t *Trie) WalkLeavesPrefix(prefix []byte, fn func(LeafPos) bool) {
	t.walkLeaves(t.root, RootPos, prefix, fn)
}

// walkLeaves traverses the subtrie at pointer n located at position pos with
// logical-path prefix path. It returns false when fn aborted the walk.
// The path slice passed to fn is freshly allocated per leaf.
func (t *Trie) walkLeaves(n Ptr, pos Pos, path []byte, fn func(LeafPos) bool) bool {
	if n.IsLeaf() {
		return fn(LeafPos{Pos: pos, Leaf: n, Path: append([]byte(nil), path...)})
	}
	ci := n.Cell()
	cell := t.cells[ci]
	i := int(cell.DN)
	if len(path) < i {
		panic(fmt.Sprintf("trie: malformed trie: cell %d at digit number %d reached with %d known path digits", ci, i, len(path)))
	}
	left := append(append([]byte(nil), path[:i]...), cell.DV)
	if !t.walkLeaves(cell.LP, Pos{Cell: ci, Side: SideLeft}, left, fn) {
		return false
	}
	return t.walkLeaves(cell.RP, Pos{Cell: ci, Side: SideRight}, path, fn)
}

// LeafPath returns the logical path of the first in-order leaf carrying
// bucket address addr, and whether one exists. The concurrent engine's
// maintenance pass uses it to derive the subtree stripe of a merge
// neighbour; any leaf of the bucket's run serves, since the stripe keys
// are advisory contention shaping, not correctness.
func (t *Trie) LeafPath(addr int32) ([]byte, bool) {
	var path []byte
	found := false
	t.WalkLeaves(func(lp LeafPos) bool {
		if !lp.Leaf.IsNil() && lp.Leaf.Addr() == addr {
			path, found = lp.Path, true
			return false
		}
		return true
	})
	return path, found
}

// InorderLeafPtrs returns every leaf pointer in in-order without computing
// logical paths. Unlike InorderLeaves it is usable on page-level subtries
// (produced by SplitAt for the multilevel scheme), whose local paths are
// fragmentary because leading digits are inherited from upper pages.
func (t *Trie) InorderLeafPtrs() []Ptr {
	out := make([]Ptr, 0, len(t.cells)+1)
	var walk func(n Ptr)
	walk = func(n Ptr) {
		if n.IsLeaf() {
			out = append(out, n)
			return
		}
		c := t.cells[n.Cell()]
		walk(c.LP)
		walk(c.RP)
	}
	walk(t.root)
	return out
}

// InorderNodes returns the cell indices of all internal nodes in in-order.
func (t *Trie) InorderNodes() []int32 {
	out := make([]int32, 0, len(t.cells))
	var walk func(n Ptr)
	walk = func(n Ptr) {
		if n.IsLeaf() {
			return
		}
		ci := n.Cell()
		walk(t.cells[ci].LP)
		out = append(out, ci)
		walk(t.cells[ci].RP)
	}
	walk(t.root)
	return out
}

// Depth returns the maximal number of internal nodes on a root-to-leaf
// path (0 for a trie with no cells).
func (t *Trie) Depth() int {
	var depth func(n Ptr) int
	depth = func(n Ptr) int {
		if n.IsLeaf() {
			return 0
		}
		c := t.cells[n.Cell()]
		l, r := depth(c.LP), depth(c.RP)
		if r > l {
			l = r
		}
		return l + 1
	}
	return depth(t.root)
}

// TotalLeafDepth returns the sum over all leaves of the number of internal
// nodes on the path to the leaf; dividing by Leaves() gives the average
// in-memory search length.
func (t *Trie) TotalLeafDepth() int {
	total := 0
	var walk func(n Ptr, d int)
	walk = func(n Ptr, d int) {
		if n.IsLeaf() {
			total += d
			return
		}
		c := t.cells[n.Cell()]
		walk(c.LP, d+1)
		walk(c.RP, d+1)
	}
	walk(t.root, 0)
	return total
}

// String renders the trie as nested parentheses with logical paths, in the
// spirit of the paper's Fig 1.c: internal nodes as (d,i) and leaves as
// bucket addresses or "nil".
func (t *Trie) String() string {
	var b strings.Builder
	var walk func(n Ptr)
	walk = func(n Ptr) {
		if n.IsLeaf() {
			b.WriteString(n.String())
			return
		}
		c := t.cells[n.Cell()]
		b.WriteByte('(')
		walk(c.LP)
		fmt.Fprintf(&b, " (%c,%d) ", c.DV, c.DN)
		walk(c.RP)
		b.WriteByte(')')
	}
	walk(t.root)
	return b.String()
}

// DumpCells renders the cell table the way the paper's Fig 1.d/1.e shows
// the standard representation: one line per cell with DV, DN, LP, RP.
func (t *Trie) DumpCells() string {
	var b strings.Builder
	b.WriteString("cell  DV  DN  LP    RP\n")
	for i, c := range t.cells {
		fmt.Fprintf(&b, "%4d  %2c  %2d  %-5s %-5s\n", i, c.DV, c.DN, c.LP, c.RP)
	}
	return b.String()
}

// DumpLeaves renders the in-order leaf sequence with logical paths, e.g.
// `i_a->1 i->3 ...`; the final leaf has the maximal path rendered as ".".
func (t *Trie) DumpLeaves() string {
	var parts []string
	for _, lp := range t.InorderLeaves() {
		path := string(lp.Path)
		if path == "" {
			path = "."
		}
		parts = append(parts, fmt.Sprintf("%s->%s", path, lp.Leaf))
	}
	return strings.Join(parts, " ")
}
