// Package workload generates the key sets the paper's experiments use:
// uniformly random keys ("randomly drawn, then sorted" for Figs 10-11),
// Knuth's 31 most-used English words (Fig 1), English-like words standing
// in for the 20 000-word UNIX dictionary the paper proposes as further
// validation, and skewed sets exercising unbalanced tries. All generators
// are deterministic in their seed.
package workload

import (
	"math/rand"
	"sort"
)

// KnuthWords are the 31 most used English words of /KNU73/ in frequency
// order — the insertion sequence of the paper's Fig 1.
var KnuthWords = []string{
	"the", "of", "and", "to", "a", "in", "that", "is", "i", "it",
	"for", "as", "with", "was", "his", "he", "be", "not", "by", "but",
	"have", "you", "which", "are", "on", "or", "her", "had", "at", "from",
	"this",
}

// Uniform returns n distinct keys of length in [minLen, maxLen] over the
// lowercase alphabet, in random order.
func Uniform(seed int64, n, minLen, maxLen int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	buf := make([]byte, maxLen)
	for len(out) < n {
		l := minLen + rng.Intn(maxLen-minLen+1)
		for i := 0; i < l; i++ {
			buf[i] = byte('a' + rng.Intn(26))
		}
		k := string(buf[:l])
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Ascending returns the keys sorted ascending (a copy; the input is not
// modified).
func Ascending(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}

// Descending returns the keys sorted descending.
func Descending(keys []string) []string {
	out := Ascending(keys)
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

var vowels = []byte{'a', 'e', 'i', 'o', 'u'}

// EnglishLike returns n distinct lowercase pseudo-words of length in
// [3, 10] whose letter sequences alternate consonant clusters and vowels,
// mimicking the prefix skew of a real dictionary (the paper's proposed
// UNIX-dictionary validation).
func EnglishLike(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	consonants := []byte("bcdfghjklmnpqrstvwz")
	common := []byte("tnshrdl") // overweight frequent consonants
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	var buf []byte
	for len(out) < n {
		buf = buf[:0]
		l := 3 + rng.Intn(8)
		vowel := rng.Intn(3) == 0
		for len(buf) < l {
			if vowel {
				buf = append(buf, vowels[rng.Intn(len(vowels))])
			} else if rng.Intn(3) == 0 {
				buf = append(buf, common[rng.Intn(len(common))])
			} else {
				buf = append(buf, consonants[rng.Intn(len(consonants))])
			}
			vowel = !vowel
		}
		k := string(buf)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Sequential returns n keys of the form prefix + zero-padded counter —
// the classic monotone load (log files, surrogate keys).
func Sequential(prefix string, start, n int) []string {
	out := make([]string, n)
	width := 0
	for v := start + n; v > 0; v /= 10 {
		width++
	}
	for i := 0; i < n; i++ {
		out[i] = prefix + pad(start+i, width)
	}
	return out
}

func pad(v, width int) string {
	buf := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf)
}

// SkewedPrefix returns n distinct keys where a fraction share a deep
// common prefix, driving the trie toward the unbalanced shapes Section
// 2.6 discusses.
func SkewedPrefix(seed int64, n int, prefix string, share float64) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	buf := make([]byte, 12)
	for len(out) < n {
		l := 2 + rng.Intn(6)
		for i := 0; i < l; i++ {
			buf[i] = byte('a' + rng.Intn(26))
		}
		k := string(buf[:l])
		if rng.Float64() < share {
			k = prefix + k
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// Shuffled returns a deterministically shuffled copy of keys.
func Shuffled(seed int64, keys []string) []string {
	out := append([]string(nil), keys...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Zipf returns n distinct keys whose digit choices follow a Zipf
// distribution over the alphabet — the "random, though not necessarily
// uniform" insertions Section 5 mentions. Lower s values flatten the
// skew; s must be > 1.
func Zipf(seed int64, n int, s float64) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, 25)
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	buf := make([]byte, 12)
	for len(out) < n {
		l := 3 + rng.Intn(9)
		for i := 0; i < l; i++ {
			buf[i] = byte('a' + z.Uint64())
		}
		k := string(buf[:l])
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}
