package workload

import (
	"reflect"
	"sort"
	"testing"

	"triehash/internal/keys"
)

func TestKnuthWords(t *testing.T) {
	if len(KnuthWords) != 31 {
		t.Fatalf("%d words, want 31", len(KnuthWords))
	}
	seen := map[string]bool{}
	for _, w := range KnuthWords {
		if seen[w] {
			t.Errorf("duplicate word %q", w)
		}
		seen[w] = true
		if err := keys.ASCII.Validate(w); err != nil {
			t.Errorf("invalid word %q: %v", w, err)
		}
	}
	if KnuthWords[0] != "the" || KnuthWords[1] != "of" {
		t.Error("frequency order lost")
	}
}

func allValidAndDistinct(t *testing.T, ks []string, n int) {
	t.Helper()
	if len(ks) != n {
		t.Fatalf("%d keys, want %d", len(ks), n)
	}
	seen := make(map[string]bool, n)
	for _, k := range ks {
		if seen[k] {
			t.Fatalf("duplicate key %q", k)
		}
		seen[k] = true
		if err := keys.ASCII.Validate(k); err != nil {
			t.Fatalf("invalid key %q: %v", k, err)
		}
	}
}

func TestUniform(t *testing.T) {
	ks := Uniform(1, 1000, 3, 10)
	allValidAndDistinct(t, ks, 1000)
	for _, k := range ks {
		if len(k) < 3 || len(k) > 10 {
			t.Fatalf("length %d outside [3,10]", len(k))
		}
	}
	// Deterministic in the seed, different across seeds.
	if !reflect.DeepEqual(ks, Uniform(1, 1000, 3, 10)) {
		t.Error("same seed produced different keys")
	}
	if reflect.DeepEqual(ks, Uniform(2, 1000, 3, 10)) {
		t.Error("different seeds produced identical keys")
	}
}

func TestAscendingDescending(t *testing.T) {
	ks := Uniform(3, 500, 3, 8)
	asc := Ascending(ks)
	if !sort.StringsAreSorted(asc) {
		t.Error("Ascending not sorted")
	}
	desc := Descending(ks)
	for i := 1; i < len(desc); i++ {
		if desc[i-1] < desc[i] {
			t.Fatal("Descending not sorted")
		}
	}
	// Originals untouched, same multiset.
	if sort.StringsAreSorted(ks) {
		t.Error("input was sorted in place (or suspiciously sorted)")
	}
	back := append([]string(nil), desc...)
	sort.Strings(back)
	if !reflect.DeepEqual(back, asc) {
		t.Error("Descending lost keys")
	}
}

func TestEnglishLike(t *testing.T) {
	ks := EnglishLike(4, 2000)
	allValidAndDistinct(t, ks, 2000)
	// Dictionary-like: many shared 2-letter prefixes.
	prefixes := map[string]int{}
	for _, k := range ks {
		prefixes[k[:2]]++
	}
	if len(prefixes) > 700 {
		t.Errorf("%d distinct 2-prefixes in 2000 words; not dictionary-like", len(prefixes))
	}
}

func TestSequential(t *testing.T) {
	ks := Sequential("log", 5, 10)
	allValidAndDistinct(t, ks, 10)
	if !sort.StringsAreSorted(ks) {
		t.Error("sequential keys must sort ascending")
	}
	if ks[0] != "log05" || ks[9] != "log14" {
		t.Errorf("unexpected endpoints %q %q", ks[0], ks[9])
	}
}

func TestSkewedPrefix(t *testing.T) {
	ks := SkewedPrefix(5, 1000, "deep/shared/", 0.7)
	allValidAndDistinct(t, ks, 1000)
	shared := 0
	for _, k := range ks {
		if len(k) >= 12 && k[:12] == "deep/shared/" {
			shared++
		}
	}
	if shared < 600 || shared > 800 {
		t.Errorf("%d of 1000 keys share the prefix, want ~700", shared)
	}
}

func TestShuffled(t *testing.T) {
	ks := Sequential("k", 0, 100)
	sh := Shuffled(6, ks)
	if reflect.DeepEqual(ks, sh) {
		t.Error("shuffle was identity")
	}
	back := append([]string(nil), sh...)
	sort.Strings(back)
	if !reflect.DeepEqual(back, ks) {
		t.Error("shuffle lost keys")
	}
}

func TestZipf(t *testing.T) {
	ks := Zipf(7, 2000, 1.5)
	allValidAndDistinct(t, ks, 2000)
	// Skew check: the most common first letter dominates.
	first := map[byte]int{}
	for _, k := range ks {
		first[k[0]]++
	}
	max := 0
	for _, n := range first {
		if n > max {
			max = n
		}
	}
	if max < len(ks)/3 {
		t.Errorf("zipf keys not skewed: top first-letter share %d of %d", max, len(ks))
	}
}
