package bench

import (
	"fmt"
	"strings"
	"testing"

	"triehash/internal/core"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// TestFig10Claims pins the shape of the paper's Fig 10 curves: a = 100%
// at d = 0, an interior minimum of the trie size M with a substantial
// saving, and a point combining a > 90% with a clearly smaller trie.
func TestFig10Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	ks := workload.Ascending(workload.Uniform(10, sweepSize, 3, 10))
	for _, b := range []int{10, 20, 50} {
		pts := runAscendingSweep(ks, b, ascendingDs(b))
		if pts[0].LoadPc < 99.9 {
			t.Errorf("b=%d: a(d=0) = %.2f%%, want 100%%", b, pts[0].LoadPc)
		}
		m0 := pts[0].M
		minM, minIdx := m0, 0
		for i, p := range pts {
			if p.M < minM {
				minM, minIdx = p.M, i
			}
		}
		if minIdx == 0 {
			t.Errorf("b=%d: no interior minimum of M (min at d=0)", b)
		}
		if minIdx == len(pts)-1 {
			t.Errorf("b=%d: M still falling at the sweep edge; no rebound visible", b)
		}
		saving := 1 - float64(minM)/float64(m0)
		if saving < 0.20 {
			t.Errorf("b=%d: M saving at the minimum is %.0f%%, want >= 20%%", b, saving*100)
		}
		// Some point keeps a > 90% while already saving trie space (the
		// paper's "a remains over 90% anyhow" observation; with our key
		// distribution the saving at the 90% line is ~10% for b=20 and
		// ~36% for b=50, versus the paper's 30%).
		if b >= 20 {
			found := false
			for _, p := range pts {
				if p.LoadPc > 90 && float64(p.M) <= 0.9*float64(m0) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("b=%d: no point with a>90%% and M <= 0.9*peak", b)
			}
		}
		// Basic TH at the middle split position has the smaller trie.
		basic := mustFile(coreMiddleBasic(b), ks)
		thcl := mustFile(coreMiddleTHCL(b), ks)
		if basic.Stats().TrieCells >= thcl.Stats().TrieCells {
			t.Errorf("b=%d: basic TH trie (%d cells) not smaller than THCL (%d)",
				b, basic.Stats().TrieCells, thcl.Stats().TrieCells)
		}
	}
}

// TestFig11Claims pins Fig 11: M falls monotonically-ish at small d with
// no rebound comparable to Fig 10, while a_d stays high.
func TestFig11Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	ks := workload.Descending(workload.Uniform(10, sweepSize, 3, 10))
	for _, b := range []int{10, 20, 50} {
		pts := runDescendingSweep(ks, b, ascendingDs(b))
		if pts[0].LoadPc < 99.9 {
			t.Errorf("b=%d: a(d=0) = %.2f%%, want 100%%", b, pts[0].LoadPc)
		}
		if pts[1].M >= pts[0].M {
			t.Errorf("b=%d: M did not drop from d=0 (%d -> %d)", b, pts[0].M, pts[1].M)
		}
		// The savings concentrate at small d; the tail stays near the
		// floor (no Fig 10-style rebound past the peak).
		minM := pts[0].M
		for _, p := range pts {
			if p.M < minM {
				minM = p.M
			}
		}
		last := pts[len(pts)-1]
		if float64(last.M) > 1.25*float64(minM) {
			t.Errorf("b=%d: tail M=%d rebounds far above the floor %d", b, last.M, minM)
		}
		// a_d stays high over the swept range (paper: over 90% or close).
		for _, p := range pts[:min(len(pts), 4)] {
			if p.LoadPc < 85 {
				t.Errorf("b=%d d=%d: a_d = %.1f%% fell under 85%%", b, p.D, p.LoadPc)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestFig1Exact pins the parts of Fig 1 the paper states outright: the
// trie root is (o,0) and the bucket reached under logical path "he" holds
// {had, have, he, her}.
func TestFig1Exact(t *testing.T) {
	tab := Fig1Example()
	var pathHE string
	for _, row := range tab.Rows {
		if row[0] == "he" {
			pathHE = row[2]
		}
	}
	if pathHE != "[had have he her]" {
		t.Errorf("bucket under path 'he' holds %s, paper shows [had have he her]", pathHE)
	}
	joined := strings.Join(tab.Notes, "\n")
	if !strings.Contains(joined, "(o,0)") {
		t.Errorf("trie root is not (o,0):\n%s", joined)
	}
}

// TestFig8Claims pins the controlled-split guarantees.
func TestFig8Claims(t *testing.T) {
	tab := Fig8ControlledSplit()
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	if tab.Rows[0][3] < "0.49" || tab.Rows[0][3] > "0.52" {
		t.Errorf("m=3 load %s, want ~0.50", tab.Rows[0][3])
	}
	if tab.Rows[1][3] != "1.000" {
		t.Errorf("m=1 load %s, want 1.000", tab.Rows[1][3])
	}
}

// TestSec5AccessClaims pins the access-cost comparison: TH searches cost
// exactly one access, two-level MLTH exactly two, the B-tree more.
func TestSec5AccessClaims(t *testing.T) {
	tab := Sec5AccessCounts()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	if tab.Rows[0][2] != "1.000" {
		t.Errorf("TH accesses/search = %s, want 1.000", tab.Rows[0][2])
	}
	if tab.Rows[1][2] != "2.000" {
		t.Errorf("MLTH accesses/search = %s, want 2.000", tab.Rows[1][2])
	}
	if tab.Rows[2][2] <= tab.Rows[1][2] {
		t.Errorf("B-tree accesses/search %s not above MLTH's %s", tab.Rows[2][2], tab.Rows[1][2])
	}
}

// coreMiddleBasic and coreMiddleTHCL are the Fig 10 comparison configs.
func coreMiddleBasic(b int) core.Config {
	return core.Config{Capacity: b, SplitPos: b/2 + 1}
}

func coreMiddleTHCL(b int) core.Config {
	return core.Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: b/2 + 1}
}

// TestSec23Claims pins the positioning experiment: equal load and search
// cost, an order-of-magnitude range-query gap.
func TestSec23Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab := Sec23Positioning()
	if len(tab.Rows) != 3 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	if tab.Rows[1][1] != "1.000" || tab.Rows[1][2] != "1.000" {
		t.Errorf("search cost row: %v", tab.Rows[1])
	}
	var th, lh float64
	fmt.Sscanf(tab.Rows[2][1], "%f", &th)
	fmt.Sscanf(tab.Rows[2][2], "%f", &lh)
	if lh < 5*th {
		t.Errorf("range gap too small: trie %v vs linear hashing %v", th, lh)
	}
}

// TestExtClaims pins the extension experiments' headline numbers.
func TestExtClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	mlth := ExtMultilevelTHCL()
	if mlth.Rows[0][1] != "1.000" {
		t.Errorf("multilevel compact load: %v", mlth.Rows[0])
	}
	for _, row := range mlth.Rows {
		if row[5] != "2.000" {
			t.Errorf("multilevel access cost: %v", row)
		}
	}

	dict := ExtDictionary()
	for _, row := range dict.Rows {
		var load, s float64
		fmt.Sscanf(row[3], "%f", &load)
		fmt.Sscanf(row[5], "%f", &s)
		if load < 0.6 || load > 0.75 {
			t.Errorf("dictionary load out of band: %v", row)
		}
		if s < 0.95 || s > 1.2 {
			t.Errorf("dictionary growth rate out of band: %v", row)
		}
	}
}
