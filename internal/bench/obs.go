package bench

import (
	"triehash/internal/core"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// hook is the package's shared observability attachment point: every file
// an experiment builds through mustFile reports to it, so cmd/thbench can
// expose a whole run over -metrics-addr by pointing one Observer at it.
var hook = &obs.Hook{}

// Observe attaches o to every file the experiments build from now on
// (nil detaches).
func Observe(o *obs.Observer) { hook.Set(o) }

// cachePolicy is the buffer pool implementation experiments use when they
// need "the" pool rather than comparing pools: "clock" (default) or "lru".
var cachePolicy = "clock"

// SetCachePolicy selects the pool implementation (cmd/thbench -cache).
// It reports whether the name is valid.
func SetCachePolicy(name string) bool {
	if name != "clock" && name != "lru" {
		return false
	}
	cachePolicy = name
	return true
}

// newPool wraps s in the selected buffer pool.
func newPool(s store.Store, frames int) store.Store {
	if cachePolicy == "lru" {
		return store.NewCached(s, frames)
	}
	return store.NewSharded(s, frames, 0)
}

// ObsCache quantifies the buffer pool the Options.CacheFrames knob buys:
// the same workload runs against pools of increasing size and the table
// reports the pool's hit/miss counters next to the transfers that still
// reached the simulated disk. The paper's access-cost model assumes no
// pool (the frames=0 row); the sweep shows how far a small pool moves a
// run from that model.
func ObsCache() *Table {
	const n = 20000
	ks := workload.Uniform(21, n, 3, 12)
	t := &Table{
		ID:      "obs-cache",
		Title:   "Buffer pool hit rate versus frames (random workload, b=20)",
		Headers: []string{"frames", "hits", "misses", "hit%", "disk reads", "reads saved%"},
	}
	var baseReads int64
	for _, frames := range []int{0, 8, 32, 128, 512} {
		mem := store.NewMem()
		var st store.Store = mem
		if frames > 0 {
			st = newPool(mem, frames)
		}
		f, err := core.New(core.Config{Capacity: 20}, store.NewInstrumented(st, hook))
		if err != nil {
			panic(err)
		}
		f.SetObsHook(hook)
		for _, k := range ks {
			if _, err := f.Put(k, nil); err != nil {
				panic(err)
			}
		}
		for _, k := range ks {
			if _, err := f.Get(k); err != nil {
				panic(err)
			}
		}
		diskReads := mem.Counters().Reads
		if frames == 0 {
			baseReads = diskReads
			t.AddRow(frames, 0, 0, "-", diskReads, "-")
			continue
		}
		pool := store.AsCachePool(st)
		hits, misses := pool.Hits(), pool.Misses()
		t.AddRow(frames, hits, misses,
			float64(hits)/float64(hits+misses)*100,
			diskReads,
			float64(baseReads-diskReads)/float64(baseReads)*100)
	}
	t.Note("write-through pool: writes always reach the disk; only reads are saved")
	t.Note("the frames=0 row is the paper's model: every logical access is a transfer")
	return t
}
