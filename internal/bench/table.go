// Package bench contains one runner per figure and quantitative claim of
// the paper's evaluation. Each runner rebuilds the experiment — workload,
// parameter sweep, method under test and baseline — and reports a Table of
// the same rows or series the paper shows, so `cmd/thbench` and the
// `go test -bench` targets regenerate every result. EXPERIMENTS.md records
// paper-versus-measured for each runner.
package bench

import (
	"fmt"
	"strings"
)

// Table is one experiment's output: a titled grid of cells plus free-form
// notes (the claims the table supports or refutes).
type Table struct {
	ID      string // experiment id, e.g. "fig10"
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row, formatting each value: floats with three
// decimals, everything else via %v.
func (t *Table) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated rows prefixed by the
// experiment id, ready for plotting tools; notes become comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	quote := func(c string) string {
		if strings.ContainsAny(c, ",\"\n") {
			return `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		return c
	}
	row := func(cells []string) {
		b.WriteString(t.ID)
		for _, c := range cells {
			b.WriteByte(',')
			b.WriteString(quote(c))
		}
		b.WriteByte('\n')
	}
	row(t.Headers)
	for _, r := range t.Rows {
		row(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s: %s\n", t.ID, n)
	}
	return b.String()
}

// Experiment couples a runner with its identity for the registry.
type Experiment struct {
	ID    string
	Title string
	Run   func() *Table
}

// Registry lists every experiment in paper order.
func Registry() []Experiment {
	return []Experiment{
		{"fig1", "Example file: Knuth's 31 words, b=4, m=3 (Figs 1-2)", Fig1Example},
		{"fig3", "Bucket split of the example file on key 'hat' (Fig 3)", Fig3Split},
		{"fig4", "Trie split into pages, b'=9 (Fig 4)", Fig4TrieSplit},
		{"fig5", "Basic TH, expected ascending insertions, m=b (Fig 5)", Fig5AscendingBasic},
		{"fig6", "Basic TH, expected descending insertions, m=1 (Fig 6)", Fig6DescendingBasic},
		{"fig7", "THCL split without nil nodes (Fig 7)", Fig7NoNilNodes},
		{"fig8", "THCL controlled splitting, descending (Fig 8)", Fig8ControlledSplit},
		{"fig9", "Redistribution that can shrink the trie (Fig 9)", Fig9Redistribution},
		{"fig10", "THCL ascending insertions: a%, M, N versus d (Fig 10)", Fig10Ascending},
		{"fig11", "THCL descending insertions: a%, M, N versus d (Fig 11)", Fig11Descending},
		{"sec31-load", "Random insertions: load factor and nil leaves (Sec 3.1)", Sec31RandomLoad},
		{"sec31-size", "Trie size versus B-tree branching space (Sec 3.1)", Sec31TrieVsBTreeSize},
		{"sec32-ordered", "Unexpected ordered insertions: TH versus B-tree (Sec 3.2)", Sec32UnexpectedOrdered},
		{"sec32-pages", "MLTH page load factors (Sec 3.2)", Sec32PageLoad},
		{"sec45-control", "THCL guaranteed loads and redistribution (Sec 4.5)", Sec45ControlledLoad},
		{"sec33-delete", "Deletions: merges and the 50% guarantee (Secs 3.3, 4.3)", Sec33Deletions},
		{"sec5-access", "Disk accesses per search: TH, MLTH, B-tree (Sec 5)", Sec5AccessCounts},
		{"sec26-balance", "Trie balancing (Sec 2.6)", Sec26Balancing},
		{"sec6-reconstruct", "Trie reconstruction from logical paths (Sec 6 / TOR83)", Sec6Reconstruction},
		{"sec31-capacity", "Addressing capacity of in-core and paged tries (Secs 3.1, 5)", Sec31Capacity},
		{"sec23-positioning", "TH vs linear hashing: order support at hash cost (Sec 2.3)", Sec23Positioning},
		{"ablation-splits", "Ablation: split determinism, nil-node policy, collapse (Sec 4 design choices)", AblationSplits},
		{"ext-mlth-thcl", "Extension: THCL under the multilevel scheme (Sec 6 future work)", ExtMultilevelTHCL},
		{"ext-mainmemory", "Extension: in-core search, trie vs B-tree (Sec 6)", ExtMainMemory},
		{"ext-dictionary", "Extension: trie size over a 20000-word dictionary (Sec 6)", ExtDictionary},
		{"obs-cache", "Observability: buffer pool hit rates versus frame count", ObsCache},
		{"obs-cache-sharded", "Buffer pools under concurrency: LRU vs sharded CLOCK", ObsCacheSharded},
		{"contention", "Intra-op span profile of concurrent writers (latch vs structural lock)", Contention},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
