package bench

import (
	"time"

	"triehash/internal/btree"
	"triehash/internal/core"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// ExtMainMemory measures the Section 6 claim about large main memories:
// for fully in-core files, trie hashing's digit-at-a-time search is
// faster than a B-tree's key comparisons, and the access structure is
// smaller (/KRI84/). Wall-clock numbers are machine-dependent; the table
// reports them alongside the structure sizes so the *ratio* carries the
// claim.
func ExtMainMemory() *Table {
	const n = 100000
	ks := workload.Uniform(60, n, 4, 12)
	t := &Table{
		ID:      "ext-mainmemory",
		Title:   "In-core search: digit-at-a-time trie vs B-tree (Sec 6)",
		Headers: []string{"structure", "index bytes", "ns/search", "B-tree/trie time"},
	}

	f, err := core.New(core.Config{Capacity: 50}, store.NewMem())
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		if _, err := f.Put(k, nil); err != nil {
			panic(err)
		}
	}
	tr := f.Trie()
	bt := mustBTree(btree.Config{LeafCapacity: 50}, ks)

	// Manual timing (testing.Benchmark cannot nest inside the bench
	// harness): warm up, then measure a fixed iteration count.
	timeOp := func(op func(i int)) float64 {
		const warm, iters = 20000, 400000
		for i := 0; i < warm; i++ {
			op(i)
		}
		start := time.Now()
		for i := 0; i < iters; i++ {
			op(i)
		}
		return float64(time.Since(start).Nanoseconds()) / iters
	}
	trieNs := timeOp(func(i int) {
		if tr.SearchAddr(ks[i%n]).IsNil() {
			panic("nil leaf")
		}
	})
	btNs := timeOp(func(i int) {
		if _, ok := bt.Get(ks[i%n]); !ok {
			panic("missing key")
		}
	})
	t.AddRow("TH trie (A1)", f.Stats().TrieBytes, trieNs, "")
	t.AddRow("B-tree (full compare)", bt.Stats().BranchBytes, btNs, btNs/trieNs)
	t.Note("trie search touches one digit per node; the B-tree compares whole keys at every level")
	t.Note("paper (Sec 6): for main-memory files TH is attractive for its smaller structure and faster digit-at-a-time search")
	return t
}

// ExtDictionary runs the validation the paper proposes as further work:
// the trie size M over a 20 000-word dictionary-like key set (standing in
// for the UNIX dictionary), against the theoretical one-cell-per-split
// growth and the uniform-key baseline.
func ExtDictionary() *Table {
	words := workload.EnglishLike(61, 20000)
	uniform := workload.Uniform(61, 20000, 3, 10)
	t := &Table{
		ID:      "ext-dictionary",
		Title:   "Trie size over a 20000-word dictionary (Sec 6's proposed validation)",
		Headers: []string{"keys", "b", "buckets", "load", "M", "s = M/splits", "depth"},
	}
	for _, b := range []int{10, 20, 50} {
		for _, w := range []struct {
			name string
			keys []string
		}{{"dictionary", words}, {"uniform", uniform}} {
			f := mustFile(core.Config{Capacity: b}, w.keys)
			st := f.Stats()
			t.AddRow(w.name, b, st.Buckets, st.Load, st.TrieCells, st.GrowthRate, st.Depth)
		}
	}
	t.Note("paper: the 20000-word UNIX dictionary 'confirmed the theoretical figures' (/ZEG88/) — M stays ~one cell per split and the load ~70%%")
	return t
}
