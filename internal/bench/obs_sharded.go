package bench

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"triehash/internal/core"
	"triehash/internal/store"
	"triehash/internal/workload"
)

// ObsCacheSharded compares the two buffer pool implementations — the
// global-mutex LRU (Options.CacheLRU) and the sharded CLOCK pool
// (Options.CacheClock, the default) — under concurrent readers. The same
// populated file is read through each pool by 1, 4 and 16 goroutines
// doing a fixed total number of random bucket fetches; the table reports
// the pool's hit ratio, aggregate throughput, and the mean per-operation
// latency measured inside the reader loops. The latency column is the
// lock-wait proxy: both pools run the identical workload, so any growth
// with goroutine count is time spent queueing on the pool's locks (the
// LRU reorders a global list under one mutex on every hit; CLOCK sets a
// reference bit under a per-shard read lock and serves the bucket without
// cloning).
func ObsCacheSharded() *Table {
	const (
		n        = 20000
		frames   = 256
		totalOps = 64000
	)
	ks := workload.Uniform(23, n, 3, 12)
	t := &Table{
		ID:      "obs-cache-sharded",
		Title:   "Buffer pools under concurrency: LRU vs sharded CLOCK (b=20, 256 frames)",
		Headers: []string{"pool", "goroutines", "hit%", "ops/ms", "ns/op"},
	}
	for _, pool := range []string{"lru", "clock"} {
		mem := store.NewMem()
		var st store.Store
		if pool == "lru" {
			st = store.NewCached(mem, frames)
		} else {
			st = store.NewSharded(mem, frames, 0)
		}
		f, err := core.New(core.Config{Capacity: 20}, st)
		if err != nil {
			panic(err)
		}
		for _, k := range ks {
			if _, err := f.Put(k, nil); err != nil {
				panic(err)
			}
		}
		buckets := int32(mem.Buckets())
		for _, g := range []int{1, 4, 16} {
			st.ResetCounters()
			per := totalOps / g
			var busy atomic.Int64
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < g; w++ {
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(seed))
					t0 := time.Now()
					for i := 0; i < per; i++ {
						if _, err := store.View(st, rng.Int31n(buckets)); err != nil {
							panic(err)
						}
					}
					busy.Add(int64(time.Since(t0)))
				}(int64(g)*1009 + int64(w))
			}
			wg.Wait()
			wall := time.Since(start)
			p := store.AsCachePool(st)
			hits, misses := p.Hits(), p.Misses()
			ops := g * per
			t.AddRow(pool, g,
				float64(hits)/float64(hits+misses)*100,
				float64(ops)/float64(wall.Milliseconds()+1),
				busy.Load()/int64(ops))
		}
	}
	t.Note("fixed total of %d random bucket fetches split across the goroutines", totalOps)
	t.Note("ns/op is mean in-loop latency: growth with goroutines is time queued on pool locks")
	t.Note("reads go through store.View: CLOCK serves immutable snapshots, LRU clones under its mutex")
	return t
}
