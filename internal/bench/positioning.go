package bench

import (
	"triehash/internal/core"
	"triehash/internal/linhash"
	"triehash/internal/mlth"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// Sec23Positioning quantifies Section 2.3's placement of trie hashing
// "somewhere between tree based methods and usual dynamic hashing
// methods": against linear hashing (/LIT80/, the canonical dynamic
// hashing scheme) TH matches the load factor and the ~1-access search,
// but keeps the key order — a range query costs one read per qualifying
// bucket instead of a scan of the whole table.
func Sec23Positioning() *Table {
	ks := workload.Uniform(23, 8000, 3, 10)
	sorted := workload.Ascending(ks)
	t := &Table{
		ID:      "sec23-positioning",
		Title:   "TH vs linear hashing: order support at equal hash-like cost (Sec 2.3)",
		Headers: []string{"metric", "trie hashing", "linear hashing"},
	}

	th := mustFile(core.Config{Capacity: 20}, ks)
	lh, err := linhash.New(linhash.Config{Capacity: 20, MaxLoad: 0.7})
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		if err := lh.Put(k, nil); err != nil {
			panic(err)
		}
	}

	sth := th.Stats()
	t.AddRow("load factor", sth.Load, lh.Load())

	// Successful searches.
	th.Store().ResetCounters()
	lh.ResetAccesses()
	for _, k := range ks[:2000] {
		if _, err := th.Get(k); err != nil {
			panic(err)
		}
		if _, err := lh.Get(k); err != nil {
			panic(err)
		}
	}
	t.AddRow("accesses / search",
		float64(th.Store().Counters().Reads)/2000,
		float64(lh.Accesses())/2000)

	// A 500-key range: ordered file vs order-destroying hash.
	lo, hi := sorted[4000], sorted[4500]
	th.Store().ResetCounters()
	lh.ResetAccesses()
	nTH, nLH := 0, 0
	if err := th.Range(lo, hi, func(string, []byte) bool { nTH++; return true }); err != nil {
		panic(err)
	}
	lh.Range(lo, hi, func(string, []byte) bool { nLH++; return true })
	if nTH != nLH || nTH != 501 {
		panic("range disagreement between the two methods")
	}
	t.AddRow("accesses / 500-key range",
		float64(th.Store().Counters().Reads),
		float64(lh.Accesses()))
	t.Note("linear hashing must touch every page of the table for any range; trie hashing reads only the qualifying buckets")
	t.Note("paper (Sec 2.3): TH splits are partly random — between a B-tree's determinism and dynamic hashing's full randomness")
	return t
}

// ExtMultilevelTHCL measures the extension the paper's conclusion calls
// for — the controlled-load variant under the multilevel scheme: compact
// 100% files whose trie is paged, still served at two accesses per search.
func ExtMultilevelTHCL() *Table {
	ks := workload.Ascending(workload.Uniform(66, 8000, 3, 10))
	t := &Table{
		ID:      "ext-mlth-thcl",
		Title:   "THCL under MLTH (the paper's stated future work)",
		Headers: []string{"d", "load", "levels", "pages", "cells", "accesses/search"},
	}
	b := 20
	for _, d := range []int{0, 2, b / 2} {
		f, err := mlth.New(mlth.Config{
			Capacity: b, PageCapacity: 64,
			Mode: trie.ModeTHCL, SplitPos: b - d,
		}, store.NewMem())
		if err != nil {
			panic(err)
		}
		for _, k := range ks {
			if _, err := f.Put(k, nil); err != nil {
				panic(err)
			}
		}
		f.ResetPageReads()
		f.Store().ResetCounters()
		probes := ks[:1000]
		for _, k := range probes {
			if _, err := f.Get(k); err != nil {
				panic(err)
			}
		}
		st := f.Stats()
		perSearch := float64(st.PageReads+f.Store().Counters().Reads) / float64(len(probes))
		t.AddRow(d, st.Load, st.Levels, st.Pages, st.TrieCells, perSearch)
		if err := f.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	t.Note("d=0 reproduces the compact 100%% load with the trie paged out of main memory")
	return t
}
