package bench

import (
	"triehash/internal/core"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// sweepSize is the paper's workload size for Figs 10-11: 5 000 keys
// randomly drawn, then sorted.
const sweepSize = 5000

// sweepPoint is one (d, a%, M, N, s) sample of a Fig 10/11 curve.
type sweepPoint struct {
	D      int
	LoadPc float64 // a%
	M      int     // trie cells
	N      int     // buckets
	S      float64 // growth rate M/splits
}

// runAscendingSweep loads the ascending key set with m = b-d. The
// bounding key stays the last key of B (the default), exactly as in the
// paper's Fig 10: shifting only the split key keeps the split's partial
// randomness, which is what creates the interior minimum of M — at d=0
// adjacent keys share long prefixes (long split strings, big trie), while
// larger d shortens the strings but multiplies the splits.
func runAscendingSweep(ks []string, b int, ds []int) []sweepPoint {
	out := make([]sweepPoint, 0, len(ds))
	for _, d := range ds {
		m := b - d
		f := mustFile(core.Config{
			Capacity: b, Mode: trie.ModeTHCL,
			SplitPos: m,
		}, ks)
		st := f.Stats()
		out = append(out, sweepPoint{D: d, LoadPc: st.Load * 100, M: st.TrieCells, N: st.Buckets, S: st.GrowthRate})
	}
	return out
}

// runDescendingSweep loads the descending key set with m = 1 and the
// bounding key at position m + 1 + d (Fig 11's d = m”” - m - 1).
func runDescendingSweep(ks []string, b int, ds []int) []sweepPoint {
	out := make([]sweepPoint, 0, len(ds))
	for _, d := range ds {
		bound := 2 + d
		if bound > b+1 {
			break
		}
		f := mustFile(core.Config{
			Capacity: b, Mode: trie.ModeTHCL,
			SplitPos: 1, BoundPos: bound,
		}, ks)
		st := f.Stats()
		out = append(out, sweepPoint{D: d, LoadPc: st.Load * 100, M: st.TrieCells, N: st.Buckets, S: st.GrowthRate})
	}
	return out
}

// ascendingDs returns the d values swept for bucket capacity b: far enough
// past the middle split position that the interior minimum of M and the
// rebound behind it are both visible.
func ascendingDs(b int) []int {
	var ds []int
	for d := 0; d <= (3*b)/4 && d < b; d++ {
		ds = append(ds, d)
	}
	return ds
}

// Fig10Ascending regenerates Fig 10: load factor a%, trie size M and file
// size N under ascending insertions of 5 000 randomly drawn keys, sweeping
// d = b - m for b in {10, 20, 50}. The basic method at the middle split
// position is included for the paper's final comparison point.
func Fig10Ascending() *Table {
	ks := workload.Ascending(workload.Uniform(10, sweepSize, 3, 10))
	t := &Table{
		ID:      "fig10",
		Title:   "THCL ascending insertions, 5000 sorted random keys (Fig 10)",
		Headers: []string{"b", "d", "m", "a%", "M", "N", "s"},
	}
	for _, b := range []int{10, 20, 50} {
		pts := runAscendingSweep(ks, b, ascendingDs(b))
		for _, p := range pts {
			t.AddRow(b, p.D, b-p.D, p.LoadPc, p.M, p.N, p.S)
		}
		m0 := pts[0].M
		minM, minD := m0, 0
		for _, p := range pts {
			if p.M < minM {
				minM, minD = p.M, p.D
			}
		}
		t.Note("b=%d: a(d=0)=%.1f%%, peak M=%d, min M=%d at d=%d (%.0f%% saving)",
			b, pts[0].LoadPc, m0, minM, minD, 100*(1-float64(minM)/float64(m0)))
		// The paper's comparison: basic TH at the middle split position
		// has a ~20% smaller trie and slightly higher load than THCL at
		// the same position.
		basic := mustFile(core.Config{Capacity: b, SplitPos: b/2 + 1}, ks)
		thclMid := mustFile(core.Config{
			Capacity: b, Mode: trie.ModeTHCL,
			SplitPos: b/2 + 1,
		}, ks)
		sb, sc := basic.Stats(), thclMid.Stats()
		t.Note("b=%d middle split: basic TH M=%d a=%.1f%% vs THCL M=%d a=%.1f%%",
			b, sb.TrieCells, sb.Load*100, sc.TrieCells, sc.Load*100)
	}
	t.Note("paper: a=100%% at d=0; M has an interior minimum; >30%% M saving with a>90%%; s=1.25-1.6 at the minimum")
	return t
}

// Fig11Descending regenerates Fig 11: the same workload sorted descending,
// m = 1, sweeping the bounding key position.
func Fig11Descending() *Table {
	ks := workload.Descending(workload.Uniform(10, sweepSize, 3, 10))
	t := &Table{
		ID:      "fig11",
		Title:   "THCL descending insertions, 5000 sorted random keys (Fig 11)",
		Headers: []string{"b", "d", "bound pos", "a%", "M", "N", "s"},
	}
	for _, b := range []int{10, 20, 50} {
		pts := runDescendingSweep(ks, b, ascendingDs(b))
		for _, p := range pts {
			t.AddRow(b, p.D, p.D+2, p.LoadPc, p.M, p.N, p.S)
		}
		m0 := pts[0].M
		flatAt := -1
		for i := 1; i < len(pts); i++ {
			if float64(pts[i].M) <= 0.72*float64(m0) {
				flatAt = pts[i].D
				break
			}
		}
		t.Note("b=%d: a(d=0)=%.1f%%, M(d=0)=%d, ~30%% saving reached at d=%d",
			b, pts[0].LoadPc, m0, flatAt)
	}
	t.Note("paper: no interior minimum of M; ~30%% saving at small d then flat; a_d stays over 90%%; s=1.2-1.5")
	return t
}
