package bench

import "testing"

// TestAllExperimentsRun executes every registered experiment once and
// prints its table; assertions on the paper's claims live in the
// dedicated tests alongside.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tab := e.Run()
			if tab.ID != e.ID {
				t.Errorf("table id %q, registry id %q", tab.ID, e.ID)
			}
			if len(tab.Rows) == 0 && len(tab.Notes) == 0 {
				t.Error("experiment produced no output")
			}
			t.Logf("\n%s", tab)
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig10"); !ok {
		t.Error("fig10 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("bogus id found")
	}
}
