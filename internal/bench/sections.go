package bench

import (
	"fmt"
	"math/rand"

	"triehash/internal/btree"
	"triehash/internal/core"
	"triehash/internal/mlth"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

func mustBTree(cfg btree.Config, ks []string) *btree.Tree {
	t, err := btree.New(cfg)
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		t.Put(k, nil)
	}
	return t
}

// Sec31RandomLoad measures the random-insertion bucket load of TH, THCL
// and the B-tree, plus the share of nil leaves (Section 3.1: ~70% for all
// three; nil leaves under 0.5%).
func Sec31RandomLoad() *Table {
	ks := workload.Uniform(31, 5000, 3, 10)
	t := &Table{
		ID:      "sec31-load",
		Title:   "Random insertions: bucket load factor (Sec 3.1)",
		Headers: []string{"b", "TH load", "TH nil-leaf %", "THCL load", "B-tree load"},
	}
	for _, b := range []int{10, 20, 50, 100} {
		th := mustFile(core.Config{Capacity: b}, ks)
		thcl := mustFile(core.Config{Capacity: b, Mode: trie.ModeTHCL}, ks)
		bt := mustBTree(btree.Config{LeafCapacity: b}, ks)
		sth := th.Stats()
		t.AddRow(b, sth.Load, sth.NilLeafShare*100, thcl.Stats().Load, bt.Stats().LeafLoad)
	}
	// Skewed (Zipf) keys: the paper notes insertions are "random, though
	// not necessarily uniform" — the load band holds under skew too.
	zk := workload.Zipf(31, 5000, 1.4)
	thz := mustFile(core.Config{Capacity: 20}, zk)
	btz := mustBTree(btree.Config{LeafCapacity: 20}, zk)
	t.Note("zipf-skewed keys, b=20: TH load %.3f (trie depth %d), B-tree %.3f",
		thz.Stats().Load, thz.Stats().Depth, btz.Stats().LeafLoad)
	t.Note("paper: all methods about 70%%; nil leaves negligible (<0.5%%)")
	return t
}

// Sec31TrieVsBTreeSize compares the trie's 6-byte-cell space against the
// B-tree's branching nodes for the same file (Section 3.1: the trie is
// usually several times smaller).
func Sec31TrieVsBTreeSize() *Table {
	ks := workload.Uniform(32, 5000, 3, 10)
	t := &Table{
		ID:      "sec31-size",
		Title:   "Access structure space: trie cells vs B-tree branches (Sec 3.1)",
		Headers: []string{"b", "trie bytes", "B-tree bytes", "prefix B-tree bytes", "B-tree/trie", "prefix/trie"},
	}
	for _, b := range []int{10, 20, 50} {
		th := mustFile(core.Config{Capacity: b}, ks)
		bt := mustBTree(btree.Config{LeafCapacity: b}, ks)
		pbt := mustBTree(btree.Config{LeafCapacity: b, PrefixSeparators: true}, ks)
		sth, sbt, spb := th.Stats(), bt.Stats(), pbt.Stats()
		t.AddRow(b, sth.TrieBytes, sbt.BranchBytes, spb.BranchBytes,
			float64(sbt.BranchBytes)/float64(sth.TrieBytes),
			float64(spb.BranchBytes)/float64(sth.TrieBytes))
	}
	t.Note("paper: one 6-byte cell per split vs 20-50 bytes per B-tree branching entry;")
	t.Note("Section 5 names the prefix B-tree (/BAY77/) as the space-optimized competitor — the trie still wins")
	t.Note("dictionary-like keys (deep shared prefixes):")
	ks2 := workload.EnglishLike(32, 5000)
	th := mustFile(core.Config{Capacity: 20}, ks2)
	bt := mustBTree(btree.Config{LeafCapacity: 20}, ks2)
	t.Note("b=20 english-like: trie %d B vs B-tree %d B", th.Stats().TrieBytes, bt.Stats().BranchBytes)
	return t
}

// Sec32UnexpectedOrdered measures the load under unexpected (untuned)
// ordered insertions: TH's 60-73% ascending and 40-55% descending against
// the B-tree's 50%, plus the m = 0.4b variant.
func Sec32UnexpectedOrdered() *Table {
	base := workload.Uniform(33, 5000, 3, 10)
	asc, desc := workload.Ascending(base), workload.Descending(base)
	t := &Table{
		ID:      "sec32-ordered",
		Title:   "Unexpected ordered insertions (Sec 3.2)",
		Headers: []string{"b", "m", "TH asc", "TH desc", "B-tree asc", "B-tree desc"},
	}
	for _, b := range []int{10, 20, 50} {
		for _, m := range []int{b/2 + 1, (2*b + 4) / 5} { // ~0.5b and ~0.4b
			tha := mustFile(core.Config{Capacity: b, SplitPos: m}, asc)
			thd := mustFile(core.Config{Capacity: b, SplitPos: m}, desc)
			bta := mustBTree(btree.Config{LeafCapacity: b}, asc)
			btd := mustBTree(btree.Config{LeafCapacity: b}, desc)
			t.AddRow(b, m, tha.Stats().Load, thd.Stats().Load,
				bta.Stats().LeafLoad, btd.Stats().LeafLoad)
		}
	}
	t.Note("paper: TH ascending 60-73%% vs B-tree 50%%; TH descending 40-55%%; m~0.4b lifts descending above 50%%")
	return t
}

// Sec32PageLoad measures the MLTH page load factor for random, ascending
// and descending insertions (Section 3.2: random a few points under the
// bucket load; ascending ~52% within 40-72%; descending ~45%).
func Sec32PageLoad() *Table {
	base := workload.Uniform(34, 8000, 3, 10)
	t := &Table{
		ID:      "sec32-pages",
		Title:   "MLTH page load factors (Sec 3.2)",
		Headers: []string{"order", "b", "b'", "bucket load", "page load", "levels", "pages"},
	}
	for _, order := range []string{"random", "ascending", "descending"} {
		ks := base
		switch order {
		case "ascending":
			ks = workload.Ascending(base)
		case "descending":
			ks = workload.Descending(base)
		}
		for _, bp := range []int{32, 64} {
			f, err := mlth.New(mlth.Config{Capacity: 10, PageCapacity: bp}, store.NewMem())
			if err != nil {
				panic(err)
			}
			for _, k := range ks {
				if _, err := f.Put(k, nil); err != nil {
					panic(err)
				}
			}
			st := f.Stats()
			t.AddRow(order, 10, bp, st.Load, st.FileLevelPageLoad, st.Levels, st.Pages)
		}
	}
	t.Note("paper: page load 2-3 points under bucket load for random; ~52%% (40-72%%) ascending; ~45%% (40-53%%) descending")
	return t
}

// Sec45ControlledLoad measures the THCL guarantees of Section 4.5:
// deterministic middle splits pin unexpected ordered loads near 50% for
// any b, and redistribution lifts the random load toward the B-tree's
// ~87% peak.
func Sec45ControlledLoad() *Table {
	base := workload.Uniform(45, 5000, 3, 10)
	asc, desc := workload.Ascending(base), workload.Descending(base)
	t := &Table{
		ID:      "sec45-control",
		Title:   "THCL load control (Sec 4.5)",
		Headers: []string{"case", "b", "load"},
	}
	for _, b := range []int{10, 20, 50} {
		m := b / 2
		det := core.Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1}
		t.AddRow("deterministic middle, ascending", b, mustFile(det, asc).Stats().Load)
		t.AddRow("deterministic middle, descending", b, mustFile(det, desc).Stats().Load)
	}
	plain := mustFile(core.Config{Capacity: 10, Mode: trie.ModeTHCL}, base)
	red := mustFile(core.Config{Capacity: 10, Mode: trie.ModeTHCL, Redistribution: core.RedistBoth}, base)
	bt := mustBTree(btree.Config{LeafCapacity: 10, Redistribute: true}, base)
	t.AddRow("random, no redistribution", 10, plain.Stats().Load)
	t.AddRow("random, redistribution", 10, red.Stats().Load)
	t.AddRow("random, B-tree redistribution", 10, bt.Stats().LeafLoad)
	t.Note("paper: guaranteed ~50%% for unexpected ordered; redistribution raises random load toward 87%% peak")
	return t
}

// Sec33Deletions measures deletion behaviour: the basic method's sibling
// merges versus THCL's guaranteed 50% minimum, and the example-trie merge
// constraint the paper counts couples for.
func Sec33Deletions() *Table {
	ks := workload.Uniform(33, 4000, 3, 10)
	t := &Table{
		ID:      "sec33-delete",
		Title:   "Deletions (Secs 3.3, 4.3)",
		Headers: []string{"method", "buckets before", "buckets after", "min load", "load"},
	}
	rng := rand.New(rand.NewSource(33))
	perm := rng.Perm(len(ks))
	for _, mode := range []string{"basic TH", "basic TH + rotations", "THCL guaranteed"} {
		var f *core.File
		switch mode {
		case "basic TH":
			f = mustFile(core.Config{Capacity: 10}, ks)
		case "basic TH + rotations":
			f = mustFile(core.Config{Capacity: 10, Merge: core.MergeRotations}, ks)
		default:
			f = mustFile(core.Config{Capacity: 10, Mode: trie.ModeTHCL, SplitPos: 6, BoundPos: 7}, ks)
		}
		before := f.Stats().Buckets
		for _, pi := range perm[:3600] {
			if err := f.Delete(ks[pi]); err != nil {
				panic(err)
			}
		}
		st := f.Stats()
		minLoad := minBucketLoad(f)
		t.AddRow(mode, before, st.Buckets, minLoad, st.Load)
	}
	t.Note("paper: a B-tree (and THCL) guarantees 50%% minimum under deletions; basic TH cannot")

	// The Fig 1 example's merge constraint: count sibling couples and
	// the couples rotations unlock (Section 3.3).
	f := mustFile(core.Config{Capacity: 4, SplitPos: 3}, workload.KnuthWords)
	siblings, rotatable := 0, 0
	couples := f.Trie().Couples()
	for _, c := range couples {
		if c.Siblings {
			siblings++
		}
		if c.Rotatable {
			rotatable++
		}
	}
	t.Note("example file: %d of %d successive couples are siblings (paper: 4 of 10); %d rotatable (paper: 8)",
		siblings, len(couples), rotatable)
	return t
}

func minBucketLoad(f *core.File) float64 {
	min := 1.0
	seen := map[int32]bool{}
	b := f.Config().Capacity
	for _, lp := range f.Trie().InorderLeaves() {
		if lp.Leaf.IsNil() || seen[lp.Leaf.Addr()] {
			continue
		}
		seen[lp.Leaf.Addr()] = true
		bk, err := f.Store().Read(lp.Leaf.Addr())
		if err != nil {
			panic(err)
		}
		if l := float64(bk.Len()) / float64(b); l < min {
			min = l
		}
	}
	return min
}

// Sec5AccessCounts measures disk accesses per operation: one for TH with
// the trie in core, two for a two-level MLTH file, height-many for the
// B-tree (Section 5 / Section 3.1).
func Sec5AccessCounts() *Table {
	ks := workload.Uniform(5, 6000, 3, 10)
	probes := ks[:1000]
	t := &Table{
		ID:      "sec5-access",
		Title:   "Disk accesses per successful search (Sec 5)",
		Headers: []string{"method", "structure", "accesses/search"},
	}

	th := mustFile(core.Config{Capacity: 10}, ks)
	th.Store().ResetCounters()
	for _, k := range probes {
		if _, err := th.Get(k); err != nil {
			panic(err)
		}
	}
	t.AddRow("TH (trie in core)", fmt.Sprintf("M=%d cells", th.Stats().TrieCells),
		float64(th.Store().Counters().Reads)/float64(len(probes)))

	ml, err := mlth.New(mlth.Config{Capacity: 10, PageCapacity: 48}, store.NewMem())
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		if _, err := ml.Put(k, nil); err != nil {
			panic(err)
		}
	}
	ml.ResetPageReads()
	ml.Store().ResetCounters()
	for _, k := range probes {
		if _, err := ml.Get(k); err != nil {
			panic(err)
		}
	}
	mst := ml.Stats()
	t.AddRow(fmt.Sprintf("MLTH (%d levels, root in core)", mst.Levels),
		fmt.Sprintf("%d pages", mst.Pages),
		float64(ml.PageReads()+ml.Store().Counters().Reads)/float64(len(probes)))

	bt := mustBTree(btree.Config{LeafCapacity: 10, BranchFanout: 11}, ks)
	bt.ResetAccesses()
	for _, k := range probes {
		if _, ok := bt.Get(k); !ok {
			panic("missing key")
		}
	}
	t.AddRow(fmt.Sprintf("B-tree (height %d, root in core)", bt.Height()),
		fmt.Sprintf("%d leaves", bt.Leaves()),
		float64(bt.Accesses())/float64(len(probes))-1) // minus the in-core root
	t.Note("paper: 1 access for TH, 2 for a two-level MLTH, height-1 for a B-tree with cached root")
	return t
}

// Sec26Balancing measures the trie-balancing technique of Section 2.6:
// depth before and after, with search results unchanged.
func Sec26Balancing() *Table {
	t := &Table{
		ID:      "sec26-balance",
		Title:   "Trie balancing (Sec 2.6)",
		Headers: []string{"workload", "cells", "depth before", "recursive-split", "canonical-form", "avg search before", "avg after (rec)", "avg after (canon)"},
	}
	for _, w := range []struct {
		name string
		keys []string
	}{
		{"random", workload.Uniform(26, 2000, 3, 10)},
		{"ascending", workload.Ascending(workload.Uniform(26, 2000, 3, 10))},
		{"skewed prefix", workload.SkewedPrefix(26, 2000, "zzz", 0.8)},
	} {
		f := mustFile(core.Config{Capacity: 10}, w.keys)
		tr := f.Trie()
		bal := tr.Balanced()
		canon, err := tr.BalancedCanonical()
		if err != nil {
			panic(err)
		}
		leaves := float64(tr.Leaves())
		t.AddRow(w.name, tr.Cells(), tr.Depth(), bal.Depth(), canon.Depth(),
			float64(tr.TotalLeafDepth())/leaves,
			float64(bal.TotalLeafDepth())/leaves,
			float64(canon.TotalLeafDepth())/leaves)
	}
	t.Note("paper: balancing shortens in-memory search only; both of Section 2.6's overall techniques shown")
	return t
}

// Sec6Reconstruction measures the TOR83 trie reconstruction from logical
// paths: the rebuilt trie is equivalent and usually better balanced.
func Sec6Reconstruction() *Table {
	t := &Table{
		ID:      "sec6-reconstruct",
		Title:   "Trie reconstruction from logical paths (Sec 6 / TOR83)",
		Headers: []string{"workload", "cells", "depth original", "depth rebuilt", "equivalent"},
	}
	for _, w := range []struct {
		name string
		keys []string
	}{
		{"random", workload.Uniform(61, 2000, 3, 10)},
		{"ascending", workload.Ascending(workload.Uniform(61, 2000, 3, 10))},
	} {
		f := mustFile(core.Config{Capacity: 10}, w.keys)
		tr := f.Trie()
		leaves := tr.InorderLeaves()
		bounds := make([][]byte, len(leaves))
		ptrs := make([]trie.Ptr, len(leaves))
		for i, lp := range leaves {
			bounds[i] = lp.Path
			ptrs[i] = lp.Leaf
		}
		back, err := trie.Reconstruct(tr.Alphabet(), bounds, ptrs)
		if err != nil {
			panic(err)
		}
		equiv := true
		for _, k := range w.keys {
			if tr.Search(k).Leaf != back.Search(k).Leaf {
				equiv = false
				break
			}
		}
		t.AddRow(w.name, tr.Cells(), tr.Depth(), back.Depth(), equiv)
	}
	t.Note("paper: the reconstructed trie may be better balanced than the original (conjectured optimal)")
	return t
}

// Sec31Capacity reports the paper's addressing-capacity arithmetic: how
// large a file a trie buffer of a given size addresses, and the records a
// two-level MLTH file spans (Sections 3.1 and 5).
func Sec31Capacity() *Table {
	t := &Table{
		ID:      "sec31-capacity",
		Title:   "Addressing capacity (Secs 3.1, 5)",
		Headers: []string{"trie buffer", "cells", "buckets addressed", "records at b=20", "records at b=200"},
	}
	for _, kb := range []int{6, 30, 64} {
		cells := kb * 1024 / trie.PaperCellBytes
		buckets := cells + 1
		t.AddRow(fmt.Sprintf("%d KB", kb), cells, buckets, buckets*20, buckets*200)
	}
	t.Note("paper: 6 KB addresses ~1000 buckets; 64 KB ~11000; 10^4-10^6 records for typical b")
	// Two-level reach: a root page of b' cells addresses b'+1 pages,
	// each addressing b'+1 buckets.
	for _, pageKB := range []int{4, 10, 64} {
		bp := pageKB * 1024 / trie.PaperCellBytes
		buckets := (bp + 1) * (bp + 1)
		t.Note("two-level MLTH with %d KB pages: ~%d buckets, ~%d records at b=20",
			pageKB, buckets, buckets*20)
	}
	// Section 5's fan-out claim: for the same page size, the 6-byte cell
	// out-branches a B-tree entry (separator + pointer).
	const page = 4096
	trieFan := page/trie.PaperCellBytes + 1
	for _, entry := range []int{12, 24, 50} {
		t.Note("4 KB page fan-out: trie %d vs B-tree %d at %d B/entry (%.1fx)",
			trieFan, page/entry+1, entry, float64(trieFan)/float64(page/entry+1))
	}
	return t
}
