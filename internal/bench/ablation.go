package bench

import (
	"triehash/internal/core"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// AblationSplits isolates the design choices Section 4 introduces, one
// axis at a time, on the same ascending workload:
//
//   - nil-node policy: basic TH vs THCL at identical split parameters —
//     what eliminating nil leaves alone buys (Section 4.1);
//   - split determinism: natural bounding (last key) vs the bounding key
//     right above the split key (Section 4.2) — what the guarantee costs
//     in trie size;
//   - node collapse: merges with and without removing redundant cells
//     (Sections 4.3-4.4) — trie size vs algorithmic simplicity.
func AblationSplits() *Table {
	n := 4000
	asc := workload.Ascending(workload.Uniform(77, n, 3, 10))
	b := 20
	t := &Table{
		ID:      "ablation-splits",
		Title:   "Ablation of the THCL design choices (ascending load, b=20)",
		Headers: []string{"configuration", "load", "M", "N", "nil leaves"},
	}
	row := func(name string, cfg core.Config) {
		f := mustFile(cfg, asc)
		st := f.Stats()
		t.AddRow(name, st.Load, st.TrieCells, st.Buckets, st.NilLeaves)
	}

	// Axis 1: nil-node policy at m = b (the compact-load setting).
	row("basic TH, m=b (nil nodes)", core.Config{Capacity: b, SplitPos: b})
	row("THCL, m=b (shared leaves)", core.Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: b})

	// Axis 2: determinism at m = 0.8b.
	m := (4 * b) / 5
	row("THCL m=0.8b, natural bound", core.Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: m})
	row("THCL m=0.8b, deterministic", core.Config{Capacity: b, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1})

	// Axis 3: collapse on redistribution merges.
	row("THCL redist, keep cells", core.Config{
		Capacity: b, Mode: trie.ModeTHCL, Redistribution: core.RedistPredecessor,
	})
	row("THCL redist, collapse", core.Config{
		Capacity: b, Mode: trie.ModeTHCL, Redistribution: core.RedistPredecessor, CollapseOnMerge: true,
	})

	t.Note("nil elimination alone turns the stranded-bucket loss into a 100%% compact file")
	t.Note("determinism pins the load exactly but lengthens split strings (adjacent keys share prefixes): larger M")
	t.Note("collapsing after merges trades trie-mutation work for the smaller table")
	return t
}
