package bench

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"triehash/internal/core"
	"triehash/internal/obs"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// Knobs cmd/thbench exposes for the contention experiment (-procs,
// -trace-threshold).
var (
	contentionProcs = 8
	traceThreshold  time.Duration // 0 = adaptive rolling p99
)

// SetContentionProcs sets the worker count of the contention experiment.
func SetContentionProcs(n int) {
	if n > 0 {
		contentionProcs = n
	}
}

// SetTraceThreshold fixes the slow-op flight-recorder admission threshold
// for the experiments that trace spans (0 keeps the adaptive rolling p99).
func SetTraceThreshold(d time.Duration) {
	if d >= 0 {
		traceThreshold = d
	}
}

// putSpanned performs one traced Put: a span opens, travels through the
// engine collecting stage marks and latch holds, and closes on every
// return path (the obsop analyzer enforces the deferred finish).
func putSpanned(o *obs.Observer, e *core.ConcurrentFile, k string, v []byte) error {
	sp := o.StartSpan(obs.OpPut)
	defer o.FinishSpan(sp)
	_, err := e.PutSpan(k, v, sp)
	return err
}

// Contention profiles the concurrent write engine with span tracing on:
// where does a Put spend its time when many writers share a fully cached
// (mem-regime) file, and which locks make them wait? Two phases run over
// a file preloaded with 2^15 keys:
//
//   - overwrite: steady state, no structure changes. Workers walk the
//     whole key space from different offsets, so their buckets collide.
//   - growth: every worker inserts fresh keys from its own shard, so the
//     file splits continuously and the subtree stripes plus the trie flip
//     lock join the picture.
//
// The table reports the per-stage span breakdown of each phase; the notes
// name the dominant wait source, the flip-lock share, the hottest subtree
// stripes and the most latch-contended buckets. This is the profile that
// attributes the E30 mem-regime scaling wall (EXPERIMENTS.md E31) and
// verifies the subtree-striping rework against it (E32).
//
// Unlike the paper-figure experiments this one reports wall-clock times,
// so the exact numbers vary run to run; the shape — which stage dominates,
// which lock writers wait on — is stable.
func Contention() *Table {
	const (
		nkeys  = 1 << 15
		opsPer = 1 << 14 // puts per worker per phase
	)
	procs := contentionProcs
	ks := workload.Uniform(31, nkeys, 3, 12)
	fresh := workload.Uniform(37, procs*opsPer, 13, 24)

	h := &obs.Hook{}
	f, err := core.New(core.Config{Capacity: 50, Mode: trie.ModeTHCL}, store.NewInstrumented(store.NewMem(), h))
	if err != nil {
		panic(err)
	}
	f.SetObsHook(h)
	e, err := core.NewConcurrent(f)
	if err != nil {
		panic(err)
	}
	for _, k := range ks {
		if _, err := e.Put(k, []byte("v0")); err != nil {
			panic(err)
		}
	}

	// Spans attach only for the measured phases, so the preload's splits
	// do not pollute the stage breakdown. When cmd/thbench attached a
	// span-enabled observer (-trace-threshold), the experiment reports
	// into it, so the end-of-run panel carries this run's data; otherwise
	// it traces into a private one.
	o := hook.Observer()
	if !o.SpansEnabled() {
		o = obs.New(obs.Config{Spans: true, SlowOp: traceThreshold, SlowOpDepth: 16})
	}

	val := []byte("v1")
	phase := func(key func(w, i int) string) obs.Snapshot {
		h.Set(o)
		var wg sync.WaitGroup
		for w := 0; w < procs; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < opsPer; i++ {
					if err := putSpanned(o, e, key(w, i), val); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		h.Set(nil)
		return o.SnapshotSince(0)
	}

	over := phase(func(w, i int) string { return ks[(w*nkeys/procs+i)%nkeys] })
	o.ResetCounters()
	grow := phase(func(w, i int) string { return fresh[w*opsPer+i] })

	t := &Table{
		ID:      "contention",
		Title:   fmt.Sprintf("Intra-op span profile: %d writers on a mem-regime concurrent file (b=50, %d keys preloaded)", procs, nkeys),
		Headers: []string{"phase", "stage", "spans", "total", "share%", "p50", "p99"},
	}
	for _, ph := range []struct {
		name string
		snap obs.Snapshot
	}{{"overwrite", over}, {"growth", grow}} {
		var stageSum time.Duration
		for _, hs := range ph.snap.Stages {
			stageSum += hs.Sum
		}
		for _, sg := range obs.Stages() {
			hs, ok := ph.snap.Stages[sg.String()]
			if !ok {
				continue
			}
			t.AddRow(ph.name, sg.String(), hs.Count, hs.Sum.Round(time.Microsecond).String(),
				float64(hs.Sum)/float64(stageSum)*100,
				hs.P50.String(), hs.P99.String())
		}

		put := ph.snap.Ops[obs.OpPut.String()]
		if put.Sum > 0 {
			t.Note("%s: stages sum to %.1f%% of whole-op Put time (%v of %v over %d ops)",
				ph.name, float64(stageSum)/float64(put.Sum)*100,
				stageSum.Round(time.Millisecond), put.Sum.Round(time.Millisecond), put.Count)
		}
		waits := []obs.Stage{obs.StageLatchWait, obs.StageStructWait, obs.StageSubtreeWait, obs.StageFileLock}
		dominant, dominantSum := obs.Stage(0), time.Duration(-1)
		for _, sg := range waits {
			if hs, ok := ph.snap.Stages[sg.String()]; ok && hs.Sum > dominantSum {
				dominant, dominantSum = sg, hs.Sum
			}
		}
		if dominantSum > 0 {
			t.Note("%s: dominant wait source: %s (%.1f%% of span time)",
				ph.name, dominant, float64(dominantSum)/float64(stageSum)*100)
		}
		if sc := ph.snap.StructLock; sc != nil {
			t.Note("%s: flip lock: %d acquisitions, wait %v, hold %v",
				ph.name, sc.Count, sc.Wait.Round(time.Microsecond), sc.Hold.Round(time.Microsecond))
		}
		if len(ph.snap.Stripes) > 0 {
			var sw, sh time.Duration
			var sn int64
			for _, st := range ph.snap.Stripes {
				sw += st.Wait
				sh += st.Hold
				sn += st.Count
			}
			t.Note("%s: subtree stripes: %d active, %d acquisitions, wait %v, hold %v",
				ph.name, len(ph.snap.Stripes), sn, sw.Round(time.Microsecond), sh.Round(time.Microsecond))
			hot := make([]obs.BucketContention, len(ph.snap.Stripes))
			copy(hot, ph.snap.Stripes)
			sort.Slice(hot, func(i, j int) bool { return hot[i].Wait > hot[j].Wait })
			for i, st := range hot {
				if i == 3 {
					break
				}
				t.Note("%s: hot stripe %d: wait %v over %d acquires (held %v)",
					ph.name, st.Addr, st.Wait.Round(time.Microsecond), st.Count, st.Hold.Round(time.Microsecond))
			}
		}
		for i, bc := range ph.snap.Contention {
			if i == 3 {
				break
			}
			t.Note("%s: hot bucket %d: latch wait %v over %d acquires (held %v)",
				ph.name, bc.Addr, bc.Wait.Round(time.Microsecond), bc.Count, bc.Hold.Round(time.Microsecond))
		}
	}
	thr := "adaptive p99"
	if traceThreshold > 0 {
		thr = traceThreshold.String()
	}
	t.Note("slow ops captured in the growth phase: %d (threshold %s); wall-clock rows vary run to run", grow.SlowOpsTotal, thr)
	return t
}
