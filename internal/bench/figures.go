package bench

import (
	"fmt"

	"triehash/internal/core"
	"triehash/internal/keys"
	"triehash/internal/mlth"
	"triehash/internal/store"
	"triehash/internal/trie"
	"triehash/internal/workload"
)

// mustFile builds a fresh in-memory file and loads keys into it. The file
// reports to the package's observability hook (see Observe), so a thbench
// run with -metrics-addr exposes every experiment's traffic.
func mustFile(cfg core.Config, ks []string) *core.File {
	f, err := core.New(cfg, store.NewInstrumented(store.NewMem(), hook))
	if err != nil {
		panic(err)
	}
	f.SetObsHook(hook)
	for _, k := range ks {
		if _, err := f.Put(k, nil); err != nil {
			panic(fmt.Sprintf("loading %q: %v", k, err))
		}
	}
	return f
}

// Fig1Example rebuilds the paper's Fig 1/Fig 2 example: the 31 most used
// English words, bucket capacity 4, split position 3, basic method. The
// table lists every bucket with its logical path and contents.
func Fig1Example() *Table {
	f := mustFile(core.Config{Capacity: 4, SplitPos: 3}, workload.KnuthWords)
	t := &Table{
		ID:      "fig1",
		Title:   "Example file (31 Knuth words, b=4, m=3, basic TH)",
		Headers: []string{"logical path", "bucket", "keys"},
	}
	last := int32(-1)
	for _, lp := range f.Trie().InorderLeaves() {
		path := string(lp.Path)
		if path == "" {
			path = "."
		}
		if lp.Leaf.IsNil() {
			t.AddRow(path, "nil", "")
			continue
		}
		addr := lp.Leaf.Addr()
		if addr == last {
			continue
		}
		last = addr
		b, err := f.Store().Read(addr)
		if err != nil {
			panic(err)
		}
		t.AddRow(path, addr, fmt.Sprint(b.Keys()))
	}
	st := f.Stats()
	t.Note("trie: %s", f.Trie().String())
	t.Note("stats: %v", st)
	t.Note("paper: 11 buckets, trie with one cell per split, load 50-90%%")
	return t
}

// Fig3Split reproduces the paper's Fig 3: inserting 'hat' into the Fig 1
// file overflows the bucket holding {had, have, he, her}; the split key is
// 'have', the split string 'ha', and the trie grows by the single node
// (a,1).
func Fig3Split() *Table {
	f := mustFile(core.Config{Capacity: 4, SplitPos: 3}, workload.KnuthWords)
	before := f.Stats()
	res := f.Trie().Search("have")
	t := &Table{
		ID:      "fig3",
		Title:   "Bucket split on inserting 'hat' (Fig 3)",
		Headers: []string{"stage", "bucket of 'have'", "logical path", "trie cells"},
	}
	t.AddRow("before", res.Leaf, string(res.Path), before.TrieCells)
	s := keys.ASCII.SplitString("have", "he")
	t.Note("split key 'have' vs bounding key 'he' -> split string %q (paper: 'ha')", s)
	if _, err := f.Put("hat", nil); err != nil {
		panic(err)
	}
	after := f.Stats()
	res2 := f.Trie().Search("have")
	t.AddRow("after", res2.Leaf, string(res2.Path), after.TrieCells)
	resHe := f.Trie().Search("he")
	t.AddRow("after ('he')", resHe.Leaf, string(resHe.Path), after.TrieCells)
	t.Note("cells added: %d (paper: 1, the node (a,1))", after.TrieCells-before.TrieCells)
	if err := f.CheckInvariants(); err != nil {
		panic(err)
	}
	return t
}

// Fig4TrieSplit reproduces the paper's Fig 4: loading the Fig 1 file with
// page capacity b' = 9 forces a trie split into a two-level hierarchy.
func Fig4TrieSplit() *Table {
	st := store.NewMem()
	f, err := mlth.New(mlth.Config{Capacity: 4, PageCapacity: 9, SplitPos: 3}, st)
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:      "fig4",
		Title:   "Trie split into pages, b'=9 (Fig 4)",
		Headers: []string{"word #", "levels", "pages", "page splits"},
	}
	for i, w := range workload.KnuthWords {
		if _, err := f.Put(w, nil); err != nil {
			panic(err)
		}
		if i == 0 || f.PageSplits() > 0 && f.Levels() == 2 && len(t.Rows) < 2 {
			t.AddRow(i+1, f.Levels(), f.Pages(), f.PageSplits())
		}
	}
	t.AddRow(len(workload.KnuthWords), f.Levels(), f.Pages(), f.PageSplits())
	for pid := int32(0); pid < int32(f.Pages()); pid++ {
		t.Note("page %d: %s", pid, f.PageTrie(pid).String())
	}
	t.Note("paper: the split creates a root page with one cell over two subtrie pages")
	if err := f.CheckInvariants(); err != nil {
		panic(err)
	}
	return t
}

// fig5Keys is the paper's Fig 5/6/7 ascending example neighbourhood.
var fig5Keys = []string{"oshd", "osmb", "oszb", "oszh", "oszr"}

// Fig5AscendingBasic reproduces Fig 5: with m = b the split under expected
// ascending insertions leaves the bucket full but creates nil nodes, so
// intermediate buckets stay underloaded and a=100% cannot be attained.
func Fig5AscendingBasic() *Table {
	f := mustFile(core.Config{Capacity: 4, SplitPos: 4}, fig5Keys)
	t := &Table{
		ID:      "fig5",
		Title:   "Basic TH, ascending, m=b: nil nodes cap the load (Fig 5)",
		Headers: []string{"event", "buckets", "nil leaves", "load"},
	}
	st := f.Stats()
	t.AddRow("after split on 'oszr'", st.Buckets, st.NilLeaves, st.Load)
	// 'ota' goes to a nil node and allocates a bucket; bucket 1 is not
	// yet full and never receives another ascending key.
	if _, err := f.Put("ota", nil); err != nil {
		panic(err)
	}
	st = f.Stats()
	t.AddRow("after 'ota' (nil alloc)", st.Buckets, st.NilLeaves, st.Load)
	for _, k := range []string{"otd", "oth", "otm", "ott", "ova", "ovf"} {
		if _, err := f.Put(k, nil); err != nil {
			panic(err)
		}
	}
	st = f.Stats()
	t.AddRow("after more ascending keys", st.Buckets, st.NilLeaves, st.Load)
	t.Note("trie: %s", f.Trie().String())
	t.Note("paper: bucket 1 stays underloaded; a_a = 100%% cannot be attained")
	return t
}

// Fig6DescendingBasic reproduces Fig 6: even with m = 1 the partial split
// randomness keeps keys like 'orba','orbf' in the bucket, so descending
// insertions cannot reach 100% either.
func Fig6DescendingBasic() *Table {
	// Descending arrivals; the fifth key 'orba' overflows the bucket.
	// The split key is 'orba' (m=1) and the bounding key 'oszr', so the
	// split string is "or" and 'orbf' randomly stays behind — exactly
	// the paper's example.
	ks := []string{"oszr", "oszh", "osca", "orbf", "orba"}
	f := mustFile(core.Config{Capacity: 4, SplitPos: 1}, ks)
	t := &Table{
		ID:      "fig6",
		Title:   "Basic TH, descending, m=1: split randomness (Fig 6)",
		Headers: []string{"bucket", "keys", "load"},
	}
	seen := map[int32]bool{}
	for _, lp := range f.Trie().InorderLeaves() {
		if lp.Leaf.IsNil() || seen[lp.Leaf.Addr()] {
			continue
		}
		seen[lp.Leaf.Addr()] = true
		b, err := f.Store().Read(lp.Leaf.Addr())
		if err != nil {
			panic(err)
		}
		t.AddRow(lp.Leaf.Addr(), fmt.Sprint(b.Keys()), float64(b.Len())/4)
	}
	t.Note("trie: %s", f.Trie().String())
	t.Note("paper: two keys (orba, orbf) remain with the split key; bucket 1 is not fully loaded")
	return t
}

// Fig7NoNilNodes reproduces Fig 7: the THCL split of the Fig 5 scenario
// points every right leaf at the new bucket, so 'ota' and successors keep
// filling bucket 1 instead of allocating underloaded buckets.
func Fig7NoNilNodes() *Table {
	f := mustFile(core.Config{Capacity: 4, Mode: trie.ModeTHCL, SplitPos: 4}, fig5Keys)
	t := &Table{
		ID:      "fig7",
		Title:   "THCL split without nil nodes (Fig 7)",
		Headers: []string{"event", "buckets", "bucket-1 leaves", "load"},
	}
	st := f.Stats()
	t.AddRow("after split on 'oszr'", st.Buckets, f.Trie().LeafCount(1), st.Load)
	for _, k := range []string{"ota", "otd", "ovm"} {
		if _, err := f.Put(k, nil); err != nil {
			panic(err)
		}
	}
	st = f.Stats()
	t.AddRow("after ota..ovm", st.Buckets, f.Trie().LeafCount(1), st.Load)
	t.Note("trie: %s", f.Trie().String())
	t.Note("nil leaves: %d (paper: none; all right leaves carry address 1)", st.NilLeaves)
	return t
}

// Fig8ControlledSplit reproduces Fig 8: descending insertions with the
// bounding key at m+1. With m = 3 (b = 4) exactly two keys move per split
// (a_d = 50%); with m = 1 four keys move (a_d = 100%).
func Fig8ControlledSplit() *Table {
	n := 800
	ks := workload.Descending(workload.Uniform(81, n, 3, 8))
	t := &Table{
		ID:      "fig8",
		Title:   "THCL controlled splitting for descending insertions (Fig 8)",
		Headers: []string{"m", "bound pos", "keys moved/split", "load"},
	}
	for _, m := range []int{3, 1} {
		f := mustFile(core.Config{Capacity: 4, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1}, ks)
		st := f.Stats()
		t.AddRow(m, m+1, 5-m, st.Load)
	}
	t.Note("paper: m=3 guarantees a_d = 50%%; m=1 reaches a_d = 100%%")
	return t
}

// Fig9Redistribution reproduces Fig 9: a redistribution tuned for maximal
// load moves only the top key into the successor; the boundary may
// coincide with an existing leaf bound, leaving a node whose both leaves
// carry the same bucket — the trie may shrink instead of growing.
func Fig9Redistribution() *Table {
	n := 1200
	ks := workload.Ascending(workload.Uniform(91, n, 3, 8))
	plain := mustFile(core.Config{Capacity: 10, Mode: trie.ModeTHCL}, ks)
	redist := mustFile(core.Config{
		Capacity: 10, Mode: trie.ModeTHCL,
		Redistribution: core.RedistPredecessor,
	}, ks)
	collapse := mustFile(core.Config{
		Capacity: 10, Mode: trie.ModeTHCL,
		Redistribution: core.RedistPredecessor, CollapseOnMerge: true,
	}, ks)
	t := &Table{
		ID:      "fig9",
		Title:   "Redistribution: load up, trie growth down (Fig 9)",
		Headers: []string{"variant", "load", "trie cells", "redistributions"},
	}
	for _, row := range []struct {
		name string
		f    *core.File
	}{{"no redistribution", plain}, {"redistribute", redist}, {"redistribute+collapse", collapse}} {
		st := row.f.Stats()
		t.AddRow(row.name, st.Load, st.TrieCells, row.f.Redistributions())
	}
	t.Note("paper: redistribution may leave the trie unchanged or even shrink it (node suppression)")
	return t
}
