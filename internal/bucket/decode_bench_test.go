package bucket

import (
	"fmt"
	"testing"

	"triehash/internal/format"
)

func benchPage(v format.Version, n int) []byte {
	b := New(64)
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("user:%04d", i*7)
		b.Put(k, []byte(fmt.Sprintf("value-%s-%04d", k, i)))
	}
	b.SetBound([]byte("user:0000"))
	return b.AppendFormat(nil, v)
}

func BenchmarkDecodeV1(b *testing.B) {
	page := benchPage(format.V1, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBinary(page); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV2(b *testing.B) {
	page := benchPage(format.V2, 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeBinary(page); err != nil {
			b.Fatal(err)
		}
	}
}
