// Package bucket implements the fixed-capacity record containers of trie
// hashing. Buckets are the unit of transfer between the file and main
// memory; each holds up to b records sorted by primary key, so the split
// algorithms can address "the sequence B of b+1 keys to split" directly and
// in-bucket search is binary.
package bucket

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"triehash/internal/format"
)

// Record is one stored record: a primary key and an opaque value. Only the
// key participates in address computation.
type Record struct {
	Key   string
	Value []byte
}

// Bucket is a key-sorted sequence of records. Capacity is enforced by the
// file layer, not here: splitting needs the transient b+1-th record.
//
// Every bucket also carries its logical-path bound in its header — the
// known digits of the upper boundary of its key range (nil = the infinite
// bound). The paper's conclusion describes exactly this ("logical paths,
// assumed stored on the disk, for instance in the headers of the
// buckets") as the basis of trie reconstruction after a crash.
type Bucket struct {
	bound []byte // upper bound of the key range; nil = infinite
	recs  []Record

	// decodedFrom records which on-disk version DecodeBinary read this
	// bucket from (0 for buckets built in memory) — the per-page figure
	// Scrub and thcheck report for mixed-version files.
	decodedFrom format.Version
}

// DecodedFormat returns the on-disk version this bucket was decoded
// from, or 0 for a bucket that was never deserialized.
func (b *Bucket) DecodedFormat() format.Version { return b.decodedFrom }

// Bound returns the bucket's logical-path bound (nil = infinite). The
// returned slice is read-only; it is never overwritten in place by a
// later SetBound, so callers may hold it across bound updates.
func (b *Bucket) Bound() []byte { return b.bound }

// SetBound records the bucket's logical-path bound. The slice is copied
// into fresh storage: reusing the old backing array would mutate slices
// previously returned by Bound under their holders, and keeping a
// reference to the caller's array would let later caller writes change
// the bucket — bounds alias in neither direction.
func (b *Bucket) SetBound(bound []byte) {
	if bound == nil {
		b.bound = nil
		return
	}
	b.bound = append(make([]byte, 0, len(bound)), bound...)
}

// New returns an empty bucket with room pre-allocated for capacity records.
func New(capacity int) *Bucket {
	return &Bucket{recs: make([]Record, 0, capacity+1)}
}

// Len returns the number of records.
func (b *Bucket) Len() int { return len(b.recs) }

// At returns record i in key order.
func (b *Bucket) At(i int) Record { return b.recs[i] }

// Keys returns the keys in ascending order. The slice is freshly allocated.
func (b *Bucket) Keys() []string {
	out := make([]string, len(b.recs))
	for i, r := range b.recs {
		out[i] = r.Key
	}
	return out
}

// search returns the insertion index of key and whether it is present.
// The binary search is hand-rolled rather than sort.Search so the Get hot
// path stays free of func values and allocates nothing.
func (b *Bucket) search(key string) (int, bool) {
	lo, hi := 0, len(b.recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.recs[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.recs) && b.recs[lo].Key == key
}

// Get returns the value stored under key.
func (b *Bucket) Get(key string) ([]byte, bool) {
	if i, ok := b.search(key); ok {
		return b.recs[i].Value, true
	}
	return nil, false
}

// Put inserts or replaces the record for key and reports whether the key
// was already present.
func (b *Bucket) Put(key string, value []byte) bool {
	i, ok := b.search(key)
	if ok {
		b.recs[i].Value = value
		return true
	}
	b.recs = append(b.recs, Record{})
	copy(b.recs[i+1:], b.recs[i:])
	b.recs[i] = Record{Key: key, Value: value}
	return false
}

// Delete removes the record for key, reporting whether it existed.
func (b *Bucket) Delete(key string) bool {
	i, ok := b.search(key)
	if !ok {
		return false
	}
	copy(b.recs[i:], b.recs[i+1:])
	b.recs[len(b.recs)-1] = Record{}
	b.recs = b.recs[:len(b.recs)-1]
	return true
}

// MinKey and MaxKey return the smallest and largest keys; both panic on an
// empty bucket.
func (b *Bucket) MinKey() string { return b.recs[0].Key }

// MaxKey returns the largest key.
func (b *Bucket) MaxKey() string { return b.recs[len(b.recs)-1].Key }

// Ascend calls fn for each record with key in [from, to] in ascending
// order until fn returns false. An empty `to` means no upper limit.
func (b *Bucket) Ascend(from, to string, fn func(Record) bool) bool {
	i, _ := b.search(from)
	for ; i < len(b.recs); i++ {
		if to != "" && b.recs[i].Key > to {
			return true
		}
		if !fn(b.recs[i]) {
			return false
		}
	}
	return true
}

// SplitOff removes every record whose key is strictly greater than the
// keep predicate allows and returns them, preserving order. keep reports
// whether a key stays in this bucket.
func (b *Bucket) SplitOff(keep func(key string) bool) []Record {
	stay := b.recs[:0]
	var moved []Record
	for _, r := range b.recs {
		if keep(r.Key) {
			stay = append(stay, r)
		} else {
			moved = append(moved, r)
		}
	}
	// Zero the tail so moved records do not linger in the backing array.
	for i := len(stay); i < len(b.recs); i++ {
		b.recs[i] = Record{}
	}
	b.recs = stay
	return moved
}

// Absorb inserts records (which must be sorted and disjoint from the
// bucket's range) into the bucket.
func (b *Bucket) Absorb(recs []Record) {
	for _, r := range recs {
		b.Put(r.Key, r.Value)
	}
}

// Clone returns a deep copy of the bucket (values are shared: records are
// treated as immutable once stored).
func (b *Bucket) Clone() *Bucket {
	c := &Bucket{recs: append([]Record(nil), b.recs...)}
	if b.bound != nil {
		c.bound = append([]byte(nil), b.bound...)
	}
	return c
}

// v2Magic opens a version-2 bucket page. The value is provably not a v1
// prefix: a v1 page starts with its bound length — either ^uint32(0)
// (the infinite bound) or a real length far below 0xFFFFFFFE.
const v2Magic = 0xFFFFFFFE

// Bytes returns the serialized size of the bucket under AppendBinary.
func (b *Bucket) Bytes() int {
	n := 8 + len(b.bound)
	for _, r := range b.recs {
		n += 8 + len(r.Key) + len(r.Value)
	}
	return n
}

// sharedPrefix returns the number of leading bytes key shares with ref.
func sharedPrefix(key string, ref []byte) int {
	n := len(key)
	if len(ref) < n {
		n = len(ref)
	}
	i := 0
	for i < n && key[i] == ref[i] {
		i++
	}
	return i
}

// EncodedLen returns the exact serialized size of the bucket under
// AppendFormat(v) without materializing the bytes — the figure the byte-
// budget gates compare against the slot payload.
func (b *Bucket) EncodedLen(v format.Version) int {
	if v != format.V2 {
		return b.Bytes()
	}
	n := 5 // magic + version byte
	if b.bound == nil {
		n += format.UvarintLen(0)
	} else {
		n += format.UvarintLen(uint64(len(b.bound)+1)) + len(b.bound)
	}
	n += format.UvarintLen(uint64(len(b.recs)))
	ref := b.bound
	for _, r := range b.recs {
		cp := sharedPrefix(r.Key, ref)
		suffix := len(r.Key) - cp
		n += format.UvarintLen(uint64(cp)) +
			format.UvarintLen(uint64(suffix)) + suffix +
			format.UvarintLen(uint64(len(r.Value))) + len(r.Value)
		ref = []byte(r.Key)
	}
	return n
}

// AppendFormat serializes the bucket into buf at on-disk version v and
// returns the extended slice.
func (b *Bucket) AppendFormat(buf []byte, v format.Version) []byte {
	if v != format.V2 {
		return b.AppendBinary(buf)
	}
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], v2Magic)
	buf = append(buf, n[:]...)
	buf = append(buf, byte(format.V2))
	if b.bound == nil {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(b.bound)+1))
		buf = append(buf, b.bound...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(b.recs)))
	// Keys compress against the previous key (the bucket's bound for the
	// first record): records in a leaf share the leaf's trie-path prefix
	// and sorted neighbours share even longer runs.
	ref := b.bound
	for _, r := range b.recs {
		cp := sharedPrefix(r.Key, ref)
		buf = binary.AppendUvarint(buf, uint64(cp))
		buf = binary.AppendUvarint(buf, uint64(len(r.Key)-cp))
		buf = append(buf, r.Key[cp:]...)
		buf = binary.AppendUvarint(buf, uint64(len(r.Value)))
		buf = append(buf, r.Value...)
		ref = []byte(r.Key)
	}
	return buf
}

// AppendBinary serializes the bucket into buf and returns the extended
// slice in the version-1 layout: the bound header (length-prefixed; ^0
// marks the infinite bound), then a record count and length-prefixed
// key/value pairs.
func (b *Bucket) AppendBinary(buf []byte) []byte {
	var n [4]byte
	if b.bound == nil {
		binary.LittleEndian.PutUint32(n[:], ^uint32(0))
		buf = append(buf, n[:]...)
	} else {
		binary.LittleEndian.PutUint32(n[:], uint32(len(b.bound)))
		buf = append(buf, n[:]...)
		buf = append(buf, b.bound...)
	}
	binary.LittleEndian.PutUint32(n[:], uint32(len(b.recs)))
	buf = append(buf, n[:]...)
	for _, r := range b.recs {
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.Key)))
		buf = append(buf, n[:]...)
		buf = append(buf, r.Key...)
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.Value)))
		buf = append(buf, n[:]...)
		buf = append(buf, r.Value...)
	}
	return buf
}

// DecodeBinary reconstructs a bucket serialized by AppendFormat (either
// version, dispatched on the leading magic) and returns the number of
// bytes consumed. A version this build does not know surfaces as
// *format.UnknownVersionError.
func DecodeBinary(buf []byte) (*Bucket, int, error) {
	if len(buf) >= 4 && binary.LittleEndian.Uint32(buf) == v2Magic {
		return decodeV2(buf)
	}
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated bound header")
	}
	b := &Bucket{decodedFrom: format.V1}
	off := 4
	if bl := binary.LittleEndian.Uint32(buf); bl != ^uint32(0) {
		if int(bl) > len(buf)-off {
			return nil, 0, fmt.Errorf("bucket: decode: truncated bound of %d bytes", bl)
		}
		b.bound = append([]byte(nil), buf[off:off+int(bl)]...)
		off += int(bl)
	}
	if len(buf) < off+4 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated count")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	b.recs = make([]Record, 0, n)
	prev := ""
	for i := 0; i < n; i++ {
		if len(buf) < off+4 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated key length at record %d", i)
		}
		kl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+kl+4 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated key at record %d", i)
		}
		key := string(buf[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+vl {
			return nil, 0, fmt.Errorf("bucket: decode: truncated value at record %d", i)
		}
		var val []byte
		if vl > 0 {
			val = append([]byte(nil), buf[off:off+vl]...)
		}
		off += vl
		if i > 0 && key <= prev {
			return nil, 0, fmt.Errorf("bucket: decode: keys out of order (%q after %q)", key, prev)
		}
		prev = key
		b.recs = append(b.recs, Record{Key: key, Value: val})
	}
	return b, off, nil
}

// decodeV2 reconstructs a version-2 bucket page.
func decodeV2(buf []byte) (*Bucket, int, error) {
	if len(buf) < 5 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated v2 header")
	}
	if v := buf[4]; v != byte(format.V2) {
		return nil, 0, &format.UnknownVersionError{Surface: "bucket page", Version: uint32(v)}
	}
	b := &Bucket{decodedFrom: format.V2}
	off := 5
	bc, n := format.Uvarint(buf[off:])
	if n == 0 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated bound length")
	}
	off += n
	if bc > 0 {
		bl := int(bc - 1)
		if bl > len(buf)-off {
			return nil, 0, fmt.Errorf("bucket: decode: truncated bound of %d bytes", bl)
		}
		b.bound = append([]byte(nil), buf[off:off+bl]...)
		off += bl
	}
	cnt, n := format.Uvarint(buf[off:])
	if n == 0 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated count")
	}
	off += n
	// Each record costs at least 3 bytes (three uvarints); reject counts
	// the remaining bytes cannot possibly hold before allocating.
	if cnt > uint64(len(buf)-off)/3+1 {
		return nil, 0, fmt.Errorf("bucket: decode: record count %d exceeds page", cnt)
	}
	b.recs = make([]Record, 0, cnt)
	// Arena decoding: every reconstructed key is appended to one byte
	// buffer (the running tail doubles as the prefix reference) and every
	// value to another, then the records sub-slice them — two allocations
	// for the whole page instead of two per record, which is what lets a
	// v2 page holding more records than its v1 twin still decode in
	// comparable time. Value sub-slices are capacity-capped so a caller
	// appending to one cannot clobber its neighbour.
	// starts is one backing array for both offset tables: keys first,
	// values second.
	starts := make([]int, 2*(cnt+1))
	var (
		// Suffix and value bytes both come out of the page, so the page
		// length bounds the value arena; keys re-expand their shared
		// prefixes, so their arena starts at the page length (typical
		// expansion is well under the suffix+value bytes it displaces)
		// and grows only for extreme sharing.
		keyArena  = make([]byte, 0, len(buf)-off)
		valArena  = make([]byte, 0, len(buf)-off)
		keyStarts = starts[0:0:cnt+1]
		valStarts = starts[cnt+1 : cnt+1 : 2*(cnt+1)]
		ref       = b.bound
	)
	for i := 0; i < int(cnt); i++ {
		cp64, n := format.Uvarint(buf[off:])
		if n == 0 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated prefix length at record %d", i)
		}
		off += n
		if cp64 > uint64(len(ref)) {
			return nil, 0, fmt.Errorf("bucket: decode: shared prefix %d exceeds reference key of %d bytes at record %d", cp64, len(ref), i)
		}
		sl64, n := format.Uvarint(buf[off:])
		if n == 0 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated suffix length at record %d", i)
		}
		off += n
		sl := int(sl64)
		if sl > len(buf)-off {
			return nil, 0, fmt.Errorf("bucket: decode: truncated key suffix at record %d", i)
		}
		keyStarts = append(keyStarts, len(keyArena))
		keyArena = append(keyArena, ref[:cp64]...)
		keyArena = append(keyArena, buf[off:off+sl]...)
		key := keyArena[keyStarts[i]:]
		off += sl
		vl64, n := format.Uvarint(buf[off:])
		if n == 0 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated value length at record %d", i)
		}
		off += n
		vl := int(vl64)
		if vl > len(buf)-off {
			return nil, 0, fmt.Errorf("bucket: decode: truncated value at record %d", i)
		}
		valStarts = append(valStarts, len(valArena))
		valArena = append(valArena, buf[off:off+vl]...)
		off += vl
		if i > 0 {
			// key[:cp64] was copied out of prev, so ordering reduces to
			// the tails beyond the shared prefix.
			prev := keyArena[keyStarts[i-1]:keyStarts[i]]
			if bytes.Compare(key[cp64:], prev[cp64:]) <= 0 {
				return nil, 0, fmt.Errorf("bucket: decode: keys out of order (%q after %q)", key, prev)
			}
		}
		ref = key
	}
	keyStarts = append(keyStarts, len(keyArena))
	valStarts = append(valStarts, len(valArena))
	ks := string(keyArena)
	for i := 0; i < int(cnt); i++ {
		var val []byte
		if a, z := valStarts[i], valStarts[i+1]; z > a {
			val = valArena[a:z:z]
		}
		b.recs = append(b.recs, Record{Key: ks[keyStarts[i]:keyStarts[i+1]], Value: val})
	}
	return b, off, nil
}
