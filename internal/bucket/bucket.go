// Package bucket implements the fixed-capacity record containers of trie
// hashing. Buckets are the unit of transfer between the file and main
// memory; each holds up to b records sorted by primary key, so the split
// algorithms can address "the sequence B of b+1 keys to split" directly and
// in-bucket search is binary.
package bucket

import (
	"encoding/binary"
	"fmt"
)

// Record is one stored record: a primary key and an opaque value. Only the
// key participates in address computation.
type Record struct {
	Key   string
	Value []byte
}

// Bucket is a key-sorted sequence of records. Capacity is enforced by the
// file layer, not here: splitting needs the transient b+1-th record.
//
// Every bucket also carries its logical-path bound in its header — the
// known digits of the upper boundary of its key range (nil = the infinite
// bound). The paper's conclusion describes exactly this ("logical paths,
// assumed stored on the disk, for instance in the headers of the
// buckets") as the basis of trie reconstruction after a crash.
type Bucket struct {
	bound []byte // upper bound of the key range; nil = infinite
	recs  []Record
}

// Bound returns the bucket's logical-path bound (nil = infinite). The
// returned slice is read-only; it is never overwritten in place by a
// later SetBound, so callers may hold it across bound updates.
func (b *Bucket) Bound() []byte { return b.bound }

// SetBound records the bucket's logical-path bound. The slice is copied
// into fresh storage: reusing the old backing array would mutate slices
// previously returned by Bound under their holders, and keeping a
// reference to the caller's array would let later caller writes change
// the bucket — bounds alias in neither direction.
func (b *Bucket) SetBound(bound []byte) {
	if bound == nil {
		b.bound = nil
		return
	}
	b.bound = append(make([]byte, 0, len(bound)), bound...)
}

// New returns an empty bucket with room pre-allocated for capacity records.
func New(capacity int) *Bucket {
	return &Bucket{recs: make([]Record, 0, capacity+1)}
}

// Len returns the number of records.
func (b *Bucket) Len() int { return len(b.recs) }

// At returns record i in key order.
func (b *Bucket) At(i int) Record { return b.recs[i] }

// Keys returns the keys in ascending order. The slice is freshly allocated.
func (b *Bucket) Keys() []string {
	out := make([]string, len(b.recs))
	for i, r := range b.recs {
		out[i] = r.Key
	}
	return out
}

// search returns the insertion index of key and whether it is present.
// The binary search is hand-rolled rather than sort.Search so the Get hot
// path stays free of func values and allocates nothing.
func (b *Bucket) search(key string) (int, bool) {
	lo, hi := 0, len(b.recs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if b.recs[mid].Key < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(b.recs) && b.recs[lo].Key == key
}

// Get returns the value stored under key.
func (b *Bucket) Get(key string) ([]byte, bool) {
	if i, ok := b.search(key); ok {
		return b.recs[i].Value, true
	}
	return nil, false
}

// Put inserts or replaces the record for key and reports whether the key
// was already present.
func (b *Bucket) Put(key string, value []byte) bool {
	i, ok := b.search(key)
	if ok {
		b.recs[i].Value = value
		return true
	}
	b.recs = append(b.recs, Record{})
	copy(b.recs[i+1:], b.recs[i:])
	b.recs[i] = Record{Key: key, Value: value}
	return false
}

// Delete removes the record for key, reporting whether it existed.
func (b *Bucket) Delete(key string) bool {
	i, ok := b.search(key)
	if !ok {
		return false
	}
	copy(b.recs[i:], b.recs[i+1:])
	b.recs[len(b.recs)-1] = Record{}
	b.recs = b.recs[:len(b.recs)-1]
	return true
}

// MinKey and MaxKey return the smallest and largest keys; both panic on an
// empty bucket.
func (b *Bucket) MinKey() string { return b.recs[0].Key }

// MaxKey returns the largest key.
func (b *Bucket) MaxKey() string { return b.recs[len(b.recs)-1].Key }

// Ascend calls fn for each record with key in [from, to] in ascending
// order until fn returns false. An empty `to` means no upper limit.
func (b *Bucket) Ascend(from, to string, fn func(Record) bool) bool {
	i, _ := b.search(from)
	for ; i < len(b.recs); i++ {
		if to != "" && b.recs[i].Key > to {
			return true
		}
		if !fn(b.recs[i]) {
			return false
		}
	}
	return true
}

// SplitOff removes every record whose key is strictly greater than the
// keep predicate allows and returns them, preserving order. keep reports
// whether a key stays in this bucket.
func (b *Bucket) SplitOff(keep func(key string) bool) []Record {
	stay := b.recs[:0]
	var moved []Record
	for _, r := range b.recs {
		if keep(r.Key) {
			stay = append(stay, r)
		} else {
			moved = append(moved, r)
		}
	}
	// Zero the tail so moved records do not linger in the backing array.
	for i := len(stay); i < len(b.recs); i++ {
		b.recs[i] = Record{}
	}
	b.recs = stay
	return moved
}

// Absorb inserts records (which must be sorted and disjoint from the
// bucket's range) into the bucket.
func (b *Bucket) Absorb(recs []Record) {
	for _, r := range recs {
		b.Put(r.Key, r.Value)
	}
}

// Clone returns a deep copy of the bucket (values are shared: records are
// treated as immutable once stored).
func (b *Bucket) Clone() *Bucket {
	c := &Bucket{recs: append([]Record(nil), b.recs...)}
	if b.bound != nil {
		c.bound = append([]byte(nil), b.bound...)
	}
	return c
}

// Bytes returns the serialized size of the bucket under AppendBinary.
func (b *Bucket) Bytes() int {
	n := 8 + len(b.bound)
	for _, r := range b.recs {
		n += 8 + len(r.Key) + len(r.Value)
	}
	return n
}

// AppendBinary serializes the bucket into buf and returns the extended
// slice: the bound header (length-prefixed; ^0 marks the infinite bound),
// then a record count and length-prefixed key/value pairs.
func (b *Bucket) AppendBinary(buf []byte) []byte {
	var n [4]byte
	if b.bound == nil {
		binary.LittleEndian.PutUint32(n[:], ^uint32(0))
		buf = append(buf, n[:]...)
	} else {
		binary.LittleEndian.PutUint32(n[:], uint32(len(b.bound)))
		buf = append(buf, n[:]...)
		buf = append(buf, b.bound...)
	}
	binary.LittleEndian.PutUint32(n[:], uint32(len(b.recs)))
	buf = append(buf, n[:]...)
	for _, r := range b.recs {
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.Key)))
		buf = append(buf, n[:]...)
		buf = append(buf, r.Key...)
		binary.LittleEndian.PutUint32(n[:], uint32(len(r.Value)))
		buf = append(buf, n[:]...)
		buf = append(buf, r.Value...)
	}
	return buf
}

// DecodeBinary reconstructs a bucket serialized by AppendBinary and
// returns the number of bytes consumed.
func DecodeBinary(buf []byte) (*Bucket, int, error) {
	if len(buf) < 4 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated bound header")
	}
	b := &Bucket{}
	off := 4
	if bl := binary.LittleEndian.Uint32(buf); bl != ^uint32(0) {
		if int(bl) > len(buf)-off {
			return nil, 0, fmt.Errorf("bucket: decode: truncated bound of %d bytes", bl)
		}
		b.bound = append([]byte(nil), buf[off:off+int(bl)]...)
		off += int(bl)
	}
	if len(buf) < off+4 {
		return nil, 0, fmt.Errorf("bucket: decode: truncated count")
	}
	n := int(binary.LittleEndian.Uint32(buf[off:]))
	off += 4
	b.recs = make([]Record, 0, n)
	prev := ""
	for i := 0; i < n; i++ {
		if len(buf) < off+4 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated key length at record %d", i)
		}
		kl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+kl+4 {
			return nil, 0, fmt.Errorf("bucket: decode: truncated key at record %d", i)
		}
		key := string(buf[off : off+kl])
		off += kl
		vl := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if len(buf) < off+vl {
			return nil, 0, fmt.Errorf("bucket: decode: truncated value at record %d", i)
		}
		var val []byte
		if vl > 0 {
			val = append([]byte(nil), buf[off:off+vl]...)
		}
		off += vl
		if i > 0 && key <= prev {
			return nil, 0, fmt.Errorf("bucket: decode: keys out of order (%q after %q)", key, prev)
		}
		prev = key
		b.recs = append(b.recs, Record{Key: key, Value: val})
	}
	return b, off, nil
}
