package bucket

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	b := New(4)
	if _, ok := b.Get("x"); ok {
		t.Fatal("empty bucket claims a key")
	}
	if b.Put("m", []byte("1")) {
		t.Fatal("first Put reported replacement")
	}
	if !b.Put("m", []byte("2")) {
		t.Fatal("second Put did not report replacement")
	}
	b.Put("a", nil)
	b.Put("z", []byte("3"))
	if b.Len() != 3 {
		t.Fatalf("len %d", b.Len())
	}
	if v, ok := b.Get("m"); !ok || string(v) != "2" {
		t.Fatalf("Get(m) = %q %v", v, ok)
	}
	if !b.Delete("m") || b.Delete("m") {
		t.Fatal("Delete misbehaved")
	}
	if got := b.Keys(); !reflect.DeepEqual(got, []string{"a", "z"}) {
		t.Fatalf("keys %v", got)
	}
	if b.MinKey() != "a" || b.MaxKey() != "z" {
		t.Fatalf("min/max %q %q", b.MinKey(), b.MaxKey())
	}
}

func TestKeysSorted(t *testing.T) {
	f := func(in []string) bool {
		b := New(8)
		for _, k := range in {
			if k == "" {
				continue
			}
			b.Put(k, nil)
		}
		return sort.StringsAreSorted(b.Keys())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAscend(t *testing.T) {
	b := New(8)
	for _, k := range []string{"be", "by", "had", "he", "his"} {
		b.Put(k, []byte(k))
	}
	var got []string
	b.Ascend("by", "he", func(r Record) bool {
		got = append(got, r.Key)
		return true
	})
	if !reflect.DeepEqual(got, []string{"by", "had", "he"}) {
		t.Fatalf("ascend: %v", got)
	}
	// Unbounded top.
	got = nil
	b.Ascend("he", "", func(r Record) bool { got = append(got, r.Key); return true })
	if !reflect.DeepEqual(got, []string{"he", "his"}) {
		t.Fatalf("unbounded ascend: %v", got)
	}
	// Early abort.
	count := 0
	b.Ascend("", "", func(Record) bool { count++; return count < 2 })
	if count != 2 {
		t.Fatalf("abort after %d", count)
	}
}

func TestSplitOff(t *testing.T) {
	b := New(4)
	for _, k := range []string{"aa", "ab", "ba", "bb", "ca"} {
		b.Put(k, []byte(k))
	}
	moved := b.SplitOff(func(k string) bool { return k <= "ba" })
	if got := b.Keys(); !reflect.DeepEqual(got, []string{"aa", "ab", "ba"}) {
		t.Fatalf("stay: %v", got)
	}
	if len(moved) != 2 || moved[0].Key != "bb" || moved[1].Key != "ca" {
		t.Fatalf("moved: %v", moved)
	}
	// Absorb into a fresh bucket preserves order and values.
	nb := New(4)
	nb.Absorb(moved)
	if v, ok := nb.Get("ca"); !ok || string(v) != "ca" {
		t.Fatalf("absorbed value %q %v", v, ok)
	}
}

func TestCloneIndependence(t *testing.T) {
	b := New(4)
	b.Put("k", []byte("v"))
	c := b.Clone()
	c.Put("k2", nil)
	c.Delete("k")
	if b.Len() != 1 {
		t.Fatal("clone mutation leaked")
	}
}

func TestEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		b := New(8)
		for i := 0; i < rng.Intn(10); i++ {
			k := make([]byte, 1+rng.Intn(5))
			for j := range k {
				k[j] = byte('a' + rng.Intn(26))
			}
			v := make([]byte, rng.Intn(6))
			rng.Read(v)
			b.Put(string(k), v)
		}
		buf := b.AppendBinary(nil)
		if len(buf) != b.Bytes() {
			t.Fatalf("Bytes() = %d, serialized %d", b.Bytes(), len(buf))
		}
		back, n, err := DecodeBinary(buf)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(buf) {
			t.Fatalf("consumed %d of %d", n, len(buf))
		}
		if !reflect.DeepEqual(back.Keys(), b.Keys()) {
			t.Fatalf("keys %v vs %v", back.Keys(), b.Keys())
		}
		for _, k := range b.Keys() {
			v1, _ := b.Get(k)
			v2, _ := back.Get(k)
			if string(v1) != string(v2) {
				t.Fatalf("value mismatch for %q", k)
			}
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeBinary(nil); err == nil {
		t.Error("nil must fail")
	}
	b := New(2)
	b.Put("ab", []byte("xy"))
	b.Put("cd", nil)
	buf := b.AppendBinary(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeBinary(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
	// Out-of-order keys.
	bad := New(2)
	bad.recs = []Record{{Key: "b"}, {Key: "a"}}
	if _, _, err := DecodeBinary(bad.AppendBinary(nil)); err == nil {
		t.Error("out-of-order keys not detected")
	}
}

func TestBoundRoundTrip(t *testing.T) {
	b := New(4)
	if b.Bound() != nil {
		t.Fatal("fresh bucket must have the infinite bound")
	}
	b.Put("k", []byte("v"))
	b.SetBound([]byte("he"))
	buf := b.AppendBinary(nil)
	if len(buf) != b.Bytes() {
		t.Fatalf("Bytes() = %d, serialized %d", b.Bytes(), len(buf))
	}
	back, _, err := DecodeBinary(buf)
	if err != nil {
		t.Fatal(err)
	}
	if string(back.Bound()) != "he" {
		t.Fatalf("bound lost: %q", back.Bound())
	}
	// Infinite bound survives too.
	b.SetBound(nil)
	back, _, err = DecodeBinary(b.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	if back.Bound() != nil {
		t.Fatalf("infinite bound became %q", back.Bound())
	}
	// Clone copies the bound without aliasing.
	b.SetBound([]byte("xy"))
	c := b.Clone()
	b.SetBound([]byte("zz"))
	if string(c.Bound()) != "xy" {
		t.Fatalf("clone bound aliased: %q", c.Bound())
	}
}

func TestDecodeBoundErrors(t *testing.T) {
	b := New(2)
	b.SetBound([]byte("bound"))
	b.Put("k", nil)
	buf := b.AppendBinary(nil)
	for cut := 1; cut < len(buf); cut++ {
		if _, _, err := DecodeBinary(buf[:cut]); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

// TestSetBoundAliasing audits both aliasing directions of SetBound: the
// caller's slice must not become the bucket's storage (later caller
// writes would silently change the bound), and a slice returned by Bound
// must survive a later SetBound unchanged (holders would otherwise see
// bounds rewritten under them).
func TestSetBoundAliasing(t *testing.T) {
	b := New(4)

	// Caller slice -> bucket: mutating the argument after SetBound must
	// not change the stored bound.
	arg := []byte("abc")
	b.SetBound(arg)
	arg[0] = 'X'
	if string(b.Bound()) != "abc" {
		t.Fatalf("bound aliases the caller's slice: %q", b.Bound())
	}

	// Bucket -> caller: a held Bound() slice must not be overwritten by a
	// later SetBound, including one that reuses the same backing length.
	held := b.Bound()
	b.SetBound([]byte("xyz"))
	if string(held) != "abc" {
		t.Fatalf("held bound rewritten by SetBound: %q", held)
	}

	// nil resets to the infinite bound without touching the held slice.
	b.SetBound(nil)
	if b.Bound() != nil {
		t.Fatalf("SetBound(nil) left %q", b.Bound())
	}
	if string(held) != "abc" {
		t.Fatalf("held bound rewritten by SetBound(nil): %q", held)
	}

	// Empty non-nil bounds stay distinguishable from the infinite bound:
	// the root leaf's logical path is "", which is not "no bound".
	b.SetBound([]byte{})
	if b.Bound() == nil {
		t.Fatal("empty bound collapsed to the infinite bound")
	}
}
