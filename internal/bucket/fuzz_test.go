package bucket

import (
	"bytes"
	"testing"

	"triehash/internal/format"
)

// FuzzBucketDecodeV2 drives the bucket-page decoder with arbitrary
// bytes, seeded with version-2 encodings (the prefix-compressed varint
// layout). The decoder must never panic, must reject impossible record
// counts before allocating, and on success must round-trip canonically:
// re-encoding the decoded bucket at the version it was stored in and
// decoding again yields the same records and byte-identical bytes. Input
// bytes themselves need not re-encode identically — the decoder accepts
// non-minimal uvarints and under-shared prefixes that the encoder never
// emits — which is why the property is canonical-form, not identity.
func FuzzBucketDecodeV2(f *testing.F) {
	empty := New(4)
	f.Add(empty.AppendFormat(nil, format.V2))

	b := New(8)
	b.SetBound([]byte("user:9999"))
	for _, k := range []string{"user:0001", "user:0002", "user:02", "zz"} {
		b.Put(k, []byte("value-"+k))
	}
	b.Put("user:0003", nil) // nil value: the empty/nil distinction must survive
	enc := b.AppendFormat(nil, format.V2)
	f.Add(enc)
	f.Add(enc[:len(enc)-3])
	corrupt := append([]byte(nil), enc...)
	corrupt[len(corrupt)/2] ^= 0xFF
	f.Add(corrupt)

	future := append([]byte(nil), enc...)
	future[4] = 9 // unknown future version: typed error, no panic
	f.Add(future)

	f.Fuzz(func(t *testing.T, data []byte) {
		b, n, err := DecodeBinary(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("DecodeBinary consumed %d of %d bytes", n, len(data))
		}
		v := b.DecodedFormat()
		enc := b.AppendFormat(nil, v)
		if got := b.EncodedLen(v); got != len(enc) {
			t.Fatalf("EncodedLen(%v) = %d, encoding is %d bytes", v, got, len(enc))
		}
		back, n2, err := DecodeBinary(enc)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		if back.Len() != b.Len() || !bytes.Equal(back.Bound(), b.Bound()) {
			t.Fatalf("round-trip changed shape: %d recs bound %q, want %d recs bound %q",
				back.Len(), back.Bound(), b.Len(), b.Bound())
		}
		for i := 0; i < b.Len(); i++ {
			r, s := b.At(i), back.At(i)
			if r.Key != s.Key || !bytes.Equal(r.Value, s.Value) {
				t.Fatalf("record %d changed: %q/%q, want %q/%q", i, s.Key, s.Value, r.Key, r.Value)
			}
		}
		if enc2 := back.AppendFormat(nil, v); !bytes.Equal(enc, enc2) {
			t.Fatalf("encoding not canonical: enc(dec(enc)) differs from enc")
		}
	})
}
