package analysis

import (
	"go/ast"
)

// Determinism forbids hidden entropy, wall-clock time and environment
// reads in the packages whose behavior the paper's experiments depend on.
// Every figure in EXPERIMENTS.md is reproducible only because the file
// layers (core, trie, bucket, mlth) are pure functions of their inputs and
// the workload generators draw randomness exclusively from caller-supplied
// seeds. A stray time.Now, a top-level math/rand call (process-global
// state, randomly seeded) or an os.Getenv would make a run depend on the
// machine instead of the seed. The seeded constructors — rand.New,
// rand.NewSource, rand.NewZipf — remain allowed: they are how the seed
// gets in.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, top-level math/rand and os.Getenv in the deterministic packages",
	Run:  runDeterminism,
}

// deterministicPkgs are the package names (matching both the real module
// layout and the golden-test replicas) whose non-test code must stay
// seed-deterministic.
var deterministicPkgs = map[string]bool{
	"core":     true,
	"trie":     true,
	"bucket":   true,
	"mlth":     true,
	"workload": true,
}

// seededRandConstructors are the math/rand entry points that thread an
// explicit seed and are therefore the sanctioned way in.
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	if !deterministicPkgs[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if obj := calleeFromPkg(pass.Info, call, path); obj != nil && !seededRandConstructors[obj.Name()] {
					pass.Reportf(call.Pos(),
						"call to %s.%s in deterministic package %s: top-level math/rand uses process-global state; draw from a seeded *rand.Rand instead",
						path, obj.Name(), pass.Pkg.Name())
				}
			}
			if obj := calleeFromPkg(pass.Info, call, "time"); obj != nil && obj.Name() == "Now" {
				pass.Reportf(call.Pos(),
					"call to time.Now in deterministic package %s: wall-clock time makes runs irreproducible; take timestamps in the caller",
					pass.Pkg.Name())
			}
			if obj := calleeFromPkg(pass.Info, call, "os"); obj != nil && (obj.Name() == "Getenv" || obj.Name() == "LookupEnv" || obj.Name() == "Environ") {
				pass.Reportf(call.Pos(),
					"call to os.%s in deterministic package %s: behavior must depend only on explicit configuration, not the environment",
					obj.Name(), pass.Pkg.Name())
			}
			return true
		})
	}
}
