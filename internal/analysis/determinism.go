package analysis

import (
	"go/ast"
)

// Determinism forbids hidden entropy, wall-clock time and environment
// reads in the packages whose behavior the paper's experiments depend on.
// Every figure in EXPERIMENTS.md is reproducible only because the file
// layers are pure functions of their inputs and the workload generators
// draw randomness exclusively from caller-supplied seeds. A stray
// time.Now, a top-level math/rand call (process-global state, randomly
// seeded) or an os.Getenv would make a run depend on the machine instead
// of the seed. The seeded constructors — rand.New, rand.NewSource,
// rand.NewZipf — remain allowed: they are how the seed gets in.
//
// Every package of the module is checked except an explicit exempt list
// (the old allow-list silently stopped covering packages as the module
// grew: internal/concurrent and internal/analysis were never checked).
// A new package is deterministic by default; exempting it is a reviewed
// edit here.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, top-level math/rand and os.Getenv outside the exempt packages",
	Run:  runDeterminism,
}

// determinismExempt names the packages allowed to read clocks, entropy
// and the environment, each for a stated reason. Matching is by package
// name, which also covers the golden-test replicas.
var determinismExempt = map[string]bool{
	// Command harnesses: flag parsing, deadlines and live dashboards are
	// inherently wall-clock and environment driven.
	"main": true,
	// The benchmark harness measures elapsed time; that is its job.
	"bench": true,
	// The observability layer is the sanctioned clock: spans, histograms
	// and the flight recorder own every time.Now so the measured layers
	// don't have to.
	"obs": true,
	// The store tier's Instrumented wrapper timestamps I/O for the obs
	// hooks; the storage behavior itself remains input-deterministic.
	"store": true,
	// The write-ahead log's group committer timestamps its own fsyncs for
	// the obs latency stage (the same pattern as store's Instrumented);
	// the log's contents and replay are pure functions of the operation
	// stream.
	"wal": true,
	// The public API package (root "triehash") stamps span start times at
	// the RecordOp boundary — timestamps are taken in the caller, which
	// is exactly where the rule pushes them.
	"triehash": true,
}

// seededRandConstructors are the math/rand entry points that thread an
// explicit seed and are therefore the sanctioned way in.
var seededRandConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(pass *Pass) {
	if determinismExempt[pass.Pkg.Name()] {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			for _, path := range []string{"math/rand", "math/rand/v2"} {
				if obj := calleeFromPkg(pass.Info, call, path); obj != nil && !seededRandConstructors[obj.Name()] {
					pass.Reportf(call.Pos(),
						"call to %s.%s in deterministic package %s: top-level math/rand uses process-global state; draw from a seeded *rand.Rand instead",
						path, obj.Name(), pass.Pkg.Name())
				}
			}
			if obj := calleeFromPkg(pass.Info, call, "time"); obj != nil && obj.Name() == "Now" {
				pass.Reportf(call.Pos(),
					"call to time.Now in deterministic package %s: wall-clock time makes runs irreproducible; take timestamps in the caller",
					pass.Pkg.Name())
			}
			if obj := calleeFromPkg(pass.Info, call, "os"); obj != nil && (obj.Name() == "Getenv" || obj.Name() == "LookupEnv" || obj.Name() == "Environ") {
				pass.Reportf(call.Pos(),
					"call to os.%s in deterministic package %s: behavior must depend only on explicit configuration, not the environment",
					obj.Name(), pass.Pkg.Name())
			}
			return true
		})
	}
}
