package analysis

import (
	"go/types"
)

// PublishSafety machine-checks the PR 7 flip-publication protocol. The
// concurrent engine mutates its authoritative structures — the trie
// mirror, the arena cells, the published buckets in the store — only
// inside a publication window: the trie flip lock (trieMu) held
// exclusively, or the world lock held exclusively (scrub/recovery, every
// other goroutine quiesced). The one sanctioned exception is the prepare
// phase of a split: the twin bucket is Alloc-fresh and unreachable from
// the published trie, so it may be written under just the stripe+latch.
//
// The analyzer scopes itself to engine types (named structs carrying a
// trieMu field) and their method bodies, closures included, and checks
// three things interprocedurally, using the lockflow engine's held-set
// summaries:
//
//  1. a call into a trie/arena/mirror mutator (a method of a Trie, Arena
//     or Mirror type that writes shared state, directly or transitively)
//     must be covered — flip-exclusive or world-exclusive held at the
//     call site, or on every path into the calling function (the
//     must-held entry set, which is how helpers that rely on their
//     caller's trieMu are proven safe);
//  2. a store Write/Free of a published bucket needs its bucket latch,
//     the flip lock, or the world lock — unless the address provably
//     flows from a st.Alloc() in the same body (the unreachable twin);
//  3. the same store-write rule applies transitively to callees that
//     perform unlatched store writes.
var PublishSafety = &Analyzer{
	Name:      "publishsafety",
	Doc:       "flip-protocol publication safety: authoritative-structure writes stay inside the trieMu window",
	RunModule: runPublishSafety,
}

// engineScoped reports whether n is a method (or a closure lexically
// inside a method) of a named struct type carrying a trieMu field — the
// concurrent engine surface the publication protocol governs.
func engineScoped(n *funcNode) bool {
	for p := n; p != nil; p = p.parent {
		recv := p.receiverNamed()
		if recv == nil {
			continue
		}
		st, ok := recv.Underlying().(*types.Struct)
		if !ok {
			return false
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == "trieMu" {
				return true
			}
		}
		return false
	}
	return false
}

func runPublishSafety(mp *ModulePass) {
	if len(mp.Pkgs) == 0 {
		return
	}
	eng := engineFor(mp.Pkgs)
	for _, n := range eng.graph.nodes {
		if n.sum == nil || isPrimitiveNode(n) || !engineScoped(n) {
			continue
		}
		mustFlip := n.sum.entryMust&(mFlipExcl|mWorldExcl) != 0
		mustWrite := n.sum.entryMust&(mLatch|mFlipExcl|mWorldExcl) != 0

		for _, ev := range n.sum.calls {
			if ev.litDef {
				continue // the closure's own events are checked on its node
			}
			if !coversTrieMut(ev.held) && !mustFlip {
				for _, t := range ev.targets {
					if t.sum != nil && t.sum.trieMutExposed {
						mp.Reportf(ev.pos, "authoritative trie/arena mutation: %s (write in %s) reached without holding the flip lock exclusively: publication writes must run under trieMu (or world-exclusive)", nodeLabel(t), t.sum.mutWitness)
					}
				}
			}
			if !coversStoreWrite(ev.held) && !mustWrite {
				for _, t := range ev.targets {
					if t.sum != nil && t.sum.storeWriteExposed {
						mp.Reportf(ev.pos, "unlatched store write: %s writes published buckets but is reached without bucket latch or flip lock", nodeLabel(t))
					}
				}
			}
		}

		for _, io := range n.sum.ios {
			if io.method != "Write" && io.method != "Free" {
				continue
			}
			if io.fresh || coversStoreWrite(io.held) || mustWrite {
				continue
			}
			mp.Reportf(io.pos, "store write %s.%s to a published bucket without bucket latch or flip lock: only Alloc-fresh twin buckets are written unlatched during split preparation", io.recv, io.method)
		}
	}
}
