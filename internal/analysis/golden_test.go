package analysis

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
)

// TestAnalyzersGolden runs every analyzer against its testdata packages
// and checks the findings against `// want "regexp"` expectations: every
// expectation must be matched by a diagnostic on its line, and every
// diagnostic must have an expectation. Functions without want comments
// are the negative cases — the analyzer staying silent on them is part of
// what the test asserts.
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			base := filepath.Join("testdata", a.Name)
			entries, err := os.ReadDir(base)
			if err != nil {
				t.Fatalf("no testdata for analyzer %s: %v", a.Name, err)
			}
			ran := false
			for _, e := range entries {
				if e.IsDir() {
					runGolden(t, a, filepath.Join(base, e.Name()))
					ran = true
				}
			}
			if !ran {
				runGolden(t, a, base)
			}
		})
	}
}

// wantExp is one expectation: a regexp anchored to a file:line.
type wantExp struct {
	pos     string
	rx      *regexp.Regexp
	matched bool
}

// wantRe accepts a backquoted or double-quoted pattern after "want".
var wantRe = regexp.MustCompile("// want (`[^`]*`|\"[^\"]*\")\\s*$")

func runGolden(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	fset := token.NewFileSet()
	pkg, err := LoadDir(fset, dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}

	var wants []*wantExp
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat, err := strconv.Unquote(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", fset.Position(c.Pos()), m[1], err)
				}
				rx, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", fset.Position(c.Pos()), pat, err)
				}
				p := fset.Position(c.Pos())
				wants = append(wants, &wantExp{pos: lineKey(p.Filename, p.Line), rx: rx})
			}
		}
	}

	diags := Run([]*Analyzer{a}, []*Package{pkg})
	for _, d := range diags {
		key := lineKey(d.Pos.Filename, d.Pos.Line)
		found := false
		for _, w := range wants {
			if !w.matched && w.pos == key && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: expected diagnostic matching %q, got none", w.pos, w.rx)
		}
	}
}

func lineKey(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
