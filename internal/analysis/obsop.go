package analysis

import (
	"go/ast"
)

// ObsOp enforces the PR-1 observability discipline on the public API:
// every method that dispatches a data operation to the engine (a call
// through an `eng` field to Get, Put, Delete, Range, GetBatch or PutBatch)
// must also route through the obs timing hook by calling RecordOp. The
// whole point of the observability layer is that attaching an Observer
// covers every operation; a new public method that forwards to the engine
// but skips RecordOp would silently fall out of the latency histograms
// and make "p99 regressed" undiagnosable for exactly the calls that
// regressed.
var ObsOp = &Analyzer{
	Name: "obsop",
	Doc:  "public API methods dispatching engine operations must call the obs timing hook (RecordOp)",
	Run:  runObsOp,
}

// engineOps are the engine methods that correspond to obs.Op samples.
var engineOps = map[string]bool{
	"Get":      true,
	"Put":      true,
	"Delete":   true,
	"Range":    true,
	"GetBatch": true,
	"PutBatch": true,
}

func runObsOp(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var opCall *ast.CallExpr
			var opName string
			recorded := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, recv, name, ok := methodCall(pass.Info, call)
				if !ok {
					return true
				}
				if name == "RecordOp" {
					recorded = true
					return true
				}
				if !engineOps[name] {
					return true
				}
				// Only calls dispatched through an `eng` field count: that
				// is the public File's engine indirection. (f.single /
				// f.multi never serve operations directly.)
				if rsel, ok := recv.(*ast.SelectorExpr); ok && rsel.Sel.Name == "eng" {
					if opCall == nil {
						opCall, opName = call, name
					}
				}
				return true
			})
			if opCall != nil && !recorded {
				fname := fn.Name.Name
				pass.Reportf(opCall.Pos(),
					"%s dispatches eng.%s without the obs timing hook: time the call and report it with Observer.RecordOp (or route through an instrumented public method)",
					fname, opName)
			}
		}
	}
}
