package analysis

import (
	"go/ast"
)

// ObsOp enforces the observability discipline on the public API.
//
// Rule 1 (PR 1): every method that dispatches a data operation to the
// engine (a call through an `eng` field to Get, Put, Delete, Range, the
// batches, or their *Span forms) must also route through the obs timing
// hook — RecordOp, or FinishSpan, which records the whole-op sample when
// it closes the span. The whole point of the observability layer is that
// attaching an Observer covers every operation; a new public method that
// forwards to the engine but skips the hook would silently fall out of
// the latency histograms and make "p99 regressed" undiagnosable for
// exactly the calls that regressed.
//
// Rule 2 (PR 6, span tracing): a function that starts a span must contain
// a deferred FinishSpan. Spans are pooled and their stage totals are only
// published at FinishSpan; an undeferred finish misses early returns, and
// a missing finish leaks the span and loses the op's samples. The defer
// may be conditional in the source the way ours never is — the analyzer
// requires the syntactic `defer ...FinishSpan(...)` form somewhere in the
// function body.
var ObsOp = &Analyzer{
	Name: "obsop",
	Doc:  "public API methods dispatching engine operations must call the obs timing hook (RecordOp/FinishSpan); StartSpan requires a deferred FinishSpan",
	Run:  runObsOp,
}

// engineOps are the engine methods that correspond to obs.Op samples,
// plain and span-carrying forms alike.
var engineOps = map[string]bool{
	"Get":          true,
	"Put":          true,
	"Delete":       true,
	"Range":        true,
	"GetBatch":     true,
	"PutBatch":     true,
	"GetSpan":      true,
	"PutSpan":      true,
	"DeleteSpan":   true,
	"RangeSpan":    true,
	"GetBatchSpan": true,
	"PutBatchSpan": true,
}

func runObsOp(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			var opCall *ast.CallExpr
			var opName string
			var startCall *ast.CallExpr
			recorded := false
			deferredFinish := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if ds, ok := n.(*ast.DeferStmt); ok {
					if _, _, name, ok := methodCall(pass.Info, ds.Call); ok && name == "FinishSpan" {
						deferredFinish = true
					}
					return true
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				_, recv, name, ok := methodCall(pass.Info, call)
				if !ok {
					return true
				}
				switch name {
				case "RecordOp", "FinishSpan":
					recorded = true
					return true
				case "StartSpan":
					if startCall == nil {
						startCall = call
					}
					return true
				}
				if !engineOps[name] {
					return true
				}
				// Only calls dispatched through an `eng` field count: that
				// is the public File's engine indirection. (f.single /
				// f.multi never serve operations directly.)
				if rsel, ok := recv.(*ast.SelectorExpr); ok && rsel.Sel.Name == "eng" {
					if opCall == nil {
						opCall, opName = call, name
					}
				}
				return true
			})
			fname := fn.Name.Name
			if opCall != nil && !recorded {
				pass.Reportf(opCall.Pos(),
					"%s dispatches eng.%s without the obs timing hook: time the call and report it with Observer.RecordOp (or route through an instrumented public method)",
					fname, opName)
			}
			if startCall != nil && !deferredFinish {
				pass.Reportf(startCall.Pos(),
					"%s starts a span without a deferred FinishSpan: every return path must end the span (defer o.FinishSpan(sp))",
					fname)
			}
		}
	}
}
