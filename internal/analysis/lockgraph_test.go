package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadSelf loads this repository's module once for the graph tests.
func loadSelf(t *testing.T) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestInferredHierarchyMatchesTable is the acceptance gate for the lock
// graph: the hierarchy inferred from this repository's whole-program
// acquisition graph must byte-match the checked-in
// internal/analysis/lockhierarchy.txt. A refactor that reorders two lock
// tiers — or a new call site that inverts an edge — fails here before it
// fails in production.
func TestInferredHierarchyMatchesTable(t *testing.T) {
	res := BuildLockGraph(loadSelf(t))
	got := res.HierarchyText()
	if got != LockHierarchyTable {
		t.Errorf("inferred lock hierarchy differs from lockhierarchy.txt:\n--- inferred ---\n%s--- checked in ---\n%s", got, LockHierarchyTable)
	}

	// The engine tiers must actually be observed against each other: an
	// inference that only reproduces the canonical tie-break order (no
	// edges seen at all) would make the byte-match vacuous.
	edges := make(map[string]bool)
	for _, e := range res.Edges {
		edges[e.From+">"+e.To] = true
	}
	for _, want := range []string{
		"file>world", "world>stripe", "stripe>latch", "latch>flip", "flip>shard",
	} {
		if !edges[want] {
			t.Errorf("acquisition graph is missing the %s edge: the engine's hierarchy is no longer observed end to end", want)
		}
	}
}

// TestHierarchyTableMatchesDesignDoc keeps the DESIGN.md mirror honest:
// the ```lockhierarchy fenced block there must byte-match the
// machine-readable table (which in turn byte-matches the inferred graph,
// by the test above).
func TestHierarchyTableMatchesDesignDoc(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(root, "DESIGN.md"))
	if err != nil {
		t.Fatal(err)
	}
	m := regexp.MustCompile("(?s)```lockhierarchy\n(.*?)```").FindSubmatch(data)
	if m == nil {
		t.Fatal("DESIGN.md has no ```lockhierarchy fenced block")
	}
	if string(m[1]) != LockHierarchyTable {
		t.Errorf("DESIGN.md lockhierarchy block differs from internal/analysis/lockhierarchy.txt:\n--- DESIGN.md ---\n%s--- lockhierarchy.txt ---\n%s", m[1], LockHierarchyTable)
	}
}

// TestLockGraphRenderings sanity-checks the -graph output formats over
// the real module: DOT must be a digraph containing every tier node, and
// the markdown must carry the edge table.
func TestLockGraphRenderings(t *testing.T) {
	res := BuildLockGraph(loadSelf(t))
	dot := res.DOT()
	if !strings.HasPrefix(dot, "digraph lockgraph {") {
		t.Errorf("DOT output does not start a digraph:\n%.120s", dot)
	}
	for _, c := range hierarchyOrder {
		if !strings.Contains(dot, "\""+c.String()+"\"") {
			t.Errorf("DOT output is missing tier node %q", c.String())
		}
	}
	md := res.Markdown()
	if !strings.Contains(md, "| held (A) | acquired (B) |") {
		t.Errorf("markdown output is missing the edge table header:\n%.200s", md)
	}
	if !res.HierarchyMatches() {
		t.Error("HierarchyMatches() = false over the real module")
	}
}
