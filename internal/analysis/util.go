package analysis

import (
	"go/ast"
	"go/types"
)

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer and any
// alias), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(types.Unalias(t)).(*types.Named)
	return n
}

// isStoreType reports whether t is part of the bucket-store surface: a
// named type called Store (the interface), or any named type declared in a
// package named "store" (the concrete engines and the pool wrappers).
// Matching by name keeps the predicate true both for the real
// triehash/internal/store package and for the miniature replicas the
// golden tests use.
func isStoreType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if n.Obj().Name() == "Store" {
		return true
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "store"
}

// isWALType reports whether t is part of the write-ahead log surface:
// wal.Log, a wal.Device (or an implementation), matched like isStoreType
// by type name — Log/Device — or by the defining package's name, which
// also covers the golden-test replicas.
func isWALType(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil {
		return false
	}
	if name := n.Obj().Name(); name == "Log" || name == "Device" {
		return true
	}
	return n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == "wal"
}

// isSyncLocker reports whether t is sync.Mutex or sync.RWMutex.
func isSyncLocker(t types.Type) bool {
	n := namedOf(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// pkgFunc reports whether the call invokes the package-level function
// pkgPath.name, resolving through the type-checker (so aliased imports
// still match).
func pkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeFromPkg returns the object of a call to any package-level function
// of pkgPath, or nil.
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Only package-qualified identifiers: X must name a package.
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if _, ok := info.Uses[id].(*types.PkgName); !ok {
		return nil
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return nil
	}
	return obj
}

// methodCall decomposes call into a method invocation on a value receiver
// expression: it returns the selector, the receiver expression and the
// method name. ok is false for plain function calls and package-qualified
// calls.
func methodCall(info *types.Info, call *ast.CallExpr) (sel *ast.SelectorExpr, recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, nil, "", false
	}
	if s, found := info.Selections[sel]; found && s.Kind() == types.MethodVal {
		return sel, sel.X, sel.Sel.Name, true
	}
	return nil, nil, "", false
}

// rootIdent returns the identifier at the base of a selector/index chain
// (lb in lb.mu, c in c.shards[i].mu), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CallExpr:
			// (*f.bucketsPtr.Load())[g.addr]: descend into the callee so
			// the chain still roots at the receiver.
			e = x.Fun
		default:
			return nil
		}
	}
}

// exprString renders a selector chain compactly for messages and for lock
// identity ("lb.mu", "f.structural"). Non-chain nodes render as "?".
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.ParenExpr:
		return "(" + exprString(x.X) + ")"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	default:
		return "?"
	}
}

// funcReceiver returns the receiver identifier object of decl, or nil.
func funcReceiver(info *types.Info, decl *ast.FuncDecl) types.Object {
	if decl.Recv == nil || len(decl.Recv.List) == 0 || len(decl.Recv.List[0].Names) == 0 {
		return nil
	}
	return info.Defs[decl.Recv.List[0].Names[0]]
}

// returnsError reports whether the call's result type is error or a tuple
// ending in error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	switch r := t.(type) {
	case *types.Tuple:
		if r.Len() == 0 {
			return false
		}
		return isErrorType(r.At(r.Len() - 1).Type())
	default:
		return isErrorType(r)
	}
}

func isErrorType(t types.Type) bool {
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// calleeFunc resolves a plain or package-qualified function call to its
// object. Method calls resolve to nil — those go through methodCall.
func calleeFunc(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, ok := info.Uses[id].(*types.PkgName); ok {
				return info.Uses[fun.Sel]
			}
		}
	}
	return nil
}
