// Package analysis is a small, dependency-free static-analysis framework
// for this repository, in the spirit of golang.org/x/tools/go/analysis but
// built only on the standard library (go/parser, go/ast, go/types,
// go/importer, go/token). It exists because the repo's correctness rests
// on conventions `go vet` cannot see — latch ordering in the batch path,
// atomic-vs-plain field access in the sharded pool, determinism of the
// experiment packages, error discipline around store I/O, and the
// observability routing of the public API — and those conventions need a
// checker that runs on every build, not a comment that rots.
//
// An Analyzer inspects one type-checked package at a time and reports
// Diagnostics. The cmd/thvet driver loads every package of the module and
// runs the whole suite; internal/analysis/golden_test.go runs each
// analyzer against testdata packages with `// want "regexp"` expectations.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Analyzer is one named check. Run inspects the package in pass and
// reports findings through pass.Reportf. Analyzers whose invariant spans
// package boundaries (the interprocedural lock graph, the flip-protocol
// publication safety) set RunModule instead: it executes once over every
// package of the load, so call edges between packages are visible.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run selections.
	Name string
	// Doc is a one-line description of the invariant the analyzer checks.
	Doc string
	// Run executes the check over one package. Nil for module analyzers.
	Run func(pass *Pass)
	// RunModule executes the check once over the whole load. Nil for
	// per-package analyzers.
	RunModule func(pass *ModulePass)
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// ModulePass carries every package of one load through a module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// ObjectOf returns the object an identifier denotes, or nil.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.Info.ObjectOf(id); o != nil {
		return o
	}
	return nil
}

// All returns the full analyzer suite in a stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicField,
		Determinism,
		Durability,
		ErrDiscipline,
		LockGraph,
		ObsOp,
		PublishSafety,
	}
}

// ByName resolves a comma-free analyzer name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run applies each analyzer to each package (module analyzers once to the
// whole load) and returns every finding sorted by position. Findings on a
// line carrying a `//thvet:ok <analyzer> -- <reason>` comment are
// sanctioned: dropped here, for both the driver and the self-lint test.
func Run(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			a.Run(pass)
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		var fset *token.FileSet
		if len(pkgs) > 0 {
			fset = pkgs[0].Fset
		}
		mp := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, diags: &diags}
		a.RunModule(mp)
	}
	diags = dropSanctioned(diags, pkgs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// sanctionRe matches an inline sanction: `//thvet:ok <analyzer>` with an
// optional ` -- reason` tail. The reason is not optional in spirit — code
// review expects one — but the matcher does not enforce prose.
var sanctionRe = regexp.MustCompile(`^//thvet:ok\s+([a-z]+)`)

// dropSanctioned removes findings whose source line sanctions their
// analyzer by comment.
func dropSanctioned(diags []Diagnostic, pkgs []*Package) []Diagnostic {
	if len(diags) == 0 {
		return diags
	}
	ok := make(map[string]bool) // "file:line:analyzer"
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := sanctionRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					p := pkg.Fset.Position(c.Pos())
					ok[fmt.Sprintf("%s:%d:%s", p.Filename, p.Line, m[1])] = true
				}
			}
		}
	}
	if len(ok) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if !ok[fmt.Sprintf("%s:%d:%s", d.Pos.Filename, d.Pos.Line, d.Analyzer)] {
			kept = append(kept, d)
		}
	}
	return kept
}
