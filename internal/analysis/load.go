package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("triehash/internal/store").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression and object tables.
	Info *types.Info
}

// newInfo allocates the full set of type-checker tables the analyzers use.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// moduleImporter resolves module-internal imports from the packages
// already checked this load, and everything else (the standard library)
// through the compiler-independent source importer — keeping the module
// free of x/tools while still type-checking against real stdlib APIs.
type moduleImporter struct {
	std types.Importer
	mod map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.mod[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}

// ModulePath reads the module path from root/go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mp := strings.TrimSpace(rest)
			if unq, err := strconv.Unquote(mp); err == nil {
				mp = unq
			}
			if mp != "" {
				return mp, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod at or above %s", dir)
		}
		dir = parent
	}
}

// parsedPkg is a package parsed but not yet type-checked.
type parsedPkg struct {
	path    string
	dir     string
	files   []*ast.File
	imports []string // module-internal imports only
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, hidden and vendor directories) in dependency order.
// Test files are excluded on purpose: the invariants thvet checks bind
// production code; tests are free to use clocks, entropy and raw access.
func LoadModule(root string) ([]*Package, error) {
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	byPath := make(map[string]*parsedPkg)
	var order []string
	for _, dir := range dirs {
		pkg, err := parseDir(fset, dir)
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		pkg.path = modPath
		if rel != "." {
			pkg.path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg.dir = dir
		for _, f := range pkg.files {
			for _, imp := range f.Imports {
				ip, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					continue
				}
				if ip == modPath || strings.HasPrefix(ip, modPath+"/") {
					pkg.imports = append(pkg.imports, ip)
				}
			}
		}
		byPath[pkg.path] = pkg
		order = append(order, pkg.path)
	}

	sorted, err := topoSort(order, byPath)
	if err != nil {
		return nil, err
	}

	imp := &moduleImporter{
		std: importer.ForCompiler(fset, "source", nil),
		mod: make(map[string]*types.Package),
	}
	var out []*Package
	for _, path := range sorted {
		pkg := byPath[path]
		info := newInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, pkg.files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
		}
		imp.mod[path] = tpkg
		out = append(out, &Package{
			Path:  path,
			Dir:   pkg.dir,
			Fset:  fset,
			Files: pkg.files,
			Types: tpkg,
			Info:  info,
		})
	}
	return out, nil
}

// LoadDir parses and type-checks the single package in dir (used by the
// golden tests; the package may import only the standard library).
func LoadDir(fset *token.FileSet, dir string) (*Package, error) {
	pkg, err := parseDir(fset, dir)
	if err != nil {
		return nil, err
	}
	if pkg == nil {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	info := newInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	name := pkg.files[0].Name.Name
	tpkg, err := conf.Check(name, fset, pkg.files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", dir, err)
	}
	return &Package{Path: name, Dir: dir, Fset: fset, Files: pkg.files, Types: tpkg, Info: info}, nil
}

// parseDir parses the non-test Go files of one directory; nil when the
// directory holds none.
func parseDir(fset *token.FileSet, dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	return &parsedPkg{files: files}, nil
}

// topoSort orders paths so every module-internal import precedes its
// importer.
func topoSort(paths []string, byPath map[string]*parsedPkg) ([]string, error) {
	const (
		white = iota // unvisited
		gray         // on the current descent: a repeat visit is a cycle
		black        // done
	)
	state := make(map[string]int, len(paths))
	var out []string
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("analysis: import cycle through %s", path)
		}
		state[path] = gray
		pkg := byPath[path]
		deps := append([]string(nil), pkg.imports...)
		sort.Strings(deps)
		for _, dep := range deps {
			if _, ok := byPath[dep]; !ok {
				return fmt.Errorf("analysis: %s imports %s, which is not in the module", path, dep)
			}
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = black
		out = append(out, path)
		return nil
	}
	for _, p := range paths {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}
