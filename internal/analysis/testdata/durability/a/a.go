// Package a replicates the persistent-file write idioms for the
// durability golden test: *.th files are written with WriteFileDurable
// and installed with os.Rename followed by SyncDir on the parent.
package a

import (
	"os"
	"path/filepath"
)

// WriteFileDurable and SyncDir stand in for the store package's
// primitives; the analyzer matches them by name.
func WriteFileDurable(path string, data []byte) error { return nil }
func SyncDir(dir string) error                        { return nil }

func volatileWrite(dir string, meta []byte) error {
	return os.WriteFile(filepath.Join(dir, "meta.th"), meta, 0o644) // want `os\.WriteFile on a \*\.th path is not durable`
}

func volatileRename(dir, tmp string) error {
	return os.Rename(tmp, filepath.Join(dir, "meta.th")) // want `os\.Rename installing a \*\.th file without store\.SyncDir`
}

// durableInstall is the sanctioned idiom: the temp file is fsynced, the
// rename is made durable by syncing the directory.
func durableInstall(dir string, meta []byte) error {
	tmp := filepath.Join(dir, "meta.tmp")
	if err := WriteFileDurable(tmp, meta); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, "meta.th")); err != nil {
		return err
	}
	return SyncDir(dir)
}

// otherFiles outside the *.th namespace are not this analyzer's business.
func otherFiles(dir string, b []byte) error {
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), b, 0o644); err != nil {
		return err
	}
	return os.Rename(filepath.Join(dir, "a.txt"), filepath.Join(dir, "b.txt"))
}

// Device replicates the write-ahead log's device surface (matched by
// type name, like the store primitives above are matched by function
// name).
type Device interface {
	Append(p []byte) error
	Sync() error
	TruncateTo(n int64) error
}

func unsyncedTruncate(d Device) error {
	return d.TruncateTo(0) // want `wal TruncateTo without a Sync in the same function`
}

// checkpointIdiom is the sanctioned pairing: truncate, rewrite the
// marker, sync — the truncation becomes durable with the sync.
func checkpointIdiom(d Device, marker []byte) error {
	if err := d.TruncateTo(0); err != nil {
		return err
	}
	if err := d.Append(marker); err != nil {
		return err
	}
	return d.Sync()
}

// MemDevice is a device implementation: its own TruncateTo is the
// primitive being defined, not a use of it; not flagged.
type MemDevice struct{ buf []byte }

func (d *MemDevice) TruncateTo(n int64) error {
	d.buf = d.buf[:n]
	return nil
}
