// Package a replicates the store surface for the errdiscipline golden
// test: errors from Store I/O and encoding/binary must be handled or
// explicitly discarded with `_ =`.
package a

import (
	"bytes"
	"encoding/binary"
)

type Bucket struct{ n int }

type Store interface {
	Read(addr int32) (*Bucket, error)
	Write(addr int32, b *Bucket) error
	Sync() error
	Close() error
}

func drop(s Store, b *Bucket) {
	s.Read(7)     // want `error from s\.Read discarded`
	s.Write(7, b) // want `error from s\.Write discarded`
	s.Close()     // want `error from s\.Close discarded`
}

func deferred(s Store) {
	defer s.Close() // want `error from s\.Close discarded by defer`
}

// explicit discards are the sanctioned escape hatch for cleanup paths
// where an earlier error takes precedence.
func explicit(s Store) {
	_ = s.Close()
}

// handled errors are the normal case.
func handled(s Store, b *Bucket) error {
	if err := s.Write(1, b); err != nil {
		return err
	}
	return s.Sync()
}

func encode(w *bytes.Buffer, v uint32) {
	binary.Write(w, binary.LittleEndian, v) // want `error from encoding/binary\.Write discarded`
}

func encodeHandled(w *bytes.Buffer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

type closer struct{}

func (closer) Close() error { return nil }

// Close on a non-store type is somebody else's policy; not flagged.
func other(c closer) {
	c.Close()
}

// Log and Device replicate the write-ahead log surface: the matcher keys
// on the type names, as it does for Store.
type Log struct{}

func (*Log) Append(op byte, key string, value []byte) (uint64, error) { return 0, nil }
func (*Log) Commit(lsn uint64) error                                  { return nil }
func (*Log) Checkpoint() error                                        { return nil }
func (*Log) Close() error                                             { return nil }

type Device interface {
	Append(p []byte) error
	Sync() error
	TruncateTo(n int64) error
	Close() error
}

func dropWAL(l *Log, d Device) {
	l.Append(1, "k", nil) // want `error from l\.Append discarded.*non-durable`
	l.Commit(7)           // want `error from l\.Commit discarded.*non-durable`
	l.Checkpoint()        // want `error from l\.Checkpoint discarded.*non-durable`
	d.Sync()              // want `error from d\.Sync discarded.*non-durable`
	d.TruncateTo(0)       // want `error from d\.TruncateTo discarded.*non-durable`
}

func deferredWAL(l *Log) {
	defer l.Close() // want `error from l\.Close discarded by defer.*non-durable`
}

// The explicit discard stays the sanctioned escape hatch: attachment
// failure paths close the log with the original error taking precedence.
func explicitWAL(l *Log) {
	_ = l.Close()
}

func handledWAL(l *Log, d Device) error {
	lsn, err := l.Append(1, "k", nil)
	if err != nil {
		return err
	}
	if err := l.Commit(lsn); err != nil {
		return err
	}
	return d.Sync()
}

// DecodeBinary and DecodeBound replicate the codec surface: the matcher
// keys on the function names, whatever package they are called from.
func DecodeBinary(buf []byte) (*Bucket, int, error) { return nil, 0, nil }

func DecodeBound(buf []byte) ([]byte, int, error) { return nil, 0, nil }

func dropDecode(buf []byte) {
	DecodeBinary(buf) // want `error from DecodeBinary discarded.*detected corruption`
	DecodeBound(buf)  // want `error from DecodeBound discarded.*detected corruption`
}

func handledDecode(buf []byte) error {
	_, _, err := DecodeBinary(buf)
	return err
}

// A same-named method belongs to its receiver's policy, not the codec
// rule; not flagged.
type frame struct{}

func (frame) DecodeBinary() error { return nil }

func methodDecode(f frame) {
	_ = f.DecodeBinary()
}
