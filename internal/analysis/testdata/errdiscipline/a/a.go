// Package a replicates the store surface for the errdiscipline golden
// test: errors from Store I/O and encoding/binary must be handled or
// explicitly discarded with `_ =`.
package a

import (
	"bytes"
	"encoding/binary"
)

type Bucket struct{ n int }

type Store interface {
	Read(addr int32) (*Bucket, error)
	Write(addr int32, b *Bucket) error
	Sync() error
	Close() error
}

func drop(s Store, b *Bucket) {
	s.Read(7)     // want `error from s\.Read discarded`
	s.Write(7, b) // want `error from s\.Write discarded`
	s.Close()     // want `error from s\.Close discarded`
}

func deferred(s Store) {
	defer s.Close() // want `error from s\.Close discarded by defer`
}

// explicit discards are the sanctioned escape hatch for cleanup paths
// where an earlier error takes precedence.
func explicit(s Store) {
	_ = s.Close()
}

// handled errors are the normal case.
func handled(s Store, b *Bucket) error {
	if err := s.Write(1, b); err != nil {
		return err
	}
	return s.Sync()
}

func encode(w *bytes.Buffer, v uint32) {
	binary.Write(w, binary.LittleEndian, v) // want `error from encoding/binary\.Write discarded`
}

func encodeHandled(w *bytes.Buffer, v uint32) error {
	return binary.Write(w, binary.LittleEndian, v)
}

type closer struct{}

func (closer) Close() error { return nil }

// Close on a non-store type is somebody else's policy; not flagged.
func other(c closer) {
	c.Close()
}
