// Package a exercises the lockorder golden cases on a miniature of the
// concurrent layer: per-bucket latches, a structural lock, shard locks in
// front of a Store.
package a

import "sync"

type Bucket struct{ n int }

type Store interface {
	Read(addr int32) (*Bucket, error)
	Write(addr int32, b *Bucket) error
}

type lbucket struct {
	mu sync.RWMutex
	n  int
}

type File struct {
	structural sync.Mutex
	trieMu     sync.RWMutex
	stripes    Stripes
	buckets    []*lbucket
}

// Stripes is the miniature subtree stripe table: the analyzer recognizes
// it by type name, like the real concurrent.Stripes.
type Stripes struct {
	mus [4]sync.Mutex
}

func (s *Stripes) Lock(k int)   { s.mus[k].Lock() }
func (s *Stripes) Unlock(k int) { s.mus[k].Unlock() }

// Acquire is the sanctioned ascending multi-stripe site, recognized by
// name: single-stripe Lock calls inside it are fine.
func (s *Stripes) Acquire(ks ...int) func() {
	for _, k := range ks {
		s.Lock(k)
	}
	return func() {
		for i := len(ks) - 1; i >= 0; i-- {
			s.Unlock(ks[i])
		}
	}
}

// twoLatches holds a second bucket latch while the first is still held —
// the lock-order cycle the batch path's ascending-address discipline
// exists to prevent.
func (f *File) twoLatches(i, j int) int {
	a := f.buckets[i]
	b := f.buckets[j]
	a.mu.Lock()
	b.mu.Lock() // want `bucket latch b\.mu acquired while a\.mu is held`
	n := a.n + b.n
	b.mu.Unlock()
	a.mu.Unlock()
	return n
}

// structuralThenLatch is the sanctioned order: the coarse structural lock
// (a receiver field) plus at most one latch.
func (f *File) structuralThenLatch(i int) {
	f.structural.Lock()
	defer f.structural.Unlock()
	lb := f.buckets[i]
	lb.mu.Lock()
	lb.n++
	lb.mu.Unlock()
}

// oneAtATime releases each latch before taking the next.
func (f *File) oneAtATime(i, j int) {
	a := f.buckets[i]
	a.mu.Lock()
	a.n++
	a.mu.Unlock()
	b := f.buckets[j]
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// retryLoop mirrors the Get retry discipline: latch, validate, release on
// mismatch, retry — never two latches at once.
func (f *File) retryLoop(i int) int {
	for {
		lb := f.buckets[i]
		lb.mu.RLock()
		if lb.n < 0 {
			lb.mu.RUnlock()
			continue
		}
		n := lb.n
		lb.mu.RUnlock()
		return n
	}
}

// mapLatch latches inside map iteration: map order is not ascending, so
// this silently breaks the ordering argument.
func (f *File) mapLatch(groups map[int32][]int) int {
	total := 0
	for addr := range groups {
		lb := f.buckets[addr]
		lb.mu.RLock() // want `lb\.mu acquired inside iteration over a map`
		total += lb.n
		lb.mu.RUnlock()
	}
	return total
}

// sortedLatch visits a pre-sorted slice of addresses — the partition
// discipline — and is fine.
func (f *File) sortedLatch(addrs []int32) int {
	total := 0
	for _, addr := range addrs {
		lb := f.buckets[addr]
		lb.mu.RLock()
		total += lb.n
		lb.mu.RUnlock()
	}
	return total
}

type shard struct {
	mu     sync.RWMutex
	byAddr map[int32]*Bucket
}

// fillUnderLatch reads the backing store while the shard latch is held:
// one slow disk read would stall every hit on the shard.
func fillUnderLatch(sh *shard, st Store, addr int32) (*Bucket, error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return st.Read(addr) // want `store I/O st\.Read while shard latch sh\.mu is held`
}

// fillOutsideLatch is the pool's real discipline: consult the shard under
// the latch, read the store after releasing it.
func fillOutsideLatch(sh *shard, st Store, addr int32) (*Bucket, error) {
	sh.mu.RLock()
	b, ok := sh.byAddr[addr]
	sh.mu.RUnlock()
	if ok {
		return b, nil
	}
	return st.Read(addr)
}

// latch models the latch table: a bare *RWMutex handle per bucket address.
func (f *File) latch(i int) *sync.RWMutex { return &f.buckets[i].mu }

// bucketIOUnderLatch is the concurrent engine's discipline: a bucket's
// store I/O runs under that bucket's own latch (a bare handle) — rule 3
// restricts shard latches, not bucket latches.
func (f *File) bucketIOUnderLatch(st Store, i int) error {
	mu := f.latch(i)
	mu.Lock()
	defer mu.Unlock()
	return st.Write(int32(i), &Bucket{})
}

// structuralAfterLatch inverts the lock hierarchy: an overflow discovered
// under a bucket latch must release it and retry under the structural
// lock, never lock upward.
func (f *File) structuralAfterLatch(i int) {
	mu := f.latch(i)
	mu.Lock()
	f.structural.Lock() // want `structural lock f\.structural acquired while bucket latch mu is held`
	f.structural.Unlock()
	mu.Unlock()
}

// releaseThenStructural is the sanctioned shape of the same operation.
func (f *File) releaseThenStructural(i int) {
	mu := f.latch(i)
	mu.Lock()
	over := f.buckets[i].n > 0
	mu.Unlock()
	if over {
		f.structural.Lock()
		f.structural.Unlock()
	}
}

// lockSubtrees is the engine's sanctioned single-stripe loop, recognized
// by name like LockPair: the key set is sorted and deduplicated before
// the loop.
func (f *File) lockSubtrees(ks []int) func() {
	for _, k := range ks {
		f.stripes.Lock(k)
	}
	return func() {
		for i := len(ks) - 1; i >= 0; i-- {
			f.stripes.Unlock(ks[i])
		}
	}
}

// stripeDirect locks a single stripe outside the sanctioned sites: a
// colliding key in a second such site is a deadlock the ascending-set
// discipline exists to prevent.
func (f *File) stripeDirect(k int) {
	f.stripes.Lock(k) // want `subtree stripe f\.stripes locked directly in stripeDirect`
	f.stripes.Unlock(k)
}

// stripeUnderLatch inverts the stripe > latch hierarchy: the maintenance
// path derives its whole stripe set before latching anything.
func (f *File) stripeUnderLatch(i, k int) {
	mu := f.latch(i)
	mu.Lock()
	unlock := f.stripes.Acquire(k) // want `subtree stripe f\.stripes acquired while bucket latch mu is held`
	unlock()
	mu.Unlock()
}

// stripeInMap acquires stripes while ranging over a map: map order is not
// ascending, which silently breaks the multi-stripe cycle argument.
func (f *File) stripeInMap(groups map[int32]int) {
	for _, k := range groups {
		unlock := f.stripes.Acquire(k) // want `subtree stripe f\.stripes acquired inside iteration over a map`
		unlock()
	}
}

// flipUnderLatch is the sanctioned publication shape: the trie flip lock
// sits BELOW the bucket latches (a split publishes while still holding
// the old bucket's latch), so this is exempt from the structural rule.
func (f *File) flipUnderLatch(i int) {
	mu := f.latch(i)
	mu.Lock()
	f.trieMu.Lock()
	f.trieMu.Unlock()
	mu.Unlock()
}

// latchUnderFlip locks below the flip lock: nothing is acquired while it
// is held — its critical sections are the publication flips alone.
func (f *File) latchUnderFlip(i int) {
	f.trieMu.Lock()
	mu := f.latch(i)
	mu.Lock() // want `lock mu acquired while flip lock f\.trieMu is held`
	mu.Unlock()
	f.trieMu.Unlock()
}

// stripeUnderFlip acquires a stripe under the flip lock — upward through
// the entire hierarchy.
func (f *File) stripeUnderFlip(k int) {
	f.trieMu.RLock()
	unlock := f.stripes.Acquire(k) // want `subtree stripe f\.stripes acquired while flip lock f\.trieMu is held`
	unlock()
	f.trieMu.RUnlock()
}

// LockPair is rule 1's sole sanctioned two-latch site: the guarded-merge
// primitive, ascending address order, recognized by name.
func (f *File) LockPair(i, j int) func() {
	if i > j {
		i, j = j, i
	}
	lo := f.latch(i)
	hi := f.latch(j)
	lo.Lock()
	hi.Lock()
	return func() {
		hi.Unlock()
		lo.Unlock()
	}
}
