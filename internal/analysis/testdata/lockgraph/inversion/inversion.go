// Package inversion seeds an interprocedural latch→stripe inversion: no
// single function contains both acquisitions, so only the whole-program
// held-set propagation can see it — and the diagnostic must carry the
// witness call path, file:line by file:line.
package inversion

import "sync"

// Stripes mimics the engine's subtree stripe table; its methods are the
// stripe primitives (bodies modeled at the call level, not scanned).
type Stripes struct{ mu [4]sync.Mutex }

func (s *Stripes) Lock(k int)   { s.mu[k].Lock() }
func (s *Stripes) Unlock(k int) { s.mu[k].Unlock() }

type engine struct {
	stripes Stripes
	latches map[int]*sync.RWMutex
}

// putLatched takes the bucket latch, then — two calls deep — a subtree
// stripe, inverting stripe > latch.
func (e *engine) putLatched(addr int) {
	mu := e.latches[addr]
	mu.Lock()
	defer mu.Unlock()
	e.grow(addr)
}

// grow is the intermediate hop of the witness path.
func (e *engine) grow(addr int) {
	e.lockSubtrees(addr)
}

// lockSubtrees is a sanctioned single-stripe site by name, so the only
// finding below is the inherited-latch inversion, not direct-lock use.
func (e *engine) lockSubtrees(addr int) {
	e.stripes.Lock(addr % 4) // want `subtree stripe e\.stripes acquired while bucket latch mu is held: the hierarchy is stripe > latch.*acquired at inversion\.go:\d+ in inversion\.\(\*engine\)\.putLatched; call path: inversion\.\(\*engine\)\.putLatched at inversion\.go:\d+ -> inversion\.\(\*engine\)\.grow at inversion\.go:\d+ -> inversion\.\(\*engine\)\.lockSubtrees`
	e.stripes.Unlock(addr % 4)
}

// disjoint is the negative case: the same stripe site reached with no
// latch held stays silent.
func (e *engine) disjoint(addr int) {
	e.lockSubtrees(addr)
}
