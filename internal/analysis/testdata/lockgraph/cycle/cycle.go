// Package cycle seeds an AB/BA ordering cycle between two aux leaf
// locks. Aux locks have no rank in the hierarchy, so cycle detection over
// the acquisition graph is their only ordering check.
package cycle

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
)

func lockAB() {
	muA.Lock()
	muB.Lock() // want `potential deadlock: lock-order cycle muA -> muB \(cycle\.go:\d+\), muB -> muA \(cycle\.go:\d+\)`
	muB.Unlock()
	muA.Unlock()
}

func lockBA() {
	muB.Lock()
	muA.Lock()
	muA.Unlock()
	muB.Unlock()
}

// single is the negative case: consistent ordering through a helper
// creates no cycle.
func single() {
	muA.Lock()
	withB()
	muA.Unlock()
}

func withB() {
	muB.Lock()
	muB.Unlock()
}
