// Package bench is outside the deterministic set: harness code may read
// clocks and draw unseeded entropy, so nothing here is flagged.
package bench

import (
	"math/rand"
	"os"
	"time"
)

func jitter() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(3))
}

func configured() string {
	return os.Getenv("BENCH_MODE")
}
