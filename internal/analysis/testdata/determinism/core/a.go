// Package core replicates the deterministic file layer for the golden
// test: entropy, wall-clock time and environment reads are forbidden
// outside the seeded constructors.
package core

import (
	"math/rand"
	"os"
	"time"
)

// seeded draws every random digit from a caller-supplied seed — the
// sanctioned pattern (rand.New / rand.NewSource are allowed).
func seeded(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(100)
	}
	return out
}

// zipfian layers the seeded Zipf generator on top — also sanctioned.
func zipfian(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, 25)
	return z.Uint64()
}

func entropy() int {
	return rand.Intn(100) // want `top-level math/rand`
}

func shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `top-level math/rand`
}

func clock() int64 {
	return time.Now().UnixNano() // want `time\.Now`
}

// elapsed uses time.Since, which is wall-clock free of time.Now only in
// appearance; only the explicit time.Now call is the tracked entry point,
// and this function has one.
func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func env() string {
	return os.Getenv("TH_SEED") // want `os\.Getenv`
}
