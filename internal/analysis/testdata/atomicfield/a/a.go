// Package a exercises the atomicfield golden cases: fields touched by
// sync/atomic anywhere must be accessed atomically everywhere, and fields
// of the typed-atomic kinds must never be copied or overwritten as values.
package a

import "sync/atomic"

type counters struct {
	hits  int64        // accessed via atomic.AddInt64/LoadInt64
	cold  int64        // never accessed atomically: plain use is fine
	total atomic.Int64 // typed atomic: methods only
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
}

func load(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

func plainRead(c *counters) int64 {
	return c.hits // want `plain access to field hits`
}

func plainWrite(c *counters) {
	c.hits = 0 // want `plain access to field hits`
}

// cold has no atomic access anywhere, so plain use is unremarkable.
func coldUse(c *counters) int64 {
	c.cold++
	return c.cold
}

// Typed atomics: method calls and address-taking are the sound uses.
func typedGood(c *counters) int64 {
	c.total.Add(1)
	return c.total.Load()
}

func typedAddr(c *counters) *atomic.Int64 {
	return &c.total
}

func typedCopy(c *counters) int64 {
	snapshot := c.total // want `field total has atomic type`
	return snapshot.Load()
}

func typedOverwrite(c *counters) {
	c.total = atomic.Int64{} // want `field total has atomic type`
}
