// Package a replicates the public API shape for the obsop golden test:
// methods dispatching engine operations through the `eng` field must call
// the obs timing hook (RecordOp).
package a

import "time"

type Observer struct{}

func (o *Observer) RecordOp(op int, d time.Duration) {}

type engine interface {
	Get(key string) ([]byte, error)
	Put(key string, value []byte) error
	Delete(key string) error
	Len() int
}

type File struct {
	eng engine
	obs *Observer
}

// Get routes through the timing hook — the PR-1 discipline.
func (f *File) Get(key string) ([]byte, error) {
	start := time.Now()
	v, err := f.eng.Get(key)
	f.obs.RecordOp(0, time.Since(start))
	return v, err
}

// Put skips the hook: flagged.
func (f *File) Put(key string, value []byte) error {
	return f.eng.Put(key, value) // want `Put dispatches eng\.Put without the obs timing hook`
}

// Delete times conditionally — an attached observer is optional, and the
// conditional call still counts as routed.
func (f *File) Delete(key string) error {
	if f.obs == nil {
		return f.eng.Delete(key)
	}
	start := time.Now()
	err := f.eng.Delete(key)
	f.obs.RecordOp(2, time.Since(start))
	return err
}

// Len is not an instrumented operation; no hook required.
func (f *File) Len() int { return f.eng.Len() }

// helper calls the engine through a non-eng field shape: not the public
// dispatch, not flagged.
func helper(e engine, key string) ([]byte, error) { return e.Get(key) }

// --- PR 6: span tracing shapes ---

type Span struct{}

func (o *Observer) StartSpan(op int) *Span { return nil }
func (o *Observer) FinishSpan(sp *Span)    {}
func (sp *Span) Mark(stage int)            {}

type spanEngine interface {
	GetSpan(key string, sp *Span) ([]byte, error)
	PutSpan(key string, value []byte, sp *Span) (bool, error)
}

type SpanFile struct {
	eng spanEngine
	obs *Observer
}

// GetTraced starts a span, defers its finish and dispatches the span
// form: FinishSpan is the timing hook, so nothing is flagged.
func (f *SpanFile) GetTraced(key string) ([]byte, error) {
	sp := f.obs.StartSpan(0)
	defer f.obs.FinishSpan(sp)
	return f.eng.GetSpan(key, sp)
}

// PutLeaky starts a span but finishes it inline: an early return (or a
// panic) would leak the span and lose the op's samples.
func (f *SpanFile) PutLeaky(key string, value []byte) error {
	sp := f.obs.StartSpan(1) // want `PutLeaky starts a span without a deferred FinishSpan`
	_, err := f.eng.PutSpan(key, value, sp)
	f.obs.FinishSpan(sp)
	return err
}

// GetSpanUntimed dispatches the span form of an engine op without any
// hook at all: flagged like the plain forms.
func (f *SpanFile) GetSpanUntimed(key string, sp *Span) ([]byte, error) {
	return f.eng.GetSpan(key, sp) // want `GetSpanUntimed dispatches eng\.GetSpan without the obs timing hook`
}
