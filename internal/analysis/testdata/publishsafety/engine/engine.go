// Package engine exercises the flip-publication safety analyzer against
// a miniature of the concurrent engine: a trie mirror, an arena, a store
// with Alloc/Write, bucket latches and a trieMu flip lock.
package engine

import "sync"

// Trie is an authoritative-structure type: methods writing its state are
// the mutations the publication protocol guards.
type Trie struct{ root []uint64 }

func (t *Trie) SetBoundary(i int, v uint64) { t.root[i] = v }
func (t *Trie) Search(i int) uint64         { return t.root[i] }

// Arena is the second authoritative family member.
type Arena struct{ cells []uint64 }

func (a *Arena) SetCell(i int, v uint64) { a.cells[i] = v }

type Store struct{ cells map[uint64][]byte }

func (s *Store) Alloc() uint64               { return 1 }
func (s *Store) Write(addr uint64, b []byte) {}
func (s *Store) Read(addr uint64) []byte     { return nil }

type engineFile struct {
	trieMu  sync.RWMutex
	world   sync.RWMutex
	trie    *Trie
	arena   *Arena
	st      *Store
	latches map[uint64]*sync.RWMutex
}

// publishOK: the canonical publication — flip lock held exclusively.
func (e *engineFile) publishOK(i int, v uint64) {
	e.trieMu.Lock()
	e.trie.SetBoundary(i, v)
	e.trieMu.Unlock()
}

// publishBad mutates the authoritative trie with no flip lock at all.
func (e *engineFile) publishBad(i int, v uint64) {
	e.trie.SetBoundary(i, v) // want `authoritative trie/arena mutation: engine\.\(\*Trie\)\.SetBoundary \(write in engine\.\(\*Trie\)\.SetBoundary at engine\.go:\d+\) reached without holding the flip lock exclusively`
}

// publishShared: a shared flip lock licenses reads, not publication.
func (e *engineFile) publishShared(i int, v uint64) {
	e.trieMu.RLock()
	e.trie.SetBoundary(i, v) // want `authoritative trie/arena mutation: engine\.\(\*Trie\)\.SetBoundary .* without holding the flip lock exclusively`
	e.trieMu.RUnlock()
}

// worldOK: world-exclusive sections (scrub, recovery) have quiesced
// every other goroutine; mutation is safe without the flip lock.
func (e *engineFile) worldOK(i int, v uint64) {
	e.world.Lock()
	e.arena.SetCell(i, v)
	e.world.Unlock()
}

// flipHelper relies on its callers' flip lock: every path into it holds
// trieMu exclusively, which the must-held entry set proves.
func (e *engineFile) flipHelper(i int, v uint64) {
	e.trie.SetBoundary(i, v)
	e.arena.SetCell(i, v)
}

func (e *engineFile) publishViaHelper(i int, v uint64) {
	e.trieMu.Lock()
	e.flipHelper(i, v)
	e.trieMu.Unlock()
}

// exposedHelper has a second, uncovered caller, so its callers cannot be
// proven safe by entry must-analysis; the uncovered call site is the
// finding.
func (e *engineFile) exposedHelper(i int, v uint64) {
	e.trie.SetBoundary(i, v) // want `authoritative trie/arena mutation: engine\.\(\*Trie\)\.SetBoundary .* without holding the flip lock exclusively`
}

func (e *engineFile) callsExposedCovered(i int, v uint64) {
	e.trieMu.Lock()
	e.exposedHelper(i, v)
	e.trieMu.Unlock()
}

func (e *engineFile) callsExposedUncovered(i int, v uint64) {
	e.exposedHelper(i, v) // want `authoritative trie/arena mutation: engine\.\(\*engineFile\)\.exposedHelper \(write in engine\.\(\*Trie\)\.SetBoundary at engine\.go:\d+\) reached without holding the flip lock exclusively`
}

// readOK: reads of the authoritative trie are not publication.
func (e *engineFile) readOK(i int) uint64 {
	e.trieMu.RLock()
	defer e.trieMu.RUnlock()
	return e.trie.Search(i)
}

// prepareOK: the split prepare phase writes the Alloc-fresh twin —
// unreachable from the published trie — without a latch.
func (e *engineFile) prepareOK(b []byte) uint64 {
	twin := e.st.Alloc()
	e.st.Write(twin, b)
	return twin
}

// writeBad writes a published bucket with no latch, flip, or freshness
// proof.
func (e *engineFile) writeBad(addr uint64, b []byte) {
	e.st.Write(addr, b) // want `store write e\.st\.Write to a published bucket without bucket latch or flip lock`
}

// writeLatched: a published bucket is written under its latch.
func (e *engineFile) writeLatched(addr uint64, b []byte) {
	mu := e.latches[addr]
	mu.Lock()
	e.st.Write(addr, b)
	mu.Unlock()
}

// writeFlip: the publication write of the old bucket under the flip.
func (e *engineFile) writeFlip(addr uint64, b []byte) {
	e.trieMu.Lock()
	e.st.Write(addr, b)
	e.trieMu.Unlock()
}

// writeHelper performs an unlatched store write; callers must cover it.
func (e *engineFile) writeHelper(addr uint64, b []byte) {
	e.st.Write(addr, b) // want `store write e\.st\.Write to a published bucket without bucket latch or flip lock`
}

func (e *engineFile) callsWriteHelper(addr uint64, b []byte) {
	e.writeHelper(addr, b) // want `unlatched store write: engine\.\(\*engineFile\)\.writeHelper writes published buckets but is reached without bucket latch or flip lock`
}

func (e *engineFile) callsWriteHelperLatched(addr uint64, b []byte) {
	mu := e.latches[addr]
	mu.Lock()
	e.writeHelper(addr, b)
	mu.Unlock()
}
