package analysis

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestThvetDriver builds the real cmd/thvet binary and drives it against
// a scratch module: a determinism violation must produce exit code 1 with
// a correct file:line diagnostic, and the fixed module must pass with
// exit code 0.
func TestThvetDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "thvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/thvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building thvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("core/core.go", `package core

import "time"

// Stamp breaks the determinism invariant on purpose.
func Stamp() int64 {
	return time.Now().UnixNano()
}
`)

	run := func(extra ...string) (string, int) {
		t.Helper()
		cmd := exec.Command(bin, append([]string{"-dir", mod}, extra...)...)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running thvet: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("thvet on violating module: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "core.go:7") || !strings.Contains(out, "[determinism]") {
		t.Fatalf("thvet diagnostic missing file:line or analyzer name:\n%s", out)
	}

	// -json: the same finding as machine-readable records.
	jout, jcode := run("-json")
	if jcode != 1 {
		t.Fatalf("thvet -json on violating module: exit %d, want 1\n%s", jcode, jout)
	}
	// CombinedOutput interleaves the stderr summary line; the JSON array
	// is the stdout prefix.
	jsonBody := jout[:strings.LastIndex(jout, "]")+1]
	var recs []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Col      int    `json:"col"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal([]byte(jsonBody), &recs); err != nil {
		t.Fatalf("thvet -json output is not a JSON array: %v\n%s", err, jout)
	}
	if len(recs) != 1 || recs[0].Analyzer != "determinism" || recs[0].Line != 7 ||
		!strings.HasSuffix(recs[0].File, "core.go") || recs[0].Col == 0 ||
		!strings.Contains(recs[0].Message, "time.Now") {
		t.Fatalf("thvet -json records = %+v, want one determinism finding at core.go:7", recs)
	}

	write("core/core.go", `package core

// Stamp now takes the clock reading from the caller.
func Stamp(now int64) int64 {
	return now
}
`)
	out, code = run()
	if code != 0 {
		t.Fatalf("thvet on fixed module: exit %d, want 0\n%s", code, out)
	}
	out, code = run("-json")
	if code != 0 || !strings.Contains(out, "[]") {
		t.Fatalf("thvet -json on fixed module: exit %d, output %q, want 0 with an empty array", code, out)
	}
}

// TestThvetGraph drives `thvet -graph` against this repository: the
// hierarchy format must byte-match the checked-in table (exit 0), and the
// DOT format must be a digraph.
func TestThvetGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "thvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/thvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building thvet: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-dir", root, "-graph", "hierarchy")
	out, err := cmd.Output()
	if err != nil {
		t.Fatalf("thvet -graph hierarchy: %v\n%s", err, out)
	}
	if string(out) != LockHierarchyTable {
		t.Errorf("thvet -graph hierarchy output differs from lockhierarchy.txt:\n%s", out)
	}

	cmd = exec.Command(bin, "-dir", root, "-graph", "dot")
	out, err = cmd.Output()
	if err != nil {
		t.Fatalf("thvet -graph dot: %v\n%s", err, out)
	}
	if !strings.HasPrefix(string(out), "digraph lockgraph {") {
		t.Errorf("thvet -graph dot output is not a digraph:\n%.120s", out)
	}
}
