package analysis

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestThvetDriver builds the real cmd/thvet binary and drives it against
// a scratch module: a determinism violation must produce exit code 1 with
// a correct file:line diagnostic, and the fixed module must pass with
// exit code 0.
func TestThvetDriver(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "thvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/thvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building thvet: %v\n%s", err, out)
	}

	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("core/core.go", `package core

import "time"

// Stamp breaks the determinism invariant on purpose.
func Stamp() int64 {
	return time.Now().UnixNano()
}
`)

	run := func() (string, int) {
		t.Helper()
		cmd := exec.Command(bin, "-dir", mod)
		out, err := cmd.CombinedOutput()
		if err == nil {
			return string(out), 0
		}
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running thvet: %v\n%s", err, out)
		}
		return string(out), ee.ExitCode()
	}

	out, code := run()
	if code != 1 {
		t.Fatalf("thvet on violating module: exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "core.go:7") || !strings.Contains(out, "[determinism]") {
		t.Fatalf("thvet diagnostic missing file:line or analyzer name:\n%s", out)
	}

	write("core/core.go", `package core

// Stamp now takes the clock reading from the caller.
func Stamp(now int64) int64 {
	return now
}
`)
	out, code = run()
	if code != 0 {
		t.Fatalf("thvet on fixed module: exit %d, want 0\n%s", code, out)
	}
}
