package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// This file is the interprocedural lock-flow engine shared by the
// lockgraph and publishsafety analyzers. It computes, for every function
// body in the call graph:
//
//   - the locks acquired, with the set held at each acquisition;
//   - the set held at every call site (and at every function-literal
//     definition, which is the held set a closure inherits from its
//     creator);
//   - the net set still held on exit (lockSubtrees, LockPair and opLock
//     all return holding locks, paired with an unlock closure);
//   - store-I/O events, with Alloc-freshness of the written address;
//   - exposure flags: does the function (transitively) mutate the
//     authoritative trie/arena, or write the store, without covering the
//     mutation itself?
//
// Summaries are stabilized bottom-up over the call graph's strongly
// connected components, then a top-down worklist propagates held-at-entry
// sets (a may-analysis, with one witness call edge per inherited lock)
// and a must-held intersection (what is held on EVERY path into the
// function, which publishsafety uses to accept callees that rely on
// their callers' locks).

// lockClass is a lock's tier in the engine hierarchy, or aux for
// unranked leaf locks (observability internals, growth locks, local
// coordination mutexes) that participate in cycle detection only.
type lockClass int

const (
	classAux lockClass = iota
	classFile
	classWorld
	classStripe
	classLatch
	classFlip
	classShard
)

// hierarchyOrder is the canonical outermost-first tier order the
// checked-in lockhierarchy.txt mirrors.
var hierarchyOrder = []lockClass{classFile, classWorld, classStripe, classLatch, classFlip, classShard}

func (c lockClass) ranked() bool { return c != classAux }

// rank is the tier's index in hierarchyOrder; lower acquires first.
func (c lockClass) rank() int {
	for i, t := range hierarchyOrder {
		if t == c {
			return i
		}
	}
	return -1
}

func (c lockClass) String() string {
	switch c {
	case classFile:
		return "file"
	case classWorld:
		return "world"
	case classStripe:
		return "stripe"
	case classLatch:
		return "latch"
	case classFlip:
		return "flip"
	case classShard:
		return "shard"
	}
	return "aux"
}

// heldInfo is one lock the flow believes is held at a program point.
type heldInfo struct {
	id    string // identity inside the current context ("lb.mu"; entry locks carry a caller prefix)
	disp  string // display spelling for messages ("lb.mu")
	inst  string // graph node: the tier name for ranked locks, a stable instance label for aux
	class lockClass
	excl  bool // Lock rather than RLock
	// localShape marks a shard lock reached through a local variable
	// (sh.mu) — the pool-shard shape whose critical sections must never
	// cover store I/O (rule 3). Receiver-rooted store locks are exempt:
	// the journaling wrapper serializes I/O under its own lock by design.
	localShape bool
	pos        token.Pos
	fn         *funcNode // function whose body performed the acquisition
}

type heldSet map[string]heldInfo

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both sets (the safe merge after
// a branch that may have released).
func (h heldSet) intersect(o heldSet) {
	for k := range h {
		if _, ok := o[k]; !ok {
			delete(h, k)
		}
	}
}

func sortedHeld(h heldSet) []heldInfo {
	out := make([]heldInfo, 0, len(h))
	for _, v := range h {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// acqEvent is one lock acquisition with its local context.
type acqEvent struct {
	l        heldInfo
	held     []heldInfo // locks already held by this body at the acquisition
	mapDepth int        // > 0 when lexically inside a range over a map
	site     string     // enclosing declaration's bare name (LockPair, lockSubtrees)
	via      string     // "Lock", "RLock" or the Stripes method name
}

// callEvent is one call site (or function-literal definition, the
// pseudo-edge through which a closure inherits its creator's held set).
type callEvent struct {
	targets []*funcNode
	pos     token.Pos
	held    []heldInfo
	litDef  bool
}

// ioEvent is one store-surface call (Read/Write/Alloc/Free/...).
type ioEvent struct {
	recv   string
	method string
	pos    token.Pos
	held   []heldInfo
	// fresh marks a Write/Free whose address is data-flow-derived from a
	// st.Alloc() result in the same body: the twin bucket of a prepared
	// split, unreachable until the flip publishes it.
	fresh bool
}

// funcSummary is the per-function result of the flow.
type funcSummary struct {
	net           []heldInfo // held on exit
	returnsUnlock bool       // returns a func() paired with net

	acqs  []acqEvent
	calls []callEvent
	ios   []ioEvent

	// directMut marks a Trie/Arena/Mirror method that writes shared
	// state in its own body; mutPos is its first write.
	directMut bool
	mutPos    token.Pos
	// trieMutExposed: the function mutates the authoritative trie/arena
	// (directly or transitively) on some path not covered by a local
	// flip-exclusive or world-exclusive section. mutWitness names the
	// underlying write for diagnostics.
	trieMutExposed bool
	mutWitness     string
	// storeWriteExposed: likewise for non-fresh store writes not covered
	// by a local latch, flip-exclusive or world-exclusive section.
	storeWriteExposed bool

	// entry is the may-held-at-entry set, one witness edge per lock.
	entry    map[string]heldInfo
	entrySrc map[string]entrySource
	// entryMust is the tier bitmask held on every known path into the
	// function (empty for roots).
	entryMust uint16
}

// entrySource is the witness call edge that carried an entry lock in.
type entrySource struct {
	caller  *funcNode
	callPos token.Pos
}

// sig is the fixed-point change signature.
func (s *funcSummary) sig() string {
	var b strings.Builder
	for _, h := range s.net {
		fmt.Fprintf(&b, "%s/%d/%t;", h.id, h.class, h.excl)
	}
	fmt.Fprintf(&b, "|%t|%t|%t", s.returnsUnlock, s.trieMutExposed, s.storeWriteExposed)
	return b.String()
}

// entryMust bitmask bits.
const (
	mFile uint16 = 1 << iota
	mWorldShared
	mWorldExcl
	mStripe
	mLatch
	mFlipShared
	mFlipExcl
	mShard
)

func maskOf(h heldInfo) uint16 {
	switch h.class {
	case classFile:
		return mFile
	case classWorld:
		if h.excl {
			return mWorldExcl
		}
		return mWorldShared
	case classStripe:
		return mStripe
	case classLatch:
		return mLatch
	case classFlip:
		if h.excl {
			return mFlipExcl
		}
		return mFlipShared
	case classShard:
		return mShard
	}
	return 0
}

func maskOfHeld(held []heldInfo) uint16 {
	var m uint16
	for _, h := range held {
		m |= maskOf(h)
	}
	return m
}

// storeIOMethods are the Store-surface calls the flow records.
var storeIOMethods = map[string]bool{
	"Read":     true,
	"ReadView": true,
	"Write":    true,
	"Alloc":    true,
	"Free":     true,
	"Sync":     true,
}

// trieFamily are the named types whose methods own the authoritative
// trie state: writes inside them are the mutations publishsafety guards.
var trieFamily = map[string]bool{
	"Trie":   true,
	"Arena":  true,
	"Mirror": true,
}

// lockEngine ties the call graph and the summaries of one load together.
type lockEngine struct {
	pkgs  []*Package
	fset  *token.FileSet
	graph *callGraph
}

// engineCache memoizes the engine per load: lockgraph and publishsafety
// run over the same packages in one Run call.
var engineCache struct {
	key *Package
	n   int
	eng *lockEngine
}

func engineFor(pkgs []*Package) *lockEngine {
	if len(pkgs) == 0 {
		return nil
	}
	if engineCache.eng != nil && engineCache.key == pkgs[0] && engineCache.n == len(pkgs) {
		return engineCache.eng
	}
	eng := newLockEngine(pkgs)
	engineCache.key, engineCache.n, engineCache.eng = pkgs[0], len(pkgs), eng
	return eng
}

func newLockEngine(pkgs []*Package) *lockEngine {
	e := &lockEngine{pkgs: pkgs, fset: pkgs[0].Fset, graph: buildCallGraph(pkgs)}
	for _, n := range e.graph.nodes {
		n.sum = &funcSummary{}
		if isPrimitiveNode(n) {
			continue
		}
		if recv := n.receiverNamed(); recv != nil && trieFamily[recv.Obj().Name()] {
			n.sum.directMut, n.sum.mutPos = detectDirectMut(n)
		}
	}
	e.stabilize()
	e.propagate()
	return e
}

// isPrimitiveNode marks bodies modeled at the call level instead of
// scanned: the Stripes table (its Lock/Unlock/Acquire are the stripe
// acquisition primitives — scanning their element mutexes would double
// count every stripe as an aux lock).
func isPrimitiveNode(n *funcNode) bool {
	for p := n; p != nil; p = p.parent {
		if recv := p.receiverNamed(); recv != nil && recv.Obj().Name() == "Stripes" {
			return true
		}
	}
	return false
}

// detectDirectMut reports whether a trie-family method writes shared
// state: an assignment (or ++/--) whose target roots outside the locals,
// or an atomic Store/Swap/CompareAndSwap on such a root.
func detectDirectMut(n *funcNode) (bool, token.Pos) {
	info := n.pkg.Info
	recvObj := declReceiver(n)
	sharedRoot := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok {
			return false
		}
		if obj == recvObj || obj.IsField() {
			return true
		}
		// Pointer-typed parameters and locals alias shared state too
		// conservatively often; only the receiver and package state
		// count as "the authoritative structure" here.
		return obj.Parent() == n.pkg.Types.Scope()
	}
	var pos token.Pos
	found := false
	ast.Inspect(n.body(), func(x ast.Node) bool {
		if found {
			return false
		}
		switch st := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if sharedRoot(lhs) {
						found, pos = true, st.Pos()
						return false
					}
				}
			}
		case *ast.IncDecStmt:
			switch st.X.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				if sharedRoot(st.X) {
					found, pos = true, st.Pos()
					return false
				}
			}
		case *ast.CallExpr:
			if _, recv, name, ok := methodCall(info, st); ok {
				switch name {
				case "Store", "Swap", "CompareAndSwap":
					if nm := namedOf(info.TypeOf(recv)); nm != nil && nm.Obj().Pkg() != nil &&
						nm.Obj().Pkg().Path() == "sync/atomic" && sharedRoot(recv) {
						found, pos = true, st.Pos()
						return false
					}
				}
			}
		}
		return true
	})
	return found, pos
}

// declReceiver is the receiver object of the node's nearest declaration.
func declReceiver(n *funcNode) types.Object {
	for p := n; p != nil; p = p.parent {
		if p.decl != nil {
			return funcReceiver(p.pkg.Info, p.decl)
		}
	}
	return nil
}

// declBareName is the nearest declaration's bare name — the site key the
// by-name sanctions (LockPair, lockSubtrees, acquireSubtreesTimed) use.
func declBareName(n *funcNode) string {
	for p := n; p != nil; p = p.parent {
		if p.decl != nil {
			return p.decl.Name.Name
		}
	}
	return ""
}

// stabilize runs the bottom-up summary pass: SCCs in callee-first order,
// iterating inside each component until the summaries reach a fixed
// point.
func (e *lockEngine) stabilize() {
	edges := make(map[*funcNode][]*funcNode)
	for _, n := range e.graph.nodes {
		if isPrimitiveNode(n) {
			continue
		}
		seen := make(map[*funcNode]bool)
		ast.Inspect(n.body(), func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && x != n.lit {
				if t := e.graph.byLit[lit]; t != nil && !seen[t] {
					seen[t] = true
					edges[n] = append(edges[n], t)
				}
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				for _, t := range e.graph.resolve(n.pkg, call) {
					if !seen[t] && !isPrimitiveNode(t) {
						seen[t] = true
						edges[n] = append(edges[n], t)
					}
				}
			}
			return true
		})
	}
	for _, scc := range e.graph.sccOrder(edges) {
		for iter := 0; iter < 10; iter++ {
			changed := false
			for _, n := range scc {
				if isPrimitiveNode(n) {
					continue
				}
				before := n.sum.sig()
				e.scanNode(n)
				if n.sum.sig() != before {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
}

// scanNode recomputes one function's summary from its body and the
// current summaries of its callees.
func (e *lockEngine) scanNode(n *funcNode) {
	n.sum.acqs, n.sum.calls, n.sum.ios = nil, nil, nil
	s := &flowScan{
		eng:       e,
		node:      n,
		recv:      declReceiver(n),
		site:      declBareName(n),
		unlockers: make(map[types.Object][]string),
		fresh:     make(map[types.Object]bool),
		callAdded: make(map[*ast.CallExpr][]string),
	}
	held := make(heldSet)
	s.scanBlock(n.body(), held)
	// Deferred releases run at function exit: the lock was held for every
	// event of the body (which the events have already snapshotted), but
	// it is not part of the net-held-on-exit summary callers inherit.
	for _, id := range s.deferred {
		delete(held, id)
	}
	n.sum.net = sortedHeld(held)
	n.sum.returnsUnlock = returnsUnlockFunc(n)
	n.sum.trieMutExposed = n.sum.directMut
	if n.sum.directMut {
		n.sum.mutWitness = fmt.Sprintf("%s at %s", nodeLabel(n), e.shortPos(n.sum.mutPos))
	}
	for _, ev := range n.sum.calls {
		if coversTrieMut(ev.held) {
			continue
		}
		for _, t := range ev.targets {
			if t.sum != nil && t.sum.trieMutExposed {
				if !n.sum.trieMutExposed {
					n.sum.trieMutExposed = true
					n.sum.mutWitness = t.sum.mutWitness
				}
			}
		}
	}
	n.sum.storeWriteExposed = false
	for _, io := range n.sum.ios {
		if (io.method == "Write" || io.method == "Free") && !io.fresh && !coversStoreWrite(io.held) {
			n.sum.storeWriteExposed = true
		}
	}
	for _, ev := range n.sum.calls {
		if coversStoreWrite(ev.held) {
			continue
		}
		for _, t := range ev.targets {
			if t.sum != nil && t.sum.storeWriteExposed {
				n.sum.storeWriteExposed = true
			}
		}
	}
}

// coversTrieMut: a flip-exclusive section is the publication protocol; a
// world-exclusive section has quiesced every other goroutine (SaveMeta,
// Scrub, CheckInvariants).
func coversTrieMut(held []heldInfo) bool {
	for _, h := range held {
		if (h.class == classFlip || h.class == classWorld) && h.excl {
			return true
		}
	}
	return false
}

// coversStoreWrite: a reachable bucket is written under its latch, under
// the flip (the split's publication write) or world-exclusive.
func coversStoreWrite(held []heldInfo) bool {
	for _, h := range held {
		if h.class == classLatch {
			return true
		}
		if (h.class == classFlip || h.class == classWorld) && h.excl {
			return true
		}
	}
	return false
}

// returnsUnlockFunc reports whether the function's results include a
// plain func() — the unlock-closure convention of lockSubtrees/LockPair/
// opLock, releasing the net set when called.
func returnsUnlockFunc(n *funcNode) bool {
	var sig *types.Signature
	if n.obj != nil {
		sig, _ = n.obj.Type().(*types.Signature)
	} else if t := n.pkg.Info.TypeOf(n.lit); t != nil {
		sig, _ = t.(*types.Signature)
	}
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if rs, ok := sig.Results().At(i).Type().Underlying().(*types.Signature); ok {
			if rs.Params().Len() == 0 && rs.Results().Len() == 0 {
				return true
			}
		}
	}
	return false
}

// flowScan walks one function body, tracking held locks statement by
// statement (the branch-aware walk inherited from the old intraprocedural
// analyzer) and recording events into the node's summary.
type flowScan struct {
	eng       *lockEngine
	node      *funcNode
	recv      types.Object
	site      string
	mapDepth  int
	unlockers map[types.Object][]string
	fresh     map[types.Object]bool
	callAdded map[*ast.CallExpr][]string
	// deferred collects lock ids released by defer statements: held to
	// the end of the body, subtracted from the exit summary.
	deferred []string
}

func (s *flowScan) info() *types.Info            { return s.node.pkg.Info }
func (s *flowScan) typeOf(x ast.Expr) types.Type { return s.node.pkg.Info.TypeOf(x) }

func (s *flowScan) scanBlock(b *ast.BlockStmt, held heldSet) {
	for _, st := range b.List {
		s.scanStmt(st, held)
	}
}

func (s *flowScan) scanStmt(st ast.Stmt, held heldSet) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		s.scanBlock(x, held)
	case *ast.IfStmt:
		if x.Init != nil {
			s.scanStmt(x.Init, held)
		}
		s.scanExpr(x.Cond, held)
		then := held.clone()
		s.scanBlock(x.Body, then)
		if x.Else != nil {
			alt := held.clone()
			s.scanStmt(x.Else, alt)
			if !terminates(x.Else) {
				held.intersect(alt)
			}
		}
		if !terminates(x.Body) {
			held.intersect(then)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.scanStmt(x.Init, held)
		}
		if x.Cond != nil {
			s.scanExpr(x.Cond, held)
		}
		body := held.clone()
		s.scanBlock(x.Body, body)
		if x.Post != nil {
			s.scanStmt(x.Post, body)
		}
		s.mergeLoop(held, body)
	case *ast.RangeStmt:
		s.scanExpr(x.X, held)
		overMap := false
		if t := s.typeOf(x.X); t != nil {
			_, overMap = t.Underlying().(*types.Map)
		}
		if overMap {
			s.mapDepth++
		}
		body := held.clone()
		s.scanBlock(x.Body, body)
		if overMap {
			s.mapDepth--
		}
		s.mergeLoop(held, body)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Each case runs with a copy of the current held set; effects do
		// not propagate past the switch (cases are assumed lock-balanced).
		body := held.clone()
		ast.Inspect(st, func(n ast.Node) bool { return s.visitLeaf(n, body) })
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			s.scanExpr(rhs, held)
		}
		if len(x.Rhs) == 1 {
			if call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr); ok {
				s.bindCallResults(x.Lhs, call)
			}
		}
	case *ast.DeferStmt:
		// `defer f.opLock()()`: the inner call runs now (and its net
		// acquisitions are held), the returned unlock is deferred. A
		// deferred Unlock (or unlock closure) keeps the lock held to the
		// end of the body but releases it at exit — the ids go to
		// s.deferred so callers don't inherit them as net.
		if inner, ok := ast.Unparen(x.Call.Fun).(*ast.CallExpr); ok {
			s.handleCall(inner, held)
			s.deferred = append(s.deferred, s.callAdded[inner]...)
		} else if _, recvE, name, ok := methodCall(s.info(), x.Call); ok &&
			(name == "Unlock" || name == "RUnlock") &&
			(isSyncLocker(s.typeOf(recvE)) || isStripesType(s.typeOf(recvE))) {
			s.deferred = append(s.deferred, exprString(recvE))
		} else if id, ok := ast.Unparen(x.Call.Fun).(*ast.Ident); ok {
			if obj := s.info().Uses[id]; obj != nil {
				s.deferred = append(s.deferred, s.unlockers[obj]...)
			}
		}
		for _, arg := range x.Call.Args {
			s.scanLits(arg, held)
		}
	case *ast.GoStmt:
		s.handleCall(x.Call, held)
		ast.Inspect(x.Call, func(n ast.Node) bool { return s.visitLeaf(n, held) })
	case *ast.LabeledStmt:
		s.scanStmt(x.Stmt, held)
	default:
		ast.Inspect(st, func(n ast.Node) bool { return s.visitLeaf(n, held) })
	}
}

// mergeLoop folds a loop body's lock acquisitions back into the outer
// held set: a loop that locks without unlocking (acquireSubtreesTimed
// ranging over its ascending stripe set) exits holding the locks, while a
// per-iteration lock/unlock pair is balanced by the body's end and adds
// nothing. Releases inside the body stay conservative (the outer set
// keeps the lock): the loop may run zero iterations.
func (s *flowScan) mergeLoop(held, body heldSet) {
	for id, h := range body {
		if _, ok := held[id]; !ok {
			held[id] = h
		}
	}
}

func (s *flowScan) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool { return s.visitLeaf(n, held) })
}

// scanLits records literal definitions under e without other effects.
func (s *flowScan) scanLits(e ast.Expr, held heldSet) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.litDef(lit, held)
			return false
		}
		return true
	})
}

// visitLeaf handles one node of a straight-line statement: function
// literals become inheritance pseudo-edges, calls become lock, I/O and
// call events.
func (s *flowScan) visitLeaf(n ast.Node, held heldSet) bool {
	switch x := n.(type) {
	case *ast.FuncLit:
		s.litDef(x, held)
		return false
	case *ast.CallExpr:
		s.handleCall(x, held)
		return true // descend: nested calls in args have effects too
	}
	return true
}

// litDef records the held set a function literal inherits from its
// definition point. The closure is scanned as its own call-graph node;
// this pseudo call edge is what carries the creator's locks into it
// (both the synchronous RecordOp-dispatch closures and the fan-out
// workers, which really do run while the round's stripes are held).
func (s *flowScan) litDef(lit *ast.FuncLit, held heldSet) {
	t := s.eng.graph.byLit[lit]
	if t == nil || isPrimitiveNode(t) {
		return
	}
	s.node.sum.calls = append(s.node.sum.calls, callEvent{
		targets: []*funcNode{t},
		pos:     lit.Pos(),
		held:    sortedHeld(held),
		litDef:  true,
	})
}

// bindCallResults connects `x := call()` result values to the flow: an
// unlock closure releasing the call's net acquisitions, or an
// Alloc-fresh address.
func (s *flowScan) bindCallResults(lhs []ast.Expr, call *ast.CallExpr) {
	if len(lhs) == 0 {
		return
	}
	id, ok := ast.Unparen(lhs[0]).(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := s.info().Defs[id]
	if obj == nil {
		obj = s.info().Uses[id]
	}
	if obj == nil {
		return
	}
	if added := s.callAdded[call]; len(added) > 0 {
		s.unlockers[obj] = added
		return
	}
	if _, recv, name, ok := methodCall(s.info(), call); ok && name == "Alloc" && isStoreType(s.typeOf(recv)) {
		s.fresh[obj] = true
	}
}

// handleCall applies one call expression's lock effects to held and
// records the events the interprocedural passes consume.
func (s *flowScan) handleCall(call *ast.CallExpr, held heldSet) {
	if _, done := s.callAdded[call]; done {
		return
	}
	s.callAdded[call] = nil

	// unlock() through a bound unlock closure releases its net set.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := s.info().Uses[id]; obj != nil {
			if ids, ok := s.unlockers[obj]; ok {
				for _, rid := range ids {
					delete(held, rid)
				}
				return
			}
		}
	}

	if _, recvE, name, ok := methodCall(s.info(), call); ok {
		if isStripesType(s.typeOf(recvE)) {
			key := exprString(recvE)
			switch name {
			case "Lock", "Acquire":
				l := heldInfo{
					id: key, disp: key, inst: classStripe.String(),
					class: classStripe, excl: true,
					pos: call.Pos(), fn: s.node,
				}
				s.record(l, held, name)
				held[l.id] = l
				s.callAdded[call] = []string{l.id}
			case "Unlock":
				delete(held, key)
			}
			return
		}
		if isSyncLocker(s.typeOf(recvE)) {
			switch name {
			case "Lock", "RLock":
				l := s.classify(recvE)
				l.excl = name == "Lock"
				l.pos = call.Pos()
				l.fn = s.node
				s.record(l, held, name)
				held[l.id] = l
				s.callAdded[call] = []string{l.id}
			case "Unlock", "RUnlock":
				delete(held, exprString(recvE))
			}
			return
		}
		if storeIOMethods[name] && isStoreType(s.typeOf(recvE)) {
			fresh := false
			if (name == "Write" || name == "Free") && len(call.Args) > 0 {
				if aid, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
					if obj := s.info().Uses[aid]; obj != nil && s.fresh[obj] {
						fresh = true
					}
				}
			}
			s.node.sum.ios = append(s.node.sum.ios, ioEvent{
				recv: exprString(recvE), method: name,
				pos: call.Pos(), held: sortedHeld(held), fresh: fresh,
			})
			// fall through: the store implementation's own body (its
			// shard locks) is a module callee like any other.
		}
	}

	targets := s.eng.graph.resolve(s.node.pkg, call)
	kept := targets[:0]
	for _, t := range targets {
		if !isPrimitiveNode(t) {
			kept = append(kept, t)
		}
	}
	if len(kept) == 0 {
		return
	}
	s.node.sum.calls = append(s.node.sum.calls, callEvent{
		targets: kept, pos: call.Pos(), held: sortedHeld(held),
	})
	// The callee's net acquisitions (lockSubtrees' stripes, LockPair's
	// latch pair, opLock's file lock) are now held here.
	var added []string
	for _, t := range kept {
		if t.sum == nil {
			continue
		}
		for _, nh := range t.sum.net {
			// Cap the nesting of inherited net ids: a recursive SCC
			// (the store wrapper chain dispatches through the Store
			// interface back into itself) would otherwise re-nest its
			// members' nets on every fixed-point iteration.
			if strings.Count(nh.id, "call:") >= 2 {
				continue
			}
			l := nh
			l.id = "call:" + t.name + ":" + nh.id
			l.pos = call.Pos()
			l.fn = s.node
			if _, dup := held[l.id]; dup {
				continue
			}
			held[l.id] = l
			added = append(added, l.id)
		}
	}
	s.callAdded[call] = added
}

// record captures one acquisition event with its pre-acquisition context.
func (s *flowScan) record(l heldInfo, held heldSet, via string) {
	s.node.sum.acqs = append(s.node.sum.acqs, acqEvent{
		l:        l,
		held:     sortedHeld(held),
		mapDepth: s.mapDepth,
		site:     s.site,
		via:      via,
	})
}

// classify maps a raw mutex expression to its tier. The shapes mirror the
// real module and the goldens:
//
//   - a field named trieMu is the trie flip lock, whatever it hangs off;
//   - receiver/package-rooted `world` and `structural` are the world tier;
//   - the public File.mu (field mu on a type named File) is the file tier;
//   - other receiver-rooted locks of package store are the store tier
//     ("shard"): the pool shards, the journaling lock, MemStore's map
//     lock all order below the engine;
//   - a local pointer handle (mu := latches.Latch(a)) or a field of a
//     local bucket pointer (lb.mu) is a bucket latch;
//   - a field of a local shard (sh.mu, or any local rooted in a
//     store-package or *shard type) is a pool-shard lock;
//   - a locally declared value mutex (var retryMu sync.Mutex) is a
//     coordination lock, and everything else (observability internals,
//     the latch-table growth lock) is an aux leaf: unranked, checked for
//     cycles but not against the hierarchy.
func (s *flowScan) classify(recvE ast.Expr) heldInfo {
	key := exprString(recvE)
	l := heldInfo{id: key, disp: key, class: classAux, inst: "aux:" + key}

	lastField := ""
	if sel, ok := ast.Unparen(recvE).(*ast.SelectorExpr); ok {
		lastField = sel.Sel.Name
	}
	root := rootIdent(recvE)
	var rootObj *types.Var
	if root != nil {
		rootObj, _ = s.info().ObjectOf(root).(*types.Var)
	}
	rootNamed := namedOf(s.typeOf(ast.Expr(root)))
	if rootObj != nil && rootNamed == nil {
		rootNamed = namedOf(rootObj.Type())
	}

	if lastField == "trieMu" {
		l.class = classFlip
		l.inst = classFlip.String()
		return l
	}

	local := rootObj != nil && !rootObj.IsField() && rootObj != s.recv &&
		rootObj.Parent() != s.node.pkg.Types.Scope()
	if local {
		if lastField == "" {
			// Bare handle: a *sync.RWMutex from the latch table is a
			// bucket latch; a value mutex declared in the function is a
			// local coordination lock (retryMu, slowMu, errMu).
			if _, isPtr := rootObj.Type().(*types.Pointer); isPtr {
				l.class = classLatch
				l.inst = classLatch.String()
			} else {
				l.inst = "aux:" + nodeLabel(s.node) + "." + key
			}
			return l
		}
		inStore := rootNamed != nil && rootNamed.Obj().Pkg() != nil && rootNamed.Obj().Pkg().Name() == "store"
		shardName := rootNamed != nil && strings.Contains(strings.ToLower(rootNamed.Obj().Name()), "shard")
		if inStore || shardName {
			l.class = classShard
			l.inst = classShard.String()
			l.localShape = true
		} else {
			l.class = classLatch
			l.inst = classLatch.String()
		}
		return l
	}

	// Receiver- or package-rooted.
	switch lastField {
	case "world", "structural":
		l.class = classWorld
		l.inst = classWorld.String()
		return l
	}
	if rootNamed != nil && rootNamed.Obj().Name() == "File" && lastField == "mu" {
		l.class = classFile
		l.inst = classFile.String()
		return l
	}
	if rootNamed != nil && rootNamed.Obj().Pkg() != nil && rootNamed.Obj().Pkg().Name() == "store" {
		l.class = classShard
		l.inst = classShard.String()
		return l
	}
	if rootNamed != nil && lastField != "" {
		pkg := ""
		if rootNamed.Obj().Pkg() != nil {
			pkg = rootNamed.Obj().Pkg().Name() + "."
		}
		l.inst = "aux:" + pkg + rootNamed.Obj().Name() + "." + lastField
	}
	return l
}

// propagate runs the top-down passes: the may held-at-entry sets with
// witness edges, then the must-held intersection.
func (e *lockEngine) propagate() {
	for rounds := 0; rounds < 64; rounds++ {
		changed := false
		for _, n := range e.graph.nodes {
			if n.sum == nil {
				continue
			}
			for _, ev := range n.sum.calls {
				var inherited []heldInfo
				for _, h := range ev.held {
					q := h
					if q.fn == n { // qualify once, when leaving the acquiring frame
						q.id = n.name + "|" + h.id
					}
					inherited = append(inherited, q)
				}
				for _, id := range sortedKeys(n.sum.entry) {
					inherited = append(inherited, n.sum.entry[id])
				}
				for _, t := range ev.targets {
					if t == n || t.sum == nil {
						continue
					}
					for _, h := range inherited {
						if t.sum.entry == nil {
							t.sum.entry = make(map[string]heldInfo)
							t.sum.entrySrc = make(map[string]entrySource)
						}
						if _, ok := t.sum.entry[h.id]; ok {
							continue
						}
						t.sum.entry[h.id] = h
						t.sum.entrySrc[h.id] = entrySource{caller: n, callPos: ev.pos}
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}

	// Must-held: start every called function at "everything", intersect
	// over incoming edges; roots (no known caller) hold nothing for sure.
	hasCaller := make(map[*funcNode]bool)
	for _, n := range e.graph.nodes {
		if n.sum == nil {
			continue
		}
		for _, ev := range n.sum.calls {
			for _, t := range ev.targets {
				if t != n {
					hasCaller[t] = true
				}
			}
		}
	}
	for _, n := range e.graph.nodes {
		if n.sum != nil && hasCaller[n] {
			n.sum.entryMust = ^uint16(0)
		}
	}
	for rounds := 0; rounds < 64; rounds++ {
		changed := false
		for _, n := range e.graph.nodes {
			if n.sum == nil {
				continue
			}
			for _, ev := range n.sum.calls {
				at := maskOfHeld(ev.held) | n.sum.entryMust
				for _, t := range ev.targets {
					if t == n || t.sum == nil {
						continue
					}
					if next := t.sum.entryMust & at; next != t.sum.entryMust {
						t.sum.entryMust = next
						changed = true
					}
				}
			}
		}
		if !changed {
			break
		}
	}
}

func sortedKeys(m map[string]heldInfo) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// fullHeld is the local context plus the entry set — everything that may
// be held at an event in n.
func fullHeld(n *funcNode, local []heldInfo) []heldInfo {
	out := append([]heldInfo(nil), local...)
	for _, id := range sortedKeys(n.sum.entry) {
		out = append(out, n.sum.entry[id])
	}
	return out
}

// shortPos renders a position as base-file:line for witness paths.
func (e *lockEngine) shortPos(p token.Pos) string {
	pos := e.fset.Position(p)
	return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
}

// witness renders the interprocedural provenance of an inherited lock:
// where it was acquired and the call path that carried it to n. Locks
// acquired locally render as "".
func (e *lockEngine) witness(n *funcNode, h heldInfo) string {
	if h.fn == n {
		return ""
	}
	var hops []string
	cur := n
	for range 12 {
		if cur.sum == nil {
			break
		}
		src, ok := cur.sum.entrySrc[h.id]
		if !ok {
			break
		}
		hops = append([]string{fmt.Sprintf("%s at %s", nodeLabel(src.caller), e.shortPos(src.callPos))}, hops...)
		cur = src.caller
		if h.fn == cur {
			break
		}
	}
	if len(hops) == 0 {
		return ""
	}
	path := strings.Join(append(hops, nodeLabel(n)), " -> ")
	return fmt.Sprintf(" (acquired at %s in %s; call path: %s)", e.shortPos(h.pos), nodeLabel(h.fn), path)
}

// isStripesType reports whether t is the subtree stripe table (a named
// type Stripes, possibly behind a pointer) — the receiver the stripe
// primitives key on.
func isStripesType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Stripes"
}

// sanctionedStripeSite reports whether fn is one of the ascending
// multi-stripe acquisition sites single-stripe Lock calls are confined to.
func sanctionedStripeSite(fn string) bool {
	switch fn {
	case "Acquire", "lockSubtrees", "acquireSubtreesTimed":
		return true
	}
	return false
}

// terminates reports whether the statement (or block) always transfers
// control away — return, branch, panic — so its lock effects never reach
// the fallthrough path.
func terminates(st ast.Stmt) bool {
	switch x := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(x.List); n > 0 {
			return terminates(x.List[n-1])
		}
	case *ast.IfStmt:
		if x.Else == nil {
			return false
		}
		return terminates(x.Body) && terminates(x.Else)
	}
	return false
}
