package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicField enforces the all-or-nothing rule of sync/atomic: a struct
// field that is accessed atomically anywhere must be accessed atomically
// everywhere. The sharded CLOCK pool and the concurrent file lean on this
// — clockFrame.ref is hammered by readers under a shard read lock while
// the sweep swaps it, and the counter families are polled lock-free by
// thstat — so one plain `f.ref = 0` would be a data race the race
// detector only catches if a test happens to interleave it.
//
// Two field families are checked:
//
//   - raw fields passed by address to the sync/atomic package functions
//     (atomic.LoadInt64(&s.n), ...): every other plain read or write of
//     the same field is flagged;
//   - fields declared with the sync/atomic types (atomic.Int64,
//     atomic.Pointer[T], ...): copying or overwriting the whole field
//     value is flagged (only method calls and address-taking are sound).
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

func runAtomicField(pass *Pass) {
	// Pass 1: collect the raw fields atomically accessed somewhere in this
	// package, and remember the sanctioned &x.f sites.
	rawAtomic := make(map[*types.Var]bool)
	sanctioned := make(map[*ast.SelectorExpr]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := calleeFromPkg(pass.Info, call, "sync/atomic"); obj == nil {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op.String() != "&" {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if f := fieldOf(pass, sel); f != nil {
					rawAtomic[f] = true
					sanctioned[sel] = true
				}
			}
			return true
		})
	}

	// Pass 2: flag plain uses of raw-atomic fields, and value copies of
	// typed-atomic fields.
	for _, file := range pass.Files {
		var stack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			f := fieldOf(pass, sel)
			if f == nil {
				return true
			}
			parent := parentOf(stack)
			if rawAtomic[f] && !sanctioned[sel] && !isAddrOf(parent, sel) {
				pass.Reportf(sel.Pos(),
					"plain access to field %s, which is accessed with sync/atomic elsewhere: every access must go through sync/atomic",
					f.Name())
			}
			if isAtomicTyped(f) && !soundAtomicUse(parent, sel) {
				pass.Reportf(sel.Pos(),
					"field %s has atomic type %s and is copied or overwritten as a value: use its Load/Store methods",
					f.Name(), f.Type().String())
			}
			return true
		}
		ast.Inspect(file, visit)
	}
}

// fieldOf resolves sel to the struct field it selects, or nil.
func fieldOf(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj().(*types.Var)
}

// parentOf returns the node enclosing the top of the stack.
func parentOf(stack []ast.Node) ast.Node {
	if len(stack) < 2 {
		return nil
	}
	return stack[len(stack)-2]
}

// isAddrOf reports whether parent is &sel.
func isAddrOf(parent ast.Node, sel *ast.SelectorExpr) bool {
	un, ok := parent.(*ast.UnaryExpr)
	return ok && un.Op.String() == "&" && un.X == sel
}

// isAtomicTyped reports whether the field's declared type comes from
// sync/atomic (atomic.Int64, atomic.Uint32, atomic.Pointer[T], ...).
func isAtomicTyped(f *types.Var) bool {
	n := namedOf(f.Type())
	return n != nil && n.Obj() != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync/atomic"
}

// soundAtomicUse reports whether a selector of an atomic-typed field is
// used soundly: as the receiver of a method call (x.f.Load()), through an
// address (&x.f), or as the base of a deeper selection. Everything else —
// assignment to the whole field, copying it into a variable, passing it
// by value — is a race or a silent copy of internal state.
func soundAtomicUse(parent ast.Node, sel *ast.SelectorExpr) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X == sel // x.f.Load — f is the base of a method selection
	case *ast.UnaryExpr:
		return p.Op.String() == "&" && p.X == sel
	}
	return false
}
