package analysis

import (
	"go/ast"
)

// ErrDiscipline flags silently dropped errors from the bucket-store
// surface, the write-ahead log surface, and encoding/binary. A
// store.Store error is never benign: a failed Read is a missed bucket, a
// failed Write or Sync is lost durability, a failed Close can hide a
// failed flush (FileStore syncs on close), and the FaultStore injects
// exactly these errors to prove the layers above propagate them. The WAL
// surface is held to the same bar — a dropped Append or Commit error is
// an operation the caller believes durable and the log never promised,
// and a dropped Checkpoint error can truncate records that were never
// folded. Call sites that genuinely cannot act on the error — cleanup on
// an already-failing path — must say so with an explicit `_ =` discard,
// which this analyzer (like errcheck) accepts.
var ErrDiscipline = &Analyzer{
	Name: "errdiscipline",
	Doc:  "flag silently dropped errors from store.Store I/O, the wal surface and encoding/binary",
	Run:  runErrDiscipline,
}

// storeErrMethods are the Store-surface methods whose errors must not be
// dropped.
var storeErrMethods = map[string]bool{
	"Read":     true,
	"ReadView": true,
	"Write":    true,
	"Sync":     true,
	"Close":    true,
	"Alloc":    true,
	"Free":     true,
}

// codecDecoders are the on-disk codec entry points (bucket pages, trie
// pages, bound headers) whose errors must not be dropped: a decode error
// is detected corruption or a future format version, and discarding it
// turns either into silently missing data.
var codecDecoders = map[string]bool{
	"DecodeBinary": true,
	"DecodeBound":  true,
}

// walErrMethods are the write-ahead-log-surface methods (Log and Device)
// whose errors must not be dropped.
var walErrMethods = map[string]bool{
	"Append":     true,
	"Commit":     true,
	"Checkpoint": true,
	"Sync":       true,
	"TruncateTo": true,
	"Contents":   true,
	"Close":      true,
}

func runErrDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			var how string
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
				how = "discarded"
			case *ast.DeferStmt:
				call = st.Call
				how = "discarded by defer"
			case *ast.GoStmt:
				call = st.Call
				how = "discarded by go"
			}
			if call == nil || !returnsError(pass.Info, call) {
				return true
			}
			if _, recv, name, ok := methodCall(pass.Info, call); ok {
				t := pass.Info.TypeOf(recv)
				switch {
				case storeErrMethods[name] && isStoreType(t):
					pass.Reportf(call.Pos(),
						"error from %s.%s %s: store I/O errors must be handled or explicitly dropped with `_ =`",
						exprString(recv), name, how)
				case walErrMethods[name] && isWALType(t):
					pass.Reportf(call.Pos(),
						"error from %s.%s %s: write-ahead log errors must be handled or explicitly dropped with `_ =` — a dropped commit is a silently non-durable operation",
						exprString(recv), name, how)
				}
				return true
			}
			for _, path := range []string{"encoding/binary"} {
				if obj := calleeFromPkg(pass.Info, call, path); obj != nil {
					pass.Reportf(call.Pos(),
						"error from %s.%s %s: serialization errors must be handled or explicitly dropped with `_ =`",
						path, obj.Name(), how)
				}
			}
			if obj := calleeFunc(pass.Info, call); obj != nil && codecDecoders[obj.Name()] {
				pass.Reportf(call.Pos(),
					"error from %s %s: a decode error is detected corruption or a future format version and must be handled or explicitly dropped with `_ =`",
					obj.Name(), how)
			}
			return true
		})
	}
}
