package analysis

import (
	"go/ast"
	"strings"
)

// Durability flags non-durable writes to the repository's persistent
// files. The crash-consistency contract rests on three idioms: bytes
// destined for a *.th file go through store.WriteFileDurable (os.WriteFile
// leaves them in the page cache, where a power cut eats them), a
// rename installing a *.th file is followed by store.SyncDir on the
// parent directory (the rename itself is metadata the directory must
// flush), and a write-ahead-log truncation (TruncateTo) is followed by a
// Sync in the same function — an unsynced truncation can resurrect
// discarded log records after a crash, replaying operations a checkpoint
// already folded. A bare os.WriteFile, an unaccompanied os.Rename on a
// *.th path, or an unsynced log truncation is exactly the torn-state bug
// the crash harness exists to catch, so it fails the lint gate instead of
// waiting for a power cut.
var Durability = &Analyzer{
	Name: "durability",
	Doc:  "flag os.WriteFile/os.Rename on *.th paths and unsynced wal truncations that skip the fsync discipline",
	Run:  runDurability,
}

func runDurability(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			syncsDir := false
			syncs := false
			var renames []*ast.CallExpr
			var truncates []*ast.CallExpr
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				switch calleeName(pass, call) {
				case "os.WriteFile":
					if mentionsTHPath(call) {
						pass.Reportf(call.Pos(),
							"os.WriteFile on a *.th path is not durable: use store.WriteFileDurable so the bytes are fsynced before use")
					}
				case "os.Rename":
					if mentionsTHPath(call) {
						renames = append(renames, call)
					}
				case "store.SyncDir", "SyncDir", "store.WriteFileDurable", "WriteFileDurable":
					syncsDir = true
				}
				if _, recv, name, ok := methodCall(pass.Info, call); ok && isWALType(pass.Info.TypeOf(recv)) {
					switch name {
					case "TruncateTo":
						truncates = append(truncates, call)
					case "Sync":
						syncs = true
					}
				}
				return true
			})
			if !syncsDir {
				for _, call := range renames {
					pass.Reportf(call.Pos(),
						"os.Rename installing a *.th file without store.SyncDir on the parent directory: the rename is not durable until the directory is fsynced")
				}
			}
			// A truncation inside a Device implementation is the primitive
			// itself, not a use of it; only call sites outside the device
			// (Log code, recovery paths) owe the pairing.
			if !syncs && !isDeviceMethod(pass, fn) {
				for _, call := range truncates {
					pass.Reportf(call.Pos(),
						"wal TruncateTo without a Sync in the same function: the truncation is buffered, and a crash can resurrect log records a checkpoint already folded")
				}
			}
		}
	}
}

// isDeviceMethod reports whether fn is a method on a wal Device
// implementation (receiver type in the wal surface but not Log).
func isDeviceMethod(pass *Pass, fn *ast.FuncDecl) bool {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return false
	}
	t := pass.Info.TypeOf(fn.Recv.List[0].Type)
	if t == nil || !isWALType(t) {
		return false
	}
	n := namedOf(t)
	return n != nil && n.Obj() != nil && n.Obj().Name() != "Log"
}

// calleeName renders the callee as pkg.Func / recv.Method / Func for the
// small vocabulary this analyzer matches.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return ""
}

// mentionsTHPath reports whether any argument subtree contains a string
// literal naming a .th file (directly or via filepath.Join pieces).
func mentionsTHPath(call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if lit, ok := n.(*ast.BasicLit); ok && strings.Contains(lit.Value, ".th") {
				found = true
			}
			return !found
		})
	}
	return found
}
