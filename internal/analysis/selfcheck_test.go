package analysis

import "testing"

// TestThvetClean runs the full analyzer suite against this repository
// itself, so `go test ./...` — the tier-1 gate — fails the moment a
// change violates a machine-checked invariant, even where `make lint` or
// CI is not wired in. It is the test-shaped twin of `go run ./cmd/thvet`.
func TestThvetClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadModule returned no packages")
	}
	// The interprocedural analyzers must be part of the suite this test
	// runs: dropping them from All() would silently stop the self-lint
	// from covering the lock graph and the publication protocol.
	for _, name := range []string{"lockgraph", "publishsafety"} {
		if ByName(name) == nil {
			t.Fatalf("analyzer %q missing from All(): the self-lint no longer covers it", name)
		}
	}
	diags := Run(All(), pkgs)
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Errorf("thvet found %d violation(s); fix them or, if the invariant itself changed, adjust internal/analysis", len(diags))
	}
}
