package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural
// analyzers (lockgraph, publishsafety) walk: one node per function
// declaration and per function literal, edges resolved through the
// type-checker — static calls by object identity, method calls through
// go/types.Selections, and interface-method calls fanned out to every
// module type implementing the interface (a may-analysis: the real
// callee is one of them). Standard-library callees have no bodies in the
// load and are simply absent, which is the right conservative shape for
// lock analysis: the stdlib does not touch this module's locks.

// funcNode is one analyzable function body: a declaration or a literal.
type funcNode struct {
	obj  *types.Func   // nil for literals
	decl *ast.FuncDecl // nil for literals
	lit  *ast.FuncLit  // nil for declarations
	pkg  *Package
	// parent is the enclosing funcNode of a literal (nil for decls):
	// the lexical chain publishsafety uses to scope engine methods.
	parent *funcNode
	// name is the diagnostic-friendly label: "core.(*ConcurrentFile).putSlow",
	// "core.putBatch$1" for literals.
	name string

	// sum is the function's lock summary, filled by the lockflow engine.
	sum *funcSummary
}

func (n *funcNode) pos() token.Pos {
	if n.decl != nil {
		return n.decl.Pos()
	}
	return n.lit.Pos()
}

func (n *funcNode) body() *ast.BlockStmt {
	if n.decl != nil {
		return n.decl.Body
	}
	return n.lit.Body
}

// receiverNamed returns the named type of the node's method receiver
// (through one pointer), or nil for plain functions and literals.
func (n *funcNode) receiverNamed() *types.Named {
	if n.obj == nil {
		return nil
	}
	sig, ok := n.obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return namedOf(sig.Recv().Type())
}

// callGraph indexes every function body of a load and resolves call
// expressions to candidate callees.
type callGraph struct {
	nodes []*funcNode
	byObj map[*types.Func]*funcNode
	byLit map[*ast.FuncLit]*funcNode
	// impls caches interface-method resolution: interface method object
	// -> concrete method objects of module types implementing it.
	impls map[*types.Func][]*types.Func
	// namedTypes are every named (non-alias) type declared in the module,
	// the candidate set for interface resolution.
	namedTypes []*types.Named
}

// buildCallGraph collects every function declaration and literal of the
// load into nodes, in deterministic (package, position) order.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{
		byObj: make(map[*types.Func]*funcNode),
		byLit: make(map[*ast.FuncLit]*funcNode),
		impls: make(map[*types.Func][]*types.Func),
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names()
		sort.Strings(names)
		for _, name := range names {
			if tn, ok := scope.Lookup(name).(*types.TypeName); ok && !tn.IsAlias() {
				if n, ok := tn.Type().(*types.Named); ok {
					g.namedTypes = append(g.namedTypes, n)
				}
			}
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				node := &funcNode{
					obj:  obj,
					decl: fd,
					pkg:  pkg,
					name: declName(pkg, fd),
				}
				g.nodes = append(g.nodes, node)
				if obj != nil {
					g.byObj[obj] = node
				}
				g.collectLits(pkg, node, fd.Body)
			}
		}
	}
	return g
}

// collectLits registers every function literal under body as a child
// node of parent, numbered in source order.
func (g *callGraph) collectLits(pkg *Package, parent *funcNode, body ast.Node) {
	seq := 0
	var walk func(n ast.Node, p *funcNode)
	walk = func(n ast.Node, p *funcNode) {
		ast.Inspect(n, func(x ast.Node) bool {
			lit, ok := x.(*ast.FuncLit)
			if !ok || x == n {
				return true
			}
			seq++
			node := &funcNode{
				lit:    lit,
				pkg:    pkg,
				parent: p,
				name:   fmt.Sprintf("%s$%d", p.name, seq),
			}
			g.nodes = append(g.nodes, node)
			g.byLit[lit] = node
			walk(lit.Body, node)
			return false
		})
	}
	walk(body, parent)
}

// declName renders "pkg.Func" / "pkg.(*Recv).Method" for diagnostics.
func declName(pkg *Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		recv := ""
		switch x := t.(type) {
		case *ast.StarExpr:
			recv = "(*" + typeExprName(x.X) + ")"
		default:
			recv = typeExprName(t)
		}
		name = recv + "." + name
	}
	return pkg.Types.Name() + "." + name
}

func typeExprName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver
		return typeExprName(x.X)
	case *ast.IndexListExpr:
		return typeExprName(x.X)
	default:
		return "?"
	}
}

// resolve returns the candidate callee nodes of a call expression in
// pkg, in deterministic order. Unresolvable calls (func-typed variables,
// stdlib callees, builtins, conversions) return nil.
func (g *callGraph) resolve(pkg *Package, call *ast.CallExpr) []*funcNode {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		if n := g.byLit[fun]; n != nil {
			return []*funcNode{n}
		}
	case *ast.Ident:
		if f, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if n := g.byObj[f]; n != nil {
				return []*funcNode{n}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			m, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			if isInterfaceMethod(m) {
				return g.resolveInterface(m)
			}
			if n := g.byObj[m]; n != nil {
				return []*funcNode{n}
			}
			return nil
		}
		// Package-qualified function call.
		if f, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if n := g.byObj[f]; n != nil {
				return []*funcNode{n}
			}
		}
	}
	return nil
}

func isInterfaceMethod(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// resolveInterface fans an interface-method call out to the concrete
// method of every module type implementing the interface.
func (g *callGraph) resolveInterface(m *types.Func) []*funcNode {
	concrete, ok := g.impls[m]
	if !ok {
		sig := m.Type().(*types.Signature)
		iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
		if iface != nil {
			for _, n := range g.namedTypes {
				if types.IsInterface(n.Underlying()) {
					continue
				}
				ptr := types.NewPointer(n)
				if !types.Implements(n, iface) && !types.Implements(ptr, iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(ptr, true, m.Pkg(), m.Name())
				if cf, ok := obj.(*types.Func); ok && cf != m {
					concrete = append(concrete, cf)
				}
			}
		}
		sort.Slice(concrete, func(i, j int) bool {
			return concrete[i].FullName() < concrete[j].FullName()
		})
		g.impls[m] = concrete
	}
	var out []*funcNode
	for _, cf := range concrete {
		if n := g.byObj[cf]; n != nil {
			out = append(out, n)
		}
	}
	return out
}

// sccOrder returns the nodes grouped into strongly connected components
// in reverse topological order (callees before callers), so one
// bottom-up pass over the groups — iterating inside each group to a
// fixed point — stabilizes every summary. Tarjan's algorithm, iterative
// over the static call edges.
func (g *callGraph) sccOrder(edges map[*funcNode][]*funcNode) [][]*funcNode {
	index := make(map[*funcNode]int)
	low := make(map[*funcNode]int)
	onStack := make(map[*funcNode]bool)
	var stack []*funcNode
	var sccs [][]*funcNode
	next := 0

	type frame struct {
		n  *funcNode
		ei int
	}
	for _, root := range g.nodes {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			n := f.n
			if f.ei == 0 {
				index[n] = next
				low[n] = next
				next++
				stack = append(stack, n)
				onStack[n] = true
			}
			advanced := false
			for f.ei < len(edges[n]) {
				m := edges[n][f.ei]
				f.ei++
				if _, seen := index[m]; !seen {
					work = append(work, frame{n: m})
					advanced = true
					break
				}
				if onStack[m] && low[m] < low[n] {
					low[n] = low[m]
				}
			}
			if advanced {
				continue
			}
			if low[n] == index[n] {
				var scc []*funcNode
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
		}
	}
	return sccs
}

// nodeLabel shortens a node name for witness paths ("core.(*ConcurrentFile).putSlow").
func nodeLabel(n *funcNode) string {
	return strings.TrimPrefix(n.name, "main.")
}
