package analysis

import (
	_ "embed"
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// LockHierarchyTable is the checked-in machine-readable hierarchy
// (internal/analysis/lockhierarchy.txt, mirrored in DESIGN.md). The
// hierarchy the lockgraph analyzer infers from the acquisition graph must
// byte-match it; `thvet -graph hierarchy` emits the inferred text and CI
// diffs the two.
//
//go:embed lockhierarchy.txt
var LockHierarchyTable string

// LockGraph checks the engine's lock discipline as properties of the
// whole-program acquisition graph instead of per-site rules: every edge
// "B acquired while A held" must point strictly downward in the six-tier
// hierarchy (file > world > stripe > latch > flip > shard), the latch
// tier additionally keeps its one-at-a-time/ascending-order discipline
// (LockPair is the sole two-latch site; no latching inside map
// iteration), single-stripe locking stays confined to the ascending
// acquisition sites, store I/O never runs under a pool-shard latch, and
// the full graph — aux leaf locks included — must be acyclic.
var LockGraph = &Analyzer{
	Name:      "lockgraph",
	Doc:       "interprocedural lock-acquisition graph: hierarchy inversions, latch discipline, deadlock cycles",
	RunModule: runLockGraph,
}

// GraphEdge is one acquisition-order edge for the -graph renderings.
type GraphEdge struct {
	From, To string // graph node labels (tier names, or aux instance labels)
	At       string // first witness position, base-file:line
	In       string // function containing the first witness acquisition
	Count    int    // distinct acquisition events observed
}

// LockGraphResult is the assembled graph `thvet -graph` renders.
type LockGraphResult struct {
	Edges []GraphEdge
	// Order is the inferred hierarchy, outermost first: a topological
	// sort of the six tiers over the observed tier-to-tier edges, with
	// the canonical order as the deterministic tie-break for tiers the
	// program never orders against each other.
	Order []lockClass
}

// BuildLockGraph computes the acquisition graph of a load without
// reporting diagnostics (the `thvet -graph` entry point).
func BuildLockGraph(pkgs []*Package) *LockGraphResult {
	if len(pkgs) == 0 {
		return &LockGraphResult{Order: append([]lockClass(nil), hierarchyOrder...)}
	}
	return assembleGraph(engineFor(pkgs))
}

// edgeKey orders graph nodes: ranked tiers by rank, aux labels after,
// alphabetically.
func edgeNodeKey(label string) string {
	for _, c := range hierarchyOrder {
		if label == c.String() {
			return fmt.Sprintf("0%d", c.rank())
		}
	}
	return "1" + label
}

func assembleGraph(eng *lockEngine) *LockGraphResult {
	type ek struct{ from, to string }
	firsts := make(map[ek]GraphEdge)
	for _, n := range eng.graph.nodes {
		if n.sum == nil || isPrimitiveNode(n) {
			continue
		}
		for _, ev := range n.sum.acqs {
			for _, prior := range fullHeld(n, ev.held) {
				if prior.inst == ev.l.inst {
					continue
				}
				k := ek{prior.inst, ev.l.inst}
				e, seen := firsts[k]
				if !seen {
					e = GraphEdge{From: prior.inst, To: ev.l.inst, At: eng.shortPos(ev.l.pos), In: nodeLabel(n)}
				}
				e.Count++
				firsts[k] = e
			}
		}
	}
	res := &LockGraphResult{}
	for _, e := range firsts {
		res.Edges = append(res.Edges, e)
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		a, b := res.Edges[i], res.Edges[j]
		ka, kb := edgeNodeKey(a.From), edgeNodeKey(b.From)
		if ka != kb {
			return ka < kb
		}
		return edgeNodeKey(a.To) < edgeNodeKey(b.To)
	})
	res.Order = inferOrder(res.Edges)
	return res
}

// inferOrder topologically sorts the six tiers over the observed
// tier-to-tier edges (edge A→B: A is outer). Tiers the program never
// orders fall back to canonical rank; if the observed edges are cyclic
// (an inversion, reported separately) the contested tier also falls back
// to canonical rank so the emitted table stays deterministic.
func inferOrder(edges []GraphEdge) []lockClass {
	tier := make(map[string]lockClass)
	for _, c := range hierarchyOrder {
		tier[c.String()] = c
	}
	incoming := make(map[lockClass]map[lockClass]bool)
	for _, e := range edges {
		from, okF := tier[e.From]
		to, okT := tier[e.To]
		if !okF || !okT || from == to {
			continue
		}
		if incoming[to] == nil {
			incoming[to] = make(map[lockClass]bool)
		}
		incoming[to][from] = true
	}
	remaining := append([]lockClass(nil), hierarchyOrder...)
	var order []lockClass
	for len(remaining) > 0 {
		pick := -1
		for i, c := range remaining {
			free := true
			for _, u := range remaining {
				if u != c && incoming[c][u] {
					free = false
					break
				}
			}
			if free {
				pick = i
				break
			}
		}
		if pick < 0 {
			pick = 0 // observed cycle: canonical fallback
		}
		order = append(order, remaining[pick])
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return order
}

// tierDesc is the per-tier description line of lockhierarchy.txt; the
// emitted text is header + "name\tdesc" per tier in inferred order.
var tierDesc = map[lockClass]string{
	classFile:   "public File.mu — serializes the exported API surface per handle",
	classWorld:  "engine world lock (ConcurrentFile.world / concurrent.File.structural) — exclusive mode quiesces every writer for scrub, meta save, invariant checks",
	classStripe: "subtree stripes (concurrent.Stripes) — ascending, deduped subtree sets for structural changes",
	classLatch:  "per-bucket RW latches — at most one held per worker outside LockPair, visited in ascending address order",
	classFlip:   "trie flip lock (trieMu) — the engine's innermost lock: the publication window for split/merge trie flips and arena swaps",
	classShard:  "store-tier locks (cache shards, journal, MemStore map) — below the engine; pool-shard latches never cover store I/O",
}

const hierarchyHeader = `# Lock hierarchy of the concurrent engine, outermost first. Generated by
# ` + "`thvet -graph hierarchy`" + ` from the whole-program acquisition graph; an
# edge "B acquired while A held" must point strictly downward here.
`

// HierarchyText renders the inferred hierarchy in the lockhierarchy.txt
// format; when the program's acquisition edges agree with the checked-in
// table the two are byte-identical.
func (r *LockGraphResult) HierarchyText() string {
	var b strings.Builder
	b.WriteString(hierarchyHeader)
	for _, c := range r.Order {
		fmt.Fprintf(&b, "%s\t%s\n", c.String(), tierDesc[c])
	}
	return b.String()
}

// HierarchyMatches reports whether the inferred hierarchy byte-matches
// the checked-in lockhierarchy.txt.
func (r *LockGraphResult) HierarchyMatches() bool {
	return r.HierarchyText() == LockHierarchyTable
}

// DOT renders the acquisition graph for `thvet -graph dot`.
func (r *LockGraphResult) DOT() string {
	var b strings.Builder
	b.WriteString("digraph lockgraph {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\"];\n")
	nodes := map[string]bool{}
	for _, e := range r.Edges {
		nodes[e.From] = true
		nodes[e.To] = true
	}
	var labels []string
	for l := range nodes {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool { return edgeNodeKey(labels[i]) < edgeNodeKey(labels[j]) })
	for _, l := range labels {
		style := ""
		if strings.HasPrefix(l, "aux:") {
			style = ", style=dashed"
		}
		fmt.Fprintf(&b, "  %q [label=%q%s];\n", l, strings.TrimPrefix(l, "aux:"), style)
	}
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.From, e.To, fmt.Sprintf("%s (%d)", e.At, e.Count))
	}
	b.WriteString("}\n")
	return b.String()
}

// Markdown renders the hierarchy and edge table for `thvet -graph md`.
func (r *LockGraphResult) Markdown() string {
	var b strings.Builder
	b.WriteString("## Inferred lock hierarchy (outermost first)\n\n")
	for i, c := range r.Order {
		fmt.Fprintf(&b, "%d. **%s** — %s\n", i+1, c.String(), tierDesc[c])
	}
	b.WriteString("\n## Acquisition edges (B acquired while A held)\n\n")
	b.WriteString("| held (A) | acquired (B) | events | first witness |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, e := range r.Edges {
		fmt.Fprintf(&b, "| %s | %s | %d | `%s` in `%s` |\n",
			strings.TrimPrefix(e.From, "aux:"), strings.TrimPrefix(e.To, "aux:"), e.Count, e.At, e.In)
	}
	return b.String()
}

func runLockGraph(mp *ModulePass) {
	if len(mp.Pkgs) == 0 {
		return
	}
	eng := engineFor(mp.Pkgs)
	reported := make(map[string]bool)
	report := func(pos token.Pos, msg string) {
		key := fmt.Sprintf("%d|%s", pos, msg)
		if reported[key] {
			return
		}
		reported[key] = true
		mp.Reportf(pos, "%s", msg)
	}

	for _, n := range eng.graph.nodes {
		if n.sum == nil || isPrimitiveNode(n) {
			continue
		}
		for _, ev := range n.sum.acqs {
			l := ev.l

			// Stripe discipline: single-stripe Lock only inside the
			// ascending multi-acquisition sites; never inside map
			// iteration (map order is not ascending).
			if l.class == classStripe {
				if ev.via == "Lock" && !sanctionedStripeSite(ev.site) {
					report(l.pos, fmt.Sprintf("subtree stripe %s locked directly in %s: single-stripe locking is confined to the ascending acquisition sites (Acquire, lockSubtrees, acquireSubtreesTimed), which sort and dedup their key set", l.disp, ev.site))
				}
				if ev.mapDepth > 0 {
					report(l.pos, fmt.Sprintf("subtree stripe %s acquired inside iteration over a map: map order is not ascending; collect the stripe keys, sort them, then lock", l.disp))
				}
			}
			if l.class == classLatch && ev.mapDepth > 0 {
				report(l.pos, fmt.Sprintf("%s acquired inside iteration over a map: map order is not ascending; collect the addresses, sort them, then latch", l.disp))
			}

			for _, prior := range fullHeld(n, ev.held) {
				if prior.id == l.id || prior.inst == l.inst && prior.class != classLatch {
					continue
				}
				w := eng.witness(n, prior)
				switch {
				case prior.class == classFlip:
					// The flip lock is innermost within the engine: the
					// only sanctioned out-edges are into the store tier
					// (the publication write itself) and aux leaves.
					switch l.class {
					case classStripe:
						report(l.pos, fmt.Sprintf("subtree stripe %s acquired while flip lock %s is held: the flip lock is the innermost lock; nothing is acquired under it%s", l.disp, prior.disp, w))
					case classFile, classWorld, classLatch, classFlip:
						report(l.pos, fmt.Sprintf("lock %s acquired while flip lock %s is held: the flip lock is the innermost lock; nothing is acquired under it%s", l.disp, prior.disp, w))
					}
				case prior.class == classLatch:
					switch l.class {
					case classLatch:
						if ev.site != "LockPair" {
							report(l.pos, fmt.Sprintf("bucket latch %s acquired while %s is held: hold at most one latch at a time and visit buckets in ascending address order (LockPair is the sole two-latch site)%s", l.disp, prior.disp, w))
						}
					case classStripe:
						report(l.pos, fmt.Sprintf("subtree stripe %s acquired while bucket latch %s is held: the hierarchy is stripe > latch; derive and lock the stripe set before latching%s", l.disp, prior.disp, w))
					case classWorld, classFile:
						report(l.pos, fmt.Sprintf("structural lock %s acquired while bucket latch %s is held: the hierarchy is structural > latch; release the latch and retry under the structural lock%s", l.disp, prior.disp, w))
					}
				case !prior.class.ranked() || !l.class.ranked():
					// aux leaves are unranked: cycle detection below is
					// their only ordering check.
				case l.class.rank() <= prior.class.rank() && l.class != prior.class:
					report(l.pos, fmt.Sprintf("%s (%s tier) acquired while %s (%s tier) is held: the engine's lock hierarchy is file > world > stripe > latch > flip > shard%s", l.disp, l.class, prior.disp, prior.class, w))
				}
			}
		}

		// Pool-shard latches never cover store I/O: the fill path reads
		// the store outside the shard's critical section.
		for _, io := range n.sum.ios {
			for _, prior := range fullHeld(n, io.held) {
				if prior.class == classShard && prior.localShape {
					report(io.pos, fmt.Sprintf("store I/O %s.%s while shard latch %s is held: fill misses outside the latch%s", io.recv, io.method, prior.disp, eng.witness(n, prior)))
				}
			}
		}
	}

	reportCycles(mp, eng, report)
}

// reportCycles finds strongly connected components of the acquisition
// graph. Edges already reported as hierarchy inversions (upward
// ranked-to-ranked) are excluded — the remaining graph can only cycle
// through aux locks, which have no rank and whose ordering bugs would
// otherwise go unseen.
func reportCycles(mp *ModulePass, eng *lockEngine, report func(token.Pos, string)) {
	type witness struct {
		pos  token.Pos
		disp string
	}
	adj := make(map[string]map[string]witness)
	for _, n := range eng.graph.nodes {
		if n.sum == nil || isPrimitiveNode(n) {
			continue
		}
		for _, ev := range n.sum.acqs {
			l := ev.l
			for _, prior := range fullHeld(n, ev.held) {
				if prior.inst == l.inst {
					continue
				}
				if prior.class.ranked() && l.class.ranked() && l.class.rank() <= prior.class.rank() {
					continue // inversion, reported above
				}
				if adj[prior.inst] == nil {
					adj[prior.inst] = make(map[string]witness)
				}
				if _, ok := adj[prior.inst][l.inst]; !ok {
					adj[prior.inst][l.inst] = witness{pos: l.pos, disp: l.disp}
				}
			}
		}
	}
	var labels []string
	seenL := map[string]bool{}
	addL := func(l string) {
		if !seenL[l] {
			seenL[l] = true
			labels = append(labels, l)
		}
	}
	for from, tos := range adj {
		addL(from)
		for to := range tos {
			addL(to)
		}
	}
	sort.Strings(labels)

	// Iterative Tarjan over the label graph.
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	next := 0
	var sccs [][]string
	sortedTos := func(from string) []string {
		var out []string
		for to := range adj[from] {
			out = append(out, to)
		}
		sort.Strings(out)
		return out
	}
	type frame struct {
		n   string
		tos []string
		ei  int
	}
	for _, root := range labels {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root, tos: sortedTos(root)}}
		for len(work) > 0 {
			f := &work[len(work)-1]
			if f.ei == 0 {
				index[f.n] = next
				low[f.n] = next
				next++
				stack = append(stack, f.n)
				onStack[f.n] = true
			}
			advanced := false
			for f.ei < len(f.tos) {
				m := f.tos[f.ei]
				f.ei++
				if _, seen := index[m]; !seen {
					work = append(work, frame{n: m, tos: sortedTos(m)})
					advanced = true
					break
				}
				if onStack[m] && low[m] < low[f.n] {
					low[f.n] = low[m]
				}
			}
			if advanced {
				continue
			}
			if low[f.n] == index[f.n] {
				var scc []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == f.n {
						break
					}
				}
				if len(scc) > 1 {
					sccs = append(sccs, scc)
				}
			}
			n := f.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				p := work[len(work)-1].n
				if low[n] < low[p] {
					low[p] = low[n]
				}
			}
		}
	}

	for _, scc := range sccs {
		sort.Strings(scc)
		inSCC := make(map[string]bool, len(scc))
		for _, l := range scc {
			inSCC[l] = true
		}
		var parts []string
		var at token.Pos
		for _, from := range scc {
			for _, to := range sortedTos(from) {
				if !inSCC[to] {
					continue
				}
				w := adj[from][to]
				if at == token.NoPos {
					at = w.pos
				}
				parts = append(parts, fmt.Sprintf("%s -> %s (%s)",
					strings.TrimPrefix(from, "aux:"), strings.TrimPrefix(to, "aux:"), eng.shortPos(w.pos)))
			}
		}
		report(at, fmt.Sprintf("potential deadlock: lock-order cycle %s", strings.Join(parts, ", ")))
	}
}
