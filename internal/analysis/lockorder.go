package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockOrder machine-checks the latch discipline of the concurrent layers:
//
//  1. a goroutine holds at most one bucket latch at a time — with one
//     sanctioned exception: a function declaration named LockPair, the
//     guarded-merge primitive, which acquires exactly two latches in
//     ascending address order (the cycle-freedom argument in
//     internal/concurrent/latch.go). Everywhere else, the batch paths
//     dedup latches per bucket group and visit groups in ascending
//     address order precisely so that no latch is ever acquired while
//     another is held;
//  2. latches are never acquired while ranging over a map — map iteration
//     order is not ascending, so latching inside it silently breaks the
//     ordering that rule 1's argument rests on (partition sorts the
//     groups first for exactly this reason);
//  3. no store I/O runs while a shard latch is held — the sharded CLOCK
//     pool's contract is that a miss fill reads the backing store outside
//     the shard lock, otherwise one slow disk read stalls every hit on
//     the shard;
//  4. a structural (receiver- or package-rooted) lock is never acquired
//     while a bucket latch is held — the engine's hierarchy is public
//     file lock > world lock > subtree stripe > bucket latch > trie flip
//     lock > shard latch, so an overflow discovered under a latch must
//     release it and retry from the stripe, not lock upward;
//  5. a subtree stripe (any method named Lock or Acquire on a
//     Stripes-typed receiver) is never acquired while a bucket latch is
//     held — stripes order above latches for the same reason rule 4
//     gives, and the maintenance path derives its whole stripe set
//     before latching anything;
//  6. stripes are never acquired inside map iteration — the multi-stripe
//     cycle-freedom argument is ascending index order, which map order
//     does not provide (the batch path sorts the round's stripe keys
//     first);
//  7. the single-stripe primitive Stripes.Lock is confined to the
//     sanctioned ascending acquisition sites — Stripes.Acquire and the
//     engine's lockSubtrees/acquireSubtreesTimed — recognized, like
//     LockPair, by name: those sites sort and dedup their key set, so a
//     direct Lock anywhere else is a second-stripe deadlock waiting for a
//     colliding key.
//
// "Latch" here is any sync.Mutex/RWMutex reached through a local variable
// or parameter: those are the per-bucket and per-shard locks handed out by
// lookups. The two kinds are told apart by shape — a bucket latch is a
// bare handle returned by the latch table (mu, lo, hi), a shard latch is a
// field of a local shard (sh.mu, lb.mu) — because their rules differ:
// bucket latches exist to guard that bucket's store I/O (rule 3 does not
// apply), while shard latches must never cover I/O. Locks reached through
// the method receiver (f.structural, f.mu, c.mu) are the coarse structural
// locks, which by design are held across latch acquisitions and engine
// calls; they are exempt from rules 1 and 3 but anchor rule 4.
//
// One receiver-rooted lock is special: a field named trieMu is the trie
// flip lock, which by design sits BELOW the bucket latches (a split
// publishes its trie flip while still holding the old bucket's latch).
// It is therefore exempt from rule 4 — and pays for it with the strictest
// rule of all: nothing, latch or stripe or structural lock, is acquired
// while the flip lock is held. Its critical sections are the publication
// flips themselves; anything more would rebuild the global bottleneck the
// stripes exist to shard.
//
// The scan is branch-aware but intentionally conservative: a release
// inside a non-terminating branch counts as a release on the fallthrough
// path (avoiding false positives), and each loop body is assumed
// lock-balanced. Function literals are scanned as independent goroutine
// bodies, which is what they are in the fan-out worker pool.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "latch discipline: one bucket latch at a time (LockPair excepted), none inside map iteration, no store I/O under a shard latch, no structural lock under a latch, stripes above latches and only via the ascending sites, nothing under the trie flip lock",
	Run:  runLockOrder,
}

// storeIOMethods are the Store-surface calls rule 3 watches for.
var storeIOMethods = map[string]bool{
	"Read":     true,
	"ReadView": true,
	"Write":    true,
	"Alloc":    true,
	"Free":     true,
	"Sync":     true,
}

func runLockOrder(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			s := &lockScan{pass: pass, recv: funcReceiver(pass.Info, fn), fnName: fn.Name.Name}
			s.scanBlock(fn.Body, newHeldSet())
			s.drainFuncLits()
		}
	}
}

// heldLock is one mutex the scan believes is currently held.
type heldLock struct {
	key   string // canonical expression, e.g. "lb.mu"
	local bool   // rooted in a local/param (a latch), not the receiver
	flip  bool   // the trie flip lock (a field named trieMu): innermost
}

type heldSet map[string]heldLock

func newHeldSet() heldSet { return make(heldSet) }

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// intersect keeps only the locks held in both sets (the safe merge after
// a branch that may have released).
func (h heldSet) intersect(o heldSet) {
	for k := range h {
		if _, ok := o[k]; !ok {
			delete(h, k)
		}
	}
}

func (h heldSet) anyLocal() (heldLock, bool) {
	for _, l := range h {
		if l.local {
			return l, true
		}
	}
	return heldLock{}, false
}

// anyBucketLatch finds a held bare latch handle (mu, lo) — the per-bucket
// latches the latch table hands out.
func (h heldSet) anyBucketLatch() (heldLock, bool) {
	for _, l := range h {
		if l.local && !strings.Contains(l.key, ".") {
			return l, true
		}
	}
	return heldLock{}, false
}

// anyShardLatch finds a held field-rooted latch (sh.mu) — the shard locks
// whose critical sections must never cover store I/O.
func (h heldSet) anyShardLatch() (heldLock, bool) {
	for _, l := range h {
		if l.local && strings.Contains(l.key, ".") {
			return l, true
		}
	}
	return heldLock{}, false
}

// anyFlip finds a held trie flip lock — the innermost lock, under which
// nothing else may be acquired.
func (h heldSet) anyFlip() (heldLock, bool) {
	for _, l := range h {
		if l.flip {
			return l, true
		}
	}
	return heldLock{}, false
}

// lockScan walks one function body, tracking held locks statement by
// statement.
type lockScan struct {
	pass     *Pass
	recv     types.Object
	fnName   string // enclosing FuncDecl name (LockPair is rule 1's sanctioned site)
	funcLits []*ast.FuncLit
	mapDepth int // > 0 while lexically inside a range over a map
}

// drainFuncLits scans the function literals encountered, each as an
// independent scope with no inherited locks (a closure run by another
// goroutine starts with nothing held).
func (s *lockScan) drainFuncLits() {
	for len(s.funcLits) > 0 {
		lit := s.funcLits[0]
		s.funcLits = s.funcLits[1:]
		s.scanBlock(lit.Body, newHeldSet())
	}
}

// scanBlock processes stmts sequentially, mutating held.
func (s *lockScan) scanBlock(b *ast.BlockStmt, held heldSet) {
	for _, st := range b.List {
		s.scanStmt(st, held)
	}
}

func (s *lockScan) scanStmt(st ast.Stmt, held heldSet) {
	switch x := st.(type) {
	case *ast.BlockStmt:
		s.scanBlock(x, held)
	case *ast.IfStmt:
		if x.Init != nil {
			s.scanStmt(x.Init, held)
		}
		s.scanExpr(x.Cond, held)
		then := held.clone()
		s.scanBlock(x.Body, then)
		if x.Else != nil {
			alt := held.clone()
			s.scanStmt(x.Else, alt)
			if !terminates(x.Else) {
				held.intersect(alt)
			}
		}
		if !terminates(x.Body) {
			held.intersect(then)
		}
	case *ast.ForStmt:
		if x.Init != nil {
			s.scanStmt(x.Init, held)
		}
		if x.Cond != nil {
			s.scanExpr(x.Cond, held)
		}
		body := held.clone()
		s.scanBlock(x.Body, body)
		if x.Post != nil {
			s.scanStmt(x.Post, body)
		}
	case *ast.RangeStmt:
		s.scanExpr(x.X, held)
		overMap := false
		if t := s.pass.TypeOf(x.X); t != nil {
			_, overMap = t.Underlying().(*types.Map)
		}
		if overMap {
			s.mapDepth++
		}
		body := held.clone()
		s.scanBlock(x.Body, body)
		if overMap {
			s.mapDepth--
		}
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Each case runs with a copy of the current held set; effects do
		// not propagate past the switch (cases are assumed lock-balanced).
		body := held.clone()
		ast.Inspect(st, func(n ast.Node) bool { return s.visitLeaf(n, body) })
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held to the end of the scope;
		// a deferred anything-else is scanned for nested literals only.
		s.scanCallTree(x.Call, held, false)
	case *ast.GoStmt:
		s.scanCallTree(x.Call, held, false)
	case *ast.LabeledStmt:
		s.scanStmt(x.Stmt, held)
	default:
		ast.Inspect(st, func(n ast.Node) bool { return s.visitLeaf(n, held) })
	}
}

// scanExpr processes calls inside a bare expression.
func (s *lockScan) scanExpr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool { return s.visitLeaf(n, held) })
}

// scanCallTree collects nested function literals (and, when effects is
// true, lock/IO events) from a call's argument tree.
func (s *lockScan) scanCallTree(call *ast.CallExpr, held heldSet, effects bool) {
	ast.Inspect(call, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			s.funcLits = append(s.funcLits, lit)
			return false
		}
		if !effects {
			return true
		}
		return s.visitLeaf(n, held)
	})
}

// visitLeaf handles one node of a straight-line statement: queues function
// literals and applies the lock/IO rules to calls. Returns false to stop
// descending (into function literals).
func (s *lockScan) visitLeaf(n ast.Node, held heldSet) bool {
	if lit, ok := n.(*ast.FuncLit); ok {
		s.funcLits = append(s.funcLits, lit)
		return false
	}
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	_, recv, name, ok := methodCall(s.pass.Info, call)
	if !ok {
		return true
	}
	if isStripesType(s.pass.TypeOf(recv)) {
		if name != "Lock" && name != "Acquire" {
			return true
		}
		key := exprString(recv)
		if prior, ok := held.anyFlip(); ok {
			s.pass.Reportf(call.Pos(),
				"subtree stripe %s acquired while flip lock %s is held: the flip lock is the innermost lock; nothing is acquired under it",
				key, prior.key)
		}
		if s.mapDepth > 0 {
			s.pass.Reportf(call.Pos(),
				"subtree stripe %s acquired inside iteration over a map: map order is not ascending; collect the stripe keys, sort them, then lock",
				key)
		}
		if prior, ok := held.anyBucketLatch(); ok {
			s.pass.Reportf(call.Pos(),
				"subtree stripe %s acquired while bucket latch %s is held: the hierarchy is stripe > latch; derive and lock the stripe set before latching",
				key, prior.key)
		}
		if name == "Lock" && !sanctionedStripeSite(s.fnName) {
			s.pass.Reportf(call.Pos(),
				"subtree stripe %s locked directly in %s: single-stripe locking is confined to the ascending acquisition sites (Acquire, lockSubtrees, acquireSubtreesTimed), which sort and dedup their key set",
				key, s.fnName)
		}
		return true
	}
	switch name {
	case "Lock", "RLock":
		if !isSyncLocker(s.pass.TypeOf(recv)) {
			return true
		}
		l := heldLock{key: exprString(recv), local: s.isLocalRoot(recv)}
		l.flip = !l.local && strings.HasSuffix(l.key, "trieMu")
		if prior, ok := held.anyFlip(); ok && prior.key != l.key {
			s.pass.Reportf(call.Pos(),
				"lock %s acquired while flip lock %s is held: the flip lock is the innermost lock; nothing is acquired under it",
				l.key, prior.key)
		}
		if s.mapDepth > 0 && l.local {
			s.pass.Reportf(call.Pos(),
				"%s acquired inside iteration over a map: map order is not ascending; collect the addresses, sort them, then latch",
				l.key)
		}
		if l.local {
			if prior, ok := held.anyLocal(); ok && prior.key != l.key && s.fnName != "LockPair" {
				s.pass.Reportf(call.Pos(),
					"bucket latch %s acquired while %s is held: hold at most one latch at a time and visit buckets in ascending address order (LockPair is the sole two-latch site)",
					l.key, prior.key)
			}
		} else if !l.flip {
			if prior, ok := held.anyBucketLatch(); ok {
				s.pass.Reportf(call.Pos(),
					"structural lock %s acquired while bucket latch %s is held: the hierarchy is structural > latch; release the latch and retry under the structural lock",
					l.key, prior.key)
			}
		}
		held[l.key] = l
	case "Unlock", "RUnlock":
		if !isSyncLocker(s.pass.TypeOf(recv)) {
			return true
		}
		delete(held, exprString(recv))
	default:
		if storeIOMethods[name] && isStoreType(s.pass.TypeOf(recv)) {
			if prior, ok := held.anyShardLatch(); ok {
				s.pass.Reportf(call.Pos(),
					"store I/O %s.%s while shard latch %s is held: fill misses outside the latch",
					exprString(recv), name, prior.key)
			}
		}
	}
	return true
}

// isStripesType reports whether t is the subtree stripe table (a named
// type Stripes, possibly behind a pointer) — the receiver the stripe
// rules key on.
func isStripesType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "Stripes"
}

// sanctionedStripeSite reports whether fn is one of the ascending
// multi-stripe acquisition sites single-stripe Lock calls are confined to.
func sanctionedStripeSite(fn string) bool {
	switch fn {
	case "Acquire", "lockSubtrees", "acquireSubtreesTimed":
		return true
	}
	return false
}

// isLocalRoot reports whether the mutex expression is rooted in a local
// variable or parameter — a latch handle — rather than the receiver or a
// package-level lock.
func (s *lockScan) isLocalRoot(recv ast.Expr) bool {
	id := rootIdent(recv)
	if id == nil {
		return false
	}
	obj := s.pass.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	if s.recv != nil && obj == s.recv {
		return false
	}
	// Package-level mutexes are global locks, not latches.
	if v.Parent() == s.pass.Pkg.Scope() {
		return false
	}
	return true
}

// terminates reports whether the statement (or block) always transfers
// control away — return, branch, panic — so its lock effects never reach
// the fallthrough path.
func terminates(st ast.Stmt) bool {
	switch x := st.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		if n := len(x.List); n > 0 {
			return terminates(x.List[n-1])
		}
	case *ast.IfStmt:
		if x.Else == nil {
			return false
		}
		return terminates(x.Body) && terminates(x.Else)
	}
	return false
}
