package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a scratch module under a temp dir.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, content := range files {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

// TestLoadModuleSkipsTestOnlyPackage: a directory holding only _test.go
// files is not a package of the load — it must be skipped, not break the
// walk.
func TestLoadModuleSkipsTestOnlyPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":                "module scratch\n\ngo 1.22\n",
		"lib/lib.go":            "package lib\n\nfunc Answer() int { return 42 }\n",
		"testonly/only_test.go": "package testonly\n\nimport \"testing\"\n\nfunc TestNothing(t *testing.T) {}\n",
	})
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	var paths []string
	for _, p := range pkgs {
		paths = append(paths, p.Path)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "scratch/lib" {
		t.Fatalf("loaded %v, want exactly [scratch/lib]", paths)
	}
}

// TestLoadModuleImportCycle: cyclic module-internal imports must produce
// a cycle error naming a package on it — not hang or stack-overflow.
func TestLoadModuleImportCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": "module scratch\n\ngo 1.22\n",
		"a/a.go": "package a\n\nimport \"scratch/b\"\n\nvar V = b.V\n",
		"b/b.go": "package b\n\nimport \"scratch/a\"\n\nvar V = a.V\n",
	})
	_, err := LoadModule(root)
	if err == nil {
		t.Fatal("LoadModule on cyclic imports: want error, got nil")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Fatalf("LoadModule cycle error = %q, want it to name the import cycle", err)
	}
}

// TestLoadModuleTypeErrorMidModule: a package failing type-checking must
// fail the whole load with a positioned error naming the package, and
// must not report packages after it as loaded.
func TestLoadModuleTypeErrorMidModule(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod":     "module scratch\n\ngo 1.22\n",
		"bad/bad.go": "package bad\n\nfunc Broken() int { return \"not an int\" }\n",
		"ok/ok.go":   "package ok\n\nfunc Fine() {}\n",
	})
	pkgs, err := LoadModule(root)
	if err == nil {
		t.Fatalf("LoadModule with type error: want error, got %d packages", len(pkgs))
	}
	if !strings.Contains(err.Error(), "type-checking scratch/bad") {
		t.Fatalf("LoadModule type error = %q, want it to name scratch/bad", err)
	}
}

// TestLoadDirTypeError: the golden-test loader surfaces type errors the
// same way.
func TestLoadDirTypeError(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"bad.go": "package bad\n\nvar X int = \"nope\"\n",
	})
	if _, err := LoadDir(token.NewFileSet(), dir); err == nil {
		t.Fatal("LoadDir on type-broken package: want error, got nil")
	}
}

// TestLoadDirEmpty: a directory with no Go files is a load error, not a
// nil-pointer surprise downstream.
func TestLoadDirEmpty(t *testing.T) {
	if _, err := LoadDir(token.NewFileSet(), t.TempDir()); err == nil {
		t.Fatal("LoadDir on empty dir: want error, got nil")
	}
}
