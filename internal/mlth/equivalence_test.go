package mlth

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// TestPagingEquivalence: paging is purely physical — files with tiny page
// capacities and one whose trie never pages must stay observationally
// identical under any operation sequence. This pins the page-split
// machinery (split-node choice, in-order trie splitting, cross-page
// search state) against the unpaged ground truth.
func TestPagingEquivalence(t *testing.T) {
	for _, mode := range []trie.Mode{trie.ModeBasic, trie.ModeTHCL} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			mk := func(pageCap int) *File {
				f, err := New(Config{Capacity: 4, PageCapacity: pageCap, Mode: mode}, store.NewMem())
				if err != nil {
					t.Fatal(err)
				}
				return f
			}
			files := map[string]*File{
				"page5":   mk(5),
				"page9":   mk(9),
				"unpaged": mk(1 << 20),
			}
			rng := rand.New(rand.NewSource(101))
			for step := 0; step < 4000; step++ {
				n := 1 + rng.Intn(6)
				kb := make([]byte, n)
				for i := range kb {
					kb[i] = byte('a' + rng.Intn(5))
				}
				k := string(kb)
				switch rng.Intn(10) {
				case 0, 1, 2, 3, 4, 5:
					for name, f := range files {
						if _, err := f.Put(k, []byte(k)); err != nil {
							t.Fatalf("step %d %s Put(%q): %v", step, name, k, err)
						}
					}
				case 6, 7:
					var want []byte
					var wantErr error
					first := true
					for name, f := range files {
						v, err := f.Get(k)
						if first {
							want, wantErr, first = v, err, false
							continue
						}
						if (err == nil) != (wantErr == nil) || string(v) != string(want) {
							t.Fatalf("step %d %s Get(%q) diverges: %q,%v vs %q,%v",
								step, name, k, v, err, want, wantErr)
						}
					}
				default:
					var wantErr error
					first := true
					for name, f := range files {
						err := f.Delete(k)
						if first {
							wantErr, first = err, false
							continue
						}
						if (err == nil) != (wantErr == nil) {
							t.Fatalf("step %d %s Delete(%q) diverges: %v vs %v", step, name, k, err, wantErr)
						}
						if err != nil && !errors.Is(err, ErrNotFound) {
							t.Fatalf("step %d %s Delete(%q): %v", step, name, k, err)
						}
					}
				}
			}
			// Final states agree completely: count, full ordered scan.
			var scans = map[string][]string{}
			for name, f := range files {
				var got []string
				if err := f.Range("a", "", func(k string, _ []byte) bool {
					got = append(got, k)
					return true
				}); err != nil {
					t.Fatal(err)
				}
				scans[name] = got
				if err := f.CheckInvariants(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			if fmt.Sprint(scans["page5"]) != fmt.Sprint(scans["unpaged"]) ||
				fmt.Sprint(scans["page9"]) != fmt.Sprint(scans["unpaged"]) {
				t.Fatalf("final scans diverge: %d/%d/%d keys",
					len(scans["page5"]), len(scans["page9"]), len(scans["unpaged"]))
			}
			// The paged files really did page.
			if files["page5"].Levels() < 2 || files["page9"].Levels() < 2 {
				t.Fatalf("paged files did not page: levels %d/%d",
					files["page5"].Levels(), files["page9"].Levels())
			}
			t.Logf("%s: %d keys; levels page5=%d page9=%d unpaged=%d",
				mode, files["unpaged"].Len(),
				files["page5"].Levels(), files["page9"].Levels(), files["unpaged"].Levels())
		})
	}
}
