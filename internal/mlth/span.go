package mlth

import (
	"triehash/internal/bucket"
	"triehash/internal/obs"
	"triehash/internal/trie"
)

// Span-carrying variants of the multilevel file's operations, duplicated
// from their plain twins for the same hot-path reason as core's (see
// internal/core/span.go). The multilevel locate — page traversal
// included — is charged to the trie-search stage: pages are trie nodes
// here, and their reads are counted separately by the page-read counter.
// mlth is a deterministic package, so all clock reads stay behind the
// span's methods.

// GetSpan is Get with stage attribution.
func (f *File) GetSpan(key string, sp *obs.Span) ([]byte, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return nil, err
	}
	_, res := f.locate(key)
	sp.Mark(obs.StageTrieSearch)
	if res.Leaf.IsNil() {
		return nil, ErrNotFound
	}
	b, err := f.st.Read(res.Leaf.Addr())
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return nil, err
	}
	v, ok := b.Get(key)
	if !ok {
		return nil, ErrNotFound
	}
	return v, nil
}

// PutSpan is Put with stage attribution; bucket and page splits are
// charged to the split stage.
func (f *File) PutSpan(key string, value []byte, sp *obs.Span) (bool, error) {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return false, err
	}
	path, res := f.locate(key)
	sp.Mark(obs.StageTrieSearch)
	filePage := path[len(path)-1]
	if res.Leaf.IsNil() {
		addr, err := f.st.Alloc()
		if err != nil {
			return false, err
		}
		b := bucket.New(f.cfg.Capacity)
		b.SetBound(res.Path)
		b.Put(key, value)
		if err := f.st.Write(addr, b); err != nil {
			return false, err
		}
		sp.Mark(obs.StageStoreWrite)
		f.pages[filePage].tr.AllocNil(res.Pos, addr)
		f.nkeys++
		return false, nil
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return false, err
	}
	if b.Put(key, value) {
		err := f.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		return true, err
	}
	if b.Len() <= f.cfg.Capacity {
		err := f.st.Write(addr, b)
		sp.Mark(obs.StageStoreWrite)
		if err != nil {
			return false, err
		}
		f.nkeys++
		return false, nil
	}
	if f.cfg.Mode == trie.ModeTHCL {
		err = f.splitBucketTHCL(addr, b)
	} else {
		err = f.splitBucket(path, res, addr, b)
	}
	sp.Mark(obs.StageSplit)
	if err != nil {
		return false, err
	}
	f.nkeys++
	return false, nil
}

// DeleteSpan is Delete with stage attribution.
func (f *File) DeleteSpan(key string, sp *obs.Span) error {
	if err := f.cfg.Alphabet.Validate(key); err != nil {
		return err
	}
	path, res := f.locate(key)
	sp.Mark(obs.StageTrieSearch)
	if res.Leaf.IsNil() {
		return ErrNotFound
	}
	addr := res.Leaf.Addr()
	b, err := f.st.Read(addr)
	sp.Mark(obs.StageStoreRead)
	if err != nil {
		return err
	}
	if !b.Delete(key) {
		return ErrNotFound
	}
	if b.Len() == 0 && f.cfg.Mode == trie.ModeBasic && f.pages[path[len(path)-1]].tr.LeafCount(addr) == 1 {
		if err := f.st.Free(addr); err != nil {
			return err
		}
		sp.Mark(obs.StageMerge)
		f.pages[path[len(path)-1]].tr.FreeToNil(res.Pos)
		f.nkeys--
		return nil
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	sp.Mark(obs.StageStoreWrite)
	f.nkeys--
	return nil
}

// RangeSpan is Range with stage attribution: walk time between bucket
// reads is charged to trie-search, the reads to store-read.
func (f *File) RangeSpan(from, to string, fn func(key string, value []byte) bool, sp *obs.Span) error {
	_, start := f.locate(from)
	sp.Mark(obs.StageTrieSearch)
	started := start.Leaf.IsNil()
	startAddr := int32(-1)
	if !start.Leaf.IsNil() {
		startAddr = start.Leaf.Addr()
	}
	var scanErr error
	f.walkBuckets(func(addr int32) bool {
		if !started {
			if addr != startAddr {
				return true
			}
			started = true
		}
		sp.Mark(obs.StageTrieSearch)
		b, err := f.st.Read(addr)
		sp.Mark(obs.StageStoreRead)
		if err != nil {
			scanErr = err
			return false
		}
		if b.Len() > 0 && to != "" && b.MinKey() > to {
			return false
		}
		return b.Ascend(from, to, func(r bucket.Record) bool { return fn(r.Key, r.Value) })
	})
	sp.Mark(obs.StageTrieSearch)
	return scanErr
}
