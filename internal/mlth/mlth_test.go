package mlth

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"triehash/internal/store"
)

func newFile(t *testing.T, cfg Config) *File {
	t.Helper()
	f, err := New(cfg, store.NewMem())
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func randomKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		l := 3 + rng.Intn(8)
		b := make([]byte, l)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		k := string(b)
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

func TestConfigErrors(t *testing.T) {
	st := store.NewMem()
	for i, cfg := range []Config{
		{Capacity: 1, PageCapacity: 9},
		{Capacity: 4, PageCapacity: 2},
		{Capacity: 4, PageCapacity: 9, SplitPos: 5},
		{Capacity: 4, PageCapacity: 9, SplitNodeFrac: 1.5},
	} {
		if _, err := New(cfg, st); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestSingleLevelMatchesPlainTH(t *testing.T) {
	// With a huge page capacity the file never splits pages and behaves
	// like plain trie hashing.
	f := newFile(t, Config{Capacity: 4, PageCapacity: 1 << 20})
	keys := randomKeys(1, 500)
	for _, k := range keys {
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	if f.Levels() != 1 || f.Pages() != 1 {
		t.Fatalf("levels=%d pages=%d", f.Levels(), f.Pages())
	}
	for _, k := range keys {
		if v, err := f.Get(k); err != nil || string(v) != k {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestFig4TrieSplit reproduces the paper's Fig 4: the Fig 1 word file with
// page capacity b' = 9 splits its root page when the trie outgrows it; the
// split node moves to a new root page.
func TestFig4TrieSplit(t *testing.T) {
	words := []string{
		"the", "of", "and", "to", "a", "in", "that", "is", "i", "it",
		"for", "as", "with", "was", "his", "he", "be", "not", "by", "but",
		"have", "you", "which", "are", "on", "or", "her", "had", "at", "from",
		"this",
	}
	f := newFile(t, Config{Capacity: 4, PageCapacity: 9, SplitPos: 3})
	for _, w := range words {
		if _, err := f.Put(w, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Levels() != 2 {
		t.Fatalf("levels = %d, want 2\n%s", f.Levels(), f.DumpPages())
	}
	if f.PageSplits() == 0 {
		t.Fatal("no page split happened")
	}
	// The root page holds few cells; file-level pages respect b'.
	root := f.PageTrie(f.Root())
	if root.Cells() < 1 || root.Cells() > 9 {
		t.Fatalf("root page has %d cells", root.Cells())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("%v\n%s", err, f.DumpPages())
	}
	for _, w := range words {
		if _, err := f.Get(w); err != nil {
			t.Errorf("Get(%q): %v", w, err)
		}
	}
	t.Logf("Fig 4 reproduction:\n%s", f.DumpPages())
}

func TestAgainstModel(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 4, PageCapacity: 9},
		{Capacity: 4, PageCapacity: 5},
		{Capacity: 10, PageCapacity: 16},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("b%d-p%d", cfg.Capacity, cfg.PageCapacity), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			f := newFile(t, cfg)
			model := map[string]string{}
			for step := 0; step < 3000; step++ {
				n := 1 + rng.Intn(6)
				kb := make([]byte, n)
				for i := range kb {
					kb[i] = byte('a' + rng.Intn(5))
				}
				k := string(kb)
				switch op := rng.Intn(10); {
				case op < 6:
					v := fmt.Sprintf("v%d", step)
					replaced, err := f.Put(k, []byte(v))
					if err != nil {
						t.Fatalf("step %d Put(%q): %v", step, k, err)
					}
					if _, had := model[k]; had != replaced {
						t.Fatalf("step %d Put(%q) replaced=%v", step, k, replaced)
					}
					model[k] = v
				case op < 8:
					v, err := f.Get(k)
					want, had := model[k]
					switch {
					case had && (err != nil || string(v) != want):
						t.Fatalf("step %d Get(%q) = %q,%v want %q", step, k, v, err, want)
					case !had && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Get(%q): %v", step, k, err)
					}
				default:
					err := f.Delete(k)
					_, had := model[k]
					switch {
					case had && err != nil:
						t.Fatalf("step %d Delete(%q): %v", step, k, err)
					case !had && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Delete(%q): %v", step, k, err)
					}
					delete(model, k)
				}
				if step%500 == 499 {
					if err := f.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v\n%s", step, err, f.DumpPages())
					}
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if f.Len() != len(model) {
				t.Fatalf("file %d keys, model %d", f.Len(), len(model))
			}
		})
	}
}

// TestTwoLevelAccessCost reproduces the paper's headline access cost: with
// the root page in core, a key search in a two-level file costs one page
// read plus one bucket read.
func TestTwoLevelAccessCost(t *testing.T) {
	f := newFile(t, Config{Capacity: 8, PageCapacity: 32})
	keys := randomKeys(3, 5000)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Levels() != 2 {
		t.Skipf("file has %d levels; tune parameters", f.Levels())
	}
	f.ResetPageReads()
	f.Store().ResetCounters()
	const probes = 200
	for i := 0; i < probes; i++ {
		if _, err := f.Get(keys[i]); err != nil {
			t.Fatal(err)
		}
	}
	pageReads := f.PageReads()
	bucketReads := f.Store().Counters().Reads
	if pageReads != probes || bucketReads != probes {
		t.Errorf("two-level search cost: %d page + %d bucket reads for %d probes, want %d+%d",
			pageReads, bucketReads, probes, probes, probes)
	}
}

// TestThreeLevels pushes the hierarchy to three levels with a tiny page
// capacity.
func TestThreeLevels(t *testing.T) {
	f := newFile(t, Config{Capacity: 2, PageCapacity: 4})
	keys := randomKeys(4, 3000)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	if f.Levels() < 3 {
		t.Fatalf("levels = %d, want >= 3 (%d pages)", f.Levels(), f.Pages())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[:500] {
		if _, err := f.Get(k); err != nil {
			t.Fatalf("Get(%q): %v", k, err)
		}
	}
}

func TestRange(t *testing.T) {
	f := newFile(t, Config{Capacity: 4, PageCapacity: 7})
	var all []string
	for i := 0; i < 400; i++ {
		k := fmt.Sprintf("k%04d", i*3)
		all = append(all, k)
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(all)
	var got []string
	if err := f.Range("k0100", "k0500", func(k string, _ []byte) bool {
		got = append(got, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, k := range all {
		if k >= "k0100" && k <= "k0500" {
			want = append(want, k)
		}
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("range = %v, want %v", got, want)
	}
	// Full scan.
	got = nil
	f.Range("k", "", func(k string, _ []byte) bool { got = append(got, k); return true })
	if fmt.Sprint(got) != fmt.Sprint(all) {
		t.Fatalf("full scan has %d keys, want %d", len(got), len(all))
	}
}

// TestPageLoadBands reproduces Section 3.2's page load observations: the
// random-insertion page load sits a few points under the bucket load;
// ordered insertions drive it lower (~40-72%).
func TestPageLoadBands(t *testing.T) {
	keys := randomKeys(5, 6000)
	f := newFile(t, Config{Capacity: 10, PageCapacity: 64})
	for _, k := range keys {
		f.Put(k, nil)
	}
	st := f.Stats()
	if st.FileLevelPageLoad < 0.45 || st.FileLevelPageLoad > 0.85 {
		t.Errorf("random page load %.3f outside a plausible band", st.FileLevelPageLoad)
	}
	sort.Strings(keys)
	fa := newFile(t, Config{Capacity: 10, PageCapacity: 64})
	for _, k := range keys {
		fa.Put(k, nil)
	}
	sta := fa.Stats()
	if sta.FileLevelPageLoad < 0.3 || sta.FileLevelPageLoad > 0.8 {
		t.Errorf("ascending page load %.3f outside the paper's wide band", sta.FileLevelPageLoad)
	}
	t.Logf("page load: random=%.3f ascending=%.3f (buckets: %.3f / %.3f)",
		st.FileLevelPageLoad, sta.FileLevelPageLoad, st.Load, sta.Load)
}

// TestShiftedSplitNode reproduces /ZEG88/: shifting the page split node
// toward the tail raises the page load for expected ascending insertions.
func TestShiftedSplitNode(t *testing.T) {
	keys := randomKeys(6, 6000)
	sort.Strings(keys)
	mid := newFile(t, Config{Capacity: 10, PageCapacity: 64})
	shift := newFile(t, Config{Capacity: 10, PageCapacity: 64, SplitNodeFrac: 0.85})
	for _, k := range keys {
		mid.Put(k, nil)
		shift.Put(k, nil)
	}
	lm := mid.Stats().FileLevelPageLoad
	ls := shift.Stats().FileLevelPageLoad
	if ls <= lm {
		t.Errorf("shifted split node load %.3f not above middle %.3f", ls, lm)
	}
	if err := shift.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	t.Logf("ascending page load: middle=%.3f shifted=%.3f", lm, ls)
}

func TestDeleteAndNilRealloc(t *testing.T) {
	f := newFile(t, Config{Capacity: 2, PageCapacity: 5})
	keys := randomKeys(8, 200)
	for _, k := range keys {
		f.Put(k, []byte(k))
	}
	for _, k := range keys[:150] {
		if err := f.Delete(k); err != nil {
			t.Fatalf("Delete(%q): %v", k, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for _, k := range keys[150:] {
		if v, err := f.Get(k); err != nil || string(v) != k {
			t.Fatalf("survivor Get(%q) = %q, %v", k, v, err)
		}
	}
	// Reinsert into (possibly) nil-leaf territory.
	for _, k := range keys[:150] {
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatalf("reinsert Put(%q): %v", k, err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
