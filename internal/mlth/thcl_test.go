package mlth

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// TestTHCLAgainstModel shadows random traffic on multilevel THCL files —
// the variant the paper's conclusion asks for.
func TestTHCLAgainstModel(t *testing.T) {
	for _, cfg := range []Config{
		{Capacity: 4, PageCapacity: 9, Mode: trie.ModeTHCL},
		{Capacity: 4, PageCapacity: 5, Mode: trie.ModeTHCL},
		{Capacity: 8, PageCapacity: 16, Mode: trie.ModeTHCL, SplitPos: 4, BoundPos: 5},
		{Capacity: 6, PageCapacity: 12, Mode: trie.ModeTHCL, SplitPos: 6},
	} {
		cfg := cfg
		t.Run(fmt.Sprintf("b%d-p%d-m%d", cfg.Capacity, cfg.PageCapacity, cfg.SplitPos), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			f := newFile(t, cfg)
			model := map[string]string{}
			for step := 0; step < 3000; step++ {
				n := 1 + rng.Intn(6)
				kb := make([]byte, n)
				for i := range kb {
					kb[i] = byte('a' + rng.Intn(5))
				}
				k := string(kb)
				switch op := rng.Intn(10); {
				case op < 6:
					v := fmt.Sprintf("v%d", step)
					replaced, err := f.Put(k, []byte(v))
					if err != nil {
						t.Fatalf("step %d Put(%q): %v", step, k, err)
					}
					if _, had := model[k]; had != replaced {
						t.Fatalf("step %d Put(%q) replaced=%v", step, k, replaced)
					}
					model[k] = v
				case op < 8:
					v, err := f.Get(k)
					want, had := model[k]
					switch {
					case had && (err != nil || string(v) != want):
						t.Fatalf("step %d Get(%q) = %q,%v want %q", step, k, v, err, want)
					case !had && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Get(%q): %v", step, k, err)
					}
				default:
					err := f.Delete(k)
					_, had := model[k]
					switch {
					case had && err != nil:
						t.Fatalf("step %d Delete(%q): %v", step, k, err)
					case !had && !errors.Is(err, ErrNotFound):
						t.Fatalf("step %d Delete(%q): %v", step, k, err)
					}
					delete(model, k)
				}
				if step%500 == 499 {
					if err := f.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v\n%s", step, err, f.DumpPages())
					}
				}
			}
			if err := f.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if f.Len() != len(model) {
				t.Fatalf("file %d keys, model %d", f.Len(), len(model))
			}
			// Ordered scan agrees with the model.
			var got []string
			f.Range("a", "", func(k string, _ []byte) bool { got = append(got, k); return true })
			var want []string
			for k := range model {
				want = append(want, k)
			}
			sort.Strings(want)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("scan %d keys, model %d", len(got), len(want))
			}
		})
	}
}

// TestTHCLCompactMultilevel is the paper's future-work headline: a compact
// (100% loaded) file whose trie is paged into a multilevel hierarchy —
// controlled load at beyond-main-memory scale.
func TestTHCLCompactMultilevel(t *testing.T) {
	b := 10
	f := newFile(t, Config{Capacity: b, PageCapacity: 32, Mode: trie.ModeTHCL, SplitPos: b})
	keys := randomKeys(18, 4000)
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Load < 0.99 {
		t.Errorf("multilevel compact load %.3f, want ~1.0", st.Load)
	}
	if st.Levels < 2 {
		t.Errorf("levels = %d; the trie should have paged", st.Levels)
	}
	if st.NilLeaves != 0 {
		t.Errorf("THCL created %d nil leaves", st.NilLeaves)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Two-level access cost still holds for the compact file.
	if st.Levels == 2 {
		f.ResetPageReads()
		f.Store().ResetCounters()
		for _, k := range keys[:200] {
			if _, err := f.Get(k); err != nil {
				t.Fatal(err)
			}
		}
		if pr, br := f.PageReads(), f.Store().Counters().Reads; pr != 200 || br != 200 {
			t.Errorf("compact two-level search cost: %d page + %d bucket reads / 200", pr, br)
		}
	}
	t.Logf("compact multilevel: load=%.3f levels=%d pages=%d cells=%d",
		st.Load, st.Levels, st.Pages, st.TrieCells)
}

// TestTHCLDeterministic50Multilevel: the 50% guarantee survives paging.
func TestTHCLDeterministic50Multilevel(t *testing.T) {
	b := 10
	m := b / 2
	f := newFile(t, Config{Capacity: b, PageCapacity: 24, Mode: trie.ModeTHCL, SplitPos: m, BoundPos: m + 1})
	keys := randomKeys(19, 3000)
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := f.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := f.Stats()
	if st.Load < 0.47 || st.Load > 0.56 {
		t.Errorf("deterministic multilevel load %.3f, want ~0.50", st.Load)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTHCLPersistMultilevel round-trips a multilevel THCL file.
func TestTHCLPersistMultilevel(t *testing.T) {
	st := store.NewMem()
	cfg := Config{Capacity: 6, PageCapacity: 10, Mode: trie.ModeTHCL}
	f, err := New(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	keys := randomKeys(20, 800)
	for _, k := range keys {
		if _, err := f.Put(k, []byte(k)); err != nil {
			t.Fatal(err)
		}
	}
	meta := f.SaveMeta()
	g, err := Open(meta, st)
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != len(keys) || g.Levels() != f.Levels() {
		t.Fatalf("reopened: %d keys %d levels, want %d/%d", g.Len(), g.Levels(), len(keys), f.Levels())
	}
	for _, k := range keys[:200] {
		if v, err := g.Get(k); err != nil || string(v) != k {
			t.Fatalf("reopened Get(%q) = %q, %v", k, v, err)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
