package mlth

import (
	"fmt"

	"triehash/internal/bucket"
	"triehash/internal/obs"
	"triehash/internal/trie"
)

// This file extends the multilevel scheme to the controlled-load variant —
// the refinement the paper's conclusion calls for ("this results should
// now be refined for MLTH and for the new variant"). The page hierarchy is
// unchanged; what changes is the bucket split: THCL's shared leaves and
// successor repointing (Section 4.1 steps 3.0-3.5) must operate on a run
// of leaves that may span several file-level pages.

// fullLeaf is one file-level leaf seen by a cross-page in-order walk: its
// owning page, the ancestor pages (root first), the slot position within
// the page, the pointer, and the full logical-path bound.
type fullLeaf struct {
	page     int32
	ancestry []int32
	pos      trie.Pos
	leaf     trie.Ptr
	bound    []byte
}

// walkFileLeaves visits every file-level leaf in in-order with its full
// logical path, descending the page hierarchy and seeding each page's walk
// with the path accumulated above it.
func (f *File) walkFileLeaves(fn func(fullLeaf) bool) {
	var walk func(pid int32, ancestry []int32, prefix []byte) bool
	walk = func(pid int32, ancestry []int32, prefix []byte) bool {
		p := f.pages[pid]
		ancestry = append(ancestry, pid)
		cont := true
		p.tr.WalkLeavesPrefix(prefix, func(lp trie.LeafPos) bool {
			if p.level == 0 {
				if !fn(fullLeaf{
					page:     pid,
					ancestry: append([]int32(nil), ancestry...),
					pos:      lp.Pos,
					leaf:     lp.Leaf,
					bound:    lp.Path,
				}) {
					cont = false
				}
				return cont
			}
			if lp.Leaf.IsNil() {
				return true
			}
			if !walk(lp.Leaf.Addr(), ancestry, lp.Path) {
				cont = false
			}
			return cont
		})
		return cont
	}
	walk(f.root, nil, nil)
}

// setBoundaryTHCL installs split string s as the new boundary inside the
// key range of bucket old, across pages: leaves of old's run at or below s
// keep old, the straddling leaf grows the chain (inside its page), and
// later leaves of the run repoint to high — the multilevel form of
// Section 4.1 steps 3.0-3.5. It returns the page that received new cells
// (with its ancestry) so the caller can split overflowing pages, or -1.
func (f *File) setBoundaryTHCL(s []byte, old, high int32) (grownPage int32, ancestry []int32) {
	var run []fullLeaf
	f.walkFileLeaves(func(fl fullLeaf) bool {
		if !fl.leaf.IsNil() && fl.leaf.Addr() == old {
			run = append(run, fl)
			return true
		}
		return len(run) == 0 // stop once past the run
	})
	if len(run) == 0 {
		panic(fmt.Sprintf("mlth: setBoundaryTHCL: no leaf carries bucket %d", old))
	}
	grownPage = -1
	straddle := -1
	exact := false
	for i, fl := range run {
		cmp := f.cfg.Alphabet.ComparePathBounds(fl.bound, s)
		if cmp < 0 {
			continue
		}
		if cmp == 0 {
			exact = true
			straddle = i + 1
		} else {
			straddle = i
		}
		break
	}
	if straddle < 0 {
		panic(fmt.Sprintf("mlth: setBoundaryTHCL: boundary %q above bucket %d's range", s, old))
	}
	if !exact {
		fl := run[straddle]
		f.pages[fl.page].tr.ExpandAt(fl.pos, fl.bound, s, old, high, trie.ModeTHCL)
		grownPage, ancestry = fl.page, fl.ancestry
		straddle++
	}
	for _, fl := range run[straddle:] {
		f.pages[fl.page].tr.SetLeaf(fl.pos, high)
	}
	return grownPage, ancestry
}

// splitBucketTHCL is the controlled-load bucket split under the page
// hierarchy: split and bounding keys per the configuration, boundary
// installed across pages, bucket bounds maintained for recovery.
func (f *File) splitBucketTHCL(addr int32, b *bucket.Bucket) error {
	B := b.Keys()
	splitKey := B[f.cfg.SplitPos-1]
	boundKey := B[f.cfg.BoundPos-1]
	s := f.cfg.Alphabet.SplitString(splitKey, boundKey)

	newAddr, err := f.st.Alloc()
	if err != nil {
		return err
	}
	moved := b.SplitOff(func(k string) bool { return f.cfg.Alphabet.KeyLEBound(k, s) })
	if len(moved) == 0 || b.Len() == 0 {
		panic(fmt.Sprintf("mlth: THCL split of bucket %d by %q moved %d of %d keys", addr, s, len(moved), len(B)))
	}
	nb := bucket.New(f.cfg.Capacity)
	nb.SetBound(b.Bound()) // shared leaves cover up to the old bound
	nb.Absorb(moved)
	b.SetBound(s)
	// New bucket first, old second, trie last (see core.appendSplit).
	if err := f.st.Write(newAddr, nb); err != nil {
		return err
	}
	if err := f.st.Write(addr, b); err != nil {
		return err
	}
	grown, ancestry := f.setBoundaryTHCL(s, addr, newAddr)
	f.splits++
	f.emit(obs.EvSplit, addr, newAddr, fmt.Sprintf("split string %q", s))
	if grown >= 0 {
		f.splitPagesUpward(ancestry)
	}
	return nil
}
