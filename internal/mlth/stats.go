package mlth

import (
	"fmt"

	"triehash/internal/store"
	"triehash/internal/trie"
)

// Stats is the multilevel measurement snapshot: the paper's Section 3.2
// studies the page load factor next to the bucket load factor.
type Stats struct {
	Keys    int
	Buckets int
	// Load is the bucket load factor.
	Load float64
	// Levels and Pages describe the page hierarchy.
	Levels int
	Pages  int
	// PageLoad is the mean cells-per-page over page capacity, across all
	// pages (the paper's page load factor); FileLevelPageLoad restricts
	// it to the file level, where almost all pages live.
	PageLoad          float64
	FileLevelPageLoad float64
	// TrieCells sums cells over all pages.
	TrieCells int
	NilLeaves int
	Splits    int
	// PageSplits counts page splits; PageReads the non-root page
	// accesses served so far.
	PageSplits int
	PageReads  int64
	IO         store.Counters
}

// Stats returns the current snapshot.
func (f *File) Stats() Stats {
	st := Stats{
		Keys:       f.nkeys,
		Buckets:    f.st.Buckets(),
		Levels:     f.Levels(),
		Pages:      len(f.pages),
		Splits:     f.splits,
		PageSplits: f.pageSplits,
		PageReads:  f.pageReads.Load(),
		IO:         f.st.Counters(),
	}
	if st.Buckets > 0 {
		st.Load = float64(st.Keys) / float64(f.cfg.Capacity*st.Buckets)
	}
	fileCells, filePages := 0, 0
	for _, p := range f.pages {
		st.TrieCells += p.tr.Cells()
		st.NilLeaves += p.tr.NilLeaves()
		if p.level == 0 {
			fileCells += p.tr.Cells()
			filePages++
		}
	}
	if len(f.pages) > 0 {
		st.PageLoad = float64(st.TrieCells) / float64(len(f.pages)*f.cfg.PageCapacity)
	}
	if filePages > 0 {
		st.FileLevelPageLoad = float64(fileCells) / float64(filePages*f.cfg.PageCapacity)
	}
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("keys=%d buckets=%d load=%.3f levels=%d pages=%d pageload=%.3f cells=%d",
		s.Keys, s.Buckets, s.Load, s.Levels, s.Pages, s.PageLoad, s.TrieCells)
}

// CheckInvariants verifies the page hierarchy and key placement: page
// levels are consistent, every page is referenced exactly once, page sizes
// respect b', every stored key routes back to its bucket through the
// multi-level search, and keys are globally ordered.
func (f *File) CheckInvariants() error {
	refs := make(map[int32]int)
	for pid, p := range f.pages {
		if p.tr.Cells() > f.cfg.PageCapacity {
			return fmt.Errorf("mlth: page %d holds %d > b'=%d cells", pid, p.tr.Cells(), f.cfg.PageCapacity)
		}
		if p.level > 0 {
			for _, leaf := range p.tr.InorderLeafPtrs() {
				if leaf.IsNil() {
					return fmt.Errorf("mlth: nil leaf in upper page %d", pid)
				}
				child := leaf.Addr()
				if int(child) >= len(f.pages) {
					return fmt.Errorf("mlth: page %d points at missing page %d", pid, child)
				}
				if f.pages[child].level != p.level-1 {
					return fmt.Errorf("mlth: page %d (level %d) points at page %d (level %d)",
						pid, p.level, child, f.pages[child].level)
				}
				refs[child]++
			}
		}
	}
	for pid := range f.pages {
		if int32(pid) == f.root {
			if refs[int32(pid)] != 0 {
				return fmt.Errorf("mlth: root page %d is referenced", pid)
			}
			continue
		}
		if refs[int32(pid)] != 1 {
			return fmt.Errorf("mlth: page %d referenced %d times", pid, refs[int32(pid)])
		}
	}

	// Run contiguity and stored bounds across pages: every bucket's
	// leaves form one consecutive cross-page run whose top bound matches
	// the bucket header (the TOR83 recovery invariant).
	runTop := map[int32][]byte{}
	closed := map[int32]bool{}
	lastAddr := int32(-1)
	var runErr error
	f.walkFileLeaves(func(fl fullLeaf) bool {
		if fl.leaf.IsNil() {
			lastAddr = -1
			return true
		}
		a := fl.leaf.Addr()
		if a != lastAddr {
			if closed[a] {
				runErr = fmt.Errorf("mlth: bucket %d appears in two separate cross-page runs", a)
				return false
			}
			if lastAddr >= 0 {
				closed[lastAddr] = true
			}
			lastAddr = a
		}
		runTop[a] = fl.bound
		return true
	})
	if runErr != nil {
		return runErr
	}
	for addr, want := range runTop {
		b, err := f.st.Read(addr)
		if err != nil {
			return err
		}
		if string(b.Bound()) != string(want) {
			return fmt.Errorf("mlth: bucket %d stores bound %q, trie run tops at %q", addr, b.Bound(), want)
		}
	}

	// Key placement and global order.
	total := 0
	prev := ""
	first := true
	var placeErr error
	f.walkBuckets(func(addr int32) bool {
		b, err := f.st.Read(addr)
		if err != nil {
			placeErr = err
			return false
		}
		if b.Len() > f.cfg.Capacity {
			placeErr = fmt.Errorf("mlth: bucket %d holds %d > b=%d records", addr, b.Len(), f.cfg.Capacity)
			return false
		}
		total += b.Len()
		for i := 0; i < b.Len(); i++ {
			k := b.At(i).Key
			if !first && k <= prev {
				placeErr = fmt.Errorf("mlth: key order violated: %q after %q", k, prev)
				return false
			}
			prev, first = k, false
			if _, res := f.locate(k); res.Leaf.IsNil() || res.Leaf.Addr() != addr {
				placeErr = fmt.Errorf("mlth: key %q stored in bucket %d but routes to %v", k, addr, res.Leaf)
				return false
			}
		}
		return true
	})
	if placeErr != nil {
		return placeErr
	}
	if total != f.nkeys {
		return fmt.Errorf("mlth: %d records stored, counter says %d", total, f.nkeys)
	}
	return nil
}

// DumpPages renders the page hierarchy for debugging and the Fig 4
// reproduction.
func (f *File) DumpPages() string {
	out := ""
	for pid, p := range f.pages {
		marker := " "
		if int32(pid) == f.root {
			marker = "*"
		}
		out += fmt.Sprintf("%spage %d (level %d, %d cells): %s\n", marker, pid, p.level, p.tr.Cells(), p.tr.String())
	}
	return out
}

// PageTrie exposes page pid's subtrie (tests and the Fig 4 reproduction).
func (f *File) PageTrie(pid int32) *trie.Trie { return f.pages[pid].tr }

// Root returns the root page id.
func (f *File) Root() int32 { return f.root }
