package mlth

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"triehash/internal/format"
	"triehash/internal/store"
	"triehash/internal/trie"
)

const metaMagic = 0x4D4C5448 // "MLTH"

// SetFormat selects the on-disk encoding version future SaveMeta calls
// (and the store the caller configures separately) write with.
func (f *File) SetFormat(v format.Version) {
	if v.Valid() {
		f.fmtv = v
	}
}

// Format returns the on-disk encoding version this file writes.
func (f *File) Format() format.Version {
	if f.fmtv == 0 {
		return format.Default
	}
	return f.fmtv
}

// SaveMeta serializes the page hierarchy and counters; together with a
// persistent bucket store this makes the multilevel file durable. The
// version field mirrors Format(): the header layout is shared, the trie
// page encoding that follows is what changes between versions.
func (f *File) SaveMeta() []byte {
	var hdr [40]byte
	binary.LittleEndian.PutUint32(hdr[0:], metaMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(f.Format()))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(f.cfg.Capacity))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(f.cfg.PageCapacity))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(f.cfg.SplitPos))
	binary.LittleEndian.PutUint64(hdr[20:], uint64(f.nkeys))
	binary.LittleEndian.PutUint32(hdr[28:], uint32(f.splits))
	binary.LittleEndian.PutUint32(hdr[32:], uint32(f.root))
	binary.LittleEndian.PutUint32(hdr[36:], uint32(len(f.pages)))
	buf := hdr[:]
	for _, p := range f.pages {
		var lv [4]byte
		binary.LittleEndian.PutUint32(lv[:], uint32(p.level))
		buf = append(buf, lv[:]...)
		buf = p.tr.AppendFormat(buf, f.Format())
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc32.ChecksumIEEE(buf))
	return append(buf, sum[:]...)
}

// Open reattaches a multilevel file serialized with SaveMeta to its
// bucket store.
func Open(meta []byte, st store.Store) (*File, error) {
	if len(meta) < 44 {
		return nil, fmt.Errorf("mlth: open: truncated metadata (%d bytes)", len(meta))
	}
	body, sum := meta[:len(meta)-4], binary.LittleEndian.Uint32(meta[len(meta)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return nil, fmt.Errorf("mlth: open: metadata checksum mismatch")
	}
	meta = body
	if binary.LittleEndian.Uint32(meta[0:]) != metaMagic {
		return nil, fmt.Errorf("mlth: open: bad magic")
	}
	if v := binary.LittleEndian.Uint32(meta[4:]); v != uint32(format.V1) && v != uint32(format.V2) {
		return nil, &format.UnknownVersionError{Surface: "meta", Version: v}
	}
	f := &File{
		st:     st,
		nkeys:  int(binary.LittleEndian.Uint64(meta[20:])),
		splits: int(binary.LittleEndian.Uint32(meta[28:])),
		root:   int32(binary.LittleEndian.Uint32(meta[32:])),
	}
	f.cfg = Config{
		Capacity:     int(binary.LittleEndian.Uint32(meta[8:])),
		PageCapacity: int(binary.LittleEndian.Uint32(meta[12:])),
		SplitPos:     int(binary.LittleEndian.Uint32(meta[16:])),
	}
	n := int(binary.LittleEndian.Uint32(meta[36:]))
	off := 40
	for i := 0; i < n; i++ {
		if len(meta) < off+4 {
			return nil, fmt.Errorf("mlth: open: truncated page %d", i)
		}
		level := int(binary.LittleEndian.Uint32(meta[off:]))
		off += 4
		tr, used, err := trie.DecodeBinary(meta[off:])
		if err != nil {
			return nil, fmt.Errorf("mlth: open: page %d: %w", i, err)
		}
		off += used
		f.pages = append(f.pages, &page{level: level, tr: tr})
		if i == 0 {
			f.cfg.Alphabet = tr.Alphabet()
		}
	}
	if len(f.pages) == 0 || int(f.root) >= len(f.pages) {
		return nil, fmt.Errorf("mlth: open: invalid root page %d of %d", f.root, len(f.pages))
	}
	cfg, err := f.cfg.withDefaults()
	if err != nil {
		return nil, fmt.Errorf("mlth: open: %w", err)
	}
	f.cfg = cfg
	return f, nil
}
